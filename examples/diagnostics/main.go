// Model selection and the sweep-sharing extension: use the CORCONDIA core
// consistency diagnostic to find the right CP rank, compare random vs
// eigenvector (nvecs) initialization, and measure the per-sweep saving of
// the multi-sweep MTTKRP scheme (the paper's Section 6 "natural next
// step").
//
//	go run ./examples/diagnostics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cpd"
	"repro/internal/tensor"
)

func main() {
	// Ground truth: a rank-3 tensor plus noise.
	rng := rand.New(rand.NewSource(5))
	trueRank := 3
	truth := cpd.RandomKTensor(rng, []int{40, 35, 30}, trueRank)
	x := truth.Full()
	data := x.Data()
	rms := rmsOf(x)
	for i := range data {
		data[i] += 0.02 * rms * rng.NormFloat64()
	}

	// Rank selection: sweep candidate ranks, report fit and CORCONDIA.
	// Fit always increases with rank; core consistency collapses once the
	// model is over-factored, pointing at the true rank.
	fmt.Println("rank  fit      corcondia")
	for rank := 1; rank <= 5; rank++ {
		res, err := cpd.ALS(x, cpd.Config{Rank: rank, MaxIters: 150, Tol: 1e-9, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		cc := cpd.Corcondia(0, x, res.K)
		ccStr := fmt.Sprintf("%9.1f", cc)
		if cc < -100 {
			// Overfactored models drive the pseudo-inverse core to huge
			// negative consistency; the magnitude carries no information.
			ccStr = "collapsed"
		}
		marker := ""
		if rank == trueRank {
			marker = "   <- planted rank"
		}
		fmt.Printf("%4d  %.4f  %9s%s\n", rank, res.Fit, ccStr, marker)
	}

	// Initialization: nvecs (leading eigenvectors of X_(n)X_(n)ᵀ) gives a
	// deterministic, often better-conditioned start than a random draw.
	nvecs := cpd.NVecsInit(0, x, trueRank, 1)
	a, err := cpd.ALS(x, cpd.Config{Rank: trueRank, MaxIters: 500, Tol: 1e-9, Init: nvecs})
	if err != nil {
		log.Fatal(err)
	}
	b, err := cpd.ALS(x, cpd.Config{Rank: trueRank, MaxIters: 500, Tol: 1e-9, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninit comparison at rank %d: nvecs %d sweeps (fit %.5f), random %d sweeps (fit %.5f)\n",
		trueRank, a.Iters, a.Fit, b.Iters, b.Fit)

	// Multi-sweep: identical math, fewer passes over the tensor per sweep.
	big := tensor.Random(rng, 96, 64, 48, 32)
	reg, err := cpd.ALS(big, cpd.Config{Rank: 10, MaxIters: 3, Tol: -1, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	ms, err := cpd.ALS(big, cpd.Config{Rank: 10, MaxIters: 3, Tol: -1, Seed: 4, MultiSweep: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-sweep on %v: per-sweep %.0fms -> %.0fms (%.2fx), fit %.6f vs %.6f\n",
		big.Dims(),
		reg.MeanIterTime().Seconds()*1e3, ms.MeanIterTime().Seconds()*1e3,
		reg.MeanIterTime().Seconds()/ms.MeanIterTime().Seconds(),
		reg.Fit, ms.Fit)
}

func rmsOf(x *tensor.Dense) float64 {
	return x.Norm(0) / float64(x.Size())
}
