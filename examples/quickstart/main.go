// Quickstart: build a dense tensor, compute a CP decomposition with the
// library's default (paper-hybrid) MTTKRP, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A 60×50×40 tensor that is exactly rank 5 plus a little noise: the
	// ground truth is a random Kruskal model.
	rng := rand.New(rand.NewSource(7))
	dims := []int{60, 50, 40}
	rank := 5

	truth := make([]repro.Matrix, len(dims))
	for k, d := range dims {
		truth[k] = repro.RandomMatrix(d, rank, rng)
	}
	x := repro.NewTensor(dims...)
	fillFromModel(x, truth)
	addNoise(x, 0.01, rng)

	// Decompose. MethodAuto is the paper's choice: 1-step MTTKRP for the
	// first and last modes, 2-step for internal modes.
	res, err := repro.CP(x, repro.CPConfig{
		Rank:     rank,
		MaxIters: 100,
		Tol:      1e-8,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tensor %v, rank %d\n", dims, rank)
	fmt.Printf("fit = %.4f after %d ALS sweeps (%.1fms per sweep)\n",
		res.Fit, res.Iters, res.MeanIterTime().Seconds()*1e3)
	res.K.Normalize() // absorb column scales into the weights
	res.K.Arrange()   // sort components by weight
	fmt.Println("component weights:")
	for i, l := range res.K.Lambda {
		fmt.Printf("  λ[%d] = %8.2f\n", i, l)
	}

	// The factors are ordinary row-major matrices.
	u0 := res.K.Factors[0]
	fmt.Printf("mode-0 factor is %d×%d; U0(0, :) = ", u0.R, u0.C)
	for c := 0; c < u0.C; c++ {
		fmt.Printf("% .3f ", u0.At(0, c))
	}
	fmt.Println()
}

// fillFromModel evaluates the rank-R model into x.
func fillFromModel(x *repro.Tensor, u []repro.Matrix) {
	idx := make([]int, x.Order())
	data := x.Data()
	for l := range data {
		x.MultiIndex(l, idx)
		s := 0.0
		for c := 0; c < u[0].C; c++ {
			p := 1.0
			for k := range u {
				p *= u[k].At(idx[k], c)
			}
			s += p
		}
		data[l] = s
	}
}

func addNoise(x *repro.Tensor, level float64, rng *rand.Rand) {
	data := x.Data()
	for i := range data {
		data[i] += level * rng.NormFloat64()
	}
}
