// Khatri-Rao product demo: the paper's Algorithm 1 (row-wise with reuse of
// partial Hadamard products) against the naive row-wise algorithm, on a
// KRP of Z matrices — a miniature of Figure 4.
//
//	go run ./examples/krp
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	c := 25
	threads := parallel.DefaultThreads()

	// Small exact example first: K = A ⊙ B row conventions.
	a := repro.RandomMatrix(2, 3, rng)
	b := repro.RandomMatrix(3, 3, rng)
	k := repro.KhatriRao(1, a, b)
	fmt.Printf("KRP of %dx%d and %dx%d is %dx%d; K(rB + rA·IB, c) = A(rA,c)·B(rB,c):\n",
		a.R, a.C, b.R, b.C, k.R, k.C)
	fmt.Printf("  K(4, 0) = %.4f, A(1,0)·B(1,0) = %.4f\n\n", k.At(4, 0), a.At(1, 0)*b.At(1, 0))

	// Timing: reuse vs naive for Z = 2, 3, 4 with ~2M output rows.
	j := 2_000_000
	for _, z := range []int{2, 3, 4} {
		per := int(float64(j) + 0.5)
		switch z {
		case 2:
			per = 1414
		case 3:
			per = 126
		case 4:
			per = 38
		}
		mats := make([]mat.View, z)
		rows := 1
		for i := range mats {
			mats[i] = mat.RandomDense(per, c, rng)
			rows *= per
		}
		out := mat.NewDense(rows, c)

		naive := timeIt(func() { krp.NaiveParallel(threads, mats, out) })
		reuse := timeIt(func() { krp.Parallel(threads, mats, out) })
		fmt.Printf("Z=%d (%d rows × %d cols): naive %7.1fms, reuse %7.1fms, speedup %.2fx\n",
			z, rows, c, naive*1e3, reuse*1e3, naive/reuse)
	}
	fmt.Println("\nreuse ≈ naive at Z=2 (nothing to reuse); the gap grows with Z,")
	fmt.Println("matching Figure 4 (the paper reports 1.5–2.5x for Z in {3,4}).")
}

func timeIt(f func()) float64 {
	f() // warmup
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Seconds()
}
