// Scaling study: compare the MTTKRP algorithms (1-step, 2-step, reorder
// baseline) across modes and thread counts on a user-sized tensor — a
// miniature of the paper's Figure 5 experiment on arbitrary shapes.
//
//	go run ./examples/scaling                  # default 120×110×100
//	go run ./examples/scaling -dims 60,50,40,30 -rank 16 -maxthreads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/parallel"
)

func main() {
	dimsFlag := flag.String("dims", "120,110,100", "tensor dimensions")
	rank := flag.Int("rank", 25, "KRP column count C")
	maxThreads := flag.Int("maxthreads", parallel.DefaultThreads(), "thread sweep upper bound")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := repro.RandomTensor(rng, dims...)
	factors := make([]repro.Matrix, len(dims))
	for k, d := range dims {
		factors[k] = repro.RandomMatrix(d, *rank, rng)
	}
	fmt.Printf("tensor %v (%d entries, %.1f MB), C=%d\n\n",
		dims, x.Size(), float64(x.Size())*8/1e6, *rank)

	fmt.Printf("%-22s", "method/mode")
	for t := 1; t <= *maxThreads; t++ {
		fmt.Printf("  T=%-8d", t)
	}
	fmt.Println()

	timeIt := func(f func()) float64 {
		f() // warmup
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}

	for n := range dims {
		methods := []repro.Method{repro.MethodOneStep}
		if n > 0 && n < len(dims)-1 {
			methods = append(methods, repro.MethodTwoStep)
		}
		methods = append(methods, repro.MethodReorder)
		for _, m := range methods {
			fmt.Printf("%-22s", fmt.Sprintf("%v, n=%d", m, n))
			base := 0.0
			for t := 1; t <= *maxThreads; t++ {
				opts := repro.MTTKRPOptions{Threads: t}
				sec := timeIt(func() { repro.MTTKRPWith(m, x, factors, n, opts) })
				if t == 1 {
					base = sec
				}
				fmt.Printf("  %7.4fs ", sec)
				_ = base
			}
			fmt.Println()
		}
	}

	// Per-phase view of one internal mode, like the paper's Figure 6.
	if len(dims) > 2 {
		n := 1
		fmt.Printf("\nbreakdown of mode %d at T=%d:\n", n, *maxThreads)
		for _, m := range []repro.Method{repro.MethodOneStep, repro.MethodTwoStep, repro.MethodReorder} {
			var bd repro.Breakdown
			repro.MTTKRPWith(m, x, factors, n, repro.MTTKRPOptions{Threads: *maxThreads, Breakdown: &bd})
			fmt.Printf("  %-8v %v\n", m, &bd)
		}
	}
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions")
	}
	return dims, nil
}
