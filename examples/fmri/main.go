// fMRI pipeline: the paper's motivating application (Section 3). Generate
// a synthetic time × subject × region × region correlation tensor with
// planted brain networks, decompose both the 4-way tensor and its
// symmetry-reduced 3-way pairs form, and check that the planted networks
// are recovered.
//
//	go run ./examples/fmri
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/blas"
	"repro/internal/cpd"
	"repro/internal/fmri"
	"repro/internal/mat"
)

func main() {
	// A quarter-scale version of the paper's 225×59×200×200 data.
	p := fmri.PaperParams().Scaled(0.25)
	p.Components = 5
	p.Noise = 0.05
	p.Seed = 3
	fmt.Printf("generating fMRI tensor %d×%d×%d×%d with %d planted networks...\n",
		p.Times, p.Subjects, p.Regions, p.Regions, p.Components)
	ds := fmri.Generate(p)

	// 3-way analysis on region pairs (i < j), as in Section 5.3.3: the
	// symmetric region modes are linearized, halving the data.
	x3 := ds.Linearize3()
	fmt.Printf("3-way form: %v (%.1f MB)\n", x3.Dims(), float64(x3.Size())*8/1e6)
	res3, err := cpd.ALS(x3, cpd.Config{Rank: p.Components, MaxIters: 200, Tol: 1e-8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way fit: %.4f after %d sweeps (%.0fms/sweep)\n",
		res3.Fit, res3.Iters, res3.MeanIterTime().Seconds()*1e3)

	// Match recovered components to the planted truth by factor-column
	// congruence (cosine similarity across all modes).
	truth3 := ds.Truth3()
	fmt.Println("component recovery (best-match congruence, 1.0 = exact):")
	for c := 0; c < p.Components; c++ {
		best, match := bestCongruence(truth3, res3.K, c)
		fmt.Printf("  planted network %d -> recovered component %d, congruence %.3f\n", c, match, best)
	}

	// 4-way analysis keeps the two region modes separate; the two region
	// factors of each component should agree (the data is symmetric).
	res4, err := cpd.ALS(ds.Tensor4, cpd.Config{Rank: p.Components, MaxIters: 200, Tol: 1e-8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-way fit: %.4f after %d sweeps (%.0fms/sweep)\n",
		res4.Fit, res4.Iters, res4.MeanIterTime().Seconds()*1e3)
	sym := 0.0
	for c := 0; c < p.Components; c++ {
		sym += math.Abs(congruence(res4.K.Factors[2].Col(c), res4.K.Factors[3].Col(c)))
	}
	fmt.Printf("mean |congruence| between the two region factors: %.3f (symmetry check)\n",
		sym/float64(p.Components))
}

// bestCongruence finds the recovered component most similar to planted
// component c, scoring by the product of per-mode column cosines.
func bestCongruence(truth, got *cpd.KTensor, c int) (best float64, match int) {
	best = -1
	for r := 0; r < got.Rank(); r++ {
		score := 1.0
		for m := range truth.Factors {
			score *= math.Abs(congruence(truth.Factors[m].Col(c), got.Factors[m].Col(r)))
		}
		if score > best {
			best, match = score, r
		}
	}
	return best, match
}

func congruence(a, b mat.Vec) float64 {
	na, nb := blas.Nrm2(a), blas.Nrm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return blas.Dot(a, b) / (na * nb)
}
