// Tensor compression: Tucker (HOSVD + HOOI) on the synthetic fMRI
// correlation tensor — the use case of Austin et al., whose no-reorder
// TTM layout insight the paper's 1-step MTTKRP builds on. Shows the
// compression-ratio / accuracy trade-off and compares against CP at a
// matched storage budget.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/fmri"
	"repro/internal/tucker"
)

func main() {
	p := fmri.PaperParams().Scaled(0.2)
	p.Components = 4
	p.Noise = 0.02
	p.Seed = 8
	ds := fmri.Generate(p)
	x := ds.Tensor4
	fmt.Printf("fMRI tensor %v: %d entries (%.1f MB)\n",
		x.Dims(), x.Size(), float64(x.Size())*8/1e6)

	fmt.Println("\nTucker compression sweep (rank r in every mode):")
	fmt.Println("rank  fit      compression")
	for _, r := range []int{2, 4, 8, 12} {
		res, err := repro.Tucker(x, repro.TuckerConfig{
			Ranks:    []int{r, r, r, r},
			MaxIters: 10,
			Threads:  0,
		})
		if err != nil {
			log.Fatal(err)
		}
		stored := res.Model.Core.Size()
		for _, u := range res.Model.Factors {
			stored += u.R * u.C
		}
		fmt.Printf("%4d  %.5f  %8.1fx\n", r, res.Fit, float64(x.Size())/float64(stored))
	}

	// CP at a storage-matched rank for comparison: CP stores Σ I_n·C + C
	// numbers.
	cpRank := 8
	cpRes, err := repro.CP(x, repro.CPConfig{Rank: cpRank, MaxIters: 40, Tol: 1e-7})
	if err != nil {
		log.Fatal(err)
	}
	cpStored := cpRank
	for n := 0; n < x.Order(); n++ {
		cpStored += x.Dim(n) * cpRank
	}
	fmt.Printf("\nCP rank %d: fit %.5f at %.1fx compression\n",
		cpRank, cpRes.Fit, float64(x.Size())/float64(cpStored))

	// HOSVD alone (no HOOI sweeps) is already near-optimal on this data.
	m, err := tucker.HOSVD(x, []int{4, 4, 4, 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	diff := x.Clone()
	diff.AddScaled(-1, m.Full(0))
	fmt.Printf("one-shot HOSVD at rank 4: relative error %.4f\n", diff.Norm(0)/x.Norm(0))
}
