// Package blas implements the dense linear-algebra kernels that the paper
// obtains from Intel MKL: a cache-blocked, packed, goroutine-parallel GEMM,
// a strided GEMV, and the level-1 routines the higher layers need. All
// routines operate on mat.View strided windows, so the tensor
// matricizations of the paper (column-major X_(0:n), row-major X_(n)
// blocks) are multiplied in place without reordering tensor entries.
//
// Parallel GEMM splits the M (and, for wide outputs, N) dimension across
// workers and never splits the K dimension. This deliberately reproduces
// the behaviour the paper observed in MKL: inner-product-shaped
// multiplications (small M·N, huge K) do not scale, because scaling them
// requires temporary per-thread output buffers and a reduction — the exact
// optimization the paper's 1-step algorithm performs at a higher level.
package blas

import (
	"fmt"

	"repro/internal/mat"
)

// Blocking parameters for the packed GEMM. MC×KC float64 ≈ 256 KiB fits
// comfortably in a typical L2 cache; the KC×NR B micro-panels stream
// through L1.
const (
	mcDefault = 128
	kcDefault = 256
	ncDefault = 2048

	mr = 4 // micro-kernel rows
	nr = 4 // micro-kernel cols
)

// Blocking carries GEMM cache-blocking parameters. The zero value selects
// the package defaults; it exists so ablation benchmarks can sweep the
// design space.
type Blocking struct {
	MC, KC, NC int
}

func (b Blocking) orDefault() Blocking {
	if b.MC <= 0 {
		b.MC = mcDefault
	}
	if b.KC <= 0 {
		b.KC = kcDefault
	}
	if b.NC <= 0 {
		b.NC = ncDefault
	}
	// Round MC/NC to multiples of the micro-kernel so packing stays simple.
	b.MC = roundUp(b.MC, mr)
	b.NC = roundUp(b.NC, nr)
	return b
}

func roundUp(x, m int) int {
	if r := x % m; r != 0 {
		x += m - r
	}
	return x
}

func checkGemmDims(a, b, c mat.View) (m, n, k int) {
	m, k = a.R, a.C
	if b.R != k {
		panic(fmt.Sprintf("blas: gemm inner dimension mismatch: A is %dx%d, B is %dx%d", a.R, a.C, b.R, b.C))
	}
	n = b.C
	if c.R != m || c.C != n {
		panic(fmt.Sprintf("blas: gemm output dimension mismatch: want %dx%d, got %dx%d", m, n, c.R, c.C))
	}
	return m, n, k
}
