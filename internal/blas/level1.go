package blas

import (
	"math"

	"repro/internal/mat"
	"repro/internal/simd"
)

// The level-1 kernels validate shapes and resolve strides here, then hand
// every unit-stride inner loop to internal/simd, which dispatches between
// the scalar reference and the host's vectorized implementation (see that
// package for the bit-identity contract). Strided fallbacks stay local.

// Dot returns xᵀy for equal-length vectors.
func Dot(x, y mat.Vec) float64 {
	if x.N != y.N {
		panic("blas: dot length mismatch")
	}
	if x.Inc == 1 && y.Inc == 1 {
		return simd.Dot(x.Data[:x.N], y.Data[:x.N])
	}
	s := 0.0
	for i := 0; i < x.N; i++ {
		s += x.At(i) * y.At(i)
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y mat.Vec) {
	if x.N != y.N {
		panic("blas: axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	if x.Inc == 1 && y.Inc == 1 {
		simd.Axpy(alpha, x.Data[:x.N], y.Data[:x.N])
		return
	}
	for i := 0; i < x.N; i++ {
		y.Set(i, y.At(i)+alpha*x.At(i))
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x mat.Vec) {
	if x.Inc == 1 {
		simd.Scale(alpha, x.Data[:x.N])
		return
	}
	for i := 0; i < x.N; i++ {
		x.Set(i, alpha*x.At(i))
	}
}

// Nrm2 returns the Euclidean norm of x, scaled to avoid overflow.
func Nrm2(x mat.Vec) float64 {
	if x.Inc == 1 {
		return nrm2Unit(x.Data[:x.N])
	}
	scale := 0.0
	ssq := 1.0
	for i := 0; i < x.N; i++ {
		v := x.At(i)
		if v == 0 {
			continue
		}
		scale, ssq = nrm2Step(scale, ssq, v)
	}
	return scale * math.Sqrt(ssq)
}

// nrm2Unit is the unit-stride norm: the same overflow-safe scaled update
// in element order (bit-identical to the strided loop), minus the
// per-element stride arithmetic. The rescaling recurrence is sequential,
// so it stays scalar.
func nrm2Unit(xs []float64) float64 {
	scale := 0.0
	ssq := 1.0
	for _, v := range xs {
		if v == 0 {
			continue
		}
		scale, ssq = nrm2Step(scale, ssq, v)
	}
	return scale * math.Sqrt(ssq)
}

// nrm2Step folds one element into the (scale, ssq) state of the scaled
// sum of squares.
func nrm2Step(scale, ssq, v float64) (float64, float64) {
	a := math.Abs(v)
	if scale < a {
		r := scale / a
		return a, 1 + ssq*r*r
	}
	r := a / scale
	return scale, ssq + r*r
}

// Asum returns the sum of absolute values of x.
func Asum(x mat.Vec) float64 {
	if x.Inc == 1 {
		return simd.SumAbs(x.Data[:x.N])
	}
	s := 0.0
	for i := 0; i < x.N; i++ {
		s += math.Abs(x.At(i))
	}
	return s
}

// IAmax returns the index of the element of largest magnitude, or -1 for an
// empty vector. Ties keep the earliest index, so the scan stays scalar and
// sequential; the unit-stride path only drops the per-element stride
// arithmetic.
func IAmax(x mat.Vec) int {
	if x.N == 0 {
		return -1
	}
	if x.Inc == 1 {
		xs := x.Data[:x.N]
		best, idx := math.Abs(xs[0]), 0
		for i := 1; i < len(xs); i++ {
			if a := math.Abs(xs[i]); a > best {
				best, idx = a, i
			}
		}
		return idx
	}
	best, idx := math.Abs(x.At(0)), 0
	for i := 1; i < x.N; i++ {
		if a := math.Abs(x.At(i)); a > best {
			best, idx = a, i
		}
	}
	return idx
}

// CopyVec copies x into y.
func CopyVec(x, y mat.Vec) {
	if x.N != y.N {
		panic("blas: copy length mismatch")
	}
	if x.Inc == 1 && y.Inc == 1 {
		copy(y.Data[:y.N], x.Data[:x.N])
		return
	}
	for i := 0; i < x.N; i++ {
		y.Set(i, x.At(i))
	}
}

// Had computes z = x ∗ y, the elementwise (Hadamard) product, for
// unit-stride slices. It is the inner kernel of the row-wise Khatri-Rao
// product (Algorithm 1), so it is kept allocation-free and dispatched to
// the vectorized implementation. z may alias x or y exactly (krp.Row
// multiplies in place); partial overlap is not supported.
//
//mttkrp:noalloc
func Had(x, y, z []float64) {
	if len(x) != len(y) || len(x) != len(z) {
		panic("blas: hadamard length mismatch")
	}
	simd.Had(x, y, z)
}

// HadAccum computes z += x ∗ y, the accumulating Hadamard product, for
// unit-stride slices. Same aliasing contract as Had.
//
//mttkrp:noalloc
func HadAccum(x, y, z []float64) {
	if len(x) != len(y) || len(x) != len(z) {
		panic("blas: hadamard length mismatch")
	}
	simd.HadAcc(x, y, z)
}
