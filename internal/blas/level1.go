package blas

import (
	"math"

	"repro/internal/mat"
)

// Dot returns xᵀy for equal-length vectors.
func Dot(x, y mat.Vec) float64 {
	if x.N != y.N {
		panic("blas: dot length mismatch")
	}
	if x.Inc == 1 && y.Inc == 1 {
		return dotUnit(x.Data[:x.N], y.Data[:x.N])
	}
	s := 0.0
	for i := 0; i < x.N; i++ {
		s += x.At(i) * y.At(i)
	}
	return s
}

// dotUnit is the unit-stride dot product, unrolled 4-way so the compiler
// keeps the partial sums in registers.
func dotUnit(x, y []float64) float64 {
	n := len(x)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y mat.Vec) {
	if x.N != y.N {
		panic("blas: axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	if x.Inc == 1 && y.Inc == 1 {
		xd, yd := x.Data[:x.N], y.Data[:x.N]
		for i := range xd {
			yd[i] += alpha * xd[i]
		}
		return
	}
	for i := 0; i < x.N; i++ {
		y.Set(i, y.At(i)+alpha*x.At(i))
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x mat.Vec) {
	if x.Inc == 1 {
		xd := x.Data[:x.N]
		for i := range xd {
			xd[i] *= alpha
		}
		return
	}
	for i := 0; i < x.N; i++ {
		x.Set(i, alpha*x.At(i))
	}
}

// Nrm2 returns the Euclidean norm of x, scaled to avoid overflow.
func Nrm2(x mat.Vec) float64 {
	scale := 0.0
	ssq := 1.0
	for i := 0; i < x.N; i++ {
		v := x.At(i)
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Asum returns the sum of absolute values of x.
func Asum(x mat.Vec) float64 {
	s := 0.0
	for i := 0; i < x.N; i++ {
		s += math.Abs(x.At(i))
	}
	return s
}

// IAmax returns the index of the element of largest magnitude, or -1 for an
// empty vector.
func IAmax(x mat.Vec) int {
	if x.N == 0 {
		return -1
	}
	best, idx := math.Abs(x.At(0)), 0
	for i := 1; i < x.N; i++ {
		if a := math.Abs(x.At(i)); a > best {
			best, idx = a, i
		}
	}
	return idx
}

// CopyVec copies x into y.
func CopyVec(x, y mat.Vec) {
	if x.N != y.N {
		panic("blas: copy length mismatch")
	}
	if x.Inc == 1 && y.Inc == 1 {
		copy(y.Data[:y.N], x.Data[:x.N])
		return
	}
	for i := 0; i < x.N; i++ {
		y.Set(i, x.At(i))
	}
}

// Had computes z = x ∗ y, the elementwise (Hadamard) product, for
// unit-stride slices. It is the inner kernel of the row-wise Khatri-Rao
// product (Algorithm 1), so it is kept allocation-free and unrolled.
func Had(x, y, z []float64) {
	if len(x) != len(y) || len(x) != len(z) {
		panic("blas: hadamard length mismatch")
	}
	n := len(z)
	i := 0
	for ; i+4 <= n; i += 4 {
		z[i] = x[i] * y[i]
		z[i+1] = x[i+1] * y[i+1]
		z[i+2] = x[i+2] * y[i+2]
		z[i+3] = x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		z[i] = x[i] * y[i]
	}
}
