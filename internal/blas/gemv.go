package blas

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Gemv computes y = alpha*A*x + beta*y with t workers. A may have any
// strides; the multi-TTV step of the 2-step MTTKRP calls this on row-major
// and column-major subtensor matricizations (Figures 3b and 3d of the
// paper). Work is split by contiguous blocks of y, so workers never write
// the same element. With t <= 1 it runs inline on the calling goroutine
// without touching any pool, so worker bodies may call it freely.
func Gemv(t int, alpha float64, a mat.View, x mat.Vec, beta float64, y mat.Vec) {
	GemvOn(nil, t, alpha, a, x, beta, y)
}

// GemvOn is Gemv executed on an explicit executor (pool or lease); a nil
// executor selects the process-wide default pool, resolved only if the
// call actually dispatches (so sequential calls never instantiate the
// default worker team).
func GemvOn(p parallel.Executor, t int, alpha float64, a mat.View, x mat.Vec, beta float64, y mat.Vec) {
	if a.C != x.N {
		panic(fmt.Sprintf("blas: gemv dimension mismatch: A is %dx%d, x has %d", a.R, a.C, x.N))
	}
	if a.R != y.N {
		panic(fmt.Sprintf("blas: gemv dimension mismatch: A is %dx%d, y has %d", a.R, a.C, y.N))
	}
	if a.R == 0 {
		return
	}
	if t <= 1 || a.R < 2 {
		gemvBlock(alpha, a, x, beta, y)
		return
	}
	p = parallel.OrDefault(p)
	ws := p.Acquire()
	f := ws.Frame("blas.gemv", newGemvFrame).(*gemvFrame)
	f.alpha, f.beta = alpha, beta
	f.a, f.x, f.y = a, x, y
	p.For(t, a.R, f.body)
	f.a, f.x, f.y = mat.View{}, mat.Vec{}, mat.Vec{}
	ws.Release()
}

// gemvFrame caches the parallel Gemv worker closure in a workspace.
type gemvFrame struct {
	alpha, beta float64
	a           mat.View
	x, y        mat.Vec
	body        func(w, lo, hi int)
}

func newGemvFrame() any {
	f := &gemvFrame{}
	f.body = func(_, lo, hi int) {
		gemvBlock(f.alpha, f.a.Slice(lo, hi, 0, f.a.C), f.x, f.beta, sliceVec(f.y, lo, hi))
	}
	return f
}

func sliceVec(v mat.Vec, lo, hi int) mat.Vec {
	return mat.Vec{Data: v.Data[lo*v.Inc:], N: hi - lo, Inc: v.Inc}
}

// gemvBlock handles one contiguous row block sequentially, choosing a
// row-oriented (dot) or column-oriented (axpy) sweep based on A's layout.
func gemvBlock(alpha float64, a mat.View, x mat.Vec, beta float64, y mat.Vec) {
	if beta != 1 {
		if beta == 0 {
			for i := 0; i < y.N; i++ {
				y.Set(i, 0)
			}
		} else {
			Scal(beta, y)
		}
	}
	if alpha == 0 || a.C == 0 {
		return
	}
	if a.CS == 1 {
		// Row-major-like: each output element is a contiguous dot product.
		for i := 0; i < a.R; i++ {
			y.Set(i, y.At(i)+alpha*Dot(a.Row(i), x))
		}
		return
	}
	if a.RS == 1 && y.Inc == 1 {
		// Column-major: stream columns with axpy into contiguous y.
		yd := y.Data[:y.N]
		for j := 0; j < a.C; j++ {
			ax := alpha * x.At(j)
			if ax == 0 {
				continue
			}
			col := a.Col(j)
			cd := col.Data[:col.N]
			for i := range cd {
				yd[i] += ax * cd[i]
			}
		}
		return
	}
	// General strides.
	for i := 0; i < a.R; i++ {
		s := 0.0
		for j := 0; j < a.C; j++ {
			s += a.At(i, j) * x.At(j)
		}
		y.Set(i, y.At(i)+alpha*s)
	}
}
