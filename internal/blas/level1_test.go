package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func vec(xs ...float64) mat.Vec { return mat.FromSlice(xs) }

func TestDot(t *testing.T) {
	if got := Dot(vec(1, 2, 3), vec(4, 5, 6)); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	// Length 5 exercises both the unrolled body and the tail.
	if got := Dot(vec(1, 1, 1, 1, 1), vec(1, 2, 3, 4, 5)); got != 15 {
		t.Errorf("Dot = %v, want 15", got)
	}
	if got := Dot(vec(), vec()); got != 0 {
		t.Errorf("empty Dot = %v, want 0", got)
	}
}

func TestDotStrided(t *testing.T) {
	x := mat.Vec{Data: []float64{1, 0, 2, 0, 3}, N: 3, Inc: 2}
	y := vec(1, 1, 1)
	if got := Dot(x, y); got != 6 {
		t.Errorf("strided Dot = %v, want 6", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot(vec(1, 2), vec(1))
}

func TestAxpy(t *testing.T) {
	y := vec(1, 1, 1, 1, 1)
	Axpy(2, vec(1, 2, 3, 4, 5), y)
	want := []float64{3, 5, 7, 9, 11}
	for i, v := range y.Data {
		if v != want[i] {
			t.Errorf("axpy[%d] = %v, want %v", i, v, want[i])
		}
	}
	// alpha = 0 is a no-op.
	before := append([]float64(nil), y.Data...)
	Axpy(0, vec(9, 9, 9, 9, 9), y)
	for i := range before {
		if y.Data[i] != before[i] {
			t.Error("axpy with alpha=0 modified y")
		}
	}
}

func TestAxpyStrided(t *testing.T) {
	y := mat.Vec{Data: []float64{0, -1, 0, -1}, N: 2, Inc: 2}
	Axpy(1, vec(5, 7), y)
	if y.Data[0] != 5 || y.Data[2] != 7 || y.Data[1] != -1 {
		t.Errorf("strided axpy wrong: %v", y.Data)
	}
}

func TestScal(t *testing.T) {
	x := vec(1, 2, 3)
	Scal(3, x)
	if x.Data[0] != 3 || x.Data[2] != 9 {
		t.Errorf("scal wrong: %v", x.Data)
	}
	s := mat.Vec{Data: []float64{1, 100, 2}, N: 2, Inc: 2}
	Scal(2, s)
	if s.Data[0] != 2 || s.Data[2] != 4 || s.Data[1] != 100 {
		t.Errorf("strided scal wrong: %v", s.Data)
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2(vec(3, 4)); math.Abs(got-5) > 1e-15 {
		t.Errorf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(vec(0, 0, 0)); got != 0 {
		t.Errorf("Nrm2 of zero = %v", got)
	}
	// Overflow safety: plain sum of squares would overflow.
	big := 1e200
	if got := Nrm2(vec(big, big)); math.Abs(got-big*math.Sqrt2) > 1e186 {
		t.Errorf("Nrm2 overflow-unsafe: %v", got)
	}
}

func TestAsumIAmax(t *testing.T) {
	if got := Asum(vec(-1, 2, -3)); got != 6 {
		t.Errorf("Asum = %v, want 6", got)
	}
	if got := IAmax(vec(-1, 5, -7, 2)); got != 2 {
		t.Errorf("IAmax = %v, want 2", got)
	}
	if got := IAmax(vec()); got != -1 {
		t.Errorf("IAmax empty = %v, want -1", got)
	}
}

func TestCopyVec(t *testing.T) {
	y := vec(0, 0, 0)
	CopyVec(vec(1, 2, 3), y)
	if y.Data[1] != 2 {
		t.Errorf("copy wrong: %v", y.Data)
	}
	ys := mat.Vec{Data: make([]float64, 6), N: 3, Inc: 2}
	CopyVec(vec(7, 8, 9), ys)
	if ys.Data[0] != 7 || ys.Data[2] != 8 || ys.Data[4] != 9 {
		t.Errorf("strided copy wrong: %v", ys.Data)
	}
}

func TestHad(t *testing.T) {
	z := make([]float64, 5)
	Had([]float64{1, 2, 3, 4, 5}, []float64{2, 2, 2, 2, 2}, z)
	for i, v := range z {
		if v != float64(i+1)*2 {
			t.Errorf("Had[%d] = %v", i, v)
		}
	}
	// In-place use: z aliases x, as in the KRP inner loop.
	x := []float64{1, 2, 3}
	Had(x, []float64{3, 3, 3}, x)
	if x[0] != 3 || x[2] != 9 {
		t.Errorf("in-place Had wrong: %v", x)
	}
}

func TestHadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Had([]float64{1}, []float64{1, 2}, []float64{0})
}

// Property: Dot is bilinear in its first argument.
func TestDotBilinearQuick(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 17
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i], y[i], z[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		ax := make([]float64, n)
		for i := range ax {
			ax[i] = alpha*x[i] + y[i]
		}
		lhs := Dot(mat.FromSlice(ax), mat.FromSlice(z))
		rhs := alpha*Dot(mat.FromSlice(x), mat.FromSlice(z)) + Dot(mat.FromSlice(y), mat.FromSlice(z))
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// strideOut spreads xs into a stride-2 vector over fresh backing storage,
// so unit-stride fast paths can be checked against the strided reference.
func strideOut(xs []float64) mat.Vec {
	data := make([]float64, 2*len(xs))
	for i, v := range xs {
		data[2*i] = v
	}
	return mat.Vec{Data: data, N: len(xs), Inc: 2}
}

// TestUnitStrideFastPaths checks that the unit-stride specializations of
// the reductions (IAmax, Asum, Nrm2) agree with the strided reference loop
// on the same values, across lengths that cover every vector tail.
func TestUnitStrideFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 100, 1001} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			if rng.Intn(11) == 0 {
				xs[i] = 0
			}
		}
		unit, strided := mat.FromSlice(xs), strideOut(xs)
		// Asum's unit-stride kernel carries multiple partial sums (the simd
		// scalar reference), so it associates the reduction differently from
		// the sequential strided loop: compare with a roundoff tolerance.
		// Nrm2 and IAmax run the identical sequential recurrence on both
		// paths, so they must agree exactly.
		if got, want := Asum(unit), Asum(strided); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("n=%d: Asum unit %v != strided %v", n, got, want)
		}
		if got, want := Nrm2(unit), Nrm2(strided); got != want {
			t.Errorf("n=%d: Nrm2 unit %v != strided %v", n, got, want)
		}
		if got, want := IAmax(unit), IAmax(strided); got != want {
			t.Errorf("n=%d: IAmax unit %v != strided %v", n, got, want)
		}
	}
}

// TestIAmaxTies pins the tie-breaking contract: the earliest index of the
// largest magnitude wins, on both the unit-stride and strided paths.
func TestIAmaxTies(t *testing.T) {
	xs := []float64{2, -7, 7, -7, 1}
	if got := IAmax(mat.FromSlice(xs)); got != 1 {
		t.Errorf("IAmax tie unit-stride = %d, want 1", got)
	}
	if got := IAmax(strideOut(xs)); got != 1 {
		t.Errorf("IAmax tie strided = %d, want 1", got)
	}
}

func TestHadAccum(t *testing.T) {
	z := []float64{1, 1, 1, 1, 1}
	HadAccum([]float64{1, 2, 3, 4, 5}, []float64{2, 2, 2, 2, 2}, z)
	for i, v := range z {
		if v != float64(i+1)*2+1 {
			t.Errorf("HadAccum[%d] = %v", i, v)
		}
	}
	// Accumulating in place onto an operand (z aliases x exactly).
	x := []float64{1, 2, 3}
	HadAccum(x, []float64{3, 3, 3}, x)
	if x[0] != 4 || x[1] != 8 || x[2] != 12 {
		t.Errorf("in-place HadAccum wrong: %v", x)
	}
}

func TestHadAccumMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	HadAccum([]float64{1}, []float64{1, 2}, []float64{0})
}
