package blas

import (
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/simd"
)

// The simd micro-kernel is specialized to the 4×4 tile; this trips at
// compile time if the blocking constants ever change without it.
var _ [16]struct{} = [mr * nr]struct{}{}

// smallGemmFlops is the threshold below which the packed path is not worth
// its setup cost and a direct loop is used instead. The 1-step algorithm's
// internal modes issue many GEMMs of exactly this size class (I_n × I^L_n
// blocks times I^L_n × C), so the small path matters.
const smallGemmFlops = 256 * 1024

// Gemm computes C = alpha*A*B + beta*C using t workers and default
// blocking. Transposition is expressed through views: pass A.T() for AᵀB.
// Parallel work runs on the default persistent pool; pack buffers come
// from the pool's reusable workspaces, so repeated calls allocate nothing.
func Gemm(t int, alpha float64, a, b mat.View, beta float64, c mat.View) {
	GemmBlockedOn(nil, t, alpha, a, b, beta, c, Blocking{})
}

// GemmOn is Gemm executed on an explicit executor (a pool or a
// scheduler-granted lease).
func GemmOn(p parallel.Executor, t int, alpha float64, a, b mat.View, beta float64, c mat.View) {
	GemmBlockedOn(p, t, alpha, a, b, beta, c, Blocking{})
}

// GemmBlocked is Gemm with explicit cache-blocking parameters (for the
// blocking ablation benchmark).
func GemmBlocked(t int, alpha float64, a, b mat.View, beta float64, c mat.View, bl Blocking) {
	GemmBlockedOn(nil, t, alpha, a, b, beta, c, bl)
}

// GemmArena computes C = alpha*A*B + beta*C sequentially on the calling
// goroutine, taking pack buffers from the given arena. It exists for
// kernel worker bodies, which already execute inside a parallel region and
// own a per-worker arena: calling it never touches a pool, so it is safe
// (and allocation-free) inside dispatched code.
func GemmArena(ar *parallel.Arena, alpha float64, a, b mat.View, beta float64, c mat.View) {
	GemmArenaClass(ar, 0, alpha, a, b, beta, c)
}

// GemmArenaClass is GemmArena with the small-vs-blocked path decision pinned
// to classM logical rows instead of a.R (classM <= 0 keeps the natural
// choice). The tiled MTTKRP kernels call it when a GEMM computes a row
// slice of a larger logical product: within either path the accumulation
// order of an output element never depends on the row count, but which
// path runs is chosen by problem volume, so a tile must inherit the full
// problem's choice for its output bits to match the untiled kernel's.
func GemmArenaClass(ar *parallel.Arena, classM int, alpha float64, a, b mat.View, beta float64, c mat.View) {
	m, n, k := checkGemmDims(a, b, c)
	if m == 0 || n == 0 {
		return
	}
	scaleRows(beta, c)
	if alpha == 0 || k == 0 {
		return
	}
	if classM <= 0 {
		classM = m
	}
	if int64(classM)*int64(n)*int64(k) <= smallGemmFlops {
		gemmSmallAcc(alpha, a, b, c)
		return
	}
	gemmStripe(alpha, a, b, c, Blocking{}.orDefault(), ar)
}

// GemmOnClass is GemmOn with the small-vs-blocked path decision pinned to
// classM logical rows instead of a.R (classM <= 0 keeps the natural
// choice); see GemmArenaClass for why tiled callers need the pin.
func GemmOnClass(p parallel.Executor, t, classM int, alpha float64, a, b mat.View, beta float64, c mat.View) {
	gemmBlockedOnClass(p, t, classM, alpha, a, b, beta, c, Blocking{})
}

// GemmBlockedOn is the full GEMM entry point: explicit executor, worker
// count and blocking parameters. A nil executor selects the process-wide
// default pool, resolved only when pack buffers or a dispatch are actually
// needed.
func GemmBlockedOn(p parallel.Executor, t int, alpha float64, a, b mat.View, beta float64, c mat.View, bl Blocking) {
	gemmBlockedOnClass(p, t, 0, alpha, a, b, beta, c, bl)
}

func gemmBlockedOnClass(p parallel.Executor, t, classM int, alpha float64, a, b mat.View, beta float64, c mat.View, bl Blocking) {
	m, n, k := checkGemmDims(a, b, c)
	if m == 0 || n == 0 {
		return
	}
	if classM <= 0 {
		classM = m
	}
	t = parallel.EffectiveOn(p, t) // one resolution rule everywhere; leases cap at their budget
	small := int64(classM)*int64(n)*int64(k) <= smallGemmFlops
	if t <= 1 || (small && m < 2*t) {
		scaleRows(beta, c)
		if alpha == 0 || k == 0 {
			return
		}
		if small {
			gemmSmallAcc(alpha, a, b, c)
			return
		}
		p = parallel.OrDefault(p)
		ws := p.Acquire()
		gemmStripe(alpha, a, b, c, bl.orDefault(), ws.Arena(0))
		ws.Release()
		return
	}

	p = parallel.OrDefault(p)
	ws := p.Acquire()
	f := ws.Frame("blas.gemm", newGemmFrame).(*gemmFrame)
	f.alpha, f.beta = alpha, beta
	f.a, f.b, f.c = a, b, c
	f.m, f.n, f.k = m, n, k
	f.bl = bl.orDefault()
	f.ws = ws
	if beta != 1 {
		p.For(t, c.R, f.scaleBody)
	}
	switch {
	case alpha == 0 || k == 0:
	case small:
		p.For(t, m, f.smallBody)
	default:
		// Worker split: divide the M dimension into contiguous stripes, one
		// per worker. Each worker runs the full blocked loop nest on its
		// stripe, packing its own A panels. B panels are packed redundantly
		// per worker; for the tall-and-skinny shapes MTTKRP produces (huge
		// M, small N) the duplicated packing cost is negligible and avoiding
		// cross-worker synchronization keeps the scaling clean. The K
		// dimension is never split (see package comment).
		f.tm = parallel.Clamp(t, (m+mr-1)/mr)
		if f.tm == 1 {
			gemmStripe(alpha, a, b, c, f.bl, ws.Arena(0))
		} else {
			ws.Arena(f.tm - 1) // pre-grow arenas before the dispatch
			p.Run(f.tm, f.stripeBody)
		}
	}
	f.a, f.b, f.c = mat.View{}, mat.View{}, mat.View{}
	f.ws = nil
	ws.Release()
}

// gemmFrame holds the per-call parameters of a parallel GEMM plus the
// pre-bound worker closures, cached in a workspace so dispatching repeated
// GEMMs allocates nothing.
type gemmFrame struct {
	alpha, beta float64
	a, b, c     mat.View
	m, n, k, tm int
	bl          Blocking
	ws          *parallel.Workspace
	scaleBody   func(w, lo, hi int)
	smallBody   func(w, lo, hi int)
	stripeBody  func(w int)
}

func newGemmFrame() any {
	f := &gemmFrame{}
	f.scaleBody = func(_, lo, hi int) {
		scaleRows(f.beta, f.c.Slice(lo, hi, 0, f.n))
	}
	f.smallBody = func(_, lo, hi int) {
		gemmSmallAcc(f.alpha, f.a.Slice(lo, hi, 0, f.k), f.b, f.c.Slice(lo, hi, 0, f.n))
	}
	f.stripeBody = func(w int) {
		r0, r1 := parallel.BlockRange((f.m+mr-1)/mr, f.tm, w)
		lo, hi := r0*mr, r1*mr
		if hi > f.m {
			hi = f.m
		}
		if lo >= hi {
			return
		}
		gemmStripe(f.alpha, f.a.Slice(lo, hi, 0, f.k), f.b, f.c.Slice(lo, hi, 0, f.n), f.bl, f.ws.Arena(w))
	}
	return f
}

// scaleRows computes C *= beta sequentially (beta == 0 clears).
func scaleRows(beta float64, c mat.View) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		c.Zero()
		return
	}
	if c.CS == 1 {
		for i := 0; i < c.R; i++ {
			simd.Scale(beta, c.Data[i*c.RS:i*c.RS+c.C])
		}
		return
	}
	for i := 0; i < c.R; i++ {
		for j := 0; j < c.C; j++ {
			c.Set(i, j, beta*c.At(i, j))
		}
	}
}

// gemmSmallAcc computes C += alpha*A*B for small problems, dispatching to
// an i-k-j sweep over contiguous rows when the layouts allow (the common
// case: row-major KRP blocks times row-major outputs) and a direct triple
// loop otherwise.
func gemmSmallAcc(alpha float64, a, b, c mat.View) {
	if b.CS == 1 && c.CS == 1 {
		gemmIKJ(alpha, a, b, c)
		return
	}
	gemmNaiveAcc(alpha, a, b, c)
}

// gemmIKJ computes C += alpha*A*B with an i-k-j loop: each A element
// scales a contiguous row of B into a contiguous row of C. Requires unit
// column strides on B and C.
func gemmIKJ(alpha float64, a, b, c mat.View) {
	m, n, k := a.R, b.C, a.C
	for i := 0; i < m; i++ {
		crow := c.Data[i*c.RS : i*c.RS+n]
		for p := 0; p < k; p++ {
			aip := alpha * a.At(i, p)
			if aip == 0 {
				continue
			}
			// crow += aip * brow: the axpy kernel, elementwise and
			// mul-then-add, so the vectorized path is bit-identical.
			simd.Axpy(aip, b.Data[p*b.RS:p*b.RS+n], crow)
		}
	}
}

// gemmNaiveAcc computes C += alpha*A*B with a direct loop; used for tiny
// problems with awkward strides and as the reference in tests.
func gemmNaiveAcc(alpha float64, a, b, c mat.View) {
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			s := 0.0
			for p := 0; p < a.C; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Add(i, j, alpha*s)
		}
	}
}

// gemmStripe runs the five-loop blocked GEMM (BLIS structure) on one
// contiguous stripe of rows, sequentially: C += alpha*A*B. Packing
// buffers are sized to the actual block extents and leased from the
// worker's arena, so same-shaped stripes reuse one pair of panels.
func gemmStripe(alpha float64, a, b, c mat.View, bl Blocking, ar *parallel.Arena) {
	m, n, k := a.R, b.C, a.C
	ap := ar.Float64("blas.packA", min(bl.MC, roundUp(m, mr))*min(bl.KC, k))
	bp := ar.Float64("blas.packB", min(bl.KC, k)*min(bl.NC, roundUp(n, nr)))
	// The micro-kernel accumulator lives in the arena rather than on the
	// stack: escape analysis cannot see through the simd dispatch pointer,
	// so a stack local would be moved to the heap on every stripe.
	acc := (*[mr * nr]float64)(ar.Float64("blas.acc", mr*nr))
	for jc := 0; jc < n; jc += bl.NC {
		nc := min(bl.NC, n-jc)
		for pc := 0; pc < k; pc += bl.KC {
			kc := min(bl.KC, k-pc)
			packB(b.Slice(pc, pc+kc, jc, jc+nc), bp)
			for ic := 0; ic < m; ic += bl.MC {
				mc := min(bl.MC, m-ic)
				packA(a.Slice(ic, ic+mc, pc, pc+kc), ap)
				cBlk := c.Slice(ic, ic+mc, jc, jc+nc)
				for jr := 0; jr < nc; jr += nr {
					nrr := min(nr, nc-jr)
					for ir := 0; ir < mc; ir += mr {
						mrr := min(mr, mc-ir)
						microKernel(kc, ap[(ir/mr)*mr*kc:], bp[(jr/nr)*nr*kc:], acc)
						writeBack(alpha, acc, cBlk, ir, jr, mrr, nrr)
					}
				}
			}
		}
	}
}

// packA copies an mc×kc block of A into micro-panels of mr rows stored
// column-by-column: panel p, column q, row r lives at
// ap[p*mr*kc + q*mr + r]. Rows beyond mc are zero-padded so the
// micro-kernel never branches.
func packA(a mat.View, ap []float64) {
	mc, kc := a.R, a.C
	idx := 0
	for p := 0; p < mc; p += mr {
		rows := min(mr, mc-p)
		if a.CS == 1 {
			// Row-major source: gather rows, then interleave.
			base := p * a.RS
			for q := 0; q < kc; q++ {
				for r := 0; r < rows; r++ {
					ap[idx+r] = a.Data[base+r*a.RS+q]
				}
				for r := rows; r < mr; r++ {
					ap[idx+r] = 0
				}
				idx += mr
			}
			continue
		}
		for q := 0; q < kc; q++ {
			for r := 0; r < rows; r++ {
				ap[idx+r] = a.At(p+r, q)
			}
			for r := rows; r < mr; r++ {
				ap[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packB copies a kc×nc block of B into micro-panels of nr columns stored
// row-by-row: panel p, row q, column cidx lives at
// bp[p*nr*kc + q*nr + cidx], zero-padded to nr columns.
func packB(b mat.View, bp []float64) {
	kc, nc := b.R, b.C
	idx := 0
	for p := 0; p < nc; p += nr {
		cols := min(nr, nc-p)
		if b.CS == 1 {
			for q := 0; q < kc; q++ {
				base := q*b.RS + p
				for cidx := 0; cidx < cols; cidx++ {
					bp[idx+cidx] = b.Data[base+cidx]
				}
				for cidx := cols; cidx < nr; cidx++ {
					bp[idx+cidx] = 0
				}
				idx += nr
			}
			continue
		}
		for q := 0; q < kc; q++ {
			for cidx := 0; cidx < cols; cidx++ {
				bp[idx+cidx] = b.At(q, p+cidx)
			}
			for cidx := cols; cidx < nr; cidx++ {
				bp[idx+cidx] = 0
			}
			idx += nr
		}
	}
}

// microKernel computes a dense mr×nr = (mr×kc)·(kc×nr) product from packed
// panels into acc. It is the innermost loop of the whole library and
// dispatches to internal/simd: four vector accumulators on AVX2 hosts, the
// bit-identical 16-register scalar reference elsewhere.
func microKernel(kc int, ap, bp []float64, acc *[mr * nr]float64) {
	simd.Gemm4x4(kc, ap, bp, acc)
}

func writeBack(alpha float64, acc *[mr * nr]float64, c mat.View, ir, jr, mrr, nrr int) {
	for r := 0; r < mrr; r++ {
		for q := 0; q < nrr; q++ {
			c.Add(ir+r, jr+q, alpha*acc[r*nr+q])
		}
	}
}
