package blas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// gemmRef computes C = alpha*A*B + beta*C with a plain triple loop.
func gemmRef(alpha float64, a, b mat.View, beta float64, c mat.View) {
	for i := 0; i < c.R; i++ {
		for j := 0; j < c.C; j++ {
			s := 0.0
			for p := 0; p < a.C; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func randomView(rng *rand.Rand, r, c int, layout int) mat.View {
	var v mat.View
	switch layout {
	case 0:
		v = mat.NewDense(r, c)
	case 1:
		v = mat.NewColMajor(r, c)
	default:
		// Transposed dense: exercise non-canonical strides.
		v = mat.NewDense(c, r).T()
	}
	v.Randomize(rng)
	return v
}

func TestGemmSmallKnown(t *testing.T) {
	a := mat.FromRowMajor([]float64{1, 2, 3, 4}, 2, 2)
	b := mat.FromRowMajor([]float64{5, 6, 7, 8}, 2, 2)
	c := mat.NewDense(2, 2)
	Gemm(1, 1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	for i, v := range c.Data {
		if v != want[i] {
			t.Errorf("C[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestGemmAgainstReferenceAllLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 2, 4}, {4, 4, 4}, {5, 7, 3}, {17, 13, 29},
		{64, 8, 130}, {130, 5, 300}, {33, 65, 257}, {4, 25, 1000},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for la := 0; la < 3; la++ {
			for lb := 0; lb < 3; lb++ {
				for lc := 0; lc < 2; lc++ {
					a := randomView(rng, m, k, la)
					b := randomView(rng, k, n, lb)
					c := randomView(rng, m, n, lc)
					want := c.Clone()
					gemmRef(1.5, a, b, 0.5, want)
					for _, threads := range []int{1, 2, 4} {
						got := c.Clone()
						Gemm(threads, 1.5, a, b, 0.5, got)
						if !mat.ApproxEqual(got, want, 1e-12) {
							t.Fatalf("gemm mismatch m=%d n=%d k=%d layouts=%d%d%d threads=%d: maxdiff %g",
								m, n, k, la, lb, lc, threads, mat.MaxAbsDiff(got, want))
						}
					}
				}
			}
		}
	}
}

func TestGemmBetaZeroOverwritesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomView(rng, 10, 12, 0)
	b := randomView(rng, 12, 6, 0)
	c := mat.NewDense(10, 6)
	for i := range c.Data {
		c.Data[i] = 1e300 // beta=0 must not propagate this
	}
	Gemm(2, 1, a, b, 0, c)
	want := mat.NewDense(10, 6)
	gemmRef(1, a, b, 0, want)
	if !mat.ApproxEqual(c, want, 1e-12) {
		t.Error("beta=0 did not fully overwrite C")
	}
}

func TestGemmAlphaZeroOnlyScales(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomView(rng, 8, 9, 0)
	b := randomView(rng, 9, 4, 0)
	c := randomView(rng, 8, 4, 0)
	want := c.Clone()
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			want.Set(i, j, 2*want.At(i, j))
		}
	}
	Gemm(1, 0, a, b, 2, c)
	if !mat.ApproxEqual(c, want, 1e-14) {
		t.Error("alpha=0 gemm should only scale C")
	}
}

func TestGemmEmptyDims(t *testing.T) {
	a := mat.NewDense(0, 3)
	b := mat.NewDense(3, 4)
	c := mat.NewDense(0, 4)
	Gemm(2, 1, a, b, 0, c) // must not panic
	a2 := mat.NewDense(3, 0)
	b2 := mat.NewDense(0, 4)
	c2 := mat.NewDense(3, 4)
	c2.Fill(5)
	Gemm(2, 1, a2, b2, 1, c2) // k = 0: C unchanged (beta=1)
	for _, v := range c2.Data {
		if v != 5 {
			t.Fatal("k=0 gemm with beta=1 modified C")
		}
	}
}

func TestGemmDimensionMismatchPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Gemm(1, 1, mat.NewDense(2, 3), mat.NewDense(4, 2), 0, mat.NewDense(2, 2)) },
		func() { Gemm(1, 1, mat.NewDense(2, 3), mat.NewDense(3, 2), 0, mat.NewDense(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGemmTransposedViewsComputeAtB(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomView(rng, 40, 6, 0) // Gram-style: AᵀA
	c := mat.NewDense(6, 6)
	Gemm(2, 1, a.T(), a, 0, c)
	want := mat.NewDense(6, 6)
	gemmRef(1, a.T(), a, 0, want)
	if !mat.ApproxEqual(c, want, 1e-12) {
		t.Error("AᵀA via transposed view is wrong")
	}
	// Result must be symmetric.
	for i := 0; i < 6; i++ {
		for j := 0; j < i; j++ {
			d := c.At(i, j) - c.At(j, i)
			if d > 1e-12 || d < -1e-12 {
				t.Fatal("Gram matrix not symmetric")
			}
		}
	}
}

func TestGemmBlockedCustomBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomView(rng, 50, 70, 0)
	b := randomView(rng, 70, 30, 1)
	want := mat.NewDense(50, 30)
	gemmRef(1, a, b, 0, want)
	for _, bl := range []Blocking{{MC: 8, KC: 16, NC: 8}, {MC: 4, KC: 1, NC: 4}, {MC: 1000, KC: 1000, NC: 1000}} {
		c := mat.NewDense(50, 30)
		GemmBlocked(2, 1, a, b, 0, c, bl)
		if !mat.ApproxEqual(c, want, 1e-12) {
			t.Fatalf("blocking %+v wrong: maxdiff %g", bl, mat.MaxAbsDiff(c, want))
		}
	}
}

// Property test: random shapes, strides, and coefficients agree with the
// reference triple loop.
func TestGemmQuick(t *testing.T) {
	f := func(seed int64, m8, n8, k8, la, lb uint8, alpha, beta float64) bool {
		if alpha != alpha || beta != beta || abs(alpha) > 100 || abs(beta) > 100 {
			return true // skip NaN/huge
		}
		rng := rand.New(rand.NewSource(seed))
		m := int(m8%40) + 1
		n := int(n8%40) + 1
		k := int(k8)%300 + 1
		a := randomView(rng, m, k, int(la%3))
		b := randomView(rng, k, n, int(lb%3))
		c := randomView(rng, m, n, 0)
		want := c.Clone()
		gemmRef(alpha, a, b, beta, want)
		Gemm(2, alpha, a, b, beta, c)
		return mat.ApproxEqual(c, want, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestGemvAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {3, 5}, {64, 100}, {101, 7}} {
		m, n := sh[0], sh[1]
		for layout := 0; layout < 3; layout++ {
			a := randomView(rng, m, n, layout)
			x := make([]float64, n)
			y := make([]float64, m)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			for i := range y {
				y[i] = rng.NormFloat64()
			}
			want := make([]float64, m)
			for i := 0; i < m; i++ {
				s := 0.0
				for j := 0; j < n; j++ {
					s += a.At(i, j) * x[j]
				}
				want[i] = 2*s + 0.5*y[i]
			}
			for _, threads := range []int{1, 2, 3} {
				got := append([]float64(nil), y...)
				Gemv(threads, 2, a, mat.FromSlice(x), 0.5, mat.FromSlice(got))
				for i := range want {
					if d := got[i] - want[i]; d > 1e-10 || d < -1e-10 {
						t.Fatalf("gemv m=%d n=%d layout=%d threads=%d: y[%d]=%v want %v",
							m, n, layout, threads, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemvBetaZero(t *testing.T) {
	a := mat.FromRowMajor([]float64{1, 2, 3, 4}, 2, 2)
	y := []float64{1e300, 1e300}
	Gemv(1, 1, a, mat.FromSlice([]float64{1, 1}), 0, mat.FromSlice(y))
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("gemv beta=0 wrong: %v", y)
	}
}

func TestGemvMismatchPanics(t *testing.T) {
	for i, fn := range []func(){
		func() {
			Gemv(1, 1, mat.NewDense(2, 3), mat.FromSlice(make([]float64, 2)), 0, mat.FromSlice(make([]float64, 2)))
		},
		func() {
			Gemv(1, 1, mat.NewDense(2, 3), mat.FromSlice(make([]float64, 3)), 0, mat.FromSlice(make([]float64, 3)))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGemvStridedY(t *testing.T) {
	a := mat.FromRowMajor([]float64{1, 2, 3, 4}, 2, 2)
	yBuf := make([]float64, 4)
	y := mat.Vec{Data: yBuf, N: 2, Inc: 2}
	Gemv(1, 1, a, mat.FromSlice([]float64{1, 2}), 0, y)
	if yBuf[0] != 5 || yBuf[2] != 11 {
		t.Errorf("strided-y gemv wrong: %v", yBuf)
	}
}

// TestGemmDeterministicAcrossThreads documents the no-K-split design: each
// output element is accumulated by exactly one worker in a fixed order, so
// results are bitwise identical for every thread count (unlike K-split
// GEMMs, whose reduction order varies).
func TestGemmDeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomView(rng, 67, 311, 0)
	b := randomView(rng, 311, 23, 1)
	ref := mat.NewDense(67, 23)
	Gemm(1, 1.0, a, b, 0, ref)
	for _, threads := range []int{2, 3, 5, 16} {
		c := mat.NewDense(67, 23)
		Gemm(threads, 1.0, a, b, 0, c)
		for i := range c.Data {
			if c.Data[i] != ref.Data[i] {
				t.Fatalf("threads=%d: element %d differs bitwise (%v vs %v)",
					threads, i, c.Data[i], ref.Data[i])
			}
		}
	}
}

// TestGemvDeterministicAcrossThreads: same invariant for GEMV (row-split).
func TestGemvDeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomView(rng, 129, 77, 0)
	x := make([]float64, 77)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, 129)
	Gemv(1, 1, a, mat.FromSlice(x), 0, mat.FromSlice(ref))
	for _, threads := range []int{2, 4, 9} {
		y := make([]float64, 129)
		Gemv(threads, 1, a, mat.FromSlice(x), 0, mat.FromSlice(y))
		for i := range y {
			if y[i] != ref[i] {
				t.Fatalf("threads=%d: y[%d] differs bitwise", threads, i)
			}
		}
	}
}
