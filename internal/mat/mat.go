// Package mat provides dense matrix and vector views with arbitrary row and
// column strides. A single View type describes row-major matrices,
// column-major matrices, transposes, and submatrices without copying, which
// is exactly what the MTTKRP algorithms need: the paper's matricizations
// X_(0), X_(n) blocks and X_(0:n) are all strided windows onto one tensor
// buffer.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// View is a rectangular window onto a float64 buffer. Element (i, j) lives
// at Data[i*RS + j*CS]. RS/CS may describe row-major (RS=cols, CS=1),
// column-major (RS=1, CS=rows), or any other consistent stride pattern.
type View struct {
	Data []float64
	R, C int // dimensions
	RS   int // row stride
	CS   int // column stride
}

// FromRowMajor wraps data as an r×c row-major matrix view.
func FromRowMajor(data []float64, r, c int) View {
	return View{Data: data, R: r, C: c, RS: c, CS: 1}
}

// FromColMajor wraps data as an r×c column-major matrix view.
func FromColMajor(data []float64, r, c int) View {
	return View{Data: data, R: r, C: c, RS: 1, CS: r}
}

// NewDense allocates an r×c row-major matrix.
func NewDense(r, c int) View {
	return FromRowMajor(make([]float64, r*c), r, c)
}

// NewColMajor allocates an r×c column-major matrix.
func NewColMajor(r, c int) View {
	return FromColMajor(make([]float64, r*c), r, c)
}

// At returns element (i, j).
func (v View) At(i, j int) float64 { return v.Data[i*v.RS+j*v.CS] }

// Set assigns element (i, j).
func (v View) Set(i, j int, x float64) { v.Data[i*v.RS+j*v.CS] = x }

// Add accumulates x into element (i, j).
func (v View) Add(i, j int, x float64) { v.Data[i*v.RS+j*v.CS] += x }

// T returns the transposed view (no copy).
func (v View) T() View {
	return View{Data: v.Data, R: v.C, C: v.R, RS: v.CS, CS: v.RS}
}

// Slice returns the submatrix view of rows [r0, r1) and columns [c0, c1).
func (v View) Slice(r0, r1, c0, c1 int) View {
	if r0 < 0 || r1 < r0 || r1 > v.R || c0 < 0 || c1 < c0 || c1 > v.C {
		panic(fmt.Sprintf("mat: slice [%d:%d, %d:%d] out of bounds of %dx%d", r0, r1, c0, c1, v.R, v.C))
	}
	off := r0*v.RS + c0*v.CS
	return View{Data: v.Data[off:], R: r1 - r0, C: c1 - c0, RS: v.RS, CS: v.CS}
}

// Row returns row i as a vector view.
func (v View) Row(i int) Vec {
	return Vec{Data: v.Data[i*v.RS:], N: v.C, Inc: v.CS}
}

// Col returns column j as a vector view.
func (v View) Col(j int) Vec {
	return Vec{Data: v.Data[j*v.CS:], N: v.R, Inc: v.RS}
}

// IsRowMajor reports whether the view is contiguous row-major.
func (v View) IsRowMajor() bool { return v.CS == 1 && v.RS == v.C }

// IsColMajor reports whether the view is contiguous column-major.
func (v View) IsColMajor() bool { return v.RS == 1 && v.CS == v.R }

// ContiguousRow returns row i as a plain slice when the view is row-major
// with unit column stride; it panics otherwise. Hot loops in the KRP and
// MTTKRP kernels use it to avoid stride arithmetic.
func (v View) ContiguousRow(i int) []float64 {
	if v.CS != 1 {
		panic("mat: ContiguousRow on non-unit column stride")
	}
	off := i * v.RS
	return v.Data[off : off+v.C]
}

// Zero clears every element of the view.
func (v View) Zero() {
	for i := 0; i < v.R; i++ {
		for j := 0; j < v.C; j++ {
			v.Set(i, j, 0)
		}
	}
}

// Fill sets every element to x.
func (v View) Fill(x float64) {
	for i := 0; i < v.R; i++ {
		for j := 0; j < v.C; j++ {
			v.Set(i, j, x)
		}
	}
}

// CopyFrom copies src into v elementwise. Dimensions must match.
func (v View) CopyFrom(src View) {
	if v.R != src.R || v.C != src.C {
		panic(fmt.Sprintf("mat: copy dimension mismatch %dx%d <- %dx%d", v.R, v.C, src.R, src.C))
	}
	for i := 0; i < v.R; i++ {
		for j := 0; j < v.C; j++ {
			v.Set(i, j, src.At(i, j))
		}
	}
}

// Clone returns a freshly allocated row-major copy of v.
func (v View) Clone() View {
	out := NewDense(v.R, v.C)
	out.CopyFrom(v)
	return out
}

// Randomize fills v with uniform values in [0, 1) from rng.
func (v View) Randomize(rng *rand.Rand) {
	for i := 0; i < v.R; i++ {
		for j := 0; j < v.C; j++ {
			v.Set(i, j, rng.Float64())
		}
	}
}

// RandomDense returns an r×c row-major matrix with uniform [0,1) entries.
func RandomDense(r, c int, rng *rand.Rand) View {
	m := NewDense(r, c)
	m.Randomize(rng)
	return m
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have equal dimensions.
func MaxAbsDiff(a, b View) float64 {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("mat: diff dimension mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
	max := 0.0
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			d := math.Abs(a.At(i, j) - b.At(i, j))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// ApproxEqual reports whether a and b agree elementwise within tol,
// relative to the largest magnitude present (mixed absolute/relative test).
func ApproxEqual(a, b View, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	scale := 1.0
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			if m := math.Abs(a.At(i, j)); m > scale {
				scale = m
			}
		}
	}
	return MaxAbsDiff(a, b) <= tol*scale
}

// String renders small matrices for debugging and test failure messages.
func (v View) String() string {
	s := ""
	for i := 0; i < v.R; i++ {
		for j := 0; j < v.C; j++ {
			s += fmt.Sprintf("% 10.4g ", v.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Vec is a strided vector view: element i lives at Data[i*Inc].
type Vec struct {
	Data []float64
	N    int
	Inc  int
}

// FromSlice wraps a slice as a unit-stride vector.
func FromSlice(x []float64) Vec { return Vec{Data: x, N: len(x), Inc: 1} }

// At returns element i.
func (v Vec) At(i int) float64 { return v.Data[i*v.Inc] }

// Set assigns element i.
func (v Vec) Set(i int, x float64) { v.Data[i*v.Inc] = x }

// Contiguous returns the underlying slice when Inc == 1, panicking
// otherwise.
func (v Vec) Contiguous() []float64 {
	if v.Inc != 1 {
		panic("mat: Contiguous on strided vector")
	}
	return v.Data[:v.N]
}
