package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowColMajorIndexing(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	rm := FromRowMajor(data, 2, 3)
	cm := FromColMajor(data, 2, 3)
	// Row-major: [1 2 3; 4 5 6]. Col-major: [1 3 5; 2 4 6].
	if rm.At(0, 2) != 3 || rm.At(1, 0) != 4 {
		t.Errorf("row-major indexing wrong: %v %v", rm.At(0, 2), rm.At(1, 0))
	}
	if cm.At(0, 2) != 5 || cm.At(1, 0) != 2 {
		t.Errorf("col-major indexing wrong: %v %v", cm.At(0, 2), cm.At(1, 0))
	}
	if !rm.IsRowMajor() || rm.IsColMajor() {
		t.Error("row-major flags wrong")
	}
	if !cm.IsColMajor() || cm.IsRowMajor() {
		t.Error("col-major flags wrong")
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomDense(4, 7, rng)
	tt := a.T().T()
	if !ApproxEqual(a, tt, 0) {
		t.Error("T().T() != identity")
	}
	at := a.T()
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSliceViewsShareStorage(t *testing.T) {
	a := NewDense(5, 5)
	s := a.Slice(1, 4, 2, 5)
	if s.R != 3 || s.C != 3 {
		t.Fatalf("slice dims %dx%d, want 3x3", s.R, s.C)
	}
	s.Set(0, 0, 42)
	if a.At(1, 2) != 42 {
		t.Error("slice does not alias parent storage")
	}
}

func TestSliceOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds slice")
		}
	}()
	NewDense(3, 3).Slice(0, 4, 0, 3)
}

func TestRowColVectors(t *testing.T) {
	a := FromRowMajor([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r1 := a.Row(1)
	if r1.N != 3 || r1.At(0) != 4 || r1.At(2) != 6 {
		t.Errorf("row view wrong: %v %v", r1.At(0), r1.At(2))
	}
	c2 := a.Col(2)
	if c2.N != 2 || c2.At(0) != 3 || c2.At(1) != 6 {
		t.Errorf("col view wrong: %v %v", c2.At(0), c2.At(1))
	}
	c2.Set(1, 99)
	if a.At(1, 2) != 99 {
		t.Error("vector view does not alias storage")
	}
}

func TestContiguousRow(t *testing.T) {
	a := FromRowMajor([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	row := a.ContiguousRow(1)
	if len(row) != 3 || row[0] != 4 {
		t.Errorf("ContiguousRow wrong: %v", row)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for strided ContiguousRow")
		}
	}()
	a.T().ContiguousRow(0)
}

func TestCloneAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomDense(3, 4, rng)
	b := a.Clone()
	if !ApproxEqual(a, b, 0) {
		t.Error("clone differs")
	}
	b.Set(0, 0, -1)
	if a.At(0, 0) == -1 {
		t.Error("clone aliases original")
	}
	c := NewColMajor(3, 4)
	c.CopyFrom(a)
	if MaxAbsDiff(a, c) != 0 {
		t.Error("copy across layouts differs")
	}
}

func TestCopyDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense(2, 2).CopyFrom(NewDense(3, 3))
}

func TestZeroFill(t *testing.T) {
	a := NewDense(3, 3)
	a.Fill(7)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != 7 {
				t.Fatal("fill failed")
			}
		}
	}
	a.Zero()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != 0 {
				t.Fatal("zero failed")
			}
		}
	}
}

func TestMaxAbsDiffAndApproxEqual(t *testing.T) {
	a := FromRowMajor([]float64{1, 2, 3, 4}, 2, 2)
	b := FromRowMajor([]float64{1, 2, 3.5, 4}, 2, 2)
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
	if ApproxEqual(a, b, 1e-3) {
		t.Error("ApproxEqual should fail at tight tol")
	}
	if !ApproxEqual(a, b, 0.2) {
		t.Error("ApproxEqual should pass: diff 0.5 <= 0.2*4")
	}
	if ApproxEqual(a, NewDense(3, 2), 1) {
		t.Error("dimension mismatch must not be equal")
	}
}

func TestVecContiguous(t *testing.T) {
	v := FromSlice([]float64{1, 2, 3})
	if got := v.Contiguous(); len(got) != 3 || got[1] != 2 {
		t.Errorf("Contiguous = %v", got)
	}
	strided := Vec{Data: []float64{1, 2, 3, 4}, N: 2, Inc: 2}
	if strided.At(1) != 3 {
		t.Error("strided vec indexing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	strided.Contiguous()
}

// Property: transpose view indexing is consistent for random shapes.
func TestTransposePropertyQuick(t *testing.T) {
	f := func(r8, c8, i8, j8 uint8) bool {
		r := int(r8%8) + 1
		c := int(c8%8) + 1
		i := int(i8) % r
		j := int(j8) % c
		rng := rand.New(rand.NewSource(int64(r*100 + c)))
		a := RandomDense(r, c, rng)
		return a.At(i, j) == a.T().At(j, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: slicing then indexing equals direct offset indexing.
func TestSlicePropertyQuick(t *testing.T) {
	f := func(seed int64, r0u, c0u uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomDense(9, 7, rng)
		r0 := int(r0u % 5)
		c0 := int(c0u % 4)
		s := a.Slice(r0, r0+4, c0, c0+3)
		for i := 0; i < s.R; i++ {
			for j := 0; j < s.C; j++ {
				if s.At(i, j) != a.At(r0+i, c0+j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
