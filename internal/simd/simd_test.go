package simd

import (
	"math"
	"math/rand"
	"testing"
)

// vectorOrSkip returns the vectorized implementation, skipping the test on
// hosts that have none (non-amd64 builds, amd64 without AVX2).
func vectorOrSkip(t *testing.T) *Impl {
	t.Helper()
	v := Vector()
	if v == nil {
		t.Skip("no vectorized kernel set on this host")
	}
	return v
}

// fill populates xs with a mix of magnitudes and signs that exposes
// rounding-order differences: products span many exponents, so any
// grouping or FMA divergence shows up in the low mantissa bits.
func fill(rng *rand.Rand, xs []float64) {
	for i := range xs {
		v := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(13)-6))
		if rng.Intn(64) == 0 {
			v = 0 // exercise ±0 and exact-zero products
		}
		if rng.Intn(97) == 0 {
			v = -v
		}
		xs[i] = v
	}
}

// sizes yields the sweep the bit-identity properties run over: every tail
// remainder 0–7 around the vector widths, plus larger blocks. With the
// random offsets applied by the callers this covers ~200 distinct
// (length, alignment) cases.
func sizes() []int {
	var ns []int
	for n := 0; n <= 40; n++ {
		ns = append(ns, n)
	}
	for _, n := range []int{63, 64, 65, 127, 128, 129, 255, 256, 1000, 1023, 1024, 4096} {
		ns = append(ns, n, n+1, n+3, n+7)
	}
	return ns
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sliceBitsEq(t *testing.T, name string, n int, a, b []float64) {
	t.Helper()
	for i := range a {
		if !bitsEq(a[i], b[i]) {
			t.Fatalf("%s n=%d: element %d differs: scalar %x vector %x",
				name, n, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

// TestKernelsBitIdentical is the dispatch-safety property: for every
// kernel, the vectorized implementation must reproduce the scalar
// reference bit for bit across random contents, every tail remainder, and
// unaligned starting offsets.
func TestKernelsBitIdentical(t *testing.T) {
	v := vectorOrSkip(t)
	s := Scalar()
	rng := rand.New(rand.NewSource(7))
	for _, n := range sizes() {
		off := rng.Intn(4) // misalign the slices relative to the allocation
		buf := func() []float64 {
			b := make([]float64, off+n)
			fill(rng, b)
			return b[off:]
		}
		x, y, z := buf(), buf(), buf()
		alpha := rng.NormFloat64()

		if got, want := v.Dot(x, y), s.Dot(x, y); !bitsEq(got, want) {
			t.Fatalf("Dot n=%d: scalar %x vector %x", n, math.Float64bits(want), math.Float64bits(got))
		}
		if got, want := v.SumAbs(x), s.SumAbs(x); !bitsEq(got, want) {
			t.Fatalf("SumAbs n=%d: scalar %x vector %x", n, math.Float64bits(want), math.Float64bits(got))
		}

		ys, yv := append([]float64(nil), y...), append([]float64(nil), y...)
		s.Axpy(alpha, x, ys)
		v.Axpy(alpha, x, yv)
		sliceBitsEq(t, "Axpy", n, ys, yv)

		xs, xv := append([]float64(nil), x...), append([]float64(nil), x...)
		s.Scale(alpha, xs)
		v.Scale(alpha, xv)
		sliceBitsEq(t, "Scale", n, xs, xv)

		zs, zv := append([]float64(nil), z...), append([]float64(nil), z...)
		s.Had(x, y, zs)
		v.Had(x, y, zv)
		sliceBitsEq(t, "Had", n, zs, zv)

		copy(zs, z)
		copy(zv, z)
		s.HadAcc(x, y, zs)
		v.HadAcc(x, y, zv)
		sliceBitsEq(t, "HadAcc", n, zs, zv)

		copy(ys, y)
		copy(yv, y)
		s.Add(x, ys)
		v.Add(x, yv)
		sliceBitsEq(t, "Add", n, ys, yv)
	}
}

// TestKernelsAliasing pins the exact-aliasing contract the KRP row loops
// rely on (krp.Row computes out = out ∗ row in place): z == x and z == y
// must behave identically under both implementations.
func TestKernelsAliasing(t *testing.T) {
	v := vectorOrSkip(t)
	s := Scalar()
	rng := rand.New(rand.NewSource(11))
	for _, n := range sizes() {
		x := make([]float64, n)
		y := make([]float64, n)
		fill(rng, x)
		fill(rng, y)
		for _, mode := range []string{"z=x", "z=y"} {
			run := func(impl *Impl, f func(x, y, z []float64)) ([]float64, []float64) {
				xc := append([]float64(nil), x...)
				yc := append([]float64(nil), y...)
				if mode == "z=x" {
					f(xc, yc, xc)
				} else {
					f(xc, yc, yc)
				}
				return xc, yc
			}
			xs, ys := run(s, s.Had)
			xv, yv := run(v, v.Had)
			sliceBitsEq(t, "Had/"+mode, n, xs, xv)
			sliceBitsEq(t, "Had/"+mode, n, ys, yv)

			xs, ys = run(s, s.HadAcc)
			xv, yv = run(v, v.HadAcc)
			sliceBitsEq(t, "HadAcc/"+mode, n, xs, xv)
			sliceBitsEq(t, "HadAcc/"+mode, n, ys, yv)
		}
	}
}

// TestGemm4x4BitIdentical sweeps the micro-kernel across k depths
// (including 0 and the non-multiple-of-anything cases).
func TestGemm4x4BitIdentical(t *testing.T) {
	v := vectorOrSkip(t)
	s := Scalar()
	rng := rand.New(rand.NewSource(13))
	for kc := 0; kc <= 80; kc++ {
		ap := make([]float64, 4*kc)
		bp := make([]float64, 4*kc)
		fill(rng, ap)
		fill(rng, bp)
		var as, av [16]float64
		s.Gemm4x4(kc, ap, bp, &as)
		v.Gemm4x4(kc, ap, bp, &av)
		for i := range as {
			if !bitsEq(as[i], av[i]) {
				t.Fatalf("Gemm4x4 kc=%d: acc[%d] scalar %x vector %x",
					kc, i, math.Float64bits(as[i]), math.Float64bits(av[i]))
			}
		}
	}
}

// TestHadExpandBitIdentical covers the internal-mode KRP block expansion,
// including widths with every tail remainder, zero rows/columns, a kl
// buffer that is not a whole number of rows (the scalar reference stops at
// the last full row), and out aliasing kl.
func TestHadExpandBitIdentical(t *testing.T) {
	v := vectorOrSkip(t)
	s := Scalar()
	rng := rand.New(rand.NewSource(17))
	for _, c := range []int{0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 31, 32} {
		for _, rows := range []int{0, 1, 2, 3, 7, 16} {
			row := make([]float64, c)
			kl := make([]float64, rows*c)
			fill(rng, row)
			fill(rng, kl)

			os, ov := make([]float64, rows*c), make([]float64, rows*c)
			fill(rng, os)
			copy(ov, os)
			s.HadExpand(row, kl, os)
			v.HadExpand(row, kl, ov)
			sliceBitsEq(t, "HadExpand", rows*c, os, ov)

			// Ragged kl: one row plus a partial tail must stop identically.
			if c > 1 && rows > 0 {
				ragged := kl[: rows*c-1 : rows*c-1]
				rs := append([]float64(nil), os...)
				rv := append([]float64(nil), ov...)
				s.HadExpand(row, ragged, rs)
				v.HadExpand(row, ragged, rv)
				sliceBitsEq(t, "HadExpand/ragged", rows*c-1, rs, rv)
			}

			// out == kl exact aliasing.
			ks := append([]float64(nil), kl...)
			kv := append([]float64(nil), kl...)
			s.HadExpand(row, ks, ks)
			v.HadExpand(row, kv, kv)
			sliceBitsEq(t, "HadExpand/alias", rows*c, ks, kv)
		}
	}
}

// TestDispatchSwap pins the Use/Active contract the serving A/B flags and
// the MTTKRP_NOSIMD override rely on: swapping implementations changes the
// package-level entry points, and results stay bit-identical across the
// swap.
func TestDispatchSwap(t *testing.T) {
	prev := Active()
	defer Use(prev)

	rng := rand.New(rand.NewSource(19))
	x := make([]float64, 257)
	y := make([]float64, 257)
	fill(rng, x)
	fill(rng, y)

	Use(Scalar())
	if Active().Name != "scalar" {
		t.Fatalf("Active after Use(Scalar()) = %q", Active().Name)
	}
	ds := Dot(x, y)

	if v := Vector(); v != nil {
		Use(v)
		if Active().Name != v.Name {
			t.Fatalf("Active after Use(Vector()) = %q", Active().Name)
		}
		if dv := Dot(x, y); !bitsEq(ds, dv) {
			t.Fatalf("dispatched Dot differs across Use: scalar %x vector %x",
				math.Float64bits(ds), math.Float64bits(dv))
		}
	}
}

// TestNoSIMDEnv pins the MTTKRP_NOSIMD parse rule: empty and "0" keep
// vector dispatch, anything else disables it.
func TestNoSIMDEnv(t *testing.T) {
	cases := map[string]bool{"": false, "0": false, "1": true, "true": true, "off": true, " ": true}
	for v, want := range cases {
		if got := noSIMDEnv(v); got != want {
			t.Errorf("noSIMDEnv(%q) = %v, want %v", v, got, want)
		}
	}
}

// TestBestRespectsEnv ensures MTTKRP_NOSIMD forces the scalar set even on
// vector-capable hosts.
func TestBestRespectsEnv(t *testing.T) {
	t.Setenv("MTTKRP_NOSIMD", "1")
	if got := Best(); got != Scalar() {
		t.Fatalf("Best with MTTKRP_NOSIMD=1 = %q, want scalar", got.Name)
	}
	t.Setenv("MTTKRP_NOSIMD", "0")
	if v := Vector(); v != nil {
		if got := Best(); got != v {
			t.Fatalf("Best with MTTKRP_NOSIMD=0 = %q, want %q", got.Name, v.Name)
		}
	}
}
