package simd

import "math"

// The scalar kernels below are the package's reference implementations:
// portable Go, unrolled so the compiler keeps partial results in registers,
// with explicit reslicing so the inner loops run without bounds checks.
// The vector kernels must match them bit for bit — see the package comment
// for the exact contract (mul-then-add ordering, partial-sum grouping).

// dotScalar keeps eight independent partial sums (matching the two 4-lane
// vector accumulators of the AVX2 kernel), folds them left to right, then
// drains the tail one element at a time.
//
//mttkrp:noalloc
func dotScalar(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
		s4 += x[i+4] * y[i+4]
		s5 += x[i+5] * y[i+5]
		s6 += x[i+6] * y[i+6]
		s7 += x[i+7] * y[i+7]
	}
	s := ((((((s0 + s1) + s2) + s3) + s4) + s5) + s6) + s7
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// axpyScalar computes y += alpha·x. Elementwise, so any vector grouping is
// bit-identical as long as each element is alpha·x[i] rounded once and
// added once.
//
//mttkrp:noalloc
func axpyScalar(alpha float64, x, y []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// scaleScalar computes x *= alpha.
//
//mttkrp:noalloc
func scaleScalar(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// hadScalar computes z = x ∗ y. Safe under exact aliasing of z with x or y.
//
//mttkrp:noalloc
func hadScalar(x, y, z []float64) {
	n := len(z)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		z[i] = x[i] * y[i]
		z[i+1] = x[i+1] * y[i+1]
		z[i+2] = x[i+2] * y[i+2]
		z[i+3] = x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		z[i] = x[i] * y[i]
	}
}

// hadAccScalar computes z += x ∗ y. Safe under exact aliasing of z with x
// or y.
//
//mttkrp:noalloc
func hadAccScalar(x, y, z []float64) {
	n := len(z)
	x, y = x[:n], y[:n]
	for i := range z {
		z[i] += x[i] * y[i]
	}
}

// addScalar computes y += x — the parallel-reduction inner loop.
//
//mttkrp:noalloc
func addScalar(x, y []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += v
	}
}

// sumAbsScalar keeps four independent partial sums (one vector register's
// worth of lanes), folds them left to right, then drains the tail.
//
//mttkrp:noalloc
func sumAbsScalar(x []float64) float64 {
	n := len(x)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += math.Abs(x[i])
		s1 += math.Abs(x[i+1])
		s2 += math.Abs(x[i+2])
		s3 += math.Abs(x[i+3])
	}
	s := ((s0 + s1) + s2) + s3
	for ; i < n; i++ {
		s += math.Abs(x[i])
	}
	return s
}

// gemm4x4Scalar is the reference 4×4 micro-kernel: sixteen accumulators,
// one mul-then-add per (row, column) pair per k step, in k order. The AVX2
// kernel holds each row's four accumulators in one register; per lane the
// operation sequence is identical.
//
//mttkrp:noalloc
func gemm4x4Scalar(kc int, ap, bp []float64, acc *[16]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*4 : kc*4]
	for p := 0; p < kc; p++ {
		a0 := ap[p*4]
		a1 := ap[p*4+1]
		a2 := ap[p*4+2]
		a3 := ap[p*4+3]
		b0 := bp[p*4]
		b1 := bp[p*4+1]
		b2 := bp[p*4+2]
		b3 := bp[p*4+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// hadExpandScalar computes out(l, :) = row ∗ kl(l, :) over flat row-major
// buffers: one Hadamard product of row against every row of kl.
//
//mttkrp:noalloc
func hadExpandScalar(row, kl, out []float64) {
	c := len(row)
	if c == 0 {
		return
	}
	out = out[:len(kl)]
	for base := 0; base+c <= len(kl); base += c {
		hadScalar(row, kl[base:base+c], out[base:base+c])
	}
}
