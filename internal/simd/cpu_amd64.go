//go:build amd64

package simd

// cpuid executes the CPUID instruction with the given leaf/subleaf
// (implemented in cpuid_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports which
// register states the OS saves across context switches.
func xgetbv() (eax, edx uint32)

// avx2Impl is the vectorized kernel set, nil when the host cannot run it.
// It is a package-level variable initializer (not an init function) so it
// is ready before simd.go's init installs Best().
var avx2Impl = detectAVX2()

func vectorImpl() *Impl { return avx2Impl }

// detectAVX2 probes CPUID for AVX2 and for OS support of the ymm register
// state. FMA presence is irrelevant here: the kernels deliberately use
// separate multiply and add to preserve the scalar reference's rounding
// (see the package comment's bit-identity contract).
func detectAVX2() *Impl {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return nil
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return nil
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS preserves xmm and ymm state.
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 {
		return nil
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	if ebx7&avx2 == 0 {
		return nil
	}
	return &Impl{
		Name:      "avx2",
		Dot:       dotAVX2,
		Axpy:      axpyAVX2,
		Scale:     scaleAVX2,
		Had:       hadAVX2,
		HadAcc:    hadAccAVX2,
		Add:       addAVX2,
		SumAbs:    sumAbsAVX2,
		Gemm4x4:   gemm4x4AVX2,
		HadExpand: hadExpandAVX2,
	}
}

// Assembly kernels (kernels_amd64.s). Their element counts come from the
// same operand as the scalar references: len(x) for dot/axpy/add, len(z)
// for the Hadamard pair, len(kl) and len(row) for the expansion.

//go:noescape
func dotAVX2(x, y []float64) float64

//go:noescape
func axpyAVX2(alpha float64, x, y []float64)

//go:noescape
func scaleAVX2(alpha float64, x []float64)

//go:noescape
func hadAVX2(x, y, z []float64)

//go:noescape
func hadAccAVX2(x, y, z []float64)

//go:noescape
func addAVX2(x, y []float64)

//go:noescape
func sumAbsAVX2(x []float64) float64

//go:noescape
func gemm4x4AVX2(kc int, ap, bp []float64, acc *[16]float64)

//go:noescape
func hadExpandAVX2(row, kl, out []float64)
