// Package simd provides the vectorized micro-kernels behind the library's
// flop core: the unit-stride level-1 loops (dot, axpy, Hadamard products),
// the 4×4 GEMM micro-kernel, the Khatri-Rao row expansion, and the
// elementwise accumulation used by the parallel reduction. Every kernel
// exists twice — a portable scalar reference implementation (unrolled,
// bounds-check-eliminated Go) and, on amd64 with AVX2, a hand-written
// assembly version — and the package dispatches between them through
// function pointers selected once at startup.
//
// # Bit-identity contract
//
// The scalar implementation is the reference: a vectorized kernel must
// produce bit-identical results for every input, so which machine (or
// which MTTKRP_NOSIMD setting) served a request can never change the bytes
// of its response. Concretely that means the vector kernels preserve the
// scalar's mul-then-add ordering (no FMA contraction — an FMA variant is
// only admissible if the scalar reference is rewritten to round the same
// way) and its accumulation grouping: a reduction kernel's scalar
// reference carries exactly as many independent partial sums as the vector
// version has lanes, folded in the same order. The property is pinned by
// TestKernelsBitIdentical across random sizes, tails and aliasing
// patterns, and at the MTTKRP level by the core and serve dispatch tests.
//
// # Aliasing
//
// Kernels tolerate exact aliasing between their operands (z == x or
// z == y for the Hadamard family — krp.Row computes out = out ∗ row in
// place), because every vector group is fully loaded before its store.
// Partially overlapping slices are not supported.
//
// # Dispatch
//
// Active kernels are package-level function pointers, assigned once by
// Use. Startup selects Best(): the AVX2 implementation when the CPU and
// OS support it and the MTTKRP_NOSIMD environment variable is unset (any
// value other than "" and "0" forces the scalar path). Use may be called
// again — tests and the serving A/B flags (-simd=off, -nosimd) do — but
// only while no kernel is executing: the pointers are written without
// synchronization, so swapping mid-flight is a data race. The indirection
// itself is allocation-free; the entry points are annotated
// //mttkrp:noalloc and mttkrp-lint checks through the pointer call.
package simd

import "os"

// Impl bundles one complete implementation of every kernel. The two
// instances are Scalar() and, on capable amd64 hosts, the AVX2
// implementation returned by Best().
type Impl struct {
	// Name identifies the implementation in banners and bench tables:
	// "scalar" or "avx2".
	Name string

	// Dot returns Σ x[i]·y[i]. Requires len(y) ≥ len(x); only the first
	// len(x) elements participate. The reference keeps eight independent
	// partial sums over stride-8 groups, folds them left-to-right, then
	// accumulates the tail one element at a time.
	Dot func(x, y []float64) float64

	// Axpy computes y[i] += alpha·x[i] over len(x) elements. The caller
	// is responsible for the alpha == 0 early-out (skipping it is not
	// bit-neutral for y = -0 inputs, so the kernel never second-guesses).
	Axpy func(alpha float64, x, y []float64)

	// Scale computes x[i] *= alpha.
	Scale func(alpha float64, x []float64)

	// Had computes z[i] = x[i]·y[i]. z may alias x or y exactly.
	Had func(x, y, z []float64)

	// HadAcc computes z[i] += x[i]·y[i]. z may alias x or y exactly.
	HadAcc func(x, y, z []float64)

	// Add computes y[i] += x[i] — the inner loop of the parallel
	// reduction over per-worker partial outputs.
	Add func(x, y []float64)

	// SumAbs returns Σ |x[i]|. The reference keeps four independent
	// partial sums over stride-4 groups (one vector register), folds them
	// left-to-right, then accumulates the tail.
	SumAbs func(x []float64) float64

	// Gemm4x4 is the GEMM micro-kernel: acc = (4×kc packed panel ap) ·
	// (kc×4 packed panel bp), accumulators zeroed on entry and written
	// back row-major. Panels are packed as in blas: ap[p*4+r] is
	// A(r, p), bp[p*4+c] is B(p, c).
	Gemm4x4 func(kc int, ap, bp []float64, acc *[16]float64)

	// HadExpand computes out(l, :) = row ∗ kl(l, :) over flat row-major
	// kl and out of len(kl) = rows·len(row) — the 1-step internal-mode
	// KRP block expansion. out must not overlap row; out == kl exactly
	// is tolerated.
	HadExpand func(row, kl, out []float64)
}

// Active dispatch pointers. Written only by Use; read by the entry points
// below on every kernel call.
var (
	active    *Impl
	dot       func(x, y []float64) float64
	axpy      func(alpha float64, x, y []float64)
	scale     func(alpha float64, x []float64)
	had       func(x, y, z []float64)
	hadAcc    func(x, y, z []float64)
	add       func(x, y []float64)
	sumAbs    func(x []float64) float64
	gemm4x4   func(kc int, ap, bp []float64, acc *[16]float64)
	hadExpand func(row, kl, out []float64)
)

var scalarImpl = Impl{
	Name:      "scalar",
	Dot:       dotScalar,
	Axpy:      axpyScalar,
	Scale:     scaleScalar,
	Had:       hadScalar,
	HadAcc:    hadAccScalar,
	Add:       addScalar,
	SumAbs:    sumAbsScalar,
	Gemm4x4:   gemm4x4Scalar,
	HadExpand: hadExpandScalar,
}

// Scalar returns the portable reference implementation.
func Scalar() *Impl { return &scalarImpl }

// Vector returns the vectorized implementation for this CPU, or nil when
// none exists (non-amd64 builds, or amd64 without AVX2/OS ymm support).
// It ignores MTTKRP_NOSIMD — that override gates selection (Best), not
// existence, so tests and benchmarks can always compare both.
func Vector() *Impl { return vectorImpl() }

// Best returns the implementation startup dispatch selects: Vector() when
// available and not disabled by the MTTKRP_NOSIMD environment variable,
// Scalar() otherwise.
func Best() *Impl {
	if v := Vector(); v != nil && !noSIMDEnv(os.Getenv("MTTKRP_NOSIMD")) {
		return v
	}
	return &scalarImpl
}

// noSIMDEnv reports whether an MTTKRP_NOSIMD value disables vector
// dispatch: any value other than empty and "0" does.
func noSIMDEnv(v string) bool { return v != "" && v != "0" }

// Use installs impl as the active kernel set. It must only be called while
// no kernel is executing (startup, test setup, the serving A/B flags): the
// dispatch pointers are unsynchronized.
func Use(impl *Impl) {
	active = impl
	dot = impl.Dot
	axpy = impl.Axpy
	scale = impl.Scale
	had = impl.Had
	hadAcc = impl.HadAcc
	add = impl.Add
	sumAbs = impl.SumAbs
	gemm4x4 = impl.Gemm4x4
	hadExpand = impl.HadExpand
}

// Active returns the currently installed implementation.
func Active() *Impl { return active }

func init() { Use(Best()) }

// Dot returns Σ x[i]·y[i] via the active kernel. len(y) must be ≥ len(x).
//
//mttkrp:noalloc
func Dot(x, y []float64) float64 { return dot(x, y) }

// Axpy computes y += alpha·x via the active kernel. len(y) must be ≥
// len(x); callers keep the alpha == 0 early-out.
//
//mttkrp:noalloc
func Axpy(alpha float64, x, y []float64) { axpy(alpha, x, y) }

// Scale computes x *= alpha via the active kernel.
//
//mttkrp:noalloc
func Scale(alpha float64, x []float64) { scale(alpha, x) }

// Had computes z = x ∗ y via the active kernel. Lengths must match; z may
// alias x or y exactly.
//
//mttkrp:noalloc
func Had(x, y, z []float64) { had(x, y, z) }

// HadAcc computes z += x ∗ y via the active kernel. Lengths must match; z
// may alias x or y exactly.
//
//mttkrp:noalloc
func HadAcc(x, y, z []float64) { hadAcc(x, y, z) }

// Add computes y += x via the active kernel. len(y) must be ≥ len(x).
//
//mttkrp:noalloc
func Add(x, y []float64) { add(x, y) }

// SumAbs returns Σ |x[i]| via the active kernel.
//
//mttkrp:noalloc
func SumAbs(x []float64) float64 { return sumAbs(x) }

// Gemm4x4 runs the 4×4 micro-kernel via the active kernel. ap and bp must
// hold at least 4·kc packed elements each.
//
//mttkrp:noalloc
func Gemm4x4(kc int, ap, bp []float64, acc *[16]float64) { gemm4x4(kc, ap, bp, acc) }

// HadExpand computes out(l, :) = row ∗ kl(l, :) over flat row-major
// buffers via the active kernel. len(kl) and len(out) must equal
// rows·len(row) for some whole number of rows.
//
//mttkrp:noalloc
func HadExpand(row, kl, out []float64) { hadExpand(row, kl, out) }
