package simd

import (
	"fmt"
	"math/rand"
	"testing"
)

// impls returns the implementations to benchmark: always the scalar
// reference, plus the host's vectorized set when present.
func impls() []*Impl {
	out := []*Impl{Scalar()}
	if v := Vector(); v != nil {
		out = append(out, v)
	}
	return out
}

// BenchmarkKernels times every kernel under every available
// implementation at the sizes that matter to MTTKRP (rank-sized rows and
// KRP-block-sized flats), reporting GFLOP/s so the BENCH_<sha>.json
// artifact tracks the scalar-vs-vector ratio per kernel over time.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		fill(rng, xs)
		return xs
	}
	gflops := func(b *testing.B, flopsPerOp int) {
		b.Helper()
		sec := b.Elapsed().Seconds()
		if sec > 0 {
			b.ReportMetric(float64(flopsPerOp)*float64(b.N)/sec/1e9, "GFLOPS")
		}
	}

	for _, impl := range impls() {
		for _, n := range []int{16, 64, 1024, 16384} {
			x, y, z := mk(n), mk(n), mk(n)
			b.Run(fmt.Sprintf("dot/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				var s float64
				for i := 0; i < b.N; i++ {
					s += impl.Dot(x, y)
				}
				sink = s
				gflops(b, 2*n)
			})
			b.Run(fmt.Sprintf("axpy/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.Axpy(1.0000001, x, y)
				}
				gflops(b, 2*n)
			})
			b.Run(fmt.Sprintf("had/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.Had(x, y, z)
				}
				gflops(b, n)
			})
			b.Run(fmt.Sprintf("hadacc/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.HadAcc(x, y, z)
				}
				gflops(b, 2*n)
			})
			b.Run(fmt.Sprintf("add/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.Add(x, y)
				}
				gflops(b, n)
			})
			b.Run(fmt.Sprintf("sumabs/impl=%s/n=%d", impl.Name, n), func(b *testing.B) {
				var s float64
				for i := 0; i < b.N; i++ {
					s += impl.SumAbs(x)
				}
				sink = s
				gflops(b, n)
			})
		}

		for _, kc := range []int{64, 256} {
			ap, bp := mk(4*kc), mk(4*kc)
			var acc [16]float64
			b.Run(fmt.Sprintf("gemm4x4/impl=%s/kc=%d", impl.Name, kc), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.Gemm4x4(kc, ap, bp, &acc)
				}
				gflops(b, 2*16*kc)
			})
		}

		// The KRP block expansion at serving-typical rank 16 and a
		// krp-heavy slab (many rows per tensor block).
		for _, shape := range []struct{ rows, c int }{{40, 16}, {256, 16}} {
			row := mk(shape.c)
			kl := mk(shape.rows * shape.c)
			out := mk(shape.rows * shape.c)
			b.Run(fmt.Sprintf("hadexpand/impl=%s/rows=%d/c=%d", impl.Name, shape.rows, shape.c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					impl.HadExpand(row, kl, out)
				}
				gflops(b, shape.rows*shape.c)
			})
		}
	}
}

// sink defeats dead-code elimination of benchmarked reductions.
var sink float64
