//go:build amd64

#include "textflag.h"

// AVX2 float64 kernels. Every kernel is bit-identical to its scalar
// reference in scalar.go: separate VMULPD/VADDPD (never FMA), and
// reductions keep exactly the reference's partial-sum grouping, folded in
// the same left-to-right order. Tails run in VEX scalar instructions so
// the upper ymm state stays clean until the single VZEROUPPER before RET.
//
// Aliasing: the elementwise kernels load every operand group before
// storing the result group, so exact aliasing (z == x, z == y) matches
// the scalar loops; partially overlapping slices are unsupported (as in
// the scalar reference, whose 4-wide groups would also diverge).

// absMask clears the float64 sign bit.
DATA absMask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absMask<>(SB), RODATA, $8

// func dotAVX2(x, y []float64) float64
//
// Eight partial sums in two 4-lane accumulators, matching dotScalar's
// s0..s7; folded ((((((s0+s1)+s2)+s3)+s4)+s5)+s6)+s7, then a scalar tail.
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	VXORPD Y0, Y0, Y0 // lanes s0..s3
	VXORPD Y1, Y1, Y1 // lanes s4..s7
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

dotloop:
	CMPQ AX, BX
	JGT  dotreduce
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(SI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y1, Y1
	ADDQ    $8, AX
	JMP     dotloop

dotreduce:
	// Fold Y0 = {s0, s1, s2, s3}.
	VUNPCKHPD    X0, X0, X2 // {s1, s1}
	VEXTRACTF128 $1, Y0, X3 // {s2, s3}
	VADDSD       X2, X0, X0 // s0+s1
	VADDSD       X3, X0, X0 // +s2
	VUNPCKHPD    X3, X3, X3 // {s3, s3}
	VADDSD       X3, X0, X0 // +s3
	// Fold Y1 = {s4, s5, s6, s7}.
	VADDSD       X1, X0, X0 // +s4
	VUNPCKHPD    X1, X1, X2 // {s5, s5}
	VADDSD       X2, X0, X0 // +s5
	VEXTRACTF128 $1, Y1, X3 // {s6, s7}
	VADDSD       X3, X0, X0 // +s6
	VUNPCKHPD    X3, X3, X3 // {s7, s7}
	VADDSD       X3, X0, X0 // +s7

dottail:
	CMPQ AX, CX
	JGE  dotdone
	VMOVSD (SI)(AX*8), X2
	VMULSD (DI)(AX*8), X2, X2
	VADDSD X2, X0, X0
	INCQ   AX
	JMP    dottail

dotdone:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func axpyAVX2(alpha float64, x, y []float64)
//
// y[i] += alpha*x[i]: elementwise, one rounding per multiply and add,
// identical to the scalar loop for any grouping.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ y_base+32(FP), DI
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

axpyloop:
	CMPQ AX, BX
	JGT  axpytail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     axpyloop

axpytail:
	CMPQ AX, CX
	JGE  axpydone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    axpytail

axpydone:
	VZEROUPPER
	RET

// func scaleAVX2(alpha float64, x []float64)
TEXT ·scaleAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

scaleloop:
	CMPQ AX, BX
	JGT  scaletail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y1, (SI)(AX*8)
	VMOVUPD Y2, 32(SI)(AX*8)
	ADDQ    $8, AX
	JMP     scaleloop

scaletail:
	CMPQ AX, CX
	JGE  scaledone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (SI)(AX*8)
	INCQ   AX
	JMP    scaletail

scaledone:
	VZEROUPPER
	RET

// func hadAVX2(x, y, z []float64)
//
// z[i] = x[i]*y[i] over len(z) elements; both loads precede the store so
// exact aliasing matches the scalar loop.
TEXT ·hadAVX2(SB), NOSPLIT, $0-72
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	MOVQ z_base+48(FP), DX
	MOVQ z_len+56(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

hadloop:
	CMPQ AX, BX
	JGT  hadtail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  (DI)(AX*8), Y1, Y1
	VMULPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DX)(AX*8)
	VMOVUPD Y2, 32(DX)(AX*8)
	ADDQ    $8, AX
	JMP     hadloop

hadtail:
	CMPQ AX, CX
	JGE  haddone
	VMOVSD (SI)(AX*8), X1
	VMULSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DX)(AX*8)
	INCQ   AX
	JMP    hadtail

haddone:
	VZEROUPPER
	RET

// func hadAccAVX2(x, y, z []float64)
//
// z[i] += x[i]*y[i] over len(z) elements.
TEXT ·hadAccAVX2(SB), NOSPLIT, $0-72
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	MOVQ z_base+48(FP), DX
	MOVQ z_len+56(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

hacloop:
	CMPQ AX, BX
	JGT  hactail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  (DI)(AX*8), Y1, Y1
	VMULPD  32(DI)(AX*8), Y2, Y2
	VADDPD  (DX)(AX*8), Y1, Y1
	VADDPD  32(DX)(AX*8), Y2, Y2
	VMOVUPD Y1, (DX)(AX*8)
	VMOVUPD Y2, 32(DX)(AX*8)
	ADDQ    $8, AX
	JMP     hacloop

hactail:
	CMPQ AX, CX
	JGE  hacdone
	VMOVSD (SI)(AX*8), X1
	VMULSD (DI)(AX*8), X1, X1
	VADDSD (DX)(AX*8), X1, X1
	VMOVSD X1, (DX)(AX*8)
	INCQ   AX
	JMP    hactail

hacdone:
	VZEROUPPER
	RET

// func addAVX2(x, y []float64)
//
// y[i] += x[i] over len(x) elements — the reduction inner loop.
TEXT ·addAVX2(SB), NOSPLIT, $0-48
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $8, BX

addloop:
	CMPQ AX, BX
	JGT  addtail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     addloop

addtail:
	CMPQ AX, CX
	JGE  adddone
	VMOVSD (SI)(AX*8), X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    addtail

adddone:
	VZEROUPPER
	RET

// func sumAbsAVX2(x []float64) float64
//
// Four partial sums in one accumulator, matching sumAbsScalar's s0..s3;
// folded ((s0+s1)+s2)+s3, then a scalar tail.
TEXT ·sumAbsAVX2(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	VBROADCASTSD absMask<>(SB), Y3
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, BX
	SUBQ $4, BX

sumloop:
	CMPQ AX, BX
	JGT  sumreduce
	VMOVUPD (SI)(AX*8), Y1
	VANDPD  Y3, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, AX
	JMP     sumloop

sumreduce:
	VUNPCKHPD    X0, X0, X2 // {s1, s1}
	VEXTRACTF128 $1, Y0, X1 // {s2, s3}
	VADDSD       X2, X0, X0 // s0+s1
	VADDSD       X1, X0, X0 // +s2
	VUNPCKHPD    X1, X1, X1 // {s3, s3}
	VADDSD       X1, X0, X0 // +s3

sumtail:
	CMPQ AX, CX
	JGE  sumdone
	VMOVSD (SI)(AX*8), X1
	VANDPD X3, X1, X1
	VADDSD X1, X0, X0
	INCQ   AX
	JMP    sumtail

sumdone:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func gemm4x4AVX2(kc int, ap, bp []float64, acc *[16]float64)
//
// The 4×4 GEMM micro-kernel on packed panels: accumulator row r lives in
// Y(r), lane j holding c_rj. Per k step each row does one broadcast, one
// multiply, one add — per lane exactly the scalar kernel's
// c_rj += a_r * b_j in the same k order.
TEXT ·gemm4x4AVX2(SB), NOSPLIT, $0-64
	MOVQ kc+0(FP), CX
	MOVQ ap_base+8(FP), SI
	MOVQ bp_base+32(FP), DI
	MOVQ acc+56(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

gemmloop:
	CMPQ AX, CX
	JGE  gemmdone
	VMOVUPD      (DI), Y4    // {b0, b1, b2, b3}
	VBROADCASTSD (SI), Y5
	VBROADCASTSD 8(SI), Y6
	VBROADCASTSD 16(SI), Y7
	VBROADCASTSD 24(SI), Y8
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       Y4, Y6, Y6
	VADDPD       Y6, Y1, Y1
	VMULPD       Y4, Y7, Y7
	VADDPD       Y7, Y2, Y2
	VMULPD       Y4, Y8, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         $32, SI
	ADDQ         $32, DI
	INCQ         AX
	JMP          gemmloop

gemmdone:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VZEROUPPER
	RET

// func hadExpandAVX2(row, kl, out []float64)
//
// out(l, :) = row ∗ kl(l, :) over flat row-major kl/out with
// len(kl) = rows·len(row): the row loop lives inside the kernel so the
// per-row dispatch overhead of calling Had once per row disappears.
TEXT ·hadExpandAVX2(SB), NOSPLIT, $0-72
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX  // c
	MOVQ kl_base+24(FP), DI
	MOVQ kl_len+32(FP), R8  // rows*c
	MOVQ out_base+48(FP), DX
	TESTQ CX, CX
	JE    hedone
	MOVQ CX, BX
	SUBQ $4, BX             // inner 4-wide bound
	MOVQ R8, R11
	SUBQ CX, R11            // last full-row base (matches the scalar's base+c <= len(kl))
	XORQ R9, R9             // flat base of the current row

heouter:
	CMPQ R9, R11
	JGT  hedone
	XORQ AX, AX             // index within the row

heinner:
	CMPQ AX, BX
	JGT  hetail
	LEAQ    (R9)(AX*1), R10
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  (DI)(R10*8), Y1, Y1
	VMOVUPD Y1, (DX)(R10*8)
	ADDQ    $4, AX
	JMP     heinner

hetail:
	CMPQ AX, CX
	JGE  herow
	LEAQ   (R9)(AX*1), R10
	VMOVSD (SI)(AX*8), X1
	VMULSD (DI)(R10*8), X1, X1
	VMOVSD X1, (DX)(R10*8)
	INCQ   AX
	JMP    hetail

herow:
	ADDQ CX, R9
	JMP  heouter

hedone:
	VZEROUPPER
	RET
