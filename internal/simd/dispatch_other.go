//go:build !amd64

package simd

// vectorImpl reports no vectorized kernel set on architectures without
// one; dispatch stays on the (unrolled, bounds-check-eliminated) scalar
// reference. A NEON implementation would slot in here behind an arm64
// build tag with the same bit-identity contract.
func vectorImpl() *Impl { return nil }
