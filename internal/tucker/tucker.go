// Package tucker implements the Tucker decomposition of dense tensors via
// higher-order orthogonal iteration (HOOI), built entirely on the
// no-reorder substrates of this library: blocked TTM chains (package ttm)
// for the mode contractions and Gram-matrix eigendecompositions for the
// factor updates. Tucker is the computation for which Austin et al. [5]
// and Li et al. [14] developed the layout techniques the paper's 1-step
// MTTKRP reuses, so it doubles as an end-to-end exercise of that
// substrate.
package tucker

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/blas"
	"repro/internal/la"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Model is a Tucker decomposition X ≈ G ×₀ U₀ ×₁ U₁ ⋯: a small core
// tensor G of the given ranks and one column-orthonormal factor per mode.
type Model struct {
	Core    *tensor.Dense
	Factors []mat.View
}

// Ranks returns the core dimensions.
func (m *Model) Ranks() []int { return m.Core.Dims() }

// Full reconstructs the dense tensor G ×₀ U₀ ⋯ ×_{N-1} U_{N-1}.
func (m *Model) Full(t int) *tensor.Dense {
	y := m.Core
	for n, u := range m.Factors {
		// Multiply expects the transposed convention Y_(n) = Mᵀ·X_(n), so
		// expanding by U means contracting with Uᵀ.
		y = ttm.Multiply(t, y, n, u.T())
	}
	return y
}

// Config controls HOOI.
type Config struct {
	// Ranks holds the per-mode core dimensions (required).
	Ranks []int
	// MaxIters bounds HOOI sweeps; default 25.
	MaxIters int
	// Tol stops when the fit improves by less than this; default 1e-6.
	Tol float64
	// Threads is the worker count for TTMs and Grams.
	Threads int
	// Seed is reserved for randomized variants; HOSVD init is
	// deterministic.
	Seed int64
}

// Result reports a HOOI run.
type Result struct {
	Model *Model
	Iters int
	// Fit is 1 − ‖X − X̂‖/‖X‖.
	Fit        float64
	FitHistory []float64
}

// Decompose computes a Tucker model of x by HOSVD initialization followed
// by HOOI sweeps. Factors stay column-orthonormal throughout, so the core
// norm equals the projected energy and the fit needs no extra tensor pass.
func Decompose(x *tensor.Dense, cfg Config) (*Result, error) {
	n := x.Order()
	if len(cfg.Ranks) != n {
		return nil, fmt.Errorf("tucker: %d ranks for an order-%d tensor", len(cfg.Ranks), n)
	}
	ranks := make([]int, n)
	for k, r := range cfg.Ranks {
		if r < 1 {
			return nil, errors.New("tucker: ranks must be ≥ 1")
		}
		ranks[k] = r
		if ranks[k] > x.Dim(k) {
			ranks[k] = x.Dim(k) // cannot exceed the mode dimension
		}
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 25
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-6
	}
	t := cfg.Threads

	// HOSVD init: factor n spans the top eigenvectors of X_(n)·X_(n)ᵀ.
	factors := make([]mat.View, n)
	for k := 0; k < n; k++ {
		factors[k] = leadingEigvecs(t, gramOfMode(t, x, k), ranks[k])
	}

	normX := x.Norm(t)
	res := &Result{}
	fitOld := 0.0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for k := 0; k < n; k++ {
			// Y = X ×_{m≠k} U_mᵀ, then U_k = top-r_k eigvecs of Y_(k)Y_(k)ᵀ.
			ms := make([]mat.View, n)
			for m := 0; m < n; m++ {
				if m != k {
					ms[m] = factors[m]
				}
			}
			y := ttm.Chain(t, x, ms)
			factors[k] = leadingEigvecs(t, gramOfMode(t, y, k), ranks[k])
		}
		// Core and fit: G = X ×₀ U₀ᵀ ⋯; ‖X−X̂‖² = ‖X‖² − ‖G‖² for
		// orthonormal factors.
		core := ttm.Chain(t, x, factors)
		res.Model = &Model{Core: core, Factors: cloneAll(factors)}
		res.Iters = iter + 1
		res.Fit = fitFromCore(normX, core.Norm(t))
		res.FitHistory = append(res.FitHistory, res.Fit)
		if iter > 0 && math.Abs(res.Fit-fitOld) < cfg.Tol {
			break
		}
		fitOld = res.Fit
	}
	return res, nil
}

// HOSVD computes the one-shot truncated higher-order SVD (the
// initialization of HOOI, also a useful compressor by itself).
func HOSVD(x *tensor.Dense, ranks []int, t int) (*Model, error) {
	res, err := Decompose(x, Config{Ranks: ranks, MaxIters: 1, Tol: -1, Threads: t})
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}

func fitFromCore(normX, normG float64) float64 {
	if normX == 0 {
		return 1
	}
	res2 := normX*normX - normG*normG
	if res2 < 0 {
		res2 = 0
	}
	return 1 - math.Sqrt(res2)/normX
}

// gramOfMode accumulates G = X_(n)·X_(n)ᵀ over the mode's row-major
// blocks, without reordering entries.
func gramOfMode(t int, x *tensor.Dense, n int) mat.View {
	in := x.Dim(n)
	g := mat.NewDense(in, in)
	for j := 0; j < x.NumModeBlocks(n); j++ {
		blk := x.ModeBlock(n, j)
		blas.Gemm(t, 1, blk, blk.T(), 1, g)
	}
	return g
}

// leadingEigvecs returns the top-r eigenvectors (by eigenvalue) of a
// symmetric PSD matrix as the columns of an orthonormal matrix.
func leadingEigvecs(t int, g mat.View, r int) mat.View {
	_ = t
	w, v := la.JacobiEigen(g)
	order := make([]int, len(w))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return w[order[a]] > w[order[b]] })
	out := mat.NewDense(g.R, r)
	for c := 0; c < r; c++ {
		blas.CopyVec(v.Col(order[c]), out.Col(c))
	}
	return out
}

func cloneAll(ms []mat.View) []mat.View {
	out := make([]mat.View, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

// RandomModel builds a random Tucker model with orthonormal factors
// (test/data generator).
func RandomModel(rng *rand.Rand, dims, ranks []int) *Model {
	factors := make([]mat.View, len(dims))
	for k := range dims {
		factors[k] = la.Orthonormalize(mat.RandomDense(dims[k], ranks[k], rng))
	}
	core := tensor.Random(rng, ranks...)
	return &Model{Core: core, Factors: factors}
}
