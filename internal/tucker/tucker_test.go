package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/tensor"
)

func TestHOOIRecoversExactTuckerTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	planted := RandomModel(rng, []int{12, 10, 8}, []int{3, 2, 4})
	x := planted.Full(1)
	res, err := Decompose(x, Config{Ranks: []int{3, 2, 4}, MaxIters: 30, Tol: 1e-12, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99999 {
		t.Errorf("fit = %v on exactly low-multilinear-rank data", res.Fit)
	}
	back := res.Model.Full(1)
	if !tensor.ApproxEqual(x, back, 1e-8) {
		t.Errorf("reconstruction error %g", tensor.MaxAbsDiff(x, back))
	}
}

func TestHOOIFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Random(rng, 9, 8, 7)
	res, err := Decompose(x, Config{Ranks: []int{3, 3, 3}, MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range res.Model.Factors {
		for a := 0; a < u.C; a++ {
			for b := 0; b < u.C; b++ {
				dot := blas.Dot(u.Col(a), u.Col(b))
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-10 {
					t.Fatalf("mode %d: UᵀU(%d,%d) = %v", k, a, b, dot)
				}
			}
		}
	}
}

func TestHOOIFitMatchesExplicitResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Random(rng, 8, 7, 6)
	res, err := Decompose(x, Config{Ranks: []int{4, 3, 2}, MaxIters: 8, Tol: -1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Clone()
	diff.AddScaled(-1, res.Model.Full(1))
	want := 1 - diff.Norm(1)/x.Norm(1)
	if math.Abs(res.Fit-want) > 1e-9 {
		t.Errorf("core-based fit %v vs explicit %v", res.Fit, want)
	}
}

func TestHOOIFitNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Random(rng, 10, 9, 8)
	res, err := Decompose(x, Config{Ranks: []int{2, 2, 2}, MaxIters: 12, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FitHistory); i++ {
		if res.FitHistory[i] < res.FitHistory[i-1]-1e-10 {
			t.Errorf("fit decreased at sweep %d: %v -> %v", i, res.FitHistory[i-1], res.FitHistory[i])
		}
	}
}

func TestHOSVDOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	planted := RandomModel(rng, []int{10, 8, 6}, []int{2, 2, 2})
	x := planted.Full(1)
	m, err := HOSVD(x, []int{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// HOSVD is exact when the tensor has exact multilinear rank.
	if !tensor.ApproxEqual(x, m.Full(1), 1e-8) {
		t.Error("HOSVD not exact on exact-rank data")
	}
	ranks := m.Ranks()
	if ranks[0] != 2 || ranks[1] != 2 || ranks[2] != 2 {
		t.Errorf("core ranks %v", ranks)
	}
}

func TestRanksClampedToDims(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Random(rng, 3, 8, 8)
	res, err := Decompose(x, Config{Ranks: []int{10, 2, 2}, MaxIters: 2, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Core.Dim(0) != 3 {
		t.Errorf("rank not clamped: core dim %d", res.Model.Core.Dim(0))
	}
}

func TestDecomposeErrors(t *testing.T) {
	x := tensor.New(4, 4)
	if _, err := Decompose(x, Config{Ranks: []int{2}}); err == nil {
		t.Error("rank-count mismatch should fail")
	}
	if _, err := Decompose(x, Config{Ranks: []int{0, 2}}); err == nil {
		t.Error("zero rank should fail")
	}
}

func TestFullRankTuckerIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Random(rng, 4, 5, 3)
	res, err := Decompose(x, Config{Ranks: []int{4, 5, 3}, MaxIters: 1, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 1-1e-10 {
		t.Errorf("full-rank Tucker fit = %v, want 1", res.Fit)
	}
}

func TestCompressionEnergyOrdering(t *testing.T) {
	// Higher ranks must never fit worse.
	rng := rand.New(rand.NewSource(8))
	x := tensor.Random(rng, 10, 10, 10)
	prev := -1.0
	for _, r := range []int{1, 3, 5, 8} {
		res, err := Decompose(x, Config{Ranks: []int{r, r, r}, MaxIters: 6, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Fit < prev-1e-9 {
			t.Errorf("rank %d fit %v below smaller-rank fit %v", r, res.Fit, prev)
		}
		prev = res.Fit
	}
}

func TestOrthonormalHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := RandomModel(rng, []int{7}, []int{4}).Factors[0]
	for a := 0; a < 4; a++ {
		for b := 0; b <= a; b++ {
			dot := blas.Dot(q.Col(a), q.Col(b))
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("QᵀQ(%d,%d) = %v", a, b, dot)
			}
		}
	}
}

func TestModelFullDims(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := RandomModel(rng, []int{5, 6, 7}, []int{2, 3, 2})
	y := m.Full(2)
	if y.Dim(0) != 5 || y.Dim(1) != 6 || y.Dim(2) != 7 {
		t.Errorf("full dims %v", y.Dims())
	}
	if m.Factors[0].R != 5 || m.Factors[0].C != 2 {
		t.Errorf("factor dims %dx%d", m.Factors[0].R, m.Factors[0].C)
	}
}
