package la

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// QR computes a thin Householder QR factorization A = Q·R of an m×n matrix
// with m ≥ n: Q is m×n with orthonormal columns and R is n×n upper
// triangular. The input is not modified.
func QR(a mat.View) (q, r mat.View) {
	m, n := a.R, a.C
	if m < n {
		panic(fmt.Sprintf("la: thin QR needs m ≥ n, got %dx%d", m, n))
	}
	// Work on a row-major copy; vs[k] stores the k-th Householder vector.
	w := a.Clone()
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		v := make([]float64, m-k)
		norm := 0.0
		for i := k; i < m; i++ {
			v[i-k] = w.At(i, k)
			norm += v[i-k] * v[i-k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// Degenerate column: use e1 so Q still gets a valid direction.
			v[0] = 1
			vs[k] = v
			continue
		}
		if v[0] >= 0 {
			v[0] += norm
		} else {
			v[0] -= norm
		}
		vnorm := 0.0
		for _, x := range v {
			vnorm += x * x
		}
		vnorm = math.Sqrt(vnorm)
		for i := range v {
			v[i] /= vnorm
		}
		vs[k] = v
		// Apply H = I − 2vvᵀ to the trailing submatrix.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * w.At(i, j)
			}
			for i := k; i < m; i++ {
				w.Add(i, j, -2*dot*v[i-k])
			}
		}
	}
	r = mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	// Accumulate Q = H₀·H₁⋯H_{n-1}·[I; 0] by applying the reflectors in
	// reverse to the thin identity.
	q = mat.NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			for i := k; i < m; i++ {
				q.Add(i, j, -2*dot*v[i-k])
			}
		}
	}
	return q, r
}

// Orthonormalize returns an m×n matrix with orthonormal columns spanning
// the column space of a (the Q factor of its QR decomposition).
func Orthonormalize(a mat.View) mat.View {
	q, _ := QR(a)
	return q
}
