package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// randomSPD builds A = BᵀB + εI, guaranteed symmetric positive definite.
func randomSPD(n int, rng *rand.Rand) mat.View {
	b := mat.RandomDense(n+2, n, rng)
	a := SymMatMul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.1)
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 10, 25} {
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt := SymMatMul(l, l.T())
		if !mat.ApproxEqual(a, llt, 1e-10) {
			t.Errorf("n=%d: LLᵀ != A, maxdiff %g", n, mat.MaxAbsDiff(a, llt))
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L(%d,%d) = %v not zero", n, i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mat.FromRowMajor([]float64{1, 2, 2, 1}, 2, 2) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected failure for indefinite matrix")
	}
	z := mat.NewDense(2, 2) // zero matrix: semidefinite, not definite
	if _, err := Cholesky(z); err == nil {
		t.Error("expected failure for zero matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	a := randomSPD(n, rng)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := mat.RandomDense(n, 3, rng)
	b := SymMatMul(a, xTrue)
	CholeskySolveInPlace(l, b)
	if !mat.ApproxEqual(b, xTrue, 1e-9) {
		t.Errorf("solve wrong: maxdiff %g", mat.MaxAbsDiff(b, xTrue))
	}
}

func TestJacobiEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 6, 12, 30} {
		a := randomSPD(n, rng)
		w, v := JacobiEigen(a)
		// A·V = V·diag(w)
		av := SymMatMul(a, v)
		vd := v.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vd.Set(i, j, v.At(i, j)*w[j])
			}
		}
		if !mat.ApproxEqual(av, vd, 1e-9) {
			t.Errorf("n=%d: AV != VΛ, maxdiff %g", n, mat.MaxAbsDiff(av, vd))
		}
		// V orthogonal: VᵀV = I.
		vtv := SymMatMul(v.T(), v)
		eye := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			eye.Set(i, i, 1)
		}
		if !mat.ApproxEqual(vtv, eye, 1e-10) {
			t.Errorf("n=%d: V not orthogonal", n)
		}
	}
}

func TestJacobiEigenKnownValues(t *testing.T) {
	a := mat.FromRowMajor([]float64{2, 1, 1, 2}, 2, 2)
	w, _ := JacobiEigen(a)
	// Eigenvalues are 1 and 3 in some order.
	lo, hi := math.Min(w[0], w[1]), math.Max(w[0], w[1])
	if math.Abs(lo-1) > 1e-12 || math.Abs(hi-3) > 1e-12 {
		t.Errorf("eigenvalues %v, want {1, 3}", w)
	}
}

func TestPinvSolveGramPDPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := 6
	h := randomSPD(c, rng)
	xTrue := mat.RandomDense(20, c, rng)
	m := SymMatMul(xTrue, h) // M = X·H
	got := PinvSolveGram(h, m)
	if !mat.ApproxEqual(got, xTrue, 1e-8) {
		t.Errorf("PD gram solve wrong: maxdiff %g", mat.MaxAbsDiff(got, xTrue))
	}
}

func TestPinvSolveGramSingularFallback(t *testing.T) {
	// H singular: rank 1.
	h := mat.FromRowMajor([]float64{1, 1, 1, 1}, 2, 2)
	m := mat.FromRowMajor([]float64{2, 2, 4, 4}, 2, 2)
	got := PinvSolveGram(h, m.Clone())
	// X = M·H†; H† = H/4 for this rank-1 H (H² = 2H ⇒ H† = H/4).
	want := mat.FromRowMajor([]float64{1, 1, 2, 2}, 2, 2)
	if !mat.ApproxEqual(got, want, 1e-10) {
		t.Errorf("singular fallback wrong:\n%v want\n%v", got, want)
	}
}

// Property: for random PSD H (possibly singular), X = M·H† satisfies the
// Penrose condition X·H·H† = X ⇔ (M H†) H H† = M H†.
func TestPinvPenroseQuick(t *testing.T) {
	f := func(seed int64, rank8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 5
		rank := int(rank8%5) + 1
		b := mat.RandomDense(rank, c, rng)
		h := SymMatMul(b.T(), b) // PSD with rank ≤ rank
		m := mat.RandomDense(7, c, rng)
		x := PinvSolveGram(h, m.Clone())
		// y = (X·H)·H†
		xh := SymMatMul(x, h)
		y := PinvSolveGram(h, xh)
		return mat.ApproxEqual(y, x, 1e-6)
	}
	// Deterministic source: the property's error bound scales with the
	// condition number of H's nonzero spectrum, which is unbounded over
	// fully random draws — time-seeded generation makes the test flaky on
	// unlucky near-collinear B (observed on the seed tree). Fixed seeds
	// keep the 60 cases reproducible.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNonSquarePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { _, _ = Cholesky(mat.NewDense(2, 3)) },
		func() { JacobiEigen(mat.NewDense(2, 3)) },
		func() { PinvSolveGram(mat.NewDense(2, 3), mat.NewDense(2, 2)) },
		func() { PinvSolveGram(mat.NewDense(3, 3), mat.NewDense(2, 2)) },
		func() { SymMatMul(mat.NewDense(2, 3), mat.NewDense(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
