package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/mat"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range [][2]int{{1, 1}, {3, 3}, {5, 3}, {10, 7}, {20, 1}} {
		a := mat.RandomDense(sh[0], sh[1], rng)
		q, r := QR(a)
		qr := SymMatMul(q, r)
		if !mat.ApproxEqual(a, qr, 1e-12) {
			t.Errorf("%dx%d: QR != A, maxdiff %g", sh[0], sh[1], mat.MaxAbsDiff(a, qr))
		}
	}
}

func TestQROrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandomDense(12, 5, rng)
	q, _ := QR(a)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			dot := blas.Dot(q.Col(i), q.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-12 {
				t.Fatalf("QᵀQ(%d,%d) = %v", i, j, dot)
			}
		}
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, r := QR(mat.RandomDense(8, 4, rng))
	for i := 0; i < 4; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRInputNotModified(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandomDense(6, 3, rng)
	before := a.Clone()
	QR(a)
	if mat.MaxAbsDiff(a, before) != 0 {
		t.Error("QR modified its input")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is a multiple of the first; Q must still be
	// orthonormal and QR must still reconstruct A.
	a := mat.NewDense(5, 2)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	q, r := QR(a)
	if !mat.ApproxEqual(a, SymMatMul(q, r), 1e-12) {
		t.Error("rank-deficient QR does not reconstruct")
	}
	for i := 0; i < 2; i++ {
		if d := math.Abs(blas.Nrm2(q.Col(i)) - 1); d > 1e-12 {
			t.Errorf("column %d not unit", i)
		}
	}
}

func TestQRZeroMatrix(t *testing.T) {
	q, r := QR(mat.NewDense(4, 2))
	for i := 0; i < 2; i++ {
		if d := math.Abs(blas.Nrm2(q.Col(i)) - 1); d > 1e-12 {
			t.Errorf("zero-matrix Q column %d not unit", i)
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if r.At(i, j) != 0 {
				t.Error("zero matrix should give zero R")
			}
		}
	}
}

func TestQRWidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m < n")
		}
	}()
	QR(mat.NewDense(2, 5))
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandomDense(9, 4, rng)
	q := Orthonormalize(a)
	// Same column space: projecting A onto Q must reproduce A.
	qta := SymMatMul(q.T(), a)
	back := SymMatMul(q, qta)
	if !mat.ApproxEqual(a, back, 1e-10) {
		t.Errorf("orthonormalize changed the span: %g", mat.MaxAbsDiff(a, back))
	}
}

// Property: for random well-conditioned matrices, ‖A − QR‖ stays tiny and
// Q is orthonormal.
func TestQRQuick(t *testing.T) {
	f := func(seed int64, m8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%6) + 1
		m := n + int(m8%8)
		a := mat.RandomDense(m, n, rng)
		q, r := QR(a)
		if !mat.ApproxEqual(a, SymMatMul(q, r), 1e-11) {
			return false
		}
		qtq := SymMatMul(q.T(), q)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-11 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
