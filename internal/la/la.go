// Package la provides the small dense solvers CP-ALS needs on top of the
// BLAS kernels: Cholesky factorization, a symmetric Jacobi
// eigendecomposition, and a Gram-system solver with pseudo-inverse
// fallback. All matrices here are C×C where C is the CP rank (tens at
// most), so the routines favour robustness and clarity over blocking.
package la

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrNotPositiveDefinite reports that a Cholesky factorization failed.
var ErrNotPositiveDefinite = errors.New("la: matrix not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A, writing L into a fresh row-major matrix.
// Only the lower triangle of A is read.
func Cholesky(a mat.View) (mat.View, error) {
	n := a.R
	if a.C != n {
		panic(fmt.Sprintf("la: cholesky of non-square %dx%d", a.R, a.C))
	}
	l := mat.NewDense(n, n)
	// Relative pivot threshold: treat near-singular matrices as failures so
	// callers fall back to the pseudo-inverse instead of dividing by noise.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := 1e-13 * float64(n) * maxDiag
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for p := 0; p < j; p++ {
			d -= l.At(j, p) * l.At(j, p)
		}
		if d <= tol || math.IsNaN(d) {
			return mat.View{}, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for p := 0; p < j; p++ {
				s -= l.At(i, p) * l.At(j, p)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholeskySolveInPlace solves L·Lᵀ·x = b for each column b of rhs,
// overwriting rhs with the solutions. L must be the lower-triangular
// Cholesky factor.
func CholeskySolveInPlace(l mat.View, rhs mat.View) {
	n := l.R
	if rhs.R != n {
		panic("la: cholesky solve dimension mismatch")
	}
	for j := 0; j < rhs.C; j++ {
		// Forward substitution: L·y = b.
		for i := 0; i < n; i++ {
			s := rhs.At(i, j)
			for p := 0; p < i; p++ {
				s -= l.At(i, p) * rhs.At(p, j)
			}
			rhs.Set(i, j, s/l.At(i, i))
		}
		// Back substitution: Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			s := rhs.At(i, j)
			for p := i + 1; p < n; p++ {
				s -= l.At(p, i) * rhs.At(p, j)
			}
			rhs.Set(i, j, s/l.At(i, i))
		}
	}
}

// JacobiEigen computes the eigendecomposition A = V·diag(w)·Vᵀ of a
// symmetric matrix by cyclic Jacobi rotations. V's columns are the
// eigenvectors. The input is not modified.
func JacobiEigen(a mat.View) (w []float64, v mat.View) {
	n := a.R
	if a.C != n {
		panic(fmt.Sprintf("la: eigen of non-square %dx%d", a.R, a.C))
	}
	// Work on a copy, symmetrized to wash out representation asymmetry.
	s := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	v = mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.At(i, j) * s.At(i, j)
			}
		}
		if off <= 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rotate(s, v, p, q, c, sn)
			}
		}
	}
	w = make([]float64, n)
	for i := range w {
		w[i] = s.At(i, i)
	}
	return w, v
}

// rotate applies the Jacobi rotation J(p,q,θ) to s (two-sided) and v
// (right side).
func rotate(s, v mat.View, p, q int, c, sn float64) {
	n := s.R
	for k := 0; k < n; k++ {
		skp, skq := s.At(k, p), s.At(k, q)
		s.Set(k, p, c*skp-sn*skq)
		s.Set(k, q, sn*skp+c*skq)
	}
	for k := 0; k < n; k++ {
		spk, sqk := s.At(p, k), s.At(q, k)
		s.Set(p, k, c*spk-sn*sqk)
		s.Set(q, k, sn*spk+c*sqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-sn*vkq)
		v.Set(k, q, sn*vkp+c*vkq)
	}
}

// PinvSolveGram solves X·H ≈ M for X given a symmetric positive
// semidefinite Gram matrix H (C×C) and M (I×C), i.e. X = M·H†. It first
// attempts a Cholesky solve (the fast path: H = ⊛ UᵀU is PD whenever the
// factors have full column rank) and falls back to an eigendecomposition
// pseudo-inverse when H is singular or indefinite, exactly as Matlab's
// pinv-based `cp_als` update M·H† behaves. The result overwrites m's
// buffer and is also returned.
func PinvSolveGram(h mat.View, m mat.View) mat.View {
	c := h.R
	if h.C != c || m.C != c {
		panic("la: gram solve dimension mismatch")
	}
	if l, err := Cholesky(h); err == nil {
		// X·H = M  ⇒  H·Xᵀ = Mᵀ (H symmetric); solve per row of M.
		CholeskySolveInPlace(l, m.T())
		return m
	}
	// Pseudo-inverse fallback: H† = V diag(w†) Vᵀ.
	w, v := JacobiEigen(h)
	wmax := 0.0
	for _, x := range w {
		if math.Abs(x) > wmax {
			wmax = math.Abs(x)
		}
	}
	tol := 1e-12 * wmax * float64(c)
	// X = M V diag(w†) Vᵀ, computed row-by-row with small temporaries.
	tmp := make([]float64, c)
	for i := 0; i < m.R; i++ {
		// tmp = (row · V) * w†
		for j := 0; j < c; j++ {
			s := 0.0
			for p := 0; p < c; p++ {
				s += m.At(i, p) * v.At(p, j)
			}
			if math.Abs(w[j]) > tol {
				tmp[j] = s / w[j]
			} else {
				tmp[j] = 0
			}
		}
		// row = tmp · Vᵀ
		for j := 0; j < c; j++ {
			s := 0.0
			for p := 0; p < c; p++ {
				s += tmp[p] * v.At(j, p)
			}
			m.Set(i, j, s)
		}
	}
	return m
}

// SymMatMul returns A·B for small square matrices (test and fit-computation
// helper; not performance critical).
func SymMatMul(a, b mat.View) mat.View {
	if a.C != b.R {
		panic("la: matmul dimension mismatch")
	}
	out := mat.NewDense(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			s := 0.0
			for p := 0; p < a.C; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}
