package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// UsageError marks a bad command invocation, which exits with status 2
// (runtime failures exit 1). An empty Msg means the FlagSet already
// printed the diagnostics and usage text, so nothing more is shown.
type UsageError struct{ Msg string }

func (e UsageError) Error() string { return e.Msg }

// Exit terminates the process with the shared exit-code convention of the
// repo's commands: nil returns normally (status 0), flag.ErrHelp exits 0,
// a UsageError exits 2 (printing Msg when non-empty), and anything else
// prints the error and exits 1.
func Exit(err error) {
	var ue UsageError
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.As(err, &ue):
		if ue.Msg != "" {
			fmt.Fprintln(os.Stderr, ue.Msg)
		}
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
