package cli

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"225,59,200", []int{225, 59, 200}, true},
		{" 4 , 5 ", []int{4, 5}, true},
		{"3", nil, false},
		{"", nil, false},
		{"4,0", nil, false},
		{"4,-2", nil, false},
		{"4,x", nil, false},
		{"2,3,4,5,6", []int{2, 3, 4, 5, 6}, true},
		{"60x50x40", []int{60, 50, 40}, true},
		{"8X6", []int{8, 6}, true},
		{"60x", nil, false},
	}
	for _, c := range cases {
		got, err := ParseDims(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseDims(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseDims(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseDims(%q)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]core.Method{
		"auto": core.MethodAuto, "": core.MethodAuto,
		"1step": core.MethodOneStep, "1-Step": core.MethodOneStep, "ONESTEP": core.MethodOneStep,
		"2step": core.MethodTwoStep, "two-step": core.MethodTwoStep,
		"reorder": core.MethodReorder, "baseline": core.MethodReorder,
		" auto ": core.MethodAuto,
	}
	for in, want := range cases {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMethod("fft"); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := ParseMethod("naive"); err == nil {
		t.Error("naive is not user-selectable")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		12:          "12 B",
		2048:        "2.0 KiB",
		3 << 20:     "3.0 MiB",
		5 << 30:     "5.0 GiB",
		1536:        "1.5 KiB",
		1<<30 + 512: "1.0 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasSuffix(FormatBytes(999), " B") {
		t.Error("sub-KiB should be bytes")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 4 (C=25): KRP time": "figure-4-c-25-krp-time",
		"  lots   of   spaces  ":    "lots-of-spaces",
		"UPPER lower 123":           "upper-lower-123",
		"":                          "",
		"---":                       "",
		"trailing punctuation!!!":   "trailing-punctuation",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
	long := Slug("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	if len(long) > 48 {
		t.Errorf("Slug did not truncate: %d chars", len(long))
	}
}
