// Package cli holds the small argument-parsing helpers shared by the
// command-line tools (cmd/cpd, cmd/mttkrp-bench) and examples.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseDims parses a dimension list such as "225,59,200" or "60x50x40"
// (comma or 'x' separated). At least two positive dimensions are
// required.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(strings.NewReplacer("x", ",", "X", ",").Replace(s), ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad dimension %q in %q", p, s)
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions, got %q", s)
	}
	return dims, nil
}

// ParseMethod maps a user-facing MTTKRP method name to its core.Method.
func ParseMethod(s string) (core.Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return core.MethodAuto, nil
	case "1step", "1-step", "one-step", "onestep":
		return core.MethodOneStep, nil
	case "2step", "2-step", "two-step", "twostep":
		return core.MethodTwoStep, nil
	case "reorder", "baseline":
		return core.MethodReorder, nil
	}
	return 0, fmt.Errorf("unknown method %q (want auto, 1step, 2step, reorder)", s)
}

// FormatBytes renders a byte count human-readably for status lines.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// Slug reduces a free-form title to a safe, lowercase file-name fragment
// of at most 48 characters (used for CSV file names).
func Slug(s string) string {
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
