package bench

import (
	"io"
	"math"

	"repro/internal/parallel"
)

// Config controls figure regeneration.
type Config struct {
	// Scale shrinks the paper's problem sizes (1.0 = paper scale, which
	// needs a large-memory server; the default 0.01 runs on a laptop).
	// Scale multiplies the tensor entry count; per-mode dimensions follow.
	Scale float64
	// MaxThreads is the top of the thread sweep (the paper uses 12).
	MaxThreads int
	// Trials is the number of timed repetitions per point (median
	// reported; the paper uses 10 for MTTKRP and 100 for KRP).
	Trials int
	// Out receives the tables.
	Out io.Writer
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = parallel.DefaultThreads()
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	return c
}

// EqualDims returns N equal dimensions whose product approximates the
// paper's ~750M tensor entries times Scale (Figure 5 tensors: 900³, 165⁴,
// 60⁵, 30⁶ at full scale).
func (c Config) EqualDims(n int) []int {
	total := 750e6 * c.Scale
	d := int(math.Round(math.Pow(total, 1/float64(n))))
	if d < 2 {
		d = 2
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = d
	}
	return dims
}

// KRPRows returns the Figure 4 output row count J ≈ 2e7 scaled.
func (c Config) KRPRows() int {
	j := int(math.Round(2e7 * c.Scale))
	if j < 64 {
		j = 64
	}
	return j
}
