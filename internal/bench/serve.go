package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// ServeLoadConfig parameterizes the serving load generator.
type ServeLoadConfig struct {
	// Dims and Rank define the MTTKRP problem every request computes.
	Dims []int
	Rank int
	// Mode is the MTTKRP mode (defaults to an internal mode when the
	// order allows, the harder case).
	Mode int
	// Conc is the list of concurrency levels to sweep (submitters firing
	// back-to-back requests). Default {1, 4, 16}.
	Conc []int
	// Requests is the total request count per concurrency level (split
	// across submitters). Default 64.
	Requests int
	// Workers sizes the server pool (0 = GOMAXPROCS).
	Workers int
	// Mix, when non-empty, switches to the heterogeneous-workload
	// comparison: a weighted class mix like "small:8,large:1" (classes
	// small, medium, large, scaled from Dims/Rank) driven through both
	// the cost-aware and the even-split admission policies, tabulating
	// per-class p50/p95/p99 — the convoy/tail-latency measurement.
	Mix string
	// Sparse switches the generated workload to COO tensors at Density,
	// driving the nnz-partitioned sparse kernel and nnz-priced admission.
	// Fusion is dense-only, so sparse runs report a zero fuse hit.
	Sparse bool
	// Density is the fill fraction of the sparse tensors (default 0.01);
	// only meaningful with Sparse.
	Density float64
	// NoFusion disables batch-level KRP fusion on the served side (the
	// -fuse=off half of the A/B); the fuse-hit column then reads 0.
	NoFusion bool
	// NoSIMD forces the scalar reference kernels for the duration of the
	// run (the -simd=off half of the A/B). The swap is process-global and
	// happens before any load starts; the previous dispatch is restored
	// on return.
	NoSIMD bool
	// NUMA enables topology-aware placement on the served side (the
	// -numa=on half of the A/B): the server pool is built over the
	// detected host topology, so leases pack into placement domains,
	// worker buffers are first-touched on their owning domain, and the
	// budget split prefers filling one domain before spilling. On a
	// single-domain host this is the flat model exactly; results are
	// bit-identical either way. The naive per-request-pool baseline stays
	// flat in both halves.
	NUMA bool
	// Out receives OBS commentary lines (may be nil).
	Out func(format string, args ...any)
}

// topology resolves the served side's placement topology: the detected
// host topology with NUMA on, nil (flat) otherwise.
func (c *ServeLoadConfig) topology() *parallel.Topology {
	if c.NUMA {
		return parallel.DetectTopology()
	}
	return nil
}

// serveLoadResult aggregates one measured series.
type serveLoadResult struct {
	throughput    float64 // requests per second
	p50, p95, p99 time.Duration
}

func (c *ServeLoadConfig) withDefaults() {
	if len(c.Dims) == 0 {
		c.Dims = []int{48, 40, 36}
	}
	if c.Rank <= 0 {
		c.Rank = 16
	}
	if c.Mode <= 0 || c.Mode >= len(c.Dims) {
		c.Mode = len(c.Dims) / 2
	}
	if len(c.Conc) == 0 {
		c.Conc = []int{1, 4, 16}
	}
	if c.Requests <= 0 {
		c.Requests = 64
	}
	if c.Density <= 0 || c.Density > 1 {
		c.Density = 0.01
	}
	if c.Out == nil {
		c.Out = func(string, ...any) {}
	}
}

// loadTensor generates the workload tensor for one class: dense, or COO
// at the configured density when the sparse workload is selected.
func loadTensor(rng *rand.Rand, sparse bool, density float64, dims ...int) tensor.Interface {
	if sparse {
		return tensor.RandomSparse(rng, density, dims...)
	}
	return tensor.Random(rng, dims...)
}

// layoutTag names the workload layout in table titles and OBS lines (x
// may be nil when the workload spans several tensors of different nnz).
func layoutTag(sparse bool, density float64, x tensor.Interface) string {
	if !sparse {
		return "dense"
	}
	if x == nil {
		return fmt.Sprintf("sparse d=%g", density)
	}
	return fmt.Sprintf("sparse d=%g (nnz %d)", density, x.NNZ())
}

// ServeLoad drives the serving runtime and the naive per-request-pool
// pattern with identical load — Conc concurrent submitters, Requests
// same-shape MTTKRP requests — and tabulates aggregate throughput and
// latency percentiles. It is the reproducible form of the serving
// acceptance comparison (EXPERIMENTS.md, "Serving throughput"). With a
// Mix, it instead runs the heterogeneous-workload policy comparison (see
// ServeLoadConfig.Mix).
func ServeLoad(cfg ServeLoadConfig) (*Table, error) {
	cfg.withDefaults()
	if cfg.NoSIMD {
		prev := simd.Active()
		simd.Use(simd.Scalar())
		defer simd.Use(prev)
	}
	if cfg.Mix != "" {
		return serveMixLoad(cfg)
	}

	rng := rand.New(rand.NewSource(99))
	x := loadTensor(rng, cfg.Sparse, cfg.Density, cfg.Dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), cfg.Rank, rng)
	}

	tb := NewTable(
		fmt.Sprintf("Serving throughput — %s MTTKRP %v rank %d mode %d, %d requests per level, fusion %s, simd %s, numa %s",
			layoutTag(cfg.Sparse, cfg.Density, x), cfg.Dims, cfg.Rank, cfg.Mode, cfg.Requests, onOff(!cfg.NoFusion), onOff(!cfg.NoSIMD), onOff(cfg.NUMA)),
		"conc", "served req/s", "naive req/s", "speedup",
		"served p50 ms", "served p95 ms", "served p99 ms",
		"naive p50 ms", "naive p95 ms", "naive p99 ms", "fuse hit")

	for _, conc := range cfg.Conc {
		served, st := runServed(cfg, x, u, conc)
		naive := runNaive(cfg, x, u, conc)
		speedup := served.throughput / naive.throughput
		tb.Add(fmt.Sprintf("%d", conc),
			fmt.Sprintf("%.1f", served.throughput),
			fmt.Sprintf("%.1f", naive.throughput),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.3f", ms(served.p50)), fmt.Sprintf("%.3f", ms(served.p95)), fmt.Sprintf("%.3f", ms(served.p99)),
			fmt.Sprintf("%.3f", ms(naive.p50)), fmt.Sprintf("%.3f", ms(naive.p95)), fmt.Sprintf("%.3f", ms(naive.p99)),
			fuseHit(st))
		cfg.Out("OBS serve conc=%d: %.1f req/s served vs %.1f req/s naive pools (%.2fx); %d/%d batches fused, ~%.0f KRP kflops saved\n",
			conc, served.throughput, naive.throughput, speedup, st.Fused, st.Batches, st.FusedSavedFlops/1e3)
	}
	return tb, nil
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// fuseHit formats the per-batch fusion hit rate of one measured run: the
// fraction of executed batches that ran on a shared KRP plan.
func fuseHit(st serve.Stats) string {
	if st.Batches == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(st.Fused)/float64(st.Batches))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// MixEntry is one class of a heterogeneous serving workload.
type MixEntry struct {
	Name   string // "small", "medium" or "large"
	Weight int    // relative share of requests
}

// ParseMix parses a workload mix spec like "small:8,large:1" into weighted
// class entries.
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name:weight", part)
		}
		w, err := strconv.Atoi(weightStr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
		}
		if _, _, err := mixShape(name, []int{8, 8, 8}, 8); err != nil {
			return nil, err
		}
		mix = append(mix, MixEntry{Name: name, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix spec")
	}
	return mix, nil
}

// mixShape scales the base problem down to a named class: large is the
// base shape, medium roughly halves every dimension and the rank, small
// roughly quarters them — spanning the cost range the admission policy
// must arbitrate.
func mixShape(name string, dims []int, rank int) ([]int, int, error) {
	scale := func(div, floor int) []int {
		out := make([]int, len(dims))
		for i, d := range dims {
			out[i] = d / div
			if out[i] < floor {
				out[i] = floor
			}
		}
		return out
	}
	switch strings.ToLower(name) {
	case "large":
		return dims, rank, nil
	case "medium":
		r := rank / 2
		if r < 4 {
			r = 4
		}
		return scale(2, 6), r, nil
	case "small":
		r := rank / 4
		if r < 2 {
			r = 2
		}
		return scale(4, 4), r, nil
	}
	return nil, 0, fmt.Errorf("unknown mix class %q (want small, medium or large)", name)
}

// mixClass is one instantiated workload class.
type mixClass struct {
	name string
	x    tensor.Interface
	u    []mat.View
	mode int
	rank int
}

// classSequence draws a deterministic weighted class index per request, so
// both policies (and reruns) see the identical arrival sequence.
func classSequence(mix []MixEntry, n int, seed int64) []int {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make([]int, n)
	for i := range seq {
		p := rng.Intn(total)
		for c, m := range mix {
			if p -= m.Weight; p < 0 {
				seq[i] = c
				break
			}
		}
	}
	return seq
}

// serveMixLoad is the heterogeneous-workload policy comparison: the same
// weighted small/large arrival sequence driven through cost-aware
// admission (aging queue, cost-share budgets) and through the historical
// even-split FIFO policy, tabulated per class. Small-request p99 is the
// convoy fingerprint; large-request throughput bounds the cost of fixing
// it.
func serveMixLoad(cfg ServeLoadConfig) (*Table, error) {
	mix, err := ParseMix(cfg.Mix)
	if err != nil {
		return nil, fmt.Errorf("bench: -mix: %w", err)
	}
	rng := rand.New(rand.NewSource(99))
	classes := make([]mixClass, len(mix))
	for i, m := range mix {
		dims, rank, err := mixShape(m.Name, cfg.Dims, cfg.Rank)
		if err != nil {
			return nil, err
		}
		x := loadTensor(rng, cfg.Sparse, cfg.Density, dims...)
		u := make([]mat.View, x.Order())
		for k := range u {
			u[k] = mat.RandomDense(x.Dim(k), rank, rng)
		}
		mode := cfg.Mode
		if mode >= x.Order() {
			mode = x.Order() / 2
		}
		classes[i] = mixClass{name: m.Name, x: x, u: u, mode: mode, rank: rank}
	}

	tb := NewTable(
		fmt.Sprintf("Mixed serving load — %s base %v rank %d, mix %s, %d requests per level, fusion %s, simd %s, numa %s",
			layoutTag(cfg.Sparse, cfg.Density, nil), cfg.Dims, cfg.Rank, cfg.Mix, cfg.Requests, onOff(!cfg.NoFusion), onOff(!cfg.NoSIMD), onOff(cfg.NUMA)),
		"conc", "policy", "class", "req/s", "p50 ms", "p95 ms", "p99 ms")

	for _, conc := range cfg.Conc {
		seq := classSequence(mix, cfg.Requests, int64(conc))
		for _, policy := range []struct {
			name      string
			evenSplit bool
		}{{"even-split", true}, {"cost-aware", false}} {
			perClass, wall, st := runMixPolicy(cfg, classes, seq, conc, policy.evenSplit)
			for c, lats := range perClass {
				if len(lats) == 0 {
					continue
				}
				r := summarize(lats, wall)
				tb.Add(fmt.Sprintf("%d", conc), policy.name, classes[c].name,
					fmt.Sprintf("%.1f", r.throughput),
					fmt.Sprintf("%.3f", ms(r.p50)), fmt.Sprintf("%.3f", ms(r.p95)), fmt.Sprintf("%.3f", ms(r.p99)))
			}
			cfg.Out("OBS mix conc=%d policy=%s: peak queue %d, max queue wait %.3f ms, %d aged reorders, %d/%d batches fused\n",
				conc, policy.name, st.PeakQueued, st.MaxQueueWaitMs, st.Reordered, st.Fused, st.Batches)
		}
	}
	return tb, nil
}

// runMixPolicy drives one (concurrency, policy) cell: conc submitters pull
// the shared arrival sequence and submit each request's class problem,
// recording latency per class. It returns the scheduler's counter snapshot
// taken after the load drains (queue-wait highs and aging reorders).
func runMixPolicy(cfg ServeLoadConfig, classes []mixClass, seq []int, conc int, evenSplit bool) ([][]time.Duration, time.Duration, serve.Stats) {
	srv := serve.New(serve.Config{Workers: cfg.Workers, EvenSplit: evenSplit, DisableFusion: cfg.NoFusion, Topology: cfg.topology()})
	defer srv.Close()
	// Warm every class's shape-keyed workspace set (and the scheduler's
	// service-rate estimate) before timing.
	for _, c := range classes {
		if err := srv.SubmitMTTKRP(serve.MTTKRPRequest{X: c.x, Factors: c.u, Mode: c.mode}).Err(); err != nil {
			panic(err)
		}
	}
	latencies := make([]time.Duration, len(seq))
	var next sync.Mutex
	idx := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dsts := make([]mat.View, len(classes))
			for c := range classes {
				dsts[c] = mat.NewDense(classes[c].x.Dim(classes[c].mode), classes[c].rank)
			}
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= len(seq) {
					return
				}
				c := &classes[seq[i]]
				t0 := time.Now()
				if err := srv.SubmitMTTKRP(serve.MTTKRPRequest{X: c.x, Factors: c.u, Mode: c.mode, Dst: dsts[seq[i]]}).Err(); err != nil {
					panic(err)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Drain() // settle in-flight counter folds so the snapshot is exact
	st := srv.Stats()
	perClass := make([][]time.Duration, len(classes))
	for i, lat := range latencies {
		perClass[seq[i]] = append(perClass[seq[i]], lat)
	}
	return perClass, wall, st
}

// driveLoad is the shared measurement harness: conc submitters pull
// request indices from a shared counter and execute `request` per pull,
// so the served and naive series run under an identical driver and any
// methodology change applies to both.
func driveLoad(cfg ServeLoadConfig, x tensor.Interface, conc int, request func(dst mat.View)) serveLoadResult {
	latencies := make([]time.Duration, cfg.Requests)
	var next sync.Mutex
	idx := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := mat.NewDense(x.Dim(cfg.Mode), cfg.Rank)
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				request(dst)
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	return summarize(latencies, time.Since(start))
}

// runServed measures the admission-controlled scheduler under load,
// returning its counter snapshot alongside (the fusion hit rate column).
func runServed(cfg ServeLoadConfig, x tensor.Interface, u []mat.View, conc int) (serveLoadResult, serve.Stats) {
	s := serve.New(serve.Config{Workers: cfg.Workers, DisableFusion: cfg.NoFusion, Topology: cfg.topology()})
	defer s.Close()
	// Warm the shape-keyed workspace set once, as a steady-state server
	// would be.
	if err := s.SubmitMTTKRP(serve.MTTKRPRequest{X: x, Factors: u, Mode: cfg.Mode}).Err(); err != nil {
		panic(err)
	}
	r := driveLoad(cfg, x, conc, func(dst mat.View) {
		if err := s.SubmitMTTKRP(serve.MTTKRPRequest{X: x, Factors: u, Mode: cfg.Mode, Dst: dst}).Err(); err != nil {
			panic(err)
		}
	})
	// Tickets resolve inside batch execution, before the executor folds
	// its fusion counters into the stats; drain so the snapshot is exact.
	s.Drain()
	return r, s.Stats()
}

// runNaive measures the pre-serving pattern: every request creates its own
// full-width pool, computes, and tears it down. core.Run dispatches on the
// tensor layout, so the same harness covers dense and sparse workloads.
func runNaive(cfg ServeLoadConfig, x tensor.Interface, u []mat.View, conc int) serveLoadResult {
	return driveLoad(cfg, x, conc, func(dst mat.View) {
		pool := parallel.NewPool(cfg.Workers)
		core.Run(core.Request{X: x, Factors: u, Mode: cfg.Mode, Dst: dst, Opts: core.Options{Pool: pool}})
		pool.Close()
	})
}

func summarize(lat []time.Duration, wall time.Duration) serveLoadResult {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return serveLoadResult{
		throughput: float64(len(lat)) / wall.Seconds(),
		p50:        Quantile(sorted, 0.50),
		p95:        Quantile(sorted, 0.95),
		p99:        Quantile(sorted, 0.99),
	}
}
