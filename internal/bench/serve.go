package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// ServeLoadConfig parameterizes the serving load generator.
type ServeLoadConfig struct {
	// Dims and Rank define the MTTKRP problem every request computes.
	Dims []int
	Rank int
	// Mode is the MTTKRP mode (defaults to an internal mode when the
	// order allows, the harder case).
	Mode int
	// Conc is the list of concurrency levels to sweep (submitters firing
	// back-to-back requests). Default {1, 4, 16}.
	Conc []int
	// Requests is the total request count per concurrency level (split
	// across submitters). Default 64.
	Requests int
	// Workers sizes the server pool (0 = GOMAXPROCS).
	Workers int
	// Out receives OBS commentary lines (may be nil).
	Out func(format string, args ...any)
}

// serveLoadResult aggregates one measured series.
type serveLoadResult struct {
	throughput float64 // requests per second
	p50, p95   time.Duration
}

// ServeLoad drives the serving runtime and the naive per-request-pool
// pattern with identical load — Conc concurrent submitters, Requests
// same-shape MTTKRP requests — and tabulates aggregate throughput and
// latency percentiles. It is the reproducible form of the serving
// acceptance comparison (EXPERIMENTS.md, "Serving throughput").
func ServeLoad(cfg ServeLoadConfig) *Table {
	if len(cfg.Dims) == 0 {
		cfg.Dims = []int{48, 40, 36}
	}
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.Mode <= 0 || cfg.Mode >= len(cfg.Dims) {
		cfg.Mode = len(cfg.Dims) / 2
	}
	if len(cfg.Conc) == 0 {
		cfg.Conc = []int{1, 4, 16}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Out == nil {
		cfg.Out = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(99))
	x := tensor.Random(rng, cfg.Dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), cfg.Rank, rng)
	}

	tb := NewTable(
		fmt.Sprintf("Serving throughput — MTTKRP %v rank %d mode %d, %d requests per level",
			cfg.Dims, cfg.Rank, cfg.Mode, cfg.Requests),
		"conc", "served req/s", "naive req/s", "speedup", "served p50 ms", "served p95 ms", "naive p50 ms", "naive p95 ms")

	for _, conc := range cfg.Conc {
		served := runServed(cfg, x, u, conc)
		naive := runNaive(cfg, x, u, conc)
		speedup := served.throughput / naive.throughput
		tb.Add(fmt.Sprintf("%d", conc),
			fmt.Sprintf("%.1f", served.throughput),
			fmt.Sprintf("%.1f", naive.throughput),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.3f", ms(served.p50)), fmt.Sprintf("%.3f", ms(served.p95)),
			fmt.Sprintf("%.3f", ms(naive.p50)), fmt.Sprintf("%.3f", ms(naive.p95)))
		cfg.Out("OBS serve conc=%d: %.1f req/s served vs %.1f req/s naive pools (%.2fx)\n",
			conc, served.throughput, naive.throughput, speedup)
	}
	return tb
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// driveLoad is the shared measurement harness: conc submitters pull
// request indices from a shared counter and execute `request` per pull,
// so the served and naive series run under an identical driver and any
// methodology change applies to both.
func driveLoad(cfg ServeLoadConfig, x *tensor.Dense, conc int, request func(dst mat.View)) serveLoadResult {
	latencies := make([]time.Duration, cfg.Requests)
	var next sync.Mutex
	idx := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := mat.NewDense(x.Dim(cfg.Mode), cfg.Rank)
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				request(dst)
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	return summarize(latencies, time.Since(start))
}

// runServed measures the admission-controlled scheduler under load.
func runServed(cfg ServeLoadConfig, x *tensor.Dense, u []mat.View, conc int) serveLoadResult {
	s := serve.New(serve.Config{Workers: cfg.Workers})
	defer s.Close()
	// Warm the shape-keyed workspace set once, as a steady-state server
	// would be.
	if err := s.SubmitMTTKRP(serve.MTTKRPRequest{X: x, Factors: u, Mode: cfg.Mode}).Err(); err != nil {
		panic(err)
	}
	return driveLoad(cfg, x, conc, func(dst mat.View) {
		if err := s.SubmitMTTKRP(serve.MTTKRPRequest{X: x, Factors: u, Mode: cfg.Mode, Dst: dst}).Err(); err != nil {
			panic(err)
		}
	})
}

// runNaive measures the pre-serving pattern: every request creates its own
// full-width pool, computes, and tears it down.
func runNaive(cfg ServeLoadConfig, x *tensor.Dense, u []mat.View, conc int) serveLoadResult {
	return driveLoad(cfg, x, conc, func(dst mat.View) {
		pool := parallel.NewPool(cfg.Workers)
		core.ComputeInto(dst, core.MethodAuto, x, u, cfg.Mode, core.Options{Pool: pool})
		pool.Close()
	})
}

func summarize(lat []time.Duration, wall time.Duration) serveLoadResult {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return serveLoadResult{
		throughput: float64(len(lat)) / wall.Seconds(),
		p50:        q(0.50),
		p95:        q(0.95),
	}
}
