package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/stream"
)

// Fig4 regenerates Figure 4: Khatri-Rao product time versus thread count,
// comparing Algorithm 1 ("Reuse") against the naive row-wise algorithm and
// the STREAM scale benchmark, for Z ∈ {2, 3, 4} input matrices and the
// given column count C (25 for Figure 4a, 50 for Figure 4b). Input row
// dimensions are equal with product ≈ J.
func Fig4(cfg Config, c int) *Table {
	cfg = cfg.WithDefaults()
	j := cfg.KRPRows()
	threads := ThreadCounts(cfg.MaxThreads)

	cols := []string{fmt.Sprintf("series (J≈%d, C=%d)", j, c)}
	for _, t := range threads {
		cols = append(cols, fmt.Sprintf("T=%d", t))
	}
	table := NewTable(fmt.Sprintf("Figure 4 (C=%d): KRP time in seconds vs threads", c), cols...)

	type series struct {
		name  string
		times []float64
	}
	var all []series

	for _, z := range []int{2, 3, 4} {
		mats, rows := fig4Operands(z, j, c)
		out := mat.NewDense(rows, c)
		naive := series{name: fmt.Sprintf("%d-Naive", z)}
		reuse := series{name: fmt.Sprintf("%d-Reuse", z)}
		for _, t := range threads {
			st := Measure(cfg.Trials, func() { krp.NaiveParallel(t, mats, out) })
			naive.times = append(naive.times, st.Median.Seconds())
			st = Measure(cfg.Trials, func() { krp.Parallel(t, mats, out) })
			reuse.times = append(reuse.times, st.Median.Seconds())
		}
		all = append(all, naive, reuse)
	}

	// STREAM over a buffer the size of the output matrix.
	_, rows := fig4Operands(2, j, c)
	sb := stream.New(rows * c)
	str := series{name: "STREAM"}
	for _, t := range threads {
		st := MeasureTimed(cfg.Trials, func() time.Duration { return sb.Run(t) })
		str.times = append(str.times, st.Median.Seconds())
	}
	all = append(all, str)

	for _, s := range all {
		table.Addf(s.name, "%.4f", s.times...)
	}
	table.Fprint(cfg.Out)

	// Observations the paper calls out: reuse-vs-naive speedup for Z ≥ 3,
	// and parallel scaling of Reuse.
	last := len(threads) - 1
	for zi, z := range []int{2, 3, 4} {
		n, r := all[2*zi], all[2*zi+1]
		fmt.Fprintf(cfg.Out, "OBS fig4 C=%d Z=%d: reuse speedup over naive = %.2fx (T=%d); reuse parallel speedup = %.2fx\n",
			c, z, n.times[last]/r.times[last], threads[last], r.times[0]/r.times[last])
	}
	fmt.Fprintf(cfg.Out, "OBS fig4 C=%d: reuse(Z=4) / STREAM at T=%d = %.2fx\n\n",
		c, threads[last], all[5].times[last]/all[6].times[last])
	return table
}

// fig4Operands builds Z equal-row-count random matrices whose KRP has
// about j rows.
func fig4Operands(z, j, c int) ([]mat.View, int) {
	per := int(math.Round(math.Pow(float64(j), 1/float64(z))))
	if per < 2 {
		per = 2
	}
	rng := rand.New(rand.NewSource(int64(z*1000 + c)))
	mats := make([]mat.View, z)
	rows := 1
	for i := range mats {
		mats[i] = mat.RandomDense(per, c, rng)
		rows *= per
	}
	return mats, rows
}
