// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Figures 4–8): workload construction, warmup +
// repeated timing with median selection (the paper reports medians of 10
// runs and averages of 100 for KRP), thread sweeps, and fixed-width tables
// whose rows and series match what the paper plots.
package bench

import (
	"sort"
	"time"
)

// Stats summarizes repeated timings.
type Stats struct {
	Median, Mean, Min, Max time.Duration
	N                      int
}

// Measure runs f once for warmup and then trials times, returning timing
// statistics. trials < 1 is treated as 1.
func Measure(trials int, f func()) Stats {
	if trials < 1 {
		trials = 1
	}
	f() // warmup: page in buffers, warm caches
	ds := make([]time.Duration, trials)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	return Summarize(ds)
}

// MeasureTimed is Measure for work that reports its own duration (for
// example stream.Bench.Run, which excludes verification).
func MeasureTimed(trials int, f func() time.Duration) Stats {
	if trials < 1 {
		trials = 1
	}
	f()
	ds := make([]time.Duration, trials)
	for i := range ds {
		ds[i] = f()
	}
	return Summarize(ds)
}

// Summarize computes stats over raw durations. The median is the
// nearest-rank p50 (Quantile), the same definition the serving latency
// tables use, so every percentile this package reports is computed one
// way; for even N this is the lower middle element, not an average.
func Summarize(ds []time.Duration) Stats {
	if len(ds) == 0 {
		return Stats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Stats{
		Median: Quantile(sorted, 0.50),
		Mean:   sum / time.Duration(len(sorted)),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
}

// ThreadCounts returns the sweep 1..max (the paper sweeps 1..12).
func ThreadCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	ts := make([]int, max)
	for i := range ts {
		ts[i] = i + 1
	}
	return ts
}
