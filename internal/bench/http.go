package bench

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// HTTPLoadConfig parameterizes the HTTP serving load generator.
type HTTPLoadConfig struct {
	// URL targets a live listener ("http://host:port"); empty starts an
	// in-process listener on a loopback port and tears it down after.
	URL string
	// Dims and Rank define the MTTKRP problem every request ships.
	Dims []int
	Rank int
	// Mode is the MTTKRP mode (defaults to an internal mode, the harder
	// case).
	Mode int
	// Conc is the list of concurrency levels to sweep. Default {1, 4, 16}.
	Conc []int
	// Requests is the total request count per concurrency level. Default 64.
	Requests int
	// Workers sizes the in-process server pool (0 = GOMAXPROCS); ignored
	// when URL targets an external listener.
	Workers int
	// Out receives OBS commentary lines (may be nil).
	Out func(format string, args ...any)
}

// HTTPLoad drives concurrent binary-wire MTTKRP requests through a
// transport listener and tabulates throughput, latency percentiles, and
// the server-reported decode-vs-compute time split — the acceptance
// measurement for the network front end (EXPERIMENTS.md, "HTTP transport
// throughput"). Unlike ServeLoad, every request ships its full tensor
// payload, so the decode column prices the wire. An unreachable or
// refusing listener is reported as an error (user-driven via -addr), not
// a panic.
func HTTPLoad(cfg HTTPLoadConfig) (*Table, error) {
	if len(cfg.Dims) == 0 {
		cfg.Dims = []int{48, 40, 36}
	}
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.Mode <= 0 || cfg.Mode >= len(cfg.Dims) {
		cfg.Mode = len(cfg.Dims) / 2
	}
	if len(cfg.Conc) == 0 {
		cfg.Conc = []int{1, 4, 16}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Out == nil {
		cfg.Out = func(string, ...any) {}
	}

	url := cfg.URL
	if url == "" {
		srv := transport.NewServer(transport.Config{Serve: serve.Config{Workers: cfg.Workers}})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: in-process listener: %w", err)
		}
		go srv.Serve(l)
		defer srv.Close()
		url = "http://" + l.Addr().String()
		cfg.Out("OBS http: started in-process listener %s (%d workers)\n", url, srv.Workers())
	}

	rng := rand.New(rand.NewSource(99))
	x := tensor.Random(rng, cfg.Dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), cfg.Rank, rng)
	}
	payload := (&transport.Header{Op: transport.OpMTTKRP, Mode: cfg.Mode, Rank: cfg.Rank, Dims: cfg.Dims}).WireSize()

	tb := NewTable(
		fmt.Sprintf("HTTP transport throughput — MTTKRP %v rank %d mode %d, %d requests per level, %s/request on the wire",
			cfg.Dims, cfg.Rank, cfg.Mode, cfg.Requests, cli.FormatBytes(payload)),
		"conc", "req/s", "MB/s in", "p50 ms", "p95 ms", "decode ms/req", "compute ms/req", "decode share", "rejected")

	client := transport.NewClient(url)
	// Warm the connection pool and the server's shape-keyed workspaces.
	if _, _, err := client.MTTKRP(mat.View{}, x, u, cfg.Mode, 0); err != nil {
		return nil, fmt.Errorf("bench: warmup request against %s failed: %w", url, err)
	}

	for _, conc := range cfg.Conc {
		r := runHTTPLevel(cfg, client, x, u, conc)
		completed := cfg.Requests - int(r.rejected)
		decodeMs, computeMs := 0.0, 0.0
		if completed > 0 {
			decodeMs = float64(r.decodeNs) / 1e6 / float64(completed)
			computeMs = float64(r.computeNs) / 1e6 / float64(completed)
		}
		share := 0.0
		if r.decodeNs+r.computeNs > 0 {
			share = 100 * float64(r.decodeNs) / float64(r.decodeNs+r.computeNs)
		}
		mbps := r.res.throughput * float64(payload) / 1e6
		tb.Add(fmt.Sprintf("%d", conc),
			fmt.Sprintf("%.1f", r.res.throughput),
			fmt.Sprintf("%.1f", mbps),
			fmt.Sprintf("%.3f", ms(r.res.p50)), fmt.Sprintf("%.3f", ms(r.res.p95)),
			fmt.Sprintf("%.3f", decodeMs), fmt.Sprintf("%.3f", computeMs),
			fmt.Sprintf("%.1f%%", share),
			fmt.Sprintf("%d", r.rejected))
		cfg.Out("OBS http conc=%d: %.1f req/s (%.1f MB/s in), decode %.3f ms vs compute %.3f ms per request (%.1f%% decode), %d rejected\n",
			conc, r.res.throughput, mbps, decodeMs, computeMs, share, r.rejected)
	}
	return tb, nil
}

// httpLevelResult carries one concurrency level's aggregates.
type httpLevelResult struct {
	res                 serveLoadResult
	decodeNs, computeNs int64
	rejected            int64
}

// runHTTPLevel fires cfg.Requests through conc submitters sharing one
// client (and so one pooled connection set), with a retained dst per
// submitter — the steady-state client pattern. Rejected requests (quota
// 429s against a live listener, transport errors) are counted separately
// and excluded from the latency/throughput series, so a throttled run
// cannot masquerade as a fast one.
func runHTTPLevel(cfg HTTPLoadConfig, client *transport.Client, x *tensor.Dense, u []mat.View, conc int) httpLevelResult {
	var r httpLevelResult
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, cfg.Requests)
	idx := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := mat.NewDense(x.Dim(cfg.Mode), cfg.Rank)
			for {
				mu.Lock()
				i := idx
				idx++
				mu.Unlock()
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				_, tm, err := client.MTTKRP(dst, x, u, cfg.Mode, 0)
				lat := time.Since(t0)
				if err != nil {
					atomic.AddInt64(&r.rejected, 1)
					continue
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
				atomic.AddInt64(&r.decodeNs, tm.Decode.Nanoseconds())
				atomic.AddInt64(&r.computeNs, tm.Compute.Nanoseconds())
			}
		}()
	}
	wg.Wait()
	r.res = summarize(latencies, time.Since(start))
	return r
}
