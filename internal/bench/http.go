package bench

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/simd"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// HTTPLoadConfig parameterizes the HTTP serving load generator.
type HTTPLoadConfig struct {
	// URL targets a live listener ("http://host:port"); empty starts an
	// in-process listener on a loopback port and tears it down after.
	URL string
	// Dims and Rank define the MTTKRP problem every request ships.
	Dims []int
	Rank int
	// Mode is the MTTKRP mode (defaults to an internal mode, the harder
	// case).
	Mode int
	// Conc is the list of concurrency levels to sweep. Default {1, 4, 16}.
	Conc []int
	// Requests is the total request count per concurrency level. Default 64.
	Requests int
	// Workers sizes the in-process server pool (0 = GOMAXPROCS); ignored
	// when URL targets an external listener.
	Workers int
	// Mix, when non-empty, ships a heterogeneous workload instead of one
	// shape: a weighted class mix like "small:8,large:1" (classes scaled
	// from Dims/Rank, as in ServeLoadConfig.Mix), with per-class
	// p50/p95/p99 rows. The served policy is whatever the listener runs;
	// the policy A/B comparison lives in the in-process -serve mode.
	Mix string
	// Sparse ships COO tensors at Density over the sparse wire format
	// (version 2, /v1/sparse-mttkrp) instead of dense payloads — the
	// wire-size column then prices coordinates + values, not the full
	// dense entry count.
	Sparse bool
	// Mmap ships by-reference requests (wire version 3, /v1/mttkrp-ref):
	// the tensor is written once to a mappable file under the in-process
	// listener's tensor root, and every request carries only the factor
	// matrices plus the file reference — the A/B against full-payload
	// requests whose win shows up in the decode-share column. In-process
	// listener only (an external listener's tensor root is unreachable
	// from here); mutually exclusive with Sparse.
	Mmap bool
	// Density is the fill fraction of the sparse tensors (default 0.01);
	// only meaningful with Sparse.
	Density float64
	// NoFusion disables batch-level KRP fusion on the in-process
	// listener (the -fuse=off half of the A/B); ignored when URL targets
	// an external listener, whose config the load generator cannot set.
	NoFusion bool
	// NoSIMD forces the scalar reference kernels in this process for the
	// duration of the run (the -simd=off half of the A/B). Like
	// NoFusion, it cannot reach an external listener — there, start the
	// listener with mttkrp-serve -nosimd instead.
	NoSIMD bool
	// NUMA enables topology-aware placement on the in-process listener
	// (the -numa=on half of the A/B; see ServeLoadConfig.NUMA). Ignored
	// when URL targets an external listener — there, start the listener
	// with mttkrp-serve -numa=on instead.
	NUMA bool
	// Out receives OBS commentary lines (may be nil).
	Out func(format string, args ...any)
}

// HTTPLoad drives concurrent binary-wire MTTKRP requests through a
// transport listener and tabulates throughput, latency percentiles, and
// the server-reported decode-vs-compute time split — the acceptance
// measurement for the network front end (EXPERIMENTS.md, "HTTP transport
// throughput"). Unlike ServeLoad, every request ships its full tensor
// payload, so the decode column prices the wire. An unreachable or
// refusing listener is reported as an error (user-driven via -addr), not
// a panic.
func HTTPLoad(cfg HTTPLoadConfig) (*Table, error) {
	if len(cfg.Dims) == 0 {
		cfg.Dims = []int{48, 40, 36}
	}
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.Mode <= 0 || cfg.Mode >= len(cfg.Dims) {
		cfg.Mode = len(cfg.Dims) / 2
	}
	if len(cfg.Conc) == 0 {
		cfg.Conc = []int{1, 4, 16}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		cfg.Density = 0.01
	}
	if cfg.Out == nil {
		cfg.Out = func(string, ...any) {}
	}
	if cfg.NoSIMD {
		prev := simd.Active()
		simd.Use(simd.Scalar())
		defer simd.Use(prev)
	}

	if cfg.Mmap && cfg.Sparse {
		return nil, fmt.Errorf("bench: -mmap ships dense by-reference requests; drop -sparse")
	}
	if cfg.Mmap && cfg.URL != "" {
		return nil, fmt.Errorf("bench: -mmap needs the in-process listener (an external listener's tensor root is unreachable); drop -addr")
	}

	var tensorRoot string
	if cfg.Mmap {
		dir, err := os.MkdirTemp("", "mttkrp-bench-mmap-")
		if err != nil {
			return nil, fmt.Errorf("bench: tensor root: %w", err)
		}
		defer os.RemoveAll(dir)
		tensorRoot = dir
	}

	url := cfg.URL
	var srv *transport.Server // non-nil only for the in-process listener
	if url == "" {
		var topo *parallel.Topology
		if cfg.NUMA {
			topo = parallel.DetectTopology()
		}
		srv = transport.NewServer(transport.Config{
			Serve:      serve.Config{Workers: cfg.Workers, DisableFusion: cfg.NoFusion, Topology: topo},
			TensorRoot: tensorRoot,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: in-process listener: %w", err)
		}
		go srv.Serve(l)
		defer srv.Close()
		url = "http://" + l.Addr().String()
		cfg.Out("OBS http: started in-process listener %s (%d workers, fusion %s, simd %s, numa %s)\n", url, srv.Workers(), onOff(!cfg.NoFusion), onOff(!cfg.NoSIMD), onOff(cfg.NUMA))
	}

	client := transport.NewClient(url)
	if cfg.Mix != "" {
		return httpMixLoad(cfg, client, url, srv)
	}

	rng := rand.New(rand.NewSource(99))
	x := loadTensor(rng, cfg.Sparse, cfg.Density, cfg.Dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), cfg.Rank, rng)
	}

	// send routes one steady-state request: by reference when Mmap (the
	// tensor file written once, below), by payload otherwise.
	send := func(dst mat.View) (mat.View, transport.Timing, error) {
		return clientMTTKRP(client, dst, x, u, cfg.Mode)
	}
	var payload int64
	switch {
	case cfg.Mmap:
		path := filepath.Join(tensorRoot, "x.dsnt")
		if err := tensor.WriteDenseFile(path, x.(*tensor.Dense)); err != nil {
			return nil, fmt.Errorf("bench: write tensor file: %w", err)
		}
		info, err := tensor.StatDense(path)
		if err != nil {
			return nil, fmt.Errorf("bench: stat tensor file: %w", err)
		}
		ref := transport.RefFor(info, "x.dsnt")
		send = func(dst mat.View) (mat.View, transport.Timing, error) {
			return client.MTTKRPByRef(dst, ref, cfg.Dims, u, cfg.Mode, 0)
		}
		payload = (&transport.Header{Op: transport.OpMTTKRPByRef, Mode: cfg.Mode, Rank: cfg.Rank, Dims: cfg.Dims, Ref: ref}).WireSize()
	default:
		if xs, ok := x.(*tensor.Sparse); ok {
			payload = transport.SparseHeader(xs, 0, cfg.Mode, cfg.Rank).WireSize()
		} else {
			payload = (&transport.Header{Op: transport.OpMTTKRP, Mode: cfg.Mode, Rank: cfg.Rank, Dims: cfg.Dims}).WireSize()
		}
	}

	tb := NewTable(
		fmt.Sprintf("HTTP transport throughput — %s MTTKRP %v rank %d mode %d, %d requests per level, %s/request on the wire",
			httpLayoutTag(cfg, x), cfg.Dims, cfg.Rank, cfg.Mode, cfg.Requests, cli.FormatBytes(payload)),
		"conc", "req/s", "MB/s in", "p50 ms", "p95 ms", "p99 ms", "decode ms/req", "compute ms/req", "decode share", "rejected", "fuse hit")

	// Warm the connection pool and the server's shape-keyed workspaces.
	if _, _, err := send(mat.View{}); err != nil {
		return nil, fmt.Errorf("bench: warmup request against %s failed: %w", url, err)
	}

	for _, conc := range cfg.Conc {
		pre := serveStatsOf(srv)
		r := runHTTPLevel(cfg, send, x, conc)
		hit := httpFuseHit(srv, pre)
		completed := cfg.Requests - int(r.rejected)
		decodeMs, computeMs := 0.0, 0.0
		if completed > 0 {
			decodeMs = float64(r.decodeNs) / 1e6 / float64(completed)
			computeMs = float64(r.computeNs) / 1e6 / float64(completed)
		}
		share := 0.0
		if r.decodeNs+r.computeNs > 0 {
			share = 100 * float64(r.decodeNs) / float64(r.decodeNs+r.computeNs)
		}
		mbps := r.res.throughput * float64(payload) / 1e6
		tb.Add(fmt.Sprintf("%d", conc),
			fmt.Sprintf("%.1f", r.res.throughput),
			fmt.Sprintf("%.1f", mbps),
			fmt.Sprintf("%.3f", ms(r.res.p50)), fmt.Sprintf("%.3f", ms(r.res.p95)), fmt.Sprintf("%.3f", ms(r.res.p99)),
			fmt.Sprintf("%.3f", decodeMs), fmt.Sprintf("%.3f", computeMs),
			fmt.Sprintf("%.1f%%", share),
			fmt.Sprintf("%d", r.rejected),
			hit)
		cfg.Out("OBS http conc=%d: %.1f req/s (%.1f MB/s in), decode %.3f ms vs compute %.3f ms per request (%.1f%% decode), %d rejected, fuse hit %s\n",
			conc, r.res.throughput, mbps, decodeMs, computeMs, share, r.rejected, hit)
	}
	return tb, nil
}

// httpLayoutTag labels the table title with the request style: the layout
// tag of payload-shipping runs, or the by-reference marker for -mmap.
func httpLayoutTag(cfg HTTPLoadConfig, x tensor.Interface) string {
	if cfg.Mmap {
		return "by-ref mmapped dense"
	}
	return layoutTag(cfg.Sparse, cfg.Density, x)
}

// clientMTTKRP routes one request to the wire endpoint matching the
// tensor's layout: dense payloads to /v1/mttkrp, COO payloads to the
// version-2 sparse endpoint.
func clientMTTKRP(client *transport.Client, dst mat.View, x tensor.Interface, u []mat.View, mode int) (mat.View, transport.Timing, error) {
	if xs, ok := x.(*tensor.Sparse); ok {
		return client.SparseMTTKRP(dst, xs, u, mode, 0)
	}
	return client.MTTKRP(dst, x.(*tensor.Dense), u, mode, 0)
}

// serveStatsOf snapshots the in-process listener's scheduler counters
// (zero Stats for an external listener).
func serveStatsOf(srv *transport.Server) serve.Stats {
	if srv == nil {
		return serve.Stats{}
	}
	return srv.Stats().Serve
}

// httpFuseHit formats the fusion hit rate of one concurrency level as the
// delta against the pre-level snapshot; external listeners (no stats
// access over the load-generator path) report n/a.
func httpFuseHit(srv *transport.Server, pre serve.Stats) string {
	if srv == nil {
		return "n/a"
	}
	post := srv.Stats().Serve
	batches := post.Batches - pre.Batches
	if batches <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(post.Fused-pre.Fused)/float64(batches))
}

// httpMixLoad ships the heterogeneous class mix over the wire: every
// request carries its class's full tensor payload, and latency percentiles
// are reported per class — the network-path view of the convoy/tail
// measurement (including p99, which one-shape runs hide).
func httpMixLoad(cfg HTTPLoadConfig, client *transport.Client, url string, srv *transport.Server) (*Table, error) {
	mix, err := ParseMix(cfg.Mix)
	if err != nil {
		return nil, fmt.Errorf("bench: -mix: %w", err)
	}
	rng := rand.New(rand.NewSource(99))
	classes := make([]mixClass, len(mix))
	for i, m := range mix {
		dims, rank, err := mixShape(m.Name, cfg.Dims, cfg.Rank)
		if err != nil {
			return nil, err
		}
		x := loadTensor(rng, cfg.Sparse, cfg.Density, dims...)
		u := make([]mat.View, x.Order())
		for k := range u {
			u[k] = mat.RandomDense(x.Dim(k), rank, rng)
		}
		mode := cfg.Mode
		if mode >= x.Order() {
			mode = x.Order() / 2
		}
		classes[i] = mixClass{name: m.Name, x: x, u: u, mode: mode, rank: rank}
	}
	for _, c := range classes {
		if _, _, err := clientMTTKRP(client, mat.View{}, c.x, c.u, c.mode); err != nil {
			return nil, fmt.Errorf("bench: warmup request against %s failed: %w", url, err)
		}
	}

	tb := NewTable(
		fmt.Sprintf("HTTP mixed serving load — %s base %v rank %d, mix %s, %d requests per level",
			layoutTag(cfg.Sparse, cfg.Density, nil), cfg.Dims, cfg.Rank, cfg.Mix, cfg.Requests),
		"conc", "class", "req/s", "p50 ms", "p95 ms", "p99 ms", "rejected")

	for _, conc := range cfg.Conc {
		pre := serveStatsOf(srv)
		seq := classSequence(mix, cfg.Requests, int64(conc))
		latencies := make([]time.Duration, len(seq))
		accepted := make([]bool, len(seq))
		rejected := make([]atomic.Int64, len(classes))
		idx := 0
		var mu sync.Mutex
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dsts := make([]mat.View, len(classes))
				for c := range classes {
					dsts[c] = mat.NewDense(classes[c].x.Dim(classes[c].mode), classes[c].rank)
				}
				for {
					mu.Lock()
					i := idx
					idx++
					mu.Unlock()
					if i >= len(seq) {
						return
					}
					c := &classes[seq[i]]
					t0 := time.Now()
					_, _, err := clientMTTKRP(client, dsts[seq[i]], c.x, c.u, c.mode)
					if err != nil {
						rejected[seq[i]].Add(1)
						continue
					}
					latencies[i] = time.Since(t0)
					accepted[i] = true
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		perClass := make([][]time.Duration, len(classes))
		for i := range seq {
			if accepted[i] {
				perClass[seq[i]] = append(perClass[seq[i]], latencies[i])
			}
		}
		for c, lats := range perClass {
			if len(lats) == 0 && rejected[c].Load() == 0 {
				continue
			}
			r := summarize(lats, wall)
			tb.Add(fmt.Sprintf("%d", conc), classes[c].name,
				fmt.Sprintf("%.1f", r.throughput),
				fmt.Sprintf("%.3f", ms(r.p50)), fmt.Sprintf("%.3f", ms(r.p95)), fmt.Sprintf("%.3f", ms(r.p99)),
				fmt.Sprintf("%d", rejected[c].Load()))
			cfg.Out("OBS http mix conc=%d class=%s: %.1f req/s, p99 %.3f ms\n",
				conc, classes[c].name, r.throughput, ms(r.p99))
		}
		cfg.Out("OBS http mix conc=%d: fuse hit %s\n", conc, httpFuseHit(srv, pre))
	}
	return tb, nil
}

// httpLevelResult carries one concurrency level's aggregates.
type httpLevelResult struct {
	res                 serveLoadResult
	decodeNs, computeNs int64
	rejected            int64
}

// runHTTPLevel fires cfg.Requests through conc submitters sharing one
// send function (one client, one pooled connection set), with a retained
// dst per submitter — the steady-state client pattern. Rejected requests
// (quota 429s against a live listener, transport errors) are counted
// separately and excluded from the latency/throughput series, so a
// throttled run cannot masquerade as a fast one.
func runHTTPLevel(cfg HTTPLoadConfig, send func(mat.View) (mat.View, transport.Timing, error), x tensor.Interface, conc int) httpLevelResult {
	var r httpLevelResult
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, cfg.Requests)
	idx := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := mat.NewDense(x.Dim(cfg.Mode), cfg.Rank)
			for {
				mu.Lock()
				i := idx
				idx++
				mu.Unlock()
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				_, tm, err := send(dst)
				lat := time.Since(t0)
				if err != nil {
					atomic.AddInt64(&r.rejected, 1)
					continue
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
				atomic.AddInt64(&r.decodeNs, tm.Decode.Nanoseconds())
				atomic.AddInt64(&r.computeNs, tm.Compute.Nanoseconds())
			}
		}()
	}
	wg.Wait()
	r.res = summarize(latencies, time.Since(start))
	return r
}
