package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 2e-6, MaxThreads: 2, Trials: 1, Out: buf}
}

func TestSummarize(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	st := Summarize(ds)
	if st.Median != 2*time.Second || st.Min != time.Second || st.Max != 3*time.Second || st.N != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean != 2*time.Second {
		t.Errorf("mean = %v", st.Mean)
	}
	// Even N: nearest-rank p50 is the lower middle element (the shared
	// Quantile definition), not the historical two-element average.
	even := Summarize([]time.Duration{time.Second, 3 * time.Second})
	if even.Median != time.Second {
		t.Errorf("even median = %v, want the nearest-rank 1s", even.Median)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summarize")
	}
}

func TestMeasureRunsWarmupPlusTrials(t *testing.T) {
	count := 0
	st := Measure(3, func() { count++ })
	if count != 4 {
		t.Errorf("ran %d times, want 4 (warmup + 3)", count)
	}
	if st.N != 3 {
		t.Errorf("N = %d", st.N)
	}
	count = 0
	MeasureTimed(0, func() time.Duration { count++; return time.Millisecond })
	if count != 2 {
		t.Errorf("MeasureTimed(0) ran %d times, want 2", count)
	}
}

func TestThreadCounts(t *testing.T) {
	ts := ThreadCounts(4)
	if len(ts) != 4 || ts[0] != 1 || ts[3] != 4 {
		t.Errorf("ThreadCounts = %v", ts)
	}
	if got := ThreadCounts(0); len(got) != 1 {
		t.Errorf("ThreadCounts(0) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable("demo", "name", "a", "b")
	tbl.Add("row1", "1", "2")
	tbl.Addf("row2", "%.2f", 3.14159, 2.71828)
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"## demo", "row1", "3.14", "2.72", "name"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 0.01 || c.Trials != 3 || c.MaxThreads < 1 {
		t.Errorf("defaults = %+v", c)
	}
	dims := Config{Scale: 1}.WithDefaults().EqualDims(3)
	if dims[0] < 890 || dims[0] > 920 {
		t.Errorf("paper-scale N=3 dims = %v, want ≈ 908 (900 in paper)", dims)
	}
	if rows := (Config{Scale: 1}.WithDefaults()).KRPRows(); rows != 2e7 {
		t.Errorf("paper-scale KRP rows = %d", rows)
	}
	if rows := (Config{Scale: 1e-12}.WithDefaults()).KRPRows(); rows < 64 {
		t.Error("KRP rows floor not applied")
	}
}

func TestFig4Tiny(t *testing.T) {
	var buf bytes.Buffer
	tbl := Fig4(tinyConfig(&buf), 25)
	// Series: {2,3,4} × {Naive, Reuse} + STREAM = 7 rows.
	if len(tbl.Rows) != 7 {
		t.Errorf("fig4 has %d series, want 7", len(tbl.Rows))
	}
	if !strings.Contains(buf.String(), "OBS fig4") {
		t.Error("missing observations")
	}
}

func TestFig5Tiny(t *testing.T) {
	var buf bytes.Buffer
	tables := Fig5(tinyConfig(&buf))
	if len(tables) != 4 {
		t.Fatalf("fig5 produced %d tables, want 4 (N=3..6)", len(tables))
	}
	// N=5: 5 one-step series + 3 two-step series + baseline = 9.
	if got := len(tables[2].Rows); got != 9 {
		t.Errorf("fig5 N=5 has %d series, want 9", got)
	}
	if !strings.Contains(buf.String(), "OBS fig5 N=3") {
		t.Error("missing observations")
	}
}

func TestFig6Tiny(t *testing.T) {
	var buf bytes.Buffer
	tables := Fig6(tinyConfig(&buf))
	if len(tables) != 8 {
		t.Fatalf("fig6 produced %d tables, want 8 (N=3..6 × seq/par)", len(tables))
	}
	// N=3 table: per mode {B, 1S} + internal 2S = 3*2+1 = 7 rows.
	if got := len(tables[0].Rows); got != 7 {
		t.Errorf("fig6 N=3 has %d rows, want 7", got)
	}
	out := buf.String()
	if !strings.Contains(out, "DGEMM") || !strings.Contains(out, "REDUCE") {
		t.Error("missing phase columns")
	}
}

func TestFig7Tiny(t *testing.T) {
	var buf bytes.Buffer
	tables := Fig7(tinyConfig(&buf))
	if len(tables) != 2 {
		t.Fatalf("fig7 produced %d tables, want 2 (3D, 4D)", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 4 {
			t.Errorf("fig7 table has %d series, want 4", len(tbl.Rows))
		}
		if len(tbl.Rows[0]) != len(fig7Ranks)+1 {
			t.Errorf("fig7 row has %d cells", len(tbl.Rows[0]))
		}
	}
	if !strings.Contains(buf.String(), "OBS fig7 4D") {
		t.Error("missing observations")
	}
}

func TestFig8Tiny(t *testing.T) {
	var buf bytes.Buffer
	tables := Fig8(tinyConfig(&buf))
	if len(tables) != 4 {
		t.Fatalf("fig8 produced %d tables, want 4 (3D/4D × seq/par)", len(tables))
	}
	// 3D: 3 modes × {B, 1S} + 1 internal 2S = 7 rows.
	if got := len(tables[0].Rows); got != 7 {
		t.Errorf("fig8 3D has %d rows, want 7", got)
	}
	// 4D: 4 modes × {B, 1S} + 2 internal 2S = 10 rows.
	if got := len(tables[2].Rows); got != 10 {
		t.Errorf("fig8 4D has %d rows, want 10", got)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("demo", "name", "T=1", "T=2")
	tbl.Add("series-a", "0.5", "0.25")
	tbl.Add("short") // padded
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "name,T=1,T=2\nseries-a,0.5,0.25\nshort,,\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTableCSVRoundTripsThroughReader(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	tbl.Add("with,comma", "1")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "with,comma" {
		t.Errorf("records = %v", recs)
	}
}
