package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// fig5Rank is the factor column count used throughout Figures 5 and 6.
const fig5Rank = 25

// Fig5 regenerates Figure 5: MTTKRP time versus thread count for tensors
// of order N = 3..6 with equal dimensions and ≈ 750M·Scale entries,
// C = 25. Series: 1-step for every mode, 2-step for internal modes, and
// the baseline DGEMM (a same-shape column-major GEMM, excluding reorder
// and KRP time).
func Fig5(cfg Config) []*Table {
	cfg = cfg.WithDefaults()
	var tables []*Table
	for _, n := range []int{3, 4, 5, 6} {
		tables = append(tables, fig5ForOrder(cfg, n))
	}
	return tables
}

func fig5ForOrder(cfg Config, order int) *Table {
	dims := cfg.EqualDims(order)
	threads := ThreadCounts(cfg.MaxThreads)
	rng := rand.New(rand.NewSource(int64(order)))
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, order)
	for k, d := range dims {
		u[k] = mat.RandomDense(d, fig5Rank, rng)
	}

	cols := []string{fmt.Sprintf("series (N=%d, dims=%v, C=%d)", order, dims[0], fig5Rank)}
	for _, t := range threads {
		cols = append(cols, fmt.Sprintf("T=%d", t))
	}
	table := NewTable(fmt.Sprintf("Figure 5 (N=%d: %d^%d ≈ %d entries): MTTKRP seconds vs threads",
		order, dims[0], order, x.Size()), cols...)

	seq1 := make([]float64, order) // 1-step T=1 per mode, for observations
	var seqBL, parBL float64
	for n := 0; n < order; n++ {
		times := make([]float64, 0, len(threads))
		for _, t := range threads {
			st := Measure(cfg.Trials, func() {
				core.OneStep(x, u, n, core.Options{Threads: t})
			})
			times = append(times, st.Median.Seconds())
		}
		seq1[n] = times[0]
		table.Addf(fmt.Sprintf("1-Step, n = %d", n), "%.4f", times...)
	}
	for n := 1; n < order-1; n++ {
		times := make([]float64, 0, len(threads))
		for _, t := range threads {
			st := Measure(cfg.Trials, func() {
				core.TwoStep(x, u, n, core.Options{Threads: t})
			})
			times = append(times, st.Median.Seconds())
		}
		table.Addf(fmt.Sprintf("2-Step, n = %d", n), "%.4f", times...)
	}
	{
		g := core.NewGemmBaselineFor(x, 0, fig5Rank)
		times := make([]float64, 0, len(threads))
		for _, t := range threads {
			st := Measure(cfg.Trials, func() { g.Run(t, nil) })
			times = append(times, st.Median.Seconds())
		}
		seqBL, parBL = times[0], times[len(times)-1]
		table.Addf("Baseline", "%.4f", times...)
	}
	table.Fprint(cfg.Out)

	// Shape observations: sequential 1-step vs baseline ratio (paper: at
	// most ~2x slower), and baseline parallel scaling (paper: poor).
	worst := 0.0
	for _, s := range seq1 {
		if r := s / seqBL; r > worst {
			worst = r
		}
	}
	fmt.Fprintf(cfg.Out, "OBS fig5 N=%d: worst seq 1-step/baseline = %.2fx; baseline parallel speedup = %.2fx (T=%d)\n\n",
		order, worst, seqBL/parBL, threads[len(threads)-1])
	return table
}
