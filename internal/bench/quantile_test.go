package bench

import (
	"testing"
	"time"
)

// seq builds [1ms, 2ms, …, n ms].
func seq(n int) []time.Duration {
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	return ds
}

// TestQuantileNearestRank is the table the three historical
// implementations disagreed on: N = 1, 2, 4 and 100 are exactly the sizes
// where an averaged median, a floor-index q() and nearest-rank diverge by
// one element.
func TestQuantileNearestRank(t *testing.T) {
	ms := time.Millisecond
	for _, tc := range []struct {
		n    int
		p    float64
		want time.Duration
	}{
		// N=1: every quantile is the only sample.
		{1, 0.50, 1 * ms},
		{1, 0.95, 1 * ms},
		{1, 0.99, 1 * ms},
		// N=2: nearest-rank p50 is the lower middle (the averaged-median
		// implementation reported 1.5ms here).
		{2, 0.50, 1 * ms},
		{2, 0.95, 2 * ms},
		{2, 0.99, 2 * ms},
		// N=4: ceil(0.95·4)=4 → 4ms (the floor-index q() reported
		// sorted[int(.95·3)] = 3ms — the off-by-one this helper removes).
		{4, 0.50, 2 * ms},
		{4, 0.95, 4 * ms},
		{4, 0.99, 4 * ms},
		// N=100: the textbook case — p50 → 50th, p95 → 95th, p99 → 99th.
		{100, 0.50, 50 * ms},
		{100, 0.95, 95 * ms},
		{100, 0.99, 99 * ms},
		// Clamps.
		{4, 0, 1 * ms},
		{4, 1, 4 * ms},
		{4, 1.5, 4 * ms},
	} {
		if got := Quantile(seq(tc.n), tc.p); got != tc.want {
			t.Errorf("Quantile(N=%d, p=%g) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

// TestQuantileUnifiesSummarize pins that Summarize's median and the
// serving summarize() percentiles are the same nearest-rank definition —
// the point of the unification.
func TestQuantileUnifiesSummarize(t *testing.T) {
	for _, n := range []int{1, 2, 4, 100} {
		ds := seq(n)
		if st := Summarize(ds); st.Median != Quantile(ds, 0.5) {
			t.Errorf("N=%d: Summarize median %v != Quantile p50 %v", n, st.Median, Quantile(ds, 0.5))
		}
		r := summarize(ds, time.Second)
		if r.p50 != Quantile(ds, 0.50) || r.p95 != Quantile(ds, 0.95) || r.p99 != Quantile(ds, 0.99) {
			t.Errorf("N=%d: serving summarize %v/%v/%v disagrees with Quantile", n, r.p50, r.p95, r.p99)
		}
	}
}
