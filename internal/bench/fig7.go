package bench

import (
	"fmt"
	"math"

	"repro/internal/cpd"
	"repro/internal/fmri"
	"repro/internal/tensor"
)

// fig7Ranks are the CP ranks swept in Figure 7.
var fig7Ranks = []int{10, 15, 20, 25, 30}

// Fig7 regenerates Figure 7: per-iteration CP-ALS time for the Tensor
// Toolbox comparator (explicit-reorder MTTKRP, parallelism only inside
// BLAS) versus this library's hybrid (1-step external / 2-step internal
// modes), sequential and parallel, on the 3-way and 4-way fMRI tensors,
// over ranks C ∈ {10, 15, 20, 25, 30}.
func Fig7(cfg Config) []*Table {
	cfg = cfg.WithDefaults()
	// Scale the 4-way fMRI dimensions so the entry count scales like the
	// other figures: linear dims shrink by Scale^(1/4).
	p := fmri.PaperParams().Scaled(math.Pow(cfg.Scale, 0.25))
	p.Seed = 99
	ds := fmri.Generate(p)
	x4 := ds.Tensor4
	x3 := ds.Linearize3()

	var tables []*Table
	tables = append(tables, fig7ForTensor(cfg, "3D", x3))
	tables = append(tables, fig7ForTensor(cfg, "4D", x4))
	return tables
}

func fig7ForTensor(cfg Config, name string, x *tensor.Dense) *Table {
	cols := []string{fmt.Sprintf("%s %v series", name, x.Dims())}
	for _, c := range fig7Ranks {
		cols = append(cols, fmt.Sprintf("C=%d", c))
	}
	table := NewTable(fmt.Sprintf("Figure 7 (%s tensor %v): CP-ALS seconds per iteration", name, x.Dims()), cols...)

	type series struct {
		label string
		ttb   bool
		t     int
	}
	sweep := []series{
		{"TTB-substitute seq", true, 1},
		{"TTB-substitute par", true, cfg.MaxThreads},
		{"ours seq", false, 1},
		{"ours par", false, cfg.MaxThreads},
	}
	times := make(map[string][]float64)
	for _, s := range sweep {
		row := make([]float64, 0, len(fig7Ranks))
		for _, c := range fig7Ranks {
			row = append(row, perIterTime(cfg, x, c, s.ttb, s.t))
		}
		times[s.label] = row
		table.Addf(s.label, "%.4f", row...)
	}
	table.Fprint(cfg.Out)

	// Paper headline: speedup of ours-par over TTB-par, growing with C.
	last := len(fig7Ranks) - 1
	fmt.Fprintf(cfg.Out, "OBS fig7 %s: seq speedup ours vs TTB at C=%d = %.2fx; par speedup at C=%d = %.2fx\n\n",
		name,
		fig7Ranks[last], times["TTB-substitute seq"][last]/times["ours seq"][last],
		fig7Ranks[last], times["TTB-substitute par"][last]/times["ours par"][last])
	return table
}

// perIterTime runs a few ALS sweeps and returns the median per-iteration
// time, discarding the first sweep as warmup.
func perIterTime(cfg Config, x *tensor.Dense, rank int, ttb bool, threads int) float64 {
	iters := cfg.Trials + 1
	if iters < 3 {
		iters = 3
	}
	c := cpd.Config{Rank: rank, MaxIters: iters, Tol: -1, Seed: 7, Threads: threads}
	var res *cpd.Result
	var err error
	if ttb {
		res, err = cpd.ReferenceALS(x, c)
	} else {
		res, err = cpd.ALS(x, c)
	}
	if err != nil {
		panic(fmt.Sprintf("bench: fig7 ALS failed: %v", err))
	}
	st := Summarize(res.IterTimes[1:])
	return st.Median.Seconds()
}
