package bench

// Benchmark-artifact diffing. CI records every run's benchmarks as
// `go test -json` output (BENCH_<sha>.json artifacts); Diff parses two
// such files and renders a per-(benchmark, metric) delta table, so a PR
// can compare its perf trajectory against a base artifact with one
// command instead of eyeballing two JSON streams.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the go-test-json event stream we consume:
// benchmark results arrive as "output" actions whose Output field carries
// the standard `BenchmarkName-N  iters  value unit  ...` result line.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// BenchResult is one parsed benchmark result line: the metric values per
// unit (ns/op, B/op, allocs/op, and any testing.B ReportMetric custom
// units such as fused-hit-rate or GFLOP/s).
type BenchResult struct {
	Package string
	Name    string // benchmark name with the -N GOMAXPROCS suffix stripped
	Iters   int64
	Metrics map[string]float64 // unit -> value
}

// Key identifies a benchmark across artifacts: package path plus name.
func (r BenchResult) Key() string { return r.Package + "." + r.Name }

// ParseBenchJSON reads a go-test-json stream and returns every benchmark
// result line found in it, in encounter order. Lines that are not valid
// JSON events or not benchmark results are skipped, so a stream with
// interleaved build noise still parses. If the same benchmark appears
// more than once (e.g. re-run at a different benchtime), the last result
// wins — that matches how CI appends the kernel micro-benchmark pass to
// the same artifact.
func ParseBenchJSON(r io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	index := make(map[string]int)
	var out []BenchResult
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if ev.Action != "output" {
			continue
		}
		res, ok := parseBenchLine(ev.Package, ev.Output)
		if !ok {
			continue
		}
		if i, seen := index[res.Key()]; seen {
			out[i] = res
		} else {
			index[res.Key()] = len(out)
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseBenchLine parses one textual benchmark result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op
//
// returning ok=false for anything else (PASS/ok lines, b.Log output, …).
func parseBenchLine(pkg, line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	// Name, iteration count, and at least one value+unit pair.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := BenchResult{Package: pkg, Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return BenchResult{}, false
	}
	return res, true
}

// Diff compares two parsed artifacts and renders one row per
// (benchmark, unit) pair present in both, plus summary rows for
// benchmarks that exist on only one side. Rows are sorted by package,
// name, then unit, so the table is stable across runs.
func Diff(base, head []BenchResult) *Table {
	bi := make(map[string]BenchResult, len(base))
	for _, r := range base {
		bi[r.Key()] = r
	}
	hi := make(map[string]BenchResult, len(head))
	for _, r := range head {
		hi[r.Key()] = r
	}

	t := NewTable("benchmark delta (base -> head)", "benchmark", "unit", "base", "head", "delta")
	keys := make([]string, 0, len(hi))
	for k := range hi {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hi[k]
		b, inBase := bi[k]
		if !inBase {
			t.Add(shortKey(h), "", "", "", "new")
			continue
		}
		units := make([]string, 0, len(h.Metrics))
		for u := range h.Metrics {
			if _, ok := b.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			t.Add(shortKey(h), u, formatMetric(b.Metrics[u]), formatMetric(h.Metrics[u]),
				formatDelta(b.Metrics[u], h.Metrics[u]))
		}
	}
	gone := make([]string, 0)
	for k, b := range bi {
		if _, ok := hi[k]; !ok {
			gone = append(gone, shortKey(b))
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		t.Add(k, "", "", "", "gone")
	}
	return t
}

// shortKey renders the benchmark identity with the module-internal path
// prefix trimmed, keeping tables readable without losing uniqueness.
func shortKey(r BenchResult) string {
	pkg := r.Package
	if i := strings.Index(pkg, "internal/"); i >= 0 {
		pkg = pkg[i+len("internal/"):]
	}
	return pkg + "." + strings.TrimPrefix(r.Name, "Benchmark")
}

func formatMetric(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// formatDelta renders the head/base change as a signed percentage.
// A zero base with a zero head is flat; a zero base with a nonzero head
// has no meaningful ratio, so it is shown as the raw difference.
func formatDelta(base, head float64) string {
	if base == head {
		return "+0.0%"
	}
	if base == 0 {
		return fmt.Sprintf("%+g", head)
	}
	return fmt.Sprintf("%+.1f%%", (head-base)/base*100)
}

// DiffFiles parses two artifact files and renders their delta table.
func DiffFiles(basePath, headPath string) (*Table, error) {
	parse := func(path string) ([]BenchResult, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rs, err := ParseBenchJSON(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(rs) == 0 {
			return nil, fmt.Errorf("%s: no benchmark results found", path)
		}
		return rs, nil
	}
	base, err := parse(basePath)
	if err != nil {
		return nil, err
	}
	head, err := parse(headPath)
	if err != nil {
		return nil, err
	}
	return Diff(base, head), nil
}
