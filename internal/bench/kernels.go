package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simd"
)

// KernelsConfig parameterizes the per-kernel micro-benchmark table.
type KernelsConfig struct {
	// MinTime is the minimum measured wall time per (kernel, impl, size)
	// cell; iteration counts are calibrated to reach it. Default 20ms.
	MinTime time.Duration
	// Out receives OBS commentary lines (may be nil).
	Out func(format string, args ...any)
}

// kernelCase is one benchmarked inner loop: run executes iters calls and
// returns the flop count performed (so GFLOP/s falls out of the clock).
type kernelCase struct {
	name string
	size string
	run  func(impl *simd.Impl, iters int) float64
}

// kernelCases builds the benchmark set over the sizes that matter to
// MTTKRP: rank-sized rows (16), cache-resident vectors (1024), and
// KRP-block-shaped flats.
func kernelCases(rng *rand.Rand) []kernelCase {
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	var cases []kernelCase
	for _, n := range []int{16, 1024, 16384} {
		n := n
		x, y, z := mk(n), mk(n), mk(n)
		cases = append(cases,
			kernelCase{"dot", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				var s float64
				for i := 0; i < iters; i++ {
					s += impl.Dot(x, y)
				}
				kernelSink = s
				return float64(2 * n * iters)
			}},
			kernelCase{"axpy", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				for i := 0; i < iters; i++ {
					impl.Axpy(1.0000001, x, y)
				}
				return float64(2 * n * iters)
			}},
			kernelCase{"had", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				for i := 0; i < iters; i++ {
					impl.Had(x, y, z)
				}
				return float64(n * iters)
			}},
			kernelCase{"hadacc", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				for i := 0; i < iters; i++ {
					impl.HadAcc(x, y, z)
				}
				return float64(2 * n * iters)
			}},
			kernelCase{"add", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				for i := 0; i < iters; i++ {
					impl.Add(x, y)
				}
				return float64(n * iters)
			}},
			kernelCase{"sumabs", fmt.Sprintf("n=%d", n), func(impl *simd.Impl, iters int) float64 {
				var s float64
				for i := 0; i < iters; i++ {
					s += impl.SumAbs(x)
				}
				kernelSink = s
				return float64(n * iters)
			}},
		)
	}
	for _, kc := range []int{64, 256} {
		kc := kc
		ap, bp := mk(4*kc), mk(4*kc)
		acc := new([16]float64)
		cases = append(cases, kernelCase{"gemm4x4", fmt.Sprintf("kc=%d", kc), func(impl *simd.Impl, iters int) float64 {
			for i := 0; i < iters; i++ {
				impl.Gemm4x4(kc, ap, bp, acc)
			}
			return float64(2 * 16 * kc * iters)
		}})
	}
	for _, shape := range []struct{ rows, c int }{{40, 16}, {256, 16}} {
		shape := shape
		row := mk(shape.c)
		kl := mk(shape.rows * shape.c)
		out := mk(shape.rows * shape.c)
		cases = append(cases, kernelCase{"hadexpand", fmt.Sprintf("rows=%d c=%d", shape.rows, shape.c), func(impl *simd.Impl, iters int) float64 {
			for i := 0; i < iters; i++ {
				impl.HadExpand(row, kl, out)
			}
			return float64(shape.rows * shape.c * iters)
		}})
	}
	return cases
}

// kernelSink defeats dead-code elimination of benchmarked reductions.
var kernelSink float64

// measure runs one case under one implementation, calibrating the
// iteration count up until the measured time reaches minTime, and returns
// GFLOP/s.
func measure(c kernelCase, impl *simd.Impl, minTime time.Duration) float64 {
	iters := 64
	for {
		start := time.Now()
		flops := c.run(impl, iters)
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return flops / elapsed.Seconds() / 1e9
		}
		grow := 2
		if elapsed < minTime/8 {
			grow = 8
		}
		iters *= grow
	}
}

// Kernels measures every simd kernel under the scalar reference and (when
// the host has one) the vectorized implementation, and tabulates GFLOP/s
// with the vector/scalar speedup per cell. This is the measured basis of
// the EXPERIMENTS.md speedup table and feeds the BENCH_<sha>.json
// artifact via -kernels in mttkrp-bench.
func Kernels(cfg KernelsConfig) (*Table, error) {
	if cfg.MinTime <= 0 {
		cfg.MinTime = 20 * time.Millisecond
	}
	if cfg.Out == nil {
		cfg.Out = func(string, ...any) {}
	}
	scalar := simd.Scalar()
	vector := simd.Vector()
	vecName := "none"
	if vector != nil {
		vecName = vector.Name
	}
	tb := NewTable(
		fmt.Sprintf("Kernel micro-benchmarks — scalar vs %s, GFLOP/s (active dispatch: %s)", vecName, simd.Active().Name),
		"kernel", "size", "scalar GFLOP/s", "vector GFLOP/s", "speedup")

	rng := rand.New(rand.NewSource(7))
	best := 0.0
	bestName := ""
	for _, c := range kernelCases(rng) {
		s := measure(c, scalar, cfg.MinTime)
		if vector == nil {
			tb.Add(c.name, c.size, fmt.Sprintf("%.2f", s), "-", "-")
			continue
		}
		v := measure(c, vector, cfg.MinTime)
		sp := v / s
		if sp > best {
			best, bestName = sp, c.name+" "+c.size
		}
		tb.Add(c.name, c.size, fmt.Sprintf("%.2f", s), fmt.Sprintf("%.2f", v), fmt.Sprintf("%.2fx", sp))
	}
	if vector == nil {
		cfg.Out("OBS: no vectorized implementation on this host; scalar reference only\n")
	} else {
		cfg.Out("OBS: best kernel speedup %.2fx (%s); acceptance floor is 1.5x on a krp-heavy kernel\n", best, bestName)
	}
	return tb, nil
}
