package bench

import (
	"math"
	"time"
)

// Quantile returns the nearest-rank p-quantile of an ascending-sorted
// duration slice: the smallest element whose rank r satisfies r/N ≥ p,
// i.e. sorted[ceil(p·N)−1], with p clamped to (0, 1]. It is the single
// percentile definition every latency table in this package uses —
// Summarize's median and the -serve / -serve-http p50/p95/p99 columns —
// so the two load generators can never disagree by an off-by-one again
// (the historical trio: an averaged even-N median here, floor-indexed
// q() closures in the serving tables). An empty slice reports 0.
func Quantile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
