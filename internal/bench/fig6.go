package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Fig6 regenerates Figure 6: the time breakdown of baseline, 1-step and
// 2-step MTTKRP across modes for N = 3..6, sequential (T=1) and parallel
// (T=MaxThreads). Phase categories match the paper's legend: DGEMM, DGEMV,
// Full KRP, L&R KRP, REDUCE (plus REORDER for context, which the paper's
// baseline ignores).
func Fig6(cfg Config) []*Table {
	cfg = cfg.WithDefaults()
	var tables []*Table
	for _, n := range []int{3, 4, 5, 6} {
		for _, t := range []int{1, cfg.MaxThreads} {
			tables = append(tables, fig6ForOrder(cfg, n, t))
		}
	}
	return tables
}

func fig6ForOrder(cfg Config, order, t int) *Table {
	dims := cfg.EqualDims(order)
	rng := rand.New(rand.NewSource(int64(order)))
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, order)
	for k, d := range dims {
		u[k] = mat.RandomDense(d, fig5Rank, rng)
	}
	label := "Seq."
	if t > 1 {
		label = fmt.Sprintf("Par. T=%d", t)
	}
	table := breakdownTable(
		fmt.Sprintf("Figure 6 (%s, N=%d: %d^%d): MTTKRP time breakdown in seconds", label, order, dims[0], order))

	g := core.NewGemmBaselineFor(x, 0, fig5Rank)
	for n := 0; n < order; n++ {
		addBreakdownRow(table, fmt.Sprintf("n=%d B", n), cfg.Trials, func(bd *core.Breakdown) {
			g.Run(t, bd)
		})
		addBreakdownRow(table, fmt.Sprintf("n=%d 1S", n), cfg.Trials, func(bd *core.Breakdown) {
			core.OneStep(x, u, n, core.Options{Threads: t, Breakdown: bd})
		})
		if n > 0 && n < order-1 {
			addBreakdownRow(table, fmt.Sprintf("n=%d 2S", n), cfg.Trials, func(bd *core.Breakdown) {
				core.TwoStep(x, u, n, core.Options{Threads: t, Breakdown: bd})
			})
		}
	}
	table.Fprint(cfg.Out)
	return table
}

// breakdownTable creates a table with one column per phase plus a total.
func breakdownTable(title string) *Table {
	cols := []string{"mode/method"}
	for _, p := range core.Phases() {
		cols = append(cols, p.String())
	}
	cols = append(cols, "TOTAL")
	return NewTable(title, cols...)
}

// addBreakdownRow runs fn trials times accumulating a Breakdown, averages
// it, and appends a row of per-phase seconds.
func addBreakdownRow(table *Table, label string, trials int, fn func(*core.Breakdown)) {
	var bd core.Breakdown
	fn(&bd) // warmup
	bd.Reset()
	for i := 0; i < trials; i++ {
		fn(&bd)
	}
	bd.Scale(trials)
	vals := make([]float64, 0, len(core.Phases())+1)
	for _, p := range core.Phases() {
		vals = append(vals, bd.Get(p).Seconds())
	}
	vals = append(vals, bd.Total().Seconds())
	table.Addf(label, "%.4f", vals...)
}
