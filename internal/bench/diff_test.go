package bench

import (
	"strings"
	"testing"
)

const baseJSON = `{"Action":"run","Package":"repro/internal/core","Test":"BenchmarkMTTKRP"}
{"Action":"output","Package":"repro/internal/core","Output":"BenchmarkMTTKRP-8   \t     100\t   1200 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro/internal/core","Output":"some b.Log line, not a result\n"}
{"Action":"output","Package":"repro/internal/serve","Output":"BenchmarkFusedBatch-8   \t      50\t  40000 ns/op\t         0.7500 fused-hit-rate\n"}
{"Action":"output","Package":"repro/internal/serve","Output":"BenchmarkRemoved-8   \t      10\t  99 ns/op\n"}
not json at all
{"Action":"pass","Package":"repro/internal/core"}
`

const headJSON = `{"Action":"output","Package":"repro/internal/core","Output":"BenchmarkMTTKRP-8   \t     100\t    600 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro/internal/serve","Output":"BenchmarkFusedBatch-8   \t      50\t  40000 ns/op\t         0.9000 fused-hit-rate\n"}
{"Action":"output","Package":"repro/internal/serve","Output":"BenchmarkFusedBatch-8   \t      80\t  30000 ns/op\t         0.9000 fused-hit-rate\n"}
{"Action":"output","Package":"repro/internal/tensor","Output":"BenchmarkNew-8   \t      10\t  5 ns/op\n"}
`

func TestParseBenchJSON(t *testing.T) {
	rs, err := ParseBenchJSON(strings.NewReader(baseJSON))
	if err != nil {
		t.Fatalf("ParseBenchJSON: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	m := rs[0]
	if m.Name != "BenchmarkMTTKRP" || m.Package != "repro/internal/core" || m.Iters != 100 {
		t.Fatalf("first result: %+v", m)
	}
	if m.Metrics["ns/op"] != 1200 || m.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics: %+v", m.Metrics)
	}
	if rs[1].Metrics["fused-hit-rate"] != 0.75 {
		t.Fatalf("custom metric: %+v", rs[1].Metrics)
	}
}

func TestParseBenchJSONLastResultWins(t *testing.T) {
	rs, err := ParseBenchJSON(strings.NewReader(headJSON))
	if err != nil {
		t.Fatalf("ParseBenchJSON: %v", err)
	}
	for _, r := range rs {
		if r.Name == "BenchmarkFusedBatch" && r.Metrics["ns/op"] != 30000 {
			t.Fatalf("duplicate result not overwritten: %+v", r)
		}
	}
}

func TestDiff(t *testing.T) {
	base, err := ParseBenchJSON(strings.NewReader(baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	head, err := ParseBenchJSON(strings.NewReader(headJSON))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Diff(base, head).Fprint(&sb)
	out := sb.String()

	for _, want := range []string{
		"core.MTTKRP", "ns/op", "-50.0%", // 1200 -> 600
		"+20.0%",                  // fused-hit-rate 0.75 -> 0.9
		"tensor.New",              // head-only benchmark
		"new",                     //
		"serve.Removed",           // base-only benchmark
		"gone",                    //
		"allocs/op", "0", "+0.0%", // flat zero metric
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}
