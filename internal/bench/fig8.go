package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fmri"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// fig8Rank matches the C = 25 used for the Figure 8 breakdowns.
const fig8Rank = 25

// Fig8 regenerates Figure 8: MTTKRP time breakdowns on the application
// (fMRI) tensors — modes of very different sizes, unlike the cubic
// Figure 6 tensors — sequential and parallel.
func Fig8(cfg Config) []*Table {
	cfg = cfg.WithDefaults()
	p := fmri.PaperParams().Scaled(math.Pow(cfg.Scale, 0.25))
	p.Seed = 99
	ds := fmri.Generate(p)
	x4 := ds.Tensor4
	x3 := ds.Linearize3()

	var tables []*Table
	for _, tc := range []struct {
		name string
		x    *tensor.Dense
	}{{"3D", x3}, {"4D", x4}} {
		for _, t := range []int{1, cfg.MaxThreads} {
			tables = append(tables, fig8ForTensor(cfg, tc.name, tc.x, t))
		}
	}
	return tables
}

func fig8ForTensor(cfg Config, name string, x *tensor.Dense, t int) *Table {
	rng := rand.New(rand.NewSource(42))
	u := make([]mat.View, x.Order())
	for k := 0; k < x.Order(); k++ {
		u[k] = mat.RandomDense(x.Dim(k), fig8Rank, rng)
	}
	label := "Seq."
	if t > 1 {
		label = fmt.Sprintf("Par. T=%d", t)
	}
	table := breakdownTable(fmt.Sprintf("Figure 8 (%s fMRI tensor %v, %s): MTTKRP breakdown in seconds",
		name, x.Dims(), label))
	for n := 0; n < x.Order(); n++ {
		g := core.NewGemmBaselineFor(x, n, fig8Rank)
		addBreakdownRow(table, fmt.Sprintf("n=%d B", n), cfg.Trials, func(bd *core.Breakdown) {
			g.Run(t, bd)
		})
		addBreakdownRow(table, fmt.Sprintf("n=%d 1S", n), cfg.Trials, func(bd *core.Breakdown) {
			core.OneStep(x, u, n, core.Options{Threads: t, Breakdown: bd})
		})
		if n > 0 && n < x.Order()-1 {
			addBreakdownRow(table, fmt.Sprintf("n=%d 2S", n), cfg.Trials, func(bd *core.Breakdown) {
				core.TwoStep(x, u, n, core.Options{Threads: t, Breakdown: bd})
			})
		}
	}
	table.Fprint(cfg.Out)
	return table
}
