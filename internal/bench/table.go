package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table; each figure regenerator emits one or
// more tables whose rows correspond to the series the paper plots.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a titled table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: the first cell is the label, the
// rest are formatted with the given verb (e.g. "%.4f").
func (t *Table) Addf(label, verb string, values ...float64) {
	row := make([]string, 0, len(values)+1)
	row = append(row, label)
	for _, v := range values {
		row = append(row, fmt.Sprintf(verb, v))
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], cell)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table in RFC-4180 CSV form (header row first) so the
// figure series can be plotted directly.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		// Pad short rows so every record has the header's width.
		rec := make([]string, len(t.Columns))
		copy(rec, row)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
