package core

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// Sparse MTTKRP over the compressed fiber layout (tensor.FiberLayout): the
// COO entries regrouped by their mode-n coordinate into slices, so each
// output row is produced by one contiguous run of entries. The parallel
// schedule partitions the entry range — not the slice list — evenly
// across workers, so a skewed tensor (one slice holding most of the
// entries, the power-law shape of recommender data) still balances; the
// price is that a slice split across two workers is accumulated by both,
// which is why every worker owns a private I_n × C accumulator merged by
// the pool's reduce tree afterwards. No write locks anywhere — the same
// private-buffers-plus-reduction structure as the dense 1-step kernel.

// SparseCompute computes the mode-n MTTKRP of a sparse tensor, returning
// a fresh I_n × C row-major result.
func SparseCompute(x *tensor.Sparse, u []mat.View, n int, opts Options) mat.View {
	validateSparse(x, u, n)
	return SparseComputeInto(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// SparseComputeInto computes the mode-n MTTKRP of a sparse tensor into a
// caller-owned contiguous row-major I_n × C matrix. The fiber layout is
// built on the first call for each (tensor, mode) and cached on the
// tensor; with a retained dst and a persistent pool, repeated calls run
// with zero steady-state allocation.
func SparseComputeInto(dst mat.View, x *tensor.Sparse, u []mat.View, n int, opts Options) mat.View {
	validateSparse(x, u, n)
	c := rank(u)
	in := x.Dim(n)
	validateDst(dst, in, c)
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	clear(dst.Data[:in*c])
	nnz := int(x.NNZ())
	if nnz == 0 {
		return dst
	}
	bd := opts.Breakdown
	p := opts.pool()
	t := parallel.Clamp(p.Effective(opts.Threads), nnz)
	fl := x.Fibers(n)
	ws := p.Acquire()
	f := ws.Frame("core.sparse", newSparseFrame).(*sparseFrame)

	f.fl = fl
	f.u = append(f.u, u...)
	for k := range u {
		if k != n {
			f.opModes = append(f.opModes, k)
		}
	}
	f.c = c

	// Per-worker entry ranges (even nnz split) and the slice each range
	// starts inside; per-worker row/product scratch and the private
	// accumulator, all arena-leased. Worker 0 accumulates into dst.
	//lint:ignore mttkrp/arenaescape cleared in release() before ws.Release below
	f.bounds = ws.Arena(0).Ints("core.sp.bounds", t+1)
	//lint:ignore mttkrp/arenaescape cleared in release() before ws.Release below
	f.startSl = ws.Arena(0).Ints("core.sp.start", t)
	f.bounds[t] = nnz
	for w := 0; w < t; w++ {
		lo, _ := parallel.BlockRange(nnz, t, w)
		f.bounds[w] = lo
		f.startSl[w] = sort.Search(fl.Slices(), func(s int) bool {
			return int(fl.SlicePtr[s+1]) > lo
		})
		ar := ws.Arena(w)
		f.rowBufs = append(f.rowBufs, ar.Float64("core.sp.row", c))
		f.prodBufs = append(f.prodBufs, ar.Float64("core.sp.prod", c))
		mb := dst
		if w > 0 {
			mb = arenaMatZero(ar, "core.sp.m", in, c)
		}
		f.parts = append(f.parts, mb.Data[:in*c])
	}

	totalW := startWatch()
	sw := startWatch()
	p.Run(t, f.worker)
	bd.add(PhaseGEMM, sw.elapsed()) // the flop core: the sparse analogue of the dense GEMM phase

	sw = startWatch()
	p.ReduceSum(t, f.parts)
	bd.add(PhaseReduce, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	f.release()
	ws.Release()
	return dst
}

// sparseFrame is the workspace-cached state of the sparse kernel: per-call
// parameters, per-worker buffers and the pre-bound worker closure, reused
// across calls so dispatching allocates nothing.
type sparseFrame struct {
	fl       *tensor.FiberLayout
	u        []mat.View
	opModes  []int
	c        int
	bounds   []int // t+1 entry-range boundaries
	startSl  []int // slice index each worker's range starts inside
	rowBufs  [][]float64
	prodBufs [][]float64
	parts    [][]float64
	worker   func(w int)
}

func newSparseFrame() any {
	f := &sparseFrame{}
	f.worker = f.runWorker
	return f
}

//mttkrp:noalloc
func (f *sparseFrame) runWorker(w int) {
	lo, hi := f.bounds[w], f.bounds[w+1]
	if lo >= hi {
		return
	}
	fl := f.fl
	c := f.c
	acc := f.parts[w]
	row := f.rowBufs[w]
	prod := f.prodBufs[w]
	k0 := f.opModes[0]
	rest := f.opModes[1:]
	s := f.startSl[w]
	for p := lo; p < hi; s++ {
		end := int(fl.SlicePtr[s+1])
		if end > hi {
			end = hi
		}
		ri := int(fl.SliceIdx[s])
		// One output row per slice: accumulate the slice's entries into a
		// C-length row buffer, then add it to the private accumulator
		// once — entries touch factors, not the I_n × C output.
		clear(row)
		for ; p < end; p++ {
			copy(prod, f.u[k0].ContiguousRow(int(fl.Idx[k0][p])))
			for _, k := range rest {
				simd.Had(prod, f.u[k].ContiguousRow(int(fl.Idx[k][p])), prod)
			}
			simd.Axpy(fl.Vals[p], prod, row)
		}
		simd.Add(row, acc[ri*c:ri*c+c])
	}
}

// release clears caller references so the pooled workspace does not retain
// factor, layout or result memory between calls.
func (f *sparseFrame) release() {
	f.u = clearViews(f.u)
	f.opModes = f.opModes[:0]
	for i := range f.rowBufs {
		f.rowBufs[i] = nil
	}
	f.rowBufs = f.rowBufs[:0]
	for i := range f.prodBufs {
		f.prodBufs[i] = nil
	}
	f.prodBufs = f.prodBufs[:0]
	for i := range f.parts {
		f.parts[i] = nil
	}
	f.parts = f.parts[:0]
	f.bounds = nil
	f.startSl = nil
	f.fl = nil
}

// validateSparse checks the factor matrices against a sparse tensor,
// mirroring the dense validate.
func validateSparse(x *tensor.Sparse, u []mat.View, n int) {
	nModes := x.Order()
	if nModes < 2 {
		panic("core: MTTKRP requires an order ≥ 2 tensor")
	}
	if len(u) != nModes {
		panic(fmt.Sprintf("core: %d factor matrices for an order-%d tensor", len(u), nModes))
	}
	if n < 0 || n >= nModes {
		panic(fmt.Sprintf("core: mode %d out of range [0,%d)", n, nModes))
	}
	c := u[0].C
	for k, m := range u {
		if m.R != x.Dim(k) {
			panic(fmt.Sprintf("core: factor %d has %d rows, want %d", k, m.R, x.Dim(k)))
		}
		if m.C != c {
			panic(fmt.Sprintf("core: factor %d has %d columns, want %d", k, m.C, c))
		}
		if m.CS != 1 {
			panic(fmt.Sprintf("core: factor %d must have unit column stride", k))
		}
	}
}
