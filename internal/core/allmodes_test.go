package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// TestSweepAllMatchesPerModeCalls verifies the recomputation-avoidance
// scheme computes exactly the per-mode MTTKRPs of an ALS sweep, including
// the mid-sweep factor updates: after each mode's result is delivered, the
// test mutates that factor (as ALS would) and checks the next mode's
// result against a fresh per-mode computation with the current factors.
func TestSweepAllMatchesPerModeCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{4, 5}, {4, 5, 6}, {3, 4, 2, 5}, {2, 3, 2, 3, 2}, {1, 4, 3}, {2, 2, 2, 2, 2, 2}} {
		x, u := randomProblem(rng, dims, 4)
		// Shadow copy that receives the same simulated updates, used to
		// compute the expected per-mode results independently.
		shadow := make([]mat.View, len(u))
		for i := range u {
			shadow[i] = u[i].Clone()
		}
		modeSeen := -1
		SweepAll(x, u, Options{Threads: 2}, func(n int, m mat.View) {
			if n != modeSeen+1 {
				t.Fatalf("dims=%v: modes out of order: got %d after %d", dims, n, modeSeen)
			}
			modeSeen = n
			want := Naive(x, shadow, n)
			if !mat.ApproxEqual(m, want, 1e-10) {
				t.Fatalf("dims=%v mode=%d: sweep result differs from per-mode MTTKRP (%g)",
					dims, n, mat.MaxAbsDiff(m, want))
			}
			// Simulate the ALS factor update: overwrite with new values.
			fresh := mat.RandomDense(u[n].R, u[n].C, rng)
			u[n] = fresh
			shadow[n] = fresh.Clone()
		})
		if modeSeen != len(dims)-1 {
			t.Fatalf("dims=%v: only %d modes delivered", dims, modeSeen+1)
		}
	}
}

func TestSweepAllWithoutUpdatesMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, u := randomProblem(rng, []int{5, 4, 3, 4}, 6)
	// If the callback does not update factors, every mode must equal the
	// plain MTTKRP with the original factors.
	SweepAll(x, u, Options{Threads: 1}, func(n int, m mat.View) {
		want := Naive(x, u, n)
		if !mat.ApproxEqual(m, want, 1e-10) {
			t.Errorf("mode %d: mismatch %g", n, mat.MaxAbsDiff(m, want))
		}
	})
}

func TestSweepAllBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, u := randomProblem(rng, []int{8, 9, 10}, 5)
	var bd Breakdown
	count := 0
	SweepAll(x, u, Options{Threads: 2, Breakdown: &bd}, func(int, mat.View) { count++ })
	if count != 3 {
		t.Fatalf("delivered %d modes", count)
	}
	if bd.Get(PhaseGEMM) <= 0 || bd.Get(PhaseGEMV) <= 0 || bd.Total() <= 0 {
		t.Errorf("breakdown not populated: %v", &bd)
	}
}

func TestSplitPointBalances(t *testing.T) {
	cases := []struct {
		dims []int
		want int
	}{
		{[]int{10, 10}, 1},
		{[]int{10, 10, 10}, 1},     // 10+100 = 110 beats 100+10 tie; s=1 found first
		{[]int{10, 10, 10, 10}, 2}, // 100+100 minimal
		{[]int{2, 100, 2}, 2},      // 200+2 vs 2+200: tie, first wins... s=1: 2+200; s=2: 200+2 -> s=1
	}
	for _, c := range cases {
		x := tensor.New(c.dims...)
		got := splitPoint(x)
		// Verify optimality rather than the exact index (ties allowed).
		bestCost := x.SizeLeft(got-1)*x.Dim(got-1) + x.Size()/(x.SizeLeft(got-1)*x.Dim(got-1))
		for s := 1; s < len(c.dims); s++ {
			left := x.SizeLeft(s-1) * x.Dim(s-1)
			if cost := left + x.Size()/left; cost < bestCost {
				t.Errorf("dims=%v: splitPoint %d cost %d beaten by s=%d cost %d",
					c.dims, got, bestCost, s, cost)
			}
		}
	}
}

// Property: for random shapes and random mid-sweep updates, SweepAll
// agrees with per-mode computation throughout.
func TestSweepAllQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 2
		dims := make([]int, order)
		for i := range dims {
			dims[i] = rng.Intn(4) + 1
		}
		x, u := randomProblem(rng, dims, rng.Intn(4)+1)
		ok := true
		SweepAll(x, u, Options{Threads: rng.Intn(3) + 1}, func(n int, m mat.View) {
			if !mat.ApproxEqual(m, Naive(x, u, n), 1e-9) {
				ok = false
			}
			u[n] = mat.RandomDense(u[n].R, u[n].C, rng)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
