package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// bitsEqual compares two matrices for bitwise float64 equality — the
// fusion contract is that a plan hit changes nothing about the arithmetic,
// not merely that it stays within tolerance.
func bitsEqual(t *testing.T, got, want mat.View, label string) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: got %dx%d, want %dx%d", label, got.R, got.C, want.R, want.C)
	}
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("%s: bit mismatch at (%d,%d): %v vs %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func randomFusedProblem(rng *rand.Rand) (*tensor.Dense, []mat.View, int) {
	order := 2 + rng.Intn(3) // 2..4
	dims := make([]int, order)
	for i := range dims {
		dims[i] = 2 + rng.Intn(7)
	}
	c := 1 + rng.Intn(6)
	x, u := randomProblem(rng, dims, c)
	return x, u, c
}

// TestFusedPlanBitIdentical is the fusion property test: across random
// shapes, modes and methods, computing against a prebuilt shared-KRP plan
// produces bit-identical output to the plain path at the same worker
// count, and every fusable configuration actually consumes the plan.
func TestFusedPlanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := parallel.NewPool(4)
	defer pool.Close()
	methods := []Method{MethodOneStep, MethodTwoStep, MethodAuto}
	plan := new(krp.Plan)
	for trial := 0; trial < 100; trial++ {
		x, u, c := randomFusedProblem(rng)
		n := rng.Intn(x.Order())
		method := methods[rng.Intn(len(methods))]
		opts := Options{Threads: 4, Pool: pool}

		want := ComputeInto(mat.NewDense(x.Dim(n), c), method, x, u, n, opts)

		ws := pool.Acquire()
		FillPlan(plan, pool, ws, 4, x, u, n)
		hits0 := plan.Hits()
		got := ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), method, x, u, n, opts, plan)
		if plan.Hits() == hits0 {
			t.Fatalf("trial %d (%v mode %d dims %v): fusable method consumed no plan side", trial, method, n, x.Dims())
		}
		plan.Reset()
		ws.Release()

		bitsEqual(t, got, want, "fused vs unfused")
	}
}

// TestFusedPlanSharedAcrossMembers pins the batch contract the scheduler
// relies on: one Fill serves every member of a batch (different tensors,
// same non-target factors), the KRP is computed exactly once — asserted
// via the plan's fill/hit counters — and each member's output is
// bit-identical to its unfused computation.
func TestFusedPlanSharedAcrossMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := parallel.NewPool(4)
	defer pool.Close()
	dims := []int{9, 8, 7}
	const c, n, members = 5, 1, 4
	u := make([]mat.View, len(dims))
	xs := make([]*tensor.Dense, members)
	for i := range xs {
		xs[i] = tensor.Random(rng, dims...)
	}
	for k := range u {
		u[k] = mat.RandomDense(dims[k], c, rng)
	}

	for _, method := range []Method{MethodOneStep, MethodTwoStep} {
		plan := new(krp.Plan)
		ws := pool.Acquire()
		FillPlan(plan, pool, ws, 4, xs[0], u, n)
		if plan.Fills() != 1 {
			t.Fatalf("%v: fills = %d, want 1", method, plan.Fills())
		}
		for i, x := range xs {
			opts := Options{Threads: 4, Pool: pool}
			want := ComputeInto(mat.NewDense(x.Dim(n), c), method, x, u, n, opts)
			got := ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), method, x, u, n, opts, plan)
			bitsEqual(t, got, want, "member")
			_ = i
		}
		// Internal mode: two sides per member, all from the single fill.
		if plan.Fills() != 1 || plan.Hits() != 2*members || plan.Misses() != 0 {
			t.Fatalf("%v: fills=%d hits=%d misses=%d, want 1 fill, %d hits, 0 misses",
				method, plan.Fills(), plan.Hits(), plan.Misses(), 2*members)
		}
		plan.Reset()
		ws.Release()
	}
}

// TestFusedPlanValueMatch pins the network-path contract: a member whose
// factors live in different buffers but carry identical values still hits
// the plan (value comparison against the snapshot), while a member with
// different factor values misses every side and computes its own KRP —
// a plan can go stale, never wrong.
func TestFusedPlanValueMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := parallel.NewPool(2)
	defer pool.Close()
	x := tensor.Random(rng, 6, 5, 4)
	const c, n = 3, 1
	u := make([]mat.View, 3)
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}

	plan := new(krp.Plan)
	ws := pool.Acquire()
	defer ws.Release()
	FillPlan(plan, pool, ws, 2, x, u, n)

	// Same values, fresh buffers: the decoded-payload case.
	clone := make([]mat.View, len(u))
	for k := range u {
		clone[k] = u[k].Clone()
	}
	opts := Options{Threads: 2, Pool: pool}
	want := ComputeInto(mat.NewDense(x.Dim(n), c), MethodTwoStep, x, clone, n, opts)
	got := ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), MethodTwoStep, x, clone, n, opts, plan)
	bitsEqual(t, got, want, "value-matched clone")
	if plan.Hits() != 2 || plan.Misses() != 0 {
		t.Fatalf("clone factors: hits=%d misses=%d, want 2 hits, 0 misses", plan.Hits(), plan.Misses())
	}

	// Different values: every lookup must miss, result must match the
	// unfused computation of the new factors.
	other := make([]mat.View, len(u))
	for k := range u {
		other[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	want = ComputeInto(mat.NewDense(x.Dim(n), c), MethodTwoStep, x, other, n, opts)
	got = ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), MethodTwoStep, x, other, n, opts, plan)
	bitsEqual(t, got, want, "mismatched factors")
	if plan.Misses() != 2 {
		t.Fatalf("mismatched factors: misses=%d, want 2", plan.Misses())
	}
}

// TestFusedReconcileMidBatch pins the fusion × admission interaction: a
// lease shrinking 8→2 between fused members (applied by PhaseNotify →
// Reconcile at the second member's entry, exactly as the scheduler wires
// it) leaves the plan valid and the second member's result bit-identical
// to an unfused run at the post-shrink width.
func TestFusedReconcileMidBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pool := parallel.NewPool(8)
	defer pool.Close()
	ref := parallel.NewPool(8)
	defer ref.Close()
	x := tensor.Random(rng, 10, 9, 8)
	const c, n = 6, 1
	u := make([]mat.View, 3)
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}

	for _, method := range []Method{MethodOneStep, MethodTwoStep} {
		lease := pool.Lease(8)
		ws := lease.Acquire()
		plan := new(krp.Plan)
		FillPlan(plan, lease, ws, 0, x, u, n)
		opts := Options{Pool: lease, PhaseNotify: func() { parallel.Reconcile(lease) }}

		got1 := ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), method, x, u, n, opts, plan)
		want1 := ComputeInto(mat.NewDense(x.Dim(n), c), method, x, u, n, Options{Threads: 8, Pool: ref})
		bitsEqual(t, got1, want1, "member 1 at width 8")

		// The scheduler's mid-batch rebalance: Resize lands at the next
		// phase boundary, i.e. member 2's entry.
		lease.Resize(2)
		got2 := ComputeIntoWithPlan(mat.NewDense(x.Dim(n), c), method, x, u, n, opts, plan)
		if w := lease.Width(); w != 2 {
			t.Fatalf("lease width after mid-batch shrink = %d, want 2", w)
		}
		want2 := ComputeInto(mat.NewDense(x.Dim(n), c), method, x, u, n, Options{Threads: 2, Pool: ref})
		bitsEqual(t, got2, want2, "member 2 after shrink to 2")

		plan.Reset()
		ws.Release()
		lease.Close()
	}
}

// TestFusedPlanSteadyAlloc pins the fusion steady state: a retained plan
// refilled and consumed on a warmed shape-keyed workspace allocates
// nothing — the batch executor's per-batch cost is arena reuse only.
func TestFusedPlanSteadyAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pool := parallel.NewPool(4)
	defer pool.Close()
	x := tensor.Random(rng, 12, 10, 8)
	const c, n = 8, 1
	u := make([]mat.View, 3)
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	dst := mat.NewDense(x.Dim(n), c)
	plan := new(krp.Plan)
	ws := pool.Acquire()
	defer ws.Release()
	opts := Options{Threads: 4, Pool: pool}

	cycle := func() {
		FillPlan(plan, pool, ws, 4, x, u, n)
		for i := 0; i < 3; i++ {
			ComputeIntoWithPlan(dst, MethodTwoStep, x, u, n, opts, plan)
		}
		plan.Reset()
	}
	cycle() // warm plan arena, snapshot slab and kernel frames
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Errorf("fused batch cycle: %v allocs/op, want 0", allocs)
	}
}
