package core

import (
	"math/rand"

	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Reorder is the classical Bader–Kolda MTTKRP: explicitly reorder tensor
// entries into a column-major X_(n), form the full KRP explicitly, and
// perform one GEMM. The reorder is the memory-bound step the 1-step and
// 2-step algorithms avoid; this method is the paper's "straightforward
// approach" (Section 2.3) and the computational core of Matlab Tensor
// Toolbox's dense MTTKRP, used here as the Figure 7 comparator.
func Reorder(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	return ReorderInto(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// ReorderInto is Reorder writing into a caller-owned contiguous row-major
// result matrix. The baseline allocates its O(|X|) temporaries — the
// unfolded copy and the full KRP — per call rather than leasing them from
// the pool's workspace: that memory traffic is the point of the baseline,
// and caching tensor-sized scratch in a long-lived pool would pin peak
// memory forever.
func ReorderInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	c := rank(u)
	validateDst(dst, x.Dim(n), c)
	p := opts.pool()
	t := p.Effective(opts.Threads)
	tAux := t // workers for the reorder and the KRP
	if opts.BlasOnlyParallel {
		tAux = 1
	}
	bd := opts.Breakdown
	ws := p.Acquire()
	vf := viewList(ws)
	vf.ops = appendOperands(vf.ops, u, n)
	ops := vf.ops

	k := mat.NewDense(krp.NumRows(ops), c)

	totalW := startWatch()
	sw := startWatch()
	xn := x.Unfold(tAux, n) // explicit reorder (copy)
	bd.add(PhaseReorder, sw.elapsed())

	sw = startWatch()
	krp.ParallelOn(p, ws, tAux, ops, k)
	bd.add(PhaseFullKRP, sw.elapsed())

	sw = startWatch()
	blas.GemmOn(p, t, 1, xn, k, 0, dst)
	bd.add(PhaseGEMM, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	vf.ops = clearViews(vf.ops)
	ws.Release()
	return dst
}

// GemmBaseline is the paper's "Baseline" benchmark series: the time of a
// single GEMM between column-major matrices shaped like the matricized
// tensor (I_n × I_{≠n}) and the KRP (I_{≠n} × C). It is a lower bound on
// the straightforward approach — it excludes both the tensor reorder and
// the KRP formation — and is used as the reference line in Figures 5, 6,
// and 8. The operand contents are immaterial to the timing; they are
// filled with random values once at construction.
type GemmBaseline struct {
	a, b, c mat.View
}

// NewGemmBaseline allocates baseline operands for an I_n × I_{≠n} times
// I_{≠n} × C multiplication.
func NewGemmBaseline(in, other, c int) *GemmBaseline {
	rng := rand.New(rand.NewSource(1))
	g := &GemmBaseline{
		a: mat.NewColMajor(in, other),
		b: mat.NewColMajor(other, c),
		c: mat.NewDense(in, c),
	}
	g.a.Randomize(rng)
	g.b.Randomize(rng)
	return g
}

// NewGemmBaselineFor sizes the baseline for mode n of tensor x with rank c.
func NewGemmBaselineFor(x *tensor.Dense, n, c int) *GemmBaseline {
	return NewGemmBaseline(x.Dim(n), x.SizeOther(n), c)
}

// Run performs the baseline multiplication with t workers, recording GEMM
// time into bd when non-nil.
func (g *GemmBaseline) Run(t int, bd *Breakdown) {
	totalW := startWatch()
	sw := startWatch()
	blas.Gemm(t, 1, g.a, g.b, 0, g.c)
	bd.add(PhaseGEMM, sw.elapsed())
	bd.addTotal(totalW.elapsed())
}
