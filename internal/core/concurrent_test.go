package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestConcurrentIndependentPools drives simultaneous MTTKRPInto streams on
// two independent pools sharing the process — the per-request isolation
// contract. Run with -race (the CI race job covers this package): the two
// pools must not share any mutable state, and each stream's results must
// stay exact while the other runs.
func TestConcurrentIndependentPools(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x1 := tensor.Random(rng, 14, 11, 9)
	x2 := tensor.Random(rng, 7, 6, 8, 5)
	u1 := make([]mat.View, x1.Order())
	for k := range u1 {
		u1[k] = mat.RandomDense(x1.Dim(k), 6, rng)
	}
	u2 := make([]mat.View, x2.Order())
	for k := range u2 {
		u2[k] = mat.RandomDense(x2.Dim(k), 4, rng)
	}
	want1 := Compute(MethodAuto, x1, u1, 1, Options{Threads: 1})
	want2 := Compute(MethodAuto, x2, u2, 2, Options{Threads: 1})

	check := func(got, want mat.View) bool {
		for i := 0; i < want.R; i++ {
			for j := 0; j < want.C; j++ {
				d := got.At(i, j) - want.At(i, j)
				if d > 1e-10 || d < -1e-10 {
					return false
				}
			}
		}
		return true
	}

	const iters = 25
	var wg sync.WaitGroup
	run := func(x *tensor.Dense, u []mat.View, mode, c int, want mat.View) {
		defer wg.Done()
		pool := parallel.NewPool(3)
		defer pool.Close()
		dst := mat.NewDense(x.Dim(mode), c)
		opts := Options{Threads: 3, Pool: pool}
		for i := 0; i < iters; i++ {
			ComputeInto(dst, MethodAuto, x, u, mode, opts)
			if !check(dst, want) {
				t.Errorf("pool stream on mode %d: wrong result at iter %d", mode, i)
				return
			}
		}
	}
	wg.Add(2)
	go run(x1, u1, 1, 6, want1)
	go run(x2, u2, 2, 4, want2)
	wg.Wait()
}
