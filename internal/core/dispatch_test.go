package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/simd"
)

// TestMTTKRPDispatchBitIdentical is the end-to-end half of the simd
// package's bit-identity contract: the full MTTKRP — every method, every
// mode, sequential and parallel — must produce bit-for-bit identical
// results whether the inner loops run through the scalar reference or the
// host's vectorized kernels. This is what lets MTTKRP_NOSIMD=1 serve as a
// drop-in diagnostic switch and keeps CI's scalar leg meaningful.
func TestMTTKRPDispatchBitIdentical(t *testing.T) {
	vec := simd.Vector()
	if vec == nil {
		t.Skip("no vectorized implementation on this host")
	}
	prev := simd.Active()
	defer simd.Use(prev)

	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][]int{{4, 5, 6}, {3, 2, 4, 2, 3}, {13, 9, 4}, {1, 4, 3}} {
		for _, c := range []int{1, 5, 16} {
			x, u := randomProblem(rng, dims, c)
			for n := range dims {
				for _, m := range []Method{MethodOneStep, MethodTwoStep, MethodReorder, MethodNaive} {
					for _, threads := range []int{1, 3} {
						simd.Use(simd.Scalar())
						want := Compute(m, x, u, n, Options{Threads: threads})
						simd.Use(vec)
						got := Compute(m, x, u, n, Options{Threads: threads})
						if !bitIdentical(got, want) {
							t.Fatalf("dims=%v c=%d n=%d method=%v t=%d: scalar and vector MTTKRP differ (max |Δ|=%g)",
								dims, c, n, m, threads, mat.MaxAbsDiff(got, want))
						}
					}
				}
			}
		}
	}
}

func bitIdentical(a, b mat.View) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}
