// Package core implements the paper's MTTKRP algorithms for dense tensors
// in natural layout: the novel 1-step algorithm (Algorithms 2 and 3), the
// 2-step algorithm of Phan et al. (Algorithm 4), and the classical
// explicit-reorder baseline of Bader and Kolda. All variants compute
//
//	M = X_(n) · (U_{N-1} ⊙ ⋯ ⊙ U_{n+1} ⊙ U_{n-1} ⊙ ⋯ ⊙ U₀)
//
// where X is an N-way dense tensor, U_k are I_k × C factor matrices, and
// ⊙ is the Khatri-Rao product. The 1-step and 2-step algorithms never
// reorder tensor entries; they multiply strided views of the tensor buffer
// directly (see package tensor for the layout structure).
package core

import (
	"fmt"

	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Method selects an MTTKRP algorithm.
type Method int

const (
	// MethodAuto (the zero value, hence the default everywhere) is the
	// paper's CP-ALS choice (Section 5.3.3): 1-step for external modes,
	// 2-step for internal modes.
	MethodAuto Method = iota
	// MethodOneStep is the paper's 1-step algorithm: form KRP rows and
	// multiply tensor blocks in place (Algorithm 3; Algorithm 2 is the
	// sequential full-KRP variant, available as OneStepSequential).
	MethodOneStep
	// MethodTwoStep is the partial-MTTKRP + multi-TTV algorithm of Phan et
	// al. (Algorithm 4). For external modes it degenerates to 1-step.
	MethodTwoStep
	// MethodReorder is the Bader–Kolda baseline: explicitly reorder the
	// tensor into a column-major X_(n), form the full KRP, one GEMM.
	MethodReorder
	// MethodNaive is the direct-definition reference (for validation).
	MethodNaive
)

// String returns the method name used in benchmark output.
func (m Method) String() string {
	switch m {
	case MethodOneStep:
		return "1-step"
	case MethodTwoStep:
		return "2-step"
	case MethodReorder:
		return "reorder"
	case MethodAuto:
		return "auto"
	case MethodNaive:
		return "naive"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures an MTTKRP computation.
type Options struct {
	// Threads is the worker count; 0 selects GOMAXPROCS.
	Threads int
	// Breakdown, when non-nil, receives per-phase wall times (Figure 6).
	Breakdown *Breakdown
	// DynamicGrain, when positive, switches the internal-mode 1-step block
	// loop from static contiguous partitioning to dynamic chunks of this
	// many blocks (ablation knob).
	DynamicGrain int
	// BlasOnlyParallel restricts MethodReorder to parallelism inside the
	// GEMM call only, the way Matlab Tensor Toolbox on a multithreaded
	// BLAS behaves: the tensor permute and the KRP formation run on a
	// single thread. Used by the Figure 7 comparator.
	BlasOnlyParallel bool
	// KRPChunkRows, when positive, bounds the temporary memory of the
	// 1-step algorithm's external modes: each worker streams its KRP row
	// block in chunks of at most this many rows, GEMMing each chunk
	// immediately (the blocking idea of Vannieuwenhoven et al. [25],
	// cited in the paper's related work). Zero materializes the whole
	// per-worker block, as in Algorithm 3. The result is identical.
	KRPChunkRows int
	// Pool, when non-nil, selects the execution context that runs the
	// kernels: a *parallel.Pool (a persistent worker team with reusable
	// per-worker workspaces) or a *parallel.Lease (a scheduler-granted
	// slice of a shared team, the serving path); nil uses the process-wide
	// default pool. With a lease attached, Threads = 0 resolves to the
	// lease's granted budget, so admitted requests automatically honor
	// their admission policy. The isolation covers the MTTKRP kernels,
	// BLAS calls and reductions; auxiliary tensor utilities without a pool
	// parameter (for example the reorder baseline's Unfold and
	// tensor.Norm) still run on the default pool.
	Pool parallel.Executor
	// PhaseNotify, when non-nil, is invoked at kernel phase boundaries —
	// the entry of each MTTKRP computation, and between the per-mode
	// derivations of SweepAll — with no dispatch in flight on the
	// executor. The serving scheduler hooks parallel.Lease.Reconcile here
	// so a mid-request worker-budget change (shrink or grow) applies at
	// the next safe point rather than only between requests;
	// instrumentation can use it to observe kernel progress. It runs on
	// the computing goroutine and must not dispatch on opts.Pool.
	PhaseNotify func()

	// TileRows, when positive, streams dense 1-step/2-step computations
	// (and the hybrid) through mode-n row-block tiles of at most this many
	// rows: each tile of the mode-n matricization is gathered into a
	// bounded workspace buffer (or aliased in place when it is contiguous)
	// and run through the untiled kernel, so the resident working set is
	// the tile, not the tensor — the out-of-core path for mmap-backed
	// tensors. Output bits are identical to the untiled kernels (the GEMM
	// size class is pinned to the full extent; see blas.GemmArenaClass).
	// AutoTileRows derives a value from a byte budget. Zero disables
	// tiling; MethodReorder and MethodNaive ignore it.
	TileRows int

	// DropBehind, when set with TileRows on a mapped tensor, advises the
	// OS (MADV_DONTNEED) that each tile's source pages are disposable as
	// soon as the tile has been consumed, so a single-pass scan's resident
	// set stays near one tile instead of growing to the whole slab. Pages
	// are re-faulted from the page cache or disk if touched again, so the
	// hint is opt-in: callers that re-run kernels over the same mapping
	// (for example CP-ALS sweeps or the serving map cache) should leave it
	// off and let the OS keep warm pages. No effect on heap tensors or
	// untiled calls; results are bit-identical either way.
	DropBehind bool

	// plan, when non-nil, is a prebuilt shared Khatri-Rao intermediate the
	// kernels may consume instead of recomputing their partial KRPs (batch
	// fusion; set via ComputeIntoWithPlan, which documents the contract).
	plan *krp.Plan

	// tileClass, when positive, marks this call as a row tile of a logical
	// computation whose full mode-n extent is tileClass rows; kernels pin
	// their GEMM size-class decisions to it so tiles reproduce the untiled
	// bit patterns. Set by the tiled driver only.
	tileClass int
}

// classRows resolves the GEMM size-class row count: the full mode-n extent
// when executing a tile, the natural extent otherwise.
func (o Options) classRows(natural int) int {
	if o.tileClass > 0 {
		return o.tileClass
	}
	return natural
}

// notifyPhase invokes the phase-boundary hook, if any.
func (o Options) notifyPhase() {
	if o.PhaseNotify != nil {
		o.PhaseNotify()
	}
}

// pool resolves the execution context for this computation; nil (and the
// historical typed-nil *Pool) selects the process-wide default pool.
func (o Options) pool() parallel.Executor {
	return parallel.OrDefault(o.Pool)
}

// Compute runs the selected MTTKRP method for mode n and returns the
// I_n × C result matrix (row-major).
func Compute(method Method, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if method == MethodNaive {
		return Naive(x, u, n)
	}
	return ComputeInto(mat.NewDense(x.Dim(n), rank(u)), method, x, u, n, opts)
}

// ComputeInto runs the selected MTTKRP method for mode n, writing the
// I_n × C result into dst (contiguous row-major) and returning it. dst is
// the steady-state entry point: with a retained dst and a persistent pool,
// repeated same-shape calls reuse the pool's workspaces and allocate
// nothing.
func ComputeInto(dst mat.View, method Method, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	validateDst(dst, x.Dim(n), rank(u))
	// Phase notification happens in the leaf kernels (oneStepExternal,
	// oneStepInternal, twoStepLeftFirst, twoStepRightFirst, ReorderInto),
	// so direct entry through OneStepInto/TwoStepInto/ReorderInto reaches
	// the same safe point as entry through here — exactly once per
	// computation either way. mttkrp-lint's phasehook analyzer enforces
	// this for every exported *Into entry point.
	switch method {
	case MethodOneStep:
		if tiled(x, n, opts) {
			return OneStepTiledInto(dst, x, u, n, opts)
		}
		return OneStepInto(dst, x, u, n, opts)
	case MethodTwoStep:
		if tiled(x, n, opts) {
			return TwoStepTiledInto(dst, x, u, n, opts)
		}
		return TwoStepInto(dst, x, u, n, opts)
	case MethodReorder:
		return ReorderInto(dst, x, u, n, opts)
	case MethodAuto:
		if isExternal(x, n) {
			if tiled(x, n, opts) {
				return OneStepTiledInto(dst, x, u, n, opts)
			}
			return OneStepInto(dst, x, u, n, opts)
		}
		if tiled(x, n, opts) {
			return TwoStepTiledInto(dst, x, u, n, opts)
		}
		return TwoStepInto(dst, x, u, n, opts)
	case MethodNaive:
		opts.notifyPhase() // the reference path has no leaf kernel to notify
		dst.CopyFrom(Naive(x, u, n))
		return dst
	}
	panic(fmt.Sprintf("core: unknown method %d", int(method)))
}

// validateDst checks that dst is a contiguous row-major in × c matrix (the
// kernels use its backing slice directly as worker 0's accumulator).
func validateDst(dst mat.View, in, c int) {
	if dst.R != in || dst.C != c {
		panic(fmt.Sprintf("core: dst is %dx%d, want %dx%d", dst.R, dst.C, in, c))
	}
	if !dst.IsRowMajor() {
		panic("core: dst must be contiguous row-major")
	}
}

// Methods lists the production algorithms (excluding the naive reference),
// in the order benchmarks report them.
func Methods() []Method {
	return []Method{MethodOneStep, MethodTwoStep, MethodReorder, MethodAuto}
}

func isExternal(x *tensor.Dense, n int) bool {
	return n == 0 || n == x.Order()-1
}

// validate checks the factor matrices against the tensor.
func validate(x *tensor.Dense, u []mat.View, n int) {
	nModes := x.Order()
	if nModes < 2 {
		panic("core: MTTKRP requires an order ≥ 2 tensor")
	}
	if len(u) != nModes {
		panic(fmt.Sprintf("core: %d factor matrices for an order-%d tensor", len(u), nModes))
	}
	if n < 0 || n >= nModes {
		panic(fmt.Sprintf("core: mode %d out of range [0,%d)", n, nModes))
	}
	c := u[0].C
	for k, m := range u {
		if m.R != x.Dim(k) {
			panic(fmt.Sprintf("core: factor %d has %d rows, want %d", k, m.R, x.Dim(k)))
		}
		if m.C != c {
			panic(fmt.Sprintf("core: factor %d has %d columns, want %d", k, m.C, c))
		}
		if m.CS != 1 {
			panic(fmt.Sprintf("core: factor %d must have unit column stride", k))
		}
	}
}

// rank returns the shared column count C of the factors.
func rank(u []mat.View) int { return u[0].C }

// operands returns the KRP operand list for mode n in the paper's order
// [U_{N-1}, …, U_{n+1}, U_{n-1}, …, U₀], so that U₀'s row index varies
// fastest, matching the column linearization of X_(n).
func operands(u []mat.View, n int) []mat.View {
	return appendOperands(make([]mat.View, 0, len(u)-1), u, n)
}

// appendOperands is operands into a caller-owned slice (kernel frames reuse
// one backing array across calls).
func appendOperands(dst []mat.View, u []mat.View, n int) []mat.View {
	for k := len(u) - 1; k >= 0; k-- {
		if k != n {
			dst = append(dst, u[k])
		}
	}
	return dst
}

// leftOperands returns [U_{n-1}, …, U₀]: the left partial KRP K_L, whose
// rows are indexed by the linearization of modes 0..n-1.
func leftOperands(u []mat.View, n int) []mat.View {
	return appendLeftOperands(make([]mat.View, 0, n), u, n)
}

func appendLeftOperands(dst []mat.View, u []mat.View, n int) []mat.View {
	for k := n - 1; k >= 0; k-- {
		dst = append(dst, u[k])
	}
	return dst
}

// rightOperands returns [U_{N-1}, …, U_{n+1}]: the right partial KRP K_R,
// whose rows are indexed by the linearization of modes n+1..N-1.
func rightOperands(u []mat.View, n int) []mat.View {
	return appendRightOperands(make([]mat.View, 0, len(u)-n-1), u, n)
}

func appendRightOperands(dst []mat.View, u []mat.View, n int) []mat.View {
	for k := len(u) - 1; k > n; k-- {
		dst = append(dst, u[k])
	}
	return dst
}

// clearViews zeroes a frame-cached view slice so released workspaces do not
// retain caller data, returning it emptied with capacity intact.
func clearViews(s []mat.View) []mat.View {
	for i := range s {
		s[i] = mat.View{}
	}
	return s[:0]
}

// viewListFrame is a workspace-cached operand-list scratch slice for
// coordinator-level kernels that need one KRP operand list per call.
type viewListFrame struct{ ops []mat.View }

func newViewListFrame() any { return &viewListFrame{} }

func viewList(ws *parallel.Workspace) *viewListFrame {
	return ws.Frame("core.viewlist", newViewListFrame).(*viewListFrame)
}

// arenaMat leases an r × c contiguous row-major matrix from ar under tag.
// Contents are unspecified (whatever the previous same-tag use left).
func arenaMat(ar *parallel.Arena, tag string, r, c int) mat.View {
	return mat.FromRowMajor(ar.Float64(tag, r*c), r, c)
}

// arenaMatZero is arenaMat with the contents cleared.
func arenaMatZero(ar *parallel.Arena, tag string, r, c int) mat.View {
	m := arenaMat(ar, tag, r, c)
	clear(m.Data)
	return m
}

// arenaColMajor leases an r × c contiguous column-major matrix from ar.
func arenaColMajor(ar *parallel.Arena, tag string, r, c int) mat.View {
	return mat.FromColMajor(ar.Float64(tag, r*c), r, c)
}

// Naive computes the MTTKRP directly from the definition,
// M(i, c) = Σ over all entries X(i₀,…,i_{N-1}) ∏_{k≠n} U_k(i_k, c).
// It is the validation reference for every other method.
func Naive(x *tensor.Dense, u []mat.View, n int) mat.View {
	validate(x, u, n)
	c := rank(u)
	m := mat.NewDense(x.Dim(n), c)
	idx := make([]int, x.Order())
	data := x.Data()
	for l, v := range data {
		if v == 0 {
			continue
		}
		x.MultiIndex(l, idx)
		for cc := 0; cc < c; cc++ {
			p := v
			for k := range u {
				if k != n {
					p *= u[k].At(idx[k], cc)
				}
			}
			m.Add(idx[n], cc, p)
		}
	}
	return m
}
