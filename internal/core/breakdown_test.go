package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestBreakdownNilSafe(t *testing.T) {
	var b *Breakdown
	b.add(PhaseGEMM, time.Second) // must not panic
	b.addMax(PhaseGEMM, 0, time.Second)
	b.addTotal(time.Second)
	b.Reset()
	b.Scale(2)
	if b.Get(PhaseGEMM) != 0 || b.Total() != 0 {
		t.Error("nil breakdown should read zero")
	}
	if b.String() != "<nil>" {
		t.Errorf("nil String = %q", b.String())
	}
}

func TestBreakdownAccumulateAndScale(t *testing.T) {
	var b Breakdown
	b.add(PhaseGEMM, 2*time.Second)
	b.add(PhaseGEMM, 2*time.Second)
	b.add(PhaseFullKRP, time.Second)
	b.addTotal(6 * time.Second)
	if b.Get(PhaseGEMM) != 4*time.Second {
		t.Errorf("GEMM = %v", b.Get(PhaseGEMM))
	}
	b.Scale(2)
	if b.Get(PhaseGEMM) != 2*time.Second || b.Total() != 3*time.Second {
		t.Error("scale wrong")
	}
	b.Reset()
	if b.Get(PhaseGEMM) != 0 {
		t.Error("reset failed")
	}
}

func TestBreakdownAddMaxSemantics(t *testing.T) {
	var b Breakdown
	b.add(PhaseGEMM, 10*time.Millisecond) // prior accumulation
	base := b.Get(PhaseGEMM)
	// Three workers: max should win, on top of the base.
	var wg sync.WaitGroup
	for _, d := range []time.Duration{5, 30, 20} {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			b.addMax(PhaseGEMM, base, d*time.Millisecond)
		}(d)
	}
	wg.Wait()
	if got := b.Get(PhaseGEMM); got != 40*time.Millisecond {
		t.Errorf("addMax result = %v, want 40ms", got)
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.add(PhaseGEMV, time.Second)
	s := b.String()
	if !strings.Contains(s, "DGEMV") || !strings.Contains(s, "total") {
		t.Errorf("String = %q", s)
	}
	var empty Breakdown
	if !strings.Contains(empty.String(), "empty") {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseGEMM: "DGEMM", PhaseGEMV: "DGEMV", PhaseFullKRP: "Full KRP",
		PhaseLRKRP: "L&R KRP", PhaseReduce: "REDUCE", PhaseReorder: "REORDER",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("phase %d = %q, want %q", int(p), p.String(), s)
		}
	}
	if Phase(77).String() == "" {
		t.Error("unknown phase should stringify")
	}
	if len(Phases()) != int(numPhases) {
		t.Errorf("Phases() has %d entries, want %d", len(Phases()), numPhases)
	}
}

// TestBreakdownCoversTotal runs each method with instrumentation and checks
// that phases are populated appropriately and roughly bounded by the total.
func TestBreakdownCoversTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Random(rng, 12, 10, 14)
	u := randomFactors(rng, x, 6)
	cases := []struct {
		method Method
		n      int
		expect []Phase
	}{
		{MethodOneStep, 0, []Phase{PhaseFullKRP, PhaseGEMM}},
		{MethodOneStep, 2, []Phase{PhaseFullKRP, PhaseGEMM}},
		{MethodOneStep, 1, []Phase{PhaseLRKRP, PhaseGEMM}},
		{MethodTwoStep, 1, []Phase{PhaseLRKRP, PhaseGEMM, PhaseGEMV}},
		{MethodReorder, 1, []Phase{PhaseReorder, PhaseFullKRP, PhaseGEMM}},
	}
	for _, tc := range cases {
		var bd Breakdown
		Compute(tc.method, x, u, tc.n, Options{Threads: 2, Breakdown: &bd})
		if bd.Total() <= 0 {
			t.Errorf("%v n=%d: no total recorded", tc.method, tc.n)
		}
		for _, p := range tc.expect {
			if bd.Get(p) <= 0 {
				t.Errorf("%v n=%d: phase %v not recorded (%v)", tc.method, tc.n, p, &bd)
			}
		}
		// Sum of phases should not wildly exceed total (phases are
		// measured inside the total window; allow scheduling slack).
		var sum time.Duration
		for _, p := range Phases() {
			sum += bd.Get(p)
		}
		if sum > 3*bd.Total()+time.Millisecond {
			t.Errorf("%v n=%d: phase sum %v exceeds total %v", tc.method, tc.n, sum, bd.Total())
		}
	}
}

func randomFactors(rng *rand.Rand, x *tensor.Dense, c int) []mat.View {
	u := make([]mat.View, x.Order())
	for k := 0; k < x.Order(); k++ {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	return u
}
