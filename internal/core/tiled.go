package core

import (
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Tiled kernel variants: the mode-n computation is streamed through
// row-block tiles of the mode-n matricization. Each tile — the subtensor
// with mode-n indices [r0, r1) — is gathered into a bounded workspace
// buffer (or aliased in place when the tile is contiguous, i.e. n = N-1)
// and run through the untiled kernel against the row slice of the output.
// The resident working set is one tile plus the kernel's own scratch, so a
// tensor far larger than RAM streams through an mmap'd slab; madvise
// kicks readahead for each tile before it is touched.
//
// Output rows of distinct tiles are disjoint, and within a tile row the
// kernels run the same worker partition, chunk walk and accumulation order
// as the untiled call (the GEMM size class is pinned to the full mode-n
// extent — blas.GemmArenaClass), so tiled results are bit-identical to
// untiled ones for every tile size; TestTiledBitIdentical pins this.

// DefaultTileBytes is the tile byte budget used when callers do not pick
// one: sized to a typical last-level-cache slice so a streamed tile (plus
// the KRP chunk and output block) stays cache-resident.
const DefaultTileBytes = 8 << 20

// AutoTileRows returns a TileRows value for a tensor with the given dims
// and mode n whose tile slab occupies at most budgetBytes (0 selects
// DefaultTileBytes): max(2, budget / (8·I_{≠n})) — or 0 (untiled) when the
// whole tensor already fits the budget.
func AutoTileRows(dims []int, n int, budgetBytes int64) int {
	if budgetBytes <= 0 {
		budgetBytes = DefaultTileBytes
	}
	rowElems := int64(1)
	for k, d := range dims {
		if k != n {
			rowElems *= int64(d)
		}
	}
	if rowElems <= 0 {
		return 0
	}
	rows := budgetBytes / (8 * rowElems)
	if rows >= int64(dims[n]) {
		return 0
	}
	if rows < 2 {
		// 1-row tiles are never produced: a single-row matricization can
		// legally take a different (layout-selected) BLAS sweep, which
		// would break the bit-identity contract.
		rows = 2
	}
	return int(rows)
}

// tiled reports whether opts request row tiling that would actually split
// this computation.
func tiled(x *tensor.Dense, n int, opts Options) bool {
	return opts.TileRows > 0 && x.Dim(n) > opts.TileRows
}

// OneStepTiledInto is OneStepInto streamed through mode-n row-block tiles
// of opts.TileRows rows (see the package comment above); with TileRows
// unset or no split needed it is exactly OneStepInto.
func OneStepTiledInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	validateDst(dst, x.Dim(n), rank(u))
	if !tiled(x, n, opts) {
		return OneStepInto(dst, x, u, n, opts)
	}
	return tiledInto(dst, x, u, n, opts, OneStepInto)
}

// TwoStepTiledInto is TwoStepInto streamed through mode-n row-block tiles
// of opts.TileRows rows; with TileRows unset or no split needed it is
// exactly TwoStepInto.
func TwoStepTiledInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	validateDst(dst, x.Dim(n), rank(u))
	if !tiled(x, n, opts) {
		return TwoStepInto(dst, x, u, n, opts)
	}
	return tiledInto(dst, x, u, n, opts, TwoStepInto)
}

// tiledFrame is the workspace-cached state of the tile driver: the
// reusable tile tensor and operand list, plus the pre-bound gather body.
type tiledFrame struct {
	x          *tensor.Dense
	dims       []int
	u          []mat.View
	src, tile  []float64
	il, in     int
	r0, tw     int
	gatherBody func(w, lo, hi int)
}

func newTiledFrame() any {
	f := &tiledFrame{x: tensor.New(1)}
	// Gather: for each right index r, the tile's mode-n rows [r0, r0+tw)
	// are one contiguous run of tw·I^L_n entries in the source slab.
	f.gatherBody = func(_, lo, hi int) {
		run := f.tw * f.il
		for r := lo; r < hi; r++ {
			copy(f.tile[r*run:(r+1)*run], f.src[(r*f.in+f.r0)*f.il:])
		}
	}
	return f
}

var tileReleaseSlab = []float64{0}

func (f *tiledFrame) release() {
	f.u = clearViews(f.u)
	f.src, f.tile = nil, nil
	f.x.Reslice(tileReleaseSlab, []int{1}) // drop the caller's slab reference
}

func tiledInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options, inner func(mat.View, *tensor.Dense, []mat.View, int, Options) mat.View) mat.View {
	in := x.Dim(n)
	il := x.SizeLeft(n)
	ir := x.SizeRight(n)
	c := rank(u)
	tr := opts.TileRows
	if tr < 2 {
		tr = 2
	}

	innerOpts := opts
	innerOpts.TileRows = 0
	innerOpts.tileClass = in

	p := opts.pool()
	t := p.Effective(opts.Threads)
	ws := p.Acquire()
	f := ws.Frame("core.tiled", newTiledFrame).(*tiledFrame)
	f.src = x.Data()
	f.il, f.in = il, in
	f.dims = f.dims[:0]
	for k := 0; k < x.Order(); k++ {
		f.dims = append(f.dims, x.Dim(k))
	}
	f.u = append(f.u[:0], u...)
	var buf []float64
	if ir > 1 {
		// +1 row: a trailing 1-row remainder is folded into the previous
		// tile rather than run on its own (see AutoTileRows). The lease is
		// frame-registered: release() clears f.tile before ws.Release().
		buf = arenaMat(ws.Arena(0), "core.tile.x", (tr+1)*il, ir).Data
	}

	for r0 := 0; r0 < in; {
		r1 := r0 + tr
		if r1 > in || in-r1 == 1 {
			r1 = in
		}
		tw := r1 - r0
		adviseTile(x, il, in, ir, r0, r1)
		var tile []float64
		if ir == 1 {
			// Mode N-1: the tile is one contiguous run of the slab — alias
			// it, streaming straight out of the mapping with no copy.
			tile = f.src[r0*il : r1*il]
		} else {
			tile = buf[:tw*il*ir]
			f.tile, f.r0, f.tw = tile, r0, tw
			p.For(t, ir, f.gatherBody)
		}
		f.dims[n] = tw
		f.x.Reslice(tile, f.dims)
		f.u[n] = u[n].Slice(r0, r1, 0, c)
		inner(dst.Slice(r0, r1, 0, c), f.x, f.u, n, innerOpts)
		if opts.DropBehind {
			dropTile(x, il, in, ir, r0, r1)
		}
		r0 = r1
	}
	f.release()
	ws.Release()
	return dst
}

// adviseTile hints the OS to start readahead for the pages backing tile
// [r0, r1) of a mapped tensor. The tile spans I^R_n runs; per-run advice
// is only worth its syscall cost when runs are few and large.
func adviseTile(x *tensor.Dense, il, in, ir, r0, r1 int) {
	if !x.Mapped() {
		return
	}
	if ir == 1 {
		x.AdviseWillNeed(r0*il, r1*il)
		return
	}
	if ir > 64 {
		return // rely on the mapping-wide MADV_SEQUENTIAL hint
	}
	for r := 0; r < ir; r++ {
		lo := (r*in + r0) * il
		x.AdviseWillNeed(lo, lo+(r1-r0)*il)
	}
}

// dropTile releases the pages backing the consumed tile [r0, r1) of a
// mapped tensor (Options.DropBehind). Same run structure and syscall-cost
// cutoff as adviseTile; the advice layer trims each run inward to whole
// pages so a boundary page shared with the next tile survives.
func dropTile(x *tensor.Dense, il, in, ir, r0, r1 int) {
	if !x.Mapped() {
		return
	}
	if ir == 1 {
		x.DropBehind(r0*il, r1*il)
		return
	}
	if ir > 64 {
		return // runs too small and many for per-run syscalls
	}
	for r := 0; r < ir; r++ {
		lo := (r*in + r0) * il
		x.DropBehind(lo, lo+(r1-r0)*il)
	}
}
