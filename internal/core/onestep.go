package core

import (
	"time"

	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// OneStepSequential is Algorithm 2: form the full KRP with Algorithm 1,
// then multiply without reordering — a single GEMM for mode 0, or a block
// inner product over the I^R_n row-major blocks for other modes. It is the
// literal sequential algorithm; OneStep with Threads == 1 is the slightly
// leaner variant the paper actually benchmarks (it forms K blockwise for
// internal modes instead of all at once).
func OneStepSequential(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	c := rank(u)
	in := x.Dim(n)
	bd := opts.Breakdown
	totalW := startWatch()

	ops := operands(u, n)
	k := mat.NewDense(krp.NumRows(ops), c)
	m := mat.NewDense(in, c)

	w := startWatch()
	krp.Full(ops, k)
	bd.add(PhaseFullKRP, w.elapsed())

	w = startWatch()
	if n == 0 {
		// X_(0) is column-major: a single BLAS call.
		blas.Gemm(1, 1, x.Matricize(0), k, 0, m)
	} else {
		il := x.SizeLeft(n)
		for j := 0; j < x.NumModeBlocks(n); j++ {
			kj := k.Slice(j*il, (j+1)*il, 0, c)
			blas.Gemm(1, 1, x.ModeBlock(n, j), kj, 1, m)
		}
	}
	bd.add(PhaseGEMM, w.elapsed())
	bd.addTotal(totalW.elapsed())
	return m
}

// OneStep is Algorithm 3, the parallel 1-step MTTKRP. External modes
// (n = 0 or n = N-1) partition the columns of X_(n) across workers, each
// forming its own row block of the KRP and accumulating into a private
// output; internal modes precompute the left KRP and partition the
// I^R_n tensor blocks, forming each block's KRP rows on the fly. Both end
// with a parallel reduction of the private outputs.
func OneStep(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		return oneStepExternal(x, u, n, opts)
	}
	return oneStepInternal(x, u, n, opts)
}

func oneStepExternal(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	c := rank(u)
	in := x.Dim(n)
	other := x.SizeOther(n)
	bd := opts.Breakdown
	t := parallel.Clamp(opts.Threads, other)

	ops := operands(u, n)
	xn := x.Matricize(n)
	ranges := parallel.Split(other, t)

	// Pre-allocate all private buffers outside the timed phases, as a C
	// implementation would hoist them out of the benchmark loop. With
	// KRPChunkRows set, each worker's KRP buffer shrinks to the chunk
	// size (Vannieuwenhoven-style memory bounding).
	maxB := ranges[0].Len()
	chunk := opts.KRPChunkRows
	if chunk <= 0 || chunk > maxB {
		chunk = maxB
	}
	kBufs := make([]mat.View, t)
	mBufs := make([]mat.View, t)
	parts := make([][]float64, t)
	for w := 0; w < t; w++ {
		kBufs[w] = mat.NewDense(chunk, c)
		mBufs[w] = mat.NewDense(in, c)
		parts[w] = mBufs[w].Data
	}

	totalW := startWatch()
	baseKRP := bd.Get(PhaseFullKRP)
	baseGEMM := bd.Get(PhaseGEMM)
	parallel.Run(t, func(w int) {
		r := ranges[w]
		if r.Len() == 0 {
			return
		}
		var dKRP, dGEMM time.Duration
		beta := 0.0 // first chunk overwrites the private accumulator
		for lo := r.Lo; lo < r.Hi; lo += chunk {
			hi := lo + chunk
			if hi > r.Hi {
				hi = r.Hi
			}
			kt := kBufs[w].Slice(0, hi-lo, 0, c)
			sw := startWatch()
			krp.Rows(ops, lo, hi, kt)
			dKRP += sw.elapsed()

			sw = startWatch()
			blas.Gemm(1, 1, xn.Slice(0, in, lo, hi), kt, beta, mBufs[w])
			dGEMM += sw.elapsed()
			beta = 1
		}
		bd.addMax(PhaseFullKRP, baseKRP, dKRP)
		bd.addMax(PhaseGEMM, baseGEMM, dGEMM)
	})

	sw := startWatch()
	parallel.ReduceSum(t, parts)
	bd.add(PhaseReduce, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	return mBufs[0]
}

func oneStepInternal(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	nblk := x.NumModeBlocks(n)
	bd := opts.Breakdown
	t := parallel.Clamp(opts.Threads, nblk)

	leftOps := leftOperands(u, n)
	rightOps := rightOperands(u, n)

	kl := mat.NewDense(il, c)
	kBufs := make([]mat.View, t)
	mBufs := make([]mat.View, t)
	rowBufs := make([][]float64, t)
	parts := make([][]float64, t)
	for w := 0; w < t; w++ {
		kBufs[w] = mat.NewDense(il, c)
		mBufs[w] = mat.NewDense(in, c)
		rowBufs[w] = make([]float64, c)
		parts[w] = mBufs[w].Data
	}

	totalW := startWatch()
	// Left KRP, computed once in parallel (Algorithm 3, line 11).
	sw := startWatch()
	krp.Parallel(t, leftOps, kl)
	bd.add(PhaseLRKRP, sw.elapsed())

	baseKRP := bd.Get(PhaseLRKRP)
	baseGEMM := bd.Get(PhaseGEMM)
	worker := func(w, lo, hi int) {
		var dKRP, dGEMM time.Duration
		for j := lo; j < hi; j++ {
			sw := startWatch()
			// K_R(j, :) then the block's KRP rows K_t = K_R(j,:) ⊙ K_L.
			krp.RowAt(rightOps, j, rowBufs[w])
			krp.HadamardExpand(rowBufs[w], kl, kBufs[w])
			dKRP += sw.elapsed()

			sw = startWatch()
			blas.Gemm(1, 1, x.ModeBlock(n, j), kBufs[w], 1, mBufs[w])
			dGEMM += sw.elapsed()
		}
		bd.addMax(PhaseLRKRP, baseKRP, dKRP)
		bd.addMax(PhaseGEMM, baseGEMM, dGEMM)
	}
	if opts.DynamicGrain > 0 {
		parallel.ForDynamic(t, nblk, opts.DynamicGrain, worker)
	} else {
		parallel.For(t, nblk, worker)
	}

	sw = startWatch()
	parallel.ReduceSum(t, parts)
	bd.add(PhaseReduce, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	return mBufs[0]
}
