package core

import (
	"time"

	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// OneStepSequential is Algorithm 2: form the full KRP with Algorithm 1,
// then multiply without reordering — a single GEMM for mode 0, or a block
// inner product over the I^R_n row-major blocks for other modes. It is the
// literal sequential algorithm; OneStep with Threads == 1 is the slightly
// leaner variant the paper actually benchmarks (it forms K blockwise for
// internal modes instead of all at once).
func OneStepSequential(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	c := rank(u)
	in := x.Dim(n)
	bd := opts.Breakdown
	totalW := startWatch()

	ops := operands(u, n)
	k := mat.NewDense(krp.NumRows(ops), c)
	m := mat.NewDense(in, c)

	w := startWatch()
	krp.Full(ops, k)
	bd.add(PhaseFullKRP, w.elapsed())

	w = startWatch()
	if n == 0 {
		// X_(0) is column-major: a single BLAS call.
		blas.GemmOn(opts.pool(), 1, 1, x.Matricize(0), k, 0, m)
	} else {
		il := x.SizeLeft(n)
		for j := 0; j < x.NumModeBlocks(n); j++ {
			kj := k.Slice(j*il, (j+1)*il, 0, c)
			blas.GemmOn(opts.pool(), 1, 1, x.ModeBlock(n, j), kj, 1, m)
		}
	}
	bd.add(PhaseGEMM, w.elapsed())
	bd.addTotal(totalW.elapsed())
	return m
}

// OneStep is Algorithm 3, the parallel 1-step MTTKRP. External modes
// (n = 0 or n = N-1) partition the columns of X_(n) across workers, each
// forming its own row block of the KRP and accumulating into a private
// output; internal modes precompute the left KRP and partition the
// I^R_n tensor blocks, forming each block's KRP rows on the fly. Both end
// with a parallel reduction of the private outputs.
func OneStep(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	return OneStepInto(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// OneStepInto is OneStep writing into a caller-owned contiguous row-major
// result matrix; with a retained dst it runs with zero steady-state
// allocation on the pool's reusable workspaces.
func OneStepInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	validateDst(dst, x.Dim(n), rank(u))
	if isExternal(x, n) {
		return oneStepExternal(dst, x, u, n, opts)
	}
	return oneStepInternal(dst, x, u, n, opts)
}

// oneStepExtFrame is the workspace-cached state of the external-mode
// kernel: per-call parameters, per-worker buffers, and the pre-bound worker
// closure, reused across calls so dispatching allocates nothing.
type oneStepExtFrame struct {
	ops      []mat.View
	xn       mat.View
	planK    mat.View // prebuilt full KRP (batch fusion); zero = form rows locally
	in, c    int
	classIn  int // GEMM size-class rows: the full mode-n extent when tiled
	t, other int
	chunk    int
	kBufs    []mat.View
	mBufs    []mat.View
	parts    [][]float64
	its      []krp.Iter
	ws       *parallel.Workspace
	bd       *Breakdown
	baseKRP  time.Duration
	baseGEMM time.Duration
	worker   func(w int)
}

func newOneStepExtFrame() any {
	f := &oneStepExtFrame{}
	f.worker = f.runWorker
	return f
}

//mttkrp:noalloc
func (f *oneStepExtFrame) runWorker(w int) {
	lo0, hi0 := parallel.BlockRange(f.other, f.t, w)
	if lo0 >= hi0 {
		return
	}
	ar := f.ws.Arena(w)
	var dKRP, dGEMM time.Duration
	beta := 0.0 // first chunk overwrites the private accumulator
	for lo := lo0; lo < hi0; lo += f.chunk {
		hi := lo + f.chunk
		if hi > hi0 {
			hi = hi0
		}
		var kt mat.View
		if f.planK.Data != nil {
			// Batch fusion: the full KRP is prebuilt; GEMM straight
			// against its row block. The chunk walk is kept identical to
			// the unfused path so the accumulation order (and hence the
			// bit pattern) matches it exactly.
			kt = f.planK.Slice(lo, hi, 0, f.c)
		} else {
			kt = f.kBufs[w].Slice(0, hi-lo, 0, f.c)
			sw := startWatch()
			krp.RowsIter(&f.its[w], f.ops, lo, hi, kt)
			dKRP += sw.elapsed()
		}

		sw := startWatch()
		blas.GemmArenaClass(ar, f.classIn, 1, f.xn.Slice(0, f.in, lo, hi), kt, beta, f.mBufs[w])
		dGEMM += sw.elapsed()
		beta = 1
	}
	f.bd.addMax(PhaseFullKRP, f.baseKRP, dKRP)
	f.bd.addMax(PhaseGEMM, f.baseGEMM, dGEMM)
}

// release clears caller references so the pooled workspace does not retain
// factor or result memory between calls.
func (f *oneStepExtFrame) release() {
	f.ops = clearViews(f.ops)
	f.kBufs = clearViews(f.kBufs)
	f.mBufs = clearViews(f.mBufs)
	for i := range f.parts {
		f.parts[i] = nil
	}
	f.parts = f.parts[:0]
	f.xn = mat.View{}
	f.planK = mat.View{}
	f.ws = nil
	f.bd = nil
}

func oneStepExternal(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	c := rank(u)
	in := x.Dim(n)
	other := x.SizeOther(n)
	bd := opts.Breakdown
	p := opts.pool()
	t := parallel.Clamp(p.Effective(opts.Threads), other)
	ws := p.Acquire()
	f := ws.Frame("core.onestep.ext", newOneStepExtFrame).(*oneStepExtFrame)

	f.ops = appendOperands(f.ops, u, n)
	f.xn = x.Matricize(n)
	f.in, f.c, f.t, f.other = in, c, t, other
	f.classIn = opts.classRows(in)
	if pl := opts.plan; pl != nil {
		// External modes have a one-sided operand set, so the plan's
		// partial KRP for that side is the full K.
		f.planK, _ = pl.Lookup(f.ops)
	}

	// Per-worker private buffers come from the workspace arenas, hoisted
	// out of the timed phases exactly as a C implementation would hoist
	// them out of the benchmark loop. With KRPChunkRows set, each worker's
	// KRP buffer shrinks to the chunk size (Vannieuwenhoven-style memory
	// bounding). Worker 0 accumulates directly into dst. A plan hit needs
	// neither KRP buffers nor iterators: workers read the plan's rows.
	_, hi0 := parallel.BlockRange(other, t, 0)
	chunk := opts.KRPChunkRows
	if chunk <= 0 || chunk > hi0 {
		chunk = hi0
	}
	f.chunk = chunk
	if f.planK.Data == nil {
		for len(f.its) < t {
			f.its = append(f.its, krp.Iter{})
		}
	}
	for w := 0; w < t; w++ {
		ar := ws.Arena(w)
		if f.planK.Data == nil {
			f.kBufs = append(f.kBufs, arenaMat(ar, "core.1s.k", chunk, c))
		}
		mb := dst
		if w > 0 {
			mb = arenaMat(ar, "core.1s.m", in, c)
		}
		f.mBufs = append(f.mBufs, mb)
		f.parts = append(f.parts, mb.Data[:in*c])
	}
	f.ws = ws
	f.bd = bd

	totalW := startWatch()
	f.baseKRP = bd.Get(PhaseFullKRP)
	f.baseGEMM = bd.Get(PhaseGEMM)
	p.Run(t, f.worker)

	sw := startWatch()
	p.ReduceSum(t, f.parts)
	bd.add(PhaseReduce, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	f.release()
	ws.Release()
	return dst
}

// oneStepIntFrame is the workspace-cached state of the internal-mode
// kernel.
type oneStepIntFrame struct {
	x        *tensor.Dense
	n        int
	classIn  int // GEMM size-class rows: the full mode-n extent when tiled
	rightOps []mat.View
	leftOps  []mat.View
	kl       mat.View
	planKR   mat.View // prebuilt right KRP (batch fusion); zero = form rows locally
	kBufs    []mat.View
	mBufs    []mat.View
	rowBufs  [][]float64
	idxBufs  [][]int
	parts    [][]float64
	ws       *parallel.Workspace
	bd       *Breakdown
	baseKRP  time.Duration
	baseGEMM time.Duration
	worker   func(w, lo, hi int)
}

func newOneStepIntFrame() any {
	f := &oneStepIntFrame{}
	f.worker = f.runWorker
	return f
}

//mttkrp:noalloc
func (f *oneStepIntFrame) runWorker(w, lo, hi int) {
	ar := f.ws.Arena(w)
	var dKRP, dGEMM time.Duration
	for j := lo; j < hi; j++ {
		sw := startWatch()
		// K_R(j, :) then the block's KRP rows K_t = K_R(j,:) ⊙ K_L.
		var row []float64
		if f.planKR.Data != nil {
			row = f.planKR.ContiguousRow(j)
		} else {
			row = f.rowBufs[w]
			krp.RowAtInto(f.rightOps, j, row, f.idxBufs[w])
		}
		krp.HadamardExpand(row, f.kl, f.kBufs[w])
		dKRP += sw.elapsed()

		sw = startWatch()
		blas.GemmArenaClass(ar, f.classIn, 1, f.x.ModeBlock(f.n, j), f.kBufs[w], 1, f.mBufs[w])
		dGEMM += sw.elapsed()
	}
	f.bd.addMax(PhaseLRKRP, f.baseKRP, dKRP)
	f.bd.addMax(PhaseGEMM, f.baseGEMM, dGEMM)
}

func (f *oneStepIntFrame) release() {
	f.rightOps = clearViews(f.rightOps)
	f.leftOps = clearViews(f.leftOps)
	f.kBufs = clearViews(f.kBufs)
	f.mBufs = clearViews(f.mBufs)
	for i := range f.parts {
		f.parts[i] = nil
	}
	f.parts = f.parts[:0]
	f.rowBufs = f.rowBufs[:0]
	f.idxBufs = f.idxBufs[:0]
	f.kl = mat.View{}
	f.planKR = mat.View{}
	f.x = nil
	f.ws = nil
	f.bd = nil
}

func oneStepInternal(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	nblk := x.NumModeBlocks(n)
	bd := opts.Breakdown
	p := opts.pool()
	t := parallel.Clamp(p.Effective(opts.Threads), nblk)
	ws := p.Acquire()
	f := ws.Frame("core.onestep.int", newOneStepIntFrame).(*oneStepIntFrame)

	f.x, f.n = x, n
	f.classIn = opts.classRows(in)
	f.leftOps = appendLeftOperands(f.leftOps, u, n)
	f.rightOps = appendRightOperands(f.rightOps, u, n)
	var planKL mat.View
	if pl := opts.plan; pl != nil {
		planKL, _ = pl.Lookup(f.leftOps)
		f.planKR, _ = pl.Lookup(f.rightOps)
	}
	if planKL.Data != nil {
		f.kl = planKL
	} else {
		f.kl = arenaMat(ws.Arena(0), "core.1s.kl", il, c)
	}
	clear(dst.Data[:in*c]) // worker 0 accumulates into dst with beta = 1
	for w := 0; w < t; w++ {
		ar := ws.Arena(w)
		f.kBufs = append(f.kBufs, arenaMat(ar, "core.1s.k", il, c))
		mb := dst
		if w > 0 {
			mb = arenaMatZero(ar, "core.1s.m", in, c)
		}
		f.mBufs = append(f.mBufs, mb)
		f.parts = append(f.parts, mb.Data[:in*c])
		if f.planKR.Data == nil {
			f.rowBufs = append(f.rowBufs, ar.Float64("core.1s.row", c))
			f.idxBufs = append(f.idxBufs, ar.Ints("core.1s.idx", len(f.rightOps)))
		}
	}
	f.ws = ws
	f.bd = bd

	totalW := startWatch()
	// Left KRP, computed once in parallel (Algorithm 3, line 11) — or
	// taken whole from the batch plan on a hit.
	sw := startWatch()
	if planKL.Data == nil {
		krp.ParallelOn(p, ws, t, f.leftOps, f.kl)
	}
	bd.add(PhaseLRKRP, sw.elapsed())

	f.baseKRP = bd.Get(PhaseLRKRP)
	f.baseGEMM = bd.Get(PhaseGEMM)
	if opts.DynamicGrain > 0 {
		p.ForDynamic(t, nblk, opts.DynamicGrain, f.worker)
	} else {
		p.For(t, nblk, f.worker)
	}

	sw = startWatch()
	p.ReduceSum(t, f.parts)
	bd.add(PhaseReduce, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	f.release()
	ws.Release()
	return dst
}
