package core

import (
	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TwoStep is Algorithm 4, the 2-step MTTKRP of Phan et al.: a partial
// MTTKRP (one large GEMM between a column-major generalized matricization
// and a partial KRP) followed by a multi-TTV (C independent GEMVs on
// strided subtensor views). The step order — contract left modes first or
// right modes first — is chosen to minimize the flops of the second step,
// exactly as in the paper: left-first when I^L_n > I^R_n.
//
// For external modes the 2-step algorithm degenerates to the 1-step
// algorithm (the partial MTTKRP already is the full MTTKRP), so this
// function delegates to OneStep, mirroring the paper's benchmarks, which
// only report 2-step results for internal modes.
//
// Parallelism lives in the BLAS calls (the GEMM splits rows across
// workers) and across the C columns of the multi-TTV.
func TwoStep(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	return TwoStepInto(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// TwoStepInto is TwoStep writing into a caller-owned contiguous row-major
// result matrix; all intermediates live in the pool's reusable workspaces.
func TwoStepInto(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	validateDst(dst, x.Dim(n), rank(u))
	if isExternal(x, n) {
		return OneStepInto(dst, x, u, n, opts)
	}
	if x.SizeLeft(n) > x.SizeRight(n) {
		return twoStepLeftFirst(dst, x, u, n, opts)
	}
	return twoStepRightFirst(dst, x, u, n, opts)
}

// TwoStepLeftFirst forces the left-first ordering regardless of the
// selection rule (internal modes only; exported for the ordering ablation
// benchmark).
func TwoStepLeftFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		panic("core: TwoStepLeftFirst requires an internal mode")
	}
	return twoStepLeftFirst(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// TwoStepRightFirst forces the right-first ordering regardless of the
// selection rule (internal modes only; exported for the ordering ablation
// benchmark).
func TwoStepRightFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		panic("core: TwoStepRightFirst requires an internal mode")
	}
	return twoStepRightFirst(mat.NewDense(x.Dim(n), rank(u)), x, u, n, opts)
}

// twoStepFrame is the workspace-cached state of the multi-TTV step: the
// intermediate, the contracted KRP factor and the pre-bound column-loop
// bodies for both orderings.
type twoStepFrame struct {
	inter        mat.View // column-major intermediate (R or L)
	kv           mat.View // KRP factor contracted in step 2 (K_L or K_R)
	m            mat.View // result
	in, sub      int      // mode-n dimension; per-column subtensor size
	klOps, krOps []mat.View
	ttvRight     func(w, lo, hi int)
	ttvLeft      func(w, lo, hi int)
}

func newTwoStepFrame() any {
	f := &twoStepFrame{}
	// Right-first step 2: R_(n)[j] is the row-major I_n × I^L_n
	// matricization of subtensor j; columns are independent.
	f.ttvRight = func(_, lo, hi int) {
		il := f.sub / f.in
		for j := lo; j < hi; j++ {
			sub := f.inter.Data[j*f.sub : (j+1)*f.sub]
			rj := mat.FromRowMajor(sub, f.in, il)
			blas.Gemv(1, 1, rj, f.kv.Col(j), 0, f.m.Col(j))
		}
	}
	// Left-first step 2: L_(0)[j] is the column-major I_n × I^R_n
	// mode-0 matricization of subtensor j.
	f.ttvLeft = func(_, lo, hi int) {
		ir := f.sub / f.in
		for j := lo; j < hi; j++ {
			sub := f.inter.Data[j*f.sub : (j+1)*f.sub]
			lj := mat.FromColMajor(sub, f.in, ir)
			blas.Gemv(1, 1, lj, f.kv.Col(j), 0, f.m.Col(j))
		}
	}
	return f
}

// planOrCompute resolves the 2-step algorithm's two partial KRPs: each
// side comes from the batch plan when its operand list matches (batch
// fusion skips the whole PhaseLRKRP) and is computed into arena scratch
// otherwise. Mixed hits are fine — a plan can make a side cheaper, never
// wrong.
func planOrCompute(opts Options, p parallel.Executor, ws *parallel.Workspace, t int, ar *parallel.Arena, klOps, krOps []mat.View, il, ir, c int) (kl, kr mat.View) {
	if pl := opts.plan; pl != nil {
		kl, _ = pl.Lookup(klOps)
		kr, _ = pl.Lookup(krOps)
	}
	if kl.Data == nil {
		kl = arenaMat(ar, "core.2s.kl", il, c)
		krp.ParallelOn(p, ws, t, klOps, kl)
	}
	if kr.Data == nil {
		kr = arenaMat(ar, "core.2s.kr", ir, c)
		krp.ParallelOn(p, ws, t, krOps, kr)
	}
	return kl, kr
}

func (f *twoStepFrame) release() {
	f.inter = mat.View{}
	f.kv = mat.View{}
	f.m = mat.View{}
	f.klOps = clearViews(f.klOps)
	f.krOps = clearViews(f.krOps)
}

// twoStepRightFirst computes R_(0:n) = X_(0:n)·K_R, then
// M(:, j) = R_(n)[j]·K_L(:, j) for each column j (Figures 3a and 3b).
func twoStepRightFirst(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	ir := x.SizeRight(n)
	bd := opts.Breakdown
	p := opts.pool()
	t := p.Effective(opts.Threads)
	ws := p.Acquire()
	ar := ws.Arena(0)
	f := ws.Frame("core.twostep", newTwoStepFrame).(*twoStepFrame)

	// R is the (I₀⋯I_n) × C intermediate, column-major so that column j is
	// the j-th subtensor of the order-(n+2) tensor R in natural layout.
	r := arenaColMajor(ar, "core.2s.inter", il*in, c)

	totalW := startWatch()
	sw := startWatch()
	f.klOps = appendLeftOperands(f.klOps, u, n)
	f.krOps = appendRightOperands(f.krOps, u, n)
	kl, kr := planOrCompute(opts, p, ws, t, ar, f.klOps, f.krOps, il, ir, c)
	bd.add(PhaseLRKRP, sw.elapsed())

	// Step 1: partial MTTKRP — a single (logical) BLAS call on the
	// column-major generalized matricization. The size class is pinned to
	// the full mode-n extent so a row tile takes the same GEMM path.
	sw = startWatch()
	blas.GemmOnClass(p, t, il*opts.classRows(in), 1, x.MatricizeRowModes(n), kr, 0, r)
	bd.add(PhaseGEMM, sw.elapsed())

	// Step 2: multi-TTV over the C independent columns.
	sw = startWatch()
	f.inter, f.kv, f.m = r, kl, dst
	f.in, f.sub = in, il*in
	p.For(t, c, f.ttvRight)
	bd.add(PhaseGEMV, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	f.release()
	ws.Release()
	return dst
}

// twoStepLeftFirst computes L_(0:N-n-1) = X_(0:n-1)ᵀ·K_L, then
// M(:, j) = L_(0)[j]·K_R(:, j) for each column j (Figures 3c and 3d).
func twoStepLeftFirst(dst mat.View, x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	opts.notifyPhase() // kernel entry is a phase boundary: budget changes land here
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	ir := x.SizeRight(n)
	bd := opts.Breakdown
	p := opts.pool()
	t := p.Effective(opts.Threads)
	ws := p.Acquire()
	ar := ws.Arena(0)
	f := ws.Frame("core.twostep", newTwoStepFrame).(*twoStepFrame)

	// L is (I_n⋯I_{N-1}) × C, column-major: column j is subtensor j of the
	// order-(N-n+1) tensor L in natural layout.
	l := arenaColMajor(ar, "core.2s.inter", in*ir, c)

	totalW := startWatch()
	sw := startWatch()
	f.klOps = appendLeftOperands(f.klOps, u, n)
	f.krOps = appendRightOperands(f.krOps, u, n)
	kl, kr := planOrCompute(opts, p, ws, t, ar, f.klOps, f.krOps, il, ir, c)
	bd.add(PhaseLRKRP, sw.elapsed())

	// Step 1: X_(0:n-1) is column-major I^L_n × (I_n⋯I_{N-1}); its
	// transpose view is row-major, so the GEMM reads contiguous rows. The
	// size class is pinned to the full mode-n extent for row tiles.
	sw = startWatch()
	blas.GemmOnClass(p, t, opts.classRows(in)*ir, 1, x.MatricizeRowModes(n-1).T(), kl, 0, l)
	bd.add(PhaseGEMM, sw.elapsed())

	// Step 2: multi-TTV over the C independent columns.
	sw = startWatch()
	f.inter, f.kv, f.m = l, kr, dst
	f.in, f.sub = in, in*ir
	p.For(t, c, f.ttvLeft)
	bd.add(PhaseGEMV, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	f.release()
	ws.Release()
	return dst
}
