package core

import (
	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TwoStep is Algorithm 4, the 2-step MTTKRP of Phan et al.: a partial
// MTTKRP (one large GEMM between a column-major generalized matricization
// and a partial KRP) followed by a multi-TTV (C independent GEMVs on
// strided subtensor views). The step order — contract left modes first or
// right modes first — is chosen to minimize the flops of the second step,
// exactly as in the paper: left-first when I^L_n > I^R_n.
//
// For external modes the 2-step algorithm degenerates to the 1-step
// algorithm (the partial MTTKRP already is the full MTTKRP), so this
// function delegates to OneStep, mirroring the paper's benchmarks, which
// only report 2-step results for internal modes.
//
// Parallelism lives in the BLAS calls (the GEMM splits rows across
// workers) and across the C columns of the multi-TTV.
func TwoStep(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		return OneStep(x, u, n, opts)
	}
	if x.SizeLeft(n) > x.SizeRight(n) {
		return twoStepLeftFirst(x, u, n, opts)
	}
	return twoStepRightFirst(x, u, n, opts)
}

// TwoStepLeftFirst forces the left-first ordering regardless of the
// selection rule (internal modes only; exported for the ordering ablation
// benchmark).
func TwoStepLeftFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		panic("core: TwoStepLeftFirst requires an internal mode")
	}
	return twoStepLeftFirst(x, u, n, opts)
}

// TwoStepRightFirst forces the right-first ordering regardless of the
// selection rule (internal modes only; exported for the ordering ablation
// benchmark).
func TwoStepRightFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	validate(x, u, n)
	if isExternal(x, n) {
		panic("core: TwoStepRightFirst requires an internal mode")
	}
	return twoStepRightFirst(x, u, n, opts)
}

// twoStepRightFirst computes R_(0:n) = X_(0:n)·K_R, then
// M(:, j) = R_(n)[j]·K_L(:, j) for each column j (Figures 3a and 3b).
func twoStepRightFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	ir := x.SizeRight(n)
	t := parallel.Clamp(opts.Threads, 0)
	bd := opts.Breakdown

	kl := mat.NewDense(il, c)
	kr := mat.NewDense(ir, c)
	// R is the (I₀⋯I_n) × C intermediate, column-major so that column j is
	// the j-th subtensor of the order-(n+2) tensor R in natural layout.
	r := mat.NewColMajor(il*in, c)
	m := mat.NewDense(in, c)

	totalW := startWatch()
	sw := startWatch()
	krp.Parallel(t, leftOperands(u, n), kl)
	krp.Parallel(t, rightOperands(u, n), kr)
	bd.add(PhaseLRKRP, sw.elapsed())

	// Step 1: partial MTTKRP — a single (logical) BLAS call on the
	// column-major generalized matricization.
	sw = startWatch()
	blas.Gemm(t, 1, x.MatricizeRowModes(n), kr, 0, r)
	bd.add(PhaseGEMM, sw.elapsed())

	// Step 2: multi-TTV. R_(n)[j] is the row-major I_n × I^L_n
	// matricization of subtensor j; columns are independent.
	sw = startWatch()
	parallel.For(t, c, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			sub := r.Data[j*il*in : (j+1)*il*in]
			rj := mat.FromRowMajor(sub, in, il)
			blas.Gemv(1, 1, rj, kl.Col(j), 0, m.Col(j))
		}
	})
	bd.add(PhaseGEMV, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	return m
}

// twoStepLeftFirst computes L_(0:N-n-1) = X_(0:n-1)ᵀ·K_L, then
// M(:, j) = L_(0)[j]·K_R(:, j) for each column j (Figures 3c and 3d).
func twoStepLeftFirst(x *tensor.Dense, u []mat.View, n int, opts Options) mat.View {
	c := rank(u)
	in := x.Dim(n)
	il := x.SizeLeft(n)
	ir := x.SizeRight(n)
	t := parallel.Clamp(opts.Threads, 0)
	bd := opts.Breakdown

	kl := mat.NewDense(il, c)
	kr := mat.NewDense(ir, c)
	// L is (I_n⋯I_{N-1}) × C, column-major: column j is subtensor j of the
	// order-(N-n+1) tensor L in natural layout.
	l := mat.NewColMajor(in*ir, c)
	m := mat.NewDense(in, c)

	totalW := startWatch()
	sw := startWatch()
	krp.Parallel(t, leftOperands(u, n), kl)
	krp.Parallel(t, rightOperands(u, n), kr)
	bd.add(PhaseLRKRP, sw.elapsed())

	// Step 1: X_(0:n-1) is column-major I^L_n × (I_n⋯I_{N-1}); its
	// transpose view is row-major, so the GEMM reads contiguous rows.
	sw = startWatch()
	blas.Gemm(t, 1, x.MatricizeRowModes(n-1).T(), kl, 0, l)
	bd.add(PhaseGEMM, sw.elapsed())

	// Step 2: multi-TTV. L_(0)[j] is the column-major I_n × I^R_n
	// mode-0 matricization of subtensor j.
	sw = startWatch()
	parallel.For(t, c, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			sub := l.Data[j*in*ir : (j+1)*in*ir]
			lj := mat.FromColMajor(sub, in, ir)
			blas.Gemv(1, 1, lj, kr.Col(j), 0, m.Col(j))
		}
	})
	bd.add(PhaseGEMV, sw.elapsed())
	bd.addTotal(totalW.elapsed())
	return m
}
