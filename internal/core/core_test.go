package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// randomProblem builds a random tensor and factor set.
func randomProblem(rng *rand.Rand, dims []int, c int) (*tensor.Dense, []mat.View) {
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, len(dims))
	for k, d := range dims {
		u[k] = mat.RandomDense(d, c, rng)
	}
	return x, u
}

var testShapes = [][]int{
	{3, 4},
	{4, 5, 6},
	{2, 3, 4, 5},
	{3, 2, 4, 2, 3},
	{2, 2, 2, 2, 2, 2},
	{1, 4, 3},  // dim-1 leading mode
	{4, 1, 3},  // dim-1 internal mode
	{4, 3, 1},  // dim-1 trailing mode
	{1, 1, 5},  // multiple dim-1 modes
	{7, 1},     // order 2 with dim-1
	{13, 9, 4}, // larger, exercises GEMM blocking
}

func TestOneStepSequentialMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range testShapes {
		for _, c := range []int{1, 3, 7} {
			x, u := randomProblem(rng, dims, c)
			for n := range dims {
				want := Naive(x, u, n)
				got := OneStepSequential(x, u, n, Options{})
				if !mat.ApproxEqual(got, want, 1e-11) {
					t.Errorf("dims=%v n=%d c=%d: 1-step seq mismatch %g", dims, n, c, mat.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

func TestOneStepParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range testShapes {
		x, u := randomProblem(rng, dims, 5)
		for n := range dims {
			want := Naive(x, u, n)
			for _, threads := range []int{1, 2, 3, 8} {
				got := OneStep(x, u, n, Options{Threads: threads})
				if !mat.ApproxEqual(got, want, 1e-11) {
					t.Errorf("dims=%v n=%d threads=%d: 1-step mismatch %g", dims, n, threads, mat.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

func TestOneStepDynamicGrainMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, u := randomProblem(rng, []int{3, 4, 5, 2}, 4)
	for n := 1; n <= 2; n++ {
		want := Naive(x, u, n)
		for _, grain := range []int{1, 2, 7} {
			got := OneStep(x, u, n, Options{Threads: 3, DynamicGrain: grain})
			if !mat.ApproxEqual(got, want, 1e-11) {
				t.Errorf("n=%d grain=%d: mismatch", n, grain)
			}
		}
	}
}

func TestTwoStepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range testShapes {
		x, u := randomProblem(rng, dims, 6)
		for n := range dims {
			want := Naive(x, u, n)
			for _, threads := range []int{1, 2, 4} {
				got := TwoStep(x, u, n, Options{Threads: threads})
				if !mat.ApproxEqual(got, want, 1e-11) {
					t.Errorf("dims=%v n=%d threads=%d: 2-step mismatch %g", dims, n, threads, mat.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

// TestTwoStepBothOrderings forces the left-first and right-first paths on
// the same problem; both must agree with the reference regardless of the
// I^L vs I^R selection rule.
func TestTwoStepBothOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// dims chosen so internal modes hit both branches: for n=1, IL=2 <
	// IR=20 (right-first); for n=2, IL=6 > IR=5 (left-first).
	x, u := randomProblem(rng, []int{2, 3, 4, 5}, 4)
	for n := 1; n <= 2; n++ {
		want := Naive(x, u, n)
		left := twoStepLeftFirst(mat.NewDense(x.Dim(n), 4), x, u, n, Options{Threads: 2})
		right := twoStepRightFirst(mat.NewDense(x.Dim(n), 4), x, u, n, Options{Threads: 2})
		if !mat.ApproxEqual(left, want, 1e-11) {
			t.Errorf("n=%d: left-first wrong", n)
		}
		if !mat.ApproxEqual(right, want, 1e-11) {
			t.Errorf("n=%d: right-first wrong", n)
		}
	}
}

func TestReorderMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dims := range testShapes {
		x, u := randomProblem(rng, dims, 5)
		for n := range dims {
			want := Naive(x, u, n)
			got := Reorder(x, u, n, Options{Threads: 2})
			if !mat.ApproxEqual(got, want, 1e-11) {
				t.Errorf("dims=%v n=%d: reorder mismatch %g", dims, n, mat.MaxAbsDiff(got, want))
			}
		}
	}
}

func TestComputeDispatchAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, u := randomProblem(rng, []int{4, 3, 5}, 4)
	for n := 0; n < 3; n++ {
		want := Naive(x, u, n)
		for _, m := range []Method{MethodOneStep, MethodTwoStep, MethodReorder, MethodAuto, MethodNaive} {
			got := Compute(m, x, u, n, Options{Threads: 2})
			if !mat.ApproxEqual(got, want, 1e-11) {
				t.Errorf("method %v mode %d: mismatch", m, n)
			}
		}
	}
}

func TestComputeUnknownMethodPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, u := randomProblem(rng, []int{2, 2}, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Compute(Method(99), x, u, 0, Options{})
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		MethodOneStep: "1-step", MethodTwoStep: "2-step",
		MethodReorder: "reorder", MethodAuto: "auto", MethodNaive: "naive",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method should still stringify")
	}
	if len(Methods()) != 4 {
		t.Errorf("Methods() = %v", Methods())
	}
}

func TestValidationPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, u := randomProblem(rng, []int{3, 4, 5}, 4)
	cases := []func(){
		func() { Compute(MethodOneStep, x, u[:2], 0, Options{}) },          // too few factors
		func() { Compute(MethodOneStep, x, u, 3, Options{}) },              // mode out of range
		func() { Compute(MethodOneStep, x, u, -1, Options{}) },             // negative mode
		func() { Naive(tensor.New(5), []mat.View{mat.NewDense(5, 2)}, 0) }, // order-1 tensor
		func() {
			bad := append([]mat.View(nil), u...)
			bad[1] = mat.NewDense(7, 4) // wrong rows
			Compute(MethodOneStep, x, bad, 0, Options{})
		},
		func() {
			bad := append([]mat.View(nil), u...)
			bad[2] = mat.NewDense(5, 9) // wrong cols
			Compute(MethodOneStep, x, bad, 0, Options{})
		},
		func() {
			bad := append([]mat.View(nil), u...)
			bad[0] = mat.NewColMajor(3, 4) // non-unit column stride
			Compute(MethodOneStep, x, bad, 0, Options{})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: for random shapes, all four production methods agree on all
// modes and thread counts.
func TestAllMethodsAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 2
		dims := make([]int, order)
		for i := range dims {
			dims[i] = rng.Intn(5) + 1
		}
		c := rng.Intn(6) + 1
		x, u := randomProblem(rng, dims, c)
		n := rng.Intn(order)
		threads := rng.Intn(4) + 1
		want := Naive(x, u, n)
		for _, m := range Methods() {
			got := Compute(m, x, u, n, Options{Threads: threads})
			if !mat.ApproxEqual(got, want, 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MTTKRP is linear in the tensor argument.
func TestLinearityInTensorQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{3, 4, 2}
		x, u := randomProblem(rng, dims, 3)
		y := tensor.Random(rng, dims...)
		n := rng.Intn(3)
		// M(x + 2y) = M(x) + 2·M(y)
		z := x.Clone()
		z.AddScaled(2, y)
		mz := OneStep(z, u, n, Options{Threads: 2})
		mx := OneStep(x, u, n, Options{Threads: 2})
		my := OneStep(y, u, n, Options{Threads: 2})
		for i := 0; i < mz.R; i++ {
			for j := 0; j < mz.C; j++ {
				d := mz.At(i, j) - (mx.At(i, j) + 2*my.At(i, j))
				if d > 1e-9 || d < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGemmBaselineRuns(t *testing.T) {
	g := NewGemmBaseline(10, 200, 5)
	var bd Breakdown
	g.Run(2, &bd)
	if bd.Get(PhaseGEMM) <= 0 {
		t.Error("baseline recorded no GEMM time")
	}
	if bd.Total() < bd.Get(PhaseGEMM) {
		t.Error("total below GEMM time")
	}
	rng := rand.New(rand.NewSource(10))
	x := tensor.Random(rng, 4, 5, 6)
	g2 := NewGemmBaselineFor(x, 1, 3)
	if g2.a.R != 5 || g2.a.C != 24 || g2.b.C != 3 {
		t.Errorf("baseline dims wrong: %dx%d, %dx%d", g2.a.R, g2.a.C, g2.b.R, g2.b.C)
	}
	g2.Run(1, nil) // nil breakdown must be fine
}

func TestOneStepKRPChunkRowsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, u := randomProblem(rng, []int{6, 5, 7}, 4)
	for _, n := range []int{0, 2} { // external modes use the chunked path
		want := Naive(x, u, n)
		for _, chunk := range []int{1, 3, 7, 1000} {
			for _, threads := range []int{1, 2, 3} {
				got := OneStep(x, u, n, Options{Threads: threads, KRPChunkRows: chunk})
				if !mat.ApproxEqual(got, want, 1e-11) {
					t.Errorf("n=%d chunk=%d threads=%d: mismatch %g",
						n, chunk, threads, mat.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

func TestOneStepKRPChunkBoundsMemory(t *testing.T) {
	// With chunking the per-worker KRP buffer is chunk×C, so even a
	// pathologically small chunk must produce correct results while the
	// full block would be SizeOther(n) rows.
	rng := rand.New(rand.NewSource(21))
	x, u := randomProblem(rng, []int{4, 8, 8}, 3)
	want := Naive(x, u, 0)
	got := OneStep(x, u, 0, Options{Threads: 2, KRPChunkRows: 1})
	if !mat.ApproxEqual(got, want, 1e-11) {
		t.Error("chunk=1 external mode wrong")
	}
}

func TestReorderBlasOnlyParallelMatchesNaive(t *testing.T) {
	// The TTB-fidelity mode (single-threaded reorder and KRP, parallel
	// GEMM only) must still be numerically correct.
	rng := rand.New(rand.NewSource(22))
	x, u := randomProblem(rng, []int{6, 5, 4}, 3)
	for n := 0; n < 3; n++ {
		want := Naive(x, u, n)
		got := Reorder(x, u, n, Options{Threads: 3, BlasOnlyParallel: true})
		if !mat.ApproxEqual(got, want, 1e-11) {
			t.Errorf("mode %d: BlasOnlyParallel reorder wrong", n)
		}
	}
}

func TestOneStepSequentialWithBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, u := randomProblem(rng, []int{6, 5, 4}, 3)
	var bd Breakdown
	OneStepSequential(x, u, 1, Options{Breakdown: &bd})
	if bd.Get(PhaseFullKRP) <= 0 || bd.Get(PhaseGEMM) <= 0 {
		t.Errorf("Alg 2 breakdown not populated: %v", &bd)
	}
}

func TestTwoStepForcedOrderExternalPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x, u := randomProblem(rng, []int{3, 3, 3}, 2)
	for i, fn := range []func(){
		func() { TwoStepLeftFirst(x, u, 0, Options{}) },
		func() { TwoStepRightFirst(x, u, 2, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
