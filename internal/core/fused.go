package core

import (
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// This file is the batch-level kernel fusion entry: a coalesced batch of
// same-shape MTTKRP requests whose factor sets are identical except the
// target-mode operand recomputes an identical Khatri-Rao intermediate per
// member. A krp.Plan filled once per batch (FillPlan) carries the left and
// right partial KRPs; ComputeIntoWithPlan threads it to the kernels, which
// consume it read-only:
//
//   - 1-step external modes GEMM directly against the plan's one-sided
//     full KRP instead of streaming per-worker row blocks;
//   - 1-step internal modes take K_L whole and read K_R rows from the plan
//     instead of recomputing both;
//   - 2-step (either ordering) takes K_L and K_R and skips its entire
//     PhaseLRKRP;
//   - the reorder baseline and the naive reference ignore plans
//     (PlanFusable reports them unfusable).
//
// Consumption is fail-safe: every kernel looks its operand list up in the
// plan and computes locally on a miss, so a stale or mismatched plan can
// cost time but never correctness. Plan rows are bitwise identical to the
// rows the unfused kernels form (same Hadamard association order), and the
// fused paths keep the unfused GEMM partitioning, so fused and unfused
// execution produce bit-identical results at equal worker counts.
func ComputeIntoWithPlan(dst mat.View, method Method, x *tensor.Dense, u []mat.View, n int, opts Options, p *krp.Plan) mat.View {
	opts.plan = p
	return ComputeInto(dst, method, x, u, n, opts)
}

// planOpsFrame is the workspace-cached operand-list scratch of FillPlan
// (two lists at once, so it cannot share the single-list viewListFrame).
type planOpsFrame struct{ left, right []mat.View }

func newPlanOpsFrame() any { return &planOpsFrame{} }

// FillPlan fills p with the left and right partial KRPs for mode n of the
// factor set u, dispatching on ex (t <= 0 selects the executor's width)
// with plan storage leased from ws. The plan can then serve any
// ComputeIntoWithPlan whose mode-n operand set matches u's. With a warmed
// ws and a retained plan, refilling allocates nothing.
func FillPlan(p *krp.Plan, ex parallel.Executor, ws *parallel.Workspace, t int, x *tensor.Dense, u []mat.View, n int) {
	validate(x, u, n)
	f := ws.Frame("core.planops", newPlanOpsFrame).(*planOpsFrame)
	f.left = appendLeftOperands(f.left, u, n)
	f.right = appendRightOperands(f.right, u, n)
	p.Fill(ex, ws, t, f.left, f.right)
	f.left = clearViews(f.left)
	f.right = clearViews(f.right)
}

// PlanCovers reports whether p, as currently filled, would serve mode n of
// the factor set u — i.e. a FillPlan with these operands is redundant. It
// is how the batch executor detects that the plan a shape-keyed workspace
// retained from the previous batch (detached: snapshots only) already
// covers the next batch's factor set, fusing across batch boundaries.
func PlanCovers(p *krp.Plan, ws *parallel.Workspace, x *tensor.Dense, u []mat.View, n int) bool {
	validate(x, u, n)
	f := ws.Frame("core.planops", newPlanOpsFrame).(*planOpsFrame)
	f.left = appendLeftOperands(f.left, u, n)
	f.right = appendRightOperands(f.right, u, n)
	ok := p.Covers(f.left, f.right)
	f.left = clearViews(f.left)
	f.right = clearViews(f.right)
	return ok
}

// PlanFusable reports whether the method can consume a shared KRP plan.
// The reorder baseline materializes its KRP in a layout the plan does not
// provide, and the naive reference never forms one.
func PlanFusable(method Method) bool {
	switch method {
	case MethodOneStep, MethodTwoStep, MethodAuto:
		return true
	}
	return false
}
