package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestTiledBitIdentical sweeps tile size × mode × method × threads and pins
// math.Float64bits equality of the tiled kernels against the untiled ones —
// the bit-identity contract of the out-of-core path.
func TestTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Random(rng, 13, 9, 11, 7)
	const c = 5
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	for _, threads := range []int{1, 3} {
		pool := parallel.NewPool(threads)
		defer pool.Close()
		for _, method := range []Method{MethodOneStep, MethodTwoStep, MethodAuto} {
			for n := 0; n < x.Order(); n++ {
				want := Compute(method, x, u, n, Options{Threads: threads, Pool: pool})
				for _, tile := range []int{1, 2, 3, 4, 5, x.Dim(n) - 1, x.Dim(n), x.Dim(n) + 3} {
					opts := Options{Threads: threads, Pool: pool, TileRows: tile}
					got := ComputeInto(mat.NewDense(x.Dim(n), c), method, x, u, n, opts)
					bitsEqual(t, got, want, "tiled vs untiled")
				}
			}
		}
	}
}

// TestTiledBitIdenticalChunked runs the sweep with KRPChunkRows set, the
// configuration where GEMM path flips would surface first (beta=1 chunks).
func TestTiledBitIdenticalChunked(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := tensor.Random(rng, 12, 10, 8)
	const c = 4
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	pool := parallel.NewPool(2)
	defer pool.Close()
	for n := 0; n < x.Order(); n++ {
		base := Options{Threads: 2, Pool: pool, KRPChunkRows: 7}
		want := Compute(MethodOneStep, x, u, n, base)
		for _, tile := range []int{2, 3, 5} {
			opts := base
			opts.TileRows = tile
			got := ComputeInto(mat.NewDense(x.Dim(n), c), MethodOneStep, x, u, n, opts)
			bitsEqual(t, got, want, "tiled vs untiled")
		}
	}
}

// TestTiledMappedLargerThanBudget maps a file-backed tensor more than 2×
// larger than the tile budget and checks the streamed result is
// bit-identical to the untiled kernel run on a RAM-resident copy of the
// same data — the acceptance criterion for the out-of-core path.
func TestTiledMappedLargerThanBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	heap := tensor.Random(rng, 24, 18, 20) // 67.5 KiB slab
	path := filepath.Join(t.TempDir(), "big.dsnt")
	if err := tensor.WriteDenseFile(path, heap); err != nil {
		t.Fatalf("WriteDenseFile: %v", err)
	}
	m, err := tensor.OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()

	const c = 6
	u := make([]mat.View, heap.Order())
	for k := range u {
		u[k] = mat.RandomDense(heap.Dim(k), c, rng)
	}
	pool := parallel.NewPool(3)
	defer pool.Close()

	const budget = 16 << 10 // 16 KiB tiles: > 4× smaller than the slab
	for n := 0; n < heap.Order(); n++ {
		tile := AutoTileRows(heap.Dims(), n, budget)
		if tile == 0 {
			t.Fatalf("mode %d: AutoTileRows found the tensor within a %d-byte budget", n, budget)
		}
		if int64(tile)*int64(heap.Size()/heap.Dim(n))*8 > budget {
			t.Fatalf("mode %d: tile %d exceeds the byte budget", n, tile)
		}
		for _, method := range []Method{MethodOneStep, MethodTwoStep} {
			want := Compute(method, heap, u, n, Options{Threads: 3, Pool: pool})
			opts := Options{Threads: 3, Pool: pool, TileRows: tile}
			got := ComputeInto(mat.NewDense(heap.Dim(n), c), method, m.Dense, u, n, opts)
			bitsEqual(t, got, want, "tiled vs untiled")
		}
	}
}

// TestTiledSteadyStateAllocFree extends the pool runtime's allocation
// guarantee to the tiled drivers.
func TestTiledSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Random(rng, 30, 20, 25, 15)
	u := make([]mat.View, 4)
	for k := 0; k < 4; k++ {
		u[k] = mat.RandomDense(x.Dim(k), 16, rng)
	}
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, tc := range []struct {
		name   string
		method Method
		n      int
	}{
		{"tiled-onestep-ext0", MethodOneStep, 0},
		{"tiled-onestep-extN", MethodOneStep, 3},
		{"tiled-onestep-int", MethodOneStep, 1},
		{"tiled-twostep", MethodTwoStep, 2},
	} {
		dst := mat.NewDense(x.Dim(tc.n), 16)
		opts := Options{Threads: 4, Pool: pool, TileRows: 7}
		ComputeInto(dst, tc.method, x, u, tc.n, opts) // warmup
		ComputeInto(dst, tc.method, x, u, tc.n, opts)
		allocs := testing.AllocsPerRun(20, func() {
			ComputeInto(dst, tc.method, x, u, tc.n, opts)
		})
		t.Logf("%s: %.1f allocs/op", tc.name, allocs)
		if allocs > 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestAutoTileRows(t *testing.T) {
	dims := []int{64, 48, 40}
	if got := AutoTileRows(dims, 0, 1<<30); got != 0 {
		t.Fatalf("huge budget: got %d, want 0 (untiled)", got)
	}
	// 48·40 = 1920 elements per mode-0 row = 15360 bytes; a 64 KiB budget
	// holds 4 rows.
	if got := AutoTileRows(dims, 0, 64<<10); got != 4 {
		t.Fatalf("64 KiB budget: got %d, want 4", got)
	}
	if got := AutoTileRows(dims, 1, 1); got != 2 {
		t.Fatalf("tiny budget: got %d, want the 2-row floor", got)
	}
	if got := AutoTileRows(dims, 2, 0); got != 0 {
		t.Fatalf("default budget on a small tensor: got %d, want 0", got)
	}
}

// BenchmarkTiledMTTKRP measures the tiled driver against the untiled one
// on a file-backed (mapped) tensor, per mode — the EXPERIMENTS.md
// tiled-vs-untiled series. SetBytes is the tensor slab, so MB/s is the
// streaming rate over the mapped data section.
func BenchmarkTiledMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	heap := tensor.Random(rng, 96, 84, 72)
	path := filepath.Join(b.TempDir(), "x.dsnt")
	if err := tensor.WriteDenseFile(path, heap); err != nil {
		b.Fatal(err)
	}
	m, err := tensor.OpenDense(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	const c = 16
	u := make([]mat.View, m.Order())
	for k := range u {
		u[k] = mat.RandomDense(m.Dim(k), c, rng)
	}
	pool := parallel.NewPool(4)
	defer pool.Close()
	for n := 0; n < m.Order(); n++ {
		for _, tiled := range []bool{false, true} {
			name := "untiled"
			opts := Options{Threads: 4, Pool: pool}
			if tiled {
				opts.TileRows = AutoTileRows(m.Dims(), n, 1<<20) // 1 MiB tile budget
				name = "tiled"
			}
			b.Run(name+"/mode="+string(rune('0'+n)), func(b *testing.B) {
				dst := mat.NewDense(m.Dim(n), c)
				b.SetBytes(int64(8 * m.Size()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ComputeInto(dst, MethodAuto, m.Dense, u, n, opts)
				}
			})
		}
	}
}

// TestTiledDropBehindBitIdentical runs the streamed kernels with
// drop-behind advice on a mapped tensor and pins two properties: results
// are bit-identical to the untiled heap run (the advice is invisible to
// arithmetic), and a second pass over the same mapping — the pattern the
// knob's documentation warns is advice-defeating but must stay correct —
// re-faults the dropped pages to the same bits.
func TestTiledDropBehindBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	heap := tensor.Random(rng, 24, 18, 20)
	path := filepath.Join(t.TempDir(), "drop.dsnt")
	if err := tensor.WriteDenseFile(path, heap); err != nil {
		t.Fatalf("WriteDenseFile: %v", err)
	}
	m, err := tensor.OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()

	const c = 6
	u := make([]mat.View, heap.Order())
	for k := range u {
		u[k] = mat.RandomDense(heap.Dim(k), c, rng)
	}
	pool := parallel.NewPool(3)
	defer pool.Close()

	for n := 0; n < heap.Order(); n++ {
		tile := AutoTileRows(heap.Dims(), n, 16<<10)
		for _, method := range []Method{MethodOneStep, MethodTwoStep} {
			want := Compute(method, heap, u, n, Options{Threads: 3, Pool: pool})
			opts := Options{Threads: 3, Pool: pool, TileRows: tile, DropBehind: true}
			for pass := 0; pass < 2; pass++ {
				got := ComputeInto(mat.NewDense(heap.Dim(n), c), method, m.Dense, u, n, opts)
				bitsEqual(t, got, want, "drop-behind vs untiled")
			}
		}
	}
}
