package core

import (
	"fmt"

	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Request is the canonical description of one MTTKRP computation — the
// single shape the in-process API (repro.MTTKRP*), the serving scheduler
// (serve.MTTKRPRequest) and the wire codec all construct before executing.
// It replaced three parallel positional argument lists that had each grown
// its own per-feature knobs; DESIGN.md §13 documents the field mapping
// from the older entry points.
type Request struct {
	// X is the input tensor: *tensor.Dense or *tensor.Sparse. Run
	// dispatches on its layout.
	X tensor.Interface
	// Factors are the I_k × C row-major factor matrices, one per mode.
	Factors []mat.View
	// Mode is the MTTKRP mode n.
	Mode int
	// Method selects the dense algorithm (zero value = the paper's
	// hybrid). Sparse tensors have one kernel and ignore it, except
	// MethodNaive, which runs against the densified reference.
	Method Method
	// Dst, when non-zero, receives the I_n × C result (contiguous
	// row-major, caller-retained for steady-state reuse); a zero Dst
	// allocates one.
	Dst mat.View
	// Opts carries the execution knobs (threads, pool, phase hook,
	// breakdown).
	Opts Options
}

// Run executes the request, dispatching on the tensor's layout, and
// returns the result matrix (Dst when one was supplied).
func Run(r Request) mat.View {
	return RunWithPlan(r, nil)
}

// RunWithPlan is Run with an optional prebuilt shared Khatri-Rao plan
// (batch fusion). Only the dense kernels consume plans; a sparse request
// ignores the plan and computes directly — the sparse kernel has no KRP
// intermediate to share.
func RunWithPlan(r Request, plan *krp.Plan) mat.View {
	dst := r.Dst
	switch x := r.X.(type) {
	case *tensor.Dense:
		if dst.Data == nil {
			dst = mat.NewDense(x.Dim(r.Mode), rank(r.Factors))
		}
		if plan != nil {
			return ComputeIntoWithPlan(dst, r.Method, x, r.Factors, r.Mode, r.Opts, plan)
		}
		return ComputeInto(dst, r.Method, x, r.Factors, r.Mode, r.Opts)
	case *tensor.Sparse:
		if dst.Data == nil {
			dst = mat.NewDense(x.Dim(r.Mode), rank(r.Factors))
		}
		if r.Method == MethodNaive {
			r.Opts.notifyPhase() // the reference path has no leaf kernel to notify
			dst.CopyFrom(Naive(x.Densify(), r.Factors, r.Mode))
			return dst
		}
		return SparseComputeInto(dst, x, r.Factors, r.Mode, r.Opts)
	}
	panic(fmt.Sprintf("core: unsupported tensor layout %v", r.X.Layout()))
}
