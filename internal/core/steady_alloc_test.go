package core

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestPooledKernelsSteadyStateAllocFree pins the pool runtime's core
// guarantee: repeated same-shape MTTKRP calls on a retained dst and pool
// reuse the pool's workspaces and allocate nothing.
func TestPooledKernelsSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Random(rng, 30, 20, 25, 15)
	u := make([]mat.View, 4)
	for k := 0; k < 4; k++ {
		u[k] = mat.RandomDense(x.Dim(k), 16, rng)
	}
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, tc := range []struct {
		name   string
		method Method
		n      int
	}{
		{"onestep-ext", MethodOneStep, 0},
		{"onestep-int", MethodOneStep, 1},
		{"twostep-right", MethodTwoStep, 1},
		{"twostep-left", MethodTwoStep, 2},
	} {
		dst := mat.NewDense(x.Dim(tc.n), 16)
		opts := Options{Threads: 4, Pool: pool}
		ComputeInto(dst, tc.method, x, u, tc.n, opts) // warmup
		ComputeInto(dst, tc.method, x, u, tc.n, opts)
		allocs := testing.AllocsPerRun(20, func() {
			ComputeInto(dst, tc.method, x, u, tc.n, opts)
		})
		t.Logf("%s: %.1f allocs/op", tc.name, allocs)
		if allocs > 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
