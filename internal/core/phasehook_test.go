package core

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestEveryIntoEntryPointNotifiesOnce pins the phase-hook contract the
// phasehook analyzer machine-checks: every exported *Into kernel entry
// point reaches Options.PhaseNotify exactly once per computation, whether
// entered directly or through ComputeInto. Before this test, direct entry
// via OneStepInto/TwoStepInto/ReorderInto skipped the notification, so an
// admitted request running against those entry points never gave the
// scheduler a reconcile safe-point.
func TestEveryIntoEntryPointNotifiesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{4, 5, 6}
	x, u := randomProblem(rng, dims, 3)

	entries := []struct {
		name string
		call func(n int, opts Options) mat.View
	}{
		{"OneStepInto", func(n int, opts Options) mat.View {
			return OneStepInto(mat.NewDense(x.Dim(n), 3), x, u, n, opts)
		}},
		{"TwoStepInto", func(n int, opts Options) mat.View {
			return TwoStepInto(mat.NewDense(x.Dim(n), 3), x, u, n, opts)
		}},
		{"ReorderInto", func(n int, opts Options) mat.View {
			return ReorderInto(mat.NewDense(x.Dim(n), 3), x, u, n, opts)
		}},
		{"ComputeInto/OneStep", func(n int, opts Options) mat.View {
			return ComputeInto(mat.NewDense(x.Dim(n), 3), MethodOneStep, x, u, n, opts)
		}},
		{"ComputeInto/TwoStep", func(n int, opts Options) mat.View {
			return ComputeInto(mat.NewDense(x.Dim(n), 3), MethodTwoStep, x, u, n, opts)
		}},
		{"ComputeInto/Reorder", func(n int, opts Options) mat.View {
			return ComputeInto(mat.NewDense(x.Dim(n), 3), MethodReorder, x, u, n, opts)
		}},
		{"ComputeInto/Auto", func(n int, opts Options) mat.View {
			return ComputeInto(mat.NewDense(x.Dim(n), 3), MethodAuto, x, u, n, opts)
		}},
		{"ComputeInto/Naive", func(n int, opts Options) mat.View {
			return ComputeInto(mat.NewDense(x.Dim(n), 3), MethodNaive, x, u, n, opts)
		}},
	}

	for _, e := range entries {
		// Mode 0 is external and mode 1 internal, so both kernel variants
		// of the 1-step algorithm (and both entry paths of TwoStepInto)
		// are exercised.
		for n := 0; n < 2; n++ {
			notified := 0
			opts := Options{Threads: 2, PhaseNotify: func() { notified++ }}
			got := e.call(n, opts)
			want := Naive(x, u, n)
			if !mat.ApproxEqual(got, want, 1e-11) {
				t.Errorf("%s n=%d: result mismatch %g", e.name, n, mat.MaxAbsDiff(got, want))
			}
			if notified != 1 {
				t.Errorf("%s n=%d: PhaseNotify invoked %d times, want exactly 1", e.name, n, notified)
			}
		}
	}
}

// TestForcedOrderingsNotify covers the ordering-ablation entry points,
// which share the leaf kernels with TwoStepInto.
func TestForcedOrderingsNotify(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, u := randomProblem(rng, []int{4, 5, 6}, 3)
	want := Naive(x, u, 1)
	for _, e := range []struct {
		name string
		call func(opts Options) mat.View
	}{
		{"TwoStepLeftFirst", func(opts Options) mat.View { return TwoStepLeftFirst(x, u, 1, opts) }},
		{"TwoStepRightFirst", func(opts Options) mat.View { return TwoStepRightFirst(x, u, 1, opts) }},
	} {
		notified := 0
		got := e.call(Options{Threads: 2, PhaseNotify: func() { notified++ }})
		if !mat.ApproxEqual(got, want, 1e-11) {
			t.Errorf("%s: result mismatch %g", e.name, mat.MaxAbsDiff(got, want))
		}
		if notified != 1 {
			t.Errorf("%s: PhaseNotify invoked %d times, want exactly 1", e.name, notified)
		}
	}
}
