package core

import (
	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// SweepAll performs the MTTKRPs of one full ALS sweep (modes 0..N-1, in
// order) while avoiding recomputation across modes — the extension the
// paper names as its natural next step (Section 6), following Phan et al.
// [19, Section III.C].
//
// The modes are split into a left half {0..s-1} and right half {s..N-1}
// with s chosen to minimize the intermediate sizes. The sweep then costs
// two passes over the tensor instead of N:
//
//  1. a right partial MTTKRP R = X_(0:s-1)·K_R (one GEMM over all tensor
//     entries), from which each left mode's MTTKRP is derived by cheap
//     multi-TTVs over the small intermediate R;
//  2. after the left factors are updated, a left partial MTTKRP
//     L = X_(0:s-1)ᵀ·K_L, from which each right mode's MTTKRP is derived.
//
// update(n, m) is called once per mode, in ALS order, with the raw MTTKRP
// result; it must perform the factor update in place (writing through
// u[n]) before returning, because later derivations read the updated
// factors. The scheme computes exactly the same MTTKRPs as per-mode calls
// inside an ALS sweep — this is an optimization, not an approximation.
//
// For order-2 tensors the intermediates are the results themselves and
// the scheme degenerates to two ordinary MTTKRPs.
func SweepAll(x *tensor.Dense, u []mat.View, opts Options, update func(n int, m mat.View)) {
	validate(x, u, 0)
	n := x.Order()
	s := splitPoint(x)
	t := parallel.Clamp(opts.Threads, 0)
	c := rank(u)
	bd := opts.Breakdown
	totalW := startWatch()

	// Phase 1: contract the right half once; derive modes 0..s-1.
	leftSize := x.SizeLeft(s-1) * x.Dim(s-1)
	r := mat.NewColMajor(leftSize, c)
	kr := mat.NewDense(krp.NumRows(rightOperands(u, s-1)), c)
	sw := startWatch()
	krp.Parallel(t, rightOperands(u, s-1), kr)
	bd.add(PhaseLRKRP, sw.elapsed())
	sw = startWatch()
	blas.Gemm(t, 1, x.MatricizeRowModes(s-1), kr, 0, r)
	bd.add(PhaseGEMM, sw.elapsed())

	leftDims := x.Dims()[:s]
	for mode := 0; mode < s; mode++ {
		sw = startWatch()
		m := deriveFromIntermediate(t, r, leftDims, u[:s], mode)
		bd.add(PhaseGEMV, sw.elapsed())
		update(mode, m)
	}

	// Phase 2: contract the (updated) left half once; derive s..N-1.
	rightSize := x.Size() / leftSize
	l := mat.NewColMajor(rightSize, c)
	kl := mat.NewDense(krp.NumRows(leftOperands(u, s)), c)
	sw = startWatch()
	krp.Parallel(t, leftOperands(u, s), kl)
	bd.add(PhaseLRKRP, sw.elapsed())
	sw = startWatch()
	blas.Gemm(t, 1, x.MatricizeRowModes(s-1).T(), kl, 0, l)
	bd.add(PhaseGEMM, sw.elapsed())

	rightDims := x.Dims()[s:]
	for mode := s; mode < n; mode++ {
		sw = startWatch()
		m := deriveFromIntermediate(t, l, rightDims, u[s:], mode-s)
		bd.add(PhaseGEMV, sw.elapsed())
		update(mode, m)
	}
	bd.addTotal(totalW.elapsed())
}

// splitPoint chooses s to minimize the combined size of the two
// intermediates, I_{0..s-1} + I_{s..N-1} (both scale with C).
func splitPoint(x *tensor.Dense) int {
	n := x.Order()
	best, bestCost := 1, -1
	for s := 1; s < n; s++ {
		left := x.SizeLeft(s-1) * x.Dim(s-1)
		right := x.Size() / left
		cost := left + right
		if bestCost < 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// deriveFromIntermediate computes the MTTKRP of mode `mode` (an index into
// dims/factors, which describe one half) from the half's intermediate: an
// (∏dims) × C column-major matrix whose column c is the natural-layout
// subtensor for component c. Column c of the result is the subtensor
// contracted against factors[k] column c for every k ≠ mode. Columns are
// independent and processed in parallel.
func deriveFromIntermediate(t int, inter mat.View, dims []int, factors []mat.View, mode int) mat.View {
	c := inter.C
	out := mat.NewDense(dims[mode], c)
	size := inter.R
	parallel.For(t, c, func(_, lo, hi int) {
		for col := lo; col < hi; col++ {
			sub := tensor.FromData(inter.Data[col*size:(col+1)*size], dims...)
			// Contract every mode except `mode`, highest original mode
			// first so remaining mode indices are unaffected.
			for k := len(dims) - 1; k >= 0; k-- {
				if k == mode {
					continue
				}
				v := make([]float64, factors[k].R)
				blas.CopyVec(factors[k].Col(col), mat.FromSlice(v))
				sub = sub.TTV(k, v)
			}
			for i := 0; i < dims[mode]; i++ {
				out.Set(i, col, sub.Data()[i])
			}
		}
	})
	return out
}
