package core

import (
	"repro/internal/blas"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// SweepAll performs the MTTKRPs of one full ALS sweep (modes 0..N-1, in
// order) while avoiding recomputation across modes — the extension the
// paper names as its natural next step (Section 6), following Phan et al.
// [19, Section III.C].
//
// The modes are split into a left half {0..s-1} and right half {s..N-1}
// with s chosen to minimize the intermediate sizes. The sweep then costs
// two passes over the tensor instead of N:
//
//  1. a right partial MTTKRP R = X_(0:s-1)·K_R (one GEMM over all tensor
//     entries), from which each left mode's MTTKRP is derived by cheap
//     multi-TTVs over the small intermediate R;
//  2. after the left factors are updated, a left partial MTTKRP
//     L = X_(0:s-1)ᵀ·K_L, from which each right mode's MTTKRP is derived.
//
// update(n, m) is called once per mode, in ALS order, with the raw MTTKRP
// result; it must perform the factor update in place (writing through
// u[n]) before returning, because later derivations read the updated
// factors. The scheme computes exactly the same MTTKRPs as per-mode calls
// inside an ALS sweep — this is an optimization, not an approximation.
//
// For order-2 tensors the intermediates are the results themselves and
// the scheme degenerates to two ordinary MTTKRPs.
//
// The whole sweep runs on one pool (opts.Pool or the default) and leases
// its intermediates from one reusable workspace.
func SweepAll(x *tensor.Dense, u []mat.View, opts Options, update func(n int, m mat.View)) {
	validate(x, u, 0)
	opts.notifyPhase()
	n := x.Order()
	s := splitPoint(x)
	c := rank(u)
	bd := opts.Breakdown
	p := opts.pool()
	t := p.Effective(opts.Threads)
	ws := p.Acquire()
	vf := viewList(ws)
	totalW := startWatch()

	// Phase 1: contract the right half once; derive modes 0..s-1.
	leftSize := x.SizeLeft(s-1) * x.Dim(s-1)
	r := arenaColMajor(ws.Arena(0), "core.sweep.r", leftSize, c)
	vf.ops = appendRightOperands(vf.ops, u, s-1)
	kr := arenaMat(ws.Arena(0), "core.sweep.kr", krp.NumRows(vf.ops), c)
	sw := startWatch()
	krp.ParallelOn(p, ws, t, vf.ops, kr)
	bd.add(PhaseLRKRP, sw.elapsed())
	sw = startWatch()
	blas.GemmOn(p, t, 1, x.MatricizeRowModes(s-1), kr, 0, r)
	bd.add(PhaseGEMM, sw.elapsed())
	vf.ops = clearViews(vf.ops)

	leftDims := x.Dims()[:s]
	for mode := 0; mode < s; mode++ {
		opts.notifyPhase() // per-mode phase boundary: budget changes land here
		sw = startWatch()
		m := deriveFromIntermediate(p, ws, t, r, leftDims, u[:s], mode)
		bd.add(PhaseGEMV, sw.elapsed())
		update(mode, m)
	}

	// Phase 2: contract the (updated) left half once; derive s..N-1.
	rightSize := x.Size() / leftSize
	l := arenaColMajor(ws.Arena(0), "core.sweep.l", rightSize, c)
	vf.ops = appendLeftOperands(vf.ops, u, s)
	kl := arenaMat(ws.Arena(0), "core.sweep.kl", krp.NumRows(vf.ops), c)
	sw = startWatch()
	krp.ParallelOn(p, ws, t, vf.ops, kl)
	bd.add(PhaseLRKRP, sw.elapsed())
	sw = startWatch()
	blas.GemmOn(p, t, 1, x.MatricizeRowModes(s-1).T(), kl, 0, l)
	bd.add(PhaseGEMM, sw.elapsed())
	vf.ops = clearViews(vf.ops)

	rightDims := x.Dims()[s:]
	for mode := s; mode < n; mode++ {
		opts.notifyPhase()
		sw = startWatch()
		m := deriveFromIntermediate(p, ws, t, l, rightDims, u[s:], mode-s)
		bd.add(PhaseGEMV, sw.elapsed())
		update(mode, m)
	}
	bd.addTotal(totalW.elapsed())
	ws.Release()
}

// splitPoint chooses s to minimize the combined size of the two
// intermediates, I_{0..s-1} + I_{s..N-1} (both scale with C).
func splitPoint(x *tensor.Dense) int {
	n := x.Order()
	best, bestCost := 1, -1
	for s := 1; s < n; s++ {
		left := x.SizeLeft(s-1) * x.Dim(s-1)
		right := x.Size() / left
		cost := left + right
		if bestCost < 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// deriveFrame is the workspace-cached column-loop state of
// deriveFromIntermediate.
type deriveFrame struct {
	inter   mat.View
	dims    []int
	factors []mat.View
	mode    int
	out     mat.View
	ws      *parallel.Workspace
	body    func(w, lo, hi int)
}

func newDeriveFrame() any {
	f := &deriveFrame{}
	f.body = func(w, lo, hi int) {
		size := f.inter.R
		ar := f.ws.Arena(w)
		for col := lo; col < hi; col++ {
			sub := tensor.FromData(f.inter.Data[col*size:(col+1)*size], f.dims...)
			// Contract every mode except `mode`, highest original mode
			// first so remaining mode indices are unaffected.
			for k := len(f.dims) - 1; k >= 0; k-- {
				if k == f.mode {
					continue
				}
				v := ar.Float64("core.derive.v", f.factors[k].R)
				blas.CopyVec(f.factors[k].Col(col), mat.FromSlice(v))
				sub = sub.TTV(k, v)
			}
			for i := 0; i < f.dims[f.mode]; i++ {
				f.out.Set(i, col, sub.Data()[i])
			}
		}
	}
	return f
}

// deriveFromIntermediate computes the MTTKRP of mode `mode` (an index into
// dims/factors, which describe one half) from the half's intermediate: an
// (∏dims) × C column-major matrix whose column c is the natural-layout
// subtensor for component c. Column c of the result is the subtensor
// contracted against factors[k] column c for every k ≠ mode. Columns are
// independent and processed in parallel.
func deriveFromIntermediate(p parallel.Executor, ws *parallel.Workspace, t int, inter mat.View, dims []int, factors []mat.View, mode int) mat.View {
	c := inter.C
	out := mat.NewDense(dims[mode], c)
	f := ws.Frame("core.derive", newDeriveFrame).(*deriveFrame)
	f.inter, f.dims, f.factors, f.mode, f.out, f.ws = inter, dims, factors, mode, out, ws
	ws.Arena(parallel.Clamp(t, c) - 1) // pre-grow arenas before the dispatch
	p.For(t, c, f.body)
	f.inter, f.out = mat.View{}, mat.View{}
	f.dims, f.factors = nil, nil
	f.ws = nil
	return out
}
