package core

import (
	"fmt"
	"sync"
	"time"
)

// Phase labels one component of an MTTKRP's running time, matching the
// categories of the paper's Figure 6.
type Phase int

const (
	// PhaseGEMM is matrix-matrix multiplication time (all methods).
	PhaseGEMM Phase = iota
	// PhaseGEMV is matrix-vector multiplication time (2-step multi-TTV).
	PhaseGEMV
	// PhaseFullKRP is full-KRP formation time (1-step external modes,
	// reorder baseline).
	PhaseFullKRP
	// PhaseLRKRP is left/right partial KRP time: forming K_L (and
	// expanding per-block KRP rows) in internal-mode 1-step, or forming
	// K_L and K_R in 2-step.
	PhaseLRKRP
	// PhaseReduce is the parallel reduction of private outputs (1-step).
	PhaseReduce
	// PhaseReorder is explicit tensor reordering time (baseline only).
	PhaseReorder
	numPhases
)

// String returns the figure legend label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseGEMM:
		return "DGEMM"
	case PhaseGEMV:
		return "DGEMV"
	case PhaseFullKRP:
		return "Full KRP"
	case PhaseLRKRP:
		return "L&R KRP"
	case PhaseReduce:
		return "REDUCE"
	case PhaseReorder:
		return "REORDER"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases lists all phases in display order.
func Phases() []Phase {
	return []Phase{PhaseGEMM, PhaseGEMV, PhaseFullKRP, PhaseLRKRP, PhaseReduce, PhaseReorder}
}

// Breakdown accumulates per-phase wall time for one or more MTTKRP calls.
// For phases executed inside parallel regions, the recorded value is the
// maximum across workers (the wall time the phase is responsible for).
// Breakdown is safe for concurrent use by the workers of a single call.
type Breakdown struct {
	mu     sync.Mutex
	phases [numPhases]time.Duration
	total  time.Duration
}

// add records d for phase p (summing across sequential calls).
func (b *Breakdown) add(p Phase, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.phases[p] += d
	b.mu.Unlock()
}

// addMax merges a worker-measured duration, keeping the max across the
// workers of the current parallel region: base is the phase total before
// the region started.
func (b *Breakdown) addMax(p Phase, base, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.phases[p] < base+d {
		b.phases[p] = base + d
	}
	b.mu.Unlock()
}

// addTotal records end-to-end time.
func (b *Breakdown) addTotal(d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.total += d
	b.mu.Unlock()
}

// Get returns the accumulated time of phase p.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.phases[p]
}

// Total returns the accumulated end-to-end time.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Reset clears all accumulated times.
func (b *Breakdown) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.phases = [numPhases]time.Duration{}
	b.total = 0
	b.mu.Unlock()
}

// Scale divides all accumulated times by k (for per-iteration averages).
func (b *Breakdown) Scale(k int) {
	if b == nil || k <= 1 {
		return
	}
	b.mu.Lock()
	for i := range b.phases {
		b.phases[i] /= time.Duration(k)
	}
	b.total /= time.Duration(k)
	b.mu.Unlock()
}

// String formats the non-zero phases for logs and tables.
func (b *Breakdown) String() string {
	if b == nil {
		return "<nil>"
	}
	s := ""
	for _, p := range Phases() {
		if d := b.Get(p); d > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%v", p, d)
		}
	}
	if s == "" {
		s = "(empty)"
	}
	return s + fmt.Sprintf(" total=%v", b.Total())
}

// stopwatch measures one phase region on one goroutine.
type stopwatch struct {
	start time.Time
}

func startWatch() stopwatch { return stopwatch{start: time.Now()} }

func (s stopwatch) elapsed() time.Duration { return time.Since(s.start) }
