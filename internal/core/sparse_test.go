package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestSparseMatchesDensifiedReference is the sparse kernel's property
// suite: ~100 random (shape, density, mode, threads) cases, each checked
// against the naive dense reference over the densified tensor. Densities
// span near-empty through half-full so both the skewed-slice and
// empty-slice paths are exercised.
func TestSparseMatchesDensifiedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	densities := []float64{0.001, 0.01, 0.05, 0.2, 0.5}
	shapes := [][]int{
		{7, 5}, {9, 13}, {12, 9, 8}, {6, 11, 4}, {8, 6, 7}, {5, 5, 5, 5}, {3, 4, 5, 2, 3},
	}
	cases := 0
	for _, dims := range shapes {
		for _, density := range densities {
			x := tensor.RandomSparse(rng, density, dims...)
			xd := x.Densify()
			rank := 1 + rng.Intn(8)
			u := make([]mat.View, len(dims))
			for k := range u {
				u[k] = mat.RandomDense(dims[k], rank, rng)
			}
			for mode := 0; mode < len(dims); mode++ {
				threads := 1 + rng.Intn(4)
				cases++
				name := fmt.Sprintf("%v-d%g-n%d-t%d", dims, density, mode, threads)
				t.Run(name, func(t *testing.T) {
					got := SparseCompute(x, u, mode, Options{Threads: threads})
					want := Naive(xd, u, mode)
					for i := 0; i < want.R; i++ {
						for j := 0; j < want.C; j++ {
							if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-10 {
								t.Fatalf("(%d,%d): got %g, want %g", i, j, got.At(i, j), want.At(i, j))
							}
						}
					}
				})
			}
		}
	}
	if cases < 100 {
		t.Fatalf("property suite ran %d cases, want >= 100", cases)
	}
}

// TestSparseRequestRun checks the Request dispatcher's sparse paths: the
// kernel path and the MethodNaive densified-reference path agree.
func TestSparseRequestRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandomSparse(rng, 0.05, 20, 15, 10)
	u := make([]mat.View, 3)
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), 6, rng)
	}
	got := Run(Request{X: x, Factors: u, Mode: 1})
	ref := Run(Request{X: x, Factors: u, Mode: 1, Method: MethodNaive})
	for i := 0; i < ref.R; i++ {
		for j := 0; j < ref.C; j++ {
			if math.Abs(got.At(i, j)-ref.At(i, j)) > 1e-10 {
				t.Fatalf("(%d,%d): kernel %g, naive %g", i, j, got.At(i, j), ref.At(i, j))
			}
		}
	}
}

// TestSparseZeroAndSkew covers the degenerate schedules: an empty tensor,
// fewer entries than workers, and a fully skewed tensor whose entries all
// share one output row (a single slice split across every worker).
func TestSparseZeroAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := []int{6, 5, 4}
	u := make([]mat.View, 3)
	for k := range u {
		u[k] = mat.RandomDense(dims[k], 3, rng)
	}

	empty, err := tensor.SparseFromCOO(dims, [][]int32{{}, {}, {}}, []float64{})
	if err != nil {
		t.Fatal(err)
	}
	m := SparseCompute(empty, u, 0, Options{Threads: 4})
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("empty tensor produced nonzero at (%d,%d)", i, j)
			}
		}
	}

	// All entries on mode-0 row 2: one slice, split across all workers.
	n := 20
	idx := [][]int32{make([]int32, n), make([]int32, n), make([]int32, n)}
	vals := make([]float64, n)
	for p := 0; p < n; p++ {
		idx[0][p] = 2
		idx[1][p] = int32(p % dims[1])
		idx[2][p] = int32(p % dims[2])
		vals[p] = rng.Float64()
	}
	skew, err := tensor.SparseFromCOO(dims, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	got := SparseCompute(skew, u, 0, Options{Threads: 4})
	want := Naive(skew.Densify(), u, 0)
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-10 {
				t.Fatalf("skew (%d,%d): got %g, want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestSparseSteadyStateAllocFree pins the sparse kernel's steady-state
// guarantee: with the fiber layout cached, a retained dst and a
// persistent pool, repeated same-shape calls allocate nothing.
func TestSparseSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandomSparse(rng, 0.02, 60, 50, 40)
	u := make([]mat.View, 3)
	for k := 0; k < 3; k++ {
		u[k] = mat.RandomDense(x.Dim(k), 16, rng)
	}
	pool := parallel.NewPool(4)
	defer pool.Close()
	for mode := 0; mode < 3; mode++ {
		dst := mat.NewDense(x.Dim(mode), 16)
		opts := Options{Threads: 4, Pool: pool}
		SparseComputeInto(dst, x, u, mode, opts) // warmup: builds + caches the fiber layout
		SparseComputeInto(dst, x, u, mode, opts)
		allocs := testing.AllocsPerRun(20, func() {
			SparseComputeInto(dst, x, u, mode, opts)
		})
		t.Logf("mode %d: %.1f allocs/op", mode, allocs)
		if allocs > 0 {
			t.Errorf("mode %d: %v allocs/op, want 0", mode, allocs)
		}
	}
}

// BenchmarkSparseMTTKRP measures the sparse kernel at serving-relevant
// densities (artifacted by the CI bench job).
func BenchmarkSparseMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, density := range []float64{0.001, 0.01, 0.1} {
		x := tensor.RandomSparse(rng, density, 200, 150, 100)
		u := make([]mat.View, 3)
		for k := 0; k < 3; k++ {
			u[k] = mat.RandomDense(x.Dim(k), 16, rng)
		}
		pool := parallel.NewPool(4)
		dst := mat.NewDense(x.Dim(1), 16)
		opts := Options{Threads: 4, Pool: pool}
		SparseComputeInto(dst, x, u, 1, opts) // warm the fiber cache
		b.Run(fmt.Sprintf("density=%g", density), func(b *testing.B) {
			b.SetBytes(8 * x.NNZ())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SparseComputeInto(dst, x, u, 1, opts)
			}
		})
		pool.Close()
	}
}
