package parallel

import (
	"sync"
	"testing"
)

// slotsInDomain counts how many of the lease's reserved slots sit in the
// given placement domain.
func slotsInDomain(p *Pool, l *Lease, d int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.slots {
		if p.topo.SlotDomain(s.id) == d {
			n++
		}
	}
	return n
}

// TestPlacementSingleDomainIsFlat pins the fallback contract: a nil or
// single-domain topology yields a flat pool — the non-NUMA path must be
// byte-for-byte the historical slot model.
func TestPlacementSingleDomainIsFlat(t *testing.T) {
	for _, topo := range []*Topology{nil, singleDomain(4)} {
		p := NewPoolPlaced(4, topo)
		if p.placed() {
			t.Fatalf("pool with topo %v reports placed", topo)
		}
		if got := p.MaxDomainWidth(); got != 4 {
			t.Fatalf("MaxDomainWidth = %d, want the team width 4", got)
		}
		l := p.Lease(3)
		if l.Domain() != 0 {
			t.Fatalf("flat lease domain = %d, want 0", l.Domain())
		}
		want := 49 * 50 / 2
		if got := sumFor(l, 3, 50); got != want {
			t.Fatalf("lease sum = %d, want %d", got, want)
		}
		l.Close()
		p.Close()
	}
}

// TestPlacementReserveBestFit pins the home-domain policy on an asymmetric
// machine ("0-1;2-5": a 2-CPU and a 4-CPU domain, pool width 7 → slots
// {1,6} in domain 0 and {2,3,4,5} in domain 1): best fit picks the
// tightest domain that covers the request, then the fullest, and
// reservation stays best-effort.
func TestPlacementReserveBestFit(t *testing.T) {
	topo := mustTopo(t, "0-1;2-5")
	p := NewPoolPlaced(7, topo)
	defer p.Close()

	if got := p.MaxDomainWidth(); got != 5 {
		t.Fatalf("MaxDomainWidth = %d, want 5 (domain 1's 4 slots + the caller)", got)
	}

	lA := p.Lease(3) // needs 2: domain 0 (2 free) is the tighter fit than domain 1 (4 free)
	if lA.Domain() != 0 || lA.Width() != 3 {
		t.Fatalf("lease A: domain %d width %d, want domain 0 width 3", lA.Domain(), lA.Width())
	}
	if got := slotsInDomain(p, lA, 0); got != 2 {
		t.Fatalf("lease A holds %d domain-0 slots, want 2", got)
	}

	lB := p.Lease(4) // needs 3: only domain 1 fits
	if lB.Domain() != 1 || lB.Width() != 4 {
		t.Fatalf("lease B: domain %d width %d, want domain 1 width 4", lB.Domain(), lB.Width())
	}

	lC := p.Lease(3) // needs 2, one slot left anywhere: narrower grant, home = fullest
	if lC.Domain() != 1 || lC.Width() != 2 {
		t.Fatalf("lease C: domain %d width %d, want domain 1 width 2 (best effort)", lC.Domain(), lC.Width())
	}

	sum := 0
	for _, l := range []*Lease{lA, lB, lC} {
		sum += sumFor(l, l.Width(), 40)
		l.Close()
	}
	if want := 3 * (39 * 40 / 2); sum != want {
		t.Fatalf("lease sums = %d, want %d", sum, want)
	}
}

// TestPlacementShrinkReleasesSpillFirst pins the shrink policy: a spilled
// lease that shrinks gives back its off-domain slots before any
// home-domain slot.
func TestPlacementShrinkReleasesSpillFirst(t *testing.T) {
	topo := mustTopo(t, "0-1;2-3") // width 5 → slots {1,4} in domain 0, {2,3} in domain 1
	p := NewPoolPlaced(5, topo)
	defer p.Close()

	l := p.Lease(5) // takes the whole team: home 0 + both domain-1 slots spilled
	if l.Domain() != 0 || l.Width() != 5 {
		t.Fatalf("lease: domain %d width %d, want domain 0 width 5", l.Domain(), l.Width())
	}
	l.Resize(3)
	if got := slotsInDomain(p, l, 0); got != 2 {
		t.Fatalf("after shrink: %d home slots, want 2 (off-domain released first)", got)
	}
	if got := slotsInDomain(p, l, 1); got != 0 {
		t.Fatalf("after shrink: still holding %d spilled slots", got)
	}

	l2 := p.Lease(3) // the released spill slots are whole again: domain 1 fits
	if l2.Domain() != 1 || l2.Width() != 3 {
		t.Fatalf("lease 2: domain %d width %d, want domain 1 width 3", l2.Domain(), l2.Width())
	}
	l2.Close()
	l.Close()
}

// TestPlacementRetargetMigration drives the full migration story: a lease
// forced to spill off its home domain migrates home at Reconcile — the
// phase-boundary retarget — once the home domain frees up, and never
// mid-region.
func TestPlacementRetargetMigration(t *testing.T) {
	topo := mustTopo(t, "0-3;4-5") // width 7 → slots {1,2,3,6} in domain 0, {4,5} in domain 1
	p := NewPoolPlaced(7, topo)
	defer p.Close()

	lBlock := p.Lease(5) // fits domain 0 exactly
	if lBlock.Domain() != 0 {
		t.Fatalf("block lease domain = %d, want 0", lBlock.Domain())
	}
	lHalf := p.Lease(2) // domain 1 is all that's left
	if lHalf.Domain() != 1 {
		t.Fatalf("half lease domain = %d, want 1", lHalf.Domain())
	}
	lSpill := p.Lease(3) // wants 2, gets the last domain-1 slot
	if lSpill.Domain() != 1 || lSpill.Width() != 2 {
		t.Fatalf("spill lease: domain %d width %d, want domain 1 width 2", lSpill.Domain(), lSpill.Width())
	}

	// Domain 0 frees; the under-granted lease tops up, but its home domain
	// is still full — the new slot is a spill.
	lBlock.Close()
	if got := lSpill.Reconcile(); got != 3 {
		t.Fatalf("Reconcile after top-up = %d, want 3", got)
	}
	if got := slotsInDomain(p, lSpill, 0); got != 1 {
		t.Fatalf("spill lease holds %d domain-0 slots, want 1 (home still full)", got)
	}

	// Now the home domain frees: the next phase boundary migrates the
	// spilled slot home. Width is unchanged — migration moves the physical
	// worker, not the budget.
	lHalf.Close()
	if got := lSpill.Reconcile(); got != 3 {
		t.Fatalf("Reconcile after migration = %d, want 3", got)
	}
	if got := slotsInDomain(p, lSpill, 1); got != 2 {
		t.Fatalf("spill lease holds %d home slots after migration, want 2", got)
	}
	if got := slotsInDomain(p, lSpill, 0); got != 0 {
		t.Fatalf("spill lease still holds %d off-domain slots after migration", got)
	}

	// The abandoned domain-0 slot is back in the pool.
	lAfter := p.Lease(5)
	if lAfter.Domain() != 0 || lAfter.Width() != 5 {
		t.Fatalf("post-migration lease: domain %d width %d, want domain 0 width 5", lAfter.Domain(), lAfter.Width())
	}

	want := 29 * 30 / 2
	if got := sumFor(lSpill, 3, 30); got != want {
		t.Fatalf("migrated lease sum = %d, want %d", got, want)
	}
	lAfter.Close()
	lSpill.Close()
}

// TestPlacementFirstTouchArena pins the buffer-placement rule: arenas of
// placed pools first-touch grown buffers (the stores are semantic no-ops,
// so contents stay zero), arenas of flat pools do not.
func TestPlacementFirstTouchArena(t *testing.T) {
	placed := NewPoolPlaced(3, mustTopo(t, "0-1;2-3"))
	defer placed.Close()
	flat := NewPool(3)
	defer flat.Close()

	wsP := placed.Acquire()
	wsF := flat.Acquire()
	defer wsP.Release()
	defer wsF.Release()

	if !wsP.Arena(0).firstTouch || !wsP.PlanArena().firstTouch {
		t.Fatal("placed pool arenas must first-touch")
	}
	if wsF.Arena(0).firstTouch || wsF.PlanArena().firstTouch {
		t.Fatal("flat pool arenas must not first-touch")
	}

	// Growth inside a placed region: every page touched, contents zero,
	// reuse hands the same backing array back. Arena slots are materialized
	// before the dispatch (the Workspace contract: worker w owns arena w
	// during a region, but the arena list itself is the coordinator's).
	wsP.Arena(2)
	placed.Run(3, func(w int) {
		a := wsP.Arena(w)
		s := a.Float64("probe", 3*pageBytes)
		for i, v := range s {
			if v != 0 {
				t.Errorf("worker %d: s[%d] = %g after first-touch, want 0", w, i, v)
				break
			}
		}
		s[0] = float64(w + 1)
		is := a.Ints("probe", 2*pageBytes)
		if is[0] != 0 {
			t.Errorf("worker %d: int scratch not zero", w)
		}
	})
	placed.Run(3, func(w int) {
		s := wsP.Arena(w).Float64("probe", 3*pageBytes)
		if s[0] != float64(w+1) {
			t.Errorf("worker %d: arena did not reuse its buffer (s[0] = %g)", w, s[0])
		}
	})
}

// TestPlacementWorkerPinning checks that placed workers actually carry
// their domain's CPU affinity. Pinning is best-effort (non-linux hosts and
// restricted sandboxes refuse sched_setaffinity), so the test first probes
// whether affinity control works at all and skips if not.
func TestPlacementWorkerPinning(t *testing.T) {
	host := threadAffinity()
	if len(host) < 2 {
		t.Skipf("host exposes %d usable CPUs; need 2 to observe placement", len(host))
	}
	// Probe: can this process pin a thread at all?
	probe := make(chan bool, 1)
	go func() { probe <- pinThread(host[:1]) }()
	if !<-probe {
		t.Skip("sched_setaffinity unavailable; pinning is best-effort")
	}

	half := len(host) / 2
	topo, err := newTopology([][]int{host[:half], host[half:]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoolPlaced(topo.CPUs()+1, topo)
	defer p.Close()

	allowed := make(map[int]int) // CPU id → owning domain
	for d := 0; d < topo.Domains(); d++ {
		for _, c := range topo.DomainCPUs(d) {
			allowed[c] = d
		}
	}
	type miss struct{ w, cpu, dom int }
	var mu sync.Mutex
	var misses []miss
	p.Run(topo.CPUs()+1, func(w int) {
		if w == 0 {
			return // the caller slot is never pinned
		}
		dom := p.SlotDomain(w)
		for _, cpu := range threadAffinity() {
			if allowed[cpu] != dom {
				mu.Lock()
				misses = append(misses, miss{w, cpu, dom})
				mu.Unlock()
			}
		}
	})
	if len(misses) > 0 {
		t.Fatalf("workers running outside their domain: %v", misses)
	}
}
