package parallel

import (
	"sync"
	"testing"
)

// TestEffectiveResolution pins the single t = 0 resolution rule and its
// relationship to Workers(): pools resolve t <= 0 to GOMAXPROCS no matter
// their current team size (growing on demand), leases cap at their width.
func TestEffectiveResolution(t *testing.T) {
	if got := Effective(0); got != DefaultThreads() {
		t.Fatalf("Effective(0) = %d, want DefaultThreads() = %d", got, DefaultThreads())
	}
	if got := Effective(-3); got != DefaultThreads() {
		t.Fatalf("Effective(-3) = %d, want %d", got, DefaultThreads())
	}
	if got := Effective(7); got != 7 {
		t.Fatalf("Effective(7) = %d, want 7", got)
	}
	if got := EffectiveOn(nil, 0); got != DefaultThreads() {
		t.Fatalf("EffectiveOn(nil, 0) = %d, want %d", got, DefaultThreads())
	}

	p := NewPool(2)
	defer p.Close()
	if got := p.Effective(0); got != DefaultThreads() {
		t.Fatalf("pool Effective(0) = %d, want %d (team size is not a cap)", got, DefaultThreads())
	}
	if got := p.Effective(9); got != 9 {
		t.Fatalf("pool Effective(9) = %d, want 9", got)
	}
	// A dispatch wider than the team grows it: Workers catches up with the
	// resolved width.
	p.Run(5, func(int) {})
	if got := p.Workers(); got != 5 {
		t.Fatalf("Workers() = %d after a width-5 dispatch, want 5", got)
	}

	l := p.Lease(3)
	defer l.Close()
	if got := l.Effective(0); got != 3 {
		t.Fatalf("lease Effective(0) = %d, want the granted width 3", got)
	}
	if got := l.Effective(2); got != 2 {
		t.Fatalf("lease Effective(2) = %d, want 2", got)
	}
	if got := l.Effective(99); got != 3 {
		t.Fatalf("lease Effective(99) = %d, want the cap 3", got)
	}
}

// sumFor runs a For over [0, n) adding indices into per-worker cells and
// returns the total — a correctness probe for any executor.
func sumFor(ex Executor, t, n int) int {
	cells := make([]int64, 64)
	ex.For(t, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[w] += int64(i)
		}
	})
	total := int64(0)
	for _, c := range cells {
		total += c
	}
	return int(total)
}

func TestPoolResize(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	p.Resize(6)
	if got := p.Workers(); got != 6 {
		t.Fatalf("after grow: Workers() = %d, want 6", got)
	}
	want := 99 * 100 / 2
	if got := sumFor(p, 6, 100); got != want {
		t.Fatalf("sum after grow = %d, want %d", got, want)
	}
	p.Resize(2)
	if got := p.Workers(); got != 2 {
		t.Fatalf("after shrink: Workers() = %d, want 2", got)
	}
	if got := sumFor(p, 2, 100); got != want {
		t.Fatalf("sum after shrink = %d, want %d", got, want)
	}
	// Dispatching wider than the shrunken team re-grows it.
	if got := sumFor(p, 4, 100); got != want {
		t.Fatalf("sum after re-grow = %d, want %d", got, want)
	}
}

// TestPoolResizeShrinkSparesLeases pins that shrinking never retires
// leased workers.
func TestPoolResizeShrinkSparesLeases(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	l := p.Lease(4) // reserves workers 1..3
	p.Resize(1)     // wants to retire everything; workers 1..3 must survive
	if got := p.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4 (leased slots spared)", got)
	}
	want := 49 * 50 / 2
	if got := sumFor(l, 4, 50); got != want {
		t.Fatalf("lease sum = %d, want %d", got, want)
	}
	l.Close()
	p.Resize(1)
	if got := p.Workers(); got != 1 {
		t.Fatalf("Workers() = %d after lease release, want 1", got)
	}
}

// TestPoolResizeRace drives concurrent dispatches against concurrent
// resizes; run with -race. Correctness: every dispatch still computes the
// full sum.
func TestPoolResizeRace(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const iters = 200
	want := 999 * 1000 / 2
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if got := sumFor(p, 2+g, 1000); got != want {
					t.Errorf("dispatcher %d iter %d: sum %d, want %d", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p.Resize(1 + i%8)
		}
	}()
	wg.Wait()
}

// TestLeaseBasics covers reservation accounting, dispatch correctness on
// every primitive, and close semantics.
func TestLeaseBasics(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	l := p.Lease(4)
	if got := l.Width(); got != 4 {
		t.Fatalf("Width() = %d, want 4", got)
	}

	want := 499 * 500 / 2
	if got := sumFor(l, 0, 500); got != want {
		t.Fatalf("For sum = %d, want %d", got, want)
	}

	var mu sync.Mutex
	seen := map[int]bool{}
	l.Run(4, func(w int) {
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) != 4 {
		t.Fatalf("Run reached %d workers, want 4", len(seen))
	}

	cells := make([]int64, 8)
	l.ForDynamic(4, 300, 7, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[w] += int64(i)
		}
	})
	total := int64(0)
	for _, c := range cells {
		total += c
	}
	if int(total) != 299*300/2 {
		t.Fatalf("ForDynamic sum = %d, want %d", total, 299*300/2)
	}

	parts := [][]float64{{1, 2}, {10, 20}, {100, 200}}
	got := l.ReduceSum(4, parts)
	if got[0] != 111 || got[1] != 222 {
		t.Fatalf("ReduceSum = %v, want [111 222]", got)
	}

	l.Close()
	l.Close() // idempotent
	l2 := p.Lease(8)
	if got := l2.Width(); got != 8 {
		t.Fatalf("post-release lease Width() = %d, want 8 (all workers back)", got)
	}
	l2.Close()
}

// TestLeaseRunWiderThanWidth pins the striding guarantee: a region
// logically wider than the granted goroutines still executes every
// logical worker exactly once.
func TestLeaseRunWiderThanWidth(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	l := p.Lease(2)
	defer l.Close()
	var mu sync.Mutex
	counts := make([]int, 6)
	l.Run(6, func(w int) {
		mu.Lock()
		counts[w]++
		mu.Unlock()
	})
	for w, c := range counts {
		if c != 1 {
			t.Fatalf("logical worker %d ran %d times, want 1", w, c)
		}
	}
}

// TestLeaseBestEffortAndResize: reservation under contention, then top-up
// after the contender releases.
func TestLeaseBestEffortAndResize(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	a := p.Lease(4) // takes workers 1..3
	b := p.Lease(4) // nothing free: runs caller-only
	if got := b.Width(); got != 1 {
		t.Fatalf("contended lease Width() = %d, want 1", got)
	}
	want := 99 * 100 / 2
	if got := sumFor(b, 0, 100); got != want {
		t.Fatalf("caller-only lease sum = %d, want %d", got, want)
	}
	a.Close()
	b.Resize(4)
	if got := b.Width(); got != 4 {
		t.Fatalf("after top-up: Width() = %d, want 4", got)
	}
	if got := sumFor(b, 0, 100); got != want {
		t.Fatalf("post-top-up sum = %d, want %d", got, want)
	}
	b.Close()
}

// TestLeaseTopUpOnEffective pins the kernel-entry top-up path: a lease
// granted width 1 under contention (whose regions therefore all run on
// the t == 1 inline paths and never dispatch) must still pick up workers
// freed by other leases the next time a kernel resolves its width.
func TestLeaseTopUpOnEffective(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	a := p.Lease(4)
	b := p.Lease(4) // contended: granted the caller slot only
	if got := b.Width(); got != 1 {
		t.Fatalf("contended Width() = %d, want 1", got)
	}
	a.Close()
	// No explicit Resize: the standing target (4) reconciles at the next
	// Effective resolution, i.e. the next kernel entry.
	if got := b.Effective(0); got != 4 {
		t.Fatalf("Effective(0) after contender closed = %d, want 4", got)
	}
	if got := b.Width(); got != 4 {
		t.Fatalf("Width() after top-up = %d, want 4", got)
	}
	b.Close()
}

// TestTypedNilExecutorFallsBack pins the historical optional-pool idiom:
// a nil *Pool stored in an Executor interface must resolve like a nil
// executor (default pool), not panic.
func TestTypedNilExecutorFallsBack(t *testing.T) {
	var p *Pool
	if got := EffectiveOn(p, 0); got != DefaultThreads() {
		t.Fatalf("EffectiveOn(typed nil, 0) = %d, want %d", got, DefaultThreads())
	}
	if got := OrDefault(p); got != Default() {
		t.Fatalf("OrDefault(typed-nil *Pool) = %v, want the default pool", got)
	}
	var l *Lease
	if got := OrDefault(l); got != Default() {
		t.Fatalf("OrDefault(typed-nil *Lease) = %v, want the default pool", got)
	}
	if got := OrDefault(nil); got != Default() {
		t.Fatalf("OrDefault(nil) = %v, want the default pool", got)
	}
}

// TestKeyedCacheBounded pins the shape-key cap: releases under keys beyond
// maxKeyedShapes are dropped instead of cached, so a pool serving an
// open-ended stream of shapes does not pin scratch forever.
func TestKeyedCacheBounded(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	for i := 0; i < maxKeyedShapes+8; i++ {
		ws := p.AcquireKeyed(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		ws.Release()
	}
	p.wsMu.Lock()
	n := len(p.keyed)
	p.wsMu.Unlock()
	if n > maxKeyedShapes {
		t.Fatalf("%d keyed lists cached, cap is %d", n, maxKeyedShapes)
	}
}

// TestLeasePanicSafety pins the serving-path panic contract: a body panic
// on any logical worker of a lease region — the coordinator or a reserved
// worker goroutine — surfaces as a panic on the dispatching goroutine,
// with the lease and pool still consistent (the next region runs fine).
func TestLeasePanicSafety(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	l := p.Lease(4)
	defer l.Close()
	want := 99 * 100 / 2
	for _, boom := range []int{0, 2} { // coordinator slot and a worker slot
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("panic on logical worker %d was swallowed", boom)
				}
			}()
			l.Run(4, func(w int) {
				if w == boom {
					panic("kernel bug")
				}
			})
		}()
		// The lease must still dispatch correctly after the unwind.
		if got := sumFor(l, 4, 100); got != want {
			t.Fatalf("after panic on worker %d: sum %d, want %d", boom, got, want)
		}
	}
}

// TestLeasesConcurrent runs many leases of one pool concurrently under
// continuous rebalancing; run with -race. Each lease's computation must
// stay correct while its width changes between regions.
func TestLeasesConcurrent(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const nleases = 4
	const iters = 150
	want := 799 * 800 / 2
	leases := make([]*Lease, nleases)
	for i := range leases {
		leases[i] = p.Lease(2)
	}
	var wg sync.WaitGroup
	for i, l := range leases {
		wg.Add(1)
		go func(i int, l *Lease) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				if got := sumFor(l, 0, 800); got != want {
					t.Errorf("lease %d iter %d: sum %d, want %d", i, k, got, want)
					return
				}
			}
		}(i, l)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < iters; k++ {
			for _, l := range leases {
				l.Resize(1 + k%4)
			}
		}
	}()
	wg.Wait()
	for _, l := range leases {
		l.Close()
	}
	if p.nleased != 0 {
		t.Fatalf("%d workers still leased after close", p.nleased)
	}
}

// TestWorkspaceKeyedCache pins that keyed acquisition returns the same
// workspace for the same key and distinct workspaces across keys.
func TestWorkspaceKeyedCache(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	a := p.AcquireKeyed("shapeA")
	a.Arena(0).Float64("probe", 8)[0] = 42
	a.Release()
	b := p.AcquireKeyed("shapeB")
	if b == a {
		t.Fatal("different keys shared a workspace")
	}
	b.Release()
	a2 := p.AcquireKeyed("shapeA")
	if a2 != a {
		t.Fatal("same key did not reuse the cached workspace")
	}
	if got := a2.Arena(0).Float64("probe", 8)[0]; got != 42 {
		t.Fatalf("cached arena contents lost: %v", got)
	}
	a2.Release()

	// Leases route acquisition through their workspace key.
	l := p.Lease(2)
	defer l.Close()
	l.SetWorkspaceKey("shapeA")
	w := l.Acquire()
	if w != a {
		t.Fatal("lease with key did not get the key's cached workspace")
	}
	w.Release()
}
