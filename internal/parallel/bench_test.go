package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkDispatch measures the fixed cost of one parallel region on the
// persistent pool vs the spawn-per-call baseline, across region widths and
// per-worker grain sizes. This is the overhead class the pool runtime
// exists to eliminate: CP-ALS issues thousands of such regions per sweep.
func BenchmarkDispatch(b *testing.B) {
	for _, tw := range []int{2, 4, 8} {
		for _, grain := range []int{0, 1 << 10, 1 << 16} {
			work := func(lo, hi int) float64 {
				s := 0.0
				for i := 0; i < grain; i++ {
					s += float64(i ^ lo ^ hi)
				}
				return s
			}
			var sink atomic.Int64
			body := func(_, lo, hi int) { sink.Add(int64(work(lo, hi))) }
			name := fmt.Sprintf("T=%d/grain=%d", tw, grain)
			b.Run(name+"/pooled", func(b *testing.B) {
				p := NewPool(tw)
				defer p.Close()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(tw, tw, body)
				}
			})
			b.Run(name+"/spawn", func(b *testing.B) {
				p := NewSpawnPool()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(tw, tw, body)
				}
			})
		}
	}
}

// BenchmarkReduceSum measures the parallel reduction on both runtimes.
func BenchmarkReduceSum(b *testing.B) {
	const n = 1 << 18
	parts := make([][]float64, 8)
	for w := range parts {
		parts[w] = make([]float64, n)
	}
	b.Run("pooled", func(b *testing.B) {
		p := NewPool(8)
		defer p.Close()
		b.ReportAllocs()
		b.SetBytes(8 * n * int64(len(parts)))
		for i := 0; i < b.N; i++ {
			p.ReduceSum(8, parts)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		p := NewSpawnPool()
		b.ReportAllocs()
		b.SetBytes(8 * n * int64(len(parts)))
		for i := 0; i < b.N; i++ {
			p.ReduceSum(8, parts)
		}
	})
}
