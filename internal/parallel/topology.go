package parallel

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Topology describes the machine's placement domains — on linux, its NUMA
// nodes — as ordered sets of CPU ids. It is the vocabulary the placed
// runtime speaks: a placed Pool derives every worker slot's domain from the
// topology, leases prefer slot sets within one domain, and the serving
// scheduler prices budgets that would span domains (see serve.CostModel).
//
// A Topology is immutable after construction, so every layer reads it
// without locking. Topologies with one domain are deliberately
// indistinguishable from no topology at all: placement degenerates to the
// flat [0..n) slot model and nothing pins, reorders or prices anything —
// the fallback path for non-NUMA and non-linux hosts.
type Topology struct {
	domains [][]int // CPU ids per domain, each sorted and non-empty
	nodes   []int   // source node number per domain (dense 0.. for synthetic topologies)
	cpus    int     // total CPU count across domains
	slotDom []int   // domain of flattened domain-major CPU position i
}

// sysfsNodeRoot is where linux exposes NUMA nodes.
const sysfsNodeRoot = "/sys/devices/system/node"

// envTopology overrides detection for testing: domain CPU lists separated
// by semicolons, e.g. "0-3;4-7" (two domains of four CPUs). An empty or
// malformed value is ignored.
const envTopology = "MTTKRP_TOPOLOGY"

// DetectTopology resolves the host's placement topology. Resolution order:
// the MTTKRP_TOPOLOGY override (so tests and A/B runs can fake a
// multi-socket machine anywhere), then the linux sysfs node tree, then a
// single-domain fallback covering DefaultThreads CPUs. It never fails:
// malformed input at any layer falls through to the next.
func DetectTopology() *Topology {
	if spec := os.Getenv(envTopology); spec != "" {
		if t, err := ParseTopology(spec); err == nil {
			return t
		}
	}
	if t, err := parseSysfsTopology(sysfsNodeRoot); err == nil {
		return t
	}
	return singleDomain(DefaultThreads())
}

// ParseTopology builds a topology from the MTTKRP_TOPOLOGY spec: one CPU
// list per domain (kernel cpulist syntax, e.g. "0-3,8"), domains separated
// by semicolons. Domains must be non-empty and CPU ids must not repeat.
func ParseTopology(spec string) (*Topology, error) {
	var domains [][]int
	for _, part := range strings.Split(spec, ";") {
		cpus, err := parseCPUList(part)
		if err != nil {
			return nil, fmt.Errorf("parallel: topology spec %q: %v", spec, err)
		}
		domains = append(domains, cpus)
	}
	return newTopology(domains, nil)
}

// parseSysfsTopology reads a /sys/devices/system/node-shaped tree rooted at
// root. Node numbering may be sparse (hotplug), so domains are ordered by
// node number, not renumbered; memory-only nodes (empty cpulist) are
// skipped. Any read or parse failure is an error — the caller falls back.
func parseSysfsTopology(root string) (*Topology, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var nodes []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil || id < 0 {
			continue // "node" prefix on a non-node entry (e.g. "node_list")
		}
		nodes = append(nodes, id)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("parallel: no NUMA nodes under %s", root)
	}
	sort.Ints(nodes)
	var domains [][]int
	var ids []int
	for _, id := range nodes {
		b, err := os.ReadFile(filepath.Join(root, fmt.Sprintf("node%d", id), "cpulist"))
		if err != nil {
			return nil, err
		}
		list := strings.TrimSpace(string(b))
		if list == "" {
			continue // memory-only node: no CPUs to place workers on
		}
		cpus, err := parseCPUList(list)
		if err != nil {
			return nil, err
		}
		domains = append(domains, cpus)
		ids = append(ids, id)
	}
	return newTopology(domains, ids)
}

// parseCPUList parses the kernel cpulist format: comma-separated CPU ids
// and inclusive ranges ("0-3,8,10-11").
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty cpulist")
	}
	var cpus []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		lo, hi, ok := strings.Cut(tok, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil || a < 0 {
			return nil, fmt.Errorf("bad cpulist token %q", tok)
		}
		b := a
		if ok {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil || b < a {
				return nil, fmt.Errorf("bad cpulist range %q", tok)
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus, nil
}

// singleDomain is the non-NUMA fallback: one domain of n CPUs. Placement
// over a single domain is behaviorally identical to no placement.
func singleDomain(n int) *Topology {
	if n < 1 {
		n = 1
	}
	cpus := make([]int, n)
	for i := range cpus {
		cpus[i] = i
	}
	t, _ := newTopology([][]int{cpus}, nil)
	return t
}

// newTopology validates and freezes a domain list: every domain non-empty,
// CPUs sorted within domains, no CPU claimed twice. nodes supplies the
// source node numbers (nil means dense 0..len-1).
func newTopology(domains [][]int, nodes []int) (*Topology, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("parallel: topology has no domains")
	}
	t := &Topology{domains: make([][]int, len(domains)), nodes: nodes}
	if t.nodes == nil {
		t.nodes = make([]int, len(domains))
		for d := range t.nodes {
			t.nodes[d] = d
		}
	}
	seen := make(map[int]bool)
	for d, cpus := range domains {
		if len(cpus) == 0 {
			return nil, fmt.Errorf("parallel: topology domain %d has no CPUs", d)
		}
		own := append([]int(nil), cpus...)
		sort.Ints(own)
		for _, c := range own {
			if seen[c] {
				return nil, fmt.Errorf("parallel: CPU %d in more than one topology domain", c)
			}
			seen[c] = true
		}
		t.domains[d] = own
		t.cpus += len(own)
	}
	// Flatten domain-major: slot w of any team maps to CPU position
	// w mod cpus, giving contiguous per-domain slot blocks for teams up to
	// the machine size and a stable mapping under pool growth.
	t.slotDom = make([]int, 0, t.cpus)
	for d, cpus := range t.domains {
		for range cpus {
			t.slotDom = append(t.slotDom, d)
		}
	}
	return t, nil
}

// Domains returns the number of placement domains.
func (t *Topology) Domains() int { return len(t.domains) }

// CPUs returns the total CPU count across all domains.
func (t *Topology) CPUs() int { return t.cpus }

// NodeID returns the source node number of domain d (the sysfs node number
// on linux; d itself for synthetic topologies).
func (t *Topology) NodeID(d int) int { return t.nodes[d] }

// DomainCPUs returns domain d's CPU ids. The slice is owned by the
// topology; callers must not mutate it.
func (t *Topology) DomainCPUs(d int) []int { return t.domains[d] }

// SlotDomain maps a worker slot id to its placement domain. Slots lay out
// domain-major — the first len(domain 0) slots belong to domain 0, the next
// block to domain 1, and so on — wrapping for teams wider than the machine.
// The mapping depends only on the topology, so it is stable across pool
// growth and identical for every pool sharing the topology.
//
//mttkrp:noalloc
func (t *Topology) SlotDomain(slot int) int {
	if slot < 0 {
		slot = 0
	}
	return t.slotDom[slot%t.cpus]
}

// String renders the topology for banners and logs, e.g.
// "2 domains: node0=0-3 node1=4-7".
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d domain", len(t.domains))
	if len(t.domains) != 1 {
		b.WriteByte('s')
	}
	b.WriteString(":")
	for d, cpus := range t.domains {
		fmt.Fprintf(&b, " node%d=%s", t.nodes[d], formatCPUList(cpus))
	}
	return b.String()
}

// formatCPUList renders sorted CPU ids back into kernel cpulist syntax.
func formatCPUList(cpus []int) string {
	var b strings.Builder
	for i := 0; i < len(cpus); {
		j := i
		for j+1 < len(cpus) && cpus[j+1] == cpus[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", cpus[i], cpus[j])
		} else {
			fmt.Fprintf(&b, "%d", cpus[i])
		}
		i = j + 1
	}
	return b.String()
}
