// Package parallel provides the shared-memory execution primitives used by
// the MTTKRP kernels: contiguous static partitioning of index ranges across
// a fixed number of workers, per-worker private buffers, and parallel
// reductions. It mirrors the OpenMP "parallel for" + private accumulator +
// reduction structure of the paper's Algorithm 3 using goroutines.
//
// Execution is built on persistent worker pools (see Pool): workers are
// spawned once and reused across parallel regions, and kernels lease
// per-worker scratch arenas from reusable Workspaces, so steady-state
// dispatch allocates nothing. The package-level For, Run, ForDynamic and
// ReduceSum are thin wrappers over a lazily-created default pool, which
// keeps every historical call site working unchanged.
package parallel

import "runtime"

// DefaultThreads returns the default worker count, the number of CPUs the
// runtime will schedule on (GOMAXPROCS).
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// Effective resolves a requested worker count to the width a dispatch
// actually uses: t itself when positive, DefaultThreads() (GOMAXPROCS)
// when t <= 0. This is the single t = 0 resolution rule for the whole
// library — blas, core and krp all resolve through it (directly or via
// Clamp/EffectiveOn) instead of repeating the clamp.
//
// Note that resolution is independent of any pool's current team size:
// Pool.Workers() reports how many persistent workers exist right now,
// while Effective(0) reports the width a default dispatch will use (the
// pool grows on demand to satisfy it). Leases are the exception — their
// Effective caps the width at the granted budget; see Lease.
func Effective(t int) int {
	if t <= 0 {
		return DefaultThreads()
	}
	return t
}

// EffectiveOn resolves a requested worker count against an executor's own
// width rule; a nil executor resolves with Effective. Pools resolve like
// Effective (the team is not a cap); leases cap at their granted width.
func EffectiveOn(p Executor, t int) int {
	if p = nilToNone(p); p == nil {
		return Effective(t)
	}
	return p.Effective(t)
}

// nilToNone normalizes typed-nil executors to a plain nil interface. A
// caller holding an unset *Pool variable (the historical optional-pool
// idiom) produces a non-nil interface wrapping a nil pointer when
// assigning it to an Executor; treating that as "no executor" preserves
// the old *Pool == nil fallback semantics.
func nilToNone(p Executor) Executor {
	switch v := p.(type) {
	case *Pool:
		if v == nil {
			return nil
		}
	case *Lease:
		if v == nil {
			return nil
		}
	}
	return p
}

// OrDefault resolves an optional execution context: nil (including a
// typed-nil *Pool or *Lease) selects the process-wide default pool.
func OrDefault(p Executor) Executor {
	if p = nilToNone(p); p == nil {
		return Default()
	}
	return p
}

// Reconciler is implemented by executors whose granted width can be
// retargeted mid-request by an external scheduler (today: *Lease).
// Reconcile applies any pending width change at a safe point and returns
// the resulting width.
type Reconciler interface {
	Reconcile() int
}

// Reconcile applies a pending budget change on executors that support it
// and returns the executor's current width either way. Kernels call it at
// phase boundaries (between ALS sweeps, between the modes of a sweep) so
// an admission policy's mid-request Resize takes effect at the next safe
// point; on a plain Pool it is just Workers().
func Reconcile(p Executor) int {
	p = OrDefault(p)
	if r, ok := p.(Reconciler); ok {
		return r.Reconcile()
	}
	return p.Workers()
}

// Clamp bounds t to [1, n] when n > 0; a non-positive t selects
// DefaultThreads (the Effective rule). It never returns more workers than
// items so that every worker owns a non-empty contiguous range.
func Clamp(t, n int) int {
	t = Effective(t)
	if n > 0 && t > n {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// Range describes a contiguous half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into t contiguous ranges whose sizes differ by at
// most one, matching the static block schedule used throughout the paper.
// It always returns exactly t ranges; trailing ranges may be empty when
// t > n.
func Split(n, t int) []Range {
	if t < 1 {
		t = 1
	}
	ranges := make([]Range, t)
	base := n / t
	rem := n % t
	lo := 0
	for i := range ranges {
		size := base
		if i < rem {
			size++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return ranges
}

// For executes body over [0, n) using t workers, giving each worker a
// contiguous block. body receives the worker index (0 ≤ worker < t) and its
// half-open range. It blocks until all workers finish. With t == 1 the body
// runs on the calling goroutine, so sequential code paths pay no scheduling
// cost. Parallel execution happens on the default persistent pool.
func For(t, n int, body func(worker, lo, hi int)) {
	Default().For(t, n, body)
}

// ForDynamic executes body over [0, n) with t workers pulling indices in
// chunks of the given size from a shared counter. It is used where block
// work is irregular (for example internal-mode 1-step MTTKRP when I^R_n is
// barely larger than the worker count).
func ForDynamic(t, n, chunk int, body func(worker, lo, hi int)) {
	Default().ForDynamic(t, n, chunk, body)
}

// Run launches t copies of body concurrently, one per worker, and waits.
// It is the "parallel region" primitive: each worker decides its own work
// from its index.
func Run(t int, body func(worker int)) {
	Default().Run(t, body)
}

// ReduceSum accumulates the per-worker buffers parts[1:] into parts[0] and
// returns parts[0]. The element-range of the reduction is itself
// parallelized over t workers, mirroring the parallel reduction at the end
// of Algorithm 3. All buffers must have equal length; a length mismatch
// panics immediately instead of corrupting the accumulator.
func ReduceSum(t int, parts [][]float64) []float64 {
	return Default().ReduceSum(t, parts)
}
