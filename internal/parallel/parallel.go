// Package parallel provides the shared-memory execution primitives used by
// the MTTKRP kernels: contiguous static partitioning of index ranges across
// a fixed number of workers, per-worker private buffers, and parallel
// reductions. It mirrors the OpenMP "parallel for" + private accumulator +
// reduction structure of the paper's Algorithm 3 using goroutines.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultThreads returns the default worker count, the number of CPUs the
// runtime will schedule on (GOMAXPROCS).
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// Clamp bounds t to [1, n] when n > 0; a non-positive t selects
// DefaultThreads. It never returns more workers than items so that every
// worker owns a non-empty contiguous range.
func Clamp(t, n int) int {
	if t <= 0 {
		t = DefaultThreads()
	}
	if n > 0 && t > n {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// Range describes a contiguous half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into t contiguous ranges whose sizes differ by at
// most one, matching the static block schedule used throughout the paper.
// It always returns exactly t ranges; trailing ranges may be empty when
// t > n.
func Split(n, t int) []Range {
	if t < 1 {
		t = 1
	}
	ranges := make([]Range, t)
	base := n / t
	rem := n % t
	lo := 0
	for i := range ranges {
		size := base
		if i < rem {
			size++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return ranges
}

// For executes body over [0, n) using t workers, giving each worker a
// contiguous block. body receives the worker index (0 ≤ worker < t) and its
// half-open range. It blocks until all workers finish. With t == 1 the body
// runs on the calling goroutine, so sequential code paths pay no scheduling
// cost.
func For(t, n int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	ranges := Split(n, t)
	var wg sync.WaitGroup
	for w := 1; w < t; w++ {
		r := ranges[w]
		if r.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, r Range) {
			defer wg.Done()
			body(w, r.Lo, r.Hi)
		}(w, r)
	}
	if ranges[0].Len() > 0 {
		body(0, ranges[0].Lo, ranges[0].Hi)
	}
	wg.Wait()
}

// ForDynamic executes body over [0, n) with t workers pulling indices in
// chunks of the given size from a shared counter. It is used where block
// work is irregular (for example internal-mode 1-step MTTKRP when I^R_n is
// barely larger than the worker count).
func ForDynamic(t, n, chunk int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	var mu sync.Mutex
	next := 0
	take := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo := next
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for w := 0; w < t; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Run launches t copies of body concurrently, one per worker, and waits.
// It is the "parallel region" primitive: each worker decides its own work
// from its index.
func Run(t int, body func(worker int)) {
	if t <= 0 {
		t = DefaultThreads()
	}
	if t == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	body(0)
	wg.Wait()
}

// ReduceSum accumulates the per-worker buffers parts[1:] into parts[0] and
// returns parts[0]. The element-range of the reduction is itself
// parallelized over t workers, mirroring the parallel reduction at the end
// of Algorithm 3. All buffers must have equal length.
func ReduceSum(t int, parts [][]float64) []float64 {
	if len(parts) == 0 {
		return nil
	}
	dst := parts[0]
	if len(parts) == 1 {
		return dst
	}
	For(t, len(dst), func(_, lo, hi int) {
		for _, p := range parts[1:] {
			for i := lo; i < hi; i++ {
				dst[i] += p[i]
			}
		}
	})
	return dst
}
