//go:build !linux

package parallel

// pinThread is a no-op off linux: placement still steers slot choice and
// first-touch, but workers float wherever the OS schedules them.
func pinThread(cpus []int) bool { return false }

// threadAffinity is unavailable off linux.
func threadAffinity() []int { return nil }
