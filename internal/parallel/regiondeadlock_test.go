package parallel

import (
	"testing"
	"time"
)

// TestRegionBodyBlockingSendDeadlocksLease constructs, by hand, the
// deadlock the regionblock analyzer exists to prevent: a region body that
// performs a blocking channel send with no receiver. The dispatch barrier
// never completes, so the dispatching goroutine — and with it the lease's
// region mutex — hangs until something external drains the channel. The
// test asserts the hang is real (no completion within a deadline), then
// drains the channel and asserts the region finishes cleanly, proving the
// blockage was precisely the body's send.
//
// The region body below is the one shape of code `mttkrp-lint` refuses to
// accept in this repository; it lives in a test (which the analyzers skip)
// for exactly that reason.
func TestRegionBodyBlockingSendDeadlocksLease(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	l := p.Lease(2)

	const width = 2
	ch := make(chan int) // unbuffered, and nobody is receiving
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Run(width, func(w int) {
			ch <- w // blocks: the barrier can never complete
		})
	}()

	select {
	case <-done:
		t.Fatal("region with a blocking send completed; expected it to deadlock")
	case <-time.After(100 * time.Millisecond):
		// Deadlocked, as the analyzer predicts. While the region hangs it
		// also holds the lease's region mutex, so a concurrent Reconcile
		// (the scheduler's phase-boundary hook) would queue behind it —
		// this is why the invariant is machine-checked rather than left to
		// review.
	}

	// An external rescuer drains the channel; the barrier completes and
	// the dispatch returns. This is the part a deadlocked server does not
	// have.
	for i := 0; i < width; i++ {
		<-ch
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("region did not complete after draining the channel")
	}
	l.Close()
}
