package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		t, n, want int
	}{
		{0, 10, DefaultThreads()},
		{-3, 10, DefaultThreads()},
		{4, 10, 4},
		{16, 4, 4},
		{5, 0, 5},
		{3, 3, 3},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.t, c.n); got != c.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", c.t, c.n, got, c.want)
		}
	}
}

func TestClampNeverExceedsItems(t *testing.T) {
	f := func(tt, n uint8) bool {
		nn := int(n)
		got := Clamp(int(tt), nn)
		if got < 1 {
			return false
		}
		if nn > 0 && got > nn {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitCoversRangeExactly(t *testing.T) {
	f := func(n16 uint16, t8 uint8) bool {
		n := int(n16 % 4096)
		tw := int(t8%64) + 1
		ranges := Split(n, tw)
		if len(ranges) != tw {
			return false
		}
		prev := 0
		total := 0
		for _, r := range ranges {
			if r.Lo != prev || r.Hi < r.Lo {
				return false
			}
			total += r.Len()
			prev = r.Hi
		}
		return total == n && prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitBalanced(t *testing.T) {
	ranges := Split(10, 3)
	sizes := []int{4, 3, 3}
	for i, r := range ranges {
		if r.Len() != sizes[i] {
			t.Errorf("range %d has size %d, want %d", i, r.Len(), sizes[i])
		}
	}
	// Sizes must differ by at most one for any split.
	for n := 0; n < 50; n++ {
		for tw := 1; tw < 9; tw++ {
			min, max := n+1, -1
			for _, r := range Split(n, tw) {
				if r.Len() < min {
					min = r.Len()
				}
				if r.Len() > max {
					max = r.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("Split(%d,%d) unbalanced: min %d max %d", n, tw, min, max)
			}
		}
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7} {
		n := 1000
		seen := make([]int32, n)
		For(threads, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, c)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(4, 0, func(_, _, _ int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	n := 64
	threads := 4
	var ids [4]int32
	For(threads, n, func(w, lo, hi int) {
		atomic.AddInt32(&ids[w], 1)
	})
	total := int32(0)
	for _, c := range ids {
		if c > 1 {
			t.Errorf("worker invoked %d times, want at most 1", c)
		}
		total += c
	}
	if total == 0 {
		t.Error("no workers ran")
	}
}

func TestForDynamicVisitsEachIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 5} {
		for _, chunk := range []int{1, 3, 17, 1000} {
			n := 237
			seen := make([]int32, n)
			ForDynamic(threads, n, chunk, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("threads=%d chunk=%d: index %d visited %d times", threads, chunk, i, c)
				}
			}
		}
	}
}

func TestRunAllWorkersExecute(t *testing.T) {
	for _, threads := range []int{1, 2, 6} {
		var count int32
		Run(threads, func(w int) {
			if w < 0 || w >= threads {
				t.Errorf("worker id %d out of range", w)
			}
			atomic.AddInt32(&count, 1)
		})
		if int(count) != threads {
			t.Fatalf("Run(%d) executed %d bodies", threads, count)
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 513
	parts := make([][]float64, 4)
	for w := range parts {
		parts[w] = make([]float64, n)
		for i := range parts[w] {
			parts[w][i] = float64(w + 1)
		}
	}
	got := ReduceSum(2, parts)
	for i, v := range got {
		if v != 1+2+3+4 {
			t.Fatalf("element %d = %v, want 10", i, v)
		}
	}
}

func TestReduceSumSingleAndEmpty(t *testing.T) {
	if got := ReduceSum(2, nil); got != nil {
		t.Errorf("ReduceSum(nil) = %v, want nil", got)
	}
	one := [][]float64{{1, 2, 3}}
	got := ReduceSum(2, one)
	if &got[0] != &one[0][0] {
		t.Error("single-buffer reduce should return the buffer itself")
	}
}

func TestReduceSumMatchesSequential(t *testing.T) {
	f := func(seed uint8) bool {
		n := 97
		w := int(seed%5) + 1
		parts := make([][]float64, w)
		want := make([]float64, n)
		for k := range parts {
			parts[k] = make([]float64, n)
			for i := range parts[k] {
				v := float64((i*31+k*17+int(seed))%101) / 7
				parts[k][i] = v
				want[i] += v
			}
		}
		got := ReduceSum(3, parts)
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
