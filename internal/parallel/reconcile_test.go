package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolResizeGrowPath pins the grow side of Resize: a pool whose
// unleased capacity is exhausted grows on demand, and a starved lease tops
// up from the grown team at its next reconcile.
func TestPoolResizeGrowPath(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	a := p.Lease(4) // reserves workers 1..3
	b := p.Lease(4) // best-effort: nothing left but the caller slot
	if a.Width() != 4 || b.Width() != 1 {
		t.Fatalf("initial widths a=%d b=%d, want 4 and 1", a.Width(), b.Width())
	}

	p.Resize(8)
	if w := p.Workers(); w != 8 {
		t.Fatalf("Workers after Resize(8) = %d, want 8", w)
	}
	// b's standing target (4) is satisfiable now; Reconcile applies it.
	if w := b.Reconcile(); w != 4 {
		t.Fatalf("b.Reconcile after pool grow = %d, want 4", w)
	}
	// Both leases dispatch concurrently on disjoint grown workers.
	var total atomic.Int64
	var wg sync.WaitGroup
	for _, l := range []*Lease{a, b} {
		wg.Add(1)
		go func(l *Lease) {
			defer wg.Done()
			l.For(0, 1000, func(_, lo, hi int) { total.Add(int64(hi - lo)) })
		}(l)
	}
	wg.Wait()
	if total.Load() != 2000 {
		t.Fatalf("dispatched %d items, want 2000", total.Load())
	}
	a.Close()
	b.Close()

	// Shrink back below the grown width, then grow again: the team must
	// follow (no stale retired channels).
	p.Resize(2)
	if w := p.Workers(); w != 2 {
		t.Fatalf("Workers after Resize(2) = %d, want 2", w)
	}
	p.Resize(6)
	if w := p.Workers(); w != 6 {
		t.Fatalf("Workers after re-grow Resize(6) = %d, want 6", w)
	}
	c := p.Lease(6)
	if c.Width() != 6 {
		t.Fatalf("lease width on the re-grown team = %d, want 6", c.Width())
	}
	c.Close()
}

// TestLeaseReconcileChurn drives a long-lived lease through repeated
// regions with phase-boundary Reconcile calls while peer leases are
// admitted and closed and the admission target is resized up and down —
// the serving scheduler's rebalance pattern (shrink while sweeping, grow
// after a peer drains). Run under -race this also pins that Reconcile,
// Resize, peer reservation and dispatch never touch shared state
// unsynchronized.
func TestLeaseReconcileChurn(t *testing.T) {
	const width = 8
	p := NewPool(width)
	defer p.Close()
	main := p.Lease(width)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	// Peer churn: admit a lease, run one region, close it.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			peer := p.Lease(1 + i%4)
			var n atomic.Int64
			peer.For(0, 64, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
			if n.Load() != 64 {
				t.Error("peer region lost work")
			}
			peer.Close()
		}
	}()
	// Scheduler churn: retarget the main lease mid-flight.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			main.Resize(1 + i%width)
		}
	}()

	// The request: regions separated by phase-boundary reconciles.
	for iter := 0; iter < 400; iter++ {
		var n atomic.Int64
		main.For(0, 512, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 512 {
			t.Fatalf("iter %d: region executed %d of 512 items (shrink lost work)", iter, n.Load())
		}
		if w := main.Reconcile(); w < 1 || w > width {
			t.Fatalf("iter %d: reconciled width %d out of [1, %d]", iter, w, width)
		}
	}
	close(stop)
	churn.Wait()

	// Grow after the peers drained: the full width is reservable again.
	main.Resize(width)
	if w := main.Reconcile(); w != width {
		t.Fatalf("post-churn reconcile = %d, want the full width %d", w, width)
	}
	main.Close()
}
