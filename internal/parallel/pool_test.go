package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// poolsUnderTest returns a persistent pool, a spawn-per-call pool and the
// default pool, so every dispatch primitive is exercised on all three
// runtimes.
func poolsUnderTest(t *testing.T) map[string]*Pool {
	t.Helper()
	p := NewPool(4)
	t.Cleanup(p.Close)
	return map[string]*Pool{
		"persistent": p,
		"spawn":      NewSpawnPool(),
		"default":    Default(),
	}
}

func TestPoolForCoversRangeOnce(t *testing.T) {
	for name, p := range poolsUnderTest(t) {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, tw := range []int{1, 2, 4, 9} {
				hits := make([]int32, n)
				p.For(tw, n, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("%s: For(t=%d,n=%d): index %d visited %d times", name, tw, n, i, h)
					}
				}
			}
		}
	}
}

func TestPoolForDynamicCoversRangeOnce(t *testing.T) {
	for name, p := range poolsUnderTest(t) {
		for _, n := range []int{0, 1, 7, 64, 501} {
			for _, chunk := range []int{0, 1, 3, 100} {
				hits := make([]int32, n)
				p.ForDynamic(4, n, chunk, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("%s: ForDynamic(n=%d,chunk=%d): index %d visited %d times", name, n, chunk, i, h)
					}
				}
			}
		}
	}
}

func TestPoolRunDistinctWorkers(t *testing.T) {
	for name, p := range poolsUnderTest(t) {
		const tw = 4
		var seen [tw]int32
		p.Run(tw, func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, s := range seen {
			if s != 1 {
				t.Fatalf("%s: worker %d ran %d times", name, w, s)
			}
		}
	}
}

func TestPoolGrowsBeyondInitialWorkers(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var seen [8]int32
	p.Run(8, func(w int) { atomic.AddInt32(&seen[w], 1) })
	for w, s := range seen {
		if s != 1 {
			t.Fatalf("worker %d ran %d times after growth", w, s)
		}
	}
	if got := p.Workers(); got != 8 {
		t.Fatalf("Workers() = %d after growing to 8", got)
	}
}

func TestPoolSerialDispatchReuse(t *testing.T) {
	// Thousands of back-to-back dispatches on the same pool must behave
	// identically (this is the CP-ALS usage pattern).
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for i := 0; i < 2000; i++ {
		p.For(4, 100, func(_, lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
	if got := total.Load(); got != 200000 {
		t.Fatalf("total = %d, want 200000", got)
	}
}

func TestBlockRangeMatchesSplit(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100, 4096} {
		for tw := 1; tw <= 9; tw++ {
			ranges := Split(n, tw)
			for w := 0; w < tw; w++ {
				lo, hi := BlockRange(n, tw, w)
				if lo != ranges[w].Lo || hi != ranges[w].Hi {
					t.Fatalf("BlockRange(%d,%d,%d) = [%d,%d), Split gives [%d,%d)",
						n, tw, w, lo, hi, ranges[w].Lo, ranges[w].Hi)
				}
			}
		}
	}
}

func TestReduceSumValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReduceSum with unequal buffer lengths did not panic")
		}
	}()
	ReduceSum(2, [][]float64{make([]float64, 4), make([]float64, 3)})
}

func TestReduceSumMethodValidatesLengths(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Pool.ReduceSum with unequal buffer lengths did not panic")
		}
	}()
	p.ReduceSum(2, [][]float64{make([]float64, 2), make([]float64, 2), make([]float64, 5)})
}

func TestReduceSumOnPools(t *testing.T) {
	for name, p := range poolsUnderTest(t) {
		parts := make([][]float64, 4)
		for w := range parts {
			parts[w] = make([]float64, 33)
			for i := range parts[w] {
				parts[w][i] = float64(w + 1)
			}
		}
		got := p.ReduceSum(3, parts)
		for i, v := range got {
			if v != 1+2+3+4 {
				t.Fatalf("%s: ReduceSum[%d] = %v, want 10", name, i, v)
			}
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ws := p.Acquire()
	buf := ws.Arena(0).Float64("test", 128)
	buf[0] = 42
	ws.Release()

	ws2 := p.Acquire()
	buf2 := ws2.Arena(0).Float64("test", 128)
	if &buf[0] != &buf2[0] {
		t.Error("workspace free-list did not hand back the same arena buffer")
	}
	if buf2[0] != 42 {
		t.Error("arena contents were not preserved across release/acquire")
	}
	// Growing the same tag must still work.
	big := ws2.Arena(0).Float64("test", 4096)
	if len(big) != 4096 {
		t.Fatalf("grown buffer has length %d", len(big))
	}
	ws2.Release()
}

func TestWorkspaceDistinctWhileHeld(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	a := p.Acquire()
	b := p.Acquire()
	if a == b {
		t.Fatal("two concurrently held workspaces are the same object")
	}
	ab := a.Arena(0).Float64("x", 16)
	bb := b.Arena(0).Float64("x", 16)
	if &ab[0] == &bb[0] {
		t.Fatal("two held workspaces share an arena buffer")
	}
	a.Release()
	b.Release()
}

func TestFrameCachedPerWorkspace(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ws := p.Acquire()
	defer ws.Release()
	type frame struct{ n int }
	built := 0
	build := func() any { built++; return &frame{} }
	f1 := ws.Frame("k", build).(*frame)
	f1.n = 7
	f2 := ws.Frame("k", build).(*frame)
	if f1 != f2 || f2.n != 7 || built != 1 {
		t.Fatalf("frame not cached: f1=%p f2=%p built=%d", f1, f2, built)
	}
}

func TestPoolDispatchSteadyStateAllocFree(t *testing.T) {
	// The dispatch path itself must not allocate when the body closure is
	// pre-bound (the kernel-frame pattern): this is what makes whole-kernel
	// zero-alloc steady state possible.
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	body := func(_, lo, hi int) { sink.Add(int64(hi - lo)) }
	runBody := func(w int) { sink.Add(int64(w)) }
	p.For(4, 64, body)
	p.Run(4, runBody)
	parts := [][]float64{make([]float64, 256), make([]float64, 256)}

	if a := testing.AllocsPerRun(50, func() { p.For(4, 64, body) }); a > 0 {
		t.Errorf("Pool.For allocates %.1f/op with a pre-bound body", a)
	}
	if a := testing.AllocsPerRun(50, func() { p.Run(4, runBody) }); a > 0 {
		t.Errorf("Pool.Run allocates %.1f/op with a pre-bound body", a)
	}
	if a := testing.AllocsPerRun(50, func() { p.ForDynamic(4, 64, 8, body) }); a > 0 {
		t.Errorf("Pool.ForDynamic allocates %.1f/op with a pre-bound body", a)
	}
	if a := testing.AllocsPerRun(50, func() { p.ReduceSum(4, parts) }); a > 0 {
		t.Errorf("Pool.ReduceSum allocates %.1f/op", a)
	}
}

func TestForDynamicConcurrentDispatches(t *testing.T) {
	// Two goroutines issuing ForDynamic on the same pool: the shared chunk
	// counter is reset under the dispatch mutex, so each region must visit
	// its full range exactly once (a reset outside the lock would let one
	// region observe the other's exhausted counter and do nothing).
	p := NewPool(4)
	defer p.Close()
	const n = 257
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				hits := make([]int32, n)
				p.ForDynamic(4, n, 16, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Errorf("index %d visited %d times", i, h)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloseSpawnPoolIsNoOp(t *testing.T) {
	p := NewSpawnPool()
	p.Close() // must not panic: spawn pools have no persistent workers
	var ran atomic.Int32
	p.Run(2, func(int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Fatalf("spawn pool ran %d workers after Close", ran.Load())
	}
}

func TestClosedPoolPanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("dispatch on a closed pool did not panic")
		}
	}()
	p.Run(2, func(int) {})
}
