package parallel

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// mustTopo parses a MTTKRP_TOPOLOGY-style spec or fails the test.
func mustTopo(t *testing.T, spec string) *Topology {
	t.Helper()
	topo, err := ParseTopology(spec)
	if err != nil {
		t.Fatalf("ParseTopology(%q): %v", spec, err)
	}
	return topo
}

func TestTopologyParseSpec(t *testing.T) {
	topo := mustTopo(t, "0-3;4-7")
	if topo.Domains() != 2 || topo.CPUs() != 8 {
		t.Fatalf("got %d domains / %d CPUs, want 2 / 8", topo.Domains(), topo.CPUs())
	}
	if got := topo.DomainCPUs(1); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Fatalf("domain 1 CPUs = %v, want [4 5 6 7]", got)
	}

	// Mixed ranges and single ids, unsorted input: CPUs come back sorted
	// within the domain.
	topo = mustTopo(t, "8,0-2;5,3-4")
	if topo.Domains() != 2 || topo.CPUs() != 7 {
		t.Fatalf("got %d domains / %d CPUs, want 2 / 7", topo.Domains(), topo.CPUs())
	}
	if got := topo.DomainCPUs(0); got[0] != 0 || got[3] != 8 {
		t.Fatalf("domain 0 CPUs = %v, want sorted [0 1 2 8]", got)
	}

	for _, bad := range []string{
		"",        // empty spec
		"0-3;",    // empty domain
		"0-3;2-5", // CPU 2 and 3 in two domains
		"0-",      // open range
		"3-1",     // inverted range
		"a-b",     // not numbers
		"-2",      // negative
	} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q): want error, got none", bad)
		}
	}
}

// writeNodeTree materializes a fake /sys/devices/system/node tree: one
// node<id> directory per entry, each with a cpulist file.
func writeNodeTree(t *testing.T, nodes map[int]string, extra ...string) string {
	t.Helper()
	root := t.TempDir()
	for id, cpulist := range nodes {
		dir := filepath.Join(root, "node"+strconv.Itoa(id))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "cpulist"), []byte(cpulist+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range extra {
		if err := os.WriteFile(filepath.Join(root, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestTopologySysfsSingleNode(t *testing.T) {
	root := writeNodeTree(t, map[int]string{0: "0-3"})
	topo, err := parseSysfsTopology(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Domains() != 1 || topo.CPUs() != 4 || topo.NodeID(0) != 0 {
		t.Fatalf("got %d domains / %d CPUs / node %d, want 1 / 4 / 0", topo.Domains(), topo.CPUs(), topo.NodeID(0))
	}
}

func TestTopologySysfsTwoNodes(t *testing.T) {
	// "node"-prefixed non-node entries (node_list here mimics sysfs's
	// has_cpu/possible files) must not be mistaken for nodes.
	root := writeNodeTree(t, map[int]string{0: "0-3", 1: "4-7"}, "node_list")
	topo, err := parseSysfsTopology(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Domains() != 2 || topo.CPUs() != 8 {
		t.Fatalf("got %d domains / %d CPUs, want 2 / 8", topo.Domains(), topo.CPUs())
	}
	if topo.NodeID(0) != 0 || topo.NodeID(1) != 1 {
		t.Fatalf("node ids = %d, %d, want 0, 1", topo.NodeID(0), topo.NodeID(1))
	}
}

// TestTopologySysfsSparseNodes pins hotplug-style numbering: node0 and
// node3 with no node1/node2. Domains order by node number and keep the
// source ids.
func TestTopologySysfsSparseNodes(t *testing.T) {
	root := writeNodeTree(t, map[int]string{3: "0-1", 0: "2-3"})
	topo, err := parseSysfsTopology(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Domains() != 2 {
		t.Fatalf("got %d domains, want 2", topo.Domains())
	}
	if topo.NodeID(0) != 0 || topo.NodeID(1) != 3 {
		t.Fatalf("node ids = %d, %d, want 0, 3 (ordered by node number)", topo.NodeID(0), topo.NodeID(1))
	}
	if got := topo.DomainCPUs(0); got[0] != 2 {
		t.Fatalf("domain of node0 starts at CPU %d, want 2", got[0])
	}
}

// TestTopologySysfsMemoryOnlyNode pins that CPU-less (memory-only) nodes
// are skipped rather than failing detection or producing empty domains.
func TestTopologySysfsMemoryOnlyNode(t *testing.T) {
	root := writeNodeTree(t, map[int]string{0: "0-3", 1: ""})
	topo, err := parseSysfsTopology(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Domains() != 1 || topo.CPUs() != 4 {
		t.Fatalf("got %d domains / %d CPUs, want 1 / 4 (memory-only node skipped)", topo.Domains(), topo.CPUs())
	}
}

// TestTopologySysfsMalformed pins the fallback contract: a corrupt tree is
// an error from the parser (so DetectTopology falls through), never a
// panic or a bogus topology.
func TestTopologySysfsMalformed(t *testing.T) {
	if _, err := parseSysfsTopology(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing root: want error")
	}
	if _, err := parseSysfsTopology(writeNodeTree(t, map[int]string{0: "zebra"})); err == nil {
		t.Error("garbage cpulist: want error")
	}
	if _, err := parseSysfsTopology(writeNodeTree(t, map[int]string{0: "0-1", 1: "1-2"})); err == nil {
		t.Error("overlapping cpulists: want error")
	}
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "node0"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := parseSysfsTopology(root); err == nil {
		t.Error("node dir without cpulist: want error")
	}
}

func TestTopologyDetectEnvOverride(t *testing.T) {
	t.Setenv(envTopology, "0-1;2-3")
	topo := DetectTopology()
	if topo.Domains() != 2 || topo.CPUs() != 4 {
		t.Fatalf("env override: got %d domains / %d CPUs, want 2 / 4", topo.Domains(), topo.CPUs())
	}

	// A malformed override is ignored, falling through to host detection,
	// which must always produce something usable.
	t.Setenv(envTopology, "not;a;topology")
	topo = DetectTopology()
	if topo == nil || topo.Domains() < 1 || topo.CPUs() < 1 {
		t.Fatalf("malformed env override: got %v, want a usable host topology", topo)
	}
}

// TestTopologySlotDomains pins the slot→domain rule: domain-major
// contiguous blocks, wrapping for slots beyond the machine width, stable
// regardless of team size.
func TestTopologySlotDomains(t *testing.T) {
	topo := mustTopo(t, "0-2;3-5")
	want := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	for slot, dom := range want {
		if got := topo.SlotDomain(slot); got != dom {
			t.Errorf("SlotDomain(%d) = %d, want %d", slot, got, dom)
		}
	}
	if got := topo.SlotDomain(-5); got != 0 {
		t.Errorf("SlotDomain(-5) = %d, want 0", got)
	}
}

func TestTopologyString(t *testing.T) {
	if got := mustTopo(t, "0-3;4-7,9").String(); got != "2 domains: node0=0-3 node1=4-7,9" {
		t.Fatalf("String() = %q", got)
	}
	if got := singleDomain(4).String(); got != "1 domain: node0=0-3" {
		t.Fatalf("String() = %q", got)
	}
}
