package parallel

// Workspace is a reusable set of per-worker scratch arenas plus cached
// kernel state ("frames"). Kernels acquire a workspace from a pool at entry
// and release it on exit; the free-list hands the same workspace back on
// the next call, so a steady stream of same-shaped kernel invocations
// allocates nothing after warmup — the goroutine analogue of OpenMP
// threadprivate buffers that live for the whole program.
//
// A workspace is owned by exactly one computation at a time. During a
// dispatch, arena w may be touched only by worker w (the dispatch barrier
// orders those accesses against the coordinator's).
type Workspace struct {
	pool   *Pool
	key    string // free list this workspace returns to ("" = general)
	arenas []*Arena
	plan   *Arena // dedicated slot for batch-scoped shared state (PlanArena)
	frames map[string]any
}

// Acquire returns a workspace from the pool's general free-list, or a
// fresh one if none is available. Pair it with Release.
func (p *Pool) Acquire() *Workspace {
	return p.AcquireKeyed("")
}

// AcquireKeyed returns a workspace from the free list dedicated to key
// ("" selects the pool's general list). Keyed lists are the
// cross-request workspace cache of shape-batched serving: every request
// acquired under one shape key gets a workspace whose buffers and kernel
// frames were warmed by previous same-shape requests, regardless of which
// lease or goroutine executes it. Release returns the workspace to its
// key's list.
func (p *Pool) AcquireKeyed(key string) *Workspace {
	p.wsMu.Lock()
	list := p.free
	if key != "" {
		list = p.keyed[key]
	}
	if n := len(list); n > 0 {
		ws := list[n-1]
		list[n-1] = nil
		if key == "" {
			p.free = list[:n-1]
		} else {
			p.keyed[key] = list[:n-1]
		}
		p.wsMu.Unlock()
		return ws
	}
	p.wsMu.Unlock()
	return &Workspace{pool: p, key: key, frames: make(map[string]any)}
}

// maxKeyedShapes bounds the number of distinct shape keys a pool caches
// workspaces for. A long-lived server sees an open-ended stream of shapes;
// without a cap, every shape ever served would pin a fully-sized arena set
// until Close. Releases under keys beyond the cap simply drop the
// workspace (the next acquisition for that key starts cold), so hot shapes
// stay warm and cold shapes cost nothing persistent.
const maxKeyedShapes = 32

// Release returns the workspace to its pool (and its shape key's list) for
// reuse. The caller must not touch the workspace (or any buffer obtained
// from it) afterwards.
func (ws *Workspace) Release() {
	p := ws.pool
	p.wsMu.Lock()
	switch {
	case ws.key == "":
		p.free = append(p.free, ws)
	case p.keyed == nil:
		p.keyed = map[string][]*Workspace{ws.key: {ws}}
	default:
		if _, ok := p.keyed[ws.key]; ok || len(p.keyed) < maxKeyedShapes {
			p.keyed[ws.key] = append(p.keyed[ws.key], ws)
		}
		// else: cap reached for new keys — let the GC take this one.
	}
	p.wsMu.Unlock()
}

// Arena returns worker w's scratch arena, creating arenas on demand. On a
// placed pool the arena first-touches its pages when buffers grow (see
// Arena.firstTouch), so per-worker scratch grown inside a region body
// lands on the worker's own NUMA node.
func (ws *Workspace) Arena(w int) *Arena {
	for len(ws.arenas) <= w {
		ws.arenas = append(ws.arenas, &Arena{firstTouch: ws.placed()})
	}
	return ws.arenas[w]
}

// placed reports whether this workspace belongs to a placement-aware pool.
func (ws *Workspace) placed() bool {
	return ws.pool != nil && ws.pool.placed()
}

// PlanArena returns the workspace's dedicated plan arena: a scratch slot
// for batch-scoped shared state — the serving layer's fused KRP plans —
// that must stay live across several kernel invocations on the same
// workspace. It is distinct from every worker arena, so nothing a kernel
// leases per-dispatch can alias it; like the worker arenas, its buffers
// grow monotonically and are reused, so a shape-keyed workspace serves a
// steady stream of same-shape batches with zero allocations.
func (ws *Workspace) PlanArena() *Arena {
	if ws.plan == nil {
		ws.plan = &Arena{firstTouch: ws.placed()}
	}
	return ws.plan
}

// Frame returns the cached kernel state registered under key, building it
// with build on first use. Kernels store their per-call parameter blocks
// and pre-bound worker closures in frames so repeated dispatches reuse one
// heap object instead of allocating closures per call.
func (ws *Workspace) Frame(key string, build func() any) any {
	f, ok := ws.frames[key]
	if !ok {
		f = build()
		ws.frames[key] = f
	}
	return f
}

// Arena is one worker's tag-addressed scratch allocator. Buffers are keyed
// by purpose tag and grow monotonically, so repeated same-shape kernel
// calls always get the same backing memory back. Returned buffers contain
// whatever the previous use left in them; callers that need zeroed memory
// must clear them.
type Arena struct {
	f64  map[string][]float64
	ints map[string][]int

	// firstTouch makes buffer growth write a zero into every page of the
	// fresh slice before returning it. Linux places a physical page on the
	// NUMA node of the thread that first writes it, and a large make may
	// hand back never-written memory — so without the touch, arena pages
	// materialize wherever the first kernel loop happens to run, which for
	// gather buffers filled by a different phase can be the wrong socket.
	// Workspaces of placed pools set it; the stores are semantic no-ops
	// (make returns zeroed memory), so flat pools skip them and results
	// are identical either way.
	firstTouch bool
}

// pageBytes is the stride of the first-touch walk; 4 KiB covers every
// platform this runtime targets (larger pages just get touched more often,
// which is harmless).
const pageBytes = 4096

// touchFloat64Pages forces physical page placement of s onto the calling
// thread's NUMA node by storing a zero per page.
//
//mttkrp:noalloc
func touchFloat64Pages(s []float64) {
	for i := 0; i < len(s); i += pageBytes / 8 {
		s[i] = 0
	}
}

// touchIntPages is touchFloat64Pages for int scratch.
//
//mttkrp:noalloc
func touchIntPages(s []int) {
	for i := 0; i < len(s); i += pageBytes / 8 {
		s[i] = 0
	}
}

// Float64 returns a length-n float64 scratch slice for tag, reusing (and if
// needed growing) the slice previously returned for the same tag.
//
//mttkrp:noalloc
func (a *Arena) Float64(tag string, n int) []float64 {
	if a.f64 == nil {
		//lint:ignore mttkrp/noalloc one-time map init; amortized away after first use
		a.f64 = make(map[string][]float64)
	}
	s := a.f64[tag]
	if cap(s) < n {
		//lint:ignore mttkrp/noalloc cold-path growth; steady state reuses the grown slice
		s = make([]float64, n)
		if a.firstTouch {
			touchFloat64Pages(s)
		}
		a.f64[tag] = s
	}
	return s[:n:n]
}

// Ints returns a length-n int scratch slice for tag, with the same reuse
// contract as Float64.
//
//mttkrp:noalloc
func (a *Arena) Ints(tag string, n int) []int {
	if a.ints == nil {
		//lint:ignore mttkrp/noalloc one-time map init; amortized away after first use
		a.ints = make(map[string][]int)
	}
	s := a.ints[tag]
	if cap(s) < n {
		//lint:ignore mttkrp/noalloc cold-path growth; steady state reuses the grown slice
		s = make([]int, n)
		if a.firstTouch {
			touchIntPages(s)
		}
		a.ints[tag] = s
	}
	return s[:n:n]
}
