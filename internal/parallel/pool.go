package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a persistent fork-join worker team, the goroutine analogue of an
// OpenMP thread pool. Workers are spawned once and then sleep on per-worker
// channels between parallel regions, so a kernel that issues thousands of
// For/Run dispatches per second (CP-ALS does) pays no goroutine-creation
// cost in steady state. The calling goroutine always acts as worker 0, so a
// dispatch of width t wakes only t-1 workers.
//
// A pool executes one parallel region at a time: concurrent dispatches from
// different goroutines serialize on an internal mutex. Bodies must not
// dispatch on the pool that is executing them (that would deadlock);
// sequential helpers such as blas.GemmArena exist for exactly that reason.
// Concurrent requests that each want full parallelism should use one Pool
// per request.
//
// Pools also own reusable Workspaces (see Acquire), so the scratch memory
// of a kernel survives across calls and steady-state execution allocates
// nothing.
type Pool struct {
	mu     sync.Mutex // serializes dispatches and worker growth
	chans  []chan job // chans[w] feeds persistent worker w (w ≥ 1); chans[0] is nil
	wg     sync.WaitGroup
	next   atomic.Int64 // shared chunk counter for dynamic scheduling
	spawn  bool         // spawn-per-call baseline mode (benchmarks)
	closed bool

	wsMu sync.Mutex
	free []*Workspace
}

// jobKind selects the worker-side interpretation of a job.
type jobKind uint8

const (
	jobRun jobKind = iota
	jobFor
	jobForDynamic
	jobReduce
)

// job describes one parallel region. It is passed by value over the worker
// channels so dispatching allocates nothing.
type job struct {
	kind  jobKind
	body1 func(worker int)
	body3 func(worker, lo, hi int)
	n     int
	t     int
	chunk int
	next  *atomic.Int64
	parts [][]float64
	wg    *sync.WaitGroup
}

// run executes the portion of the job owned by worker w.
func (j *job) run(w int) {
	switch j.kind {
	case jobRun:
		j.body1(w)
	case jobFor:
		lo, hi := BlockRange(j.n, j.t, w)
		if lo < hi {
			j.body3(w, lo, hi)
		}
	case jobForDynamic:
		for {
			hi := int(j.next.Add(int64(j.chunk)))
			lo := hi - j.chunk
			if lo >= j.n {
				return
			}
			if hi > j.n {
				hi = j.n
			}
			j.body3(w, lo, hi)
		}
	case jobReduce:
		dst := j.parts[0]
		lo, hi := BlockRange(len(dst), j.t, w)
		for _, p := range j.parts[1:] {
			for i := lo; i < hi; i++ {
				dst[i] += p[i]
			}
		}
	}
}

// BlockRange returns the half-open range [lo, hi) of worker w under the
// static block schedule that Split uses: t contiguous ranges over [0, n)
// whose sizes differ by at most one. It is the allocation-free form of
// Split(n, t)[w].
func BlockRange(n, t, w int) (lo, hi int) {
	base := n / t
	rem := n % t
	lo = w * base
	if w < rem {
		lo += w
	} else {
		lo += rem
	}
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// NewPool creates a pool with the given number of persistent workers;
// workers <= 0 selects DefaultThreads. The pool can still execute wider
// dispatches: it grows (spawning more persistent workers) on demand.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultThreads()
	}
	p := &Pool{chans: make([]chan job, 1, workers)} // slot 0: the caller
	p.mu.Lock()
	p.grow(workers)
	p.mu.Unlock()
	return p
}

// NewSpawnPool creates a pool that spawns fresh goroutines on every
// dispatch instead of keeping a persistent team. It is the spawn-per-call
// baseline the benchmarks compare the persistent runtime against; the
// workspace machinery behaves identically.
func NewSpawnPool() *Pool {
	return &Pool{spawn: true}
}

var defaultPool struct {
	once sync.Once
	p    *Pool
}

// Default returns the lazily-created process-wide pool used by the
// package-level For, Run, ForDynamic and ReduceSum wrappers. It is sized to
// DefaultThreads and never closed.
func Default() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = NewPool(0) })
	return defaultPool.p
}

// Workers returns the current number of persistent workers (including the
// caller slot 0); it is the natural dispatch width of the pool.
func (p *Pool) Workers() int {
	if p.spawn {
		return DefaultThreads()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.chans)
}

// grow ensures the pool has at least t worker slots. Callers hold p.mu.
func (p *Pool) grow(t int) {
	if p.closed {
		panic("parallel: dispatch on a closed Pool")
	}
	for len(p.chans) < t {
		ch := make(chan job, 1)
		p.chans = append(p.chans, ch)
		go workerLoop(len(p.chans)-1, ch)
	}
}

// workerLoop is the body of one persistent worker goroutine.
func workerLoop(w int, ch chan job) {
	for j := range ch {
		j.run(w)
		j.wg.Done()
	}
}

// dispatch fans the job out to workers 1..t-1, runs worker 0 on the calling
// goroutine, and waits for the barrier. The pool mutex is held for the
// whole region, serializing overlapping dispatches.
func (p *Pool) dispatch(j job) {
	if p.spawn {
		// Kept out of line so that j only escapes to the heap on the
		// spawn-per-call baseline, not on pooled dispatches.
		dispatchSpawn(j)
		return
	}
	p.mu.Lock()
	p.grow(j.t)
	if j.kind == jobForDynamic {
		// The shared chunk counter is reset here, under the dispatch
		// mutex: a concurrent ForDynamic on the same pool must not observe
		// (or clobber) another region's counter.
		j.next.Store(0)
	}
	p.wg.Add(j.t - 1)
	j.wg = &p.wg
	for w := 1; w < j.t; w++ {
		p.chans[w] <- j
	}
	j.run(0)
	p.wg.Wait()
	p.mu.Unlock()
}

// dispatchSpawn runs the job with freshly spawned goroutines — the
// per-call worker creation the persistent pool exists to avoid.
func dispatchSpawn(j job) {
	var wg sync.WaitGroup
	wg.Add(j.t - 1)
	for w := 1; w < j.t; w++ {
		go func(w int) {
			defer wg.Done()
			j.run(w)
		}(w)
	}
	j.run(0)
	wg.Wait()
}

// Close terminates the persistent workers and drops the pool's cached
// workspaces (releasing their arena memory to the garbage collector). The
// pool must be idle; any later dispatch panics. Closing the default pool
// is not allowed.
func (p *Pool) Close() {
	if p == defaultPool.p {
		panic("parallel: cannot close the default pool")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wsMu.Lock()
	p.free = nil // drop cached workspaces so their arenas can be collected
	p.wsMu.Unlock()
	if p.closed || len(p.chans) == 0 {
		return // spawn pools (and already-closed pools) have no workers
	}
	p.closed = true
	for _, ch := range p.chans[1:] {
		close(ch)
	}
	p.chans = p.chans[:1]
}

// Run launches t copies of body, one per worker, and waits — the "parallel
// region" primitive, identical in semantics to the package-level Run but
// executed on the pool's persistent workers.
func (p *Pool) Run(t int, body func(worker int)) {
	if t <= 0 {
		t = DefaultThreads()
	}
	if t == 1 {
		body(0)
		return
	}
	p.dispatch(job{kind: jobRun, body1: body, t: t})
}

// For executes body over [0, n) with t workers, each owning one contiguous
// block (the static schedule of Split). With t == 1 the body runs inline on
// the calling goroutine.
func (p *Pool) For(t, n int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	p.dispatch(job{kind: jobFor, body3: body, n: n, t: t})
}

// ForDynamic executes body over [0, n) with t workers pulling chunks of the
// given size from a shared atomic counter (the dynamic schedule).
func (p *Pool) ForDynamic(t, n, chunk int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	if p.spawn {
		var next atomic.Int64
		p.dispatch(job{kind: jobForDynamic, body3: body, n: n, t: t, chunk: chunk, next: &next})
		return
	}
	// The shared counter lives on the pool (allocation-free); dispatch
	// resets it under the region mutex.
	p.dispatch(job{kind: jobForDynamic, body3: body, n: n, t: t, chunk: chunk, next: &p.next})
}

// ReduceSum accumulates parts[1:] into parts[0] in parallel and returns
// parts[0]. All buffers must have equal length; a mismatch panics up front
// rather than corrupting data mid-reduction.
func (p *Pool) ReduceSum(t int, parts [][]float64) []float64 {
	if len(parts) == 0 {
		return nil
	}
	dst := parts[0]
	for i, q := range parts[1:] {
		if len(q) != len(dst) {
			panic(fmt.Sprintf("parallel: ReduceSum buffer %d has length %d, want %d", i+1, len(q), len(dst)))
		}
	}
	if len(parts) == 1 || len(dst) == 0 {
		return dst
	}
	t = Clamp(t, len(dst))
	if t == 1 {
		for _, q := range parts[1:] {
			for i, v := range q {
				dst[i] += v
			}
		}
		return dst
	}
	p.dispatch(job{kind: jobReduce, parts: parts, t: t})
	return dst
}
