package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simd"
)

// Pool is a persistent fork-join worker team, the goroutine analogue of an
// OpenMP thread pool. Workers are spawned once and then sleep on per-worker
// channels between parallel regions, so a kernel that issues thousands of
// For/Run dispatches per second (CP-ALS does) pays no goroutine-creation
// cost in steady state. The calling goroutine always acts as worker 0, so a
// dispatch of width t wakes only t-1 workers.
//
// A pool executes one parallel region at a time: concurrent dispatches from
// different goroutines serialize on an internal mutex. Bodies must not
// dispatch on the pool that is executing them (that would deadlock);
// sequential helpers such as blas.GemmArena exist for exactly that reason.
// Concurrent requests that each want full parallelism should use one Pool
// per request.
//
// Pools also own reusable Workspaces (see Acquire), so the scratch memory
// of a kernel survives across calls and steady-state execution allocates
// nothing.
type Pool struct {
	mu      sync.Mutex // serializes dispatches, worker growth and leasing
	chans   []chan job // chans[w] feeds persistent worker w (w ≥ 1); chans[0] is nil
	leased  []bool     // leased[w]: worker w is reserved by an active Lease
	topo    *Topology  // placement domains (nil: flat slot model); immutable
	nleased int
	wg      sync.WaitGroup
	next    atomic.Int64 // shared chunk counter for dynamic scheduling
	spawn   bool         // spawn-per-call baseline mode (benchmarks)
	closed  bool

	wsMu  sync.Mutex
	free  []*Workspace
	keyed map[string][]*Workspace // shape-keyed free lists (see AcquireKeyed)
}

// jobKind selects the worker-side interpretation of a job.
type jobKind uint8

const (
	jobRun jobKind = iota
	jobFor
	jobForDynamic
	jobReduce
)

// job describes one parallel region. It is passed by value over the worker
// channels so dispatching allocates nothing.
//
// A region has t logical workers but may execute on fewer goroutines: each
// job copy carries the physical worker's starting logical index (widx) and
// the physical width (stride), and executes logical workers widx,
// widx+stride, widx+2·stride, … < t in sequence. A pool dispatch always
// uses stride == t (one logical worker per goroutine, the classic case); a
// Lease narrower than the logical width strides, preserving the t-worker
// semantics — every logical index runs, per-worker buffers indexed by the
// logical id stay disjoint — on fewer goroutines.
type job struct {
	kind   jobKind
	body1  func(worker int)
	body3  func(worker, lo, hi int)
	n      int
	t      int // logical width of the region
	widx   int // this copy's first logical worker index
	stride int // physical width: distance between owned logical indices
	chunk  int
	next   *atomic.Int64
	parts  [][]float64
	wg     *sync.WaitGroup
	perr   *atomic.Pointer[any] // lease dispatches: first worker panic, rethrown at the barrier
}

// run executes every logical worker owned by this job copy.
//
//mttkrp:noalloc
func (j *job) run() {
	if j.kind == jobForDynamic {
		// Dynamic regions self-balance through the shared chunk counter;
		// the logical index only names the worker's private state, so each
		// goroutine pulls chunks once under its first logical id.
		j.runDynamic(j.widx)
		return
	}
	for w := j.widx; w < j.t; w += j.stride {
		j.exec(w)
	}
}

// exec executes logical worker w of the region.
//
//mttkrp:noalloc
func (j *job) exec(w int) {
	switch j.kind {
	case jobRun:
		j.body1(w)
	case jobFor:
		lo, hi := BlockRange(j.n, j.t, w)
		if lo < hi {
			j.body3(w, lo, hi)
		}
	case jobReduce:
		dst := j.parts[0]
		lo, hi := BlockRange(len(dst), j.t, w)
		for _, p := range j.parts[1:] {
			simd.Add(p[lo:hi], dst[lo:hi])
		}
	}
}

// runDynamic pulls chunks from the shared counter until the range drains.
//
//mttkrp:noalloc
func (j *job) runDynamic(w int) {
	for {
		hi := int(j.next.Add(int64(j.chunk)))
		lo := hi - j.chunk
		if lo >= j.n {
			return
		}
		if hi > j.n {
			hi = j.n
		}
		j.body3(w, lo, hi)
	}
}

// BlockRange returns the half-open range [lo, hi) of worker w under the
// static block schedule that Split uses: t contiguous ranges over [0, n)
// whose sizes differ by at most one. It is the allocation-free form of
// Split(n, t)[w].
//
//mttkrp:noalloc
func BlockRange(n, t, w int) (lo, hi int) {
	base := n / t
	rem := n % t
	lo = w * base
	if w < rem {
		lo += w
	} else {
		lo += rem
	}
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// NewPool creates a pool with the given number of persistent workers;
// workers <= 0 selects DefaultThreads. The pool can still execute wider
// dispatches: it grows (spawning more persistent workers) on demand.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultThreads()
	}
	p := &Pool{chans: make([]chan job, 1, workers)} // slot 0: the caller
	p.mu.Lock()
	p.grow(workers)
	p.mu.Unlock()
	return p
}

// NewPoolPlaced creates a pool whose worker slots carry placement-domain
// identities derived from topo: slot w belongs to topo.SlotDomain(w), and
// each worker's OS thread is pinned (best-effort) to its domain's CPUs.
// Leases on a placed pool prefer same-domain slot sets and migrate toward
// their home domain at phase boundaries; workspace arenas acquired through
// the pool first-touch their pages on the owning worker. A nil or
// single-domain topo yields a flat pool — placement over one domain is
// behaviorally identical to no placement, which is exactly the fallback
// non-NUMA hosts take.
func NewPoolPlaced(workers int, topo *Topology) *Pool {
	if workers <= 0 {
		workers = DefaultThreads()
	}
	p := &Pool{chans: make([]chan job, 1, workers)} // slot 0: the caller
	if topo != nil && topo.Domains() > 1 {
		p.topo = topo
	}
	p.mu.Lock()
	p.grow(workers)
	p.mu.Unlock()
	return p
}

// placed reports whether this pool runs the placement-aware slot model.
// p.topo is immutable after construction, so no lock is needed.
func (p *Pool) placed() bool { return p.topo != nil }

// Topology returns the pool's placement topology, or nil for flat pools.
func (p *Pool) Topology() *Topology { return p.topo }

// SlotDomain returns the placement domain of worker slot w (0 on flat
// pools). Slot 0 is the calling goroutine: it reports a domain for
// accounting, but is never pinned.
func (p *Pool) SlotDomain(w int) int {
	if p.topo == nil {
		return 0
	}
	return p.topo.SlotDomain(w)
}

// MaxDomainWidth returns the widest lease (including the caller slot)
// whose reserved workers can all sit in one placement domain given the
// current team — the scheduler's packing bound: budgets at or below it
// never pay cross-domain traffic. Flat pools return the team width.
func (p *Pool) MaxDomainWidth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.topo == nil {
		return len(p.chans)
	}
	counts := make([]int, p.topo.Domains())
	for w := 1; w < len(p.chans); w++ {
		counts[p.topo.SlotDomain(w)]++
	}
	widest := 0
	for _, c := range counts {
		if c > widest {
			widest = c
		}
	}
	return widest + 1
}

// NewSpawnPool creates a pool that spawns fresh goroutines on every
// dispatch instead of keeping a persistent team. It is the spawn-per-call
// baseline the benchmarks compare the persistent runtime against; the
// workspace machinery behaves identically.
func NewSpawnPool() *Pool {
	return &Pool{spawn: true}
}

var defaultPool struct {
	once sync.Once
	p    *Pool
}

// Default returns the lazily-created process-wide pool used by the
// package-level For, Run, ForDynamic and ReduceSum wrappers. It is sized to
// DefaultThreads and never closed.
func Default() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = NewPool(0) })
	return defaultPool.p
}

// Workers returns the current team width (persistent workers plus the
// caller slot 0); it is the natural dispatch width of the pool. Note that
// the team is not a cap: a dispatch with t = 0 resolves to Effective(0) =
// GOMAXPROCS regardless of the current team size, growing the team on
// demand (TestEffectiveResolution pins this relationship).
func (p *Pool) Workers() int {
	if p.spawn {
		return DefaultThreads()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.chans)
}

// Effective resolves a requested dispatch width for this pool: the global
// Effective rule (non-positive t selects GOMAXPROCS). The current team
// size never caps the result — the pool grows on demand.
func (p *Pool) Effective(t int) int { return Effective(t) }

// Resize sets the pool's team width to n (resolved with Effective): it
// grows by spawning persistent workers, or shrinks by closing and retiring
// idle workers from the tail of the team. Shrinking never retires workers
// reserved by an active Lease — the width is clamped so every leased slot
// survives; it also never touches in-flight regions, because dispatches
// and Resize serialize on the region mutex. A later wider dispatch re-grows
// the team on demand.
func (p *Pool) Resize(n int) {
	if p.spawn {
		return // spawn pools have no persistent team to size
	}
	n = Effective(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("parallel: Resize on a closed Pool")
	}
	if n >= len(p.chans) {
		p.grow(n)
		return
	}
	keep := n
	for w := len(p.chans) - 1; w >= keep; w-- {
		if w < len(p.leased) && p.leased[w] {
			keep = w + 1
			break
		}
	}
	for _, ch := range p.chans[keep:] {
		close(ch)
	}
	p.chans = p.chans[:keep]
	if len(p.leased) > keep {
		p.leased = p.leased[:keep]
	}
}

// reserveLocked marks up to k unleased persistent workers as reserved by a
// lease and returns their slots plus the home domain they were placed
// around. Reservation is best-effort within the current team: leases never
// grow the team (Resize the pool to raise lease capacity).
//
// Flat pools scan slots in order, exactly the historical behavior, and
// report domain 0. Placed pools place: home < 0 asks the pool to choose a
// home domain (best fit — the domain with the fewest free slots that still
// covers k, else the one with the most), the home domain's free slots are
// taken first, and only the remainder spills into other domains, fullest
// first. Callers hold p.mu.
func (p *Pool) reserveLocked(k, home int) ([]leaseSlot, int) {
	for len(p.leased) < len(p.chans) {
		p.leased = append(p.leased, false)
	}
	if p.topo == nil {
		var out []leaseSlot
		for w := 1; w < len(p.chans) && len(out) < k; w++ {
			if !p.leased[w] {
				out = append(out, p.takeSlotLocked(w))
			}
		}
		return out, 0
	}
	free := make([]int, p.topo.Domains())
	for w := 1; w < len(p.chans); w++ {
		if !p.leased[w] {
			free[p.topo.SlotDomain(w)]++
		}
	}
	if home < 0 || home >= len(free) {
		home = chooseHomeDomain(free, k)
	}
	var out []leaseSlot
	out = p.takeDomainLocked(out, k, home)
	taken := make([]bool, len(free))
	taken[home] = true
	for len(out) < k {
		// Spill fullest-first (ties to the lower domain id) so a spilling
		// lease fragments as few domains as possible.
		best := -1
		for d, n := range free {
			if !taken[d] && n > 0 && (best < 0 || n > free[best]) {
				best = d
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		out = p.takeDomainLocked(out, k, best)
	}
	return out, home
}

// chooseHomeDomain picks the home domain for a fresh reservation of k
// slots given per-domain free counts: the tightest domain that still fits
// k (best fit keeps big free blocks available for big leases), else the
// domain with the most free slots. Ties go to the lower domain id.
func chooseHomeDomain(free []int, k int) int {
	fit, most := -1, 0
	for d, n := range free {
		if n >= k && (fit < 0 || n < free[fit]) {
			fit = d
		}
		if n > free[most] {
			most = d
		}
	}
	if fit >= 0 {
		return fit
	}
	return most
}

// takeDomainLocked reserves free slots of domain d (in slot order) into
// out until k total slots are held. Callers hold p.mu.
func (p *Pool) takeDomainLocked(out []leaseSlot, k, d int) []leaseSlot {
	for w := 1; w < len(p.chans) && len(out) < k; w++ {
		if !p.leased[w] && p.topo.SlotDomain(w) == d {
			out = append(out, p.takeSlotLocked(w))
		}
	}
	return out
}

// takeSlotLocked marks slot w reserved and returns its lease handle.
// Callers hold p.mu and must have checked that w is free.
func (p *Pool) takeSlotLocked(w int) leaseSlot {
	p.leased[w] = true
	p.nleased++
	return leaseSlot{id: w, ch: p.chans[w]}
}

// reserveOneInDomainLocked reserves one free slot of domain d, if any.
// It is the lease-migration primitive: Reconcile swaps an off-domain slot
// for whatever its home domain has freed up. Callers hold p.mu.
func (p *Pool) reserveOneInDomainLocked(d int) (leaseSlot, bool) {
	if p.topo == nil {
		return leaseSlot{}, false
	}
	for w := 1; w < len(p.chans) && w < len(p.leased); w++ {
		if !p.leased[w] && p.topo.SlotDomain(w) == d {
			return p.takeSlotLocked(w), true
		}
	}
	return leaseSlot{}, false
}

// releaseLocked returns reserved slots to the pool. Callers hold p.mu.
func (p *Pool) releaseLocked(slots []leaseSlot) {
	for _, s := range slots {
		p.leased[s.id] = false
		p.nleased--
	}
}

// grow ensures the pool has at least t worker slots. On a placed pool each
// new worker is pinned (best-effort) to the CPUs of its slot's domain, so
// the slot→domain mapping the lease and workspace layers reason about is
// also where the OS actually runs the work. Callers hold p.mu.
func (p *Pool) grow(t int) {
	if p.closed {
		panic("parallel: dispatch on a closed Pool")
	}
	for len(p.chans) < t {
		ch := make(chan job, 1)
		w := len(p.chans)
		p.chans = append(p.chans, ch)
		if p.topo != nil {
			cpus := p.topo.DomainCPUs(p.topo.SlotDomain(w))
			go placedWorkerLoop(ch, cpus)
		} else {
			go workerLoop(ch)
		}
	}
}

// placedWorkerLoop pins the worker's OS thread to its domain's CPUs before
// entering the normal worker loop. Pinning is best-effort: a synthetic
// topology naming CPUs the machine lacks, or a sandbox refusing
// sched_setaffinity, leaves the worker unpinned but otherwise identical.
func placedWorkerLoop(ch chan job, cpus []int) {
	pinThread(cpus)
	workerLoop(ch)
}

// workerLoop is the body of one persistent worker goroutine. The logical
// worker indices to execute travel inside the job (widx/stride), so the
// same persistent worker can serve pool dispatches and lease dispatches
// under whatever logical id the region assigned it.
func workerLoop(ch chan job) {
	for j := range ch {
		runWorkerJob(&j)
		j.wg.Done()
	}
}

// runWorkerJob executes a job copy on a worker goroutine. Lease dispatches
// (j.perr != nil) capture a body panic instead of crashing the process —
// the coordinator rethrows it after the barrier, where the serving layer
// recovers it into the request's ticket. Pool dispatches keep the
// historical fail-fast behavior: a worker panic is a program bug and
// crashes.
func runWorkerJob(j *job) {
	if j.perr == nil {
		j.run()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			v := r
			j.perr.CompareAndSwap(nil, &v) // keep the first panic
		}
	}()
	j.run()
}

// dispatch fans the job out to workers 1..t-1, runs worker 0 on the calling
// goroutine, and waits for the barrier. The pool mutex is held for the
// whole region, serializing overlapping dispatches. Workers reserved by a
// Lease are still part of the team here — dispatching directly on a pool
// with outstanding leases is memory-safe but contends with the lease
// holders for those workers; a serving scheduler that leases a pool out
// should own it exclusively.
//
//mttkrp:noalloc
func (p *Pool) dispatch(j job) {
	if p.spawn {
		// Kept out of line so that j only escapes to the heap on the
		// spawn-per-call baseline, not on pooled dispatches.
		dispatchSpawn(j)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grow(j.t)
	if j.kind == jobForDynamic {
		// The shared chunk counter is reset here, under the dispatch
		// mutex: a concurrent ForDynamic on the same pool must not observe
		// (or clobber) another region's counter.
		j.next.Store(0)
	}
	j.stride = j.t
	p.wg.Add(j.t - 1)
	j.wg = &p.wg
	for w := 1; w < j.t; w++ {
		j.widx = w
		p.chans[w] <- j
	}
	// The barrier must complete even if worker 0's body panics (the
	// deferred Wait runs before the mutex release): the region's workers
	// drain, the pool stays consistent, and the panic propagates to the
	// dispatching caller.
	defer p.wg.Wait()
	j.widx = 0
	j.run()
}

// dispatchSpawn runs the job with freshly spawned goroutines — the
// per-call worker creation the persistent pool exists to avoid.
func dispatchSpawn(j job) {
	var wg sync.WaitGroup
	wg.Add(j.t - 1)
	j.stride = j.t
	for w := 1; w < j.t; w++ {
		jw := j
		jw.widx = w
		go func() {
			defer wg.Done()
			jw.run()
		}()
	}
	j.widx = 0
	j.run()
	wg.Wait()
}

// Close terminates the persistent workers and drops the pool's cached
// workspaces (releasing their arena memory to the garbage collector). The
// pool must be idle and all leases closed; any later dispatch panics.
// Closing the default pool is not allowed.
func (p *Pool) Close() {
	if p == defaultPool.p {
		panic("parallel: cannot close the default pool")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nleased > 0 {
		panic("parallel: Close with outstanding leases")
	}
	p.wsMu.Lock()
	p.free = nil // drop cached workspaces so their arenas can be collected
	p.keyed = nil
	p.wsMu.Unlock()
	if p.closed || len(p.chans) == 0 {
		return // spawn pools (and already-closed pools) have no workers
	}
	p.closed = true
	for _, ch := range p.chans[1:] {
		close(ch)
	}
	p.chans = p.chans[:1]
}

// Run launches t copies of body, one per worker, and waits — the "parallel
// region" primitive, identical in semantics to the package-level Run but
// executed on the pool's persistent workers.
//
//mttkrp:noalloc
func (p *Pool) Run(t int, body func(worker int)) {
	t = Effective(t)
	if t == 1 {
		body(0)
		return
	}
	p.dispatch(job{kind: jobRun, body1: body, t: t})
}

// For executes body over [0, n) with t workers, each owning one contiguous
// block (the static schedule of Split). With t == 1 the body runs inline on
// the calling goroutine.
//
//mttkrp:noalloc
func (p *Pool) For(t, n int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	p.dispatch(job{kind: jobFor, body3: body, n: n, t: t})
}

// ForDynamic executes body over [0, n) with t workers pulling chunks of the
// given size from a shared atomic counter (the dynamic schedule).
func (p *Pool) ForDynamic(t, n, chunk int, body func(worker, lo, hi int)) {
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	if p.spawn {
		var next atomic.Int64
		p.dispatch(job{kind: jobForDynamic, body3: body, n: n, t: t, chunk: chunk, next: &next})
		return
	}
	// The shared counter lives on the pool (allocation-free); dispatch
	// resets it under the region mutex.
	p.dispatch(job{kind: jobForDynamic, body3: body, n: n, t: t, chunk: chunk, next: &p.next})
}

// ReduceSum accumulates parts[1:] into parts[0] in parallel and returns
// parts[0]. All buffers must have equal length; a mismatch panics up front
// rather than corrupting data mid-reduction.
//
//mttkrp:noalloc
func (p *Pool) ReduceSum(t int, parts [][]float64) []float64 {
	dst, seq := checkReduceParts(parts)
	if dst == nil {
		return nil
	}
	t = Clamp(t, len(dst))
	if seq || t == 1 {
		return reduceSeq(parts)
	}
	p.dispatch(job{kind: jobReduce, parts: parts, t: t})
	return dst
}

// checkReduceParts validates that every reduction buffer matches parts[0]
// in length, returning parts[0] (nil when parts is empty) and whether the
// reduction needs no dispatch at all.
func checkReduceParts(parts [][]float64) (dst []float64, seq bool) {
	if len(parts) == 0 {
		return nil, true
	}
	dst = parts[0]
	for i, q := range parts[1:] {
		if len(q) != len(dst) {
			panic(fmt.Sprintf("parallel: ReduceSum buffer %d has length %d, want %d", i+1, len(q), len(dst)))
		}
	}
	return dst, len(parts) == 1 || len(dst) == 0
}

// reduceSeq performs the reduction sequentially on the calling goroutine.
//
//mttkrp:noalloc
func reduceSeq(parts [][]float64) []float64 {
	dst := parts[0]
	for _, q := range parts[1:] {
		simd.Add(q, dst)
	}
	return dst
}
