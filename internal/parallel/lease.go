package parallel

import (
	"sync"
	"sync/atomic"
)

// Executor is the execution context kernels run on: either a *Pool (a
// whole worker team) or a *Lease (a scheduler-granted slice of one).
// Kernel entry points accept an Executor so that the same code serves both
// a caller that owns a full pool and a request admitted by a serving
// scheduler under a worker budget.
type Executor interface {
	// Effective resolves a requested worker count t to the width a
	// dispatch on this executor actually uses (see the package-level
	// Effective; leases cap the result at their granted width). Kernels
	// must size per-worker state with this resolution so that buffers and
	// dispatch agree on the worker count.
	Effective(t int) int
	// Workers is the executor's natural dispatch width.
	Workers() int
	// Run launches t copies of body, one per logical worker, and waits.
	Run(t int, body func(worker int))
	// For executes body over [0, n) with t workers under the static block
	// schedule.
	For(t, n int, body func(worker, lo, hi int))
	// ForDynamic executes body over [0, n) with t workers pulling chunks
	// from a shared counter.
	ForDynamic(t, n, chunk int, body func(worker, lo, hi int))
	// ReduceSum accumulates parts[1:] into parts[0] in parallel.
	ReduceSum(t int, parts [][]float64) []float64
	// Acquire leases a reusable Workspace; pair with Release.
	Acquire() *Workspace
}

var (
	_ Executor = (*Pool)(nil)
	_ Executor = (*Lease)(nil)
)

// leaseSlot is one parent-pool worker reserved by a lease: its slot id
// (for returning the reservation) and its channel, snapshotted at reserve
// time so lease dispatches never read the parent's growing chans slice.
type leaseSlot struct {
	id int
	ch chan job
}

// Lease is a scheduler-granted slice of a parent Pool: a dispatch context
// that executes on up to Width()-1 reserved parent workers plus the
// calling goroutine. Leases exist so that concurrent requests share one
// persistent worker team instead of each spinning its own pool — an
// admission policy hands every active request a lease sized to its worker
// budget, and resizes the leases as requests arrive and finish.
//
// Width semantics differ from a Pool in one deliberate way: a Lease caps
// dispatch width. Effective(t) resolves t <= 0 (and any t beyond the
// budget) to the granted width, so kernels that run with Threads = 0
// automatically use exactly their budget. A region dispatched with a
// logical width wider than the granted goroutines still executes every
// logical worker — physical workers stride over the extra logical indices
// — so a concurrent shrink between width resolution and dispatch never
// loses work.
//
// Like a Pool, a lease executes one region at a time; concurrent
// dispatches serialize on the lease mutex. Distinct leases of one parent
// dispatch concurrently — that is the point.
type Lease struct {
	parent *Pool
	target atomic.Int32 // desired width (including the caller slot 0)
	width  atomic.Int32 // granted width: 1 + len(slots)
	mu     sync.Mutex   // serializes dispatches and reservation changes
	slots  []leaseSlot
	wg     sync.WaitGroup
	next   atomic.Int64        // dynamic-schedule chunk counter
	perr   atomic.Pointer[any] // first worker panic of the current region
	wsKey  string              // workspace shape key ("" = the pool's general list)
	domain int                 // home placement domain (0 on flat pools)
	// physCap caps the goroutines a dispatch uses (caller included)
	// without narrowing the logical width or the slot reservation: the
	// first physCap-1 slots stride over the remaining logical indices. A
	// placement-aware scheduler sets it to keep a wide budget's work on
	// one domain — results are untouched because logical worker indices,
	// not goroutine count, decide them. 0 means uncapped.
	physCap atomic.Int32
	closed  bool
}

// Lease reserves up to width-1 of the pool's persistent workers as a
// dedicated execution context (width <= 0 asks for Effective(0)).
// Reservation is best-effort: if fewer workers are currently unreserved,
// the lease starts narrower and tops up — at Resize, or at the next
// dispatch after other leases release workers. On a placed pool the
// reservation prefers a single placement domain — the lease's home domain
// — spilling into other domains only when the home cannot cover the
// width. Close the lease to return its workers. Spawn-mode pools cannot
// be leased.
func (p *Pool) Lease(width int) *Lease {
	if p.spawn {
		panic("parallel: cannot lease a spawn-mode pool")
	}
	width = Effective(width)
	l := &Lease{parent: p}
	l.target.Store(int32(width))
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("parallel: Lease on a closed Pool")
	}
	l.slots, l.domain = p.reserveLocked(width-1, -1)
	p.mu.Unlock()
	l.width.Store(int32(1 + len(l.slots)))
	return l
}

// Domain returns the lease's home placement domain — the domain its slot
// reservation packs into first. Flat pools have a single implicit domain 0.
func (l *Lease) Domain() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.domain
}

// Width returns the currently granted dispatch width (reserved workers
// plus the caller slot).
func (l *Lease) Width() int { return int(l.width.Load()) }

// Workers is the executor's natural dispatch width: the granted width,
// after reconciling any pending budget change.
func (l *Lease) Workers() int {
	l.reconcile()
	return l.Width()
}

// Effective resolves a requested worker count for this lease: any t <= 0
// or t beyond the granted width resolves to the width, so a kernel
// running with Threads = 0 uses exactly its budget. Resolution first
// reconciles the reservation with the target, so a kernel entering after
// a rebalance sizes its per-worker state for the new budget — this is
// what lets an under-granted lease (even one running entirely on the
// t == 1 inline paths, which never reach dispatch) pick up workers freed
// by other requests.
func (l *Lease) Effective(t int) int {
	l.reconcile()
	w := l.Width()
	if t <= 0 || t > w {
		return w
	}
	return t
}

// reconcile applies a pending Resize if the lease is idle; mid-region the
// change waits for the next boundary (dispatch reconciles too).
func (l *Lease) reconcile() {
	if int(l.target.Load()) == l.Width() {
		return
	}
	if l.mu.TryLock() {
		if !l.closed {
			l.applyTargetLocked()
		}
		l.mu.Unlock()
	}
}

// Resize sets the lease's target width (the admission policy's budget for
// this request). Shrinking releases workers back to the parent; growing
// re-reserves best-effort. Safe to call concurrently with dispatches: if
// the lease is mid-region the change applies at the next region boundary.
func (l *Lease) Resize(width int) {
	l.target.Store(int32(Effective(width)))
	l.reconcile()
}

// SetSlotCap caps the physical goroutines the lease's dispatches use —
// caller slot included — at k, or removes the cap when k <= 0. The cap is
// purely physical: the lease still reserves (and accounts for) its full
// target width, Effective and Width still report the logical budget, and
// every logical worker still executes — the first k-1 reserved slots
// stride over the extra logical indices. A placement-aware scheduler uses
// this to pin a budget wider than one domain onto domain-local workers:
// the bytes stay on one socket while the kernel-visible width — and
// therefore every result bit — matches the uncapped grant. Safe to call
// concurrently with dispatches; a mid-region change applies at the next
// region boundary.
func (l *Lease) SetSlotCap(k int) {
	if k < 0 {
		k = 0
	}
	l.physCap.Store(int32(k))
}

// Reconcile applies any pending budget change (a Resize issued by the
// admission policy while this lease was mid-region) and returns the
// granted width. It is the phase-boundary hook of the serving stack:
// CP-ALS calls it between sweeps and the MTTKRP drivers between mode
// computations (via core.Options.PhaseNotify), so a scheduler can shrink
// or grow a running request's worker budget at a safe point instead of
// only between requests. Unlike the opportunistic reconciliation inside
// Effective (which TryLocks and gives up under contention), Reconcile
// blocks until the lease is idle, so the pending target is guaranteed
// applied when it returns.
//
// On a placed pool, Reconcile is also the migration point: any slot the
// lease holds outside its home domain is swapped for a slot the home
// domain has freed since — so a lease that started spilled (or was
// displaced by a rebalance) drifts back onto one socket at the next phase
// boundary rather than mid-region. Migration moves work between physical
// workers only; logical worker indices, and therefore results, are
// untouched.
//
// It must be called from the lease's dispatching goroutine (or with no
// region in flight); calling it from inside a region body would deadlock
// like any other dispatch.
func (l *Lease) Reconcile() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 1
	}
	l.applyTargetLocked()
	l.migrateLocked()
	return 1 + len(l.slots)
}

// applyTargetLocked reconciles the reservation with the target width. On
// a placed pool, growth asks for slots near the home domain (re-choosing
// the home if the lease currently holds nothing) and shrinking releases
// off-domain slots first, so budget churn tightens placement instead of
// shuffling it. Callers hold l.mu.
func (l *Lease) applyTargetLocked() {
	want := int(l.target.Load()) - 1
	if want < 0 {
		want = 0
	}
	p := l.parent
	p.mu.Lock()
	if len(l.slots) > want {
		if p.placed() {
			l.packSlotsLocked()
		}
		p.releaseLocked(l.slots[want:])
		l.slots = l.slots[:want]
	} else if len(l.slots) < want {
		home := l.domain
		if p.placed() && len(l.slots) == 0 {
			home = -1 // nothing held: let the pool pick the best home now
		}
		slots, dom := p.reserveLocked(want-len(l.slots), home)
		l.slots = append(l.slots, slots...)
		l.domain = dom
	}
	p.mu.Unlock()
	l.width.Store(int32(1 + len(l.slots)))
}

// packSlotsLocked stably reorders the lease's slots so home-domain slots
// come first; the shrink path then releases the off-domain tail. Slot
// order only decides which physical worker serves which logical index, so
// reordering between regions cannot change results. Callers hold l.mu and
// l.parent.mu.
func (l *Lease) packSlotsLocked() {
	p := l.parent
	kept := make([]leaseSlot, 0, len(l.slots))
	var off []leaseSlot
	for _, s := range l.slots {
		if p.topo.SlotDomain(s.id) == l.domain {
			kept = append(kept, s)
		} else {
			off = append(off, s)
		}
	}
	l.slots = append(kept, off...)
}

// migrateLocked retargets the lease toward its home domain: each slot held
// outside the home is exchanged for a free home-domain slot, if the home
// has any. Callers hold l.mu.
func (l *Lease) migrateLocked() {
	p := l.parent
	if !p.placed() {
		return
	}
	p.mu.Lock()
	for i := range l.slots {
		if p.topo.SlotDomain(l.slots[i].id) == l.domain {
			continue
		}
		t, ok := p.reserveOneInDomainLocked(l.domain)
		if !ok {
			break // home domain full: keep the spilled slots for now
		}
		p.releaseLocked(l.slots[i : i+1])
		l.slots[i] = t
	}
	// Home slots lead the slice after a migration so a physical slot cap
	// (which dispatches on the slot prefix) lands on domain-local workers.
	l.packSlotsLocked()
	p.mu.Unlock()
}

// Close releases the lease's workers back to the parent pool. The lease
// must be idle; any later dispatch panics. Close is idempotent.
func (l *Lease) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	p := l.parent
	p.mu.Lock()
	p.releaseLocked(l.slots)
	p.mu.Unlock()
	l.slots = nil
	l.width.Store(1)
}

// SetWorkspaceKey routes this lease's workspace acquisition to the pool's
// free list for the given shape key ("" restores the general list). A
// serving batcher sets the batch's shape key before executing its
// requests, so every same-shape request reuses one warmed workspace set —
// buffers and kernel frames already sized for the shape — no matter which
// lease runs it. Must not be called concurrently with kernels executing
// on the lease.
func (l *Lease) SetWorkspaceKey(key string) { l.wsKey = key }

// Acquire leases a workspace from the parent pool's cache, keyed by the
// lease's workspace key (see SetWorkspaceKey).
func (l *Lease) Acquire() *Workspace { return l.parent.AcquireKeyed(l.wsKey) }

// dispatch runs one region on the lease: up to Width()-1 reserved workers
// plus the calling goroutine, with logical indices strided when the
// region is logically wider than the granted goroutines. A pending Resize
// is applied first, so budget changes take effect at region boundaries.
//
// Dispatch is panic-safe in both directions, because a serving scheduler
// feeds leases caller-supplied data: a worker-side body panic is captured
// and rethrown here after the barrier, and a coordinator-side panic still
// drains the barrier and releases the region mutex on the way out — either
// way the panic surfaces on the dispatching goroutine with the lease
// consistent, where the serving layer recovers it into the request's
// ticket.
//
//mttkrp:noalloc
func (l *Lease) dispatch(j job) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		panic("parallel: dispatch on a closed Lease")
	}
	if int(l.target.Load()) != 1+len(l.slots) {
		l.applyTargetLocked()
	}
	pw := 1 + len(l.slots)
	if cap := int(l.physCap.Load()); cap > 0 && pw > cap {
		pw = cap
	}
	if pw > j.t {
		pw = j.t
	}
	if j.kind == jobForDynamic {
		j.next.Store(0)
	}
	l.perr.Store(nil)
	j.perr = &l.perr
	j.stride = pw
	j.wg = &l.wg
	l.wg.Add(pw - 1)
	for w := 1; w < pw; w++ {
		j.widx = w
		l.slots[w-1].ch <- j
	}
	defer l.wg.Wait() // barrier completes even if worker 0 panics
	j.widx = 0
	j.run()
	l.wg.Wait()
	if pv := l.perr.Load(); pv != nil {
		panic(*pv)
	}
}

// Run launches t copies of body (t <= 0 selects the granted width) and
// waits. All t logical workers execute even if the lease currently holds
// fewer goroutines.
//
//mttkrp:noalloc
func (l *Lease) Run(t int, body func(worker int)) {
	if t <= 0 {
		t = l.Effective(0)
	}
	if t == 1 {
		body(0)
		return
	}
	l.dispatch(job{kind: jobRun, body1: body, t: t})
}

// For executes body over [0, n) with t workers under the static block
// schedule (t <= 0 selects the granted width).
//
//mttkrp:noalloc
func (l *Lease) For(t, n int, body func(worker, lo, hi int)) {
	if t <= 0 {
		t = l.Effective(0)
	}
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	l.dispatch(job{kind: jobFor, body3: body, n: n, t: t})
}

// ForDynamic executes body over [0, n) with t workers pulling chunks of
// the given size from the lease's shared counter.
//
//mttkrp:noalloc
func (l *Lease) ForDynamic(t, n, chunk int, body func(worker, lo, hi int)) {
	if t <= 0 {
		t = l.Effective(0)
	}
	t = Clamp(t, n)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if t == 1 {
		body(0, 0, n)
		return
	}
	l.dispatch(job{kind: jobForDynamic, body3: body, n: n, t: t, chunk: chunk, next: &l.next})
}

// ReduceSum accumulates parts[1:] into parts[0] in parallel on the lease
// and returns parts[0]. Semantics match Pool.ReduceSum.
//
//mttkrp:noalloc
func (l *Lease) ReduceSum(t int, parts [][]float64) []float64 {
	dst, seq := checkReduceParts(parts)
	if dst == nil {
		return nil
	}
	if t <= 0 {
		t = l.Effective(0)
	}
	t = Clamp(t, len(dst))
	if seq || t == 1 {
		return reduceSeq(parts)
	}
	l.dispatch(job{kind: jobReduce, parts: parts, t: t})
	return dst
}
