//go:build linux

package parallel

import (
	"runtime"
	"syscall"
	"unsafe"
)

// cpuSetWords sizes the affinity bitmask for kernels up to 1024 CPUs
// (glibc's CPU_SETSIZE); machines beyond that simply leave higher CPUs
// unpinnable, which placement treats as best-effort anyway.
const cpuSetWords = 16

// pinThread binds the calling goroutine's OS thread to the given CPU set.
// On success the goroutine is left locked to its (now pinned) thread and
// true is returned; the lock lasts for the goroutine's lifetime, so the
// thread dies with the worker instead of returning to the scheduler pinned.
// Failure — an empty set, CPUs the machine does not have (synthetic test
// topologies), or a sandbox refusing sched_setaffinity — leaves the thread
// unlocked and unpinned: placement degrades to advisory, never breaks.
func pinThread(cpus []int) bool {
	var mask [cpuSetWords]uint64
	n := 0
	for _, c := range cpus {
		if c >= 0 && c < cpuSetWords*64 {
			mask[c/64] |= 1 << (c % 64)
			n++
		}
	}
	if n == 0 {
		return false
	}
	runtime.LockOSThread()
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY, 0, unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask)))
	if errno != 0 {
		runtime.UnlockOSThread()
		return false
	}
	return true
}

// threadAffinity reports the CPU ids the calling thread may run on, or nil
// if the affinity mask cannot be read. Tests use it to verify that placed
// workers actually landed inside their domain.
func threadAffinity() []int {
	var mask [cpuSetWords]uint64
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY, 0, unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask)))
	if errno != 0 {
		return nil
	}
	var cpus []int
	for w, bits := range mask {
		for b := 0; bits != 0; b, bits = b+1, bits>>1 {
			if bits&1 != 0 {
				cpus = append(cpus, w*64+b)
			}
		}
	}
	return cpus
}
