package ttm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// multiplyRef computes Y = X ×n M entry by entry from the definition
// Y(..., c, ...) = Σ_i X(..., i, ...)·M(i, c).
func multiplyRef(x *tensor.Dense, n int, m mat.View) *tensor.Dense {
	outDims := x.Dims()
	outDims[n] = m.C
	y := tensor.New(outDims...)
	idx := make([]int, x.Order())
	for l, v := range x.Data() {
		x.MultiIndex(l, idx)
		i := idx[n]
		for c := 0; c < m.C; c++ {
			idx[n] = c
			y.Set(y.At(idx...)+v*m.At(i, c), idx...)
		}
		idx[n] = i
	}
	return y
}

func TestMultiplyMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{4, 5}, {3, 4, 5}, {2, 3, 4, 3}, {1, 4, 2}, {5, 1, 3}} {
		x := tensor.Random(rng, dims...)
		for n := range dims {
			for _, c := range []int{1, 2, 6} {
				m := mat.RandomDense(dims[n], c, rng)
				want := multiplyRef(x, n, m)
				for _, threads := range []int{1, 2, 4} {
					got := Multiply(threads, x, n, m)
					if !tensor.ApproxEqual(got, want, 1e-12) {
						t.Errorf("dims=%v n=%d c=%d threads=%d: mismatch %g",
							dims, n, c, threads, tensor.MaxAbsDiff(got, want))
					}
				}
			}
		}
	}
}

func TestMultiplyMatchesTensorTTM(t *testing.T) {
	// Cross-check against the reference TTM in package tensor.
	rng := rand.New(rand.NewSource(2))
	x := tensor.Random(rng, 4, 3, 5)
	n := 1
	c := 4
	m := mat.RandomDense(3, c, rng)
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, c)
		for j := range rows[i] {
			rows[i][j] = m.At(i, j)
		}
	}
	want := x.TTM(n, rows)
	got := Multiply(2, x, n, m)
	if !tensor.ApproxEqual(got, want, 1e-12) {
		t.Errorf("ttm.Multiply != tensor.TTM: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestMultiplyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Random(rng, 3, 4, 2)
	for n := 0; n < 3; n++ {
		eye := mat.NewDense(x.Dim(n), x.Dim(n))
		for i := 0; i < x.Dim(n); i++ {
			eye.Set(i, i, 1)
		}
		y := Multiply(1, x, n, eye)
		if !tensor.ApproxEqual(x, y, 1e-14) {
			t.Errorf("mode %d: X ×n I != X", n)
		}
	}
}

// TTV as a special case: TTM with a 1-column matrix must equal TTV up to
// the kept singleton mode.
func TestMultiplyOneColumnMatchesTTV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Random(rng, 3, 5, 4)
	n := 1
	v := make([]float64, 5)
	m := mat.NewDense(5, 1)
	for i := range v {
		v[i] = rng.NormFloat64()
		m.Set(i, 0, v[i])
	}
	ttv := x.TTV(n, v)
	ttmOut := Multiply(1, x, n, m) // dims 3×1×4
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			d := ttv.At(a, b) - ttmOut.At(a, 0, b)
			if d > 1e-12 || d < -1e-12 {
				t.Fatalf("(%d,%d): ttv %v vs ttm %v", a, b, ttv.At(a, b), ttmOut.At(a, 0, b))
			}
		}
	}
}

func TestChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Random(rng, 3, 4, 5)
	ms := []mat.View{
		mat.RandomDense(3, 2, rng),
		{}, // skip mode 1
		mat.RandomDense(5, 3, rng),
	}
	got := Chain(2, x, ms)
	want := Multiply(1, Multiply(1, x, 0, ms[0]), 2, ms[2])
	if !tensor.ApproxEqual(got, want, 1e-12) {
		t.Errorf("chain mismatch %g", tensor.MaxAbsDiff(got, want))
	}
	if got.Dim(0) != 2 || got.Dim(1) != 4 || got.Dim(2) != 3 {
		t.Errorf("chain dims %v", got.Dims())
	}
}

func TestChainAllSkippedIsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Random(rng, 2, 3)
	y := Chain(1, x, make([]mat.View, 2))
	if y != x {
		t.Error("all-skip chain should return the input tensor")
	}
}

func TestMultiplyPanics(t *testing.T) {
	x := tensor.New(2, 3)
	for i, fn := range []func(){
		func() { Multiply(1, x, 2, mat.NewDense(2, 2)) },
		func() { Multiply(1, x, -1, mat.NewDense(2, 2)) },
		func() { Multiply(1, x, 0, mat.NewDense(3, 2)) },
		func() { Chain(1, x, make([]mat.View, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: TTM commutes across distinct modes:
// (X ×0 A) ×2 B = (X ×2 B) ×0 A.
func TestMultiplyCommutesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.Random(rng, rng.Intn(3)+2, rng.Intn(3)+2, rng.Intn(3)+2)
		a := mat.RandomDense(x.Dim(0), rng.Intn(3)+1, rng)
		b := mat.RandomDense(x.Dim(2), rng.Intn(3)+1, rng)
		lhs := Multiply(1, Multiply(1, x, 0, a), 2, b)
		rhs := Multiply(1, Multiply(1, x, 2, b), 0, a)
		return tensor.ApproxEqual(lhs, rhs, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
