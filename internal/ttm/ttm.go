// Package ttm implements the dense tensor-times-matrix product with the
// same no-reorder layout strategy as the MTTKRP kernels: the mode-n TTM is
// performed block-by-block on the I^R_n contiguous row-major submatrices of
// X_(n) (Li et al. [14], Austin et al. [5] — the works the paper credits
// for the 1-step algorithm's layout observation). TTM is the substrate on
// which Tucker-style analyses and the CP diagnostics in package cpd are
// built.
package ttm

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Multiply computes Y = X ×n M, defined by Y_(n) = Mᵀ·X_(n), where M is an
// I_n × C matrix. The result has dimension C in mode n and X's dimensions
// elsewhere. Work is split across t workers by tensor block, and no tensor
// entries are reordered: each block multiply is a GEMM on strided views.
func Multiply(t int, x *tensor.Dense, n int, m mat.View) *tensor.Dense {
	if n < 0 || n >= x.Order() {
		panic(fmt.Sprintf("ttm: mode %d out of range [0,%d)", n, x.Order()))
	}
	if m.R != x.Dim(n) {
		panic(fmt.Sprintf("ttm: matrix has %d rows, want I_%d = %d", m.R, n, x.Dim(n)))
	}
	c := m.C
	outDims := x.Dims()
	outDims[n] = c
	y := tensor.New(outDims...)

	il := x.SizeLeft(n)
	nblk := x.NumModeBlocks(n)
	// Y's natural layout has the same block structure: block j of Y_(n) is
	// a C × I^L_n row-major submatrix at offset j·C·I^L_n.
	ydata := y.Data()
	mt := m.T()
	// One workspace for the whole multiply: each worker packs its block
	// GEMMs from its own arena instead of taking the pool's workspace lock
	// once per block.
	p := parallel.Default()
	ws := p.Acquire()
	ws.Arena(parallel.Clamp(t, nblk) - 1) // pre-grow arenas before the dispatch
	p.For(t, nblk, func(w, lo, hi int) {
		ar := ws.Arena(w)
		for j := lo; j < hi; j++ {
			yblk := mat.FromRowMajor(ydata[j*c*il:(j+1)*c*il], c, il)
			blas.GemmArena(ar, 1, mt, x.ModeBlock(n, j), 0, yblk)
		}
	})
	ws.Release()
	return y
}

// Chain applies a TTM in every mode listed in ms (nil entries are skipped),
// contracting X with ms[k] in mode k. Dimensions shrink or grow per mode
// as the matrices dictate; modes are applied in increasing order. This is
// the multi-TTM used by Tucker compression and by the core-consistency
// diagnostic.
func Chain(t int, x *tensor.Dense, ms []mat.View) *tensor.Dense {
	if len(ms) != x.Order() {
		panic(fmt.Sprintf("ttm: chain has %d matrices for an order-%d tensor", len(ms), x.Order()))
	}
	y := x
	for n, m := range ms {
		if m.Data == nil {
			continue
		}
		y = Multiply(t, y, n, m)
	}
	return y
}
