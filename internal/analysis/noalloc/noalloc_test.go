package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "noallocfix")
}
