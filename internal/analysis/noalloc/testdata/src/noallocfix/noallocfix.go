// Fixture for the noalloc analyzer: every syntactic allocation class in
// annotated functions, unannotated functions left alone, and the
// //lint:ignore cold-path suppression contract.
package noallocfix

type point struct{ x, y float64 }

type summer struct{ total float64 }

func (s *summer) add(v float64) { s.total += v }

func sink(v any) { _ = v }

func sinkv(vs ...any) { _ = vs }

//mttkrp:noalloc
func badBuiltins(dst []float64, n int) []float64 {
	buf := make([]float64, n) // want `make in //mttkrp:noalloc function allocates`
	p := new(point)           // want `new in //mttkrp:noalloc function allocates`
	_ = p
	dst = append(dst, 1) // want `append in //mttkrp:noalloc function may grow`
	_ = buf
	return dst
}

//mttkrp:noalloc
func badLiterals() {
	xs := []float64{1, 2} // want `slice/map literal in //mttkrp:noalloc function allocates`
	m := map[string]int{} // want `slice/map literal in //mttkrp:noalloc function allocates`
	pt := &point{x: 1}    // want `&composite literal in //mttkrp:noalloc function allocates`
	_, _, _ = xs, m, pt
}

//mttkrp:noalloc
func badClosure(n int) {
	f := func() int { return n } // want `closure literal in //mttkrp:noalloc function allocates`
	_ = f()
	go f() // want `go statement in //mttkrp:noalloc function allocates a goroutine`
}

//mttkrp:noalloc
func badStrings(a, b string, bs []byte) (string, []byte) {
	c := a + b      // want `string concatenation in //mttkrp:noalloc function allocates`
	d := []byte(a)  // want `string conversion in //mttkrp:noalloc function allocates`
	e := string(bs) // want `string conversion in //mttkrp:noalloc function allocates`
	_ = c
	return e, d
}

//mttkrp:noalloc
func badBoxing(s *summer) {
	var v any
	v = 42 // want `assignment boxes a concrete value into an interface`
	_ = v
	sink(7)    // want `argument boxes into interface parameter of sink`
	g := s.add // want `method value s.add in //mttkrp:noalloc function allocates a bound closure`
	g(1)
}

//mttkrp:noalloc
func badVariadic(x int) {
	sinkv(x) // want `argument boxes into interface parameter of sinkv` `variadic call of sinkv in //mttkrp:noalloc function allocates the argument slice`
}

func unannotated(n int) []float64 {
	return make([]float64, n) // clean: not annotated
}

//mttkrp:noalloc
func warmup(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//lint:ignore mttkrp/noalloc cold path: first-touch growth is the warmup contract
		buf = make([]float64, n)
	}
	return buf[:n]
}

//mttkrp:noalloc
func steady(s *summer, dst, src []float64) {
	for i, v := range src {
		dst[i] = v * 2
	}
	s.add(dst[0])
}

// Dispatch-pointer calls: the runtime's simd kernels are reached through
// package-level function variables. The indirect call itself is
// allocation-free; signature-level checks (boxing, variadic slices) still
// apply through the value's type.

var dotPtr func(x, y []float64) float64

var anySink func(v any)

var anySinkVariadic func(vs ...any)

//mttkrp:noalloc
func goodDispatchCall(x, y []float64) float64 {
	return dotPtr(x, y) // indirect call: no allocation, no diagnostic
}

//mttkrp:noalloc
func badDispatchBoxing(v float64) {
	anySink(v)            // want `argument boxes into interface parameter of anySink`
	anySinkVariadic(1, 2) // want `argument boxes into interface parameter of anySinkVariadic` `argument boxes into interface parameter of anySinkVariadic` `variadic call of anySinkVariadic in //mttkrp:noalloc function allocates the argument slice`
}
