// Package noalloc structurally enforces the 0 allocs/op property of the
// runtime's steady-state paths. A function annotated with a
//
//	//mttkrp:noalloc
//
// line in its doc comment must not contain syntactic allocation sites:
// make/new/append, slice or map literals (and &T{} literals), closure
// literals, go statements, method-value captures, string concatenation
// or string<->slice conversions, or implicit interface conversions at
// call sites and assignments (boxing). TestSteadyAlloc and
// TestFusedPlanSteadyAlloc pin the property dynamically for two shapes;
// the annotation enforces it for every annotated function on every path,
// at vet time.
//
// Cold-path allocations that are part of the warmup contract (an arena
// growing a buffer the first time a shape is seen) are suppressed
// line-by-line with `//lint:ignore mttkrp/noalloc reason`, which keeps
// every intentional allocation in an annotated function visible and
// justified in the source.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags allocation sites in //mttkrp:noalloc functions.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation sites (make/append/new, literals, closures, boxing) in functions annotated //mttkrp:noalloc",
	Run:  run,
}

// Directive is the annotation marking a function as steady-state
// allocation-free.
const Directive = "//mttkrp:noalloc"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(e.Go, "go statement in //mttkrp:noalloc function allocates a goroutine")
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure literal in //mttkrp:noalloc function allocates; pre-bind it in a workspace frame")
			return false
		case *ast.CompositeLit:
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "slice/map literal in //mttkrp:noalloc function allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal in //mttkrp:noalloc function allocates")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(info.TypeOf(e)) {
				pass.Reportf(e.OpPos, "string concatenation in //mttkrp:noalloc function allocates")
			}
		case *ast.SelectorExpr:
			checkMethodValue(pass, e)
		case *ast.CallExpr:
			checkCall(pass, e)
		case *ast.AssignStmt:
			checkBoxingAssign(pass, e)
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether assigning an expression of type from into a slot
// of type to performs an allocating interface conversion.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil || !isInterface(to) || isInterface(from) {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// checkMethodValue flags method-value captures (f.m used as a value),
// which allocate a bound-method closure.
func checkMethodValue(pass *analysis.Pass, sel *ast.SelectorExpr) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	// A direct call f.m(...) does not allocate; only the value form does.
	// The call case is distinguished by the parent expression, which
	// ast.Inspect does not expose — instead, treat the selector as a
	// value when its type is recorded as a function value in Types with
	// a use outside a call. Conservatively, only flag selectors whose
	// recorded type is a signature AND that are not immediately invoked;
	// the driver pre-marks invoked selectors.
	if invokedSelectors[sel] {
		return
	}
	pass.Reportf(sel.Pos(), "method value %s.%s in //mttkrp:noalloc function allocates a bound closure", exprString(sel.X), sel.Sel.Name)
}

// invokedSelectors marks selector expressions that are the function of a
// call, filled per-run before the walk. Keyed by node identity, so
// concurrent packages are safe as long as each package is one pass (the
// driver runs analyzers sequentially).
var invokedSelectors map[*ast.SelectorExpr]bool

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if invokedSelectors == nil {
			invokedSelectors = make(map[*ast.SelectorExpr]bool)
		}
		invokedSelectors[sel] = true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in //mttkrp:noalloc function allocates")
			case "new":
				pass.Reportf(call.Pos(), "new in //mttkrp:noalloc function allocates")
			case "append":
				pass.Reportf(call.Pos(), "append in //mttkrp:noalloc function may grow its backing array")
			}
			return
		}
	}
	// Conversions: string <-> byte/rune slice copies allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if from != nil && (isString(to) != isString(from)) && (isString(to) || isString(from)) {
			if _, slice := to.Underlying().(*types.Slice); slice || isString(to) {
				pass.Reportf(call.Pos(), "string conversion in //mttkrp:noalloc function allocates")
			}
		}
		return
	}
	// Boxing at call sites: concrete argument into interface parameter.
	// Calls through function-typed values — the simd dispatch pointers
	// are the hot case — have no callee object; the indirection itself is
	// allocation-free (a plain indirect CALL), so only the signature-level
	// checks apply, resolved from the value's type.
	callee := analysis.CalleeFunc(info, call)
	name := exprString(call.Fun)
	var sig *types.Signature
	if callee != nil {
		s, ok := callee.Type().(*types.Signature)
		if !ok {
			return
		}
		sig, name = s, callee.Name()
	} else {
		ft := info.TypeOf(call.Fun)
		if ft == nil {
			return
		}
		s, ok := ft.Underlying().(*types.Signature)
		if !ok {
			return
		}
		sig = s
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info.TypeOf(arg), pt) {
			pass.Reportf(arg.Pos(), "argument boxes into interface parameter of %s in //mttkrp:noalloc function", name)
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		// The variadic backing slice itself allocates.
		pass.Reportf(call.Pos(), "variadic call of %s in //mttkrp:noalloc function allocates the argument slice", name)
	}
}

// checkBoxingAssign flags concrete-to-interface assignments.
func checkBoxingAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i := range st.Rhs {
		if boxes(info.TypeOf(st.Rhs[i]), info.TypeOf(st.Lhs[i])) {
			pass.Reportf(st.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in //mttkrp:noalloc function")
		}
	}
}

func exprString(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "expr"
}
