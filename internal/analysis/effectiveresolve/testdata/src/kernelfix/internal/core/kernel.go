// Kernel-package fixture for the effectiveresolve analyzer: the package
// path ends in internal/core, so the Workers() and raw-Threads rules
// apply in addition to the global GOMAXPROCS rule.
package core

import (
	"runtime"

	"repro/internal/parallel"
)

type Options struct {
	Threads int
}

func BadProcs() int {
	return runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS read outside the parallel runtime`
}

func BadWorkers(p *parallel.Pool, n int) {
	t := p.Workers() // want `Workers\(\) reports the current team width`
	parallel.For(t, n, func(w, lo, hi int) {})
}

func BadRawThreads(opts Options, n int) {
	parallel.For(opts.Threads, n, func(w, lo, hi int) {}) // want `raw Threads field passed as a region width`
	bufs := make([][]float64, opts.Threads)               // want `raw Threads field sizes a buffer set`
	_ = bufs
	rs := parallel.Split(n, opts.Threads) // want `raw Threads field passed as a region width`
	_ = rs
	lo, hi := parallel.BlockRange(n, opts.Threads, 0) // want `raw Threads field passed as a region width`
	_, _ = lo, hi
}

func GoodResolved(p *parallel.Pool, opts Options, n int) {
	t := parallel.Clamp(parallel.EffectiveOn(p, opts.Threads), n)
	bufs := make([][]float64, t)
	_ = bufs
	p.For(t, n, func(w, lo, hi int) {})
}

func GoodEffective(opts Options, n int) {
	t := parallel.Effective(opts.Threads)
	parallel.For(t, n, func(w, lo, hi int) {})
}
