// Non-kernel fixture for the effectiveresolve analyzer: admission code may
// read team widths (Workers is legitimate here), but GOMAXPROCS is still
// reserved to the parallel runtime.
package servefix

import (
	"runtime"

	"repro/internal/parallel"
)

func Budget(p *parallel.Pool) int {
	return p.Workers() // clean: scheduler code reads the team width for budgets
}

func BadProcs() int {
	return runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS read outside the parallel runtime`
}
