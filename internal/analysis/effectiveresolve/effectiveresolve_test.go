package effectiveresolve_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/effectiveresolve"
)

func TestEffectiveResolve(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), effectiveresolve.Analyzer,
		"kernelfix/internal/core", "servefix")
}
