// Package effectiveresolve enforces the t = 0 resolution contract of the
// worker runtime (DESIGN.md; PR 2): a requested worker count is resolved
// to a dispatch width only by parallel.Effective / EffectiveOn / Clamp.
// In kernel packages it flags
//
//   - calls to Workers() on a parallel executor (Pool/Lease/Executor):
//     Workers reports the current team width, which is neither a cap nor
//     the width a t = 0 dispatch resolves to;
//   - a raw Threads configuration field used directly to size a parallel
//     region (the t argument of For/Run/ForDynamic/ReduceSum/Split/
//     BlockRange) or a make() — an unresolved t <= 0 silently yields a
//     zero-width region or an empty buffer set.
//
// Everywhere outside the runtime itself it also flags direct
// runtime.GOMAXPROCS reads: parallel.DefaultThreads (or Effective) is the
// single blessed spelling, so the resolution rule has one definition.
package effectiveresolve

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces width resolution through parallel.Effective.
var Analyzer = &analysis.Analyzer{
	Name: "effectiveresolve",
	Doc:  "flag Pool.Workers()/raw Threads/runtime.GOMAXPROCS used to size parallel work instead of parallel.Effective",
	Run:  run,
}

// kernelPkgs are the package-path suffixes treated as kernel code, where
// the Workers() and raw-Threads rules apply. The scheduler (serve), the
// transport and the daemons legitimately read team widths for admission
// budgets and stats reporting.
var kernelPkgs = []string{
	"internal/core", "internal/blas", "internal/krp", "internal/ttm",
	"internal/tucker", "internal/fmri", "internal/stream", "internal/tensor",
	"internal/cpd", "internal/la", "internal/mat", "internal/bench",
}

func isKernelPkg(path string) bool {
	for _, k := range kernelPkgs {
		if analysis.PkgPathHasSuffix(path, k) {
			return true
		}
	}
	return false
}

// tArgIndex maps region-sizing callables to the position of their t
// argument.
var tArgIndex = map[string]int{
	"For": 0, "Run": 0, "ForDynamic": 0, "ReduceSum": 0,
	"Split": 1, "BlockRange": 1,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inParallel := analysis.PkgPathHasSuffix(path, "internal/parallel")
	kernel := isKernelPkg(path)
	info := pass.TypesInfo

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !inParallel && analysis.IsPkgFunc(info, call, "runtime", "GOMAXPROCS") {
				pass.Reportf(call.Pos(), "runtime.GOMAXPROCS read outside the parallel runtime; use parallel.DefaultThreads (or Effective) so the t=0 rule has one definition")
			}
			if !kernel {
				return true
			}
			if analysis.MethodOn(info, call, analysis.ParallelPkg, "Workers") {
				pass.Reportf(call.Pos(), "Workers() reports the current team width, not a dispatch width; size kernel work with parallel.Effective/EffectiveOn")
			}
			checkRawThreads(pass, call)
			return true
		})
	}
	return nil
}

// checkRawThreads flags a bare Threads field in a region-sizing position.
func checkRawThreads(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				if threadsField(info, arg) {
					pass.Reportf(arg.Pos(), "raw Threads field sizes a buffer set; resolve it first with parallel.Effective/EffectiveOn (t<=0 selects the default width)")
				}
			}
			return
		}
	}
	f := analysis.CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != analysis.ParallelPkg {
		return
	}
	idx, ok := tArgIndex[f.Name()]
	if !ok || idx >= len(call.Args) {
		return
	}
	if threadsField(info, call.Args[idx]) {
		pass.Reportf(call.Args[idx].Pos(), "raw Threads field passed as a region width; resolve it first with parallel.Effective/EffectiveOn")
	}
}

// threadsField reports whether e is a selection of a struct field named
// Threads.
func threadsField(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Threads" {
		return false
	}
	selection, ok := info.Selections[sel]
	return ok && selection.Kind() == types.FieldVal
}
