//go:build lintfixture

// Package lintfixture holds a deliberately seeded invariant violation,
// compiled only under the lintfixture build tag. CI proves the lint gate
// actually gates by running
//
//	go vet -tags lintfixture -vettool=<mttkrp-lint> ./internal/analysis/lintfixture
//
// and requiring it to FAIL; cmd/mttkrp-lint's tests do the same. A lint
// job that passes this package has silently stopped checking anything.
package lintfixture

import "repro/internal/parallel"

// leakedBuffer outlives every workspace region on purpose: storing an
// arena-leased slice into a package-level variable is the exact aliasing
// bug class arenaescape exists to catch.
var leakedBuffer []float64

// Seed leaks an arena-backed buffer into a global.
func Seed(ws *parallel.Workspace, n int) {
	leakedBuffer = ws.Arena(0).Float64("seeded-violation", n)
}
