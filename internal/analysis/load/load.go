// Package load type-checks Go packages for the mttkrp-lint analyzers
// without golang.org/x/tools: it parses sources with go/parser and
// resolves imports through gc export data produced by the `go` command
// (`go list -export` writes export files into the build cache; the
// standard go/importer reads them via a lookup function). Three entry
// points cover the three ways the suite runs:
//
//   - Patterns: standalone mode (`go run ./cmd/mttkrp-lint ./...`) —
//     shells out to `go list -deps -export -json` and type-checks every
//     non-standard package it returns;
//   - Vet: `go vet -vettool` mode — loads the single package described by
//     the vet config file cmd/go passes to vet tools;
//   - Fixture: analysistest mode — loads a GOPATH-style fixture tree
//     (testdata/src/<import/path>/*.go), resolving imports first against
//     the fixture tree, then against the real build (so fixtures can
//     declare stub packages under runtime import paths or import the real
//     runtime directly).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// exportLookup is a types importer over a path → export-file map, backed
// by the standard gc importer.
type exportLookup struct {
	mu    sync.Mutex
	files map[string]string // package path → export data file
	gc    types.Importer
}

func newExportLookup(fset *token.FileSet) *exportLookup {
	e := &exportLookup{files: make(map[string]string)}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e.mu.Lock()
		f, ok := e.files[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return e
}

func (e *exportLookup) add(path, file string) {
	if file == "" {
		return
	}
	e.mu.Lock()
	e.files[path] = file
	e.mu.Unlock()
}

func (e *exportLookup) has(path string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.files[path]
	return ok
}

func (e *exportLookup) Import(path string) (*types.Package, error) {
	return e.gc.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for patterns in dir and
// decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,Standard,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Patterns loads every non-standard-library package matched by the go
// package patterns (plus their non-standard dependencies), type-checked
// against gc export data. dir is the working directory for the go command
// ("" = current).
func Patterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := newExportLookup(fset)
	for _, lp := range listed {
		exports.add(lp.ImportPath, lp.Export)
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := check(fset, lp.ImportPath, files, exports, "")
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, path string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := newInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // collect all errors; first one reported below
	}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, _ := conf.Check(path, fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// VetConfig mirrors the JSON configuration cmd/go writes for vet tools
// (cmd/go/internal/work.vetConfig). Fields the suite does not consume are
// still decoded so the file round-trips cleanly.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// goVersionRE guards types.Config.GoVersion, which panics on malformed
// versions.
var goVersionRE = regexp.MustCompile(`^go[0-9]+(\.[0-9]+)*$`)

// Vet loads the single package described by a vet config file. The
// returned package is nil (with a nil error) when there is nothing to
// analyze: a VetxOnly dependency pass, or a package whose non-test file
// list is empty (external test packages). Test files are excluded from
// analysis — the suite checks production invariants, and test code
// exercises forbidden shapes on purpose (the region-deadlock test in
// internal/parallel being the canonical example).
func Vet(cfgPath string) (*Package, *VetConfig, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		return nil, cfg, nil
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, cfg, nil
	}
	fset := token.NewFileSet()
	exports := newExportLookup(fset)
	for path, file := range cfg.PackageFile {
		exports.add(path, file)
	}
	imp := &vetImporter{exports: exports, importMap: cfg.ImportMap}
	goVersion := cfg.GoVersion
	if !goVersionRE.MatchString(goVersion) {
		goVersion = ""
	}
	pkg, err := check(fset, cfg.ImportPath, files, imp, goVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, cfg, nil
		}
		return nil, cfg, err
	}
	return pkg, cfg, nil
}

// vetImporter resolves source import paths through the vet config's
// ImportMap before looking up export data.
type vetImporter struct {
	exports   *exportLookup
	importMap map[string]string
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := v.importMap[path]; ok {
		path = mapped
	}
	return v.exports.Import(path)
}

// fixtureState is the process-wide cache behind Fixture: export data is
// resolved through `go list` once per import path and shared across
// fixture loads (analysistest calls Fixture once per fixture package).
var fixtureState struct {
	mu      sync.Mutex
	fset    *token.FileSet
	exports *exportLookup
}

// Fixture loads the fixture package at root/path (a GOPATH-style source
// tree: the directory name under root is the package's import path).
// Imports resolve against sibling fixture directories first, then against
// the real build via `go list -export` run from dir (the module the test
// runs in), so fixtures may declare stub packages under any import path
// or import real module/stdlib packages directly.
func Fixture(dir, root, path string) (*Package, error) {
	fixtureState.mu.Lock()
	if fixtureState.fset == nil {
		fixtureState.fset = token.NewFileSet()
		fixtureState.exports = newExportLookup(fixtureState.fset)
	}
	fset, exports := fixtureState.fset, fixtureState.exports
	fixtureState.mu.Unlock()

	imp := &fixtureImporter{dir: dir, root: root, fset: fset, exports: exports, loaded: make(map[string]*Package)}
	pkg, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// fixtureImporter resolves imports for one fixture load.
type fixtureImporter struct {
	dir     string // module directory `go list` runs in
	root    string // fixture tree root (testdata/src)
	fset    *token.FileSet
	exports *exportLookup
	loaded  map[string]*Package // fixture packages checked this load
	stack   []string            // cycle detection
}

func (fi *fixtureImporter) load(path string) (*Package, error) {
	if p, ok := fi.loaded[path]; ok {
		return p, nil
	}
	for _, s := range fi.stack {
		if s == path {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", path)
	}
	fi.stack = append(fi.stack, path)
	pkg, err := check(fi.fset, path, files, fi, "")
	fi.stack = fi.stack[:len(fi.stack)-1]
	if err != nil {
		return nil, err
	}
	fi.loaded[path] = pkg
	return pkg, nil
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	// Fixture tree first: a stub under the runtime's import path shadows
	// the real package for this load.
	if st, err := os.Stat(filepath.Join(fi.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	// Real build: resolve export data on demand (once per path,
	// process-wide) and import it.
	if !fi.exports.has(path) {
		listed, err := goList(fi.dir, []string{path})
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			fi.exports.add(lp.ImportPath, lp.Export)
		}
	}
	return fi.exports.Import(path)
}
