// Package suite enumerates the analyzers shipped by cmd/mttkrp-lint.
// DESIGN.md §11 maps each one to the design invariant it machine-checks.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/arenaescape"
	"repro/internal/analysis/effectiveresolve"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/phasehook"
	"repro/internal/analysis/regionblock"
)

// All returns the full analyzer suite, in report order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaescape.Analyzer,
		effectiveresolve.Analyzer,
		noalloc.Analyzer,
		phasehook.Analyzer,
		regionblock.Analyzer,
	}
}
