package driver

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestDirectiveParsing pins the //lint:ignore grammar: a scoped directive
// without a reason is itself a diagnostic, foreign-scope directives are
// ignored, and well-formed multi-name directives parse silently.
func TestDirectiveParsing(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.Fixture("", root, "directivefix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunPackage(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the malformed-directive one: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "directive" || !strings.Contains(d.Message, "need a reason") {
		t.Fatalf("unexpected diagnostic: %s: %s", d.Analyzer, d.Message)
	}

	ignores := collectIgnores(pkg, func(analysis.Diagnostic) {})
	if len(ignores) != 1 {
		t.Fatalf("got %d parsed ignores, want 1 (reasonless and foreign-scope directives don't parse): %+v", len(ignores), ignores)
	}
	if !ignores[0].names["arenaescape"] || !ignores[0].names["noalloc"] {
		t.Fatalf("multi-name directive did not parse both names: %+v", ignores)
	}
}
