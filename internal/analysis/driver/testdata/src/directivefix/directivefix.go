// Fixture for the driver's //lint:ignore directive parsing.
package directivefix

func f() int {
	//lint:ignore mttkrp/noalloc
	//lint:ignore ST1000 foreign scope, left to its own tool
	//lint:ignore mttkrp/arenaescape,mttkrp/noalloc multi-name with a reason
	return 0
}
