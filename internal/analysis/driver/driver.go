// Package driver runs the mttkrp-lint analyzer suite over loaded packages
// and implements the two execution protocols of cmd/mttkrp-lint:
// standalone (`go run ./cmd/mttkrp-lint ./...`) and the `go vet -vettool`
// unit-checker protocol (one JSON config file per package, written by
// cmd/go).
//
// # Suppression directives
//
// A comment of the form
//
//	//lint:ignore mttkrp/<name>[,mttkrp/<name>...] reason
//
// on the flagged line, or on the line directly above it, suppresses the
// named analyzers' diagnostics for that line. The reason is mandatory: a
// scoped directive without one is itself reported (as mttkrp/directive).
// Directives scoped to other tools (staticcheck check codes, etc.) are
// left alone.
package driver

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// scope is the directive namespace this suite owns.
const scope = "mttkrp/"

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	file  string
	line  int
	names map[string]bool // analyzer names (without the mttkrp/ prefix)
}

// collectIgnores parses the suppression directives of a package and
// reports malformed ones through report.
func collectIgnores(pkg *load.Package, report func(analysis.Diagnostic)) []ignore {
	var out []ignore
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 || !strings.HasPrefix(fields[0], scope) {
					continue // another tool's directive
				}
				if len(fields) < 2 {
					report(analysis.Diagnostic{
						Analyzer: "directive",
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore: need a reason after the check name",
					})
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimPrefix(n, scope)] = true
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, ignore{file: pos.Filename, line: pos.Line, names: names})
			}
		}
	}
	return out
}

// RunPackage applies the analyzers to one package and returns its
// surviving diagnostics sorted by position.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	ignores := collectIgnores(pkg, report)
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(pkg.Fset, ignores, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// suppressed reports whether an ignore directive on the diagnostic's line
// (or the line above it) names the diagnostic's analyzer.
func suppressed(fset *token.FileSet, ignores []ignore, d analysis.Diagnostic) bool {
	if len(ignores) == 0 || d.Analyzer == "directive" {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, ig := range ignores {
		if ig.file == pos.Filename && (ig.line == pos.Line || ig.line+1 == pos.Line) && ig.names[d.Analyzer] {
			return true
		}
	}
	return false
}

// printDiags writes diagnostics in the standard file:line:col form.
func printDiags(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s%s: %s\n", fset.Position(d.Pos), scope, d.Analyzer, d.Message)
	}
}

// Standalone loads the packages matched by patterns (in the current
// module) and lints them, printing diagnostics to stderr. The return
// value is the process exit code: 0 clean, 1 diagnostics, 2 failure.
func Standalone(stderr io.Writer, analyzers []*analysis.Analyzer, patterns []string) int {
	pkgs, err := load.Patterns("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
			return 2
		}
		if len(diags) > 0 {
			found = true
			printDiags(stderr, pkg.Fset, diags)
		}
	}
	if found {
		return 1
	}
	return 0
}

// Vet implements the cmd/go vet-tool protocol for one package config
// file: analyze, write the (empty — the suite is fact-free) .vetx output
// so cmd/go can cache the result, and print diagnostics to stderr. The
// return value is the process exit code.
func Vet(stderr io.Writer, analyzers []*analysis.Analyzer, cfgPath string) int {
	pkg, cfg, err := load.Vet(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		// The suite computes no cross-package facts; an empty output file
		// still lets cmd/go cache "this package was linted".
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
			return 1
		}
	}
	if pkg == nil {
		return 0 // dependency pass (VetxOnly) or nothing to analyze
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 1
	}
	if len(diags) > 0 {
		printDiags(stderr, pkg.Fset, diags)
		return 2
	}
	return 0
}
