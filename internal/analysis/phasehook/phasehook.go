// Package phasehook enforces the phase-boundary hook contract of PR 4's
// mid-request rebalancing: budget changes (Lease.Resize) land only at
// safe points, so the safe points must actually exist. Two rules:
//
//  1. In the kernel package (path suffix internal/core), every exported
//     entry point whose name contains "Into" and that takes an Options
//     parameter must invoke Options.PhaseNotify — directly or through
//     another function of the same package. A kernel entered without a
//     phase notification never gives the scheduler a reconcile point, so
//     an admitted request runs its whole computation on a stale budget.
//
//  2. A loop that calls core.SweepAll (an ALS sweep loop) must also call
//     a reconcile safe-point inside the loop body: parallel.Reconcile,
//     or a Reconcile method of the parallel runtime. Sweeps are the
//     natural rebalancing boundary (cpd.ALS/NNALS pin this); a sweep
//     loop without one starves mid-request rebalancing for the whole
//     decomposition.
package phasehook

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces PhaseNotify / Reconcile safe-points.
var Analyzer = &analysis.Analyzer{
	Name: "phasehook",
	Doc:  "flag *Into kernel entry points that never invoke Options.PhaseNotify, and SweepAll loops without a Reconcile safe-point",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathHasSuffix(pass.Pkg.Path(), "internal/core") {
		checkEntryPoints(pass)
	}
	checkSweepLoops(pass)
	return nil
}

// checkEntryPoints implements rule 1 with a transitive "notifies"
// closure over the package's static call graph.
func checkEntryPoints(pass *analysis.Pass) {
	info := pass.TypesInfo

	type funcNode struct {
		decl     *ast.FuncDecl
		notifies bool
		callees  []*types.Func
	}
	nodes := make(map[*types.Func]*funcNode)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					// Any touch of a PhaseNotify field (nil-check or
					// call) marks the function as notifying.
					if e.Sel.Name == "PhaseNotify" {
						if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
							node.notifies = true
						}
					}
				case *ast.CallExpr:
					if callee := analysis.CalleeFunc(info, e); callee != nil && callee.Pkg() == pass.Pkg {
						node.callees = append(node.callees, callee)
					}
				}
				return true
			})
			nodes[obj] = node
		}
	}

	// Fixpoint: a function notifies if any same-package callee does.
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			if node.notifies {
				continue
			}
			for _, callee := range node.callees {
				if cn, ok := nodes[callee]; ok && cn.notifies {
					node.notifies = true
					changed = true
					break
				}
			}
		}
	}

	for obj, node := range nodes {
		name := obj.Name()
		if !obj.Exported() || !strings.Contains(name, "Into") || node.notifies {
			continue
		}
		if !hasOptionsParam(obj) {
			continue
		}
		pass.Reportf(node.decl.Name.Pos(), "exported kernel entry point %s never invokes Options.PhaseNotify (directly or via the package call graph); requests entering here give the scheduler no reconcile safe-point", name)
	}
}

// hasOptionsParam reports whether f takes a parameter whose type is named
// Options (the kernel options struct of its own package).
func hasOptionsParam(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if n := analysis.NamedOf(sig.Params().At(i).Type()); n != nil && n.Obj().Name() == "Options" {
			return true
		}
	}
	return false
}

// checkSweepLoops implements rule 2.
func checkSweepLoops(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			var sweep *ast.CallExpr
			reconciles := false
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := analysis.CalleeFunc(info, call); callee != nil {
					if callee.Name() == "SweepAll" && callee.Pkg() != nil && analysis.PkgPathHasSuffix(callee.Pkg().Path(), "internal/core") {
						if sweep == nil {
							sweep = call
						}
					}
					if isReconcile(callee) {
						reconciles = true
					}
				}
				return true
			})
			if sweep != nil && !reconciles {
				pass.Reportf(sweep.Pos(), "sweep loop calls core.SweepAll but never parallel.Reconcile; mid-request budget changes cannot land at sweep boundaries")
			}
			return true
		})
	}
}

// isReconcile reports whether f is a reconcile safe-point: the
// parallel.Reconcile helper or a Reconcile method of the runtime.
func isReconcile(f *types.Func) bool {
	if f.Name() != "Reconcile" || f.Pkg() == nil {
		return false
	}
	return analysis.PkgPathHasSuffix(f.Pkg().Path(), "internal/parallel")
}
