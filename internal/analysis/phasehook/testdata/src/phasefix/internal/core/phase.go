// Fixture for the phasehook analyzer. The package path ends in
// internal/core, so rule 1 (exported *Into entry points must reach
// Options.PhaseNotify) applies; rule 2 (SweepAll loops need a Reconcile)
// applies everywhere.
package core

import "repro/internal/parallel"

type Options struct {
	PhaseNotify func(phase string)
}

func notify(opts Options, phase string) {
	if opts.PhaseNotify != nil {
		opts.PhaseNotify(phase)
	}
}

func OneStepInto(dst []float64, opts Options) { // want `OneStepInto never invokes Options.PhaseNotify`
	for i := range dst {
		dst[i] = 0
	}
}

func TwoStepInto(dst []float64, opts Options) { // clean: notifies through a helper
	notify(opts, "two-step")
	for i := range dst {
		dst[i] = 0
	}
}

func ComputeInto(dst []float64, opts Options) { // clean: notifies directly
	if opts.PhaseNotify != nil {
		opts.PhaseNotify("compute")
	}
	for i := range dst {
		dst[i] = 0
	}
}

func CopyInto(dst, src []float64) { // clean: no Options parameter
	copy(dst, src)
}

func Compute(dst []float64, opts Options) { // clean: not an *Into entry point
	for i := range dst {
		dst[i] = 0
	}
}

func reorderInto(dst []float64, opts Options) { // clean: unexported
	for i := range dst {
		dst[i] = 0
	}
}

func SweepAll(opts Options) {}

func badSweepLoop(opts Options) {
	for i := 0; i < 5; i++ {
		SweepAll(opts) // want `sweep loop calls core.SweepAll but never parallel.Reconcile`
	}
}

func goodSweepLoop(p *parallel.Pool, opts Options) {
	for i := 0; i < 5; i++ {
		SweepAll(opts)
		parallel.Reconcile(p)
	}
}

func goodLeaseSweepLoop(l *parallel.Lease, opts Options) {
	for i := 0; i < 5; i++ {
		SweepAll(opts)
		l.Reconcile()
	}
}
