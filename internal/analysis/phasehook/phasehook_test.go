package phasehook_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/phasehook"
)

func TestPhaseHook(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), phasehook.Analyzer, "phasefix/internal/core")
}
