// Package regionblock flags blocking operations inside a parallel region
// body. A region dispatch holds the executor's region mutex for the whole
// region and completes through a barrier, so a body that blocks —
// channel send/receive, select without default, sync waits, lease
// acquisition, a nested dispatch, or a Reconcile — can deadlock the whole
// team: the barrier never completes, the region mutex is never released,
// and every later dispatch (including the lease Close/Reconcile path that
// would have freed the blocker) queues behind it forever. This is the
// deadlock shape PR 2's panic-safety work danced around;
// parallel.TestRegionBodyBlockingSendDeadlocksLease documents it by
// construction.
//
// The analysis is lexical: it inspects function literals passed directly
// as the body argument of Run/For/ForDynamic on the parallel runtime
// (package-level or executor methods). Bodies passed as bound methods
// (the kernels' pre-bound frame workers) are out of lexical reach and are
// covered by the runtime's race tests instead. Goroutines launched from
// inside a body escape the region and are exempt.
package regionblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags blocking operations inside region bodies.
var Analyzer = &analysis.Analyzer{
	Name: "regionblock",
	Doc:  "flag blocking operations (channel ops, sync waits, lease calls, nested dispatch) inside parallel region bodies",
	Run:  run,
}

// bodyArgIndex maps dispatch functions to the position of their body
// argument.
var bodyArgIndex = map[string]int{"Run": 1, "For": 2, "ForDynamic": 3}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathHasSuffix(pass.Pkg.Path(), "internal/parallel") {
		// The runtime implements the primitive: its dispatch loop hands
		// jobs to workers over channels by design.
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != analysis.ParallelPkg {
				return true
			}
			idx, ok := bodyArgIndex[callee.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[idx]).(*ast.FuncLit); ok {
				checkBody(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody walks one region body, skipping goroutine subtrees.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Channel ops that are the comm clause of a select are judged through
	// the select itself (flagged only when it has no default case), not as
	// standalone blocking ops.
	comm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			comm[cc.Comm] = true
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				comm[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					comm[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			return false // a spawned goroutine escapes the region
		case *ast.SendStmt:
			if !comm[st] {
				pass.Reportf(st.Arrow, "channel send inside a parallel region body can deadlock the region barrier")
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !comm[st] {
				pass.Reportf(st.OpPos, "channel receive inside a parallel region body can deadlock the region barrier")
			}
		case *ast.SelectStmt:
			if !hasDefault(st) {
				pass.Reportf(st.Select, "blocking select inside a parallel region body can deadlock the region barrier (add a default case or move it out of the region)")
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(st.X).Underlying().(*types.Chan); ok {
				pass.Reportf(st.For, "ranging over a channel inside a parallel region body can deadlock the region barrier")
			}
		case *ast.CallExpr:
			checkCall(pass, st)
		}
		return true
	})
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkCall flags blocking calls inside a region body.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if analysis.MethodOn(info, call, "sync", "Wait") {
		pass.Reportf(call.Pos(), "sync wait inside a parallel region body can deadlock the region barrier")
		return
	}
	callee := analysis.CalleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != analysis.ParallelPkg {
		return
	}
	switch callee.Name() {
	case "Run", "For", "ForDynamic", "ReduceSum":
		pass.Reportf(call.Pos(), "nested dispatch inside a region body deadlocks the executing pool; use the sequential arena helpers instead")
	case "Reconcile":
		pass.Reportf(call.Pos(), "Reconcile blocks for the region barrier; call it at phase boundaries, never inside a region body")
	case "Lease", "Close":
		pass.Reportf(call.Pos(), "%s inside a region body blocks on the region mutex and deadlocks the team", callee.Name())
	}
}
