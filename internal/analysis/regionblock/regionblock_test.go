package regionblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/regionblock"
)

func TestRegionBlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), regionblock.Analyzer, "regionfix")
}
