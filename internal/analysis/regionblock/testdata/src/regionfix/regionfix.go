// Fixture for the regionblock analyzer: blocking operations inside
// parallel region bodies, next to the non-blocking shapes it must accept.
package regionfix

import (
	"sync"

	"repro/internal/parallel"
)

func badSend(p *parallel.Pool, ch chan int, n int) {
	p.For(4, n, func(w, lo, hi int) {
		ch <- lo // want `channel send inside a parallel region body`
	})
}

func badRecv(p *parallel.Pool, ch chan int) {
	p.Run(2, func(w int) {
		<-ch // want `channel receive inside a parallel region body`
	})
}

func badSelect(ch chan int) {
	parallel.Run(2, func(w int) {
		select { // want `blocking select inside a parallel region body`
		case <-ch:
		}
	})
}

func badRangeChan(p *parallel.Pool, ch chan int) {
	p.Run(2, func(w int) {
		for range ch { // want `ranging over a channel inside a parallel region body`
		}
	})
}

func badWait(p *parallel.Pool, wg *sync.WaitGroup, n int) {
	p.For(2, n, func(w, lo, hi int) {
		wg.Wait() // want `sync wait inside a parallel region body`
	})
}

func badNested(p *parallel.Pool, n int) {
	p.Run(2, func(w int) {
		parallel.For(2, n, func(w2, lo, hi int) { // want `nested dispatch inside a region body`
			_ = lo
		})
	})
}

func badReconcile(l *parallel.Lease, n int) {
	l.For(2, n, func(w, lo, hi int) {
		l.Reconcile() // want `Reconcile blocks for the region barrier`
	})
}

func badLease(p *parallel.Pool, n int) {
	p.For(2, n, func(w, lo, hi int) {
		l := p.Lease(1) // want `Lease inside a region body blocks on the region mutex`
		l.Close()       // want `Close inside a region body blocks on the region mutex`
	})
}

func okSelectDefault(ch chan int) {
	parallel.Run(2, func(w int) {
		select {
		case <-ch:
		default:
		}
	})
}

func okGoroutine(p *parallel.Pool, ch chan int, n int) {
	p.For(2, n, func(w, lo, hi int) {
		go func() { ch <- lo }() // clean: the goroutine escapes the region
	})
}

func okBody(p *parallel.Pool, dst []float64, n int) {
	p.For(2, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i]++
		}
	})
}
