package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ParallelPkg is the import path of the execution runtime whose invariants
// the suite enforces. Fixtures under analysistest use stub packages with
// the same path, so analyzers must match by path + name, never by object
// identity.
const ParallelPkg = "repro/internal/parallel"

// CorePkg is the import path of the MTTKRP kernel package.
const CorePkg = "repro/internal/core"

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsPkgType reports whether t (possibly behind a pointer) is any named
// type declared in pkgPath.
func IsPkgType(t types.Type, pkgPath string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// CalleeFunc resolves the *types.Func a call expression invokes (package
// function or method), or nil for builtins, conversions and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Func.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// MethodOn reports whether call invokes a method with the given name whose
// receiver type (possibly behind a pointer) is declared in pkgPath.
// Interface methods count when the interface itself is declared in pkgPath
// (e.g. parallel.Executor).
func MethodOn(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if f.Name() == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	// The method's receiver names the declaring type; for interface
	// methods it is the interface type.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if IsPkgType(sig.Recv().Type(), pkgPath) {
			return true
		}
		// Interface method: the receiver type is the interface; its
		// declaring package is on the *types.Func itself.
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return f.Pkg() != nil && f.Pkg().Path() == pkgPath
		}
	}
	// Fall back to the static type of the receiver expression, which
	// covers embedded fields whose methods are promoted.
	return IsPkgType(info.TypeOf(sel.X), pkgPath)
}

// PkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix. Fixture packages load under synthetic paths, so analyzers
// that gate on "which package am I looking at" match by suffix.
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
