// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check,
// a Pass is one analyzer applied to one type-checked package, and a
// Diagnostic is one finding. It exists because this module builds offline
// against the standard library only; the subset implemented here is
// exactly what the mttkrp-lint suite needs (package-at-a-time syntactic +
// type-based checks, no cross-package facts).
//
// The analyzers themselves live in the subpackages arenaescape,
// effectiveresolve, phasehook, regionblock and noalloc; package suite
// collects them, package driver runs them (standalone or as a `go vet
// -vettool`), and package analysistest runs their golden-file fixtures.
// DESIGN.md §11 maps each analyzer to the runtime invariant it enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one lint pass. Name is the identifier used in
// diagnostics and in `//lint:ignore mttkrp/<name> reason` suppression
// directives; Doc is a one-paragraph description whose first line is a
// summary.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer. Files holds
// the parsed sources the driver wants analyzed (test files are excluded;
// see driver); TypesInfo is fully populated (Types, Defs, Uses,
// Selections, Implicits, Scopes).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a finding. The driver wires this; analyzers must
	// use it rather than printing.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of one analyzer at one position.
type Diagnostic struct {
	Analyzer string // filled by the driver from the reporting analyzer
	Pos      token.Pos
	Message  string
}
