package arenaescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaescape.Analyzer, "arenafix")
}
