// Fixture for the arenaescape analyzer: arena-leased buffers escaping
// their region through fields, globals, channels and goroutines, next to
// the clean shapes the analyzer must stay silent on.
package arenafix

import "repro/internal/parallel"

type cache struct {
	buf  []float64
	ints []int
}

type pair struct{ a, b []float64 }

type pairHolder struct{ p pair }

var global []float64

var registry = map[string][]float64{}

func use(xs []float64) {}

func consume(xs []float64) {}

func badField(ws *parallel.Workspace, c *cache, n int) {
	ar := ws.Arena(0)
	buf := ar.Float64("x", n)
	c.buf = buf               // want `stored into struct field buf`
	c.ints = ar.Ints("ix", n) // want `stored into struct field ints`
}

func badGlobal(ws *parallel.Workspace, n int) {
	buf := ws.PlanArena().Float64("g", n)
	global = buf              // want `package-level variable global`
	registry["k"] = buf[:n/2] // want `package-level container registry`
}

func badChan(ws *parallel.Workspace, ch chan []float64, n int) {
	buf := ws.Arena(1).Float64("c", n)
	ch <- buf // want `sent on a channel`
}

func badGo(ws *parallel.Workspace, n int) {
	buf := ws.Arena(0).Float64("g", n)
	go consume(buf) // want `passed to a goroutine`
	go func() {
		use(buf) // want `captured by a goroutine`
	}()
}

func badWrap(ws *parallel.Workspace, h *pairHolder, n int) {
	buf := ws.Arena(0).Float64("w", n)
	h.p = pair{a: buf[:n/2]} // want `stored into struct field p`
}

func cleanLocalUse(ws *parallel.Workspace, n int) float64 {
	ar := ws.Arena(0)
	buf := ar.Float64("x", n)
	s := 0.0
	for _, v := range buf {
		s += v
	}
	return s
}

func cleanReassigned(ws *parallel.Workspace, c *cache, n int) {
	buf := ws.Arena(0).Float64("x", n)
	use(buf)
	buf = make([]float64, n)
	c.buf = buf // clean: buf was rebound to owned memory above
}

func cleanOwned(c *cache, n int) {
	own := make([]float64, n)
	c.buf = own // clean: never arena-backed
}
