// Package arenaescape flags arena-backed buffers that escape their
// region: slices leased from parallel.Arena (Float64/Ints) and arenas
// obtained from parallel.Workspace (Arena/PlanArena) that are stored into
// struct fields, package-level variables, or channels, or captured by a
// goroutine — all places that can outlive Workspace.Release, after which
// the backing memory is handed to the next same-shape request (the
// aliasing-bug class PR 3's pooled-buffer decode and PR 5's plan
// snapshots were hand-audited for; DESIGN.md §11).
//
// The analysis is intentionally shallow: it tracks values produced by a
// direct lease call (or a local variable assigned one, a reslice of one,
// or a composite literal wrapping one) within a single function.
// Helper-mediated stores (e.g. a constructor that both leases and
// registers a buffer) are the PlanArena contract's job, not this
// analyzer's.
package arenaescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags arena-backed buffers escaping their region.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc:  "flag Workspace/Arena-leased buffers stored into fields, globals or channels, or captured by goroutines",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// isLeaseCall reports whether call leases region-scoped memory from the
// parallel runtime.
func isLeaseCall(info *types.Info, call *ast.CallExpr) bool {
	return analysis.MethodOn(info, call, analysis.ParallelPkg, "Float64", "Ints", "Arena", "PlanArena")
}

// checkFunc walks one function body in source order, tracking
// arena-derived locals and reporting escapes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	tracked := make(map[types.Object]bool)

	var derived func(e ast.Expr) bool
	derived = func(e ast.Expr) bool {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tracked[info.Uses[v]]
		case *ast.CallExpr:
			return isLeaseCall(info, v)
		case *ast.SliceExpr:
			return derived(v.X)
		case *ast.UnaryExpr:
			return v.Op == token.AND && derived(v.X)
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if derived(elt) {
					return true
				}
			}
		}
		return false
	}

	// sinkStore classifies an assignment target for an arena-derived
	// value: struct field, package-level variable, or a new tracked
	// local.
	sinkStore := func(lhs ast.Expr) {
		switch t := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[t]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(t.Pos(), "arena-backed value stored into struct field %s may outlive its region; clear it before Workspace.Release", t.Sel.Name)
				return
			}
			if obj, ok := info.Uses[t.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(t.Pos(), "arena-backed value stored into package-level variable %s outlives its region", t.Sel.Name)
			}
		case *ast.Ident:
			obj := info.Defs[t]
			if obj == nil {
				obj = info.Uses[t]
			}
			if v, ok := obj.(*types.Var); ok {
				if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					pass.Reportf(t.Pos(), "arena-backed value stored into package-level variable %s outlives its region", t.Name)
					return
				}
				tracked[obj] = true
			}
		case *ast.IndexExpr:
			if base, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if v, ok := info.Uses[base].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					pass.Reportf(t.Pos(), "arena-backed value stored into package-level container %s outlives its region", base.Name)
				}
			}
		}
	}

	// goroutineCapture reports tracked variables referenced inside a
	// goroutine launched from this function.
	goroutineCapture := func(g *ast.GoStmt) {
		call := g.Call
		for _, arg := range call.Args {
			if derived(arg) {
				pass.Reportf(arg.Pos(), "arena-backed value passed to a goroutine may outlive its region")
			}
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && tracked[info.Uses[id]] {
					pass.Reportf(id.Pos(), "arena-backed value %s captured by a goroutine may outlive its region", id.Name)
				}
				return true
			})
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true // multi-value call assignment: sources never return tuples
			}
			for i, rhs := range st.Rhs {
				lhs := st.Lhs[i]
				if derived(rhs) {
					sinkStore(lhs)
				} else if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					// Reassignment to a non-arena value clears tracking.
					if obj := info.Uses[id]; obj != nil && tracked[obj] {
						delete(tracked, obj)
					}
				}
			}
		case *ast.SendStmt:
			if derived(st.Value) {
				pass.Reportf(st.Value.Pos(), "arena-backed value sent on a channel may outlive its region")
			}
		case *ast.GoStmt:
			goroutineCapture(st)
		}
		return true
	})
}
