// Package analysistest runs one analyzer over a GOPATH-style fixture tree
// (testdata/src/<import/path>/*.go) and checks its diagnostics against
// expectations written in the fixture source as trailing comments:
//
//	ws.data = buf // want `stored into struct field`
//
// Each expectation is a quoted or backquoted regular expression that must
// match the message of a diagnostic reported on that line; a line may
// carry several. Unmatched diagnostics and unmatched expectations are both
// test failures, so a fixture pins the analyzer's behavior exactly — the
// clean sections of a fixture (no want comments) assert silence.
//
// Fixtures load through driver.RunPackage, so //lint:ignore suppression is
// active inside fixtures and can itself be put under test.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// expectation is one // want regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantArgRE matches one quoted or backquoted string.
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the expectations of one parsed file.
func parseWants(t *testing.T, pkg *load.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			args := wantArgRE.FindAllString(rest, -1)
			if len(args) == 0 {
				t.Fatalf("%s: malformed want comment: %q", pos, c.Text)
			}
			for _, a := range args {
				var pat string
				if a[0] == '`' {
					pat = a[1 : len(a)-1]
				} else {
					var err error
					if pat, err = strconv.Unquote(a); err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, a, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out
}

// Run loads each fixture package and checks the analyzer's diagnostics
// against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	for _, path := range paths {
		pkg, err := load.Fixture("", root, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var wants []*expectation
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg, f)...)
		}
		diags, err := driver.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
			}
		}
	}
}

// claim marks the first unmatched expectation at file:line whose regexp
// matches message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
