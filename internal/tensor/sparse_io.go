package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Text COO format: one entry per line as N whitespace-separated 1-based
// coordinates followed by the value (the FROSTT .tns convention), with
// '#'-prefixed comment lines permitted anywhere. The order is inferred
// from the first data line's field count; each dimension is the largest
// coordinate seen in that mode. Duplicate coordinates merge by summation
// (the COO constructor's invariant).

// WriteSparseTo serializes the tensor in the text COO format.
func (s *Sparse) WriteSparseTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	count := func(n int, err error) error {
		total += int64(n)
		return err
	}
	for p, v := range s.vals {
		for n := range s.idx {
			if err := count(fmt.Fprintf(bw, "%d ", s.idx[n][p]+1)); err != nil {
				return total, fmt.Errorf("tensor: write coo: %w", err)
			}
		}
		if err := count(fmt.Fprintf(bw, "%g\n", v)); err != nil {
			return total, fmt.Errorf("tensor: write coo: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("tensor: flush: %w", err)
	}
	return total, nil
}

// Save writes the tensor to a file in the text COO format.
func (s *Sparse) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteSparseTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSparseFrom parses the text COO format. Malformed lines fail with
// the line number and what was wrong — coordinate files come from other
// tools, and "parse error" without a position is useless at a few million
// lines.
func ReadSparseFrom(r io.Reader) (*Sparse, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var (
		order int
		idx   [][]int32
		vals  []float64
		dims  []int
		line  int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if order == 0 {
			if len(fields) < 2 {
				return nil, fmt.Errorf("tensor: coo line %d: %d fields, want at least 2 (coordinates then value)", line, len(fields))
			}
			order = len(fields) - 1
			idx = make([][]int32, order)
			dims = make([]int, order)
		}
		if len(fields) != order+1 {
			return nil, fmt.Errorf("tensor: coo line %d: %d fields, want %d (%d coordinates then the value)", line, len(fields), order+1, order)
		}
		for n := 0; n < order; n++ {
			c, err := strconv.ParseInt(fields[n], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: coo line %d: coordinate %d %q is not an integer", line, n+1, fields[n])
			}
			if c < 1 || c > math.MaxInt32 {
				return nil, fmt.Errorf("tensor: coo line %d: coordinate %d is %d, want 1..%d (1-based)", line, n+1, c, math.MaxInt32)
			}
			idx[n] = append(idx[n], int32(c-1))
			if int(c) > dims[n] {
				dims[n] = int(c)
			}
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tensor: coo line %d: value %q is not a finite number", line, fields[order])
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: read coo: %w", err)
	}
	if order == 0 {
		return nil, fmt.Errorf("tensor: coo file holds no entries")
	}
	return SparseFromCOO(dims, idx, vals)
}

// LoadSparse reads a text COO file written by (*Sparse).Save (or any
// FROSTT-style .tns file).
func LoadSparse(path string) (*Sparse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSparseFrom(bufio.NewReader(f))
}

// LoadAny reads a tensor file of either format, sniffing which one it is:
// the dense binary format announces itself with its magic in the first
// eight bytes, anything else is parsed as text COO triples. This is what
// the root LoadTensor entry point calls.
func LoadAny(path string) (Interface, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(8)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("tensor: sniff %s: %w", path, err)
	}
	if len(head) == 8 && binary.LittleEndian.Uint64(head) == ioMagic {
		return ReadFrom(br)
	}
	return ReadSparseFrom(br)
}
