package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary tensor format: magic, version, order, dims, then entries in
// natural linearization, all little-endian. The format is deliberately
// trivial so other tools (numpy, Julia) can read it with a one-liner.
const (
	ioMagic   = 0x544e5344 // "DSNT"
	ioVersion = 1
)

// WriteTo serializes the tensor to w in the binary format.
func (d *Dense) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	header := []uint64{ioMagic, ioVersion, uint64(len(d.dims))}
	for _, h := range header {
		if err := write(h); err != nil {
			return n, fmt.Errorf("tensor: write header: %w", err)
		}
	}
	for _, dim := range d.dims {
		if err := write(uint64(dim)); err != nil {
			return n, fmt.Errorf("tensor: write dims: %w", err)
		}
	}
	if err := write(d.data); err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("tensor: flush: %w", err)
	}
	return n, nil
}

// ReadFrom deserializes a tensor written by WriteTo.
func ReadFrom(r io.Reader) (*Dense, error) {
	br := bufio.NewReader(r)
	var magic, version, order uint64
	for _, p := range []*uint64{&magic, &version, &order} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("tensor: read header: %w", err)
		}
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("tensor: bad magic 0x%x", magic)
	}
	if version != ioVersion {
		return nil, fmt.Errorf("tensor: unsupported version %d", version)
	}
	if order == 0 || order > 32 {
		return nil, fmt.Errorf("tensor: implausible order %d", order)
	}
	dims := make([]int, order)
	size := 1
	for i := range dims {
		var d uint64
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("tensor: read dims: %w", err)
		}
		if d == 0 || d > math.MaxInt32 {
			return nil, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		dims[i] = int(d)
		if size > (1<<40)/dims[i] {
			return nil, fmt.Errorf("tensor: dimensions overflow a sane size")
		}
		size *= dims[i]
	}
	out := New(dims...)
	if err := binary.Read(br, binary.LittleEndian, out.data); err != nil {
		return nil, fmt.Errorf("tensor: read data: %w", err)
	}
	return out, nil
}

// Save writes the tensor to a file.
func (d *Dense) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a tensor from a file written by Save.
func Load(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
