package tensor

import (
	"fmt"
)

// TTV computes the tensor-times-vector product Y = X ×n v, contracting
// mode n against v (length I_n). The result has order N-1. This reference
// implementation exists for validation; the performance-critical
// multi-TTVs inside the 2-step MTTKRP are expressed as GEMV calls on
// stride views instead.
func (d *Dense) TTV(n int, v []float64) *Dense {
	if len(v) != d.dims[n] {
		panic(fmt.Sprintf("tensor: ttv vector length %d != dim %d of mode %d", len(v), d.dims[n], n))
	}
	if len(d.dims) == 1 {
		s := 0.0
		for i, x := range d.data {
			s += x * v[i]
		}
		out := New(1)
		out.data[0] = s
		return out
	}
	outDims := make([]int, 0, len(d.dims)-1)
	for k, dim := range d.dims {
		if k != n {
			outDims = append(outDims, dim)
		}
	}
	out := New(outDims...)
	il := d.SizeLeft(n)
	in := d.dims[n]
	ir := d.SizeRight(n)
	// Linear index of output = l + j·I^L_n over (left, right) pairs.
	for j := 0; j < ir; j++ {
		for i := 0; i < in; i++ {
			vi := v[i]
			if vi == 0 {
				continue
			}
			src := d.data[j*il*in+i*il : j*il*in+(i+1)*il]
			dst := out.data[j*il : (j+1)*il]
			for l, x := range src {
				dst[l] += vi * x
			}
		}
	}
	return out
}

// TTM computes the tensor-times-matrix product Y = X ×n Mᵀ in the paper's
// convention Y_(n) = Mᵀ·X_(n), where M is I_n × C; the result has dimension
// C in mode n. Reference implementation for validation.
func (d *Dense) TTM(n int, m [][]float64) *Dense {
	in := d.dims[n]
	if len(m) != in {
		panic(fmt.Sprintf("tensor: ttm matrix has %d rows, want %d", len(m), in))
	}
	c := len(m[0])
	outDims := d.Dims()
	outDims[n] = c
	out := New(outDims...)
	il := d.SizeLeft(n)
	ir := d.SizeRight(n)
	for j := 0; j < ir; j++ {
		for i := 0; i < in; i++ {
			src := d.data[j*il*in+i*il : j*il*in+(i+1)*il]
			for cc := 0; cc < c; cc++ {
				w := m[i][cc]
				if w == 0 {
					continue
				}
				dst := out.data[j*il*c+cc*il : j*il*c+(cc+1)*il]
				for l, x := range src {
					dst[l] += w * x
				}
			}
		}
	}
	return out
}
