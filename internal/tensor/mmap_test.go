package tensor

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTempTensor(t *testing.T, d *Dense) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.dsnt")
	if err := WriteDenseFile(path, d); err != nil {
		t.Fatalf("WriteDenseFile: %v", err)
	}
	return path
}

func TestMapRoundTrip(t *testing.T) {
	want := Random(rand.New(rand.NewSource(42)), 5, 4, 3)
	path := writeTempTensor(t, want)

	m, err := OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()
	if m.Order() != 3 || m.Dim(0) != 5 || m.Dim(1) != 4 || m.Dim(2) != 3 {
		t.Fatalf("dims = %v, want [5 4 3]", m.Dims())
	}
	for i, v := range want.Data() {
		if got := m.Data()[i]; math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("entry %d: got %v, want %v", i, got, v)
		}
	}
	if m.FileSize() == 0 || m.Checksum() == 0 {
		t.Fatalf("missing file identity: size=%d checksum=%d", m.FileSize(), m.Checksum())
	}
	if m.Stale() {
		t.Fatal("freshly opened map reports stale")
	}
	// Advice must be safe on any element range.
	m.AdviseWillNeed(0, m.Size())
	m.AdviseWillNeed(7, 9)

	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Dense.Data() != nil {
		t.Fatal("data slab survives Close")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestMapDataSectionPageAligned(t *testing.T) {
	path := writeTempTensor(t, Random(rand.New(rand.NewSource(1)), 3, 3))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := readMapHeader(f)
	if err != nil {
		t.Fatalf("readMapHeader: %v", err)
	}
	if h.dataOffset%mapDataOffsetAlign != 0 {
		t.Fatalf("dataOffset %d not aligned to %d", h.dataOffset, mapDataOffsetAlign)
	}
}

func TestCreateDenseFileZeros(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zero.dsnt")
	if err := CreateDenseFile(path, []int{6, 5, 4}); err != nil {
		t.Fatalf("CreateDenseFile: %v", err)
	}
	m, err := OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()
	if m.Size() != 6*5*4 {
		t.Fatalf("size = %d, want %d", m.Size(), 6*5*4)
	}
	for i, v := range m.Data() {
		if v != 0 {
			t.Fatalf("entry %d = %v, want 0", i, v)
		}
	}
}

// TestStatDense pins the header-only identity read: it agrees with
// OpenDense on every identity field without touching the data section,
// and rejects a truncated file the same way.
func TestStatDense(t *testing.T) {
	path := writeTempTensor(t, Random(rand.New(rand.NewSource(9)), 7, 6, 5))
	info, err := StatDense(path)
	if err != nil {
		t.Fatalf("StatDense: %v", err)
	}
	m, err := OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()
	if len(info.Dims) != 3 || info.Dims[0] != 7 || info.Dims[1] != 6 || info.Dims[2] != 5 {
		t.Fatalf("dims = %v, want [7 6 5]", info.Dims)
	}
	if !info.ModTime.Equal(m.ModTime()) || info.Size != m.FileSize() || info.Checksum != m.Checksum() {
		t.Fatalf("identity (%v, %d, %d) disagrees with OpenDense (%v, %d, %d)",
			info.ModTime, info.Size, info.Checksum, m.ModTime(), m.FileSize(), m.Checksum())
	}
	if err := os.Truncate(path, info.Size-8); err != nil {
		t.Fatal(err)
	}
	if _, err := StatDense(path); err == nil {
		t.Fatal("StatDense accepted a truncated data section")
	}
}

func TestMapTruncatedDataSection(t *testing.T) {
	path := writeTempTensor(t, Random(rand.New(rand.NewSource(7)), 4, 4, 4))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDense(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("OpenDense on truncated file: err = %v, want truncated data section", err)
	}
}

func TestMapDimsOverflow(t *testing.T) {
	// Hand-craft a header whose dims product overflows the size bound.
	path := filepath.Join(t.TempDir(), "overflow.dsnt")
	buf := make([]byte, mapDataOffsetAlign)
	binary.LittleEndian.PutUint64(buf[0:], ioMagic)
	binary.LittleEndian.PutUint64(buf[8:], mapVersion)
	binary.LittleEndian.PutUint64(buf[16:], 3)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(buf[24+8*i:], uint64(math.MaxInt32))
	}
	binary.LittleEndian.PutUint64(buf[48:], mapDataOffsetAlign)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDense(path); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("OpenDense on overflowing dims: err = %v, want overflow", err)
	}
}

func TestMapRejectsVersion1(t *testing.T) {
	d := Random(rand.New(rand.NewSource(3)), 4, 4)
	path := filepath.Join(t.TempDir(), "v1.dsnt")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDense(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("OpenDense on v1 file: err = %v, want version error", err)
	}
}

func TestMapStaleAfterRewrite(t *testing.T) {
	d := Random(rand.New(rand.NewSource(11)), 4, 3, 2)
	path := writeTempTensor(t, d)
	m, err := OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()

	// Same size, different mtime: the file was rewritten under the map.
	if err := os.Chtimes(path, time.Time{}, m.ModTime().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if !m.Stale() {
		t.Fatal("mtime change not reported as stale")
	}
	// Size change is also stale — and a vanished file too.
	if err := os.Truncate(path, m.FileSize()-8); err != nil {
		t.Fatal(err)
	}
	if !m.Stale() {
		t.Fatal("size change not reported as stale")
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !m.Stale() {
		t.Fatal("vanished file not reported as stale")
	}
}

func TestMapChecksumIdentifiesHeader(t *testing.T) {
	a := writeTempTensor(t, Random(rand.New(rand.NewSource(1)), 4, 3))
	b := writeTempTensor(t, Random(rand.New(rand.NewSource(2)), 4, 3))
	c := writeTempTensor(t, Random(rand.New(rand.NewSource(3)), 3, 4))
	open := func(p string) *Map {
		m, err := OpenDense(p)
		if err != nil {
			t.Fatalf("OpenDense(%s): %v", p, err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	ma, mb, mc := open(a), open(b), open(c)
	if ma.Checksum() != mb.Checksum() {
		t.Fatal("same shape must hash to the same header checksum")
	}
	if ma.Checksum() == mc.Checksum() {
		t.Fatal("different shapes must hash to different header checksums")
	}
}

func TestResliceReusesStorage(t *testing.T) {
	d := New(4, 3)
	buf := make([]float64, 6)
	for i := range buf {
		buf[i] = float64(i)
	}
	d.Reslice(buf, []int{2, 3})
	if d.Order() != 2 || d.Dim(0) != 2 || d.Dim(1) != 3 || d.Size() != 6 {
		t.Fatalf("resliced dims = %v size=%d", d.Dims(), d.Size())
	}
	if d.Stride(1) != 2 {
		t.Fatalf("stride(1) = %d, want 2", d.Stride(1))
	}
	if &d.Data()[0] != &buf[0] {
		t.Fatal("Reslice copied the buffer")
	}
	if testing.AllocsPerRun(100, func() { d.Reslice(buf, []int{3, 2}); d.Reslice(buf, []int{2, 3}) }) != 0 {
		t.Fatal("Reslice allocates in steady state")
	}
}

// TestMapDropBehind pins the drop-behind contract: advising consumed
// ranges away on a mapped tensor is safe on any element range — page
// rounding is inward, so partial boundary pages survive — and dropped
// pages re-fault from the page cache with the same bits, never losing
// data (the mapping is a read-only view of the file).
func TestMapDropBehind(t *testing.T) {
	want := Random(rand.New(rand.NewSource(44)), 16, 9, 8)
	path := writeTempTensor(t, want)
	m, err := OpenDense(path)
	if err != nil {
		t.Fatalf("OpenDense: %v", err)
	}
	defer m.Close()

	for _, r := range [][2]int{{0, m.Size()}, {7, 9}, {0, 1}, {m.Size() - 3, m.Size()}, {-5, m.Size() + 100}} {
		m.Dense.DropBehind(r[0], r[1])
	}
	for i, v := range want.Data() {
		if got := m.Data()[i]; math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("entry %d after drop-behind: got %v, want %v", i, got, v)
		}
	}

	// Heap tensors have no drop hook: the call is a no-op, never a panic.
	want.DropBehind(0, want.Size())
	// A reslice of the mapped tensor re-points the slab; the advice hooks
	// are detached rather than left aimed at the old window.
	m.Dense.Reslice(want.Data(), []int{16, 9, 8})
	m.Dense.DropBehind(0, want.Size())
	if math.Float64bits(m.Dense.At(3, 2, 1)) != math.Float64bits(want.At(3, 2, 1)) {
		t.Fatal("resliced tensor mangled by DropBehind")
	}
}
