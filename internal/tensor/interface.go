package tensor

// Layout identifies the storage layout behind an Interface value, so
// shape-generic entry points (root API, serving scheduler, cost model) can
// dispatch without a type switch in every caller.
type Layout int

const (
	// LayoutDense is the natural (generalized column-major) dense
	// linearization of package tensor's Dense type.
	LayoutDense Layout = iota
	// LayoutCOO is the sorted, deduplicated coordinate format of the
	// Sparse type (with a cached compressed fiber layout per mode).
	LayoutCOO
)

// String returns the layout name used in stats and benchmark output.
func (l Layout) String() string {
	switch l {
	case LayoutDense:
		return "dense"
	case LayoutCOO:
		return "coo"
	}
	return "unknown"
}

// Interface is the shape-level view shared by every tensor representation:
// enough for validation, admission pricing and dispatch, deliberately not
// enough to compute with — kernels type-switch to the concrete layout they
// implement. Both *Dense and *Sparse implement it.
type Interface interface {
	// Order returns the number of modes N.
	Order() int
	// Dim returns the size of mode n.
	Dim(n int) int
	// Dims returns a copy of the dimension slice.
	Dims() []int
	// NNZ returns the stored-entry count: the full size for a dense
	// tensor, the coordinate count for a sparse one. Cost models key
	// per-request work on NNZ · rank, which prices both layouts honestly.
	NNZ() int64
	// Layout identifies the storage layout for dispatch.
	Layout() Layout
}

var (
	_ Interface = (*Dense)(nil)
	_ Interface = (*Sparse)(nil)
)

// NNZ returns the stored-entry count of a dense tensor: every entry,
// including explicit zeros (the dense layout stores them all).
func (d *Dense) NNZ() int64 { return int64(len(d.data)) }

// Layout reports LayoutDense.
func (d *Dense) Layout() Layout { return LayoutDense }
