package tensor

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Matricize returns the classical mode-n matricization X_(n) as a stride
// view when one exists without reordering: mode 0 (column-major) and mode
// N-1 (row-major). For internal modes no single strided view exists — use
// ModeBlock (the 1-step algorithm's block structure) or Unfold (explicit
// reorder). Matricize panics for internal modes.
func (d *Dense) Matricize(n int) mat.View {
	N := len(d.dims)
	switch {
	case n == 0:
		return mat.FromColMajor(d.data, d.dims[0], d.SizeOther(0))
	case n == N-1:
		return mat.FromRowMajor(d.data, d.dims[n], d.SizeLeft(n))
	default:
		panic(fmt.Sprintf("tensor: X_(%d) of an order-%d tensor is not a single strided view; use ModeBlock or Unfold", n, N))
	}
}

// NumModeBlocks returns I^R_n, the number of contiguous row-major blocks
// that make up X_(n) (Figure 2 of the paper).
func (d *Dense) NumModeBlocks(n int) int { return d.SizeRight(n) }

// ModeBlock returns the j-th column block of X_(n), an I_n × I^L_n
// row-major view onto contiguous storage (0 ≤ j < I^R_n). Together the
// blocks tile X_(n): block j covers columns [j·I^L_n, (j+1)·I^L_n).
func (d *Dense) ModeBlock(n, j int) mat.View {
	il := d.SizeLeft(n)
	in := d.dims[n]
	nblk := d.SizeRight(n)
	if j < 0 || j >= nblk {
		panic(fmt.Sprintf("tensor: mode-%d block %d out of range [0,%d)", n, j, nblk))
	}
	off := j * in * il
	return mat.FromRowMajor(d.data[off:off+in*il], in, il)
}

// MatricizeRowModes returns the generalized matricization X_(0:n) with
// modes 0..n as rows, an (I_0⋯I_n) × I^R_n column-major view. This is the
// single-BLAS-call operand of the 2-step algorithm's partial MTTKRP.
func (d *Dense) MatricizeRowModes(n int) mat.View {
	rows := d.SizeLeft(n) * d.dims[n]
	cols := len(d.data) / rows
	return mat.FromColMajor(d.data, rows, cols)
}

// Unfold explicitly reorders tensor entries into a freshly allocated
// column-major X_(n) (I_n × I_{≠n}). This is the memory-bound operation the
// paper's algorithms exist to avoid; it is provided as the baseline
// (Bader–Kolda) path and for tests. Work is split across t workers by
// block.
func (d *Dense) Unfold(t, n int) mat.View {
	in := d.dims[n]
	il := d.SizeLeft(n)
	ir := d.SizeRight(n)
	out := make([]float64, len(d.data))
	if il == 1 {
		// Mode 0 (or leading dim-1 modes): the natural layout already is
		// the column-major matricization, so the "reorder" is a copy.
		parallel.For(t, len(d.data), func(_, lo, hi int) {
			copy(out[lo:hi], d.data[lo:hi])
		})
		return mat.FromColMajor(out, in, il*ir)
	}
	// Column col = l + j·I^L_n of X_(n) holds fiber X(…, :, …) with left
	// index l and right index j; source entry i lives at l + i·I^L_n +
	// j·I^L_n·I_n, destination at i + col·I_n (column-major).
	parallel.For(t, ir, func(_, jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			src := d.data[j*il*in : (j+1)*il*in]
			for i := 0; i < in; i++ {
				row := src[i*il : (i+1)*il]
				base := (j*il)*in + i
				for l, v := range row {
					out[base+l*in] = v
				}
			}
		}
	})
	return mat.FromColMajor(out, in, il*ir)
}

// Fold is the inverse of Unfold: it scatters a column-major X_(n) back into
// a natural-layout tensor with the given dims (test helper).
func Fold(m mat.View, n int, dims []int) *Dense {
	d := New(dims...)
	in := dims[n]
	il := d.SizeLeft(n)
	ir := d.SizeRight(n)
	if m.R != in || m.C != il*ir {
		panic(fmt.Sprintf("tensor: fold of %dx%d into mode %d of %v", m.R, m.C, n, dims))
	}
	for j := 0; j < ir; j++ {
		for i := 0; i < in; i++ {
			for l := 0; l < il; l++ {
				d.data[l+i*il+j*il*in] = m.At(i, j*il+l)
			}
		}
	}
	return d
}
