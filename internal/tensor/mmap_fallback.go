//go:build !((linux || darwin) && (amd64 || arm64))

package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Fallback loader for hosts without a gated mmap path: the data section is
// read into the heap, so the tensor behaves like a regular Dense (Mapped()
// reports false and advice hooks are no-ops). Correct everywhere, out-of-core
// nowhere.

func mapData(f *os.File, dataOffset int64, n int) ([]float64, []byte, error) {
	if _, err := f.Seek(dataOffset, io.SeekStart); err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	data := make([]float64, n)
	var buf [8]byte
	for i := range data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, nil, fmt.Errorf("tensor: read data: %w", err)
		}
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return data, nil, nil
}

func unmapFile([]byte) error { return nil }

func adviseSequential([]byte) {}

func adviseWillNeed([]byte) {}

func adviseDontNeed([]byte) {}
