package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// Sparse is an N-way sparse tensor in coordinate (COO) format: parallel
// per-mode index slices plus a value slice, sorted lexicographically (mode
// 0 most significant) and deduplicated at construction. The sorted order
// is a structural invariant every consumer may rely on — the wire codec
// streams it as-is, and equality of two Sparse tensors is equality of
// their slices.
//
// A compressed fiber layout (FiberLayout, CSF-like) is built lazily per
// mode on first use and cached on the tensor, the way kernels cache their
// scratch in pool workspaces: repeated MTTKRPs over the same tensor and
// mode pay the grouping pass once.
type Sparse struct {
	dims []int
	idx  [][]int32 // idx[n][p] is the mode-n coordinate of entry p
	vals []float64

	mu     sync.Mutex
	fibers []*FiberLayout // lazily built, one per mode
}

// NewSparse builds a sparse tensor from per-mode coordinate slices and
// values: entry p is (idx[0][p], …, idx[N-1][p]) = vals[p]. The inputs are
// copied; coordinates are sorted lexicographically and duplicate
// coordinates are merged by summation. It panics on malformed input — use
// SparseFromCOO for the error-returning ingest path.
func NewSparse(dims []int, idx [][]int32, vals []float64) *Sparse {
	ci := make([][]int32, len(idx))
	for n := range idx {
		ci[n] = append([]int32(nil), idx[n]...)
	}
	s, err := SparseFromCOO(dims, ci, append([]float64(nil), vals...))
	if err != nil {
		panic("tensor: " + err.Error())
	}
	return s
}

// SparseFromCOO builds a sparse tensor taking ownership of the given
// slices (they are reordered in place; the caller must not use them
// afterwards). Coordinates are validated against dims, sorted
// lexicographically and deduplicated by summation; already-sorted input
// (the wire and file ingest paths) is detected in one pass and skips the
// sort. Malformed input returns an error rather than panicking, because
// this is the path untrusted bytes arrive through.
func SparseFromCOO(dims []int, idx [][]int32, vals []float64) (*Sparse, error) {
	if len(dims) < 1 {
		return nil, fmt.Errorf("sparse tensor needs at least one mode")
	}
	for n, d := range dims {
		if d <= 0 || d > math.MaxInt32 {
			return nil, fmt.Errorf("sparse dimension %d is %d, want 1..%d", n, d, math.MaxInt32)
		}
	}
	if len(idx) != len(dims) {
		return nil, fmt.Errorf("sparse has %d index slices for an order-%d tensor", len(idx), len(dims))
	}
	for n := range idx {
		if len(idx[n]) != len(vals) {
			return nil, fmt.Errorf("sparse mode-%d index slice holds %d entries, want %d", n, len(idx[n]), len(vals))
		}
		for p, i := range idx[n] {
			if i < 0 || int(i) >= dims[n] {
				return nil, fmt.Errorf("sparse entry %d: coordinate %d out of range for mode %d (dim %d)", p, i, n, dims[n])
			}
		}
	}
	s := &Sparse{dims: append([]int(nil), dims...), idx: idx, vals: vals}
	s.sortDedup()
	s.fibers = make([]*FiberLayout, len(dims))
	return s, nil
}

// compare orders entries p and q lexicographically, mode 0 most
// significant.
func (s *Sparse) compare(p, q int) int {
	for n := range s.idx {
		if d := s.idx[n][p] - s.idx[n][q]; d != 0 {
			return int(d)
		}
	}
	return 0
}

// sortDedup establishes the sorted-unique invariant. Sorted duplicate-free
// input (the common ingest case: the wire codec and the file loader both
// stream tensors that were already canonical) is detected in one pass and
// returned untouched.
func (s *Sparse) sortDedup() {
	nnz := len(s.vals)
	sorted := true
	for p := 0; p+1 < nnz; p++ {
		if s.compare(p, p+1) >= 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	perm := make([]int, nnz)
	for p := range perm {
		perm[p] = p
	}
	sort.Slice(perm, func(a, b int) bool { return s.compare(perm[a], perm[b]) < 0 })
	nidx := make([][]int32, len(s.idx))
	for n := range nidx {
		nidx[n] = make([]int32, nnz)
	}
	nvals := make([]float64, nnz)
	out := 0
	for _, p := range perm {
		if out > 0 {
			same := true
			for n := range s.idx {
				if nidx[n][out-1] != s.idx[n][p] {
					same = false
					break
				}
			}
			if same {
				nvals[out-1] += s.vals[p] // duplicate coordinate: merge
				continue
			}
		}
		for n := range s.idx {
			nidx[n][out] = s.idx[n][p]
		}
		nvals[out] = s.vals[p]
		out++
	}
	for n := range nidx {
		s.idx[n] = nidx[n][:out]
	}
	s.vals = nvals[:out]
}

// Order returns the number of modes N.
func (s *Sparse) Order() int { return len(s.dims) }

// Dim returns the size of mode n.
func (s *Sparse) Dim(n int) int { return s.dims[n] }

// Dims returns a copy of the dimension slice.
func (s *Sparse) Dims() []int { return append([]int(nil), s.dims...) }

// NNZ returns the stored coordinate count.
func (s *Sparse) NNZ() int64 { return int64(len(s.vals)) }

// Layout reports LayoutCOO.
func (s *Sparse) Layout() Layout { return LayoutCOO }

// Values exposes the value slice in sorted coordinate order. Read-only by
// contract: mutating entries would desynchronize the cached fiber layouts.
func (s *Sparse) Values() []float64 { return s.vals }

// Index exposes the mode-n coordinate slice, parallel to Values.
// Read-only by contract.
func (s *Sparse) Index(n int) []int32 { return s.idx[n] }

// Densify materializes the tensor as a Dense in natural linearization.
func (s *Sparse) Densify() *Dense {
	d := New(s.dims...)
	for p, v := range s.vals {
		l := 0
		for n := range s.dims {
			l += int(s.idx[n][p]) * d.strides[n]
		}
		d.data[l] += v
	}
	return d
}

// Norm returns the Frobenius norm ‖X‖ with t workers.
func (s *Sparse) Norm(t int) float64 { return math.Sqrt(s.NormSquared(t)) }

// NormSquared returns ‖X‖² = Σ x² over the stored entries.
func (s *Sparse) NormSquared(t int) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	t = parallel.Clamp(t, len(s.vals))
	parts := make([]float64, t)
	parallel.For(t, len(s.vals), func(w, lo, hi int) {
		sum := 0.0
		for _, v := range s.vals[lo:hi] {
			sum += v * v
		}
		parts[w] = sum
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// RandomSparse returns a sparse tensor with ⌈density · Π dims⌉ entries (at
// least 1) at distinct uniform coordinates, with uniform [0, 1) values.
func RandomSparse(rng *rand.Rand, density float64, dims ...int) *Sparse {
	size := 1
	for n, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: dimension %d is %d, must be positive", n, d))
		}
		size *= d
	}
	nnz := int(density*float64(size) + 0.5)
	if nnz < 1 {
		nnz = 1
	}
	if nnz > size {
		nnz = size
	}
	seen := make(map[int]struct{}, nnz)
	lin := make([]int, 0, nnz)
	for len(lin) < nnz {
		l := rng.Intn(size)
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		lin = append(lin, l)
	}
	idx := make([][]int32, len(dims))
	for n := range idx {
		idx[n] = make([]int32, nnz)
	}
	vals := make([]float64, nnz)
	for p, l := range lin {
		for n, d := range dims {
			idx[n][p] = int32(l % d)
			l /= d
		}
		vals[p] = rng.Float64()
	}
	s, err := SparseFromCOO(dims, idx, vals)
	if err != nil {
		panic("tensor: " + err.Error())
	}
	return s
}

// FiberLayout is the compressed fiber layout of one (tensor, mode) pair —
// the CSF-style grouping the sparse MTTKRP kernel consumes. Entries are
// regrouped by their mode-n coordinate into slices: slice s covers entries
// [SlicePtr[s], SlicePtr[s+1]) of the reordered Idx/Vals arrays and
// contributes only to output row SliceIdx[s]; empty rows carry no slice.
// Within a slice, entries keep the tensor's lexicographic order, so factor
// rows are walked with good locality. The fields are read-only by
// contract — a layout is shared by every kernel invocation over its
// tensor.
type FiberLayout struct {
	// SlicePtr has len(SliceIdx)+1 entries; slice s spans
	// [SlicePtr[s], SlicePtr[s+1]).
	SlicePtr []int32
	// SliceIdx is the mode-n output row of each slice, strictly
	// increasing.
	SliceIdx []int32
	// Idx holds the reordered coordinate slices; Idx[n] (the grouping
	// mode) is nil — the coordinate is SliceIdx of the covering slice.
	Idx [][]int32
	// Vals holds the reordered values.
	Vals []float64
}

// NNZ returns the entry count of the layout.
func (f *FiberLayout) NNZ() int { return len(f.Vals) }

// Slices returns the number of non-empty mode rows.
func (f *FiberLayout) Slices() int { return len(f.SliceIdx) }

// Fibers returns the compressed fiber layout for mode n, building it on
// first use and caching it on the tensor — the once-per-(tensor, mode)
// cost the serving path amortizes exactly like kernel workspaces. Safe for
// concurrent use.
func (s *Sparse) Fibers(n int) *FiberLayout {
	if n < 0 || n >= len(s.dims) {
		panic(fmt.Sprintf("tensor: fiber mode %d out of range [0,%d)", n, len(s.dims)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fibers[n] == nil {
		s.fibers[n] = s.buildFibers(n)
	}
	return s.fibers[n]
}

// buildFibers groups the entries by mode-n coordinate with a stable
// counting pass (O(nnz + I_n)), preserving lexicographic order within each
// slice.
func (s *Sparse) buildFibers(n int) *FiberLayout {
	nnz := len(s.vals)
	dimN := s.dims[n]
	start := make([]int32, dimN+1)
	for _, i := range s.idx[n] {
		start[i+1]++
	}
	for i := 0; i < dimN; i++ {
		start[i+1] += start[i]
	}
	fl := &FiberLayout{
		Idx:  make([][]int32, len(s.dims)),
		Vals: make([]float64, nnz),
	}
	for k := range s.dims {
		if k != n {
			fl.Idx[k] = make([]int32, nnz)
		}
	}
	pos := append([]int32(nil), start[:dimN]...)
	for p := 0; p < nnz; p++ {
		i := s.idx[n][p]
		q := pos[i]
		pos[i]++
		fl.Vals[q] = s.vals[p]
		for k := range s.dims {
			if k != n {
				fl.Idx[k][q] = s.idx[k][p]
			}
		}
	}
	for i := 0; i < dimN; i++ {
		if start[i+1] > start[i] {
			fl.SliceIdx = append(fl.SliceIdx, int32(i))
			fl.SlicePtr = append(fl.SlicePtr, start[i])
		}
	}
	fl.SlicePtr = append(fl.SlicePtr, int32(nnz))
	return fl
}
