package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestPermuteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Random(rng, 3, 4, 5)
	y := d.Permute(2, identityPerm(3))
	if MaxAbsDiff(d, y) != 0 {
		t.Error("identity permutation changed entries")
	}
}

func TestPermuteEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Random(rng, 2, 3, 4)
	perm := []int{2, 0, 1} // Y(i2, i0, i1) = X(i0, i1, i2)
	y := d.Permute(1, perm)
	if y.Dim(0) != 4 || y.Dim(1) != 2 || y.Dim(2) != 3 {
		t.Fatalf("dims %v", y.Dims())
	}
	for i0 := 0; i0 < 2; i0++ {
		for i1 := 0; i1 < 3; i1++ {
			for i2 := 0; i2 < 4; i2++ {
				if y.At(i2, i0, i1) != d.At(i0, i1, i2) {
					t.Fatalf("mismatch at (%d,%d,%d)", i0, i1, i2)
				}
			}
		}
	}
}

func TestPermuteParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Random(rng, 5, 6, 7, 2)
	perm := []int{3, 1, 0, 2}
	want := d.Permute(1, perm)
	for _, threads := range []int{2, 3, 8} {
		got := d.Permute(threads, perm)
		if MaxAbsDiff(want, got) != 0 {
			t.Errorf("threads=%d: parallel permute differs", threads)
		}
	}
}

func TestPermuteInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 1
		dims := make([]int, order)
		for i := range dims {
			dims[i] = rng.Intn(4) + 1
		}
		d := Random(rng, dims...)
		perm := rng.Perm(order)
		inv := make([]int, order)
		for k, p := range perm {
			inv[p] = k
		}
		back := d.Permute(2, perm).Permute(2, inv)
		return MaxAbsDiff(d, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPermuteValidation(t *testing.T) {
	d := New(2, 3)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) should panic", perm)
				}
			}()
			d.Permute(1, perm)
		}()
	}
}

// TestModeToFrontMatchesUnfold: permuting mode n to the front and taking
// X'_(0) (a plain view) must equal the explicit Unfold of mode n — the
// baseline's permute+view structure.
func TestModeToFrontMatchesUnfold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Random(rng, 3, 4, 5, 2)
	for n := 0; n < 4; n++ {
		p := d.Permute(2, ModeToFront(4, n))
		viaPermute := p.Matricize(0)
		viaUnfold := d.Unfold(2, n)
		if !mat.ApproxEqual(viaPermute, viaUnfold, 0) {
			t.Errorf("mode %d: permute-then-view != unfold", n)
		}
	}
}

func TestModeToFrontShape(t *testing.T) {
	got := ModeToFront(4, 2)
	want := []int{2, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ModeToFront(4,2) = %v, want %v", got, want)
		}
	}
}
