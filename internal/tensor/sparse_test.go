package tensor

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSparseFromCOOSortsAndDedups(t *testing.T) {
	// Unsorted input with a duplicate coordinate: entries must come back
	// lexicographically sorted and the duplicate summed.
	dims := []int{3, 4}
	idx := [][]int32{{2, 0, 1, 0}, {3, 1, 2, 1}}
	vals := []float64{4, 1, 3, 2}
	s, err := SparseFromCOO(dims, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 3 {
		t.Fatalf("nnz %d after dedup, want 3", s.NNZ())
	}
	wantI := [][2]int32{{0, 1}, {1, 2}, {2, 3}}
	wantV := []float64{3, 3, 4}
	for p := 0; p < 3; p++ {
		if s.Index(0)[p] != wantI[p][0] || s.Index(1)[p] != wantI[p][1] || s.Values()[p] != wantV[p] {
			t.Fatalf("entry %d = (%d,%d)=%g, want (%d,%d)=%g", p,
				s.Index(0)[p], s.Index(1)[p], s.Values()[p], wantI[p][0], wantI[p][1], wantV[p])
		}
	}
}

func TestSparseFromCOORejectsBadInput(t *testing.T) {
	dims := []int{3, 4}
	for _, tc := range []struct {
		name string
		idx  [][]int32
		vals []float64
	}{
		{"coordinate out of range", [][]int32{{3}, {0}}, []float64{1}},
		{"negative coordinate", [][]int32{{0}, {-1}}, []float64{1}},
		{"length mismatch", [][]int32{{0, 1}, {0}}, []float64{1, 1}},
		{"vals mismatch", [][]int32{{0}, {0}}, []float64{1, 2}},
		{"wrong mode count", [][]int32{{0}}, []float64{1}},
	} {
		if _, err := SparseFromCOO(dims, tc.idx, tc.vals); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSparseDensifyAndNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomSparse(rng, 0.1, 6, 5, 4)
	d := s.Densify()
	// Every stored entry appears densified; the dense norm matches.
	sum := 0.0
	for p := 0; p < int(s.NNZ()); p++ {
		v := d.At(int(s.Index(0)[p]), int(s.Index(1)[p]), int(s.Index(2)[p]))
		if v != s.Values()[p] {
			t.Fatalf("entry %d densified to %g, want %g", p, v, s.Values()[p])
		}
		sum += v * v
	}
	if got, want := s.NormSquared(2), sum; absDiff(got, want) > 1e-12 {
		t.Fatalf("norm² %g, want %g", got, want)
	}
}

func TestSparseFibersGrouping(t *testing.T) {
	dims := []int{4, 3, 2}
	idx := [][]int32{{0, 0, 2, 2, 3}, {1, 2, 0, 0, 1}, {0, 1, 0, 1, 1}}
	vals := []float64{1, 2, 3, 4, 5}
	s, err := SparseFromCOO(dims, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	fl := s.Fibers(1)
	if fl.NNZ() != 5 {
		t.Fatalf("fiber layout holds %d entries, want 5", fl.NNZ())
	}
	// Mode 1 values used: rows 0 (2 entries), 1 (2 entries), 2 (1 entry).
	if fl.Slices() != 3 {
		t.Fatalf("%d slices, want 3", fl.Slices())
	}
	seen := make(map[int32]int)
	for sIdx := 0; sIdx < fl.Slices(); sIdx++ {
		row := fl.SliceIdx[sIdx]
		for p := fl.SlicePtr[sIdx]; p < fl.SlicePtr[sIdx+1]; p++ {
			seen[row]++
			if fl.Idx[0][p] < 0 || fl.Idx[0][p] >= 4 {
				t.Fatalf("slice %d entry %d has bad mode-0 coord %d", sIdx, p, fl.Idx[0][p])
			}
		}
	}
	if seen[0] != 2 || seen[1] != 2 || seen[2] != 1 {
		t.Fatalf("per-row counts %v, want {0:2 1:2 2:1}", seen)
	}
	if fl2 := s.Fibers(1); fl2 != fl {
		t.Fatal("second Fibers(1) did not return the cached layout")
	}
}

func TestSparseIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandomSparse(rng, 0.05, 9, 8, 7)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSparse(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != s.NNZ() {
		t.Fatalf("nnz %d, want %d", back.NNZ(), s.NNZ())
	}
	for p := 0; p < int(s.NNZ()); p++ {
		for k := 0; k < 3; k++ {
			if back.Index(k)[p] != s.Index(k)[p] {
				t.Fatalf("entry %d mode %d coord %d, want %d", p, k, back.Index(k)[p], s.Index(k)[p])
			}
		}
		if absDiff(back.Values()[p], s.Values()[p]) > 1e-12 {
			t.Fatalf("entry %d value %g, want %g", p, back.Values()[p], s.Values()[p])
		}
	}
}

func TestSparseLoadErrorsNameTheLine(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"field count", "1 1 1 2.0\n1 1\n", "line 2"},
		{"bad coordinate", "1 1 1 2.0\n1 x 1 3.0\n", "line 2"},
		{"zero coordinate", "0 1 1 2.0\n", "line 1"},
		{"bad value", "1 1 1 nope\n", "line 1"},
		{"non-finite value", "1 1 1 +Inf\n", "line 1"},
		{"empty", "# only a comment\n", "no entries"},
	} {
		_, err := ReadSparseFrom(strings.NewReader(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadAnySniffsFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()

	dPath := filepath.Join(dir, "dense.bin")
	d := Random(rng, 4, 3, 2)
	if err := d.Save(dPath); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAny(dPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout() != LayoutDense {
		t.Fatalf("dense file sniffed as %v", got.Layout())
	}

	sPath := filepath.Join(dir, "sparse.tns")
	s := RandomSparse(rng, 0.2, 4, 3, 2)
	if err := s.Save(sPath); err != nil {
		t.Fatal(err)
	}
	got, err = LoadAny(sPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout() != LayoutCOO {
		t.Fatalf("COO file sniffed as %v", got.Layout())
	}
	if got.NNZ() != s.NNZ() {
		t.Fatalf("sniffed load nnz %d, want %d", got.NNZ(), s.NNZ())
	}

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a tensor\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(junk); err == nil {
		t.Fatal("junk file loaded without error")
	}
}

func TestRandomSparseDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := RandomSparse(rng, 0.01, 50, 40, 30)
	want := int64(0.01 * 50 * 40 * 30)
	if s.NNZ() != want {
		t.Fatalf("nnz %d, want %d", s.NNZ(), want)
	}
	// Entries are sorted and distinct.
	for p := 1; p < int(s.NNZ()); p++ {
		a := [3]int32{s.Index(0)[p-1], s.Index(1)[p-1], s.Index(2)[p-1]}
		b := [3]int32{s.Index(0)[p], s.Index(1)[p], s.Index(2)[p]}
		if !(a[0] < b[0] || (a[0] == b[0] && (a[1] < b[1] || (a[1] == b[1] && a[2] < b[2])))) {
			t.Fatalf("entries %d and %d out of order: %v, %v", p-1, p, a, b)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
