package tensor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{4}, {3, 5}, {2, 3, 4}, {1, 1, 7}} {
		d := Random(rng, dims...)
		var buf bytes.Buffer
		n, err := d.WriteTo(&buf)
		if err != nil {
			t.Fatalf("dims=%v: write: %v", dims, err)
		}
		wantBytes := int64(8*(3+len(dims)) + 8*d.Size())
		if n != wantBytes {
			t.Errorf("dims=%v: wrote %d bytes, want %d", dims, n, wantBytes)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("dims=%v: read: %v", dims, err)
		}
		if MaxAbsDiff(d, back) != 0 {
			t.Errorf("dims=%v: round trip changed data", dims)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Random(rng, 3, 4, 2)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(d, back) != 0 {
		t.Error("file round trip changed data")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.tns")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadRejectsCorruptHeaders(t *testing.T) {
	good := func() []byte {
		d := New(2, 2)
		var buf bytes.Buffer
		d.WriteTo(&buf)
		return buf.Bytes()
	}()

	corrupt := func(name string, mutate func(b []byte) []byte, wantErr string) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		_, err := ReadFrom(bytes.NewReader(b))
		if err == nil {
			t.Errorf("%s: expected error", name)
			return
		}
		if wantErr != "" && !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}

	corrupt("bad magic", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[0:], 0xdeadbeef)
		return b
	}, "magic")
	corrupt("bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 99)
		return b
	}, "version")
	corrupt("zero order", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 0)
		return b
	}, "order")
	corrupt("huge order", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1000)
		return b
	}, "order")
	corrupt("zero dim", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:], 0)
		return b
	}, "dimension")
	corrupt("truncated data", func(b []byte) []byte {
		return b[:len(b)-8]
	}, "")
	corrupt("empty", func(b []byte) []byte {
		return nil
	}, "")
}

func TestReadRejectsOverflowDims(t *testing.T) {
	var buf bytes.Buffer
	for _, v := range []uint64{ioMagic, ioVersion, 4} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for i := 0; i < 4; i++ {
		binary.Write(&buf, binary.LittleEndian, uint64(1<<20))
	}
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("expected overflow rejection for 2^80 entries")
	}
}
