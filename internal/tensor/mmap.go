package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"time"
)

// Mappable tensor format (version 2 of the "DSNT" container): the header of
// version 1 plus an explicit data offset, with the data section padded out
// to a page boundary so the float64 slab can be mapped directly:
//
//	offset 0            magic      uint64 LE = 0x544e5344 ("DSNT")
//	offset 8            version    uint64 LE = 2
//	offset 16           order      uint64 LE   (1 ≤ order ≤ 16)
//	offset 24           dims       order × uint64 LE (each ≥ 1)
//	offset 24+8·order   dataOffset uint64 LE   (multiple of 8, ≥ header)
//	…                   zero padding to dataOffset
//	offset dataOffset   data       ∏dims × float64 LE, natural linearization
//
// Writers align dataOffset to 4 KiB so the data section starts on a page
// boundary on every common host; readers only require 8-byte alignment
// (the mapping base is page-aligned, so the float64 view stays aligned).
// The format, like the rest of the container family, is little-endian.
const (
	mapVersion         = 2
	mapMaxOrder        = 16
	mapMaxElems        = int64(1) << 50 // matches the wire codec's payload bound
	mapDataOffsetAlign = 4096
)

// Map is a file-backed dense tensor: the embedded Dense's data slab points
// into a read-only mapped region of the file (or, on hosts without mmap
// support, a heap copy). The tensor is valid until Close; mutating tensor
// methods must not be called on a mapped tensor — the pages are mapped
// read-only and writes fault.
type Map struct {
	*Dense
	path     string
	mtime    time.Time
	size     int64
	checksum uint64
	raw      []byte // the mapping; nil when the fallback loader was used
	closed   bool
}

// Path returns the file the tensor was opened from.
func (m *Map) Path() string { return m.path }

// ModTime returns the file's modification time observed at open.
func (m *Map) ModTime() time.Time { return m.mtime }

// FileSize returns the file's byte size observed at open.
func (m *Map) FileSize() int64 { return m.size }

// Checksum returns the FNV-1a hash of the file's header section (the bytes
// before dataOffset). Together with size and mtime it identifies the file
// version cheaply — no pass over the data section, which may exceed RAM.
func (m *Map) Checksum() uint64 { return m.checksum }

// Stale re-stats the file and reports whether its size or modification
// time no longer match what was observed at open (the file was replaced or
// rewritten under the mapping). A vanished file counts as stale.
func (m *Map) Stale() bool {
	fi, err := os.Stat(m.path)
	if err != nil {
		return true
	}
	return fi.Size() != m.size || !fi.ModTime().Equal(m.mtime)
}

// Close releases the mapping. The tensor's data slab is invalid afterwards
// (the Dense is re-pointed at an empty slab so stale use fails fast rather
// than faulting).
func (m *Map) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.Dense.data = nil
	m.Dense.mapped = false
	m.Dense.advise = nil
	m.Dense.drop = nil
	if m.raw == nil {
		return nil
	}
	raw := m.raw
	m.raw = nil
	return unmapFile(raw)
}

// mapHeader is the decoded fixed part of a mappable tensor file.
type mapHeader struct {
	dims       []int
	size       int64 // ∏ dims
	dataOffset int64
	checksum   uint64 // FNV-1a over bytes [0, dataOffset)
}

// readMapHeader reads and validates a version-2 header from r, which must
// be positioned at the start of the file.
func readMapHeader(r io.Reader) (*mapHeader, error) {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)
	var fixed [24]byte
	if _, err := io.ReadFull(tr, fixed[:]); err != nil {
		return nil, fmt.Errorf("tensor: read header: %w", err)
	}
	magic := binary.LittleEndian.Uint64(fixed[0:])
	version := binary.LittleEndian.Uint64(fixed[8:])
	order := binary.LittleEndian.Uint64(fixed[16:])
	if magic != ioMagic {
		return nil, fmt.Errorf("tensor: bad magic 0x%x", magic)
	}
	if version != mapVersion {
		return nil, fmt.Errorf("tensor: unsupported mappable version %d (want %d)", version, mapVersion)
	}
	if order == 0 || order > mapMaxOrder {
		return nil, fmt.Errorf("tensor: implausible order %d", order)
	}
	buf := make([]byte, 8*(order+1))
	if _, err := io.ReadFull(tr, buf); err != nil {
		return nil, fmt.Errorf("tensor: read dims: %w", err)
	}
	out := &mapHeader{dims: make([]int, order), size: 1}
	for i := range out.dims {
		d := binary.LittleEndian.Uint64(buf[8*i:])
		if d == 0 || d > math.MaxInt32 {
			return nil, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		if out.size > mapMaxElems/int64(d) {
			return nil, fmt.Errorf("tensor: dimensions overflow the mappable size bound")
		}
		out.dims[i] = int(d)
		out.size *= int64(d)
	}
	off := binary.LittleEndian.Uint64(buf[8*order:])
	headerLen := int64(24 + 8*(order+1))
	if off%8 != 0 || int64(off) < headerLen || off > 1<<30 {
		return nil, fmt.Errorf("tensor: implausible data offset %d", off)
	}
	out.dataOffset = int64(off)
	// The padding participates in the checksum: hash everything up to the
	// data section.
	if _, err := io.CopyN(io.Discard, tr, out.dataOffset-headerLen); err != nil {
		return nil, fmt.Errorf("tensor: read header padding: %w", err)
	}
	out.checksum = h.Sum64()
	return out, nil
}

// mapHeaderBytes encodes the version-2 header (including padding) for dims.
func mapHeaderBytes(dims []int) ([]byte, error) {
	if len(dims) == 0 || len(dims) > mapMaxOrder {
		return nil, fmt.Errorf("tensor: order %d outside [1,%d]", len(dims), mapMaxOrder)
	}
	headerLen := int64(24 + 8*(len(dims)+1))
	dataOffset := (headerLen + mapDataOffsetAlign - 1) / mapDataOffsetAlign * mapDataOffsetAlign
	buf := make([]byte, dataOffset)
	binary.LittleEndian.PutUint64(buf[0:], ioMagic)
	binary.LittleEndian.PutUint64(buf[8:], mapVersion)
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(dims)))
	size := int64(1)
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: dimension %d is %d, must be positive", i, d)
		}
		if size > mapMaxElems/int64(d) {
			return nil, fmt.Errorf("tensor: dimensions overflow the mappable size bound")
		}
		size *= int64(d)
		binary.LittleEndian.PutUint64(buf[24+8*i:], uint64(d))
	}
	binary.LittleEndian.PutUint64(buf[24+8*len(dims):], uint64(dataOffset))
	return buf, nil
}

// WriteDenseFile writes d to path in the mappable format (version 2: header
// padded to a page boundary, then the float64 slab). The result round-trips
// through OpenDense.
func WriteDenseFile(path string, d *Dense) error {
	hdr, err := mapHeaderBytes(d.dims)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("tensor: write header: %w", err)
	}
	// Stream the slab through a bounded scratch buffer rather than one
	// binary.Write of the whole slice, which would materialize a second
	// copy of a possibly huge tensor.
	const chunk = 64 << 10
	buf := make([]byte, 8*chunk)
	for lo := 0; lo < len(d.data); lo += chunk {
		hi := min(lo+chunk, len(d.data))
		for i, v := range d.data[lo:hi] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := f.Write(buf[:8*(hi-lo)]); err != nil {
			f.Close()
			return fmt.Errorf("tensor: write data: %w", err)
		}
	}
	return f.Close()
}

// CreateDenseFile writes the header for an all-zero tensor of the given
// dims and truncates the file to its full extent without writing the data
// pages. On filesystems with sparse-file support the data section occupies
// no disk and reads as zeros, so a tensor far larger than RAM (or disk) can
// be created instantly for out-of-core experiments.
func CreateDenseFile(path string, dims []int) error {
	hdr, err := mapHeaderBytes(dims)
	if err != nil {
		return err
	}
	size := int64(1)
	for _, d := range dims {
		size *= int64(d)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("tensor: write header: %w", err)
	}
	if err := f.Truncate(int64(len(hdr)) + 8*size); err != nil {
		f.Close()
		return fmt.Errorf("tensor: extend data section: %w", err)
	}
	return f.Close()
}

// OpenDense opens a mappable tensor file and returns a file-backed Dense:
// on hosts with mmap support the data slab is a read-only mapping of the
// file's data section (advised MADV_SEQUENTIAL — the kernels stream it in
// ascending order); elsewhere the data section is read into the heap. The
// caller must Close the returned Map when done with the tensor.
func OpenDense(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	h, err := readMapHeader(f)
	if err != nil {
		return nil, err
	}
	need := h.dataOffset + 8*h.size
	if fi.Size() < need {
		return nil, fmt.Errorf("tensor: truncated data section: file is %d bytes, header promises %d", fi.Size(), need)
	}
	if h.size > int64(math.MaxInt)/8 {
		return nil, fmt.Errorf("tensor: %d entries exceed the address space", h.size)
	}
	m := &Map{
		path:     path,
		mtime:    fi.ModTime(),
		size:     fi.Size(),
		checksum: h.checksum,
	}
	data, raw, err := mapData(f, h.dataOffset, int(h.size))
	if err != nil {
		return nil, err
	}
	m.raw = raw
	m.Dense = FromData(data, h.dims...)
	if raw != nil {
		m.Dense.mapped = true
		m.Dense.advise = func(lo, hi int) {
			adviseWillNeedRange(raw, h.dataOffset, lo, hi)
		}
		m.Dense.drop = func(lo, hi int) {
			adviseDontNeedRange(raw, h.dataOffset, lo, hi)
		}
		adviseSequential(raw)
	}
	return m, nil
}

// DenseFileInfo is the identity of a mappable tensor file: its shape plus
// the (mtime, size, header checksum) triple that names this version of the
// file. It is what a by-reference client ships instead of the payload.
type DenseFileInfo struct {
	Dims     []int
	ModTime  time.Time
	Size     int64
	Checksum uint64
}

// StatDense reads a mappable tensor file's header and file identity
// without mapping (or reading) its data section — the cheap way to build
// a by-reference descriptor for a tensor that may exceed RAM.
func StatDense(path string) (*DenseFileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	h, err := readMapHeader(f)
	if err != nil {
		return nil, err
	}
	if need := h.dataOffset + 8*h.size; fi.Size() < need {
		return nil, fmt.Errorf("tensor: truncated data section: file is %d bytes, header promises %d", fi.Size(), need)
	}
	return &DenseFileInfo{
		Dims:     h.dims,
		ModTime:  fi.ModTime(),
		Size:     fi.Size(),
		Checksum: h.checksum,
	}, nil
}

// adviseWillNeedRange issues MADV_WILLNEED for the pages backing elements
// [lo, hi) of a mapping whose data section starts at dataOffset.
func adviseWillNeedRange(raw []byte, dataOffset int64, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	b0 := dataOffset + 8*int64(lo)
	b1 := dataOffset + 8*int64(hi)
	if b1 > int64(len(raw)) {
		b1 = int64(len(raw))
	}
	if b0 >= b1 {
		return
	}
	adviseWillNeed(raw[b0:b1])
}

// adviseDontNeedRange issues MADV_DONTNEED for the pages backing elements
// [lo, hi) of a mapping whose data section starts at dataOffset. The
// advice layer aligns the range inward (unlike WILLNEED's outward
// rounding): a page straddling the range boundary is shared with data a
// neighboring tile still needs, and dropping it would force an immediate
// re-fault.
func adviseDontNeedRange(raw []byte, dataOffset int64, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	b0 := dataOffset + 8*int64(lo)
	b1 := dataOffset + 8*int64(hi)
	if b1 > int64(len(raw)) {
		b1 = int64(len(raw))
	}
	if b0 >= b1 {
		return
	}
	adviseDontNeed(raw[b0:b1])
}
