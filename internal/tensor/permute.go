package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Permute returns a new tensor Y with Y(i_{perm[0]}, …, i_{perm[N-1]}) =
// X(i_0, …, i_{N-1}): mode k of the result is mode perm[k] of the input.
// perm must be a permutation of 0..N-1. This is the general entry
// reordering the MTTKRP algorithms avoid; it is provided for tests, for
// data preparation, and as the explicit cost model of the baseline.
func (d *Dense) Permute(t int, perm []int) *Dense {
	n := len(d.dims)
	if len(perm) != n {
		panic(fmt.Sprintf("tensor: permutation has %d entries for order %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
	}
	outDims := make([]int, n)
	for k, p := range perm {
		outDims[k] = d.dims[p]
	}
	out := New(outDims...)
	// Destination stride of source mode p: out mode k has stride
	// out.strides[k] and reads source mode perm[k].
	dstStride := make([]int, n)
	for k, p := range perm {
		dstStride[p] = out.strides[k]
	}
	idx := make([]int, n)
	size := len(d.data)
	parallel.For(t, size, func(_, lo, hi int) {
		myIdx := make([]int, n)
		copy(myIdx, idx)
		d.MultiIndex(lo, myIdx)
		// Walk source indices in natural order, maintaining the
		// destination offset incrementally (odometer).
		dst := 0
		for m, i := range myIdx {
			dst += i * dstStride[m]
		}
		for l := lo; l < hi; l++ {
			out.data[dst] = d.data[l]
			// Increment the odometer.
			for m := 0; m < n; m++ {
				myIdx[m]++
				dst += dstStride[m]
				if myIdx[m] < d.dims[m] {
					break
				}
				dst -= myIdx[m] * dstStride[m]
				myIdx[m] = 0
			}
		}
	})
	return out
}

// identityPerm returns [0, 1, …, n-1].
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// ModeToFront returns the permutation that moves mode n first, preserving
// the order of the remaining modes — the permutation the classical
// matricization approach applies before its single GEMM.
func ModeToFront(order, n int) []int {
	p := make([]int, 0, order)
	p = append(p, n)
	for k := 0; k < order; k++ {
		if k != n {
			p = append(p, k)
		}
	}
	return p
}
