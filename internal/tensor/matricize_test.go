package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// unfoldRef builds X_(n) column-major by walking every entry with
// multi-index arithmetic — the definition, independent of the optimized
// layout reasoning.
func unfoldRef(d *Dense, n int) mat.View {
	in := d.Dim(n)
	cols := d.SizeOther(n)
	out := mat.NewColMajor(in, cols)
	idx := make([]int, d.Order())
	for l := 0; l < d.Size(); l++ {
		d.MultiIndex(l, idx)
		// Column index: linearization of all modes but n, smaller modes
		// varying faster.
		col := 0
		stride := 1
		for k := 0; k < d.Order(); k++ {
			if k == n {
				continue
			}
			col += idx[k] * stride
			stride *= d.Dim(k)
		}
		out.Set(idx[n], col, d.Data()[l])
	}
	return out
}

func TestUnfoldMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{4}, {3, 5}, {2, 3, 4}, {3, 1, 4, 2}, {2, 2, 2, 2, 2}} {
		d := Random(rng, dims...)
		for n := 0; n < d.Order(); n++ {
			for _, threads := range []int{1, 3} {
				got := d.Unfold(threads, n)
				want := unfoldRef(d, n)
				if !mat.ApproxEqual(got, want, 0) {
					t.Errorf("dims=%v mode=%d threads=%d: unfold mismatch", dims, n, threads)
				}
			}
		}
	}
}

func TestMatricizeMode0IsColMajorView(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Random(rng, 3, 4, 5)
	m := d.Matricize(0)
	if !m.IsColMajor() {
		t.Error("X_(0) should be column-major")
	}
	want := unfoldRef(d, 0)
	if !mat.ApproxEqual(m, want, 0) {
		t.Error("X_(0) view content wrong")
	}
	// It must be a view: writing through it changes the tensor.
	m.Set(0, 0, 99)
	if d.At(0, 0, 0) != 99 {
		t.Error("X_(0) is not a view")
	}
}

func TestMatricizeLastModeIsRowMajorView(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Random(rng, 3, 4, 5)
	m := d.Matricize(2)
	if !m.IsRowMajor() {
		t.Error("X_(N-1) should be row-major")
	}
	want := unfoldRef(d, 2)
	if !mat.ApproxEqual(m, want, 0) {
		t.Error("X_(N-1) view content wrong")
	}
}

func TestMatricizeInternalPanics(t *testing.T) {
	d := New(2, 3, 4)
	defer func() {
		if recover() == nil {
			t.Error("internal-mode Matricize must panic")
		}
	}()
	d.Matricize(1)
}

// TestModeBlocksTileMatricization is the Figure 2 property: X_(n) equals
// the concatenation of I^R_n row-major blocks of size I_n × I^L_n.
func TestModeBlocksTileMatricization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][]int{{3, 4, 5}, {2, 3, 4, 3}, {4, 2}, {2, 1, 3}} {
		d := Random(rng, dims...)
		for n := 0; n < d.Order(); n++ {
			full := unfoldRef(d, n)
			il := d.SizeLeft(n)
			nblk := d.NumModeBlocks(n)
			for j := 0; j < nblk; j++ {
				blk := d.ModeBlock(n, j)
				if !blk.IsRowMajor() {
					t.Fatalf("dims=%v n=%d block %d not row-major", dims, n, j)
				}
				want := full.Slice(0, d.Dim(n), j*il, (j+1)*il)
				if !mat.ApproxEqual(blk, want, 0) {
					t.Fatalf("dims=%v n=%d block %d content wrong", dims, n, j)
				}
			}
		}
	}
}

func TestModeBlockBounds(t *testing.T) {
	d := New(2, 3, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range block must panic")
		}
	}()
	d.ModeBlock(1, 4) // I^R_1 = 4, so block 4 is out of range
}

// TestMatricizeRowModes checks X_(0:n): entry (r, c) with r the
// linearization of modes 0..n and c the linearization of modes n+1..N-1.
func TestMatricizeRowModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Random(rng, 2, 3, 4, 2)
	idx := make([]int, 4)
	for n := 0; n < 3; n++ {
		m := d.MatricizeRowModes(n)
		if !m.IsColMajor() {
			t.Fatalf("X_(0:%d) not column-major", n)
		}
		rows := d.SizeLeft(n) * d.Dim(n)
		if m.R != rows || m.C != d.Size()/rows {
			t.Fatalf("X_(0:%d) is %dx%d", n, m.R, m.C)
		}
		for l := 0; l < d.Size(); l++ {
			d.MultiIndex(l, idx)
			r := 0
			stride := 1
			for k := 0; k <= n; k++ {
				r += idx[k] * stride
				stride *= d.Dim(k)
			}
			c := 0
			stride = 1
			for k := n + 1; k < 4; k++ {
				c += idx[k] * stride
				stride *= d.Dim(k)
			}
			if m.At(r, c) != d.Data()[l] {
				t.Fatalf("X_(0:%d) entry (%d,%d) wrong", n, r, c)
			}
		}
	}
}

func TestFoldInvertsUnfold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1}
		d := Random(rng, dims...)
		n := int(n8) % 3
		back := Fold(d.Unfold(1, n), n, dims)
		return MaxAbsDiff(d, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFoldDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Fold(mat.NewDense(3, 3), 0, []int{2, 2})
}

func TestUnfoldIsACopy(t *testing.T) {
	d := New(2, 3, 2)
	u := d.Unfold(1, 1)
	u.Set(0, 0, 7)
	if d.At(0, 0, 0) != 0 {
		t.Error("Unfold must copy, not alias")
	}
}
