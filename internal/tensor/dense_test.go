package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	d := New(3, 4, 5)
	if d.Order() != 3 || d.Size() != 60 {
		t.Fatalf("order %d size %d", d.Order(), d.Size())
	}
	if d.Dim(0) != 3 || d.Dim(1) != 4 || d.Dim(2) != 5 {
		t.Fatal("dims wrong")
	}
	if d.SizeLeft(0) != 1 || d.SizeLeft(1) != 3 || d.SizeLeft(2) != 12 {
		t.Fatalf("left sizes: %d %d %d", d.SizeLeft(0), d.SizeLeft(1), d.SizeLeft(2))
	}
	if d.SizeRight(0) != 20 || d.SizeRight(1) != 5 || d.SizeRight(2) != 1 {
		t.Fatalf("right sizes: %d %d %d", d.SizeRight(0), d.SizeRight(1), d.SizeRight(2))
	}
	if d.SizeOther(1) != 15 {
		t.Fatalf("SizeOther(1) = %d", d.SizeOther(1))
	}
	dims := d.Dims()
	dims[0] = 99
	if d.Dim(0) == 99 {
		t.Error("Dims() must return a copy")
	}
}

func TestNewRejectsBadDims(t *testing.T) {
	for _, dims := range [][]int{{0}, {3, 0, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", dims)
				}
			}()
			New(dims...)
		}()
	}
}

func TestFromData(t *testing.T) {
	buf := []float64{1, 2, 3, 4, 5, 6}
	d := FromData(buf, 2, 3)
	if d.At(1, 2) != 6 || d.At(0, 1) != 3 {
		t.Error("FromData layout wrong")
	}
	d.Set(42, 0, 0)
	if buf[0] != 42 {
		t.Error("FromData must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	FromData(buf, 2, 2)
}

func TestLinearizationMatchesPaperFormula(t *testing.T) {
	// ℓ = Σ i_n · I^L_n with mode 0 fastest.
	d := New(2, 3, 4)
	if got := d.LinearIndex([]int{1, 2, 3}); got != 1+2*2+3*6 {
		t.Errorf("linear index = %d, want %d", got, 1+4+18)
	}
	if got := d.LinearIndex([]int{0, 0, 0}); got != 0 {
		t.Errorf("origin index = %d", got)
	}
	if got := d.LinearIndex([]int{1, 0, 0}); got != 1 {
		t.Error("mode 0 must vary fastest")
	}
}

func TestIndexRoundTripQuick(t *testing.T) {
	d := New(3, 5, 2, 4)
	idx := make([]int, 4)
	f := func(l16 uint16) bool {
		l := int(l16) % d.Size()
		d.MultiIndex(l, idx)
		return d.LinearIndex(idx) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexBoundsPanics(t *testing.T) {
	d := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinearIndex(%v) should panic", idx)
				}
			}()
			d.LinearIndex(idx)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("MultiIndex out of range should panic")
		}
	}()
	d.MultiIndex(4, make([]int, 2))
}

func TestAtSetFillClone(t *testing.T) {
	d := New(2, 2)
	d.Set(3.5, 1, 0)
	if d.At(1, 0) != 3.5 {
		t.Error("At/Set wrong")
	}
	c := d.Clone()
	c.Set(-1, 1, 0)
	if d.At(1, 0) != 3.5 {
		t.Error("clone aliases")
	}
	d.Fill(2)
	for _, v := range d.Data() {
		if v != 2 {
			t.Fatal("fill failed")
		}
	}
}

func TestNormAndInner(t *testing.T) {
	d := New(2, 2)
	copy(d.Data(), []float64{1, 2, 3, 4})
	want := math.Sqrt(1 + 4 + 9 + 16)
	for _, threads := range []int{1, 2, 4} {
		if got := d.Norm(threads); math.Abs(got-want) > 1e-14 {
			t.Errorf("Norm(t=%d) = %v, want %v", threads, got, want)
		}
	}
	e := d.Clone()
	if got := Inner(2, d, e); math.Abs(got-30) > 1e-14 {
		t.Errorf("Inner = %v, want 30", got)
	}
}

func TestInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Inner(1, New(2, 2), New(4))
}

func TestNormParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Random(rng, 7, 11, 5)
	seq := d.NormSquared(1)
	for threads := 2; threads <= 8; threads++ {
		par := d.NormSquared(threads)
		if math.Abs(seq-par) > 1e-9*seq {
			t.Errorf("threads=%d: %v vs %v", threads, par, seq)
		}
	}
}

func TestAddScaledAndDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Random(rng, 3, 4)
	y := Random(rng, 3, 4)
	z := x.Clone()
	z.AddScaled(-1, x)
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("x - x != 0")
		}
	}
	if MaxAbsDiff(x, x) != 0 {
		t.Error("self diff not 0")
	}
	if !ApproxEqual(x, x.Clone(), 0) {
		t.Error("clone not equal")
	}
	if ApproxEqual(x, y, 1e-15) {
		t.Error("different random tensors equal")
	}
	if ApproxEqual(x, New(4, 3), 1) {
		t.Error("shape mismatch must not be equal")
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(42)), 4, 4)
	b := Random(rand.New(rand.NewSource(42)), 4, 4)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed should give same tensor")
	}
}
