//go:build (linux || darwin) && (amd64 || arm64)

package tensor

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// The mapped path is gated to little-endian mmap hosts: the on-disk slab is
// float64 LE, so reinterpreting mapped bytes in place is only correct where
// the host byte order matches. Other hosts read through the portable
// fallback loader instead.

// mapData maps the file read-only and returns the float64 view of its data
// section plus the raw mapping (for munmap/madvise).
func mapData(f *os.File, dataOffset int64, n int) ([]float64, []byte, error) {
	length := dataOffset + 8*int64(n)
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("tensor: mmap %s: %w", f.Name(), err)
	}
	if n == 0 {
		return nil, raw, nil
	}
	data := unsafe.Slice((*float64)(unsafe.Pointer(&raw[dataOffset])), n)
	return data, raw, nil
}

func unmapFile(raw []byte) error {
	return syscall.Munmap(raw)
}

// adviseSequential hints that the mapping will be streamed in ascending
// order (larger readahead). Advice is best-effort; errors are ignored.
func adviseSequential(raw []byte) {
	if len(raw) > 0 {
		_ = syscall.Madvise(raw, syscall.MADV_SEQUENTIAL)
	}
}

// adviseDontNeed hints that the given byte range has been consumed and its
// pages may be reclaimed (drop-behind for single-pass scans). The range is
// shrunk inward to whole pages — start rounded up, end rounded down — so a
// boundary page shared with still-needed neighboring data is never
// dropped. On a read-only MAP_SHARED file mapping DONTNEED only releases
// the process's resident pages; a later access re-faults from the page
// cache or disk, so the hint is always safe, merely wasteful if wrong.
func adviseDontNeed(b []byte) {
	if len(b) == 0 {
		return
	}
	page := uintptr(os.Getpagesize())
	p := unsafe.Pointer(&b[0])
	if fwd := uintptr(p) % page; fwd != 0 {
		skip := int(page - fwd)
		if skip >= len(b) {
			return
		}
		b = b[skip:]
	}
	if tail := len(b) % int(page); tail != 0 {
		b = b[:len(b)-tail]
	}
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
	}
}

// adviseWillNeed hints that the given byte range is about to be read (start
// readahead now). Madvise wants page-aligned starts; round down, best effort.
func adviseWillNeed(b []byte) {
	if len(b) == 0 {
		return
	}
	page := uintptr(os.Getpagesize())
	p := unsafe.Pointer(&b[0])
	if back := uintptr(p) % page; back != 0 {
		// Grow the range backwards to the page boundary; the extra bytes are
		// part of the same mapping (the data section is page-aligned).
		b = unsafe.Slice((*byte)(unsafe.Add(p, -int(back))), len(b)+int(back))
	}
	_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
}
