// Package tensor implements dense N-way tensors stored in the natural
// linearization the paper assumes: entry (i_0, …, i_{N-1}) lives at linear
// index ℓ = Σ_n i_n · I^L_n, where I^L_n is the product of the dimensions
// to the left of mode n (mode 0 varies fastest — the generalization of
// column-major order). All of the paper's matricization structure follows
// from this layout and is exposed here as stride views, never copies:
//
//   - X_(0)      is column-major               (Matricize(0))
//   - X_(N-1)    is row-major                  (Matricize(N-1))
//   - X_(n)      is I^R_n row-major blocks     (ModeBlock)
//   - X_(0:n)    is column-major               (MatricizeRowModes)
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// Dense is an N-way dense tensor in natural linearization.
type Dense struct {
	dims    []int
	strides []int // strides[n] = I^L_n
	data    []float64

	// mapped marks data as a read-only file mapping (set by OpenDense);
	// mutating methods must not be called on a mapped tensor. advise and
	// drop are the page-hint hooks for the mapping (readahead and
	// drop-behind), nil for heap tensors.
	mapped bool
	advise func(lo, hi int)
	drop   func(lo, hi int)
}

// Mapped reports whether the data slab is a read-only mapped file region
// (an OpenDense tensor). Mapped tensors must not be mutated, and the
// serving cost model prices them by resident working set rather than slab
// size.
func (d *Dense) Mapped() bool { return d.mapped }

// AdviseWillNeed hints the OS that elements [lo, hi) of the slab are about
// to be read, starting readahead for the backing pages. No-op for heap
// tensors; never required for correctness.
func (d *Dense) AdviseWillNeed(lo, hi int) {
	if d.advise != nil {
		d.advise(lo, hi)
	}
}

// DropBehind hints the OS that elements [lo, hi) of the slab have been
// consumed and their backing pages may be reclaimed (MADV_DONTNEED on a
// read-only file mapping: the pages drop from the process; a later access
// re-faults them from the page cache or disk). Single-pass tiled scans use
// it to keep a huge tensor's resident set near one tile instead of letting
// consumed tiles accumulate until memory pressure evicts something less
// disposable. No-op for heap tensors; never required for correctness.
func (d *Dense) DropBehind(lo, hi int) {
	if d.drop != nil {
		d.drop(lo, hi)
	}
}

// Reslice re-points d at data viewed with the given dims, reusing the
// receiver's dims/strides storage when capacities allow. It exists for
// kernel frames that stream tile subtensors through reused buffers with no
// steady-state allocation; general callers should use FromData.
func (d *Dense) Reslice(data []float64, dims []int) {
	d.dims = append(d.dims[:0], dims...)
	d.strides = d.strides[:0]
	size := 1
	for n, dim := range dims {
		if dim <= 0 {
			panic(fmt.Sprintf("tensor: dimension %d is %d, must be positive", n, dim))
		}
		d.strides = append(d.strides, size)
		size *= dim
	}
	if len(data) != size {
		panic(fmt.Sprintf("tensor: data length %d does not match dims (need %d)", len(data), size))
	}
	d.data = data
	d.mapped = false
	d.advise = nil
	d.drop = nil
}

// New allocates a zero tensor with the given dimensions. Every dimension
// must be positive.
func New(dims ...int) *Dense {
	d := &Dense{dims: append([]int(nil), dims...)}
	d.strides = make([]int, len(dims))
	size := 1
	for n, dim := range dims {
		if dim <= 0 {
			panic(fmt.Sprintf("tensor: dimension %d is %d, must be positive", n, dim))
		}
		d.strides[n] = size
		size *= dim
	}
	d.data = make([]float64, size)
	return d
}

// FromData wraps an existing buffer (not copied) with tensor dimensions.
// len(data) must equal the product of dims.
func FromData(data []float64, dims ...int) *Dense {
	d := &Dense{dims: append([]int(nil), dims...), data: data}
	d.strides = make([]int, len(dims))
	size := 1
	for n, dim := range dims {
		if dim <= 0 {
			panic(fmt.Sprintf("tensor: dimension %d is %d, must be positive", n, dim))
		}
		d.strides[n] = size
		size *= dim
	}
	if len(data) != size {
		panic(fmt.Sprintf("tensor: data length %d does not match dims (need %d)", len(data), size))
	}
	return d
}

// Order returns the number of modes N.
func (d *Dense) Order() int { return len(d.dims) }

// Dim returns the size of mode n.
func (d *Dense) Dim(n int) int { return d.dims[n] }

// Dims returns a copy of the dimension slice.
func (d *Dense) Dims() []int { return append([]int(nil), d.dims...) }

// Size returns the total number of entries I = ∏ I_n.
func (d *Dense) Size() int { return len(d.data) }

// Data exposes the underlying buffer in natural linearization.
func (d *Dense) Data() []float64 { return d.data }

// Stride returns I^L_n, the linearization stride of mode n.
func (d *Dense) Stride(n int) int { return d.strides[n] }

// SizeLeft returns I^L_n = ∏_{k<n} I_k.
func (d *Dense) SizeLeft(n int) int { return d.strides[n] }

// SizeRight returns I^R_n = ∏_{k>n} I_k.
func (d *Dense) SizeRight(n int) int {
	return len(d.data) / (d.strides[n] * d.dims[n])
}

// SizeOther returns I_{≠n} = ∏_{k≠n} I_k, the column count of X_(n).
func (d *Dense) SizeOther(n int) int { return len(d.data) / d.dims[n] }

// LinearIndex converts a multi-index to the natural linear index.
func (d *Dense) LinearIndex(idx []int) int {
	if len(idx) != len(d.dims) {
		panic(fmt.Sprintf("tensor: index has %d coordinates, want %d", len(idx), len(d.dims)))
	}
	l := 0
	for n, i := range idx {
		if i < 0 || i >= d.dims[n] {
			panic(fmt.Sprintf("tensor: index %d out of range for mode %d (dim %d)", i, n, d.dims[n]))
		}
		l += i * d.strides[n]
	}
	return l
}

// MultiIndex writes the multi-index of linear index l into idx, which must
// have length N, and returns it.
func (d *Dense) MultiIndex(l int, idx []int) []int {
	if l < 0 || l >= len(d.data) {
		panic(fmt.Sprintf("tensor: linear index %d out of range", l))
	}
	for n, dim := range d.dims {
		idx[n] = l % dim
		l /= dim
	}
	return idx
}

// At returns the entry at the given multi-index.
func (d *Dense) At(idx ...int) float64 { return d.data[d.LinearIndex(idx)] }

// Set assigns the entry at the given multi-index.
func (d *Dense) Set(v float64, idx ...int) { d.data[d.LinearIndex(idx)] = v }

// Fill sets every entry to v.
func (d *Dense) Fill(v float64) {
	for i := range d.data {
		d.data[i] = v
	}
}

// Randomize fills the tensor with uniform [0,1) entries from rng.
func (d *Dense) Randomize(rng *rand.Rand) {
	for i := range d.data {
		d.data[i] = rng.Float64()
	}
}

// Random returns a new tensor with uniform [0,1) entries.
func Random(rng *rand.Rand, dims ...int) *Dense {
	d := New(dims...)
	d.Randomize(rng)
	return d
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := New(d.dims...)
	copy(c.data, d.data)
	return c
}

// Norm returns the Frobenius norm ‖X‖, computed with per-worker partial
// sums (t workers).
func (d *Dense) Norm(t int) float64 {
	return math.Sqrt(d.NormSquared(t))
}

// NormSquared returns ‖X‖² = Σ x².
func (d *Dense) NormSquared(t int) float64 {
	t = parallel.Clamp(t, len(d.data))
	parts := make([]float64, t)
	parallel.For(t, len(d.data), func(w, lo, hi int) {
		s := 0.0
		for _, v := range d.data[lo:hi] {
			s += v * v
		}
		parts[w] = s
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// Inner returns the inner product ⟨X, Y⟩ = Σ x·y of equally shaped tensors.
func Inner(t int, x, y *Dense) float64 {
	if !sameDims(x.dims, y.dims) {
		panic("tensor: inner product dimension mismatch")
	}
	t = parallel.Clamp(t, len(x.data))
	parts := make([]float64, t)
	parallel.For(t, len(x.data), func(w, lo, hi int) {
		s := 0.0
		xd, yd := x.data[lo:hi], y.data[lo:hi]
		for i := range xd {
			s += xd[i] * yd[i]
		}
		parts[w] = s
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// AddScaled computes X += alpha·Y elementwise.
func (d *Dense) AddScaled(alpha float64, y *Dense) {
	if !sameDims(d.dims, y.dims) {
		panic("tensor: addscaled dimension mismatch")
	}
	for i := range d.data {
		d.data[i] += alpha * y.data[i]
	}
}

// MaxAbsDiff returns the largest absolute entrywise difference.
func MaxAbsDiff(x, y *Dense) float64 {
	if !sameDims(x.dims, y.dims) {
		panic("tensor: diff dimension mismatch")
	}
	max := 0.0
	for i := range x.data {
		d := math.Abs(x.data[i] - y.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// ApproxEqual reports entrywise agreement within tol relative to the
// largest magnitude present.
func ApproxEqual(x, y *Dense, tol float64) bool {
	if !sameDims(x.dims, y.dims) {
		return false
	}
	scale := 1.0
	for i := range x.data {
		if m := math.Abs(x.data[i]); m > scale {
			scale = m
		}
	}
	return MaxAbsDiff(x, y) <= tol*scale
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
