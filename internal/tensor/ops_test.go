package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ttvRef contracts mode n against v by walking all entries.
func ttvRef(d *Dense, n int, v []float64) *Dense {
	outDims := make([]int, 0, d.Order()-1)
	for k, dim := range d.Dims() {
		if k != n {
			outDims = append(outDims, dim)
		}
	}
	if len(outDims) == 0 {
		outDims = []int{1}
	}
	out := New(outDims...)
	idx := make([]int, d.Order())
	oidx := make([]int, len(outDims))
	for l := 0; l < d.Size(); l++ {
		d.MultiIndex(l, idx)
		p := 0
		for k := 0; k < d.Order(); k++ {
			if k != n {
				oidx[p] = idx[k]
				p++
			}
		}
		if d.Order() == 1 {
			oidx[0] = 0
		}
		out.Set(out.At(oidx...)+d.Data()[l]*v[idx[n]], oidx...)
	}
	return out
}

func TestTTVMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{5}, {3, 4}, {2, 3, 4}, {3, 2, 2, 3}} {
		d := Random(rng, dims...)
		for n := 0; n < d.Order(); n++ {
			v := make([]float64, d.Dim(n))
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			got := d.TTV(n, v)
			want := ttvRef(d, n, v)
			if !ApproxEqual(got, want, 1e-12) {
				t.Errorf("dims=%v n=%d: ttv mismatch (max diff %g)", dims, n, MaxAbsDiff(got, want))
			}
		}
	}
}

func TestTTVKnownValue(t *testing.T) {
	// X = [1 2; 3 4] (col-major: X(0,0)=1, X(1,0)=3, X(0,1)=2, X(1,1)=4).
	d := New(2, 2)
	d.Set(1, 0, 0)
	d.Set(3, 1, 0)
	d.Set(2, 0, 1)
	d.Set(4, 1, 1)
	// Contract mode 0 with [1, 1]: column sums [4, 6].
	y := d.TTV(0, []float64{1, 1})
	if y.At(0) != 4 || y.At(1) != 6 {
		t.Errorf("ttv = %v", y.Data())
	}
	// Contract mode 1 with [2, 0]: 2×first column = [2, 6].
	z := d.TTV(1, []float64{2, 0})
	if z.At(0) != 2 || z.At(1) != 6 {
		t.Errorf("ttv mode 1 = %v", z.Data())
	}
}

func TestTTVLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 3).TTV(0, []float64{1, 2, 3})
}

func TestTTVOrder1(t *testing.T) {
	d := New(3)
	copy(d.Data(), []float64{1, 2, 3})
	y := d.TTV(0, []float64{1, 1, 1})
	if y.Size() != 1 || y.Data()[0] != 6 {
		t.Errorf("order-1 ttv = %v", y.Data())
	}
}

func TestTTMMatchesTTVColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Random(rng, 3, 4, 2)
	n := 1
	c := 3
	m := make([][]float64, d.Dim(n))
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	y := d.TTM(n, m)
	if y.Dim(n) != c {
		t.Fatalf("ttm output mode-%d dim = %d, want %d", n, y.Dim(n), c)
	}
	// Column j of the TTM equals the TTV with M(:, j).
	for j := 0; j < c; j++ {
		col := make([]float64, d.Dim(n))
		for i := range col {
			col[i] = m[i][j]
		}
		tv := d.TTV(n, col)
		// Extract slice j of y along mode n and compare.
		idx := make([]int, 3)
		oidx := make([]int, 2)
		for l := 0; l < tv.Size(); l++ {
			tv.MultiIndex(l, oidx)
			idx[0], idx[1], idx[2] = oidx[0], j, oidx[1]
			if math.Abs(y.At(idx...)-tv.Data()[l]) > 1e-12 {
				t.Fatalf("ttm column %d mismatch at %v", j, oidx)
			}
		}
	}
}

func TestTTMRowCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 3).TTM(0, [][]float64{{1}})
}
