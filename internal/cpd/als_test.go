package cpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// plantedTensor builds an exactly rank-C tensor from a random KTensor.
func plantedTensor(rng *rand.Rand, dims []int, c int) (*tensor.Dense, *KTensor) {
	k := RandomKTensor(rng, dims, c)
	return k.Full(), k
}

func TestALSRecoversExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		dims []int
		rank int
	}{
		{[]int{10, 12, 8}, 2},
		{[]int{8, 6, 7, 5}, 3},
		{[]int{20, 15}, 2},
	} {
		x, _ := plantedTensor(rng, tc.dims, tc.rank)
		res, err := ALS(x, Config{Rank: tc.rank, MaxIters: 200, Tol: 1e-12, Seed: 7, Threads: 2})
		if err != nil {
			t.Fatalf("dims=%v: %v", tc.dims, err)
		}
		if res.Fit < 0.9999 {
			t.Errorf("dims=%v rank=%d: fit %v after %d iters, want ≈1", tc.dims, tc.rank, res.Fit, res.Iters)
		}
		// The fitted model must reconstruct the tensor.
		if !tensor.ApproxEqual(res.K.Full(), x, 1e-2) {
			t.Errorf("dims=%v: reconstruction error too large", tc.dims)
		}
	}
}

func TestALSFitMatchesExplicitResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Random(rng, 6, 7, 5)
	res, err := ALS(x, Config{Rank: 3, MaxIters: 10, Tol: -1, Seed: 3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit: fit = 1 − ‖X − Y‖/‖X‖.
	y := res.K.Full()
	diff := x.Clone()
	diff.AddScaled(-1, y)
	want := 1 - diff.Norm(1)/x.Norm(1)
	if math.Abs(res.Fit-want) > 1e-8 {
		t.Errorf("cached fit %v, explicit fit %v", res.Fit, want)
	}
}

func TestALSFitMonotoneOnNoiselessData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := plantedTensor(rng, []int{9, 8, 7}, 2)
	res, err := ALS(x, Config{Rank: 2, MaxIters: 40, Tol: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FitHistory); i++ {
		if res.FitHistory[i] < res.FitHistory[i-1]-1e-9 {
			t.Errorf("fit decreased at sweep %d: %v -> %v", i, res.FitHistory[i-1], res.FitHistory[i])
		}
	}
}

func TestALSAllMethodsConvergeToSameFit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Random(rng, 8, 9, 7)
	fits := make(map[core.Method]float64)
	for _, m := range []core.Method{core.MethodAuto, core.MethodOneStep, core.MethodTwoStep, core.MethodReorder} {
		res, err := ALS(x, Config{Rank: 4, MaxIters: 15, Tol: -1, Seed: 5, Method: m, Threads: 2})
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		fits[m] = res.Fit
	}
	for m, f := range fits {
		if math.Abs(f-fits[core.MethodAuto]) > 1e-8 {
			t.Errorf("method %v fit %v differs from auto %v", m, f, fits[core.MethodAuto])
		}
	}
}

func TestALSDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Random(rng, 6, 6, 6)
	a, _ := ALS(x, Config{Rank: 2, MaxIters: 8, Tol: -1, Seed: 42})
	b, _ := ALS(x, Config{Rank: 2, MaxIters: 8, Tol: -1, Seed: 42})
	if a.Fit != b.Fit {
		t.Error("same seed gave different results")
	}
	c, _ := ALS(x, Config{Rank: 2, MaxIters: 8, Tol: -1, Seed: 43})
	if a.Fit == c.Fit {
		t.Error("different seeds gave identical fit (suspicious)")
	}
}

func TestALSWithProvidedInit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, planted := plantedTensor(rng, []int{8, 7, 6}, 2)
	// Start at the planted solution: one sweep should keep fit ≈ 1.
	res, err := ALS(x, Config{Rank: 2, MaxIters: 2, Tol: -1, Init: planted})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999999 {
		t.Errorf("fit from planted init = %v", res.Fit)
	}
	// Init must not be mutated.
	if planted.Lambda[0] != 1 {
		t.Error("ALS mutated the provided init")
	}
}

func TestALSErrorCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Random(rng, 4, 4)
	if _, err := ALS(x, Config{Rank: 0}); err == nil {
		t.Error("rank 0 should fail")
	}
	if _, err := ALS(tensor.New(5), Config{Rank: 2}); err == nil {
		t.Error("order-1 tensor should fail")
	}
	badInit := RandomKTensor(rng, []int{4, 4}, 3)
	if _, err := ALS(x, Config{Rank: 2, Init: badInit}); err == nil {
		t.Error("rank-mismatched init should fail")
	}
	badInit2 := RandomKTensor(rng, []int{4, 4, 4}, 2)
	if _, err := ALS(x, Config{Rank: 2, Init: badInit2}); err == nil {
		t.Error("order-mismatched init should fail")
	}
}

func TestALSEarlyStopOnTol(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, _ := plantedTensor(rng, []int{10, 9, 8}, 1)
	res, err := ALS(x, Config{Rank: 1, MaxIters: 500, Tol: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 500 {
		t.Errorf("no early stop: ran %d iters", res.Iters)
	}
	if len(res.IterTimes) != res.Iters || len(res.FitHistory) != res.Iters {
		t.Error("history lengths inconsistent with Iters")
	}
	if res.MeanIterTime() <= 0 {
		t.Error("mean iteration time not recorded")
	}
}

func TestReferenceALSMatchesRegularReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Random(rng, 7, 6, 5)
	a, err := ReferenceALS(x, Config{Rank: 3, MaxIters: 6, Tol: -1, Seed: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ALS(x, Config{Rank: 3, MaxIters: 6, Tol: -1, Seed: 2, Method: core.MethodReorder, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Fit-b.Fit) > 1e-10 {
		t.Errorf("reference ALS fit %v != reorder ALS fit %v", a.Fit, b.Fit)
	}
}

func TestALSBreakdownAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.Random(rng, 8, 8, 8)
	var bd core.Breakdown
	_, err := ALS(x, Config{Rank: 3, MaxIters: 3, Tol: -1, Threads: 2, Breakdown: &bd})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 || bd.Get(core.PhaseGEMM) <= 0 {
		t.Errorf("breakdown not accumulated: %v", &bd)
	}
}

func TestALSZeroTensor(t *testing.T) {
	x := tensor.New(4, 4, 4) // all zeros
	res, err := ALS(x, Config{Rank: 2, MaxIters: 3, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Fit) {
		t.Error("fit is NaN on zero tensor")
	}
}

func TestALSRankExceedingDimensions(t *testing.T) {
	// Rank larger than every dimension: Grams are singular, exercising the
	// pseudo-inverse fallback path every sweep.
	rng := rand.New(rand.NewSource(11))
	x := tensor.Random(rng, 3, 4, 3)
	res, err := ALS(x, Config{Rank: 6, MaxIters: 8, Tol: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Fit) || res.Fit < 0.5 {
		t.Errorf("overcomplete fit = %v", res.Fit)
	}
}
