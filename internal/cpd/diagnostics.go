package cpd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/blas"
	"repro/internal/la"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Corcondia computes the core consistency diagnostic (Bro & Kiers) of a
// fitted CP model: the Tucker core G = X ×₀ U₀† ⋯ ×_{N-1} U_{N-1}† is
// compared against the ideal superdiagonal core. 100 means the CP
// structure explains the interactions perfectly; values well below 100
// (or negative) indicate an over-factored or invalid model. The model's
// weights are distributed evenly across modes before inversion.
func Corcondia(t int, x *tensor.Dense, k *KTensor) float64 {
	n := x.Order()
	if k.Order() != n {
		panic(fmt.Sprintf("cpd: corcondia order mismatch: tensor %d, model %d", n, k.Order()))
	}
	c := k.Rank()
	// Distribute λ^(1/N) into each mode's factor copy.
	scaled := make([]mat.View, n)
	for m := 0; m < n; m++ {
		scaled[m] = k.Factors[m].Clone()
	}
	for comp := 0; comp < c; comp++ {
		w := k.Lambda[comp]
		if w < 0 {
			// Push the sign into the first mode, magnitude everywhere.
			blas.Scal(-1, scaled[0].Col(comp))
			w = -w
		}
		root := rootN(w, n)
		for m := 0; m < n; m++ {
			blas.Scal(root, scaled[m].Col(comp))
		}
	}
	// Mode-wise pseudo-inverses: the TTM operand is (U†)ᵀ = U·(UᵀU)†.
	ms := make([]mat.View, n)
	for m := 0; m < n; m++ {
		u := scaled[m]
		h := mat.NewDense(c, c)
		blas.Gemm(t, 1, u.T(), u, 0, h)
		ms[m] = la.PinvSolveGram(h, u.Clone())
	}
	g := ttm.Chain(t, x, ms) // C × C × … × C core
	// Compare against the superdiagonal identity.
	idx := make([]int, n)
	num := 0.0
	for l, v := range g.Data() {
		g.MultiIndex(l, idx)
		want := 0.0
		if allEqual(idx) {
			want = 1
		}
		d := v - want
		num += d * d
	}
	return 100 * (1 - num/float64(c))
}

func allEqual(idx []int) bool {
	for _, i := range idx[1:] {
		if i != idx[0] {
			return false
		}
	}
	return true
}

func rootN(x float64, n int) float64 {
	switch {
	case x == 0:
		return 0
	case n == 1:
		return x
	case n == 2:
		return math.Sqrt(x)
	default:
		return math.Pow(x, 1/float64(n))
	}
}

// NVecs computes the rank-c leading eigenvector initialization of mode n
// (the Tensor Toolbox 'nvecs' option): the top c eigenvectors of
// X_(n)·X_(n)ᵀ, computed without reordering tensor entries by accumulating
// Gram contributions over the mode's row-major blocks. If c exceeds I_n,
// the remaining columns are filled with random values.
func NVecs(t int, x *tensor.Dense, n, c int, rng *rand.Rand) mat.View {
	in := x.Dim(n)
	g := mat.NewDense(in, in)
	for j := 0; j < x.NumModeBlocks(n); j++ {
		blk := x.ModeBlock(n, j)
		blas.Gemm(t, 1, blk, blk.T(), 1, g)
	}
	w, v := la.JacobiEigen(g)
	order := make([]int, in)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return w[order[a]] > w[order[b]] })
	out := mat.NewDense(in, c)
	for col := 0; col < c; col++ {
		if col < in {
			blas.CopyVec(v.Col(order[col]), out.Col(col))
			continue
		}
		for i := 0; i < in; i++ {
			out.Set(i, col, rng.Float64())
		}
	}
	return out
}

// NVecsInit builds a full initial KTensor from per-mode NVecs.
func NVecsInit(t int, x *tensor.Dense, c int, seed int64) *KTensor {
	rng := rand.New(rand.NewSource(seed))
	factors := make([]mat.View, x.Order())
	for n := 0; n < x.Order(); n++ {
		factors[n] = NVecs(t, x, n, c, rng)
	}
	lambda := make([]float64, c)
	for i := range lambda {
		lambda[i] = 1
	}
	return NewKTensor(lambda, factors)
}
