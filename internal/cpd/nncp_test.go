package cpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestNNALSFactorsStayNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Random(rng, 8, 7, 6) // uniform entries: nonnegative
	res, err := NNALS(x, Config{Rank: 3, MaxIters: 20, Tol: -1, Seed: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range res.K.Factors {
		for i := 0; i < u.R; i++ {
			for j := 0; j < u.C; j++ {
				if u.At(i, j) < 0 {
					t.Fatalf("factor %d has negative entry %v at (%d,%d)", k, u.At(i, j), i, j)
				}
			}
		}
	}
}

func TestNNALSRecoversNonnegativeLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Planted nonnegative model (RandomKTensor draws uniform [0,1)).
	planted := RandomKTensor(rng, []int{12, 10, 8}, 2)
	x := planted.Full()
	res, err := NNALS(x, Config{Rank: 2, MaxIters: 300, Tol: 1e-12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Errorf("fit = %v after %d sweeps on exact nonnegative data", res.Fit, res.Iters)
	}
}

func TestNNALSFitImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Random(rng, 9, 8, 7)
	res, err := NNALS(x, Config{Rank: 4, MaxIters: 15, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.FitHistory[0], res.Fit
	if last < first-1e-9 {
		t.Errorf("fit regressed from %v to %v", first, last)
	}
	// HALS should mostly improve monotonically on this easy problem.
	drops := 0
	for i := 1; i < len(res.FitHistory); i++ {
		if res.FitHistory[i] < res.FitHistory[i-1]-1e-7 {
			drops++
		}
	}
	if drops > 2 {
		t.Errorf("fit dropped %d times: %v", drops, res.FitHistory)
	}
}

func TestNNALSRejectsNegativeTensor(t *testing.T) {
	x := tensor.New(3, 3)
	x.Set(-1, 1, 1)
	if _, err := NNALS(x, Config{Rank: 2}); err == nil {
		t.Error("expected rejection of negative tensor")
	}
}

func TestNNALSConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Random(rng, 4, 4)
	if _, err := NNALS(x, Config{Rank: 0}); err == nil {
		t.Error("rank 0 should fail")
	}
	if _, err := NNALS(tensor.New(3), Config{Rank: 1}); err == nil {
		t.Error("order-1 should fail")
	}
	bad := RandomKTensor(rng, []int{4, 4}, 3)
	if _, err := NNALS(x, Config{Rank: 2, Init: bad}); err == nil {
		t.Error("mismatched init should fail")
	}
}

func TestNNALSInitProjectsNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Random(rng, 5, 4, 3)
	init := RandomKTensor(rng, []int{5, 4, 3}, 2)
	init.Factors[0].Set(0, 0, -5) // negative entry must be projected away
	res, err := NNALS(x, Config{Rank: 2, MaxIters: 2, Tol: -1, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.K.Factors[0].At(0, 0) < 0 {
		t.Error("negative init entry survived")
	}
	if init.Factors[0].At(0, 0) != -5 {
		t.Error("caller's init was mutated")
	}
}

func TestNNALSFitMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Random(rng, 6, 5, 4)
	res, err := NNALS(x, Config{Rank: 2, MaxIters: 8, Tol: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Clone()
	diff.AddScaled(-1, res.K.Full())
	want := 1 - diff.Norm(1)/x.Norm(1)
	if math.Abs(res.Fit-want) > 1e-8 {
		t.Errorf("cached fit %v vs explicit %v", res.Fit, want)
	}
}
