package cpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestCorcondiaPerfectModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, planted := plantedTensor(rng, []int{8, 7, 6}, 3)
	score := Corcondia(2, x, planted)
	if score < 99.9 {
		t.Errorf("corcondia of exact model = %v, want ≈ 100", score)
	}
}

func TestCorcondiaAfterALSFit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := plantedTensor(rng, []int{10, 9, 8}, 2)
	res, err := ALS(x, Config{Rank: 2, MaxIters: 300, Tol: 1e-13, Seed: 5, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.9999 {
		t.Skipf("ALS did not converge tightly (fit %v); corcondia check not meaningful", res.Fit)
	}
	score := Corcondia(2, x, res.K)
	if score < 99 {
		t.Errorf("corcondia of converged exact-rank fit = %v", score)
	}
}

func TestCorcondiaDetectsOverfactoring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := plantedTensor(rng, []int{10, 9, 8}, 2)
	// Add noise so rank-5 overfactoring fits noise components.
	data := x.Data()
	for i := range data {
		data[i] += 0.05 * rng.NormFloat64()
	}
	good, err := ALS(x, Config{Rank: 2, MaxIters: 100, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	over, err := ALS(x, Config{Rank: 5, MaxIters: 100, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gScore := Corcondia(1, x, good.K)
	oScore := Corcondia(1, x, over.K)
	if oScore >= gScore {
		t.Errorf("overfactored corcondia %v should be below exact-rank %v", oScore, gScore)
	}
}

func TestCorcondiaHandlesNegativeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := RandomKTensor(rng, []int{6, 5, 4}, 2)
	k.Lambda[0] = -2.5
	x := k.Full()
	score := Corcondia(1, x, k)
	if score < 99.9 {
		t.Errorf("corcondia with negative weight = %v, want ≈ 100", score)
	}
}

func TestCorcondiaOrderMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := RandomKTensor(rng, []int{4, 4}, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Corcondia(1, tensor.New(4, 4, 4), k)
}

func TestNVecsEigenvectorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Random(rng, 7, 6, 5)
	for n := 0; n < 3; n++ {
		v := NVecs(2, x, n, 3, rng)
		if v.R != x.Dim(n) || v.C != 3 {
			t.Fatalf("nvecs dims %dx%d", v.R, v.C)
		}
		// Columns are orthonormal eigenvectors of X_(n)X_(n)ᵀ.
		g := mat.NewDense(x.Dim(n), x.Dim(n))
		xn := x.Unfold(1, n)
		blas.Gemm(1, 1, xn, xn.T(), 0, g)
		for c := 0; c < 3; c++ {
			col := v.Col(c)
			if d := math.Abs(blas.Nrm2(col) - 1); d > 1e-10 {
				t.Errorf("mode %d col %d not unit norm", n, c)
			}
			// G·v = λ·v for some λ: check collinearity of G·v with v.
			gv := make([]float64, v.R)
			blas.Gemv(1, 1, g, col, 0, mat.FromSlice(gv))
			lam := blas.Dot(mat.FromSlice(gv), col)
			for i := 0; i < v.R; i++ {
				if diff := math.Abs(gv[i] - lam*col.At(i)); diff > 1e-8*(1+math.Abs(lam)) {
					t.Errorf("mode %d col %d not an eigenvector (residual %g)", n, c, diff)
				}
			}
		}
	}
}

func TestNVecsEigenvaluesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Random(rng, 6, 5, 4)
	v := NVecs(1, x, 0, 3, rng)
	g := mat.NewDense(6, 6)
	xn := x.Unfold(1, 0)
	blas.Gemm(1, 1, xn, xn.T(), 0, g)
	prev := math.Inf(1)
	for c := 0; c < 3; c++ {
		col := v.Col(c)
		gv := make([]float64, 6)
		blas.Gemv(1, 1, g, col, 0, mat.FromSlice(gv))
		lam := blas.Dot(mat.FromSlice(gv), col)
		if lam > prev+1e-9 {
			t.Errorf("eigenvalues not descending: %v after %v", lam, prev)
		}
		prev = lam
	}
}

func TestNVecsOvercompleteFillsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.Random(rng, 3, 8, 8)
	v := NVecs(1, x, 0, 5, rng) // c=5 > I_0=3
	if v.R != 3 || v.C != 5 {
		t.Fatalf("dims %dx%d", v.R, v.C)
	}
	// Extra columns must be populated (nonzero).
	for c := 3; c < 5; c++ {
		if blas.Nrm2(v.Col(c)) == 0 {
			t.Errorf("overcomplete column %d is zero", c)
		}
	}
}

func TestALSWithNVecsInit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, _ := plantedTensor(rng, []int{9, 8, 7}, 2)
	init := NVecsInit(2, x, 2, 1)
	res, err := ALS(x, Config{Rank: 2, MaxIters: 100, Tol: 1e-12, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Errorf("nvecs-initialized fit = %v", res.Fit)
	}
	// On noiseless exact-rank data, nvecs should converge at least as fast
	// as a random start in sweeps (usually much faster).
	rnd, err := ALS(x, Config{Rank: 2, MaxIters: 100, Tol: 1e-12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > rnd.Iters*3 {
		t.Errorf("nvecs took %d sweeps vs random %d", res.Iters, rnd.Iters)
	}
}
