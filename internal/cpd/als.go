package cpd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Config controls a CP-ALS run.
type Config struct {
	// Rank is the number of components C (required, ≥ 1).
	Rank int
	// MaxIters bounds the number of ALS sweeps; default 50.
	MaxIters int
	// Tol stops the iteration when the fit improves by less than this
	// between sweeps; default 1e-4 (the Tensor Toolbox default). Set
	// negative to always run MaxIters (benchmarking).
	Tol float64
	// Threads is the worker count for all kernels; 0 = GOMAXPROCS.
	Threads int
	// Method selects the MTTKRP algorithm; the zero value (MethodAuto) is
	// the paper's hybrid: 1-step for external modes, 2-step for internal.
	Method core.Method
	// BlasOnlyParallel restricts reorder-baseline parallelism to BLAS
	// (Tensor Toolbox fidelity; see core.Options).
	BlasOnlyParallel bool
	// Seed drives the random initial guess; runs are reproducible per
	// seed.
	Seed int64
	// Init optionally supplies the initial factor matrices instead of a
	// random draw (it is cloned, not modified).
	Init *KTensor
	// Breakdown, when non-nil, accumulates MTTKRP phase timings across
	// all iterations (Figure 8 instrumentation).
	Breakdown *core.Breakdown
	// MultiSweep enables the cross-mode recomputation-avoidance scheme of
	// Phan et al. (core.SweepAll) — the paper's "natural next step"
	// (Section 6): each ALS sweep costs two passes over the tensor
	// instead of N, with identical results. When set, Method is ignored.
	MultiSweep bool
	// Pool, when non-nil, is the execution context all kernels of the run
	// execute on: a *parallel.Pool (persistent worker team) or a
	// *parallel.Lease (a scheduler-granted slice of a shared team, the
	// serving path); nil uses the process-wide default pool. A full ALS
	// run reuses this one context and its workspaces for every MTTKRP, so
	// sweeps allocate no kernel scratch in steady state. Concurrent
	// decompositions should use one pool or lease each.
	Pool parallel.Executor
	// PhaseNotify, when non-nil, is invoked after every completed ALS (or
	// NNALS) sweep, once any pending worker-budget change on Pool has been
	// applied (parallel.Reconcile runs first). A serving scheduler that
	// resizes a running request's lease relies on these sweep boundaries
	// as the safe points where the change lands; tests and
	// instrumentation can observe the per-sweep granted width here. It
	// runs on the decomposition goroutine and must not dispatch on Pool.
	PhaseNotify func()
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// Result reports a CP-ALS run.
type Result struct {
	// K is the fitted Kruskal tensor with unit-normalized factor columns.
	K *KTensor
	// Iters is the number of completed ALS sweeps.
	Iters int
	// Fit is 1 − ‖X − Y‖/‖X‖ after the final sweep (1 is exact).
	Fit float64
	// FitHistory holds the fit after each sweep.
	FitHistory []float64
	// IterTimes holds the wall time of each sweep; the Figure 7 benchmark
	// reports their mean.
	IterTimes []time.Duration
}

// MeanIterTime returns the average sweep time.
func (r *Result) MeanIterTime() time.Duration {
	if len(r.IterTimes) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range r.IterTimes {
		s += d
	}
	return s / time.Duration(len(r.IterTimes))
}

// ErrBadRank reports an invalid rank request.
var ErrBadRank = errors.New("cpd: rank must be ≥ 1")

// ALS computes a rank-C CP decomposition of x by alternating least
// squares. Each sweep updates every factor in mode order via
//
//	U_n ← MTTKRP(X, U, n) · (⊛_{k≠n} U_kᵀU_k)†
//
// followed by column normalization, exactly the update of Section 2.2.
// The fit is computed per sweep from cached quantities (the last mode's
// MTTKRP), adding no extra passes over the tensor.
func ALS(x *tensor.Dense, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rank < 1 {
		return nil, ErrBadRank
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("cpd: tensor order %d < 2", x.Order())
	}
	n := x.Order()
	c := cfg.Rank

	// Initial guess.
	var k *KTensor
	if cfg.Init != nil {
		if cfg.Init.Rank() != c || cfg.Init.Order() != n {
			return nil, fmt.Errorf("cpd: init has rank %d order %d, want %d and %d",
				cfg.Init.Rank(), cfg.Init.Order(), c, n)
		}
		k = cfg.Init.Clone()
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		k = RandomKTensor(rng, x.Dims(), c)
	}

	opts := core.Options{
		Threads:          cfg.Threads,
		Breakdown:        cfg.Breakdown,
		BlasOnlyParallel: cfg.BlasOnlyParallel,
		Pool:             cfg.Pool,
		// Every per-mode MTTKRP entry (and SweepAll mode derivation) is a
		// phase boundary: apply any budget change the admission policy
		// issued while the previous region was in flight.
		PhaseNotify: func() { parallel.Reconcile(cfg.Pool) },
	}
	normX := x.Norm(cfg.Threads)
	normX2 := normX * normX

	// Per-mode MTTKRP result buffers, reused across sweeps so the hot loop
	// runs on one pool and one workspace set with no steady-state
	// allocation inside the kernels. The MultiSweep path derives its
	// results inside SweepAll and never uses these.
	var dsts []mat.View
	if !cfg.MultiSweep {
		dsts = make([]mat.View, n)
		for i := 0; i < n; i++ {
			dsts[i] = mat.NewDense(x.Dim(i), c)
		}
	}

	// Cache Gram matrices of every factor.
	grams := make([]mat.View, n)
	for i := 0; i < n; i++ {
		grams[i] = gramOn(cfg.Pool, cfg.Threads, k.Factors[i])
	}

	res := &Result{K: k}
	fitOld := 0.0
	mLast := mat.NewDense(x.Dim(n-1), c) // raw MTTKRP of the last mode
	for iter := 0; iter < cfg.MaxIters; iter++ {
		start := time.Now()
		updateMode := func(mode int, m mat.View) {
			if mode == n-1 {
				mLast.CopyFrom(m) // keep for the fit before the solve clobbers it
			}
			h := hadamardOfGramsExcept(grams, mode, c)
			u := la.PinvSolveGram(h, m)
			normalizeColumns(u, k.Lambda, iter == 0)
			k.Factors[mode] = u
			grams[mode] = gramOn(cfg.Pool, cfg.Threads, u)
		}
		if cfg.MultiSweep {
			core.SweepAll(x, k.Factors, opts, updateMode)
		} else {
			for mode := 0; mode < n; mode++ {
				updateMode(mode, core.ComputeInto(dsts[mode], cfg.Method, x, k.Factors, mode, opts))
			}
		}
		res.IterTimes = append(res.IterTimes, time.Since(start))
		res.Iters = iter + 1

		// Sweep boundary: the lease-rebalancing safe point. Apply any
		// pending Resize from the admission policy, then let observers see
		// the reconciled width.
		parallel.Reconcile(cfg.Pool)
		if cfg.PhaseNotify != nil {
			cfg.PhaseNotify()
		}

		fit := computeFit(normX, normX2, k, grams, mLast)
		res.FitHistory = append(res.FitHistory, fit)
		res.Fit = fit
		if cfg.Tol > 0 && iter > 0 && math.Abs(fit-fitOld) < cfg.Tol {
			break
		}
		fitOld = fit
	}
	return res, nil
}

// hadamardOfGramsExcept returns H = ⊛_{k≠mode} G_k (C×C).
func hadamardOfGramsExcept(grams []mat.View, mode, c int) mat.View {
	h := onesMatrix(c)
	for i, g := range grams {
		if i != mode {
			hadamardInPlace(h, g)
		}
	}
	return h
}

// normalizeColumns rescales the columns of u into lambda: 2-norms on the
// first sweep, max(|·|, 1) afterwards — the Tensor Toolbox convention,
// which avoids driving factor entries to zero on late sweeps.
func normalizeColumns(u mat.View, lambda []float64, firstIter bool) {
	for c := 0; c < u.C; c++ {
		col := u.Col(c)
		var s float64
		if firstIter {
			s = blas.Nrm2(col)
		} else {
			s = math.Abs(col.At(blas.IAmax(col)))
			if s < 1 {
				s = 1
			}
		}
		lambda[c] = s
		if s != 0 {
			blas.Scal(1/s, col)
		}
	}
}

// computeFit evaluates 1 − ‖X−Y‖/‖X‖ from cached quantities:
// ‖Y‖² = λᵀ(⊛ G_k)λ and ⟨X, Y⟩ = Σ_c λ_c Σ_i M(i,c)·U_{N-1}(i,c), where M
// is the raw MTTKRP of the last updated mode.
func computeFit(normX, normX2 float64, k *KTensor, grams []mat.View, mLast mat.View) float64 {
	c := k.Rank()
	h := onesMatrix(c)
	for _, g := range grams {
		hadamardInPlace(h, g)
	}
	normY2 := 0.0
	for i := 0; i < c; i++ {
		for j := 0; j < c; j++ {
			normY2 += k.Lambda[i] * h.At(i, j) * k.Lambda[j]
		}
	}
	last := k.Factors[len(k.Factors)-1]
	iprod := 0.0
	for cc := 0; cc < c; cc++ {
		iprod += k.Lambda[cc] * blas.Dot(mLast.Col(cc), last.Col(cc))
	}
	res2 := normX2 + normY2 - 2*iprod
	if res2 < 0 {
		res2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(res2)/normX
}

// ReferenceALS runs CP-ALS the way the Matlab Tensor Toolbox comparator of
// Figure 7 does: the Bader–Kolda explicit-reorder MTTKRP with parallelism
// only inside the BLAS call.
func ReferenceALS(x *tensor.Dense, cfg Config) (*Result, error) {
	cfg.Method = core.MethodReorder
	cfg.BlasOnlyParallel = true
	return ALS(x, cfg)
}
