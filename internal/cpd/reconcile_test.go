package cpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestALSReconcileAtSweepBoundaries pins the phase-boundary lease
// rebalancing contract end to end: a CP-ALS run executing on a scheduler
// lease shrinks when the admission policy retargets it mid-run and
// re-grows when the pressure drains — with both changes landing exactly at
// sweep boundaries (ALS calls parallel.Reconcile after every sweep, then
// PhaseNotify observes the applied width).
func TestALSReconcileAtSweepBoundaries(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	l := pool.Lease(8)
	defer l.Close()

	x := tensor.Random(rand.New(rand.NewSource(3)), 14, 12, 10)
	var widths []int
	cfg := Config{
		Rank:     3,
		MaxIters: 6,
		Tol:      -1, // run all sweeps
		Seed:     7,
		Pool:     l,
		PhaseNotify: func() {
			widths = append(widths, l.Width())
			// Play the admission policy: after sweep 2 another request
			// arrives and the scheduler shrinks this lease's budget; after
			// sweep 4 the peer finishes and the budget is restored. The
			// retarget itself happens "between" sweeps here; mid-region
			// deferral of a concurrent Resize is pinned in package
			// parallel (TestLeaseReconcileChurn).
			switch len(widths) {
			case 2:
				l.Resize(2)
			case 4:
				l.Resize(8)
			}
		},
	}
	res, err := ALS(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 6 {
		t.Fatalf("ran %d sweeps, want 6", res.Iters)
	}
	want := []int{8, 8, 2, 2, 8, 8}
	if len(widths) != len(want) {
		t.Fatalf("observed %d sweep boundaries (%v), want %d", len(widths), widths, len(want))
	}
	for i, w := range want {
		if widths[i] != w {
			t.Fatalf("sweep %d ran at width %d, want %d (full trace %v)", i+1, widths[i], w, widths)
		}
	}

	// The run's result must be identical to an unperturbed run: lease
	// resizing changes scheduling, never arithmetic.
	ref, err := ALS(x, Config{Rank: 3, MaxIters: 6, Tol: -1, Seed: 7, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Fit - ref.Fit; d > 1e-12 || d < -1e-12 {
		t.Fatalf("fit %v under resizing vs %v fixed-width (must be deterministic)", res.Fit, ref.Fit)
	}
}

// TestALSRetargetChurnBitIdentical pins the placement contract through a
// full decomposition: a CP-ALS run whose lease starts spilled across two
// placement domains, tops up, and migrates home at a mid-run sweep
// boundary must produce math.Float64bits-identical factors to the same
// run on a flat pool. Placement moves work and pages, never accumulation
// order — the slot-level migration mechanics of the exact same scenario
// are pinned in package parallel (TestPlacementRetargetMigration); this
// test pins the arithmetic. Run under -race it also exercises the
// migration path against concurrent kernel dispatch.
func TestALSRetargetChurnBitIdentical(t *testing.T) {
	topo, err := parallel.ParseTopology("0-3;4-5")
	if err != nil {
		t.Fatal(err)
	}
	// Width-7 placed team: slots {1,2,3,6} in domain 0, {4,5} in domain 1.
	pool := parallel.NewPoolPlaced(7, topo)
	defer pool.Close()

	lA := pool.Lease(2) // takes domain 1's first slot
	lB := pool.Lease(4) // takes three domain-0 slots
	// One free slot per domain left: the CP lease is forced to spill.
	lCP := pool.Lease(3)
	defer lCP.Close()
	if lCP.Width() != 3 {
		t.Fatalf("CP lease width = %d, want 3 (one home + one spilled slot)", lCP.Width())
	}

	x := tensor.Random(rand.New(rand.NewSource(3)), 14, 12, 10)
	cfg := Config{Rank: 3, MaxIters: 6, Tol: -1, Seed: 7, Threads: 3}

	var widths []int
	churn := cfg
	churn.Pool = lCP
	churn.PhaseNotify = func() {
		widths = append(widths, lCP.Width())
		switch len(widths) {
		case 2:
			lB.Close() // domain 0 frees: the next boundary migrates the spilled slot home
		case 4:
			lA.Close() // more churn; the lease is already fully home
		}
	}
	res, err := ALS(x, churn)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range widths {
		if w != 3 {
			t.Fatalf("sweep %d ran at width %d, want constant 3 (migration must not touch the budget; trace %v)", i+1, w, widths)
		}
	}

	flatPool := parallel.NewPool(7)
	defer flatPool.Close()
	lFlat := flatPool.Lease(3)
	defer lFlat.Close()
	flat := cfg
	flat.Pool = lFlat
	ref, err := ALS(x, flat)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(res.Fit) != math.Float64bits(ref.Fit) {
		t.Fatalf("fit bits differ: %v vs %v", res.Fit, ref.Fit)
	}
	for i := range ref.K.Lambda {
		if math.Float64bits(res.K.Lambda[i]) != math.Float64bits(ref.K.Lambda[i]) {
			t.Fatalf("lambda[%d] bits differ: %v vs %v", i, res.K.Lambda[i], ref.K.Lambda[i])
		}
	}
	for m, want := range ref.K.Factors {
		got := res.K.Factors[m]
		for i := 0; i < want.R; i++ {
			for j := 0; j < want.C; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("factor %d (%d,%d) bits differ: %v vs %v", m, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}
