package cpd

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestALSReconcileAtSweepBoundaries pins the phase-boundary lease
// rebalancing contract end to end: a CP-ALS run executing on a scheduler
// lease shrinks when the admission policy retargets it mid-run and
// re-grows when the pressure drains — with both changes landing exactly at
// sweep boundaries (ALS calls parallel.Reconcile after every sweep, then
// PhaseNotify observes the applied width).
func TestALSReconcileAtSweepBoundaries(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	l := pool.Lease(8)
	defer l.Close()

	x := tensor.Random(rand.New(rand.NewSource(3)), 14, 12, 10)
	var widths []int
	cfg := Config{
		Rank:     3,
		MaxIters: 6,
		Tol:      -1, // run all sweeps
		Seed:     7,
		Pool:     l,
		PhaseNotify: func() {
			widths = append(widths, l.Width())
			// Play the admission policy: after sweep 2 another request
			// arrives and the scheduler shrinks this lease's budget; after
			// sweep 4 the peer finishes and the budget is restored. The
			// retarget itself happens "between" sweeps here; mid-region
			// deferral of a concurrent Resize is pinned in package
			// parallel (TestLeaseReconcileChurn).
			switch len(widths) {
			case 2:
				l.Resize(2)
			case 4:
				l.Resize(8)
			}
		},
	}
	res, err := ALS(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 6 {
		t.Fatalf("ran %d sweeps, want 6", res.Iters)
	}
	want := []int{8, 8, 2, 2, 8, 8}
	if len(widths) != len(want) {
		t.Fatalf("observed %d sweep boundaries (%v), want %d", len(widths), widths, len(want))
	}
	for i, w := range want {
		if widths[i] != w {
			t.Fatalf("sweep %d ran at width %d, want %d (full trace %v)", i+1, widths[i], w, widths)
		}
	}

	// The run's result must be identical to an unperturbed run: lease
	// resizing changes scheduling, never arithmetic.
	ref, err := ALS(x, Config{Rank: 3, MaxIters: 6, Tol: -1, Seed: 7, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Fit - ref.Fit; d > 1e-12 || d < -1e-12 {
		t.Fatalf("fit %v under resizing vs %v fixed-width (must be deterministic)", res.Fit, ref.Fit)
	}
}
