package cpd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NNALS computes a nonnegative CP decomposition by hierarchical
// alternating least squares (HALS): per sweep and per mode it computes
// one MTTKRP with the same kernels as plain ALS, then updates each factor
// column in closed form with a projection onto the nonnegative orthant,
//
//	U(:, c) ← max(ε, U(:, c) + (M(:, c) − U·H(:, c)) / H(c, c)),
//
// where M is the MTTKRP and H the Hadamard product of the other Grams.
// This covers the nonnegative setting of Liavas et al. (the paper's
// related work [16]) on shared memory: the cost profile is identical to
// CP-ALS because MTTKRP still dominates.
//
// The returned KTensor has nonnegative factors; weights stay 1 (scale is
// kept in the factors so nonnegativity constraints stay meaningful).
func NNALS(x *tensor.Dense, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rank < 1 {
		return nil, ErrBadRank
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("cpd: tensor order %d < 2", x.Order())
	}
	for _, v := range x.Data() {
		if v < 0 {
			return nil, fmt.Errorf("cpd: NNALS requires a nonnegative tensor")
		}
	}
	n := x.Order()
	c := cfg.Rank

	var k *KTensor
	if cfg.Init != nil {
		if cfg.Init.Rank() != c || cfg.Init.Order() != n {
			return nil, fmt.Errorf("cpd: init has rank %d order %d, want %d and %d",
				cfg.Init.Rank(), cfg.Init.Order(), c, n)
		}
		k = cfg.Init.Clone()
		for _, u := range k.Factors {
			projectNonnegative(u)
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		k = RandomKTensor(rng, x.Dims(), c) // uniform [0,1): already nonnegative
	}

	opts := core.Options{
		Threads:     cfg.Threads,
		Breakdown:   cfg.Breakdown,
		Pool:        cfg.Pool,
		PhaseNotify: func() { parallel.Reconcile(cfg.Pool) },
	}
	normX := x.Norm(cfg.Threads)
	dsts := make([]mat.View, n)
	for i := 0; i < n; i++ {
		dsts[i] = mat.NewDense(x.Dim(i), c)
	}
	grams := make([]mat.View, n)
	for i := 0; i < n; i++ {
		grams[i] = gramOn(cfg.Pool, cfg.Threads, k.Factors[i])
	}

	res := &Result{K: k}
	fitOld := 0.0
	mLast := mat.NewDense(x.Dim(n-1), c)
	const eps = 1e-16
	for iter := 0; iter < cfg.MaxIters; iter++ {
		start := time.Now()
		for mode := 0; mode < n; mode++ {
			m := core.ComputeInto(dsts[mode], cfg.Method, x, k.Factors, mode, opts)
			if mode == n-1 {
				mLast.CopyFrom(m)
			}
			h := hadamardOfGramsExcept(grams, mode, c)
			u := k.Factors[mode]
			// HALS column sweeps: a few inner passes help convergence
			// without extra MTTKRPs.
			for pass := 0; pass < 2; pass++ {
				for col := 0; col < c; col++ {
					hcc := h.At(col, col)
					if hcc < eps {
						hcc = eps
					}
					// delta = (M(:,col) − U·H(:,col)) / hcc, then clamp.
					for i := 0; i < u.R; i++ {
						s := m.At(i, col)
						for p := 0; p < c; p++ {
							s -= u.At(i, p) * h.At(p, col)
						}
						v := u.At(i, col) + s/hcc
						if v < eps {
							v = eps
						}
						u.Set(i, col, v)
					}
				}
			}
			grams[mode] = gramOn(cfg.Pool, cfg.Threads, u)
		}
		res.IterTimes = append(res.IterTimes, time.Since(start))
		res.Iters = iter + 1

		// Sweep boundary: apply pending lease-budget changes (see ALS).
		parallel.Reconcile(cfg.Pool)
		if cfg.PhaseNotify != nil {
			cfg.PhaseNotify()
		}

		fit := computeFit(normX, normX*normX, k, grams, mLast)
		res.FitHistory = append(res.FitHistory, fit)
		res.Fit = fit
		if cfg.Tol > 0 && iter > 0 && math.Abs(fit-fitOld) < cfg.Tol {
			break
		}
		fitOld = fit
	}
	return res, nil
}

func projectNonnegative(u mat.View) {
	for i := 0; i < u.R; i++ {
		for j := 0; j < u.C; j++ {
			if u.At(i, j) < 0 {
				u.Set(i, j, 0)
			}
		}
	}
}
