package cpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestMultiSweepMatchesRegularALS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{8, 9, 7}, {6, 5, 4, 5}, {12, 11}} {
		x := tensor.Random(rng, dims...)
		reg, err := ALS(x, Config{Rank: 3, MaxIters: 5, Tol: -1, Seed: 4, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := ALS(x, Config{Rank: 3, MaxIters: 5, Tol: -1, Seed: 4, Threads: 2, MultiSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range reg.FitHistory {
			if math.Abs(reg.FitHistory[i]-ms.FitHistory[i]) > 1e-6 {
				t.Errorf("dims=%v sweep %d: fit %v (regular) vs %v (multisweep)",
					dims, i, reg.FitHistory[i], ms.FitHistory[i])
			}
		}
	}
}

func TestMultiSweepRecoversExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := plantedTensor(rng, []int{10, 9, 8, 7}, 2)
	res, err := ALS(x, Config{Rank: 2, MaxIters: 200, Tol: 1e-12, Seed: 6, MultiSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.9999 {
		t.Errorf("multisweep fit = %v after %d iters", res.Fit, res.Iters)
	}
}

func TestMultiSweepBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Random(rng, 8, 8, 8)
	res, err := ALS(x, Config{Rank: 3, MaxIters: 3, Tol: -1, MultiSweep: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 3 {
		t.Errorf("iter times = %d", len(res.IterTimes))
	}
}
