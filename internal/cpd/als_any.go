package cpd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ALSAny computes a CP decomposition of a tensor of either layout,
// dispatching on it: dense tensors run the paper's ALS exactly as ALS
// does; sparse tensors run the same sweep structure over the sparse MTTKRP
// kernel. It is the shape-generic entry point repro.CP calls.
func ALSAny(x tensor.Interface, cfg Config) (*Result, error) {
	switch xt := x.(type) {
	case *tensor.Dense:
		return ALS(xt, cfg)
	case *tensor.Sparse:
		return alsSparse(xt, cfg)
	}
	return nil, fmt.Errorf("cpd: unsupported tensor layout %v", x.Layout())
}

// alsSparse is the ALS sweep loop over the sparse MTTKRP kernel. The
// update, normalization and fit bookkeeping are shared with the dense
// path — only the per-mode MTTKRP differs. MultiSweep is a dense-layout
// recomputation-avoidance scheme (partial KRPs over tensor blocks) and is
// ignored here; Method is likewise dense-only (the sparse kernel is the
// one algorithm) except MethodNaive, which Run resolves to the densified
// reference.
func alsSparse(x *tensor.Sparse, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rank < 1 {
		return nil, ErrBadRank
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("cpd: tensor order %d < 2", x.Order())
	}
	n := x.Order()
	c := cfg.Rank

	var k *KTensor
	if cfg.Init != nil {
		if cfg.Init.Rank() != c || cfg.Init.Order() != n {
			return nil, fmt.Errorf("cpd: init has rank %d order %d, want %d and %d",
				cfg.Init.Rank(), cfg.Init.Order(), c, n)
		}
		k = cfg.Init.Clone()
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		k = RandomKTensor(rng, x.Dims(), c)
	}

	opts := core.Options{
		Threads:     cfg.Threads,
		Breakdown:   cfg.Breakdown,
		Pool:        cfg.Pool,
		PhaseNotify: func() { parallel.Reconcile(cfg.Pool) },
	}
	normX := x.Norm(cfg.Threads)
	normX2 := normX * normX

	dsts := make([]mat.View, n)
	for i := 0; i < n; i++ {
		dsts[i] = mat.NewDense(x.Dim(i), c)
	}
	grams := make([]mat.View, n)
	for i := 0; i < n; i++ {
		grams[i] = gramOn(cfg.Pool, cfg.Threads, k.Factors[i])
	}

	res := &Result{K: k}
	fitOld := 0.0
	mLast := mat.NewDense(x.Dim(n-1), c)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		start := time.Now()
		for mode := 0; mode < n; mode++ {
			m := core.Run(core.Request{
				X: x, Factors: k.Factors, Mode: mode, Method: cfg.Method,
				Dst: dsts[mode], Opts: opts,
			})
			if mode == n-1 {
				mLast.CopyFrom(m) // keep for the fit before the solve clobbers it
			}
			h := hadamardOfGramsExcept(grams, mode, c)
			u := la.PinvSolveGram(h, m)
			normalizeColumns(u, k.Lambda, iter == 0)
			k.Factors[mode] = u
			grams[mode] = gramOn(cfg.Pool, cfg.Threads, u)
		}
		res.IterTimes = append(res.IterTimes, time.Since(start))
		res.Iters = iter + 1

		parallel.Reconcile(cfg.Pool)
		if cfg.PhaseNotify != nil {
			cfg.PhaseNotify()
		}

		fit := computeFit(normX, normX2, k, grams, mLast)
		res.FitHistory = append(res.FitHistory, fit)
		res.Fit = fit
		if cfg.Tol > 0 && iter > 0 && math.Abs(fit-fitOld) < cfg.Tol {
			break
		}
		fitOld = fit
	}
	return res, nil
}
