package cpd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestKTensorBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := RandomKTensor(rng, []int{3, 4, 5}, 2)
	if k.Rank() != 2 || k.Order() != 3 {
		t.Fatalf("rank %d order %d", k.Rank(), k.Order())
	}
	dims := k.Dims()
	if dims[0] != 3 || dims[1] != 4 || dims[2] != 5 {
		t.Fatalf("dims %v", dims)
	}
	for _, l := range k.Lambda {
		if l != 1 {
			t.Error("random ktensor should have unit weights")
		}
	}
}

func TestNewKTensorValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for rank mismatch")
		}
	}()
	NewKTensor([]float64{1, 2}, []mat.View{mat.NewDense(3, 3)})
}

func TestFullRankOne(t *testing.T) {
	// Y = 2 · a ∘ b with a = (1,2), b = (3,4,5).
	a := mat.FromRowMajor([]float64{1, 2}, 2, 1)
	b := mat.FromRowMajor([]float64{3, 4, 5}, 3, 1)
	k := NewKTensor([]float64{2}, []mat.View{a, b})
	y := k.Full()
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := 2 * a.At(i, 0) * b.At(j, 0)
			if got := y.At(i, j); got != want {
				t.Errorf("Y(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestNormSquaredMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][]int{{3, 4}, {2, 3, 4}, {3, 2, 2, 3}} {
		k := RandomKTensor(rng, dims, 3)
		for i := range k.Lambda {
			k.Lambda[i] = rng.NormFloat64()
		}
		want := k.Full().NormSquared(1)
		got := k.NormSquared()
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("dims=%v: NormSquared = %v, want %v", dims, got, want)
		}
		if math.Abs(k.Norm()-math.Sqrt(want)) > 1e-9 {
			t.Errorf("dims=%v: Norm mismatch", dims)
		}
	}
}

func TestNormalizePreservesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := RandomKTensor(rng, []int{3, 4, 2}, 3)
	for i := range k.Lambda {
		k.Lambda[i] = rng.Float64() + 0.5
	}
	before := k.Full()
	k.Normalize()
	after := k.Full()
	if !tensor.ApproxEqual(before, after, 1e-12) {
		t.Error("Normalize changed the represented tensor")
	}
	for _, u := range k.Factors {
		for c := 0; c < k.Rank(); c++ {
			if n := blas.Nrm2(u.Col(c)); math.Abs(n-1) > 1e-12 {
				t.Errorf("column %d norm %v after normalize", c, n)
			}
		}
	}
}

func TestNormalizeZeroColumn(t *testing.T) {
	f := []mat.View{mat.NewDense(2, 2), mat.NewDense(3, 2)}
	f[0].Set(0, 0, 1)
	f[1].Set(0, 0, 1)
	// Column 1 is all zeros in both factors.
	k := NewKTensor([]float64{5, 5}, f)
	k.Normalize()
	if k.Lambda[1] != 5 {
		t.Errorf("zero column weight changed to %v", k.Lambda[1])
	}
}

func TestArrangeSortsByWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := RandomKTensor(rng, []int{4, 3}, 3)
	k.Lambda = []float64{1, -7, 3}
	before := k.Full()
	k.Arrange()
	want := []float64{-7, 3, 1}
	for i, l := range k.Lambda {
		if l != want[i] {
			t.Errorf("lambda[%d] = %v, want %v", i, l, want[i])
		}
	}
	if !tensor.ApproxEqual(before, k.Full(), 1e-12) {
		t.Error("Arrange changed the represented tensor")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := RandomKTensor(rng, []int{3, 3}, 2)
	c := k.Clone()
	c.Lambda[0] = 99
	c.Factors[0].Set(0, 0, 99)
	if k.Lambda[0] == 99 || k.Factors[0].At(0, 0) == 99 {
		t.Error("clone aliases original")
	}
}

// Property: Full is linear in lambda.
func TestFullLinearInLambdaQuick(t *testing.T) {
	f := func(seed int64, scale8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := RandomKTensor(rng, []int{3, 2, 2}, 2)
		alpha := float64(scale8%10) + 1
		a := k.Full()
		for i := range k.Lambda {
			k.Lambda[i] *= alpha
		}
		b := k.Full()
		a.AddScaled(-1/alpha, b)
		return a.Norm(1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
