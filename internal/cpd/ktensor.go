// Package cpd implements the CP (CANDECOMP/PARAFAC) decomposition via
// alternating least squares on top of the MTTKRP kernels of package core,
// mirroring the structure of Section 2.2 of the paper: per mode, an MTTKRP,
// a Hadamard product of Gram matrices, and a (pseudo-inverse) linear solve.
package cpd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// KTensor is a rank-C Kruskal tensor Y = ⟦λ; U⁰, …, U^{N-1}⟧: a sum of C
// rank-1 terms with component weights λ and unit-scaled factor matrices.
type KTensor struct {
	Lambda  []float64
	Factors []mat.View
}

// NewKTensor wraps weights and factors; factor k must be I_k × C.
func NewKTensor(lambda []float64, factors []mat.View) *KTensor {
	c := len(lambda)
	for k, u := range factors {
		if u.C != c {
			panic(fmt.Sprintf("cpd: factor %d has %d columns, want rank %d", k, u.C, c))
		}
	}
	return &KTensor{Lambda: lambda, Factors: factors}
}

// RandomKTensor draws factors with uniform [0,1) entries and unit weights.
func RandomKTensor(rng *rand.Rand, dims []int, c int) *KTensor {
	f := make([]mat.View, len(dims))
	for k, d := range dims {
		f[k] = mat.RandomDense(d, c, rng)
	}
	lambda := make([]float64, c)
	for i := range lambda {
		lambda[i] = 1
	}
	return &KTensor{Lambda: lambda, Factors: f}
}

// Rank returns the number of components C.
func (k *KTensor) Rank() int { return len(k.Lambda) }

// Order returns the number of modes N.
func (k *KTensor) Order() int { return len(k.Factors) }

// Dims returns the tensor dimensions implied by the factors.
func (k *KTensor) Dims() []int {
	dims := make([]int, len(k.Factors))
	for i, u := range k.Factors {
		dims[i] = u.R
	}
	return dims
}

// Full reconstructs the dense tensor Y(i₀,…,i_{N-1}) = Σ_c λ_c ∏ U^k(i_k,c).
// Intended for small tensors (tests, examples); cost is O(I·C·N).
func (k *KTensor) Full() *tensor.Dense {
	dims := k.Dims()
	y := tensor.New(dims...)
	idx := make([]int, len(dims))
	data := y.Data()
	for l := range data {
		y.MultiIndex(l, idx)
		s := 0.0
		for c := 0; c < k.Rank(); c++ {
			p := k.Lambda[c]
			for m, u := range k.Factors {
				p *= u.At(idx[m], c)
			}
			s += p
		}
		data[l] = s
	}
	return y
}

// NormSquared returns ‖Y‖² = λᵀ (⊛_k U_kᵀU_k) λ without forming Y.
func (k *KTensor) NormSquared() float64 {
	c := k.Rank()
	h := onesMatrix(c)
	for _, u := range k.Factors {
		g := gram(1, u)
		hadamardInPlace(h, g)
	}
	s := 0.0
	for i := 0; i < c; i++ {
		for j := 0; j < c; j++ {
			s += k.Lambda[i] * h.At(i, j) * k.Lambda[j]
		}
	}
	return s
}

// Norm returns ‖Y‖ = sqrt(max(NormSquared, 0)).
func (k *KTensor) Norm() float64 {
	return math.Sqrt(math.Max(k.NormSquared(), 0))
}

// Normalize rescales every factor column to unit 2-norm, absorbing the
// scales into Lambda. Zero columns keep weight 0.
func (k *KTensor) Normalize() {
	for c := 0; c < k.Rank(); c++ {
		for _, u := range k.Factors {
			nrm := blas.Nrm2(u.Col(c))
			if nrm == 0 {
				continue
			}
			blas.Scal(1/nrm, u.Col(c))
			k.Lambda[c] *= nrm
		}
	}
}

// Arrange sorts components by decreasing |λ| (in-place, stable).
func (k *KTensor) Arrange() {
	c := k.Rank()
	order := make([]int, c)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(k.Lambda[order[a]]) > math.Abs(k.Lambda[order[b]])
	})
	newLambda := make([]float64, c)
	for i, o := range order {
		newLambda[i] = k.Lambda[o]
	}
	for _, u := range k.Factors {
		fresh := mat.NewDense(u.R, c)
		for i, o := range order {
			blas.CopyVec(u.Col(o), fresh.Col(i))
		}
		u.CopyFrom(fresh)
	}
	copy(k.Lambda, newLambda)
}

// Clone deep-copies the KTensor.
func (k *KTensor) Clone() *KTensor {
	f := make([]mat.View, len(k.Factors))
	for i, u := range k.Factors {
		f[i] = u.Clone()
	}
	return &KTensor{Lambda: append([]float64(nil), k.Lambda...), Factors: f}
}

// gram computes G = UᵀU (C×C) with t workers.
func gram(t int, u mat.View) mat.View {
	return gramOn(nil, t, u)
}

// gramOn is gram on an explicit pool (nil = default), so per-request ALS
// runs keep their Gram updates on the request's own pool.
func gramOn(p parallel.Executor, t int, u mat.View) mat.View {
	g := mat.NewDense(u.C, u.C)
	blas.GemmOn(p, t, 1, u.T(), u, 0, g)
	return g
}

// hadamardInPlace computes h ∗= g elementwise.
func hadamardInPlace(h, g mat.View) {
	for i := 0; i < h.R; i++ {
		blas.Had(h.ContiguousRow(i), g.ContiguousRow(i), h.ContiguousRow(i))
	}
}

func onesMatrix(c int) mat.View {
	h := mat.NewDense(c, c)
	h.Fill(1)
	return h
}
