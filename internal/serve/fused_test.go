package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
)

func bitsEqual(t *testing.T, got, want mat.View, label string) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: got %dx%d, want %dx%d", label, got.R, got.C, want.R, want.C)
	}
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("%s: bit mismatch at (%d,%d): %v vs %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// fusedBatchRound blocks the scheduler's only slot, piles k same-shape
// submissions into one open batch, then releases the blocker and waits
// for every ticket. It returns the per-request result matrices.
func fusedBatchRound(t *testing.T, s *Server, reqs []MTTKRPRequest) []mat.View {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	tickets := make([]*Ticket, len(reqs))
	for i, r := range reqs {
		tickets[i] = s.SubmitMTTKRP(r)
	}
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	out := make([]mat.View, len(tickets))
	for i, tk := range tickets {
		m, err := tk.MTTKRP()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = m
	}
	// Tickets resolve inside batch execution, before the executor folds
	// its fusion counters into stats; drain so assertions see them all.
	s.Drain()
	return out
}

// TestFusedBatchSharedKRP is the serving acceptance test for batch-level
// KRP fusion: k coalesced same-factor requests execute as one fused batch
// (Stats.Fused counts it, FusedSavedFlops prices it) with every member's
// output bit-identical to the plain single-caller computation at the same
// worker count.
func TestFusedBatchSharedKRP(t *testing.T) {
	const width, k = 4, 5
	x, u := problem(21, 6, 14, 11, 9)
	pool := parallel.NewPool(width)
	defer pool.Close()

	for _, method := range []core.Method{core.MethodTwoStep, core.MethodOneStep} {
		s := New(Config{Workers: width, MaxActive: 1})
		want := core.ComputeInto(mat.NewDense(x.Dim(1), 6), method, x, u, 1, core.Options{Threads: width, Pool: pool})
		reqs := make([]MTTKRPRequest, k)
		for i := range reqs {
			reqs[i] = MTTKRPRequest{X: x, Factors: u, Mode: 1, Method: method}
		}
		got := fusedBatchRound(t, s, reqs)
		st := s.Stats()
		s.Close()
		if st.Coalesced != k-1 || st.Batches != 2 {
			t.Fatalf("%v: stats %+v, want %d coalesced in 2 batches", method, st, k-1)
		}
		if st.Fused != 1 {
			t.Fatalf("%v: Fused = %d, want 1 (the KRP computed exactly once for the batch)", method, st.Fused)
		}
		if st.FusedSavedFlops <= 0 {
			t.Fatalf("%v: FusedSavedFlops = %v, want > 0", method, st.FusedSavedFlops)
		}
		for i, m := range got {
			bitsEqual(t, m, want, fmt.Sprintf("%v member %d", method, i))
		}
	}
}

// TestFusedBatchValueEqualFactors pins the network path: requests whose
// factors carry identical values in distinct buffers (every HTTP request
// decodes its own copy) coalesce by value fingerprint and fuse, with
// bit-identical results.
func TestFusedBatchValueEqualFactors(t *testing.T) {
	const width, k = 4, 4
	x, u := problem(22, 5, 12, 10, 8)
	pool := parallel.NewPool(width)
	defer pool.Close()
	want := core.ComputeInto(mat.NewDense(x.Dim(1), 5), core.MethodAuto, x, u, 1, core.Options{Threads: width, Pool: pool})

	s := New(Config{Workers: width, MaxActive: 1})
	defer s.Close()
	reqs := make([]MTTKRPRequest, k)
	for i := range reqs {
		cu := make([]mat.View, len(u))
		for j := range u {
			cu[j] = u[j].Clone() // fresh buffers, identical values
		}
		reqs[i] = MTTKRPRequest{X: x, Factors: cu, Mode: 1}
	}
	got := fusedBatchRound(t, s, reqs)
	st := s.Stats()
	if st.Coalesced != k-1 || st.Fused != 1 {
		t.Fatalf("stats %+v: value-equal factors must coalesce (%d) and fuse (1)", st, k-1)
	}
	for i, m := range got {
		bitsEqual(t, m, want, fmt.Sprintf("member %d", i))
	}
}

// TestFusedBatchDisable pins the baseline knob: with DisableFusion the
// batch still coalesces on the shape key and runs back-to-back, but no
// plan is built and Fused stays 0.
func TestFusedBatchDisable(t *testing.T) {
	const k = 4
	x, u := problem(23, 4, 10, 9, 8)
	s := New(Config{Workers: 2, MaxActive: 1, DisableFusion: true})
	defer s.Close()
	reqs := make([]MTTKRPRequest, k)
	for i := range reqs {
		reqs[i] = MTTKRPRequest{X: x, Factors: u, Mode: 1}
	}
	fusedBatchRound(t, s, reqs)
	st := s.Stats()
	if st.Coalesced != k-1 {
		t.Fatalf("stats %+v: DisableFusion must not disable shape coalescing", st)
	}
	if st.Fused != 0 || st.FusedSavedFlops != 0 {
		t.Fatalf("stats %+v: fusion ran with DisableFusion set", st)
	}
}

// TestFusedBatchMixedFactors pins the hybrid contract: same-shape
// requests with different factor values still coalesce into one batch
// (the PR-2 lease/workspace amortization is factor-independent), the
// plan is seeded from the fingerprint pair, the odd member misses it by
// value and computes its own KRP — every result exact, and the saving
// priced only for the rows the plan actually served.
func TestFusedBatchMixedFactors(t *testing.T) {
	x, u1 := problem(24, 4, 9, 8, 7)
	_, u2 := problem(25, 4, 9, 8, 7) // same shape, different values
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()
	got := fusedBatchRound(t, s, []MTTKRPRequest{
		{X: x, Factors: u1, Mode: 1},
		{X: x, Factors: u2, Mode: 1},
		{X: x, Factors: u1, Mode: 1},
	})
	st := s.Stats()
	// All three share the shape batch; the u1 pair fuses on the plan.
	if st.Coalesced != 2 || st.Batches != 2 {
		t.Fatalf("stats %+v: want 2 coalesced and 2 batches (shape batch + blocker)", st)
	}
	if st.Fused != 1 || st.FusedSavedFlops <= 0 {
		t.Fatalf("stats %+v: the u1 fingerprint pair must fuse with a positive saving", st)
	}
	pool := parallel.NewPool(2)
	defer pool.Close()
	for i, u := range [][]mat.View{u1, u2, u1} {
		want := core.Compute(core.MethodAuto, x, u, 1, core.Options{Threads: 2, Pool: pool})
		matsEqual(t, got[i], want, fmt.Sprintf("request %d", i))
	}
}

// TestFusedAcrossBatches pins the plan-fingerprint LRU: two sequential
// same-shape singleton batches (no intra-batch pair to fuse) fuse across
// the batch boundary — the first records its fingerprint, the second
// matches it and takes the fused path — and a third hits the plan the
// shape's workspace retained from the second without refilling it
// (PlanCacheHits), with every result bit-identical to the unfused kernel.
func TestFusedAcrossBatches(t *testing.T) {
	const width = 2
	x, u := problem(27, 5, 13, 11, 9)
	pool := parallel.NewPool(width)
	defer pool.Close()
	want := core.ComputeInto(mat.NewDense(x.Dim(1), 5), core.MethodAuto, x, u, 1, core.Options{Threads: width, Pool: pool})

	s := New(Config{Workers: width, MaxActive: 1})
	defer s.Close()
	completed := 0
	round := func(i int) mat.View {
		t.Helper()
		// Fresh factor buffers each round: the network path decodes each
		// request into its own pooled slab, so cross-batch matching must
		// work by value, never by pointer identity.
		cu := make([]mat.View, len(u))
		for j := range u {
			cu[j] = u[j].Clone()
		}
		m, err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: cu, Mode: 1}).MTTKRP()
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		// The ticket resolves inside batch execution, before the executor
		// folds counters into stats; wait for the fold so the next round's
		// assertions (and its plan-LRU lookup) see this batch recorded.
		completed++
		for deadline := time.Now().Add(5 * time.Second); s.Stats().Completed < completed; {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: batch never completed", i)
			}
			time.Sleep(time.Millisecond)
		}
		return m
	}

	got1 := round(1)
	st := s.Stats()
	if st.Fused != 0 || st.PlanCacheHits != 0 {
		t.Fatalf("stats %+v after round 1: a lone first batch has nothing to fuse with", st)
	}
	got2 := round(2)
	st = s.Stats()
	if st.Fused != 1 {
		t.Fatalf("stats %+v after round 2: the second batch must fuse against the recorded fingerprint", st)
	}
	if st.PlanCacheHits != 0 {
		t.Fatalf("stats %+v after round 2: the first fused batch fills the plan, it cannot hit it", st)
	}
	got3 := round(3)
	st = s.Stats()
	if st.Fused != 2 || st.PlanCacheHits != 1 {
		t.Fatalf("stats %+v after round 3: the third batch must hit the retained plan without refilling", st)
	}
	if st.FusedSavedFlops <= 0 {
		t.Fatalf("stats %+v: a cache-hit batch serves rows it never paid a fill for", st)
	}
	for i, m := range []mat.View{got1, got2, got3} {
		bitsEqual(t, m, want, fmt.Sprintf("round %d", i+1))
	}

	// A different-valued factor set under the same shape key must not hit
	// the stale plan: it misses by value, computes exactly, and replaces
	// the recorded fingerprint.
	_, u2 := problem(28, 5, 13, 11, 9)
	cu := make([]mat.View, len(u2))
	for j := range u2 {
		cu[j] = u2[j].Clone()
	}
	m, err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: cu, Mode: 1}).MTTKRP()
	if err != nil {
		t.Fatal(err)
	}
	completed++
	for deadline := time.Now().Add(5 * time.Second); s.Stats().Completed < completed; {
		if time.Now().After(deadline) {
			t.Fatal("changed-factor batch never completed")
		}
		time.Sleep(time.Millisecond)
	}
	want2 := core.ComputeInto(mat.NewDense(x.Dim(1), 5), core.MethodAuto, x, u2, 1, core.Options{Threads: width, Pool: pool})
	bitsEqual(t, m, want2, "changed factors")
	if st := s.Stats(); st.PlanCacheHits != 1 {
		t.Fatalf("stats %+v: changed factors hit a stale plan", st)
	}
}

// TestFusedFallbackCounted pins the observability of a failed plan
// build: factors that pass submit validation but fail kernel validation
// panic inside FillPlan, the batch falls back to the unfused loop (where
// each member fails into its own ticket), and FusedFallbacks records the
// degradation.
func TestFusedFallbackCounted(t *testing.T) {
	x, _ := problem(26, 4, 9, 8, 7)
	bad := []mat.View{mat.NewDense(3, 4), mat.NewDense(3, 4), mat.NewDense(3, 4)} // rows mismatch x dims
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	t1 := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: bad, Mode: 1})
	t2 := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: bad, Mode: 1})
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	if t1.Err() == nil || t2.Err() == nil {
		t.Fatal("mismatched factors must fail their tickets")
	}
	s.Drain()
	st := s.Stats()
	if st.FusedFallbacks != 1 || st.Fused != 0 {
		t.Fatalf("stats %+v: want the failed plan build counted as 1 fallback, 0 fused", st)
	}
	if st.Failed != 2 {
		t.Fatalf("stats %+v: want both members failed into their tickets", st)
	}
}

// TestJoinWindowClosesAtAdmission pins the coalescing window: a same-key
// request arriving while the batch is queued joins it; one arriving after
// the batch has been popped for execution must open a new batch, never
// append to the executing one.
func TestJoinWindowClosesAtAdmission(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	gate := make(chan struct{})
	entered := make(chan struct{})
	a1 := s.submitFunc("k", 1, 0, func(parallel.Executor) {
		close(entered)
		<-gate
	})
	a2 := s.submitFunc("k", 1, 0, func(parallel.Executor) { <-gate }) // joins while queued
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (join while queued)", st.Coalesced)
	}

	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	<-entered // batch "k" has been popped and is executing
	a3 := s.submitFunc("k", 1, 0, func(parallel.Executor) {})
	close(gate)
	for i, tk := range []*Ticket{a1, a2, a3} {
		if err := tk.Err(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	s.Drain()
	st := s.Stats()
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1: a3 joined a batch already popped for execution", st.Coalesced)
	}
	if st.Batches != 3 {
		t.Fatalf("batches = %d, want 3 (blocker, the a1+a2 batch, a3's own)", st.Batches)
	}
}

// TestJoinWindowRaisesBatchCost pins that a join re-raises the batch's
// total service estimate in the aging queue: a batch that has coalesced
// three unit-cost items is 3× the work of a lone 1.5-cost request and
// must stop outscoring it — per-item cost alone would let the bloated
// batch keep jumping the queue.
func TestJoinWindowRaisesBatchCost(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1, AgeBias: 10 * time.Millisecond})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	order := make(chan string, 4)
	var tickets []*Ticket
	for i := 0; i < 3; i++ { // batch "a": 3 joined unit-cost items, totalCost 3
		tickets = append(tickets, s.submitFunc("a", 1, 0, func(parallel.Executor) { order <- "a" }))
	}
	tickets = append(tickets, s.submitFunc("b", 1.5, 0, func(parallel.Executor) { order <- "b" }))

	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		if err := tk.Err(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if first := <-order; first != "b" {
		t.Fatalf("first admitted %q, want the lone 1.5-cost request to beat the 3-item unit-cost batch", first)
	}
}

// TestJoinWindowCapClosesBatch pins the MaxBatch bound that keeps the
// aging queue's starvation guarantee real: a full batch stops accepting
// joiners (so a steady joiner stream cannot pin its score at a plateau
// forever), and the next same-key arrival opens a fresh batch.
func TestJoinWindowCapClosesBatch(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1, MaxBatch: 2})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		tickets = append(tickets, s.submitFunc("k", 1, 0, func(parallel.Executor) {}))
	}
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		if err := tk.Err(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	s.Drain()
	st := s.Stats()
	// 5 submissions at cap 2 → batches of 2, 2, 1: two joins, plus the
	// blocker's batch makes 4 executed batches.
	if st.Coalesced != 2 || st.Batches != 4 {
		t.Fatalf("stats %+v: want 2 coalesced and 4 batches (2+2+1 under MaxBatch=2, plus the blocker)", st)
	}

	// The boundary configuration: MaxBatch=1 must never coalesce — a
	// fresh batch already holds one item, so no join window opens.
	s1 := New(Config{Workers: 2, MaxActive: 1, MaxBatch: 1})
	defer s1.Close()
	release1 := make(chan struct{})
	started1 := make(chan struct{})
	blocker1 := s1.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started1)
		<-release1
	})
	<-started1
	t1 := s1.submitFunc("k", 1, 0, func(parallel.Executor) {})
	t2 := s1.submitFunc("k", 1, 0, func(parallel.Executor) {})
	close(release1)
	for i, tk := range []*Ticket{blocker1, t1, t2} {
		if err := tk.Err(); err != nil {
			t.Fatalf("MaxBatch=1 ticket %d: %v", i, err)
		}
	}
	s1.Drain()
	if st := s1.Stats(); st.Coalesced != 0 || st.Batches != 3 {
		t.Fatalf("MaxBatch=1 stats %+v: want 0 coalesced, 3 batches", st)
	}
}

// TestJoinWindowSurvivesCapCloseAdmission pins the open-map identity
// guard: after a cap-closed batch A leaves the join window, a newer
// batch B reuses the key; admitting A must not close B's window — a
// same-key arrival while A executes still joins B.
func TestJoinWindowSurvivesCapCloseAdmission(t *testing.T) {
	// EvenSplit: FIFO admission guarantees A (older) pops before B.
	s := New(Config{Workers: 2, MaxActive: 1, MaxBatch: 2, EvenSplit: true})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	gate := make(chan struct{})
	entered := make(chan struct{})
	a1 := s.submitFunc("k", 1, 0, func(parallel.Executor) {
		close(entered)
		<-gate
	})
	a2 := s.submitFunc("k", 1, 0, func(parallel.Executor) { <-gate }) // fills A: cap-closed
	b1 := s.submitFunc("k", 1, 0, func(parallel.Executor) {})         // opens B under the same key
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (A filled to its cap)", st.Coalesced)
	}

	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	<-entered // A popped and executing; B still queued and must stay joinable
	b2 := s.submitFunc("k", 1, 0, func(parallel.Executor) {})
	close(gate)
	for i, tk := range []*Ticket{a1, a2, b1, b2} {
		if err := tk.Err(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	s.Drain()
	st := s.Stats()
	if st.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2: admitting cap-closed A closed B's join window", st.Coalesced)
	}
	if st.Batches != 3 {
		t.Fatalf("batches = %d, want 3 (blocker, A×2, B×2)", st.Batches)
	}
}

// TestJoinWindowRace hammers the join window from many submitters while
// batches continuously pop for execution, under -race in CI. The drain
// invariants catch a lost joiner (an item appended after its batch was
// popped would never execute): every submission completes, and every
// accepted request either opened a batch or was counted coalesced.
func TestJoinWindowRace(t *testing.T) {
	s := New(Config{Workers: 4, MaxActive: 2})
	const (
		submitters = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	tickets := make([][]*Ticket, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := "k"
				if i%5 == 0 {
					key = "" // interleave keyless batches to churn the slots
				}
				tickets[g] = append(tickets[g], s.submitFunc(key, 1, 0, func(parallel.Executor) {}))
			}
		}(g)
	}
	wg.Wait()
	for g := range tickets {
		for i, tk := range tickets[g] {
			if err := tk.Err(); err != nil {
				t.Fatalf("submitter %d request %d: %v", g, i, err)
			}
		}
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	if st.Submitted != submitters*perG || st.Completed != st.Submitted || st.Failed != 0 {
		t.Fatalf("stats %+v: want %d submitted == completed, 0 failed", st, submitters*perG)
	}
	if st.Batches+st.Coalesced != st.Submitted {
		t.Fatalf("stats %+v: every request must either open a batch or be coalesced exactly once", st)
	}
}
