package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// problem builds a deterministic tensor + factor set.
func problem(seed int64, c int, dims ...int) (*tensor.Dense, []mat.View) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	return x, u
}

func matsEqual(t *testing.T, got, want mat.View, label string) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: got %dx%d, want %dx%d", label, got.R, got.C, want.R, want.C)
	}
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			d := got.At(i, j) - want.At(i, j)
			if d > 1e-10 || d < -1e-10 {
				t.Fatalf("%s: mismatch at (%d,%d): %g vs %g", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestServeMTTKRPMatchesDirect floods the scheduler with concurrent
// requests over mixed shapes, modes and methods and checks every result
// against the direct single-caller API.
func TestServeMTTKRPMatchesDirect(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	x1, u1 := problem(1, 6, 12, 10, 8)
	x2, u2 := problem(2, 5, 7, 9, 6, 5)
	type cs struct {
		x      *tensor.Dense
		u      []mat.View
		mode   int
		method core.Method
	}
	var cases []cs
	for mode := 0; mode < 3; mode++ {
		cases = append(cases, cs{x1, u1, mode, core.MethodAuto})
	}
	for mode := 0; mode < 4; mode++ {
		cases = append(cases, cs{x2, u2, mode, core.MethodOneStep})
		cases = append(cases, cs{x2, u2, mode, core.MethodTwoStep})
	}

	const rounds = 6
	tickets := make([]*Ticket, 0, rounds*len(cases))
	wants := make([]mat.View, 0, rounds*len(cases))
	for r := 0; r < rounds; r++ {
		for _, c := range cases {
			tickets = append(tickets, s.SubmitMTTKRP(MTTKRPRequest{X: c.x, Factors: c.u, Mode: c.mode, Method: c.method}))
			wants = append(wants, core.Compute(c.method, c.x, c.u, c.mode, core.Options{Threads: 2}))
		}
	}
	for i, tk := range tickets {
		got, err := tk.MTTKRP()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		matsEqual(t, got, wants[i], fmt.Sprintf("request %d", i))
	}
	st := s.Stats()
	if st.Completed != len(tickets) || st.Failed != 0 {
		t.Fatalf("stats: %+v, want %d completed, 0 failed", st, len(tickets))
	}
}

// TestServeBatchingCoalesces blocks the scheduler with a sentinel request
// so that same-shape submissions pile into one open batch, then checks the
// batch executed them all correctly on a shared lease.
func TestServeBatchingCoalesces(t *testing.T) {
	s := New(Config{Workers: 4, MaxActive: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started // the scheduler's only slot is now occupied

	x, u := problem(3, 6, 14, 11, 9)
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{Threads: 2})
	const k = 5
	var tickets [k]*Ticket
	for i := range tickets {
		tickets[i] = s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1})
	}
	if st := s.Stats(); st.Coalesced != k-1 {
		t.Fatalf("coalesced %d, want %d", st.Coalesced, k-1)
	}
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i, tk := range tickets {
		got, err := tk.MTTKRP()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		matsEqual(t, got, want, fmt.Sprintf("request %d", i))
	}
	st := s.Stats()
	// The k coalesced requests executed as one batch (the blocker is the
	// other batch).
	if st.Batches != 2 {
		t.Fatalf("batches %d, want 2", st.Batches)
	}
	if st.PeakActive != 1 {
		t.Fatalf("peak active %d, want 1", st.PeakActive)
	}
}

// TestServeDisableBatching pins that DisableBatching gives every request
// its own batch even under an occupied scheduler.
func TestServeDisableBatching(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1, DisableBatching: true})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	x, u := problem(4, 4, 10, 8, 6)
	t1 := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0})
	t2 := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0})
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Coalesced != 0 || st.Batches != 3 {
		t.Fatalf("stats %+v, want 0 coalesced, 3 batches", st)
	}
}

// TestServeCP runs concurrent CP decompositions through the scheduler and
// compares fits against direct runs with the same seeds.
func TestServeCP(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	x, _ := problem(5, 1, 13, 11, 9)
	cfg := cpd.Config{Rank: 3, MaxIters: 4, Tol: -1, Seed: 7}
	want, err := cpd.ALS(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickets [3]*Ticket
	for i := range tickets {
		tickets[i] = s.SubmitCP(CPRequest{X: x, Config: cfg})
	}
	for i, tk := range tickets {
		res, err := tk.CP()
		if err != nil {
			t.Fatalf("cp %d: %v", i, err)
		}
		if res.Iters != want.Iters {
			t.Fatalf("cp %d: %d iters, want %d", i, res.Iters, want.Iters)
		}
		d := res.Fit - want.Fit
		if d > 1e-12 || d < -1e-12 {
			t.Fatalf("cp %d: fit %v, want %v (deterministic per seed)", i, res.Fit, want.Fit)
		}
	}
}

// TestServeAdmissionControl checks that MaxActive bounds concurrency and
// that the admission budget math divides the pool with a floor.
func TestServeAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 8, MinWorkers: 2})
	defer s.Close()
	if s.maxActive != 4 {
		t.Fatalf("default MaxActive = %d, want 4 (workers/minworkers)", s.maxActive)
	}
	for _, tc := range []struct{ active, want int }{
		{1, 8}, {2, 4}, {3, 2}, {4, 2}, {100, 2},
	} {
		if got := s.evenBudgetLocked(tc.active); got != tc.want {
			t.Fatalf("budget(%d) = %d, want %d", tc.active, got, tc.want)
		}
	}

	// Saturate the scheduler with blockers; verify the cap holds and
	// queued work drains afterwards.
	release := make(chan struct{})
	var mu sync.Mutex
	running := 0
	peak := 0
	var blockers []*Ticket
	for i := 0; i < 9; i++ {
		blockers = append(blockers, s.submitFunc("", 0, 0, func(parallel.Executor) {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			<-release
			mu.Lock()
			running--
			mu.Unlock()
		}))
	}
	close(release)
	for _, tk := range blockers {
		if err := tk.Err(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > 4 {
		t.Fatalf("observed %d concurrent requests, cap is 4", peak)
	}
	if st := s.Stats(); st.PeakActive > 4 {
		t.Fatalf("PeakActive %d, cap is 4", st.PeakActive)
	}
}

// TestServeLeaseBudgets observes the scheduler's worker assignment from
// inside requests: a lone request gets the full width, and once four are
// active each holds width/4.
func TestServeLeaseBudgets(t *testing.T) {
	s := New(Config{Workers: 8})
	defer s.Close()

	solo := make(chan int, 1)
	s.submitFunc("", 0, 0, func(ex parallel.Executor) { solo <- ex.Workers() }).Err()
	if w := <-solo; w != 8 {
		t.Fatalf("solo request granted width %d, want 8", w)
	}

	// Hold 4 requests active simultaneously and measure each one's width
	// while the other three are provably still active: all four have
	// entered (so the last admission's rebalance has set every target to
	// width/4 = 2) and none has been released yet.
	var entered sync.WaitGroup
	entered.Add(4)
	measure := make(chan struct{})
	release := make(chan struct{})
	widths := make(chan int, 4)
	for i := 0; i < 4; i++ {
		s.submitFunc("", 0, 0, func(ex parallel.Executor) {
			entered.Done()
			<-measure
			widths <- ex.Effective(0) // the kernel-entry resolution path
			<-release
		})
	}
	entered.Wait()
	close(measure)
	for i := 0; i < 4; i++ {
		if w := <-widths; w != 2 {
			t.Fatalf("granted width %d with 4 active on 8 workers, want 2", w)
		}
	}
	close(release)
}

// TestServeErrors covers synchronous validation, panic recovery, and
// closed-server behavior.
func TestServeErrors(t *testing.T) {
	s := New(Config{Workers: 2})
	x, u := problem(6, 4, 8, 7, 6)

	if err := s.SubmitMTTKRP(MTTKRPRequest{}).Err(); err == nil {
		t.Fatal("nil tensor accepted")
	}
	if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 9}).Err(); err == nil {
		t.Fatal("out-of-range mode accepted")
	}
	// Shape mismatch detected inside core: recovered into the ticket.
	bad := []mat.View{u[0], u[1], mat.NewDense(3, 4)}
	if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: bad, Mode: 0}).Err(); err == nil {
		t.Fatal("mismatched factors accepted")
	}
	if err := s.SubmitCP(CPRequest{X: x, Config: cpd.Config{Rank: 0}}).Err(); err == nil {
		t.Fatal("bad rank accepted")
	}
	st := s.Stats()
	if st.Failed == 0 {
		t.Fatalf("stats %+v: expected failures recorded", st)
	}
	s.Close()
	if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0}).Err(); err != ErrDraining {
		t.Fatalf("submit after close: %v, want ErrDraining", err)
	}
}

// TestServeDrain pins the graceful-drain contract: Drain completes queued
// and running work, rejects new submissions with the typed ErrDraining,
// and a Close afterwards fails nothing.
func TestServeDrain(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	x, u := problem(7, 3, 6, 5, 4)
	queued := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0})
	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Submissions during the drain are refused with the typed error.
	var rejected *Ticket
	for {
		rejected = s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0})
		select {
		case <-rejected.Done():
		default:
			// Raced ahead of Drain marking the server; this one was
			// accepted and will complete. Try again.
			continue
		}
		break
	}
	if err := rejected.Err(); err != ErrDraining {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while admitted work still running")
	default:
	}
	close(release)
	<-drained
	if err := blocker.Err(); err != nil {
		t.Fatalf("running request after drain: %v", err)
	}
	if err := queued.Err(); err != nil {
		t.Fatalf("queued request after drain: %v (drain must complete admitted work)", err)
	}
	st := s.Stats()
	// Drain-rejected submissions are never accepted, so they appear in no
	// counter; everything accepted completed successfully.
	if st.Failed != 0 || st.Submitted != st.Completed {
		t.Fatalf("stats %+v: want no failures and Submitted == Completed", st)
	}
	s.Close()
}

// TestServeCloseFailsQueued pins that Close fails requests still waiting
// for admission rather than abandoning them.
func TestServeCloseFailsQueued(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	x, u := problem(7, 3, 6, 5, 4)
	queued := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0})
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	if err := queued.Err(); err != ErrClosed {
		t.Fatalf("queued request: %v, want ErrClosed", err)
	}
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatalf("running request: %v", err)
	}
	<-done
	// Queued-then-failed requests still count as completed (failed), so
	// the Submitted == Completed drain invariant survives a Close.
	st := s.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("stats after close: %+v, want 2 submitted, 2 completed, 1 failed", st)
	}
}

// TestServeWorkerPanicRecovered pins that a kernel panic on a reserved
// worker goroutine (not just the coordinator) fails only that request's
// ticket: the server keeps serving and the process survives.
func TestServeWorkerPanicRecovered(t *testing.T) {
	s := New(Config{Workers: 4, MinWorkers: 4}) // every request gets the full width
	defer s.Close()
	tk := s.submitFunc("", 0, 0, func(ex parallel.Executor) {
		ex.Run(4, func(w int) {
			if w == 3 {
				panic("bad request data")
			}
		})
	})
	if err := tk.Err(); err == nil {
		t.Fatal("worker panic not surfaced on the ticket")
	}
	// The server must still work.
	x, u := problem(9, 4, 9, 8, 7)
	want := core.Compute(core.MethodAuto, x, u, 0, core.Options{Threads: 2})
	got, err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 0}).MTTKRP()
	if err != nil {
		t.Fatal(err)
	}
	matsEqual(t, got, want, "post-panic request")
}

// TestServeSteadyStateDst pins the serving steady state: a caller that
// retains its dst across same-shape submissions gets results written
// through it, with the shape-keyed workspaces reused underneath.
func TestServeSteadyStateDst(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	x, u := problem(8, 5, 11, 9, 7)
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{Threads: 2})
	dst := mat.NewDense(x.Dim(1), 5)
	for i := 0; i < 10; i++ {
		got, err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dst}).MTTKRP()
		if err != nil {
			t.Fatal(err)
		}
		if &got.Data[0] != &dst.Data[0] {
			t.Fatal("result not written through the retained dst")
		}
		matsEqual(t, got, want, fmt.Sprintf("iteration %d", i))
	}
}
