package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
)

// TestAdmissionCostWeightedBudgets pins the cost-share budget policy: two
// active requests with a 3:1 cost ratio on an 8-wide pool hold budgets of
// 6 and 2 — not the even 4/4 split.
func TestAdmissionCostWeightedBudgets(t *testing.T) {
	s := New(Config{Workers: 8, MaxActive: 2})
	defer s.Close()

	var entered sync.WaitGroup
	entered.Add(2)
	measure := make(chan struct{})
	release := make(chan struct{})
	type obs struct {
		name  string
		width int
	}
	widths := make(chan obs, 2)
	submit := func(name string, cost float64) {
		s.submitFunc("", cost, 0, func(ex parallel.Executor) {
			entered.Done()
			<-measure
			// Kernel-entry resolution: reconciles the budget first.
			widths <- obs{name, ex.Effective(0)}
			<-release
		})
	}
	submit("big", 3)
	submit("small", 1)
	entered.Wait()
	close(measure)
	got := map[string]int{}
	for i := 0; i < 2; i++ {
		o := <-widths
		got[o.name] = o.width
	}
	close(release)
	if got["big"] != 6 || got["small"] != 2 {
		t.Fatalf("budgets big=%d small=%d, want 6 and 2 (cost share of 8 workers at 3:1)", got["big"], got["small"])
	}
}

// TestAdmissionMaxShareAndFloor pins the cap and floor of the cost-aware
// policy: MaxShare bounds even a lone huge request, and MinWorkers keeps a
// tiny request from being starved to zero width by a dominant peer.
func TestAdmissionMaxShareAndFloor(t *testing.T) {
	// A lone request is capped at MaxShare of the width.
	s := New(Config{Workers: 8, MaxShare: 0.5})
	solo := make(chan int, 1)
	s.submitFunc("", 1e9, 0, func(ex parallel.Executor) { solo <- ex.Effective(0) }).Err()
	if w := <-solo; w != 4 {
		t.Fatalf("lone request granted %d workers under MaxShare 0.5 of 8, want 4", w)
	}
	s.Close()

	// A 100:1 cost ratio still leaves the small request its floor.
	s = New(Config{Workers: 8, MinWorkers: 2, MaxShare: 0.75, MaxActive: 2})
	defer s.Close()
	var entered sync.WaitGroup
	entered.Add(2)
	measure := make(chan struct{})
	release := make(chan struct{})
	widths := make(chan [2]int, 2)
	submit := func(idx int, cost float64) {
		s.submitFunc("", cost, 0, func(ex parallel.Executor) {
			entered.Done()
			<-measure
			widths <- [2]int{idx, ex.Effective(0)}
			<-release
		})
	}
	submit(0, 100)
	submit(1, 1)
	entered.Wait()
	close(measure)
	got := map[int]int{}
	for i := 0; i < 2; i++ {
		w := <-widths
		got[w[0]] = w[1]
	}
	close(release)
	if got[0] != 6 {
		t.Fatalf("dominant request granted %d, want 6 (MaxShare 0.75 of 8)", got[0])
	}
	if got[1] != 2 {
		t.Fatalf("tiny request granted %d, want the MinWorkers floor 2", got[1])
	}
}

// TestAdmissionAgingPreventsConvoy pins the anti-convoy property: a small
// request that arrives behind an already-queued large one overtakes it at
// the next admission slot, and the reorder is counted.
func TestAdmissionAgingPreventsConvoy(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	order := make(chan string, 2)
	s.submitFunc("", 1e9, 0, func(parallel.Executor) { order <- "large" })
	small := s.submitFunc("", 1, 0, func(parallel.Executor) { order <- "small" })
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	if err := small.Err(); err != nil {
		t.Fatal(err)
	}
	if first := <-order; first != "small" {
		t.Fatalf("first admitted %q, want the small request to overtake the queued convoy", first)
	}
	if second := <-order; second != "large" {
		t.Fatalf("second admitted %q, want large", second)
	}
	if st := s.Stats(); st.Reordered < 1 {
		t.Fatalf("stats %+v: aging reorder not counted", st)
	}
}

// TestAdmissionAgingBoundsStarvation pins the other half of the aging
// contract: a large request that has waited long enough beats a
// just-arrived small one, so a continuous small-request stream cannot
// starve it. With AgeBias b, a request costing k× more wins once its age
// exceeds ~k·b.
func TestAdmissionAgingBoundsStarvation(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1, AgeBias: time.Millisecond})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	order := make(chan string, 2)
	large := s.submitFunc("", 4, 0, func(parallel.Executor) { order <- "large" })
	// Let the large request age well past costRatio·AgeBias = 4 ms.
	time.Sleep(40 * time.Millisecond)
	s.submitFunc("", 1, 0, func(parallel.Executor) { order <- "small" })
	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	if err := large.Err(); err != nil {
		t.Fatal(err)
	}
	if first := <-order; first != "large" {
		t.Fatalf("first admitted %q, want the aged large request", first)
	}
	<-order
}

// TestAdmissionStatsQueueVisibility pins the saturation observability the
// drain/supervision tooling needs: queue depth, per-request granted
// budgets, queue ages and the max-wait high-water mark.
func TestAdmissionStatsQueueVisibility(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 5, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	q1 := s.submitFunc("", 1, 0, func(parallel.Executor) {})
	q2 := s.submitFunc("", 2, 0, func(parallel.Executor) {})
	time.Sleep(5 * time.Millisecond) // let the queued requests age measurably

	st := s.Stats()
	if st.Active != 1 || st.Queued != 2 || st.PeakQueued < 2 {
		t.Fatalf("stats %+v: want 1 active, 2 queued, peak ≥ 2", st)
	}
	if st.OldestQueuedMs <= 0 {
		t.Fatalf("OldestQueuedMs = %v, want > 0 with aged queued requests", st.OldestQueuedMs)
	}
	if len(st.Requests) != 3 {
		t.Fatalf("len(Requests) = %d, want 3 (1 active + 2 queued)", len(st.Requests))
	}
	activeSeen, queuedSeen := 0, 0
	for _, r := range st.Requests {
		if r.Kind != "func" {
			t.Fatalf("request kind %q, want func", r.Kind)
		}
		if r.Budget > 0 {
			activeSeen++
			if r.Budget != 2 {
				t.Fatalf("active budget %d, want the full width 2", r.Budget)
			}
		} else {
			queuedSeen++
			if r.QueuedMs <= 0 {
				t.Fatalf("queued request age %v, want > 0", r.QueuedMs)
			}
		}
	}
	if activeSeen != 1 || queuedSeen != 2 {
		t.Fatalf("requests: %d active, %d queued, want 1 and 2 (%+v)", activeSeen, queuedSeen, st.Requests)
	}

	close(release)
	blocker.Err()
	q1.Err()
	q2.Err()
	if st := s.Stats(); st.MaxQueueWaitMs <= 0 {
		t.Fatalf("MaxQueueWaitMs = %v after queued work drained, want > 0", st.MaxQueueWaitMs)
	}
}

// TestAdmissionProjectedWait pins the transport's shed signal: zero with
// no history or no backlog, positive once the scheduler is saturated with
// queued work, and no smaller for a costlier request (which cannot
// overtake more of the queue).
func TestAdmissionProjectedWait(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	if d := s.ProjectedWait(100); d != 0 {
		t.Fatalf("ProjectedWait with no history = %v, want 0", d)
	}
	// One completed batch seeds the service-rate estimate.
	if err := s.submitFunc("", 100, 0, func(parallel.Executor) { time.Sleep(2 * time.Millisecond) }).Err(); err != nil {
		t.Fatal(err)
	}
	if d := s.ProjectedWait(100); d != 0 {
		t.Fatalf("ProjectedWait on an idle server = %v, want 0", d)
	}

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 100, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	queued := s.submitFunc("", 100, 0, func(parallel.Executor) {})

	small := s.ProjectedWait(1)
	big := s.ProjectedWait(200)
	if big <= 0 {
		t.Fatalf("ProjectedWait(200) = %v with a saturated scheduler, want > 0", big)
	}
	if big < small {
		t.Fatalf("ProjectedWait(200) = %v < ProjectedWait(1) = %v; costlier requests cannot wait less", big, small)
	}
	close(release)
	blocker.Err()
	queued.Err()
}

// TestCostModel pins the model's ordering properties (the policy only
// needs relative costs) and the hint/weight resolution rules.
func TestCostModel(t *testing.T) {
	var m CostModel
	small := m.MTTKRP([]int{12, 10, 8}, 4)
	large := m.MTTKRP([]int{48, 40, 36}, 16)
	if small <= 0 || large <= small {
		t.Fatalf("MTTKRP costs small=%g large=%g, want 0 < small < large", small, large)
	}
	cp := m.CP([]int{12, 10, 8}, 4, 10)
	if cp <= small {
		t.Fatalf("CP cost %g not above one MTTKRP %g (10 sweeps × 3 modes)", cp, small)
	}
	if m.CP([]int{12, 10, 8}, 4, 0) != m.CP([]int{12, 10, 8}, 4, 50) {
		t.Fatal("CP sweeps=0 must price the cpd default sweep budget (50)")
	}
	if got := costOf(7, 99); got != 7 {
		t.Fatalf("costOf hint override = %g, want 7", got)
	}
	if got := costOf(0, 99); got != 99 {
		t.Fatalf("costOf estimate fallback = %g, want 99", got)
	}
	if got := costOf(0, 0); got != 1 {
		t.Fatalf("costOf default = %g, want 1", got)
	}
	if got := weightOf(0); got != 1 {
		t.Fatalf("weightOf default = %g, want 1", got)
	}

	// The mapped model prices the resident working set, not the file
	// extent: with a bounded tile budget it undercuts the dense model on a
	// big shape, and degenerate budgets (0, or larger than the tensor)
	// collapse to the dense estimate exactly.
	dims := []int{256, 256, 256}
	dense := m.MTTKRP(dims, 8)
	mapped := m.MTTKRPMapped(dims, 8, 1<<20)
	if mapped <= 0 || mapped >= dense {
		t.Fatalf("MTTKRPMapped = %g, want 0 < mapped < dense %g (resident bytes, not file extent)", mapped, dense)
	}
	if m.MTTKRPMapped(dims, 8, 0) != dense || m.MTTKRPMapped(dims, 8, 1<<62) != dense {
		t.Fatal("MTTKRPMapped degenerate budgets must collapse to the dense estimate")
	}
}

// TestAdmissionEvenSplitBaseline pins that the EvenSplit policy keeps the
// historical behavior: FIFO admission order (no aging reorders) and
// width ÷ active budgets regardless of cost.
func TestAdmissionEvenSplitBaseline(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1, EvenSplit: true})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started
	order := make(chan string, 2)
	s.submitFunc("", 1e9, 0, func(parallel.Executor) { order <- "large" })
	small := s.submitFunc("", 1, 0, func(parallel.Executor) { order <- "small" })
	close(release)
	blocker.Err()
	small.Err()
	if first := <-order; first != "large" {
		t.Fatalf("even-split admitted %q first, want FIFO (large)", first)
	}
	<-order
	if st := s.Stats(); st.Reordered != 0 {
		t.Fatalf("even-split recorded %d reorders, want 0", st.Reordered)
	}
}
