package serve

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// CostModel estimates the admission cost of a request from its problem
// shape — the scalar the scheduler uses to weight worker budgets by cost
// share and to age the admission queue. The model follows the paper's
// performance structure: MTTKRP work is Θ(|X|·C) flops per mode over a
// working set of the tensor plus the factor matrices, so
//
//	flops ≈ 2 · Π dims · rank        (per mode)
//	bytes ≈ 8 · (Π dims + Σ I_k · rank + I_n · rank)
//
// and the scalar cost is FlopWeight·flops + ByteWeight·bytes. Small dense
// problems are bandwidth-bound, which is why bytes carry an independent
// weight instead of folding into a pure flop count.
//
// The byte term is also where placement plugs in: a worker budget that
// spans NUMA domains moves part of its working set over the interconnect,
// so the model prices a domain-spanning grant by scaling bytes with
// CrossDomainPenalty (see SpillFactor). Flops are placement-blind.
//
// The zero value is the default model (FlopWeight 1, ByteWeight 4,
// CrossDomainPenalty 1.5).
type CostModel struct {
	// FlopWeight and ByteWeight convert the flop and byte estimates into
	// one scalar; zero selects the defaults (1 and 4).
	FlopWeight, ByteWeight float64
	// CrossDomainPenalty is the factor the byte term pays when a request's
	// workers span placement domains — the bandwidth/latency ratio of
	// remote to local memory access. Zero selects 1.5, a conservative
	// two-socket figure; 1 disables the penalty. It only matters on
	// servers built with a multi-domain Config.Topology.
	CrossDomainPenalty float64
}

func (m CostModel) weights() (fw, bw float64) {
	fw, bw = m.FlopWeight, m.ByteWeight
	if fw == 0 {
		fw = 1
	}
	if bw == 0 {
		bw = 4
	}
	return fw, bw
}

// crossPenalty resolves the cross-domain byte penalty (0 selects 1.5; any
// value below 1 is clamped to 1 — remote access is never cheaper).
func (m CostModel) crossPenalty() float64 {
	p := m.CrossDomainPenalty
	if p == 0 {
		p = 1.5
	}
	if p < 1 {
		p = 1
	}
	return p
}

// combine folds flop and byte estimates into the admission scalar.
func (m CostModel) combine(flops, bytes float64) float64 {
	fw, bw := m.weights()
	return fw*flops + bw*bytes
}

// mttkrpParts is the dense shape model: flop and byte estimates for one
// MTTKRP over a dims-shaped tensor with rank factor columns.
func mttkrpParts(dims []int, rank int) (flops, bytes float64) {
	entries, rows := 1.0, 0.0
	for _, d := range dims {
		entries *= float64(d)
		rows += float64(d)
	}
	r := float64(rank)
	// The destination matrix counts like one more factor (I_n·rank ≤
	// rows·rank), folded into the 2× on the factor term.
	return 2 * entries * r, 8 * (entries + 2*rows*r)
}

// sparseParts is the nnz-keyed model for COO tensors (see SparseMTTKRP).
func sparseParts(nnz int64, dims []int, rank int) (flops, bytes float64) {
	rows := 0.0
	for _, d := range dims {
		rows += float64(d)
	}
	r := float64(rank)
	nz := float64(nnz)
	order := float64(len(dims))
	return 2 * nz * r * (order - 1), 12*nz + 8*(nz*r+2*rows*r)
}

// mappedParts is the resident-byte model for file-backed tensors (see
// MTTKRPMapped). residentBytes ≤ 0 (or beyond the tensor) falls back to
// the full dense extent.
func mappedParts(dims []int, rank int, residentBytes int64) (flops, bytes float64) {
	entries, rows := 1.0, 0.0
	for _, d := range dims {
		entries *= float64(d)
		rows += float64(d)
	}
	r := float64(rank)
	resident := float64(residentBytes)
	if resident <= 0 || resident > 8*entries {
		resident = 8 * entries
	}
	return 2 * entries * r, resident + 8*2*rows*r
}

// MTTKRP estimates the cost of one MTTKRP over a dims-shaped tensor with
// rank factor columns.
func (m CostModel) MTTKRP(dims []int, rank int) float64 {
	return m.combine(mttkrpParts(dims, rank))
}

// SparseMTTKRP estimates the cost of one sparse MTTKRP with nnz stored
// entries over a dims-shaped tensor with rank factor columns. Work is
// keyed on nnz · rank, not Π dims · rank — a 0.1%-dense tensor is ~1000×
// cheaper than its dense shape suggests, and pricing it by shape would
// let sparse requests hoard worker budget and make ProjectedWait lie on
// mixed traffic:
//
//	flops ≈ 2 · nnz · rank · (order − 1)   (one hadamard chain + axpy per entry)
//	bytes ≈ 12 · nnz + 8 · (nnz · rank + 2 · Σ I_k · rank)
//
// (12 bytes per entry: one int32 coordinate per non-target mode ≈ 4·(N−1)
// folded to the order-3 common case, plus the 8-byte value; the factor
// and output terms mirror the dense model.)
func (m CostModel) SparseMTTKRP(nnz int64, dims []int, rank int) float64 {
	return m.combine(sparseParts(nnz, dims, rank))
}

// MTTKRPMapped estimates the cost of one MTTKRP over a file-backed
// (mmap'd) dense tensor streamed through row tiles. The flop term is the
// dense model's — every element is still touched once per mode — but the
// byte term prices the resident working set (one tile plus the factor and
// output matrices) instead of the full file extent: a tensor far larger
// than RAM does not hoard worker budget the way an equally-shaped
// heap-resident request would, because its cache/memory pressure is
// bounded by the tile budget. residentBytes ≤ 0 (or larger than the
// tensor itself) falls back to the full dense estimate.
func (m CostModel) MTTKRPMapped(dims []int, rank int, residentBytes int64) float64 {
	return m.combine(mappedParts(dims, rank, residentBytes))
}

// costTensor is the tensor surface the model dispatches on.
type costTensor interface {
	Dims() []int
	NNZ() int64
	Layout() tensor.Layout
}

// PartsFor returns the flop and byte estimates of one MTTKRP request,
// dispatching on the tensor's layout exactly like MTTKRPFor. The split
// exists for placement: SpillFactor prices the byte part against the
// cross-domain penalty, which a single pre-combined scalar cannot.
func (m CostModel) PartsFor(x costTensor, rank int) (flops, bytes float64) {
	if x.Layout() == tensor.LayoutCOO {
		return sparseParts(x.NNZ(), x.Dims(), rank)
	}
	if d, ok := x.(interface{ Mapped() bool }); ok && d.Mapped() {
		return mappedParts(x.Dims(), rank, core.DefaultTileBytes)
	}
	return mttkrpParts(x.Dims(), rank)
}

// MTTKRPFor estimates one MTTKRP request's cost by the tensor's layout:
// the dense shape model for heap-resident dense tensors, the nnz-keyed
// model for sparse ones, and the resident-byte model for mapped dense
// tensors (which the scheduler streams through tiles of at most
// core.DefaultTileBytes). This is the dispatch point SubmitMTTKRP prices
// through.
func (m CostModel) MTTKRPFor(x costTensor, rank int) float64 {
	return m.combine(m.PartsFor(x, rank))
}

// SpillFactor is the multiplier a domain-spanning grant pays over a packed
// one for a request with the given flop/byte estimates: the cost with the
// byte term scaled by CrossDomainPenalty, relative to the unscaled cost.
// It is always ≥ 1, approaching 1 for flop-bound requests and the full
// penalty for bandwidth-bound ones. The scheduler lets a budget spill past
// one domain only when the extra width beats this factor — spilling must
// pay for the remote traffic it creates.
func (m CostModel) SpillFactor(flops, bytes float64) float64 {
	base := m.combine(flops, bytes)
	if base <= 0 {
		return 1
	}
	fw, bw := m.weights()
	return (fw*flops + bw*bytes*m.crossPenalty()) / base
}

// CP estimates a CP-ALS run: sweeps sweeps of one MTTKRP per mode.
// sweeps <= 0 selects the cpd default sweep budget (50).
func (m CostModel) CP(dims []int, rank, sweeps int) float64 {
	if sweeps <= 0 {
		sweeps = 50 // cpd.Config.withDefaults MaxIters
	}
	return float64(sweeps) * float64(len(dims)) * m.MTTKRP(dims, rank)
}

// costOf resolves a request's admission cost: an explicit positive hint
// wins, otherwise the model estimate; anything non-positive (the test
// hooks) costs one unit so equal-cost requests split the pool evenly.
func costOf(hint, estimate float64) float64 {
	if hint > 0 {
		return hint
	}
	if estimate > 0 {
		return estimate
	}
	return 1
}

// weightOf resolves a request's aging weight (0 selects 1).
func weightOf(w float64) float64 {
	if w > 0 {
		return w
	}
	return 1
}
