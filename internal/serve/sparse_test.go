package serve

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// sparseProblem builds a deterministic sparse tensor + factor set.
func sparseProblem(seed int64, density float64, c int, dims ...int) (*tensor.Sparse, []mat.View) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.RandomSparse(rng, density, dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), c, rng)
	}
	return x, u
}

// TestServeSparseMTTKRPMatchesDirect submits concurrent sparse requests
// (interleaved with dense ones on the same shapes) and checks every
// result against the direct kernel.
func TestServeSparseMTTKRPMatchesDirect(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	xs, us := sparseProblem(1, 0.05, 6, 15, 12, 10)
	xd, ud := problem(2, 6, 15, 12, 10)

	var tickets []*Ticket
	var wants []mat.View
	for r := 0; r < 3; r++ {
		for mode := 0; mode < 3; mode++ {
			tickets = append(tickets, s.SubmitMTTKRP(MTTKRPRequest{X: xs, Factors: us, Mode: mode}))
			wants = append(wants, core.SparseCompute(xs, us, mode, core.Options{}))
			tickets = append(tickets, s.SubmitMTTKRP(MTTKRPRequest{X: xd, Factors: ud, Mode: mode}))
			wants = append(wants, core.Compute(core.MethodAuto, xd, ud, mode, core.Options{}))
		}
	}
	for i, tk := range tickets {
		m, err := tk.MTTKRP()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		matsEqual(t, m, wants[i], "request")
	}
}

// TestServeSparseCostByNNZ pins the admission economics: a sparse request
// is priced by its stored entries, so it costs far less than a dense
// request of the same shape, and its cost is visible in the grant table
// under a "coo"-tagged shape key.
func TestServeSparseCostByNNZ(t *testing.T) {
	var model CostModel
	xs, _ := sparseProblem(3, 0.01, 8, 40, 30, 20)
	dense := model.MTTKRP([]int{40, 30, 20}, 8)
	sparse := model.MTTKRPFor(xs, 8)
	// The sparse estimate keeps a shape-proportional floor (the factor
	// matrices are read in full regardless of nnz), so the ratio is
	// bounded by the factor-byte term, not by density alone.
	if sparse <= 0 || sparse >= dense/8 {
		t.Fatalf("sparse cost %g not well under dense %g", sparse, dense)
	}

	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()

	// Occupy the only slot so the sparse submission stays observable in
	// the queue with its model cost.
	release := make(chan struct{})
	started := make(chan struct{})
	s.submitFunc("hold", 1, 1, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	_, us := sparseProblem(3, 0.01, 8, 40, 30, 20)
	tk := s.SubmitMTTKRP(MTTKRPRequest{X: xs, Factors: us, Mode: 0})

	st := s.Stats()
	found := false
	for _, r := range st.Requests {
		if r.Kind == "mttkrp" && strings.Contains(r.Key, "|coo") {
			found = true
			if r.Cost <= 0 || absRel(r.Cost, sparse) > 1e-9 {
				t.Fatalf("queued sparse request priced %g, want model estimate %g", r.Cost, sparse)
			}
		}
	}
	if !found {
		t.Fatalf("no coo-keyed mttkrp request in grant table: %+v", st.Requests)
	}
	close(release)
	if _, err := tk.MTTKRP(); err != nil {
		t.Fatal(err)
	}
}

func absRel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b != 0 {
		d /= b
	}
	return d
}

// TestServeSparseCP runs a sparse CP decomposition through the scheduler
// and checks it matches a direct ALSAny run with the same seed.
func TestServeSparseCP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	xs, _ := sparseProblem(4, 0.05, 2, 12, 10, 8)
	cfg := cpd.Config{Rank: 3, MaxIters: 4, Tol: -1, Seed: 7}
	res, err := s.SubmitCP(CPRequest{X: xs, Config: cfg}).CP()
	if err != nil {
		t.Fatal(err)
	}
	local, err := cpd.ALSAny(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != local.Iters {
		t.Fatalf("served %d iters, local %d", res.Iters, local.Iters)
	}
	for k := range res.K.Factors {
		matsEqual(t, res.K.Factors[k], local.K.Factors[k], "factor")
	}
}

// TestServeSparseDoesNotFuse pins that same-shape sparse requests coalesce
// into batches (lease amortization) but never build a KRP plan — fusion is
// a dense-only optimization.
func TestServeSparseDoesNotFuse(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 1})
	defer s.Close()
	xs, us := sparseProblem(5, 0.05, 4, 10, 9, 8)

	release := make(chan struct{})
	started := make(chan struct{})
	s.submitFunc("hold", 1, 1, func(parallel.Executor) {
		close(started)
		<-release
	})
	<-started

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tickets = append(tickets, s.SubmitMTTKRP(MTTKRPRequest{X: xs, Factors: us, Mode: 1}))
	}
	close(release)
	want := core.SparseCompute(xs, us, 1, core.Options{})
	for _, tk := range tickets {
		m, err := tk.MTTKRP()
		if err != nil {
			t.Fatal(err)
		}
		matsEqual(t, m, want, "batched sparse")
	}
	st := s.Stats()
	if st.Coalesced == 0 {
		t.Fatal("same-shape sparse requests did not coalesce")
	}
	if st.Fused != 0 {
		t.Fatalf("%d sparse batches fused; fusion is dense-only", st.Fused)
	}
}
