package serve

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// bandwidthHeavy is a cost model whose spill factor is large enough that
// the scheduler packs any budget wider than one domain: with the byte
// term dominating and a 4× cross-domain penalty, SpillFactor approaches
// 4, far above the width gain of spilling on the small test topologies.
var bandwidthHeavy = CostModel{ByteWeight: 16, CrossDomainPenalty: 4}

// TestPlacementBitIdentical is the -numa=on vs off property test:
// identical request streams against a placed and a flat server — same
// team width, same cost model — must produce math.Float64bits-identical
// MTTKRP and CP results across methods × modes × widths, including
// widths where the placed scheduler packs the grant into one domain.
func TestPlacementBitIdentical(t *testing.T) {
	topo, err := parallel.ParseTopology("0-1;2-3")
	if err != nil {
		t.Fatal(err)
	}
	x1, u1 := problem(11, 6, 12, 10, 8)
	x2, u2 := problem(12, 5, 7, 9, 6, 5)

	for _, workers := range []int{2, 4, 5} {
		flat := New(Config{Workers: workers, Cost: bandwidthHeavy})
		placed := New(Config{Workers: workers, Cost: bandwidthHeavy, Topology: topo})

		type cs struct {
			x      *tensor.Dense
			u      []mat.View
			mode   int
			method core.Method
		}
		var cases []cs
		for mode := 0; mode < 3; mode++ {
			cases = append(cases, cs{x1, u1, mode, core.MethodOneStep})
		}
		for mode := 0; mode < 4; mode++ {
			cases = append(cases, cs{x2, u2, mode, core.MethodTwoStep})
		}
		// One request in flight at a time, so both servers grant the same
		// deterministic budget; the A/B then isolates placement.
		for i, c := range cases {
			label := fmt.Sprintf("workers %d case %d (mode %d method %v)", workers, i, c.mode, c.method)
			req := MTTKRPRequest{X: c.x, Factors: c.u, Mode: c.mode, Method: c.method}
			want, err := flat.SubmitMTTKRP(req).MTTKRP()
			if err != nil {
				t.Fatalf("%s: flat: %v", label, err)
			}
			got, err := placed.SubmitMTTKRP(req).MTTKRP()
			if err != nil {
				t.Fatalf("%s: placed: %v", label, err)
			}
			bitsEqual(t, got, want, label)
		}

		cpCfg := cpd.Config{Rank: 3, MaxIters: 4, Tol: -1, Seed: 7}
		want, err := flat.SubmitCP(CPRequest{X: x1, Config: cpCfg}).CP()
		if err != nil {
			t.Fatal(err)
		}
		got, err := placed.SubmitCP(CPRequest{X: x1, Config: cpCfg}).CP()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Fit) != math.Float64bits(want.Fit) {
			t.Fatalf("workers %d: CP fit bits differ: %g vs %g", workers, got.Fit, want.Fit)
		}
		for m := range want.K.Factors {
			bitsEqual(t, got.K.Factors[m], want.K.Factors[m], fmt.Sprintf("workers %d CP factor %d", workers, m))
		}

		if workers > 3 { // domainCap is 3 on this topology: wider grants must have packed
			if st := placed.Stats(); st.DomainPacked == 0 {
				t.Fatalf("workers %d: placed server never domain-packed; the A/B did not exercise the clamp", workers)
			}
		}
		if st := flat.Stats(); st.DomainPacked != 0 {
			t.Fatalf("workers %d: flat server reports %d packed batches", workers, st.DomainPacked)
		}
		placed.Close()
		flat.Close()
	}
}

// TestPlacementDomainPacking pins the budget-split policy: under a
// bandwidth-heavy cost model a grant wider than one domain is packed
// (physical goroutines capped at the domain width, budget untouched) and
// counted; flat servers and the EvenSplit baseline never pack.
func TestPlacementDomainPacking(t *testing.T) {
	topo, err := parallel.ParseTopology("0-1;2-3")
	if err != nil {
		t.Fatal(err)
	}
	x, u := problem(13, 6, 12, 10, 8)
	run := func(cfg Config) Stats {
		s := New(cfg)
		defer s.Close()
		for i := 0; i < 3; i++ {
			if _, err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1}).MTTKRP(); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}

	if st := run(Config{Workers: 4, Cost: bandwidthHeavy, Topology: topo}); st.DomainPacked == 0 {
		t.Fatalf("placed cost-aware server: DomainPacked = 0, want ≥ 1 (stats %+v)", st)
	}
	if st := run(Config{Workers: 4, Cost: bandwidthHeavy}); st.DomainPacked != 0 {
		t.Fatalf("flat server: DomainPacked = %d, want 0", st.DomainPacked)
	}
	if st := run(Config{Workers: 4, Cost: bandwidthHeavy, Topology: topo, EvenSplit: true}); st.DomainPacked != 0 {
		t.Fatalf("EvenSplit server: DomainPacked = %d, want 0 (baseline must stay untouched)", st.DomainPacked)
	}
}

// BenchmarkPlacementAB is the -numa A/B in the bench artifact: the same
// serving workload on a flat and on a placed (2-domain) scheduler. On a
// genuinely multi-socket host the placed leg holds its bytes on one node;
// on anything else it measures the placement bookkeeping overhead, which
// must stay in the noise.
func BenchmarkPlacementAB(b *testing.B) {
	topo, err := parallel.ParseTopology("0-1;2-3")
	if err != nil {
		b.Fatal(err)
	}
	x, u := problem(42, 16, 48, 40, 36)
	for _, leg := range []struct {
		name string
		topo *parallel.Topology
	}{{"numa=off", nil}, {"numa=on", topo}} {
		b.Run(leg.name, func(b *testing.B) {
			s := New(Config{Workers: 4, Topology: leg.topo})
			defer s.Close()
			dst := mat.NewDense(x.Dim(1), 16)
			if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dst}).Err(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dst}).Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
