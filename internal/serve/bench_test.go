package serve

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// BenchmarkServeThroughput measures aggregate request throughput with 1, 4
// and 16 concurrent submitters sharing one serving runtime on one shape:
// the batching + admission steady state. Each op is one MTTKRP request.
func BenchmarkServeThroughput(b *testing.B) {
	x, u := problem(42, 16, 48, 40, 36)
	for _, conc := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			s := New(Config{})
			defer s.Close()
			// Per-submitter retained dst: the serving steady state.
			dsts := make([]mat.View, conc)
			for i := range dsts {
				dsts[i] = mat.NewDense(x.Dim(1), 16)
			}
			// Warm the shape-keyed workspaces.
			if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dsts[0]}).Err(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += conc {
						if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dsts[w]}).Err(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkMixedAdmission is the tail-latency fingerprint of the
// admission policy on a heterogeneous workload, recorded in the CI bench
// artifact (BENCH_<sha>.json) so the perf trajectory captures small-
// request latency under a large-request convoy, not just kernel time.
// Each op is one round: one large MTTKRP fired asynchronously, then eight
// small requests latency-measured while it runs. The small-p50/p99 custom
// metrics are the comparison axis between the cost-aware and even-split
// sub-benchmarks.
func BenchmarkMixedAdmission(b *testing.B) {
	xl, ul := problem(42, 16, 48, 40, 36)
	xs, us := problem(43, 4, 12, 10, 8)
	for _, policy := range []struct {
		name string
		even bool
	}{{"cost-aware", false}, {"even-split", true}} {
		b.Run(policy.name, func(b *testing.B) {
			s := New(Config{EvenSplit: policy.even})
			defer s.Close()
			// Warm both shape-keyed workspace sets and the rate estimate.
			if err := s.SubmitMTTKRP(MTTKRPRequest{X: xl, Factors: ul, Mode: 1}).Err(); err != nil {
				b.Fatal(err)
			}
			if err := s.SubmitMTTKRP(MTTKRPRequest{X: xs, Factors: us, Mode: 1}).Err(); err != nil {
				b.Fatal(err)
			}
			dstL := mat.NewDense(xl.Dim(1), 16)
			dstS := mat.NewDense(xs.Dim(1), 4)
			lats := make([]time.Duration, 0, 8*b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				large := s.SubmitMTTKRP(MTTKRPRequest{X: xl, Factors: ul, Mode: 1, Dst: dstL})
				for j := 0; j < 8; j++ {
					t0 := time.Now()
					if err := s.SubmitMTTKRP(MTTKRPRequest{X: xs, Factors: us, Mode: 1, Dst: dstS}).Err(); err != nil {
						b.Fatal(err)
					}
					lats = append(lats, time.Since(t0))
				}
				if err := large.Err(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			q := func(p float64) float64 {
				return float64(lats[int(p*float64(len(lats)-1))].Microseconds()) / 1e3
			}
			b.ReportMetric(q(0.50), "small-p50-ms")
			b.ReportMetric(q(0.99), "small-p99-ms")
		})
	}
}

// BenchmarkServeVsNaivePools is the acceptance comparison: 4 concurrent
// same-shape MTTKRP streams through the serving runtime versus 4
// independent callers that each spin up (and tear down) their own
// full-width NewPool(0), the pre-serving concurrency pattern. Each op is
// one request per stream. The "mid" shape is compute-bound (the win there
// comes from not oversubscribing cores: the naive pattern runs
// 4×GOMAXPROCS workers on GOMAXPROCS cores); the "small" shape is
// setup-bound (the win comes from amortizing pool spin-up and workspace
// warmup across the batch), which shows on any core count.
func BenchmarkServeVsNaivePools(b *testing.B) {
	const conc = 4
	for _, size := range []struct {
		name    string
		dims    []int
		workers int // 0 = GOMAXPROCS on both sides
	}{
		{"mid", []int{48, 40, 36}, 0},
		{"small", []int{12, 10, 8}, 4},
		// width4 pins both sides to the configuration a 4-core deployment
		// uses — server team of 4 vs four 4-wide private pools — so the
		// oversubscription penalty the scheduler avoids (16 workers where
		// 4 belong) is visible regardless of the host's core count.
		{"width4", []int{48, 40, 36}, 4},
	} {
		x, u := problem(42, 16, size.dims...)
		b.Run(size.name+"/served", func(b *testing.B) {
			s := New(Config{Workers: size.workers})
			defer s.Close()
			dsts := make([]mat.View, conc)
			for i := range dsts {
				dsts[i] = mat.NewDense(x.Dim(1), 16)
			}
			if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dsts[0]}).Err(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: 1, Dst: dsts[w]}).Err(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
		b.Run(size.name+"/naive-pools", func(b *testing.B) {
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					dst := mat.NewDense(x.Dim(1), 16)
					for i := 0; i < b.N; i++ {
						pool := parallel.NewPool(size.workers)
						core.ComputeInto(dst, core.MethodAuto, x, u, 1, core.Options{Pool: pool})
						pool.Close()
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkFusedBatch is the batch-level KRP fusion acceptance metric,
// recorded in the CI bench artifact: each op admits one batch of 8
// coalesced same-factor MTTKRP requests (piled up behind a blocker, the
// deterministic way to form a batch) and waits for all of them. The
// fused/unfused sub-benchmarks differ only in Config.DisableFusion; the
// req-ms metric is the per-request latency inside the batch and
// fused-hit-rate is the fraction of MTTKRP batches that executed on a
// shared KRP plan (1 when fusion is on, 0 off). The "mid" shape is the
// serving default at its external mode (the ALS inner-loop case the
// batcher coalesces; KRP ≈ 1/(2·I_n) of the flops); "krp-heavy" is an
// order-5 cube where the scalar KRP iterator is a large share of the
// runtime and fusion pays the most.
func BenchmarkFusedBatch(b *testing.B) {
	const members = 8
	for _, shape := range []struct {
		name string
		dims []int
		rank int
		mode int
	}{
		{"mid", []int{48, 40, 36}, 16, 0},
		{"krp-heavy", []int{8, 8, 8, 8, 8}, 32, 0},
	} {
		x, u := problem(42, shape.rank, shape.dims...)
		for _, policy := range []struct {
			name   string
			nofuse bool
		}{{"fused", false}, {"unfused", true}} {
			b.Run(shape.name+"/"+policy.name, func(b *testing.B) {
				s := New(Config{Workers: 4, MaxActive: 1, DisableFusion: policy.nofuse})
				defer s.Close()
				dsts := make([]mat.View, members)
				for i := range dsts {
					dsts[i] = mat.NewDense(x.Dim(shape.mode), shape.rank)
				}
				// Warm the shape-keyed workspaces and the plan arena.
				if err := s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: shape.mode, Dst: dsts[0]}).Err(); err != nil {
					b.Fatal(err)
				}
				var reqNs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					release := make(chan struct{})
					started := make(chan struct{})
					blocker := s.submitFunc("", 0, 0, func(parallel.Executor) {
						close(started)
						<-release
					})
					<-started
					tickets := make([]*Ticket, members)
					for j := range tickets {
						tickets[j] = s.SubmitMTTKRP(MTTKRPRequest{X: x, Factors: u, Mode: shape.mode, Dst: dsts[j]})
					}
					t0 := time.Now()
					close(release)
					if err := blocker.Err(); err != nil {
						b.Fatal(err)
					}
					for _, tk := range tickets {
						if err := tk.Err(); err != nil {
							b.Fatal(err)
						}
					}
					reqNs += time.Since(t0).Nanoseconds()
				}
				b.StopTimer()
				st := s.Stats()
				mttkrpBatches := st.Batches - b.N - 1 // minus blockers and warmup
				if mttkrpBatches < 1 {
					mttkrpBatches = 1
				}
				b.ReportMetric(float64(st.Fused)/float64(mttkrpBatches), "fused-hit-rate")
				b.ReportMetric(float64(reqNs)/1e6/float64(b.N*members), "req-ms")
			})
		}
	}
}
