package serve

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// Config sizes a Server.
type Config struct {
	// Workers is the total team width of the server's pool (caller slots
	// included); 0 selects GOMAXPROCS.
	Workers int
	// MinWorkers is the admission policy's per-request floor; requests
	// never run narrower than this budget. Default 1.
	MinWorkers int
	// MaxActive caps concurrently executing requests (batches); further
	// requests queue. 0 selects Workers / MinWorkers — the widest
	// concurrency at which every active request can still hold its floor.
	MaxActive int
	// DisableBatching turns off same-shape MTTKRP coalescing; every
	// request becomes its own batch.
	DisableBatching bool
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Submitted counts accepted requests; Completed counts finished ones
	// (Failed of those completed with an error).
	Submitted, Completed, Failed int
	// Batches counts executed batches; Coalesced counts requests that
	// joined an existing same-shape batch instead of opening their own.
	Batches, Coalesced int
	// Active and Queued describe the instant of the snapshot; PeakActive
	// is the high-water mark of concurrently executing batches.
	Active, Queued, PeakActive int
}

// Server is the serving runtime: an admission-controlled scheduler plus a
// same-shape batcher over one exclusively-owned worker pool. Create with
// New, submit with SubmitMTTKRP/SubmitCP, and Close when done.
type Server struct {
	pool       *parallel.Pool
	width      int // pool team width the admission policy divides
	minWorkers int
	maxActive  int
	batching   bool

	mu       sync.Mutex
	open     map[string]*batch // same-shape batches still accepting joiners
	queue    []*batch          // FIFO admission queue
	active   map[*batch]*parallel.Lease
	stats    Stats
	draining bool
	closed   bool
	drained  chan struct{}  // closed once draining and no queued/active work remains
	wg       sync.WaitGroup // running batch executors
}

// batch is one unit of admission: one or more requests that execute
// back-to-back on a single lease. Same-shape MTTKRP requests share a batch
// (and through its shape key, a workspace set); CP requests and unbatched
// servers get singleton batches.
type batch struct {
	key   string // shape key; "" never coalesces
	items []*item
}

// item is one submitted request plus its completion ticket.
type item struct {
	mt *MTTKRPRequest
	cp *CPRequest
	fn func(parallel.Executor) // test/instrumentation hook requests
	tk *Ticket
}

// New creates a serving runtime with its own worker pool.
func New(cfg Config) *Server {
	width := parallel.Effective(cfg.Workers)
	minW := cfg.MinWorkers
	if minW < 1 {
		minW = 1
	}
	if minW > width {
		minW = width
	}
	maxActive := cfg.MaxActive
	if maxActive <= 0 {
		maxActive = width / minW
	}
	if maxActive < 1 {
		maxActive = 1
	}
	return &Server{
		pool:       parallel.NewPool(width),
		width:      width,
		minWorkers: minW,
		maxActive:  maxActive,
		batching:   !cfg.DisableBatching,
		open:       make(map[string]*batch),
		active:     make(map[*batch]*parallel.Lease),
		drained:    make(chan struct{}),
	}
}

// Workers returns the server pool's team width.
func (s *Server) Workers() int { return s.width }

// Stats returns a snapshot of the scheduler counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Active = len(s.active)
	st.Queued = len(s.queue)
	return st
}

// SubmitMTTKRP admits an MTTKRP request and returns its ticket
// immediately; the computation runs when the scheduler grants a lease.
// Same-shape requests submitted while a batch for that shape is still
// waiting for admission coalesce onto it.
func (s *Server) SubmitMTTKRP(req MTTKRPRequest) *Ticket {
	if err := validateMTTKRP(req); err != nil {
		return failedTicket(err)
	}
	it := &item{mt: &req, tk: newTicket()}
	s.enqueue(shapeKey(req), it)
	return it.tk
}

// SubmitCP admits a CP-ALS request. CP runs are never coalesced — each is
// its own unit of admission — but they share the worker pool and are
// budgeted by the same policy.
func (s *Server) SubmitCP(req CPRequest) *Ticket {
	if req.X == nil {
		return failedTicket(fmt.Errorf("serve: nil tensor"))
	}
	it := &item{cp: &req, tk: newTicket()}
	s.enqueue("", it)
	return it.tk
}

// submitFunc admits an arbitrary function under a shape key. Tests use it
// to occupy the scheduler deterministically.
func (s *Server) submitFunc(key string, fn func(parallel.Executor)) *Ticket {
	it := &item{fn: fn, tk: newTicket()}
	s.enqueue(key, it)
	return it.tk
}

// enqueue joins an open same-shape batch or opens a new one, then kicks
// the scheduler.
func (s *Server) enqueue(key string, it *item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		it.tk.fail(ErrDraining)
		return
	}
	s.stats.Submitted++
	if key != "" && s.batching {
		if b, ok := s.open[key]; ok {
			b.items = append(b.items, it)
			s.stats.Coalesced++
			return
		}
	}
	b := &batch{key: key, items: []*item{it}}
	if key != "" && s.batching {
		s.open[key] = b
	}
	s.queue = append(s.queue, b)
	s.scheduleLocked()
}

// budgetLocked is the admission policy: the pool's width divided evenly
// across `active` concurrent requests, floored at MinWorkers and capped at
// the full width.
func (s *Server) budgetLocked(active int) int {
	if active < 1 {
		active = 1
	}
	b := s.width / active
	if b < s.minWorkers {
		b = s.minWorkers
	}
	if b > s.width {
		b = s.width
	}
	return b
}

// scheduleLocked admits queued batches while capacity remains: each gets a
// lease sized by the admission policy, and every already-active lease is
// rebalanced to the new budget. Callers hold s.mu.
func (s *Server) scheduleLocked() {
	for len(s.queue) > 0 && len(s.active) < s.maxActive {
		b := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		if b.key != "" {
			// The batch stops accepting joiners the moment it is granted
			// a lease; later same-shape arrivals open the next batch.
			delete(s.open, b.key)
		}
		lease := s.pool.Lease(s.budgetLocked(len(s.active) + 1))
		s.active[b] = lease
		s.stats.Batches++
		if len(s.active) > s.stats.PeakActive {
			s.stats.PeakActive = len(s.active)
		}
		s.rebalanceLocked()
		s.wg.Add(1)
		go s.run(b, lease)
	}
}

// rebalanceLocked retargets every active lease to the current per-request
// budget. Width changes apply at each lease's next region boundary; workers
// freed by a shrinking lease are picked up by growing ones on their next
// dispatch. Callers hold s.mu.
func (s *Server) rebalanceLocked() {
	budget := s.budgetLocked(len(s.active))
	for _, lease := range s.active {
		lease.Resize(budget)
	}
}

// run executes one batch on its lease, then returns the lease and admits
// more work.
func (s *Server) run(b *batch, lease *parallel.Lease) {
	defer s.wg.Done()
	if b.key != "" {
		lease.SetWorkspaceKey("serve:" + b.key)
	}
	for _, it := range b.items {
		it.execute(lease)
	}
	lease.Close()
	s.mu.Lock()
	delete(s.active, b)
	for _, it := range b.items {
		s.stats.Completed++
		if it.tk.err != nil {
			s.stats.Failed++
		}
	}
	s.rebalanceLocked()
	s.scheduleLocked()
	s.maybeDrainedLocked()
	s.mu.Unlock()
}

// maybeDrainedLocked signals Drain waiters once admission has stopped and
// the last admitted batch has finished. Callers hold s.mu.
func (s *Server) maybeDrainedLocked() {
	if !s.draining || len(s.queue) != 0 || len(s.active) != 0 {
		return
	}
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// Drain stops admission and waits for every already-accepted request —
// running or still queued — to complete. Submissions during and after the
// drain fail with ErrDraining. Drain is idempotent and safe to call
// concurrently; Close after Drain releases the pool without failing
// anything.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.maybeDrainedLocked()
	s.mu.Unlock()
	<-s.drained
	s.wg.Wait()
}

// execute runs one request on the granted executor, recovering kernel
// panics (shape mismatches and the like) into the ticket.
func (it *item) execute(ex parallel.Executor) {
	tk := it.tk
	defer func() {
		if r := recover(); r != nil {
			tk.err = fmt.Errorf("serve: request failed: %v", r)
		}
		close(tk.done)
	}()
	switch {
	case it.mt != nil:
		req := it.mt
		dst := req.Dst
		if dst.Data == nil {
			dst = mat.NewDense(req.X.Dim(req.Mode), req.Factors[0].C)
		}
		// Threads = 0 resolves to the lease's granted budget.
		tk.m = core.ComputeInto(dst, req.Method, req.X, req.Factors, req.Mode, core.Options{Pool: ex})
	case it.cp != nil:
		cfg := it.cp.Config
		cfg.Pool = ex
		cfg.Threads = 0
		tk.cp, tk.err = cpd.ALS(it.cp.X, cfg)
	default:
		it.fn(ex)
	}
}

// Close fails all queued requests, waits for running batches to finish,
// and releases the worker pool. Submissions after Close fail with
// ErrDraining. Close is idempotent. For a graceful stop that completes
// queued work instead of failing it, call Drain first.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.draining = true
	pending := s.queue
	s.queue = nil
	clear(s.open)
	s.maybeDrainedLocked()
	for _, b := range pending {
		// Queued requests complete (with ErrClosed) like any others, so
		// Submitted == Completed still holds after a drain-and-close.
		s.stats.Completed += len(b.items)
		s.stats.Failed += len(b.items)
	}
	s.mu.Unlock()
	for _, b := range pending {
		for _, it := range b.items {
			it.tk.fail(ErrClosed)
		}
	}
	s.wg.Wait()
	s.pool.Close()
}

// shapeKey is the batching signature of an MTTKRP request: tensor shape,
// rank, mode and method. Two requests with equal keys run correctly on one
// warmed workspace set.
func shapeKey(r MTTKRPRequest) string {
	key := make([]byte, 0, 48)
	for i := 0; i < r.X.Order(); i++ {
		key = fmt.Appendf(key, "%dx", r.X.Dim(i))
	}
	return string(fmt.Appendf(key, "|c%d|n%d|m%d", r.Factors[0].C, r.Mode, int(r.Method)))
}
