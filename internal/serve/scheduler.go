package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/krp"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Config sizes a Server.
type Config struct {
	// Workers is the total team width of the server's pool (caller slots
	// included); 0 selects GOMAXPROCS.
	Workers int
	// MinWorkers is the admission policy's per-request floor; requests
	// never run narrower than this budget. Default 1.
	MinWorkers int
	// MaxActive caps concurrently executing requests (batches); further
	// requests queue. 0 selects Workers / MinWorkers — the widest
	// concurrency at which every active request can still hold its floor.
	MaxActive int
	// DisableBatching turns off same-shape MTTKRP coalescing; every
	// request becomes its own batch.
	DisableBatching bool
	// MaxBatch caps the requests one batch may coalesce; a full batch
	// stops accepting joiners and the next same-key arrival opens a
	// fresh one. The cap is what keeps the aging queue's starvation
	// bound real: a batch's score divides by its total service estimate
	// (cost × members), so an uncapped batch fed by a steady joiner
	// stream would plateau instead of aging upward, starving its
	// earliest members behind fresh traffic. With the cap, a queued
	// batch waits at most ~MaxBatch · costRatio · AgeBias behind
	// continuous arrivals. It also bounds the batch's non-preemptible
	// back-to-back service time on one lease. 0 selects 32.
	MaxBatch int
	// DisableFusion turns off batch-level KRP fusion: coalesced batches
	// run back-to-back recomputing their Khatri-Rao intermediates per
	// member (the pre-fusion behavior, kept as the measured baseline).
	// With fusion on (the default), every MTTKRP request carries a value
	// fingerprint of the non-target factor set; batches still coalesce
	// by shape alone (the lease/workspace amortization win is
	// factor-independent), and the batch executor builds a shared KRP
	// plan when at least two members fingerprint alike — only genuinely
	// fusable members consume it (per-member value matching), the rest
	// compute their own KRP exactly as before.
	DisableFusion bool

	// Cost selects the request cost model for cost-aware admission; the
	// zero value is the default model (see CostModel).
	Cost CostModel
	// MaxShare caps one request's share of the pool width under
	// cost-aware admission (0 < MaxShare ≤ 1; 0 selects 1, i.e. no cap
	// below the full width). The cap applies unconditionally — a lone
	// request on an idle server is capped too — so a MaxShare below 1
	// deliberately reserves warm headroom for the next arrival at the
	// price of single-tenant throughput.
	MaxShare float64
	// AgeBias is the virtual head start every queued request gets in the
	// aging score score = weight · (age + AgeBias) / cost. Smaller values
	// favor shortest-job-first more aggressively (small requests overtake
	// a convoy of large ones immediately); larger values approach FIFO. A
	// request costing k× more than the smallest waits at most ~k·AgeBias
	// behind a continuous stream of small arrivals before its age wins.
	// 0 selects 1ms.
	AgeBias time.Duration
	// EvenSplit reverts admission to the historical policy — FIFO queue
	// order and worker budgets of width ÷ active regardless of request
	// cost. It exists as the measured baseline for the cost-aware policy
	// (mttkrp-bench -serve -mix tabulates both).
	EvenSplit bool

	// Topology places the server's worker pool: slots carry placement
	// domains, leases pack into one domain before spilling, arenas
	// first-touch on their owning worker, and the budget split becomes
	// domain-aware (a cost-share budget wider than one domain runs on a
	// single domain's goroutines — striding over the extra logical
	// indices, so results are untouched — unless the extra width beats
	// the cost model's cross-domain spill factor). nil — or a
	// single-domain topology, which is what
	// parallel.DetectTopology returns on non-NUMA hosts — keeps the flat
	// slot model with zero behavior change. The cost-aware clamp does not
	// apply under EvenSplit (the historical baseline stays untouched).
	Topology *parallel.Topology
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Submitted counts accepted requests; Completed counts finished ones
	// (Failed of those completed with an error).
	Submitted, Completed, Failed int
	// Batches counts executed batches; Coalesced counts requests that
	// joined an existing same-shape batch instead of opening their own.
	Batches, Coalesced int
	// Fused counts batches that executed on a shared KRP plan (the
	// Khatri-Rao intermediate computed once and consumed by the members
	// whose factor set matches it); FusedSavedFlops prices the Hadamard
	// flops those batches avoided — (plan rows served − one fill) × rank,
	// from the plan's own hit counters, so partially-matching batches
	// are priced by what the plan actually served. FusedFallbacks counts
	// fusable batches whose plan build failed and fell back to the
	// unfused member loop (a persistent rise means a shape class the
	// plan cannot serve — observable degradation, not an error).
	Fused           int
	FusedSavedFlops float64
	FusedFallbacks  int
	// PlanCacheHits counts batches served by a KRP plan retained from an
	// earlier batch (same shape key, value-matching factor set): the plan
	// crossed a batch boundary, so the batch skipped its fill entirely.
	PlanCacheHits int
	// Active and Queued describe the instant of the snapshot; PeakActive
	// and PeakQueued are the high-water marks of concurrently executing
	// batches and of the admission queue depth.
	Active, Queued, PeakActive, PeakQueued int
	// Reordered counts admissions where the aging policy let a request
	// overtake an older queued one (non-FIFO admissions); it stays 0
	// under EvenSplit.
	Reordered int
	// DomainPacked counts batches whose physical workers were packed into
	// a single placement domain because the cost model's spill factor
	// said the cross-domain bandwidth penalty would outweigh the extra
	// goroutines. Packing caps goroutines, not the worker budget — the
	// kernel-visible width and the results are those of the unpacked
	// grant. It stays 0 on flat (nil/single-domain topology) servers.
	DomainPacked int
	// OldestQueuedMs is the age of the oldest request still waiting for
	// admission at the snapshot (0 when the queue is empty).
	OldestQueuedMs float64
	// MaxQueueWaitMs is the longest admission wait any batch has
	// experienced so far — the tail-latency fingerprint of the policy.
	MaxQueueWaitMs float64
	// Requests details the currently active and queued batches: granted
	// worker budget (0 while queued), model cost, and queue age.
	Requests []RequestStat
}

// RequestStat describes one active or queued batch in a Stats snapshot.
type RequestStat struct {
	// Kind is "mttkrp", "cp" or "func"; Key is the batching shape key
	// ("" for uncoalesced kinds); Items is the number of coalesced
	// requests riding the batch.
	Kind  string
	Key   string
	Items int
	// Cost is the per-request admission cost (model estimate or hint).
	Cost float64
	// Budget is the granted worker budget; 0 means still queued.
	Budget int
	// QueuedMs is the time the batch has spent (or spent, if active)
	// waiting for admission.
	QueuedMs float64
}

// Server is the serving runtime: an admission-controlled scheduler plus a
// same-shape batcher over one exclusively-owned worker pool. Create with
// New, submit with SubmitMTTKRP/SubmitCP, and Close when done.
//
// Admission is cost-aware: each request's worker budget is the pool width
// weighted by its share of the active requests' total cost (floored at
// MinWorkers, capped at MaxShare of the width), and the admission queue is
// ordered by an aging score rather than FIFO, so small requests are not
// convoyed behind large ones and large ones cannot starve. Budgets are
// retargeted on every admit and finish, and running requests apply the
// change at their next kernel phase boundary (between ALS sweeps, between
// MTTKRP mode computations) via parallel.Lease.Reconcile.
type Server struct {
	pool       *parallel.Pool
	width      int // pool team width the admission policy divides
	minWorkers int
	maxActive  int
	maxBatch   int
	batching   bool
	fusion     bool
	evenSplit  bool
	cost       CostModel
	shareCap   int           // precomputed MaxShare · width, clamped to [minWorkers, width]
	domainCap  int           // widest single-domain lease (width on flat pools)
	ageBias    time.Duration // aging head start (resolved, > 0)

	mu       sync.Mutex
	open     map[string]*batch // same-shape batches still accepting joiners
	queue    []*batch          // admission queue (aging-scored; FIFO under EvenSplit)
	active   map[*batch]*grant
	planFP   map[string]uint64 // shape key → factor fingerprint of its last batch (plan LRU)
	planAge  []string          // planFP keys in recency order, oldest first
	rate     float64           // EMA of served cost per second per request (ProjectedWait)
	stats    Stats
	draining bool
	closed   bool
	drained  chan struct{}  // closed once draining and no queued/active work remains
	wg       sync.WaitGroup // running batch executors
}

// batch is one unit of admission: one or more requests that execute
// back-to-back on a single lease. Same-shape MTTKRP requests share a batch
// (and through its shape key, a workspace set); CP requests and unbatched
// servers get singleton batches.
type batch struct {
	key      string // shape key; "" never coalesces
	kind     string // "mttkrp", "cp" or "func"
	items    []*item
	cost     float64   // per-item admission cost (max over joined items)
	weight   float64   // aging priority weight (max over joined items)
	spill    float64   // cross-domain spill factor ≥ 1 (max over joined items)
	enqueued time.Time // when the batch entered the admission queue
}

// totalCost is the batch's full service estimate: every coalesced item
// runs back-to-back on the lease.
func (b *batch) totalCost() float64 { return b.cost * float64(len(b.items)) }

// spillFactor is the batch's cross-domain spill factor (≥ 1); batches
// submitted before placement existed (or by kinds that never price
// placement) default to 1, i.e. spilling is free and never clamped.
func (b *batch) spillFactor() float64 {
	if b.spill > 1 {
		return b.spill
	}
	return 1
}

// grant is one active batch's execution state: its lease and the budget
// the policy most recently assigned it.
type grant struct {
	lease   *parallel.Lease
	budget  int
	packed  bool // budget was clamped into one placement domain
	started time.Time
}

// item is one submitted request plus its completion ticket. fp is the
// value fingerprint of the MTTKRP request's non-target factor set (0 =
// unfusable method or unwalkable factors): the batch executor builds a
// shared KRP plan when at least two members fingerprint alike.
type item struct {
	mt *MTTKRPRequest
	cp *CPRequest
	fn func(parallel.Executor) // test/instrumentation hook requests
	tk *Ticket
	fp uint64
}

// New creates a serving runtime with its own worker pool.
func New(cfg Config) *Server {
	width := parallel.Effective(cfg.Workers)
	minW := cfg.MinWorkers
	if minW < 1 {
		minW = 1
	}
	if minW > width {
		minW = width
	}
	maxActive := cfg.MaxActive
	if maxActive <= 0 {
		maxActive = width / minW
	}
	if maxActive < 1 {
		maxActive = 1
	}
	share := cfg.MaxShare
	if share <= 0 || share > 1 {
		share = 1
	}
	shareCap := int(share*float64(width) + 0.5)
	if shareCap < minW {
		shareCap = minW
	}
	if shareCap > width {
		shareCap = width
	}
	ageBias := cfg.AgeBias
	if ageBias <= 0 {
		ageBias = time.Millisecond
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 32
	}
	pool := parallel.NewPoolPlaced(width, cfg.Topology)
	return &Server{
		pool:       pool,
		domainCap:  pool.MaxDomainWidth(),
		width:      width,
		minWorkers: minW,
		maxActive:  maxActive,
		maxBatch:   maxBatch,
		batching:   !cfg.DisableBatching,
		fusion:     !cfg.DisableBatching && !cfg.DisableFusion,
		evenSplit:  cfg.EvenSplit,
		cost:       cfg.Cost,
		shareCap:   shareCap,
		ageBias:    ageBias,
		open:       make(map[string]*batch),
		active:     make(map[*batch]*grant),
		planFP:     make(map[string]uint64),
		drained:    make(chan struct{}),
	}
}

// Workers returns the server pool's team width.
func (s *Server) Workers() int { return s.width }

// Model returns the server's request cost model, so front ends (the HTTP
// transport) can price a request from its header before admitting it.
func (s *Server) Model() CostModel { return s.cost }

// Stats returns a snapshot of the scheduler counters, including the
// per-request grant table (active budgets and queue ages).
func (s *Server) Stats() Stats {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Active = len(s.active)
	st.Queued = len(s.queue)
	st.Requests = make([]RequestStat, 0, len(s.active)+len(s.queue))
	for b, g := range s.active {
		st.Requests = append(st.Requests, RequestStat{
			Kind: b.kind, Key: b.key, Items: len(b.items), Cost: b.cost,
			Budget:   g.budget,
			QueuedMs: msBetween(b.enqueued, g.started),
		})
	}
	for _, b := range s.queue {
		age := msBetween(b.enqueued, now)
		st.Requests = append(st.Requests, RequestStat{
			Kind: b.kind, Key: b.key, Items: len(b.items), Cost: b.cost,
			QueuedMs: age,
		})
		if age > st.OldestQueuedMs {
			st.OldestQueuedMs = age
		}
	}
	return st
}

func msBetween(from, to time.Time) float64 {
	return float64(to.Sub(from).Microseconds()) / 1e3
}

// SubmitMTTKRP admits an MTTKRP request and returns its ticket
// immediately; the computation runs when the scheduler grants a lease.
// Same-shape requests submitted while a batch for that shape is still
// waiting for admission coalesce onto it.
func (s *Server) SubmitMTTKRP(req MTTKRPRequest) *Ticket {
	if err := validateMTTKRP(req); err != nil {
		return failedTicket(err)
	}
	it := &item{mt: &req, tk: newTicket()}
	flops, bytes := s.cost.PartsFor(req.X, req.Factors[0].C)
	cost := costOf(req.CostHint, s.cost.combine(flops, bytes))
	// The spill factor comes from the model's flop/byte split even when an
	// explicit CostHint overrides the scalar: the hint re-prices the
	// request's magnitude, not the shape of its bandwidth sensitivity.
	spill := s.cost.SpillFactor(flops, bytes)
	if _, dense := req.X.(*tensor.Dense); dense && s.fusion && core.PlanFusable(req.Method) {
		// Fingerprint the factors the mode-n KRP is built from, by
		// value. Batches coalesce by shape alone (amortizing lease and
		// workspace across any same-shape traffic, factors regardless);
		// the fingerprint decides at execution which members can share
		// one KRP plan, so only genuinely fusable requests coalesce
		// into a fused plan while the rest of the batch runs unfused.
		// Sparse requests never fingerprint — the sparse kernel has no
		// KRP intermediate to share (fp stays 0, so fuseSeed skips them
		// and runFused's dense assertion below always holds).
		if fp, ok := fuseFingerprint(&req); ok {
			it.fp = fp
		}
	}
	s.enqueue(shapeKey(req), "mttkrp", it, cost, weightOf(req.Weight), spill)
	return it.tk
}

// SubmitCP admits a CP-ALS request. CP runs are never coalesced — each is
// its own unit of admission — but they share the worker pool and are
// budgeted by the same policy.
func (s *Server) SubmitCP(req CPRequest) *Ticket {
	if req.X == nil {
		return failedTicket(fmt.Errorf("serve: nil tensor"))
	}
	it := &item{cp: &req, tk: newTicket()}
	cost := costOf(req.CostHint, s.cost.CP(req.X.Dims(), req.Config.Rank, req.Config.MaxIters))
	// A CP run is sweeps × modes MTTKRPs of one shape, so its bandwidth
	// sensitivity — and therefore its spill factor — is the per-MTTKRP one.
	spill := s.cost.SpillFactor(mttkrpParts(req.X.Dims(), req.Config.Rank))
	s.enqueue("", "cp", it, cost, weightOf(req.Weight), spill)
	return it.tk
}

// submitFunc admits an arbitrary function under a shape key, cost and
// aging weight (0 selects defaults). Tests use it to occupy the scheduler
// deterministically.
func (s *Server) submitFunc(key string, cost, weight float64, fn func(parallel.Executor)) *Ticket {
	it := &item{fn: fn, tk: newTicket()}
	s.enqueue(key, "func", it, costOf(0, cost), weightOf(weight), 1)
	return it.tk
}

// enqueue joins an open same-shape batch or opens a new one, then kicks
// the scheduler. A batch accepts joiners only while it is in s.open,
// which it leaves — under this same mutex — the moment scheduleLocked
// pops it for execution, so a join after the batch has been granted a
// lease is impossible: the executor goroutine is spawned while the lock
// is still held, after which no path can append to b.items.
func (s *Server) enqueue(key, kind string, it *item, cost, weight, spill float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		it.tk.fail(ErrDraining)
		return
	}
	s.stats.Submitted++
	if key != "" && s.batching {
		if b, ok := s.open[key]; ok {
			b.items = append(b.items, it)
			// The batch ages as fast as its most urgent joiner and is
			// priced at its most expensive one: same-shape items share a
			// model cost by construction, but explicit CostHints may
			// differ, and under-pricing the batch would let a cheap first
			// item smuggle an expensive joiner past the aging queue. The
			// join also re-raises the batch's total service estimate —
			// totalCost scales with len(items) — which the aging score,
			// the budget split and ProjectedWait all price, so a batch
			// bloated by joiners cannot keep jumping the queue as if it
			// were a single request.
			if weight > b.weight {
				b.weight = weight
			}
			if cost > b.cost {
				b.cost = cost
			}
			if spill > b.spill {
				b.spill = spill
			}
			s.stats.Coalesced++
			if len(b.items) >= s.maxBatch {
				// Full: close the join window so the batch's aging score
				// resumes growing (see Config.MaxBatch) and its lease-time
				// stays bounded; the next arrival opens a fresh batch.
				delete(s.open, key)
			}
			return
		}
	}
	b := &batch{key: key, kind: kind, items: []*item{it}, cost: cost, weight: weight, spill: spill, enqueued: time.Now()}
	if key != "" && s.batching && s.maxBatch > 1 {
		// A fresh batch already holds one item, so it only opens a join
		// window when the cap leaves room for a second.
		s.open[key] = b
	}
	s.queue = append(s.queue, b)
	if len(s.queue) > s.stats.PeakQueued {
		s.stats.PeakQueued = len(s.queue)
	}
	s.scheduleLocked()
}

// evenBudgetLocked is the historical admission policy: the pool's width
// divided evenly across `active` concurrent requests, floored at
// MinWorkers and capped at the full width.
func (s *Server) evenBudgetLocked(active int) int {
	if active < 1 {
		active = 1
	}
	b := s.width / active
	if b < s.minWorkers {
		b = s.minWorkers
	}
	if b > s.width {
		b = s.width
	}
	return b
}

// ageScore is the aging priority of a queued batch: cost-weighted deficit
// that grows with wait time. Small requests score high immediately
// (shortest-job-first), and a large request's age eventually dominates
// fresh small arrivals. The denominator is the batch's full service
// estimate — per-item cost × items — so every join re-prices the batch: a
// batch that has coalesced k requests is k× the work of a lone one and
// must not outscore it as if it were still a single small request.
// Because a join grows the denominator, the starvation bound is paid per
// member: a queued batch waits at most ~members · costRatio · AgeBias —
// capped at MaxBatch · costRatio · AgeBias, since a full batch stops
// accepting joiners and its score resumes growing with age alone.
func (s *Server) ageScore(b *batch, now time.Time) float64 {
	age := now.Sub(b.enqueued) + s.ageBias
	return b.weight * age.Seconds() / b.totalCost()
}

// pickLocked removes and returns the next batch to admit: the oldest under
// EvenSplit (FIFO), the highest aging score otherwise. Callers hold s.mu
// and guarantee the queue is non-empty.
func (s *Server) pickLocked(now time.Time) *batch {
	best := 0
	if !s.evenSplit {
		bestScore := s.ageScore(s.queue[0], now)
		for i := 1; i < len(s.queue); i++ {
			if score := s.ageScore(s.queue[i], now); score > bestScore {
				best, bestScore = i, score
			}
		}
	}
	b := s.queue[best]
	if best > 0 {
		s.stats.Reordered++ // an older batch stays queued behind this one
	}
	copy(s.queue[best:], s.queue[best+1:])
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	return b
}

// scheduleLocked admits queued batches while capacity remains: each gets a
// lease, and every active lease is retargeted to the policy's budget (the
// change lands at each lease's next phase boundary). Callers hold s.mu.
func (s *Server) scheduleLocked() {
	for len(s.queue) > 0 && len(s.active) < s.maxActive {
		now := time.Now()
		b := s.pickLocked(now)
		if b.key != "" && s.open[b.key] == b {
			// The batch stops accepting joiners the moment it is granted
			// a lease; later same-shape arrivals open the next batch. The
			// identity guard matters after a MaxBatch cap-close: the key
			// may already name a NEWER open batch whose join window must
			// survive this admission.
			delete(s.open, b.key)
		}
		if wait := msBetween(b.enqueued, now); wait > s.stats.MaxQueueWaitMs {
			s.stats.MaxQueueWaitMs = wait
		}
		// Open the lease at the floor; rebalanceLocked immediately widens
		// it to the policy budget (the lease is still idle, so the resize
		// applies before the first dispatch).
		g := &grant{lease: s.pool.Lease(s.minWorkers), started: now}
		s.active[b] = g
		s.stats.Batches++
		if len(s.active) > s.stats.PeakActive {
			s.stats.PeakActive = len(s.active)
		}
		s.rebalanceLocked()
		s.wg.Add(1)
		go s.run(b, g)
	}
}

// rebalanceLocked retargets every active lease to the admission policy's
// budget: an even width ÷ active split under EvenSplit, otherwise each
// request's cost share of the width, floored at MinWorkers and capped at
// MaxShare. Width changes apply at each lease's next phase/region
// boundary; workers freed by a shrinking lease are picked up by growing
// ones on their next reconcile. Callers hold s.mu.
func (s *Server) rebalanceLocked() {
	if s.evenSplit {
		budget := s.evenBudgetLocked(len(s.active))
		for _, g := range s.active {
			g.budget = budget
			g.lease.Resize(budget)
		}
		return
	}
	total := 0.0
	for b := range s.active {
		total += b.totalCost()
	}
	for b, g := range s.active {
		// Budgets weight by the batch's full service estimate: a batch
		// running k coalesced members back-to-back is k× the work of a
		// singleton and earns the proportional share.
		w := int(float64(s.width)*b.totalCost()/total + 0.5)
		if w < s.minWorkers {
			w = s.minWorkers
		}
		if w > s.shareCap {
			w = s.shareCap
		}
		// Domain-aware packing: a budget wider than one placement domain
		// forces the lease to spill across the interconnect, which the
		// cost model prices as a byte-term penalty. Spill only when the
		// relative width gain beats the batch's spill factor — otherwise
		// cap the lease's physical goroutines at the widest single-domain
		// grant and keep the bytes local. The cap is physical only: the
		// lease still reserves and reports the full budget w, and the
		// domain-local workers stride over the extra logical indices, so
		// the kernel-visible width — and every result bit — matches the
		// unpacked grant (placement moves work and pages, never
		// accumulation order).
		if s.domainCap < w && float64(w) < float64(s.domainCap)*b.spillFactor() {
			g.lease.SetSlotCap(s.domainCap)
			g.packed = true
		} else {
			g.lease.SetSlotCap(0)
		}
		g.budget = w
		g.lease.Resize(w)
	}
}

// ProjectedWait estimates how long a request of the given cost would wait
// for admission if submitted now: the backlog it cannot overtake (queued
// batches of no greater cost, which outscore it under aging, plus an
// assumed-half-done remainder of the active batches when every slot is
// busy) divided by the scheduler's recent service rate. The estimate is
// deliberately coarse — its consumer is the transport's 429-versus-queue
// decision, which only needs the right order of magnitude. With no
// completed work yet (rate unknown) it reports 0: admit optimistically.
func (s *Server) ProjectedWait(cost float64) time.Duration {
	if cost <= 0 {
		cost = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rate <= 0 {
		return 0
	}
	ahead := 0.0
	for _, b := range s.queue {
		// Aging scores by total service estimate, so a batch can only be
		// overtaken by the new request when its full backlog — per-item
		// cost × coalesced items — exceeds the request's cost.
		if s.evenSplit || b.totalCost() <= cost {
			ahead += b.totalCost()
		}
	}
	if len(s.active) >= s.maxActive {
		for b := range s.active {
			ahead += 0.5 * b.totalCost()
		}
	}
	if ahead == 0 {
		return 0
	}
	slots := len(s.active)
	if slots < 1 {
		slots = 1
	}
	if slots > s.maxActive {
		slots = s.maxActive
	}
	return time.Duration(ahead / (s.rate * float64(slots)) * float64(time.Second))
}

// run executes one batch on its lease, then returns the lease and admits
// more work. A multi-member MTTKRP batch in which at least two members
// fingerprint alike executes fused: the shared KRP plan is built once
// under the lease before the member loop, matching members consume it
// read-only, and the rest compute their own KRP exactly as unfused.
func (s *Server) run(b *batch, g *grant) {
	defer s.wg.Done()
	lease := g.lease
	if b.key != "" {
		lease.SetWorkspaceKey("serve:" + b.key)
	}
	var fusedSaved float64
	fused, fellBack, cacheHit := false, false, false
	seed := fuseSeed(b)
	if seed == nil {
		// No two members fingerprint alike, but the plan LRU may remember
		// this shape from a previous batch: a member matching the retained
		// fingerprint seeds the fused path, so consecutive same-shape
		// batches fuse across batch boundaries.
		seed = s.cachedSeed(b)
	}
	if seed != nil {
		fusedSaved, cacheHit, fused = s.runFused(b, lease, seed)
		fellBack = !fused
	}
	if !fused {
		for _, it := range b.items {
			it.execute(lease, nil)
		}
	}
	dur := time.Since(g.started)
	lease.Close()
	s.mu.Lock()
	delete(s.active, b)
	s.observeRateLocked(b.totalCost(), dur)
	if fused {
		s.stats.Fused++
		s.stats.FusedSavedFlops += fusedSaved
		if cacheHit {
			s.stats.PlanCacheHits++
		}
	}
	if fellBack {
		s.stats.FusedFallbacks++
	}
	if g.packed {
		s.stats.DomainPacked++
	}
	if b.kind == "mttkrp" && b.key != "" && s.fusion {
		if fp := batchFP(b, seed); fp != 0 {
			s.recordPlanLocked(b.key, fp)
		}
	}
	for _, it := range b.items {
		s.stats.Completed++
		if it.tk.err != nil {
			s.stats.Failed++
		}
	}
	s.rebalanceLocked()
	s.scheduleLocked()
	s.maybeDrainedLocked()
	s.mu.Unlock()
}

// fuseSeed picks the member whose factor set seeds the batch's shared KRP
// plan: the first member whose fingerprint at least one other member
// shares. nil means no plan is worth building (singleton batch, unfusable
// methods, or all-distinct factor sets — each member then computes its
// own KRP, the pre-fusion behavior).
func fuseSeed(b *batch) *item {
	if b.kind != "mttkrp" || len(b.items) < 2 {
		return nil
	}
	for i, it := range b.items {
		if it.fp == 0 {
			continue
		}
		for _, other := range b.items[i+1:] {
			if other.fp == it.fp {
				return it
			}
		}
	}
	return nil
}

// planLRUCap bounds the plan-fingerprint LRU: how many shape keys the
// scheduler remembers recent factor fingerprints for. It matches the
// pool's keyed-workspace cap, since a fingerprint is only useful while
// the workspace (and the detached plan inside it) for its shape survives.
const planLRUCap = 32

// batchFP picks the fingerprint run() records for a batch in the plan
// LRU: the seed's when the batch fused, else the first fingerprintable
// member's — the candidate the next same-shape batch would fuse with.
func batchFP(b *batch, seed *item) uint64 {
	if seed != nil {
		return seed.fp
	}
	for _, it := range b.items {
		if it.fp != 0 {
			return it.fp
		}
	}
	return 0
}

// cachedSeed returns a member whose fingerprint matches the plan LRU's
// entry for the batch's shape key, if any — the trigger for cross-batch
// fusion. nil when the shape is not remembered or no member matches.
func (s *Server) cachedSeed(b *batch) *item {
	if b.kind != "mttkrp" || b.key == "" || !s.fusion {
		return nil
	}
	s.mu.Lock()
	fp, ok := s.planFP[b.key]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	for _, it := range b.items {
		if it.fp == fp {
			return it
		}
	}
	return nil
}

// recordPlanLocked remembers key's most recent factor fingerprint,
// evicting the least-recently-recorded shape at capacity. Callers hold
// s.mu. Eviction needs no cleanup: the detached plan lives in the shape's
// keyed workspace and is simply refilled if the shape returns.
func (s *Server) recordPlanLocked(key string, fp uint64) {
	if _, ok := s.planFP[key]; ok {
		s.planFP[key] = fp
		for i, k := range s.planAge {
			if k == key {
				s.planAge = append(append(s.planAge[:i], s.planAge[i+1:]...), key)
				break
			}
		}
		return
	}
	if len(s.planAge) >= planLRUCap {
		delete(s.planFP, s.planAge[0])
		s.planAge = s.planAge[1:]
	}
	s.planFP[key] = fp
	s.planAge = append(s.planAge, key)
}

// newFusedPlanFrame builds the workspace-cached shared-KRP plan, so a
// steady stream of same-shape fused batches refills one plan object with
// arena-backed storage and allocates nothing.
func newFusedPlanFrame() any { return new(krp.Plan) }

// runFused executes a batch on a shared KRP plan seeded from one member's
// factor set: fill once under the batch's lease (or skip the fill when
// the plan retained by the shape-keyed workspace from a previous batch
// already covers the seed's factors — the cross-batch cache hit), then
// run every member against it — matching members hit, the rest miss and
// compute locally. The saving is priced from the plan's own counters
// (rows served minus the one formation the fill paid; a cache hit pays
// no fill), so partially-matching batches are priced by what the plan
// actually served. The plan workspace is held for the whole batch
// (member kernels acquire their own from the same shape-keyed list), and
// the plan is detached — not reset — before release: its original caller
// views are cleared so no request factor memory is retained, while the
// filled KRPs and value snapshots (plan-arena-owned) survive to serve
// the next same-shape batch. Any panic while building the plan —
// malformed factors surface in krp/core validation — falls back to the
// unfused member loop (counted as FusedFallbacks), where the same panic
// is recovered into the offending tickets; no member has executed yet
// when Fill can panic.
func (s *Server) runFused(b *batch, lease *parallel.Lease, seed *item) (saved float64, cacheHit, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			saved, cacheHit, ok = 0, false, false
		}
	}()
	req := seed.mt
	// Only dense requests carry a fingerprint (fusion is dense-only), so
	// the seed's tensor is necessarily dense.
	xd := req.X.(*tensor.Dense)
	ws := lease.Acquire()
	defer ws.Release()
	plan := ws.Frame("serve.fusedplan", newFusedPlanFrame).(*krp.Plan)
	defer plan.Detach()
	served0 := plan.ServedRows()
	fillPaid := int64(0)
	if core.PlanCovers(plan, ws, xd, req.Factors, req.Mode) {
		cacheHit = true
	} else {
		core.FillPlan(plan, lease, ws, 0, xd, req.Factors, req.Mode)
		fillPaid = int64(plan.FilledRows())
	}
	for _, it := range b.items {
		it.execute(lease, plan)
	}
	savedRows := plan.ServedRows() - served0 - fillPaid
	if savedRows > 0 {
		saved = float64(savedRows) * float64(req.Factors[0].C)
	}
	return saved, cacheHit, true
}

// observeRateLocked folds one completed batch into the served-cost-rate
// EMA that ProjectedWait divides by. Callers hold s.mu.
func (s *Server) observeRateLocked(cost float64, dur time.Duration) {
	sec := dur.Seconds()
	if sec <= 0 || cost <= 0 {
		return
	}
	r := cost / sec
	if s.rate == 0 {
		s.rate = r
		return
	}
	s.rate = 0.25*r + 0.75*s.rate
}

// maybeDrainedLocked signals Drain waiters once admission has stopped and
// the last admitted batch has finished. Callers hold s.mu.
func (s *Server) maybeDrainedLocked() {
	if !s.draining || len(s.queue) != 0 || len(s.active) != 0 {
		return
	}
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// Drain stops admission and waits for every already-accepted request —
// running or still queued — to complete. Submissions during and after the
// drain fail with ErrDraining. Drain is idempotent and safe to call
// concurrently; Close after Drain releases the pool without failing
// anything.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.maybeDrainedLocked()
	s.mu.Unlock()
	<-s.drained
	s.wg.Wait()
}

// execute runs one request on the granted executor, recovering kernel
// panics (shape mismatches and the like) into the ticket. Kernel phase
// boundaries reconcile the executor, so a budget change issued by the
// scheduler mid-request lands at the next safe point. A non-nil plan is
// the batch's shared KRP intermediate: MTTKRP members consume it
// read-only (falling back per-side on a mismatch), other kinds ignore it.
func (it *item) execute(ex parallel.Executor, plan *krp.Plan) {
	tk := it.tk
	defer func() {
		if r := recover(); r != nil {
			tk.err = fmt.Errorf("serve: request failed: %v", r)
		}
		close(tk.done)
	}()
	switch {
	case it.mt != nil:
		// Threads = 0 resolves to the lease's granted budget; PhaseNotify
		// applies pending budget changes at each computation boundary —
		// also between fused batch members, so a mid-batch Reconcile
		// lands exactly as it would on the unfused path. RunWithPlan
		// dispatches on the tensor's layout; a sparse member ignores the
		// plan (it has no KRP intermediate).
		cr := it.mt.Core()
		cr.Opts = core.Options{
			Pool:        ex,
			PhaseNotify: func() { parallel.Reconcile(ex) },
		}
		if xd, isDense := cr.X.(*tensor.Dense); isDense && xd.Mapped() {
			// A file-backed tensor streams through bounded row tiles so
			// its resident working set stays within the tile budget
			// regardless of the file's extent (bit-identical to the
			// untiled kernel; see core's tiled drivers).
			cr.Opts.TileRows = core.AutoTileRows(xd.Dims(), cr.Mode, 0)
		}
		tk.m = core.RunWithPlan(cr, plan)
	case it.cp != nil:
		cfg := it.cp.Config
		cfg.Pool = ex
		cfg.Threads = 0
		// cpd reconciles the lease between sweeps (and between modes)
		// itself; no extra wiring needed here. ALSAny dispatches on the
		// tensor's layout.
		tk.cp, tk.err = cpd.ALSAny(it.cp.X, cfg)
	default:
		it.fn(ex)
	}
}

// Close fails all queued requests, waits for running batches to finish,
// and releases the worker pool. Submissions after Close fail with
// ErrDraining. Close is idempotent. For a graceful stop that completes
// queued work instead of failing it, call Drain first.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.draining = true
	pending := s.queue
	s.queue = nil
	clear(s.open)
	s.maybeDrainedLocked()
	for _, b := range pending {
		// Queued requests complete (with ErrClosed) like any others, so
		// Submitted == Completed still holds after a drain-and-close.
		s.stats.Completed += len(b.items)
		s.stats.Failed += len(b.items)
	}
	s.mu.Unlock()
	for _, b := range pending {
		for _, it := range b.items {
			it.tk.fail(ErrClosed)
		}
	}
	s.wg.Wait()
	s.pool.Close()
}

// shapeKey is the batching signature of an MTTKRP request: tensor shape,
// rank, mode, method and layout. Two requests with equal keys run
// correctly on one warmed workspace set; sparse requests additionally key
// on nnz, since the sparse kernel's scratch sizing (entry-range bounds,
// per-worker accumulators) tracks the stored-entry count, and a dense and
// a sparse request of the same shape must never share a workspace.
func shapeKey(r MTTKRPRequest) string {
	key := make([]byte, 0, 48)
	for i := 0; i < r.X.Order(); i++ {
		key = fmt.Appendf(key, "%dx", r.X.Dim(i))
	}
	key = fmt.Appendf(key, "|c%d|n%d|m%d", r.Factors[0].C, r.Mode, int(r.Method))
	if r.X.Layout() == tensor.LayoutCOO {
		key = fmt.Appendf(key, "|coo%d", r.X.NNZ())
	}
	return string(key)
}

// fuseFingerprint hashes the factor set an MTTKRP's shared KRP is built
// from — every factor except the target mode's, which is not a KRP
// operand — by value (FNV-1a over dimensions and element bits), so
// requests carrying identical factors fuse even when each decoded its
// payload into a different buffer (the network path). A collision merely
// coalesces unfusable requests into one batch; the plan's own value
// comparison then misses and each member computes its KRP locally, so a
// collision costs a shared queue slot, never correctness. Requests whose
// factor views the fingerprint cannot walk (non-unit column stride,
// malformed geometry) report ok = false and stay on the plain shape key.
func fuseFingerprint(r *MTTKRPRequest) (fp uint64, ok bool) {
	defer func() {
		if recover() != nil {
			fp, ok = 0, false
		}
	}()
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for k, f := range r.Factors {
		if k == r.Mode {
			continue
		}
		if f.CS != 1 {
			return 0, false
		}
		h = (h ^ uint64(f.R)) * prime64
		h = (h ^ uint64(f.C)) * prime64
		for i := 0; i < f.R; i++ {
			for _, x := range f.ContiguousRow(i) {
				h = (h ^ math.Float64bits(x)) * prime64
			}
		}
	}
	return h, true
}
