// Package serve is the concurrent serving runtime on top of the
// pool/workspace layers: a scheduler that admits MTTKRP and CP-ALS
// requests, grants each an execution lease sized by a cost-aware admission
// policy (worker budgets weighted by each request's cost share under a
// CostModel, floored at a minimum, capped at a maximum share, and
// rebalanced as requests arrive and finish — running requests apply the
// change at kernel phase boundaries via parallel.Lease.Reconcile), orders
// the admission queue by an aging score so small requests are not convoyed
// behind large ones, and coalesces same-shape MTTKRP requests into batches
// that run back-to-back on one lease and one shape-keyed workspace set —
// amortizing admission, dispatch warmup and scratch-buffer sizing across
// requests the way a model server amortizes weights across queries.
//
// One Server owns one parallel.Pool exclusively. Requests are submitted
// asynchronously and complete through Tickets.
package serve

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// ErrClosed reports pending work failed by a hard Close: requests that
// were still queued for admission when the server shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrDraining reports a submission refused because the server has stopped
// admitting work — Drain or Close has begun. Transports map it to a
// retryable rejection (HTTP 503) so clients fail over rather than treat
// the drain as a request error.
var ErrDraining = errors.New("serve: server draining, not accepting new requests")

// MTTKRPRequest describes one MTTKRP computation to admit. It mirrors
// core.Request (the canonical request shape — see Core) plus the two
// admission knobs only the scheduler consumes.
type MTTKRPRequest struct {
	// X is the input tensor (shared, read-only during the computation):
	// *tensor.Dense or *tensor.Sparse. The scheduler prices and batches by
	// its layout — sparse requests cost by nnz · rank, not Π dims · rank.
	X tensor.Interface
	// Factors are the I_k × C row-major factor matrices, one per mode.
	Factors []mat.View
	// Mode is the MTTKRP mode n.
	Mode int
	// Method selects the algorithm (zero value = the paper's hybrid).
	Method Method
	// Dst, when non-zero, receives the I_n × C result (contiguous
	// row-major, caller-retained for steady-state reuse); a zero Dst lets
	// the server allocate one.
	Dst mat.View
	// CostHint, when positive, overrides the scheduler's cost-model
	// estimate for this request — the transport maps the X-Cost-Hint
	// header here. The cost weights the request's worker budget and its
	// queue aging.
	CostHint float64
	// Weight scales the request's aging priority (> 1 ages faster and is
	// admitted sooner under load, < 1 slower); 0 selects 1. The transport
	// maps the X-Priority header here.
	Weight float64
}

// Method aliases the core algorithm selector so daemon code can depend on
// serve alone.
type Method = core.Method

// Core returns the request as the canonical core.Request shape the
// executor runs (admission knobs excluded; the scheduler owns Opts).
func (r *MTTKRPRequest) Core() core.Request {
	return core.Request{X: r.X, Factors: r.Factors, Mode: r.Mode, Method: r.Method, Dst: r.Dst}
}

// CPRequest describes one CP-ALS decomposition to admit.
type CPRequest struct {
	// X is the input tensor (*tensor.Dense or *tensor.Sparse; sparse runs
	// the same sweep structure over the sparse MTTKRP kernel).
	X tensor.Interface
	// Config configures the run. Pool and Threads are overridden by the
	// scheduler: the decomposition executes on the lease granted at
	// admission, with the worker budget the admission policy assigns
	// (re-applied at every sweep boundary, so a long decomposition
	// shrinks and re-grows with the load around it).
	Config cpd.Config
	// CostHint and Weight mirror MTTKRPRequest's admission knobs.
	CostHint float64
	Weight   float64
}

// Ticket is the async handle for a submitted request. Exactly one of the
// typed getters matches the request kind; both block until completion.
type Ticket struct {
	done chan struct{}
	m    mat.View
	cp   *cpd.Result
	err  error
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

func failedTicket(err error) *Ticket {
	t := newTicket()
	t.err = err
	close(t.done)
	return t
}

// Done returns a channel closed when the request has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// MTTKRP blocks until completion and returns the result matrix.
func (t *Ticket) MTTKRP() (mat.View, error) {
	<-t.done
	return t.m, t.err
}

// CP blocks until completion and returns the decomposition result.
func (t *Ticket) CP() (*cpd.Result, error) {
	<-t.done
	return t.cp, t.err
}

// Err blocks until completion and returns the request's error, if any.
func (t *Ticket) Err() error {
	<-t.done
	return t.err
}

// fail completes the ticket with an error. Only the owner (scheduler or
// submit path) calls it, exactly once per ticket.
func (t *Ticket) fail(err error) {
	t.err = err
	close(t.done)
}

// validateMTTKRP performs the cheap structural checks worth failing
// synchronously; full shape validation happens inside core (panics there
// are recovered into the ticket).
func validateMTTKRP(r MTTKRPRequest) error {
	if r.X == nil {
		return errors.New("serve: nil tensor")
	}
	if len(r.Factors) != r.X.Order() {
		return fmt.Errorf("serve: %d factor matrices for an order-%d tensor", len(r.Factors), r.X.Order())
	}
	if r.Mode < 0 || r.Mode >= r.X.Order() {
		return fmt.Errorf("serve: mode %d out of range [0,%d)", r.Mode, r.X.Order())
	}
	return nil
}
