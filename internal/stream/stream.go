// Package stream implements the memory-bandwidth reference used in the
// paper's Figure 4: a read-scale-write sweep (b = α·a) over a buffer the
// size of the KRP output matrix, following McCalpin's STREAM "Scale"
// kernel. The KRP algorithms are memory-bound, so their time is compared
// against this roofline.
package stream

import (
	"errors"
	"time"

	"repro/internal/parallel"
)

// Bench holds the two buffers of a scale benchmark.
type Bench struct {
	a, b  []float64
	alpha float64
}

// New allocates a scale benchmark over n-element buffers, initializing the
// source so pages are faulted in before timing.
func New(n int) *Bench {
	s := &Bench{a: make([]float64, n), b: make([]float64, n), alpha: 3.0}
	for i := range s.a {
		s.a[i] = float64(i%977) * 0.5
	}
	return s
}

// Len returns the buffer length.
func (s *Bench) Len() int { return len(s.a) }

// Bytes returns the memory traffic per run (one read + one write).
func (s *Bench) Bytes() int64 { return int64(len(s.a)) * 16 }

// Run performs b = α·a with t workers on the default pool and returns the
// elapsed wall time.
func (s *Bench) Run(t int) time.Duration {
	return s.RunOn(parallel.Default(), t)
}

// RunOn is Run on an explicit executor (pool or lease), so the roofline
// sweep can share a worker team with the kernels it calibrates — and, under
// a lease, respect a serving budget. The requested width resolves through
// the executor (t <= 0 selects its natural width).
func (s *Bench) RunOn(p parallel.Executor, t int) time.Duration {
	t = parallel.Clamp(p.Effective(t), len(s.a))
	start := time.Now()
	p.For(t, len(s.a), func(_, lo, hi int) {
		a, b := s.a[lo:hi], s.b[lo:hi]
		for i := range a {
			b[i] = s.alpha * a[i]
		}
	})
	return time.Since(start)
}

// Verify checks the last Run produced the expected values.
func (s *Bench) Verify() error {
	for i := range s.a {
		if s.b[i] != s.alpha*s.a[i] {
			return errors.New("stream: verification failed")
		}
	}
	return nil
}

// BandwidthGBps converts a Run duration to achieved bandwidth in GB/s.
func (s *Bench) BandwidthGBps(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes()) / d.Seconds() / 1e9
}
