package stream

import (
	"testing"

	"repro/internal/parallel"
)

func TestRunAndVerify(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		s := New(10000)
		d := s.Run(threads)
		if d <= 0 {
			t.Errorf("threads=%d: non-positive duration", threads)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("threads=%d: %v", threads, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s := New(100)
	s.Run(1)
	s.b[50] += 1
	if err := s.Verify(); err == nil {
		t.Error("expected verification failure")
	}
}

func TestBytesAndBandwidth(t *testing.T) {
	s := New(1000)
	if s.Len() != 1000 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Bytes() != 16000 {
		t.Errorf("Bytes = %d, want 16000", s.Bytes())
	}
	if s.BandwidthGBps(0) != 0 {
		t.Error("zero duration should give zero bandwidth")
	}
	d := s.Run(2)
	if bw := s.BandwidthGBps(d); bw <= 0 {
		t.Errorf("bandwidth %v", bw)
	}
}

// TestRunOnExplicitPool pins the executor-threaded entry point: RunOn on a
// caller-owned pool produces the same values as Run on the default pool.
func TestRunOnExplicitPool(t *testing.T) {
	p := parallel.NewPool(3)
	defer p.Close()
	s := New(10000)
	if d := s.RunOn(p, 0); d <= 0 {
		t.Errorf("non-positive duration %v", d)
	}
	if err := s.Verify(); err != nil {
		t.Error(err)
	}
}
