// Package transport is the network front end of the serving runtime: an
// HTTP/1.1 listener (HTTP/2 when TLS is configured — net/http negotiates
// it automatically) that decodes a compact binary wire format for dense
// tensors directly into pooled request buffers, applies per-client
// token-bucket quotas (request rate and in-flight payload bytes), submits
// to the admission-controlled scheduler (internal/serve), and drains
// gracefully on shutdown so admitted tickets finish.
//
// The wire format keeps JSON off the data path: a little-endian fixed
// header (magic, version, op, method, ndims, mode, rank, iters, seed),
// the dimension list, then the raw float64 payload — the tensor in
// natural linearization followed, for MTTKRP, by the row-major factor
// matrices in mode order. Responses are equally lean: an I_n × C matrix
// is (rows, cols, data); a CP result is (nfactors, rank, lambda,
// factors...). See DESIGN.md §8 for the byte-level specification.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Op selects the request kind carried by a wire header.
type Op uint8

// Request kinds.
const (
	OpMTTKRP Op = 1
	OpCP     Op = 2
	// OpSparseMTTKRP is the wire-v2 sparse request: the payload carries
	// COO coordinates and values instead of a dense linearization. A v1
	// reader rejects it by version before touching the payload.
	OpSparseMTTKRP Op = 3
	// OpMTTKRPByRef is the wire-v3 by-reference request: instead of the
	// tensor's float payload, the header carries a path (relative to the
	// server's tensor root) plus the file identity the client observed —
	// mtime, size and header checksum — and only the factor matrices ride
	// the wire. The server maps the file, revalidates the identity (409 on
	// mismatch) and streams the kernel through row tiles of the mapping.
	OpMTTKRPByRef Op = 4
)

// Wire-format constants. The magic doubles as an endianness check: a
// big-endian writer produces a mismatched magic and is rejected before
// any payload is read.
const (
	wireMagic   uint32 = 0x4B54544D // "MTTK" little-endian
	wireVersion uint8  = 1
	// wireVersionSparse is the version sparse requests are written at.
	// Version 2 extends v1 by one rule: sparse ops append an 8-byte nnz
	// count after the dimension list (dense ops are byte-identical to
	// v1, and readers accept both versions).
	wireVersionSparse uint8 = 2
	// wireVersionByRef is the version by-reference requests are written
	// at. Version 3 extends v2 by one rule: by-ref ops append a tensor
	// reference block after the dimension list — mtime (int64), size
	// (int64), header checksum (uint64), then the path as a uint16 length
	// plus bytes. All other ops are byte-identical to their v1/v2 forms.
	wireVersionByRef uint8 = 3

	// fixedHeaderLen is the byte length of the header before the
	// dimension list: magic(4) version(1) op(1) method(1) ndims(1)
	// mode(4) rank(4) iters(4) seed(8).
	fixedHeaderLen = 28
)

// Resource ceilings enforced at decode time, before any payload bytes are
// read: a hostile header must not be able to size an allocation.
const (
	// MaxDims bounds the tensor order accepted on the wire.
	MaxDims = 8
	// MaxDim bounds each dimension.
	MaxDim = 1 << 20
	// MaxRank bounds the factor column count.
	MaxRank = 1 << 12
	// MaxIters bounds requested CP sweeps.
	MaxIters = 1 << 10
	// MaxRefPath bounds the path length of a by-reference request.
	MaxRefPath = 1 << 10
)

// TensorRef identifies a server-resident tensor file for a by-reference
// request: a slash-separated path relative to the server's tensor root,
// plus the file identity (mtime in unix nanoseconds, byte size, and the
// FNV-1a checksum of the file's header section) the client observed. The
// server refuses to compute against a file whose identity no longer
// matches — the tensor changed under the client — with 409 Conflict.
type TensorRef struct {
	Path     string
	MTime    int64
	Size     int64
	Checksum uint64
}

// RefFor builds the reference a client ships for the tensor file whose
// identity info describes, naming it path relative to the server's tensor
// root (slash-separated). Pair it with tensor.StatDense, which reads the
// identity without touching the data section.
func RefFor(info *tensor.DenseFileInfo, path string) TensorRef {
	return TensorRef{
		Path:     path,
		MTime:    info.ModTime.UnixNano(),
		Size:     info.Size,
		Checksum: info.Checksum,
	}
}

// ErrPayloadTooLarge reports a structurally valid request whose payload
// exceeds the listener's configured ceiling; servers map it to HTTP 413.
var ErrPayloadTooLarge = errors.New("transport: request payload exceeds server limit")

// Header is the decoded request header. One header fully determines the
// payload length, so quota accounting and buffer sizing happen before the
// first payload byte is read.
type Header struct {
	// Op is the request kind (OpMTTKRP or OpCP).
	Op Op
	// Method selects the MTTKRP algorithm (MTTKRP requests; CP uses it as
	// the per-mode kernel choice with zero = the paper's hybrid).
	Method core.Method
	// Mode is the MTTKRP mode n (ignored for CP).
	Mode int
	// Rank is the factor column count C.
	Rank int
	// Iters is the CP sweep budget; 0 selects the server default.
	Iters int
	// Seed drives the CP initial guess, making served runs reproducible.
	Seed int64
	// Dims is the tensor shape.
	Dims []int
	// NNZ is the stored-entry count of a sparse request (OpSparseMTTKRP
	// only; encoded as a uint64 after the dimension list at wire version
	// 2). Dense ops leave it 0 and omit the field.
	NNZ int64
	// Ref names the server-resident tensor of a by-reference request
	// (OpMTTKRPByRef only; encoded after the dimension list at wire
	// version 3). Other ops leave it zero and omit the block.
	Ref TensorRef
}

// sparse reports whether the request carries a COO payload.
func (h *Header) sparse() bool { return h.Op == OpSparseMTTKRP }

// byRef reports whether the request's tensor stays server-side.
func (h *Header) byRef() bool { return h.Op == OpMTTKRPByRef }

// refWireLen is the encoded length of the reference block: mtime(8) +
// size(8) + checksum(8) + pathLen(2) + path bytes.
func (h *Header) refWireLen() int { return 26 + len(h.Ref.Path) }

// TensorElems returns the entry count of the request tensor.
func (h *Header) TensorElems() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// FactorElems returns the total entries of the factor matrices shipped
// after the tensor (MTTKRP requests, dense or sparse, carry one I_k × C
// factor per mode; CP requests carry none — the server initializes from
// Seed).
func (h *Header) FactorElems() int {
	if h.Op != OpMTTKRP && h.Op != OpSparseMTTKRP && h.Op != OpMTTKRPByRef {
		return 0
	}
	n := 0
	for _, d := range h.Dims {
		n += d * h.Rank
	}
	return n
}

// PayloadFloats returns the float64 count following the header: the
// tensor's stored values (all Π dims entries dense, nnz sparse) plus the
// factor matrices. Sparse coordinates are int32s and counted separately
// (IndexInts).
func (h *Header) PayloadFloats() int {
	if h.sparse() {
		return int(h.NNZ) + h.FactorElems()
	}
	if h.byRef() {
		// The tensor stays server-side; only the factors cross the wire.
		return h.FactorElems()
	}
	return h.TensorElems() + h.FactorElems()
}

// IndexInts returns the int32 count of the sparse coordinate block
// preceding the float payload: nnz coordinates per mode, mode-major. 0
// for dense ops.
func (h *Header) IndexInts() int {
	if !h.sparse() {
		return 0
	}
	return int(h.NNZ) * len(h.Dims)
}

// PayloadBytes returns the byte length of the payload.
func (h *Header) PayloadBytes() int64 {
	return 4*int64(h.IndexInts()) + 8*int64(h.PayloadFloats())
}

// WireSize returns the total request length in bytes: header plus payload.
func (h *Header) WireSize() int64 {
	n := int64(fixedHeaderLen + 4*len(h.Dims))
	if h.sparse() {
		n += 8 // the nnz field
	}
	if h.byRef() {
		n += int64(h.refWireLen())
	}
	return n + h.PayloadBytes()
}

// maxWireFloats is the absolute payload ceiling (2^50 float64s, 8 PiB):
// the overflow-safe product check in checkedPayloadFloats rejects against
// it, so per-dim bounds alone never have to contain the product (8 dims
// of 2^20 multiply out to 2^160, which wraps int64).
const maxWireFloats = int64(1) << 50

// checkedPayloadFloats computes the payload length with per-step overflow
// guards; a product that would exceed maxWireFloats is rejected rather
// than wrapped.
func (h *Header) checkedPayloadFloats() (int64, error) {
	elems := int64(1)
	for _, d := range h.Dims {
		if d < 1 || elems > maxWireFloats/int64(d) {
			return 0, fmt.Errorf("%w: tensor %v overflows the %d-entry ceiling", ErrPayloadTooLarge, h.Dims, maxWireFloats)
		}
		elems *= int64(d)
	}
	floats := elems
	if h.byRef() {
		// The dims bound above still guards the mapped tensor's extent;
		// the wire payload itself carries no tensor floats.
		floats = 0
	}
	if h.sparse() {
		// A canonical COO payload is sorted and deduped, so its entry
		// count never exceeds the shape's capacity; a header claiming
		// more is hostile or corrupt. Bounding by elems ≤ maxWireFloats
		// also rules out nnz · order overflow below (order ≤ MaxDims).
		if h.NNZ < 0 || h.NNZ > elems {
			return 0, fmt.Errorf("%w: nnz %d outside [0, %d] for shape %v", ErrPayloadTooLarge, h.NNZ, elems, h.Dims)
		}
		floats = h.NNZ
	}
	if h.Op == OpMTTKRP || h.Op == OpSparseMTTKRP || h.Op == OpMTTKRPByRef {
		// Each term is ≤ 2^20 · 2^12 under the per-field bounds; eight of
		// them cannot overflow alongside elems ≤ 2^50.
		for _, d := range h.Dims {
			floats += int64(d) * int64(h.Rank)
		}
		if floats > maxWireFloats {
			return 0, fmt.Errorf("%w: payload overflows the %d-entry ceiling", ErrPayloadTooLarge, maxWireFloats)
		}
	}
	return floats, nil
}

// Validate checks structural bounds. maxPayloadBytes caps the payload (0
// means no cap beyond the absolute maxWireFloats ceiling); exceeding it
// returns ErrPayloadTooLarge, every other violation a plain error. The
// size methods (TensorElems, PayloadFloats, PayloadBytes, WireSize) are
// only meaningful on a validated header — Validate is where overflow is
// ruled out.
func (h *Header) Validate(maxPayloadBytes int64) error {
	if h.Op != OpMTTKRP && h.Op != OpCP && h.Op != OpSparseMTTKRP && h.Op != OpMTTKRPByRef {
		return fmt.Errorf("transport: unknown op %d", h.Op)
	}
	if h.byRef() {
		if h.Ref.Path == "" || len(h.Ref.Path) > MaxRefPath {
			return fmt.Errorf("transport: ref path length %d, want 1..%d", len(h.Ref.Path), MaxRefPath)
		}
		if strings.ContainsRune(h.Ref.Path, 0) {
			return fmt.Errorf("transport: ref path contains NUL")
		}
	}
	if h.Method < core.MethodAuto || h.Method > core.MethodReorder {
		return fmt.Errorf("transport: unknown method %d", h.Method)
	}
	if len(h.Dims) < 2 || len(h.Dims) > MaxDims {
		return fmt.Errorf("transport: %d dims, want 2..%d", len(h.Dims), MaxDims)
	}
	for i, d := range h.Dims {
		if d < 1 || d > MaxDim {
			return fmt.Errorf("transport: dim %d is %d, want 1..%d", i, d, MaxDim)
		}
	}
	if h.Rank < 1 || h.Rank > MaxRank {
		return fmt.Errorf("transport: rank %d, want 1..%d", h.Rank, MaxRank)
	}
	if (h.Op == OpMTTKRP || h.Op == OpSparseMTTKRP || h.Op == OpMTTKRPByRef) && (h.Mode < 0 || h.Mode >= len(h.Dims)) {
		return fmt.Errorf("transport: mode %d out of range [0,%d)", h.Mode, len(h.Dims))
	}
	if h.Iters < 0 || h.Iters > MaxIters {
		return fmt.Errorf("transport: iters %d, want 0..%d", h.Iters, MaxIters)
	}
	floats, err := h.checkedPayloadFloats()
	if err != nil {
		return err
	}
	bytes := 8 * floats
	if h.sparse() {
		// The coordinate block: nnz int32s per mode. nnz ≤ 2^50 and
		// order ≤ 8, so the product stays well inside int64.
		bytes += 4 * h.NNZ * int64(len(h.Dims))
	}
	if maxPayloadBytes > 0 && bytes > maxPayloadBytes {
		return fmt.Errorf("%w: %d bytes > %d", ErrPayloadTooLarge, bytes, maxPayloadBytes)
	}
	return nil
}

// WriteHeader encodes h (unvalidated — callers validate) to w. Dense ops
// write version 1 — byte-identical to the original format, so old readers
// keep working — and sparse ops write version 2 with the nnz field after
// the dimension list.
func WriteHeader(w io.Writer, h *Header) error {
	n := fixedHeaderLen + 4*len(h.Dims)
	ver := wireVersion
	if h.sparse() {
		ver = wireVersionSparse
		n += 8
	}
	if h.byRef() {
		ver = wireVersionByRef
		n += h.refWireLen()
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf[0:], wireMagic)
	buf[4] = ver
	buf[5] = byte(h.Op)
	buf[6] = byte(h.Method)
	buf[7] = byte(len(h.Dims))
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.Mode))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.Rank))
	binary.LittleEndian.PutUint32(buf[16:], uint32(h.Iters))
	binary.LittleEndian.PutUint64(buf[20:], uint64(h.Seed))
	for i, d := range h.Dims {
		binary.LittleEndian.PutUint32(buf[fixedHeaderLen+4*i:], uint32(d))
	}
	if h.sparse() {
		binary.LittleEndian.PutUint64(buf[fixedHeaderLen+4*len(h.Dims):], uint64(h.NNZ))
	}
	if h.byRef() {
		off := fixedHeaderLen + 4*len(h.Dims)
		binary.LittleEndian.PutUint64(buf[off:], uint64(h.Ref.MTime))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(h.Ref.Size))
		binary.LittleEndian.PutUint64(buf[off+16:], h.Ref.Checksum)
		binary.LittleEndian.PutUint16(buf[off+24:], uint16(len(h.Ref.Path)))
		copy(buf[off+26:], h.Ref.Path)
	}
	_, err := w.Write(buf)
	return err
}

// ReadHeader decodes a request header from r, rejecting bad magic,
// versions and dimension counts before reading the dimension list. Callers
// still run Validate before trusting the sizes.
func ReadHeader(r io.Reader) (*Header, error) {
	var fixed [fixedHeaderLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("transport: short header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != wireMagic {
		return nil, fmt.Errorf("transport: bad magic %#x (not a wire request, or big-endian writer)", got)
	}
	if fixed[4] != wireVersion && fixed[4] != wireVersionSparse && fixed[4] != wireVersionByRef {
		return nil, fmt.Errorf("transport: wire version %d, want %d..%d", fixed[4], wireVersion, wireVersionByRef)
	}
	ndims := int(fixed[7])
	if ndims < 2 || ndims > MaxDims {
		return nil, fmt.Errorf("transport: %d dims, want 2..%d", ndims, MaxDims)
	}
	h := &Header{
		Op:     Op(fixed[5]),
		Method: core.Method(fixed[6]),
		Mode:   int(binary.LittleEndian.Uint32(fixed[8:])),
		Rank:   int(binary.LittleEndian.Uint32(fixed[12:])),
		Iters:  int(binary.LittleEndian.Uint32(fixed[16:])),
		Seed:   int64(binary.LittleEndian.Uint64(fixed[20:])),
		Dims:   make([]int, ndims),
	}
	if h.sparse() && fixed[4] < wireVersionSparse {
		return nil, fmt.Errorf("transport: sparse op requires wire version %d, got %d", wireVersionSparse, fixed[4])
	}
	if h.byRef() && fixed[4] < wireVersionByRef {
		return nil, fmt.Errorf("transport: by-ref op requires wire version %d, got %d", wireVersionByRef, fixed[4])
	}
	dims := make([]byte, 4*ndims)
	if _, err := io.ReadFull(r, dims); err != nil {
		return nil, fmt.Errorf("transport: short dims: %w", err)
	}
	for i := range h.Dims {
		h.Dims[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
	}
	if h.sparse() {
		var nz [8]byte
		if _, err := io.ReadFull(r, nz[:]); err != nil {
			return nil, fmt.Errorf("transport: short nnz: %w", err)
		}
		h.NNZ = int64(binary.LittleEndian.Uint64(nz[:]))
		if h.NNZ < 0 {
			return nil, fmt.Errorf("transport: implausible nnz %d", h.NNZ)
		}
	}
	if h.byRef() {
		var rb [26]byte
		if _, err := io.ReadFull(r, rb[:]); err != nil {
			return nil, fmt.Errorf("transport: short tensor ref: %w", err)
		}
		h.Ref.MTime = int64(binary.LittleEndian.Uint64(rb[0:]))
		h.Ref.Size = int64(binary.LittleEndian.Uint64(rb[8:]))
		h.Ref.Checksum = binary.LittleEndian.Uint64(rb[16:])
		plen := int(binary.LittleEndian.Uint16(rb[24:]))
		if plen == 0 || plen > MaxRefPath {
			return nil, fmt.Errorf("transport: ref path length %d, want 1..%d", plen, MaxRefPath)
		}
		path := make([]byte, plen)
		if _, err := io.ReadFull(r, path); err != nil {
			return nil, fmt.Errorf("transport: short ref path: %w", err)
		}
		h.Ref.Path = string(path)
	}
	return h, nil
}

// scratchBytes is the chunk size of the streaming float codec: payloads
// stream through a buffer this large, so a 1 GB tensor materializes once
// (as float64s) rather than twice (raw bytes plus floats).
const scratchBytes = 32 << 10

// writeFloats streams data to w in little-endian chunks through scratch
// (≥ 8 bytes; nil allocates a default chunk).
func writeFloats(w io.Writer, data []float64, scratch []byte) error {
	if len(scratch) < 8 {
		scratch = make([]byte, scratchBytes)
	}
	for len(data) > 0 {
		n := min(len(data), len(scratch)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[8*i:], math.Float64bits(data[i]))
		}
		if _, err := w.Write(scratch[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// readFloats fills dst from r, decoding little-endian float64s in chunks
// through scratch. A short read returns io.ErrUnexpectedEOF.
func readFloats(r io.Reader, dst []float64, scratch []byte) error {
	if len(scratch) < 8 {
		scratch = make([]byte, scratchBytes)
	}
	for len(dst) > 0 {
		n := min(len(dst), len(scratch)/8)
		if _, err := io.ReadFull(r, scratch[:8*n]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("transport: short payload: %w", err)
		}
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[8*i:]))
		}
		dst = dst[n:]
	}
	return nil
}

// WriteRequest streams one complete request — header, tensor (omitted for
// by-reference ops, which may pass a nil x), and (for MTTKRP) the factor
// matrices — to w. Factor k must be I_k × C; strided views are serialized
// row-contiguously.
func WriteRequest(w io.Writer, h *Header, x *tensor.Dense, factors []mat.View) error {
	if err := h.Validate(0); err != nil {
		return err
	}
	if err := WriteHeader(w, h); err != nil {
		return err
	}
	scratch := make([]byte, scratchBytes)
	if !h.byRef() {
		if err := writeFloats(w, x.Data(), scratch); err != nil {
			return err
		}
	}
	if h.Op != OpMTTKRP && h.Op != OpMTTKRPByRef {
		return nil
	}
	for k, u := range factors {
		if u.R != h.Dims[k] || u.C != h.Rank {
			return fmt.Errorf("transport: factor %d is %dx%d, want %dx%d", k, u.R, u.C, h.Dims[k], h.Rank)
		}
		if u.IsRowMajor() {
			if err := writeFloats(w, u.Data[:u.R*u.C], scratch); err != nil {
				return err
			}
			continue
		}
		row := make([]float64, u.C)
		for i := 0; i < u.R; i++ {
			for j := 0; j < u.C; j++ {
				row[j] = u.At(i, j)
			}
			if err := writeFloats(w, row, scratch); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeRequest reads the payload a validated header promises into buf
// (length ≥ h.PayloadFloats()) and returns the tensor and factor views
// aliasing it. The caller owns buf and must keep it live until the
// computation completes — this is the zero-copy step that lets the server
// decode into a pooled buffer. By-reference requests carry no tensor
// floats; the returned tensor is nil and the caller resolves h.Ref
// against its tensor root instead.
func DecodeRequest(r io.Reader, h *Header, buf []float64, scratch []byte) (*tensor.Dense, []mat.View, error) {
	need := h.PayloadFloats()
	if len(buf) < need {
		return nil, nil, fmt.Errorf("transport: decode buffer holds %d floats, need %d", len(buf), need)
	}
	if err := readFloats(r, buf[:need], scratch); err != nil {
		return nil, nil, err
	}
	var x *tensor.Dense
	off := 0
	if !h.byRef() {
		x = tensor.FromData(buf[:h.TensorElems()], h.Dims...)
		off = h.TensorElems()
	}
	if h.Op != OpMTTKRP && h.Op != OpMTTKRPByRef {
		return x, nil, nil
	}
	factors := make([]mat.View, len(h.Dims))
	for k, d := range h.Dims {
		factors[k] = mat.FromRowMajor(buf[off:off+d*h.Rank], d, h.Rank)
		off += d * h.Rank
	}
	return x, factors, nil
}

// MatrixWireSize returns the encoded length of an r×c matrix response.
func MatrixWireSize(r, c int) int64 { return 8 + 8*int64(r)*int64(c) }

// WriteMatrix encodes a matrix response: rows, cols (uint32 LE), then the
// row-major float64 data. scratch is the streaming-codec chunk buffer
// (nil allocates one; servers pass their pooled buffer).
func WriteMatrix(w io.Writer, m mat.View, scratch []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.R))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.C))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(scratch) < 8 {
		scratch = make([]byte, scratchBytes)
	}
	if m.IsRowMajor() {
		return writeFloats(w, m.Data[:m.R*m.C], scratch)
	}
	row := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			row[j] = m.At(i, j)
		}
		if err := writeFloats(w, row, scratch); err != nil {
			return err
		}
	}
	return nil
}

// ReadMatrixInto decodes a matrix response into dst when it matches the
// wire dimensions (the steady-state client path — no allocation); a zero
// dst allocates. maxElems bounds the accepted size.
func ReadMatrixInto(r io.Reader, dst mat.View, maxElems int) (mat.View, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return mat.View{}, fmt.Errorf("transport: short matrix header: %w", err)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[0:]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	// Bound each side before multiplying: two uint32s can wrap rows*cols
	// past the maxElems guard.
	if rows < 1 || rows > MaxDim || cols < 1 || cols > MaxRank ||
		(maxElems > 0 && rows*cols > maxElems) {
		return mat.View{}, fmt.Errorf("transport: implausible %dx%d matrix response", rows, cols)
	}
	if dst.Data == nil {
		dst = mat.NewDense(rows, cols)
	}
	if dst.R != rows || dst.C != cols || !dst.IsRowMajor() {
		return mat.View{}, fmt.Errorf("transport: dst is %dx%d (row-major=%v), wire carries %dx%d",
			dst.R, dst.C, dst.IsRowMajor(), rows, cols)
	}
	if err := readFloats(r, dst.Data[:rows*cols], nil); err != nil {
		return mat.View{}, err
	}
	return dst, nil
}

// WriteKTensor encodes a CP result body: nfactors, rank (uint32 LE),
// lambda, then each factor as rows (uint32) + row-major data (cols =
// rank). scratch as in WriteMatrix.
func WriteKTensor(w io.Writer, k *cpd.KTensor, scratch []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(k.Factors)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(k.Rank()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(scratch) < 8 {
		scratch = make([]byte, scratchBytes)
	}
	if err := writeFloats(w, k.Lambda, scratch); err != nil {
		return err
	}
	for _, u := range k.Factors {
		var rh [4]byte
		binary.LittleEndian.PutUint32(rh[:], uint32(u.R))
		if _, err := w.Write(rh[:]); err != nil {
			return err
		}
		if !u.IsRowMajor() {
			return errors.New("transport: non-row-major factor in CP result")
		}
		if err := writeFloats(w, u.Data[:u.R*u.C], scratch); err != nil {
			return err
		}
	}
	return nil
}

// ReadKTensor decodes a CP result body.
func ReadKTensor(r io.Reader) (*cpd.KTensor, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: short ktensor header: %w", err)
	}
	nf := int(binary.LittleEndian.Uint32(hdr[0:]))
	rank := int(binary.LittleEndian.Uint32(hdr[4:]))
	if nf < 1 || nf > MaxDims || rank < 1 || rank > MaxRank {
		return nil, fmt.Errorf("transport: implausible ktensor response (%d factors, rank %d)", nf, rank)
	}
	k := &cpd.KTensor{Lambda: make([]float64, rank), Factors: make([]mat.View, nf)}
	if err := readFloats(r, k.Lambda, nil); err != nil {
		return nil, err
	}
	for i := range k.Factors {
		var rh [4]byte
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			return nil, fmt.Errorf("transport: short factor header: %w", err)
		}
		rows := int(binary.LittleEndian.Uint32(rh[:]))
		if rows < 1 || rows > MaxDim {
			return nil, fmt.Errorf("transport: implausible factor rows %d", rows)
		}
		k.Factors[i] = mat.NewDense(rows, rank)
		if err := readFloats(r, k.Factors[i].Data, nil); err != nil {
			return nil, err
		}
	}
	return k, nil
}
