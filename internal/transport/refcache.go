package transport

import (
	"sync"

	"repro/internal/tensor"
)

// refCacheCap bounds the by-reference mapping cache: how many distinct
// tensor files the transport keeps mapped between requests. By-ref traffic
// concentrates on a handful of large shared tensors (that is the point of
// the endpoint), so a small cap captures the hit rate while bounding the
// address space pinned by idle mappings; the least-recently-used mapping
// is unmapped once its in-flight requests release it.
const refCacheCap = 16

// mapCache caches resolved by-ref tensor mappings across requests, keyed
// by the sandbox-resolved path. Before the cache, every /v1/mttkrp-ref
// request re-opened and re-mapped its file (~27 µs of open+header+checksum
// per request); a hit now costs one stat — the Stale revalidation — and a
// refcount bump.
//
// Entries are refcounted: the cache itself holds one reference while the
// entry is resident, and every in-flight request holds one more, so an
// eviction (or stale replacement) never unmaps memory a running kernel is
// reading — the mapping closes when the last holder releases it.
type mapCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*mapEntry
	order   []string // LRU order, most recently used last
}

// mapEntry is one cached (or cache-bypassing) mapping plus its refcount.
type mapEntry struct {
	c    *mapCache
	path string
	m    *tensor.Map
	refs int  // cache residency (1) + in-flight requests
	dead bool // no longer resident: close on last release
}

func newMapCache(capacity int) *mapCache {
	if capacity < 1 {
		capacity = refCacheCap
	}
	return &mapCache{cap: capacity, entries: make(map[string]*mapEntry)}
}

// Map returns the entry's tensor mapping, valid until Release.
func (e *mapEntry) Map() *tensor.Map { return e.m }

// Release drops one reference; the last release of a dead (evicted,
// stale-replaced or never-cached) entry unmaps the tensor.
func (e *mapEntry) Release() {
	e.c.mu.Lock()
	e.refs--
	closeNow := e.dead && e.refs == 0
	e.c.mu.Unlock()
	if closeNow {
		e.m.Close()
	}
}

// acquire returns a referenced entry for path if one is resident and still
// matches the file on disk. A resident-but-stale mapping (the file was
// rewritten since it was mapped) is evicted and reported as a miss, so the
// caller re-opens and re-validates — the cache never serves bytes whose
// identity the Stale check can no longer vouch for.
func (c *mapCache) acquire(path string) (*mapEntry, bool) {
	c.mu.Lock()
	e, ok := c.entries[path]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	if e.m.Stale() {
		c.evictLocked(e)
		c.mu.Unlock()
		return nil, false
	}
	e.refs++
	c.touchLocked(path)
	c.mu.Unlock()
	return e, true
}

// insert caches a freshly opened mapping and returns its entry with one
// request reference held. If another request raced the same path into the
// cache first, the new mapping stays uncached (dead from birth): it serves
// this request and closes on release, and the resident entry keeps serving
// everyone else — simpler than re-validating a swap, and the race costs
// one extra mapping at worst.
func (c *mapCache) insert(path string, m *tensor.Map) *mapEntry {
	e := &mapEntry{c: c, path: path, m: m, refs: 1}
	c.mu.Lock()
	if _, taken := c.entries[path]; taken {
		e.dead = true
		c.mu.Unlock()
		return e
	}
	e.refs++ // the cache's own reference
	c.entries[path] = e
	c.order = append(c.order, path)
	for len(c.entries) > c.cap {
		c.evictLocked(c.entries[c.order[0]])
	}
	c.mu.Unlock()
	return e
}

// evict removes the entry from the cache if it is still resident; the
// mapping closes once in-flight holders release it.
func (c *mapCache) evict(e *mapEntry) {
	c.mu.Lock()
	c.evictLocked(e)
	c.mu.Unlock()
}

// evictLocked drops the cache's reference to a resident entry. Callers
// hold c.mu.
func (c *mapCache) evictLocked(e *mapEntry) {
	if c.entries[e.path] != e {
		return // already evicted (or a racing replacement owns the key)
	}
	delete(c.entries, e.path)
	for i, p := range c.order {
		if p == e.path {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	e.dead = true
	e.refs--
	if e.refs == 0 {
		// Safe under c.mu: nobody else can reach a dead zero-ref entry.
		e.m.Close()
	}
}

// touchLocked moves path to the most-recently-used end. Callers hold c.mu.
func (c *mapCache) touchLocked(path string) {
	for i, p := range c.order {
		if p == path {
			c.order = append(append(c.order[:i], c.order[i+1:]...), path)
			return
		}
	}
}

// drain evicts every resident mapping (in-flight holders still finish
// before their mappings close). Called on server shutdown so idle cached
// mappings do not outlive the transport.
func (c *mapCache) drain() {
	c.mu.Lock()
	for _, path := range append([]string(nil), c.order...) {
		if e, ok := c.entries[path]; ok {
			c.evictLocked(e)
		}
	}
	c.mu.Unlock()
}

// len reports the number of resident entries (tests).
func (c *mapCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
