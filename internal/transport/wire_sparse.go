package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Sparse request payload (wire version 2, OpSparseMTTKRP): after the
// header's dimension list and nnz field come
//
//	order × nnz   int32 coordinates, mode-major (mode 0's nnz coordinates,
//	              then mode 1's, ...), 0-based, little-endian
//	nnz           float64 values, little-endian
//	order         I_k × rank row-major float64 factor matrices
//
// Mode-major coordinate slabs keep the decode zero-copy: each mode's
// column aliases one contiguous run of the pooled int32 buffer, which is
// exactly the [][]int32 shape tensor.SparseFromCOO takes ownership of.
// Canonical payloads are sorted and deduped (tensor.Sparse serializes
// that way), hitting SparseFromCOO's sorted fast path; unsorted or
// duplicated hostile input is re-canonicalized there rather than
// rejected.

// writeInts streams data to w as little-endian int32s in chunks through
// scratch (≥ 4 bytes; nil allocates a default chunk).
func writeInts(w io.Writer, data []int32, scratch []byte) error {
	if len(scratch) < 4 {
		scratch = make([]byte, scratchBytes)
	}
	for len(data) > 0 {
		n := min(len(data), len(scratch)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[4*i:], uint32(data[i]))
		}
		if _, err := w.Write(scratch[:4*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// readInts fills dst from r, decoding little-endian int32s in chunks
// through scratch. A short read returns io.ErrUnexpectedEOF, so a
// truncated coordinate block is a decode error, never a silent
// short tensor.
func readInts(r io.Reader, dst []int32, scratch []byte) error {
	if len(scratch) < 4 {
		scratch = make([]byte, scratchBytes)
	}
	for len(dst) > 0 {
		n := min(len(dst), len(scratch)/4)
		if _, err := io.ReadFull(r, scratch[:4*n]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("transport: short index payload: %w", err)
		}
		for i := 0; i < n; i++ {
			dst[i] = int32(binary.LittleEndian.Uint32(scratch[4*i:]))
		}
		dst = dst[n:]
	}
	return nil
}

// WriteSparseRequest streams one complete sparse MTTKRP request — header,
// coordinate slabs, values, factor matrices — to w. The header's Dims and
// NNZ must describe x (use SparseHeader to build one).
func WriteSparseRequest(w io.Writer, h *Header, x *tensor.Sparse, factors []mat.View) error {
	if err := h.Validate(0); err != nil {
		return err
	}
	if !h.sparse() {
		return fmt.Errorf("transport: WriteSparseRequest with op %d", h.Op)
	}
	if x.NNZ() != h.NNZ {
		return fmt.Errorf("transport: header nnz %d, tensor has %d", h.NNZ, x.NNZ())
	}
	if err := WriteHeader(w, h); err != nil {
		return err
	}
	scratch := make([]byte, scratchBytes)
	for k := 0; k < x.Order(); k++ {
		if err := writeInts(w, x.Index(k), scratch); err != nil {
			return err
		}
	}
	if err := writeFloats(w, x.Values(), scratch); err != nil {
		return err
	}
	for k, u := range factors {
		if u.R != x.Dim(k) || u.C != h.Rank {
			return fmt.Errorf("transport: factor %d is %dx%d, want %dx%d", k, u.R, u.C, x.Dim(k), h.Rank)
		}
		if u.IsRowMajor() {
			if err := writeFloats(w, u.Data[:u.R*u.C], scratch); err != nil {
				return err
			}
			continue
		}
		row := make([]float64, u.C)
		for i := 0; i < u.R; i++ {
			for j := 0; j < u.C; j++ {
				row[j] = u.At(i, j)
			}
			if err := writeFloats(w, row, scratch); err != nil {
				return err
			}
		}
	}
	return nil
}

// SparseHeader builds the wire header for one sparse MTTKRP request.
func SparseHeader(x *tensor.Sparse, method core.Method, mode, rank int) *Header {
	return &Header{
		Op:     OpSparseMTTKRP,
		Method: method,
		Mode:   mode,
		Rank:   rank,
		Dims:   x.Dims(),
		NNZ:    x.NNZ(),
	}
}

// DecodeSparseRequest reads the payload a validated sparse header promises
// into ints (length ≥ h.IndexInts()) and floats (length ≥
// h.PayloadFloats()) and returns the tensor and factor views aliasing
// them. The caller owns both buffers and must keep them live until the
// computation completes — the same zero-copy contract as DecodeRequest,
// with the coordinate slabs landing in a pooled int32 buffer. Out-of-range
// coordinates are rejected here (by tensor.SparseFromCOO's validation),
// so a hostile payload cannot index outside the factor matrices.
func DecodeSparseRequest(r io.Reader, h *Header, ints []int32, floats []float64, scratch []byte) (*tensor.Sparse, []mat.View, error) {
	needI, needF := h.IndexInts(), h.PayloadFloats()
	if len(ints) < needI {
		return nil, nil, fmt.Errorf("transport: index buffer holds %d ints, need %d", len(ints), needI)
	}
	if len(floats) < needF {
		return nil, nil, fmt.Errorf("transport: decode buffer holds %d floats, need %d", len(floats), needF)
	}
	if err := readInts(r, ints[:needI], scratch); err != nil {
		return nil, nil, err
	}
	if err := readFloats(r, floats[:needF], scratch); err != nil {
		return nil, nil, err
	}
	nnz := int(h.NNZ)
	idx := make([][]int32, len(h.Dims))
	for k := range idx {
		idx[k] = ints[k*nnz : (k+1)*nnz]
	}
	x, err := tensor.SparseFromCOO(h.Dims, idx, floats[:nnz])
	if err != nil {
		return nil, nil, fmt.Errorf("transport: bad sparse payload: %w", err)
	}
	factors := make([]mat.View, len(h.Dims))
	off := nnz
	for k, d := range h.Dims {
		factors[k] = mat.FromRowMajor(floats[off:off+d*h.Rank], d, h.Rank)
		off += d * h.Rank
	}
	return x, factors, nil
}
