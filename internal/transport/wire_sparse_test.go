package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// sparseProblem builds a deterministic sparse MTTKRP instance.
func sparseProblem(seed int64, density float64, rank int, dims ...int) (*tensor.Sparse, []mat.View) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.RandomSparse(rng, density, dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), rank, rng)
	}
	return x, u
}

// TestSparseWireRoundTrip pins that an encode/decode cycle reproduces the
// tensor and factors bit-exactly, and that the decoded tensor hits the
// sorted fast path (no re-canonicalization of a canonical payload).
func TestSparseWireRoundTrip(t *testing.T) {
	x, u := sparseProblem(1, 0.05, 4, 12, 10, 8)
	h := SparseHeader(x, core.MethodAuto, 1, 4)
	if h.WireSize() != int64(fixedHeaderLen+4*3+8)+h.PayloadBytes() {
		t.Fatalf("wire size %d inconsistent with header layout", h.WireSize())
	}

	var buf bytes.Buffer
	if err := WriteSparseRequest(&buf, h, x, u); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != h.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", buf.Len(), h.WireSize())
	}

	h2, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Op != OpSparseMTTKRP || h2.NNZ != x.NNZ() || h2.Mode != 1 || h2.Rank != 4 {
		t.Fatalf("decoded header %+v", h2)
	}
	if err := h2.Validate(0); err != nil {
		t.Fatal(err)
	}
	ints := make([]int32, h2.IndexInts())
	floats := make([]float64, h2.PayloadFloats())
	x2, u2, err := DecodeSparseRequest(&buf, h2, ints, floats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x2.NNZ() != x.NNZ() {
		t.Fatalf("decoded nnz %d, want %d", x2.NNZ(), x.NNZ())
	}
	for p := 0; p < int(x.NNZ()); p++ {
		for k := 0; k < 3; k++ {
			if x2.Index(k)[p] != x.Index(k)[p] {
				t.Fatalf("entry %d mode %d coordinate differs", p, k)
			}
		}
		if x2.Values()[p] != x.Values()[p] {
			t.Fatalf("entry %d value differs", p)
		}
	}
	for k := range u {
		if !mat.ApproxEqual(u2[k], u[k], 0) {
			t.Fatalf("factor %d differs after round trip", k)
		}
	}
	// Zero-copy contract: the decoded coordinates alias the caller's
	// buffers (the sorted fast path must not have re-materialized them).
	if &x2.Index(0)[0] != &ints[0] {
		t.Fatal("decoded indices do not alias the provided buffer")
	}
	if &x2.Values()[0] != &floats[0] {
		t.Fatal("decoded values do not alias the provided buffer")
	}
}

// TestSparseWireTruncation pins that a payload cut at any stage (indices,
// values, factors) decodes to an error, never a short tensor.
func TestSparseWireTruncation(t *testing.T) {
	x, u := sparseProblem(2, 0.1, 3, 8, 7, 6)
	h := SparseHeader(x, core.MethodAuto, 0, 3)
	var full bytes.Buffer
	if err := WriteSparseRequest(&full, h, x, u); err != nil {
		t.Fatal(err)
	}
	wire := full.Bytes()
	headerLen := fixedHeaderLen + 4*3 + 8
	for _, cut := range []int{
		headerLen + 1,                    // mid-indices
		headerLen + 4*int(x.NNZ())*3 + 5, // mid-values
		len(wire) - 3,                    // mid-factors
	} {
		r := bytes.NewReader(wire[:cut])
		h2, err := ReadHeader(r)
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		ints := make([]int32, h2.IndexInts())
		floats := make([]float64, h2.PayloadFloats())
		if _, _, err := DecodeSparseRequest(r, h2, ints, floats, nil); err == nil {
			t.Fatalf("cut %d: truncated payload decoded without error", cut)
		}
	}
}

// TestSparseWireRejection pins the hostile-header and hostile-payload
// paths: nnz overflow, version downgrade, out-of-range coordinates.
func TestSparseWireRejection(t *testing.T) {
	x, u := sparseProblem(3, 0.1, 2, 6, 5)

	t.Run("nnz exceeds shape capacity", func(t *testing.T) {
		h := SparseHeader(x, core.MethodAuto, 0, 2)
		h.NNZ = int64(6*5) + 1
		err := h.Validate(0)
		if !errors.Is(err, ErrPayloadTooLarge) {
			t.Fatalf("got %v, want ErrPayloadTooLarge", err)
		}
	})

	t.Run("nnz bytes exceed payload cap", func(t *testing.T) {
		h := SparseHeader(x, core.MethodAuto, 0, 2)
		if err := h.Validate(64); !errors.Is(err, ErrPayloadTooLarge) {
			t.Fatalf("got %v, want ErrPayloadTooLarge", err)
		}
	})

	t.Run("sparse op at wire version 1", func(t *testing.T) {
		h := SparseHeader(x, core.MethodAuto, 0, 2)
		var buf bytes.Buffer
		if err := WriteHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		wire[4] = wireVersion // downgrade the version byte
		_, err := ReadHeader(bytes.NewReader(wire))
		if err == nil || !strings.Contains(err.Error(), "requires wire version") {
			t.Fatalf("downgraded sparse header accepted: %v", err)
		}
	})

	t.Run("out-of-range coordinate", func(t *testing.T) {
		h := SparseHeader(x, core.MethodAuto, 0, 2)
		var buf bytes.Buffer
		if err := WriteSparseRequest(&buf, h, x, u); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		// Corrupt the first mode-0 coordinate to dim 0's size.
		headerLen := fixedHeaderLen + 4*2 + 8
		wire[headerLen] = 6
		r := bytes.NewReader(wire)
		h2, err := ReadHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		ints := make([]int32, h2.IndexInts())
		floats := make([]float64, h2.PayloadFloats())
		if _, _, err := DecodeSparseRequest(r, h2, ints, floats, nil); err == nil {
			t.Fatal("out-of-range coordinate decoded without error")
		}
	})
}

// TestHTTPSparseMTTKRPRoundTrip pins the served sparse path end to end:
// the result matches the local kernel, and the scheduler's stats show the
// request was admitted and priced.
func TestHTTPSparseMTTKRPRoundTrip(t *testing.T) {
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}})
	x, u := sparseProblem(4, 0.05, 5, 14, 12, 10)
	for mode := 0; mode < x.Order(); mode++ {
		got, tm, err := c.SparseMTTKRP(mat.View{}, x, u, mode, core.MethodAuto)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		want := core.SparseCompute(x, u, mode, core.Options{})
		if !mat.ApproxEqual(got, want, 1e-12) {
			t.Fatalf("mode %d: served sparse result diverges from local kernel", mode)
		}
		if tm.Compute <= 0 {
			t.Fatalf("mode %d: missing compute timing (%v)", mode, tm)
		}
	}
	// Steady state: a retained dst receives the result without allocating.
	dst := mat.NewDense(x.Dim(1), 5)
	if _, _, err := c.SparseMTTKRP(dst, x, u, 1, core.MethodAuto); err != nil {
		t.Fatal(err)
	}
	want := core.SparseCompute(x, u, 1, core.Options{})
	if !mat.ApproxEqual(dst, want, 1e-12) {
		t.Fatal("dst-reuse sparse round trip diverges")
	}
	st := s.Stats()
	if st.BytesIn == 0 || st.Serve.Completed < 4 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
}

// TestHTTPSparseRejection pins the HTTP mapping of sparse wire errors: an
// oversized nnz is 413, a dense request on the sparse endpoint is 400.
func TestHTTPSparseRejection(t *testing.T) {
	_, c := startServer(t, Config{
		Serve:           serve.Config{Workers: 1},
		MaxPayloadBytes: 1 << 10,
	})
	x, u := sparseProblem(5, 0.5, 4, 20, 20, 20)
	_, _, err := c.SparseMTTKRP(mat.View{}, x, u, 0, core.MethodAuto)
	if !errors.Is(err, ErrPayloadTooLarge) {
		// The client validates with no cap; the server's cap surfaces as 413.
		var he *HTTPError
		if !errors.As(err, &he) || he.StatusCode != 413 {
			t.Fatalf("oversized sparse request: %v, want 413", err)
		}
	}

	dense, du := problem(6, 3, 6, 5, 4)
	h := &Header{Op: OpMTTKRP, Mode: 0, Rank: 3, Dims: dense.Dims()}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, h, dense, du); err != nil {
		t.Fatal(err)
	}
	resp, err := c.HTTPClient.Post(c.BaseURL+"/v1/sparse-mttkrp", "application/x-tensor-wire", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("dense op on sparse endpoint: %d, want 400", resp.StatusCode)
	}
}
