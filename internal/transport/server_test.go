package transport

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// problem builds a deterministic MTTKRP instance.
func problem(seed int64, rank int, dims ...int) (*tensor.Dense, []mat.View) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), rank, rng)
	}
	return x, u
}

// startServer runs a transport server on an httptest listener and returns
// a connected client.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.sched.Close()
	})
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	return s, c
}

// TestHTTPMTTKRPRoundTrip pins that a served MTTKRP equals the local
// kernel on the same inputs, for every method and a strided dst reuse.
func TestHTTPMTTKRPRoundTrip(t *testing.T) {
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}})
	x, u := problem(42, 5, 9, 8, 7)
	for _, method := range []core.Method{core.MethodAuto, core.MethodOneStep, core.MethodTwoStep, core.MethodReorder} {
		for mode := 0; mode < x.Order(); mode++ {
			got, tm, err := c.MTTKRP(mat.View{}, x, u, mode, method)
			if err != nil {
				t.Fatalf("method %d mode %d: %v", method, mode, err)
			}
			want := core.Compute(method, x, u, mode, core.Options{})
			if !mat.ApproxEqual(got, want, 1e-13) {
				t.Fatalf("method %d mode %d: served result diverges from local kernel", method, mode)
			}
			if tm.Compute <= 0 {
				t.Fatalf("method %d mode %d: missing compute timing (%v)", method, mode, tm)
			}
		}
	}
	// Steady state: a retained dst receives the result without allocating.
	dst := mat.NewDense(x.Dim(1), 5)
	if _, _, err := c.MTTKRP(dst, x, u, 1, core.MethodAuto); err != nil {
		t.Fatal(err)
	}
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{})
	if !mat.ApproxEqual(dst, want, 1e-13) {
		t.Fatal("dst-reuse round trip diverges")
	}
	if st := s.Stats(); st.BytesIn == 0 || st.DecodeNs == 0 || st.ComputeNs == 0 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
}

// TestHTTPCPRoundTrip pins that a served CP run reproduces a local run
// with the same seed and budget, factors included.
func TestHTTPCPRoundTrip(t *testing.T) {
	_, c := startServer(t, Config{Serve: serve.Config{Workers: 2}})
	rng := rand.New(rand.NewSource(8))
	x := tensor.Random(rng, 12, 10, 8)
	res, tm, err := c.CP(x, 4, 6, 123)
	if err != nil {
		t.Fatal(err)
	}
	local, err := cpd.ALS(x, cpd.Config{Rank: 4, MaxIters: 6, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != local.Iters {
		t.Fatalf("served %d iters, local %d", res.Iters, local.Iters)
	}
	if diff := res.Fit - local.Fit; diff > 1e-10 || diff < -1e-10 {
		t.Fatalf("served fit %g, local %g", res.Fit, local.Fit)
	}
	for n := range local.K.Factors {
		if !mat.ApproxEqual(res.K.Factors[n], local.K.Factors[n], 1e-10) {
			t.Fatalf("served factor %d diverges from local run", n)
		}
	}
	if tm.Compute <= 0 || tm.Total < tm.Compute {
		t.Fatalf("implausible timing %+v", tm)
	}
}

// TestHTTPRejections covers the 4xx paths: malformed wire, wrong-endpoint
// op, oversized payload, rate quota, and byte quota.
func TestHTTPRejections(t *testing.T) {
	_, c := startServer(t, Config{
		Serve:           serve.Config{Workers: 2},
		Quota:           QuotaConfig{RequestsPerSec: 0.001, Burst: 2, MaxInflightBytes: 1 << 20},
		MaxPayloadBytes: 1 << 22,
	})
	x, u := problem(1, 3, 6, 5, 4)

	// Garbage body → 400.
	resp, err := c.HTTPClient.Post(c.BaseURL+"/v1/mttkrp", "application/octet-stream",
		bytes.NewReader([]byte("this is not a wire request at all........")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", resp.StatusCode)
	}

	// MTTKRP wire on the CP endpoint → 400.
	var wire bytes.Buffer
	h := &Header{Op: OpMTTKRP, Mode: 0, Rank: 3, Dims: x.Dims()}
	if err := WriteRequest(&wire, h, x, u); err != nil {
		t.Fatal(err)
	}
	resp, err = c.HTTPClient.Post(c.BaseURL+"/v1/cp", "application/octet-stream", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched op: %d, want 400", resp.StatusCode)
	}

	// Burst is exhausted by the two requests above (rate 0.001/s refills
	// nothing measurable); the third is rate-limited.
	_, _, err = c.MTTKRP(mat.View{}, x, u, 0, core.MethodAuto)
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited request: %v, want 429", err)
	}

	// A different principal is admitted — and its oversized payload draws
	// 413 (header-level rejection, before any payload read).
	big := NewClient(c.BaseURL)
	big.HTTPClient = c.HTTPClient
	big.APIKey = "big-tenant"
	bx := tensor.New(512, 512, 8) // 16 MiB payload > 4 MiB cap
	bu := []mat.View{mat.NewDense(512, 1), mat.NewDense(512, 1), mat.NewDense(8, 1)}
	_, _, err = big.MTTKRP(mat.View{}, bx, bu, 0, core.MethodAuto)
	if !errors.As(err, &he) || he.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized payload: %v, want 413", err)
	}

	// In-flight byte quota: a payload above the per-client cap → 429.
	_, c2 := startServer(t, Config{
		Serve: serve.Config{Workers: 2},
		Quota: QuotaConfig{MaxInflightBytes: 1 << 10},
	})
	_, _, err = c2.MTTKRP(mat.View{}, x, u, 0, core.MethodAuto) // ~4 KiB payload > 1 KiB cap
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("byte-quota request: %v, want 429", err)
	}
}

// TestHTTPAdmissionHeaders covers the client-side admission knobs: a
// well-formed X-Priority/X-Cost-Hint pair is accepted and served, and
// malformed values are rejected up front with 400 (counted as bad
// requests, before any payload decode).
func TestHTTPAdmissionHeaders(t *testing.T) {
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}})
	x, u := problem(11, 4, 8, 7, 6)

	c.Priority = "high"
	c.CostHint = 1e6
	got, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto)
	if err != nil {
		t.Fatalf("prioritized request: %v", err)
	}
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{})
	if !mat.ApproxEqual(got, want, 1e-13) {
		t.Fatal("prioritized request diverges from local kernel")
	}

	bad := NewClient(c.BaseURL)
	bad.HTTPClient = c.HTTPClient
	bad.Priority = "urgent" // not a QoS class
	var he *HTTPError
	if _, _, err := bad.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto); !errors.As(err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus X-Priority: %v, want 400", err)
	}
	bad.Priority = ""
	bad.CostHint = -3 // client-side guard skips non-positive hints…
	if _, _, err := bad.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto); err != nil {
		t.Fatalf("non-positive CostHint must be dropped client-side, got %v", err)
	}
	// …but a hand-rolled bad header on an otherwise valid wire request is
	// a server-side 400 from the admission check itself (the wire header
	// decodes fine, so nothing else can produce the rejection).
	var wire bytes.Buffer
	if err := WriteRequest(&wire, &Header{Op: OpMTTKRP, Mode: 1, Rank: 4, Dims: x.Dims()}, x, u); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/mttkrp", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Cost-Hint", "not-a-float")
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad X-Cost-Hint: %d, want 400", resp.StatusCode)
	}
	if st := s.Stats(); st.BadRequests < 2 {
		t.Fatalf("stats %+v: header rejections not counted as bad requests", st)
	}
}

// TestHTTPCostHintClamped pins that X-Cost-Hint is a refinement, not a
// priority lever: a microscopic hint is clamped to within a bounded
// factor of the server's own model estimate before it reaches the aging
// queue, observable as the queued request's cost in the scheduler's
// grant table.
func TestHTTPCostHintClamped(t *testing.T) {
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2, MaxActive: 1}})
	x, u := problem(17, 4, 10, 9, 8)

	// Saturate the only admission slot so the hinted request queues long
	// enough to observe.
	blocker := s.sched.SubmitCP(serve.CPRequest{
		X:      x,
		Config: cpd.Config{Rank: 3, MaxIters: 1500, Tol: -1},
	})
	for {
		if st := s.sched.Stats(); st.Active >= 1 {
			break
		}
		select {
		case <-blocker.Done():
			t.Fatal("blocker finished before saturation was observed")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}

	liar := NewClient(c.BaseURL)
	liar.HTTPClient = c.HTTPClient
	liar.CostHint = 1e-300
	done := make(chan error, 1)
	go func() {
		_, _, err := liar.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto)
		done <- err
	}()
	estimate := s.sched.Model().MTTKRP(x.Dims(), 4)
	for {
		st := s.sched.Stats()
		var queuedCost float64
		for _, r := range st.Requests {
			if r.Kind == "mttkrp" && r.Budget == 0 {
				queuedCost = r.Cost
			}
		}
		if queuedCost != 0 {
			if queuedCost < estimate/16 {
				t.Fatalf("queued cost %g for hint 1e-300, want ≥ estimate/16 = %g (clamp defeated)", queuedCost, estimate/16)
			}
			break
		}
		select {
		case err := <-done:
			t.Fatalf("hinted request finished (%v) before it was observed queued", err)
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("hinted request: %v", err)
	}
}

// TestHTTPShedMaxQueueDelay pins the 429-versus-queue decision: once the
// scheduler is saturated and its projected admission delay exceeds
// MaxQueueDelay, new requests are shed up front with Retry-After instead
// of queued — and served again after the backlog drains.
func TestHTTPShedMaxQueueDelay(t *testing.T) {
	s, c := startServer(t, Config{
		Serve:         serve.Config{Workers: 2, MaxActive: 1},
		MaxQueueDelay: time.Nanosecond, // any measurable backlog sheds
	})
	x, u := problem(13, 4, 10, 9, 8)

	// Seed the scheduler's service-rate estimate (ProjectedWait reports 0
	// until one batch has completed; with no estimate nothing sheds).
	if _, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Saturate the only admission slot with a long CP run whose declared
	// cost dwarfs the service rate, so any request's projected delay is
	// enormous while it runs.
	blocker := s.sched.SubmitCP(serve.CPRequest{
		X:        x,
		Config:   cpd.Config{Rank: 3, MaxIters: 1500, Tol: -1},
		CostHint: 1e12,
	})
	for {
		if st := s.sched.Stats(); st.Active >= 1 {
			break
		}
		select {
		case <-blocker.Done():
			t.Fatal("blocker finished before saturation was observed")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}

	var he *HTTPError
	_, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto)
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %v, want 429 shed", err)
	}
	if he.Message == "" || resp429RetryAfterMissing(he) {
		t.Fatalf("shed response carries no guidance: %+v", he)
	}
	if st := s.Stats(); st.ShedRejected < 1 {
		t.Fatalf("stats %+v: shed not counted", st)
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}

	// Backlog drained: requests are admitted again.
	if _, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto); err != nil {
		t.Fatalf("post-drain request: %v", err)
	}
}

// resp429RetryAfterMissing is a placeholder check: HTTPError does not
// retain headers, so the Retry-After presence is pinned via the message
// text the handler writes alongside it.
func resp429RetryAfterMissing(he *HTTPError) bool {
	return !strings.Contains(he.Message, "projected queue delay")
}

// TestHTTPGracefulDrain pins the drain contract end to end over a real
// listener: a request in flight when Shutdown begins completes
// successfully, requests arriving during the drain see 503, and Shutdown
// returns only after the scheduler is idle.
func TestHTTPGracefulDrain(t *testing.T) {
	s := NewServer(Config{Serve: serve.Config{Workers: 2}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	c := NewClient("http://" + l.Addr().String())

	x, u := problem(5, 4, 16, 14, 12)
	if err := c.Healthy(); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}

	// Saturate the server with requests racing the shutdown; every one
	// must either complete correctly or fail with the retryable 503 —
	// nothing hangs, nothing returns a wrong answer.
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{})
	var wg sync.WaitGroup
	results := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto)
			if err == nil && !mat.ApproxEqual(m, want, 1e-13) {
				err = errors.New("drain-raced result diverges")
			}
			results[i] = err
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	completed := 0
	for i, err := range results {
		var he *HTTPError
		switch {
		case err == nil:
			completed++
		case errors.As(err, &he) && he.StatusCode == http.StatusServiceUnavailable:
			// refused by the drain — the retryable path
		case errors.Is(err, context.DeadlineExceeded):
			t.Fatalf("request %d hung through the drain", i)
		default:
			// Connection-level errors are possible for requests that hit
			// the closed listener; they must at least be errors, which
			// they are by construction here.
		}
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
	// The scheduler is released: a late direct submission is refused.
	if err := s.sched.SubmitMTTKRP(serve.MTTKRPRequest{X: x, Factors: u, Mode: 0}).Err(); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain submission: %v, want ErrDraining", err)
	}
	t.Logf("drain race: %d/%d completed, rest rejected cleanly", completed, len(results))
}

// TestRetryAfterCeiledToWholeSeconds pins the 429 shed hint's rounding:
// sub-second projected waits must round UP to 1 — a truncated "0" tells a
// well-behaved client to retry immediately, defeating the shed — and
// exact whole-second waits must not gain a spurious extra second.
func TestRetryAfterCeiledToWholeSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int64
	}{
		{time.Nanosecond, 1},
		{time.Millisecond, 1},
		{500 * time.Millisecond, 1}, // the sub-second case the truncation bug zeroed
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2}, // the floor+1 bug reported 3 here
		{2*time.Second + 500*time.Millisecond, 3},
	} {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}

// TestRetryAfterSubSecondShed drives the sub-second shed end to end
// through the HTTP handler: a saturated scheduler whose projected wait
// can be well under a second must answer 429 with a Retry-After the
// client can obey — an integer ≥ 1, never the truncated "0" that tells a
// well-behaved client to retry immediately.
func TestRetryAfterSubSecondShed(t *testing.T) {
	s, c := startServer(t, Config{
		Serve:         serve.Config{Workers: 2, MaxActive: 1},
		MaxQueueDelay: time.Nanosecond, // any measurable backlog sheds
	})
	x, u := problem(29, 4, 8, 7, 6)
	// Seed the service-rate estimate (ProjectedWait reports 0 until one
	// batch has completed; with no estimate nothing sheds).
	if _, _, err := c.MTTKRP(mat.View{}, x, u, 1, core.MethodAuto); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	// Saturate the only admission slot so every projected wait is
	// positive while the blocker runs.
	blocker := s.sched.SubmitCP(serve.CPRequest{
		X:        x,
		Config:   cpd.Config{Rank: 2, MaxIters: 500, Tol: -1},
		CostHint: 1e9,
	})
	for {
		if st := s.sched.Stats(); st.Active >= 1 {
			break
		}
		select {
		case <-blocker.Done():
			t.Skip("blocker finished before saturation was observed")
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}

	var body bytes.Buffer
	h := &Header{Op: OpMTTKRP, Mode: 1, Rank: 4, Dims: x.Dims()}
	if err := WriteRequest(&body, h, x, u); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/mttkrp", &body))
	if rec.Code != http.StatusTooManyRequests {
		t.Skipf("status %d: backlog drained before the shed could be observed", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.ParseInt(ra, 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("shed Retry-After = %q, want an integer >= 1", ra)
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
}
