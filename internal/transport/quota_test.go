package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestQuotaRateBucket drives the token bucket with a synthetic clock, so
// refill behavior is deterministic.
func TestQuotaRateBucket(t *testing.T) {
	q := newQuotaTable(QuotaConfig{RequestsPerSec: 2, Burst: 4})
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		if !q.allowRequest("a", now) {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if q.allowRequest("a", now) {
		t.Fatal("request beyond burst admitted")
	}
	// Another client is unaffected.
	if !q.allowRequest("b", now) {
		t.Fatal("independent client rejected")
	}
	// Half a second refills one token at 2 req/s.
	now = now.Add(500 * time.Millisecond)
	if !q.allowRequest("a", now) {
		t.Fatal("refilled token rejected")
	}
	if q.allowRequest("a", now) {
		t.Fatal("second token admitted after a one-token refill")
	}
	// A long idle period refills to Burst, not beyond.
	now = now.Add(time.Hour)
	admitted := 0
	for q.allowRequest("a", now) {
		admitted++
	}
	if admitted != 4 {
		t.Fatalf("refilled to %d tokens, want Burst=4", admitted)
	}
}

func TestQuotaInflightBytes(t *testing.T) {
	q := newQuotaTable(QuotaConfig{MaxInflightBytes: 100})
	now := time.Unix(1000, 0)
	if !q.acquireBytes("a", 60, now) || !q.acquireBytes("a", 40, now) {
		t.Fatal("within-budget acquisitions rejected")
	}
	if q.acquireBytes("a", 1, now) {
		t.Fatal("over-budget acquisition admitted")
	}
	if !q.acquireBytes("b", 100, now) {
		t.Fatal("independent client rejected")
	}
	q.releaseBytes("a", 40, now)
	if !q.acquireBytes("a", 40, now) {
		t.Fatal("released budget not reusable")
	}
	// A single oversized request can never fit.
	if q.acquireBytes("c", 101, now) {
		t.Fatal("single request above the cap admitted")
	}
}

// TestQuotaConcurrentUpdates is the satellite race test: many goroutines
// hammer one table across overlapping keys under -race, and conservation
// holds — in-flight bytes return to zero and admissions never exceed
// burst + refill.
func TestQuotaConcurrentUpdates(t *testing.T) {
	q := newQuotaTable(QuotaConfig{RequestsPerSec: 1000, Burst: 50, MaxInflightBytes: 1 << 20})
	const workers = 16
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("client-%d", w%4)
			for i := 0; i < iters; i++ {
				now := time.Now()
				q.allowRequest(key, now)
				if q.acquireBytes(key, 512, now) {
					q.releaseBytes(key, 512, now)
				}
			}
		}(w)
	}
	wg.Wait()
	now := time.Now()
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("client-%d", i)
		if got := q.bucket(key, now).inflight.Load(); got != 0 {
			t.Fatalf("%s: %d in-flight bytes leaked", key, got)
		}
	}
}

// TestQuotaTableEviction pins that the table stays bounded and only idle
// clients are evicted.
func TestQuotaTableEviction(t *testing.T) {
	q := newQuotaTable(QuotaConfig{MaxInflightBytes: 1 << 20})
	now := time.Unix(1000, 0)
	// One busy client that must survive eviction pressure.
	if !q.acquireBytes("busy", 100, now) {
		t.Fatal("busy acquisition rejected")
	}
	for i := 0; i < maxTrackedClients+64; i++ {
		q.bucket(fmt.Sprintf("c%d", i), now)
	}
	q.mu.Lock()
	n := len(q.buckets)
	_, busyAlive := q.buckets["busy"]
	q.mu.Unlock()
	if n > maxTrackedClients+1 {
		t.Fatalf("table grew to %d clients", n)
	}
	if !busyAlive {
		t.Fatal("client with in-flight bytes was evicted")
	}
}
