package transport

import "sync"

// floatPool recycles float64 payload buffers across requests, so the
// steady-state decode path reuses one warm slab per in-flight request
// instead of allocating a tensor-sized buffer per call. Buffers whose
// capacity falls short of a request are dropped and replaced — the pool
// converges on the working set's largest shapes.
type floatPool struct {
	pool sync.Pool // of *[]float64
}

func (p *floatPool) get(n int) []float64 {
	if v := p.pool.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func (p *floatPool) put(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// int32Pool recycles the sparse coordinate slabs, mirroring floatPool:
// one warm index buffer per in-flight sparse request.
type int32Pool struct {
	pool sync.Pool // of *[]int32
}

func (p *int32Pool) get(n int) []int32 {
	if v := p.pool.Get(); v != nil {
		b := *(v.(*[]int32))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]int32, n)
}

func (p *int32Pool) put(b []int32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// bytePool recycles the small chunk buffers the streaming codec converts
// through.
type bytePool struct {
	pool sync.Pool // of *[]byte
}

func (p *bytePool) get() []byte {
	if v := p.pool.Get(); v != nil {
		return *(v.(*[]byte))
	}
	return make([]byte, scratchBytes)
}

func (p *bytePool) put(b []byte) {
	p.pool.Put(&b)
}
