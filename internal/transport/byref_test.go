package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// writeTensorFile writes a deterministic random tensor into root/name in
// the mappable format and returns the tensor plus the reference a client
// would ship for it.
func writeTensorFile(t *testing.T, root, name string, seed int64, dims ...int) (*tensor.Dense, TensorRef) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Random(rng, dims...)
	path := filepath.Join(root, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tensor.WriteDenseFile(path, x); err != nil {
		t.Fatal(err)
	}
	info, err := tensor.StatDense(path)
	if err != nil {
		t.Fatal(err)
	}
	return x, RefFor(info, name)
}

// TestWireByRefHeaderRoundTrip pins the v3 header encoding: the reference
// block (identity triple + path) survives a write/read cycle, and the
// payload accounting excludes the tensor floats.
func TestWireByRefHeaderRoundTrip(t *testing.T) {
	h := &Header{
		Op: OpMTTKRPByRef, Method: core.MethodTwoStep, Mode: 1, Rank: 5,
		Dims: []int{9, 8, 7},
		Ref:  TensorRef{Path: "sub/x.dsnt", MTime: 1234567891011, Size: 42000, Checksum: 0xdeadbeefcafe},
	}
	if err := h.Validate(0); err != nil {
		t.Fatal(err)
	}
	if got, want := h.PayloadFloats(), (9+8+7)*5; got != want {
		t.Fatalf("PayloadFloats = %d, want %d (factors only — the tensor stays server-side)", got, want)
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != h.Op || got.Ref != h.Ref || got.Rank != h.Rank || got.Mode != h.Mode {
		t.Fatalf("round trip mangled the header: %+v vs %+v", got, h)
	}
	if len(got.Dims) != 3 || got.Dims[0] != 9 || got.Dims[1] != 8 || got.Dims[2] != 7 {
		t.Fatalf("round trip mangled dims: %v", got.Dims)
	}

	// Validate must reject structurally hostile references before any
	// payload sizing happens.
	for _, bad := range []TensorRef{
		{Path: ""},
		{Path: strings.Repeat("a", MaxRefPath+1)},
		{Path: "x\x00y"},
	} {
		hb := *h
		hb.Ref = bad
		if err := hb.Validate(0); err == nil {
			t.Fatalf("Validate accepted hostile ref path %q", bad.Path)
		}
	}
}

// TestHTTPMTTKRPByRefRoundTrip is the tentpole's transport acceptance: a
// by-reference request maps the server-resident file, computes through the
// tiled kernel path and matches the local untiled kernel exactly, while
// only the factor matrices cross the wire.
func TestHTTPMTTKRPByRefRoundTrip(t *testing.T) {
	root := t.TempDir()
	x, ref := writeTensorFile(t, root, "sub/x.dsnt", 31, 12, 10, 8)
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}, TensorRoot: root})

	rng := rand.New(rand.NewSource(32))
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), 5, rng)
	}
	for mode := 0; mode < x.Order(); mode++ {
		got, tm, err := c.MTTKRPByRef(mat.View{}, ref, x.Dims(), u, mode, core.MethodAuto)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		want := core.Compute(core.MethodAuto, x, u, mode, core.Options{})
		if !mat.ApproxEqual(got, want, 1e-13) {
			t.Fatalf("mode %d: by-ref result diverges from local kernel", mode)
		}
		if tm.Compute <= 0 {
			t.Fatalf("mode %d: missing compute timing (%v)", mode, tm)
		}
	}
	// Steady state: a retained dst receives the result without allocating.
	dst := mat.NewDense(x.Dim(1), 5)
	if _, _, err := c.MTTKRPByRef(dst, ref, x.Dims(), u, 1, core.MethodAuto); err != nil {
		t.Fatal(err)
	}
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{})
	if !mat.ApproxEqual(dst, want, 1e-13) {
		t.Fatal("dst-reuse by-ref round trip diverges")
	}
	st := s.Stats()
	if st.ByRefRequests != int64(x.Order()+1) || st.RefRejected != 0 {
		t.Fatalf("stats %+v: want %d by-ref requests, 0 rejected", st, x.Order()+1)
	}
	// The decode accounting must reflect the by-ref win: BytesIn counts
	// only the factor payload, not the tensor.
	factorBytes := int64(0)
	for _, f := range u {
		factorBytes += 8 * int64(f.R*f.C)
	}
	if st.BytesIn != int64(x.Order()+1)*factorBytes {
		t.Fatalf("BytesIn = %d, want %d (factors only)", st.BytesIn, int64(x.Order()+1)*factorBytes)
	}
}

// TestHTTPByRefSandbox covers the resolution failure matrix: escapes are
// 400, anything unreadable or outside the root is 404 (indistinguishable
// from absent by design), and identity drift is 409.
func TestHTTPByRefSandbox(t *testing.T) {
	root := t.TempDir()
	outside := t.TempDir()
	x, ref := writeTensorFile(t, root, "x.dsnt", 41, 9, 8, 7)
	_, outsideRef := writeTensorFile(t, outside, "secret.dsnt", 42, 9, 8, 7)
	if err := os.Symlink(filepath.Join(outside, "secret.dsnt"), filepath.Join(root, "link.dsnt")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}, TensorRoot: root})

	rng := rand.New(rand.NewSource(43))
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), 4, rng)
	}
	expect := func(label string, ref TensorRef, dims []int, wantStatus int) {
		t.Helper()
		_, _, err := c.MTTKRPByRef(mat.View{}, ref, dims, u, 1, core.MethodAuto)
		var he *HTTPError
		if !errors.As(err, &he) {
			t.Fatalf("%s: err = %v, want an HTTP rejection", label, err)
		}
		if he.StatusCode != wantStatus {
			t.Fatalf("%s: status %d (%s), want %d", label, he.StatusCode, he.Message, wantStatus)
		}
	}

	escape := ref
	escape.Path = "../escape.dsnt"
	expect("dot-dot escape", escape, x.Dims(), 400)

	missing := ref
	missing.Path = "absent.dsnt"
	expect("missing file", missing, x.Dims(), 404)

	link := outsideRef
	link.Path = "link.dsnt"
	expect("symlink escaping the root", link, x.Dims(), 400)

	stale := ref
	stale.Size++ // the client observed a different version
	expect("identity mismatch", stale, x.Dims(), 409)

	// Declared dims that disagree with the file's header (factors must
	// match the declaration to clear client-side validation).
	wrongDims := []int{9, 8, 6}
	saved := u[2]
	u[2] = mat.RandomDense(6, 4, rng)
	expect("dims mismatch", ref, wrongDims, 409)
	u[2] = saved

	// Rewriting the file under the same name invalidates the original
	// reference: size changes (or mtime, on coarse-grained filesystems).
	f, err := os.OpenFile(filepath.Join(root, "x.dsnt"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	expect("file rewritten after stat", ref, x.Dims(), 409)

	st := s.Stats()
	if st.RefRejected != 6 || st.ByRefRequests != 6 {
		t.Fatalf("stats %+v: want all 6 probes counted and rejected", st)
	}

	// No tensor root: the endpoint is disabled outright.
	_, c2 := startServer(t, Config{Serve: serve.Config{Workers: 2}})
	_, _, err = c2.MTTKRPByRef(mat.View{}, ref, x.Dims(), u, 1, core.MethodAuto)
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 404 {
		t.Fatalf("no-root request: err = %v, want 404", err)
	}
}
