package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// randomHeader draws a structurally valid random request shape.
func randomHeader(rng *rand.Rand, op Op) *Header {
	ndims := 2 + rng.Intn(3)
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 2 + rng.Intn(7)
	}
	return &Header{
		Op:     op,
		Method: core.Method(rng.Intn(4)),
		Mode:   rng.Intn(ndims),
		Rank:   1 + rng.Intn(6),
		Iters:  rng.Intn(8),
		Seed:   rng.Int63() - rng.Int63(),
		Dims:   dims,
	}
}

// TestWireRoundTripProperty is the property test of the satellite list:
// random dims/rank/mode/method requests survive encode → decode exactly.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		op := OpMTTKRP
		if trial%3 == 2 {
			op = OpCP
		}
		h := randomHeader(rng, op)
		x := tensor.Random(rng, h.Dims...)
		var factors []mat.View
		if op == OpMTTKRP {
			for k := 0; k < x.Order(); k++ {
				factors = append(factors, mat.RandomDense(x.Dim(k), h.Rank, rng))
			}
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, h, x, factors); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		if int64(buf.Len()) != h.WireSize() {
			t.Fatalf("trial %d: encoded %d bytes, WireSize says %d", trial, buf.Len(), h.WireSize())
		}
		got, err := ReadHeader(&buf)
		if err != nil {
			t.Fatalf("trial %d: read header: %v", trial, err)
		}
		if got.Op != h.Op || got.Method != h.Method || got.Mode != h.Mode ||
			got.Rank != h.Rank || got.Iters != h.Iters || got.Seed != h.Seed {
			t.Fatalf("trial %d: header %+v != %+v", trial, got, h)
		}
		if len(got.Dims) != len(h.Dims) {
			t.Fatalf("trial %d: dims %v != %v", trial, got.Dims, h.Dims)
		}
		for i := range h.Dims {
			if got.Dims[i] != h.Dims[i] {
				t.Fatalf("trial %d: dims %v != %v", trial, got.Dims, h.Dims)
			}
		}
		if err := got.Validate(0); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		slab := make([]float64, got.PayloadFloats())
		gx, gu, err := DecodeRequest(&buf, got, slab, nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if tensor.MaxAbsDiff(gx, x) != 0 {
			t.Fatalf("trial %d: tensor payload corrupted", trial)
		}
		for k := range factors {
			if mat.MaxAbsDiff(gu[k], factors[k]) != 0 {
				t.Fatalf("trial %d: factor %d corrupted", trial, k)
			}
		}
		if buf.Len() != 0 {
			t.Fatalf("trial %d: %d trailing bytes after decode", trial, buf.Len())
		}
	}
}

// TestWireTruncatedPayload pins that every proper prefix of a valid
// request fails with an error — never a panic, never a silent success.
func TestWireTruncatedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := &Header{Op: OpMTTKRP, Mode: 1, Rank: 3, Dims: []int{4, 3, 2}}
	x := tensor.Random(rng, h.Dims...)
	var factors []mat.View
	for k := 0; k < x.Order(); k++ {
		factors = append(factors, mat.RandomDense(x.Dim(k), h.Rank, rng))
	}
	var full bytes.Buffer
	if err := WriteRequest(&full, h, x, factors); err != nil {
		t.Fatal(err)
	}
	wire := full.Bytes()
	for cut := 0; cut < len(wire); cut += 7 {
		r := bytes.NewReader(wire[:cut])
		gh, err := ReadHeader(r)
		if err != nil {
			continue // truncated inside the header: rejected there
		}
		slab := make([]float64, gh.PayloadFloats())
		if _, _, err := DecodeRequest(r, gh, slab, nil); err == nil {
			t.Fatalf("truncation at byte %d of %d decoded successfully", cut, len(wire))
		}
	}
}

// TestWireHeaderRejection pins the pre-payload defenses: bad magic, bad
// version, oversized orders/dims/ranks, and payloads above the server cap
// are all refused before any payload allocation.
func TestWireHeaderRejection(t *testing.T) {
	valid := &Header{Op: OpMTTKRP, Mode: 0, Rank: 2, Dims: []int{3, 3}}
	encode := func(h *Header) []byte {
		var b bytes.Buffer
		if err := WriteHeader(&b, h); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	wire := encode(valid)
	wire[0] ^= 0xFF // corrupt magic
	if _, err := ReadHeader(bytes.NewReader(wire)); err == nil {
		t.Fatal("bad magic accepted")
	}
	wire = encode(valid)
	wire[4] = 9 // unknown version
	if _, err := ReadHeader(bytes.NewReader(wire)); err == nil {
		t.Fatal("bad version accepted")
	}
	wire = encode(valid)
	wire[7] = 200 // oversized ndims — would imply an 800-byte dims read
	if _, err := ReadHeader(bytes.NewReader(wire)); err == nil {
		t.Fatal("oversized ndims accepted")
	}

	cases := []struct {
		name string
		h    *Header
	}{
		{"zero dim", &Header{Op: OpMTTKRP, Rank: 2, Dims: []int{0, 3}}},
		{"huge dim", &Header{Op: OpMTTKRP, Rank: 2, Dims: []int{MaxDim + 1, 3}}},
		{"zero rank", &Header{Op: OpMTTKRP, Dims: []int{3, 3}}},
		{"huge rank", &Header{Op: OpMTTKRP, Rank: MaxRank + 1, Dims: []int{3, 3}}},
		{"bad mode", &Header{Op: OpMTTKRP, Mode: 2, Rank: 2, Dims: []int{3, 3}}},
		{"bad op", &Header{Op: 9, Rank: 2, Dims: []int{3, 3}}},
		{"bad method", &Header{Op: OpMTTKRP, Method: 9, Rank: 2, Dims: []int{3, 3}}},
		{"huge iters", &Header{Op: OpCP, Rank: 2, Iters: MaxIters + 1, Dims: []int{3, 3}}},
	}
	for _, tc := range cases {
		if err := tc.h.Validate(0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Structurally valid but above the configured payload ceiling: the
	// typed error servers map to 413.
	big := &Header{Op: OpMTTKRP, Rank: 1, Dims: []int{1024, 1024}}
	if err := big.Validate(1 << 10); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload: %v, want ErrPayloadTooLarge", err)
	}

	// Per-dim-legal header whose entry product overflows int64 (2^64):
	// must be rejected by the overflow-safe product, not wrapped to a tiny
	// payload that bypasses the ceiling and the byte quota.
	overflow := &Header{Op: OpCP, Rank: 2, Dims: []int{1 << 20, 1 << 20, 1 << 20, 16}}
	if err := overflow.Validate(1 << 30); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("overflowing entry product: %v, want ErrPayloadTooLarge", err)
	}
	// Same shape through MTTKRP's factor-sum arm.
	overflow.Op = OpMTTKRP
	if err := overflow.Validate(1 << 30); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("overflowing MTTKRP product: %v, want ErrPayloadTooLarge", err)
	}
}

// TestWireMatrixHeaderOverflow pins that a response header whose rows ×
// cols product wraps int math is refused before allocation.
func TestWireMatrixHeaderOverflow(t *testing.T) {
	var b bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], 1<<31)
	binary.LittleEndian.PutUint32(hdr[4:], 1<<31)
	b.Write(hdr[:])
	if _, err := ReadMatrixInto(&b, mat.View{}, 1<<20); err == nil {
		t.Fatal("wrapping rows×cols accepted")
	}
}

// TestWireMatrixRoundTrip covers the response codecs, including the
// zero-alloc ReadMatrixInto steady-state path and strided sources.
func TestWireMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := mat.RandomDense(5, 4, rng)
	var b bytes.Buffer
	if err := WriteMatrix(&b, m, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixInto(&b, mat.View{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(m, got) != 0 {
		t.Fatal("matrix corrupted in round trip")
	}

	// Transposed (strided) source serializes row-contiguously.
	b.Reset()
	if err := WriteMatrix(&b, m.T(), nil); err != nil {
		t.Fatal(err)
	}
	dst := mat.NewDense(4, 5)
	if _, err := ReadMatrixInto(&b, dst, 0); err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(m.T(), dst) != 0 {
		t.Fatal("strided matrix corrupted in round trip")
	}

	// Mismatched dst is refused, not silently reshaped.
	b.Reset()
	if err := WriteMatrix(&b, m, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatrixInto(&b, mat.NewDense(3, 3), 0); err == nil {
		t.Fatal("mismatched dst accepted")
	}
}

func TestWireKTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := cpd.RandomKTensor(rng, []int{6, 5, 4}, 3)
	var b bytes.Buffer
	if err := WriteKTensor(&b, k, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKTensor(&b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank() != k.Rank() || got.Order() != k.Order() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rank(), got.Order(), k.Rank(), k.Order())
	}
	for i := range k.Lambda {
		if got.Lambda[i] != k.Lambda[i] {
			t.Fatal("lambda corrupted")
		}
	}
	for n := range k.Factors {
		if mat.MaxAbsDiff(got.Factors[n], k.Factors[n]) != 0 {
			t.Fatalf("factor %d corrupted", n)
		}
	}
}

func BenchmarkWireDecodeMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := &Header{Op: OpMTTKRP, Mode: 1, Rank: 16, Dims: []int{48, 40, 36}}
	x := tensor.Random(rng, h.Dims...)
	var factors []mat.View
	for k := 0; k < x.Order(); k++ {
		factors = append(factors, mat.RandomDense(x.Dim(k), h.Rank, rng))
	}
	var wire bytes.Buffer
	if err := WriteRequest(&wire, h, x, factors); err != nil {
		b.Fatal(err)
	}
	raw := wire.Bytes()
	slab := make([]float64, h.PayloadFloats())
	scratch := make([]byte, scratchBytes)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bytes.NewReader(raw)
		gh, err := ReadHeader(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := DecodeRequest(r, gh, slab, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
