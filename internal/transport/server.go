package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Config sizes a transport Server.
type Config struct {
	// Serve configures the underlying admission-controlled scheduler
	// (pool width, per-request floor, admission cap, batching).
	Serve serve.Config
	// Quota bounds each client's request rate and in-flight bytes.
	Quota QuotaConfig
	// MaxPayloadBytes caps one request's decoded payload; 0 selects 1 GiB.
	MaxPayloadBytes int64
	// TensorRoot, when non-empty, enables by-reference requests
	// (/v1/mttkrp-ref): request paths resolve inside this directory only.
	// Paths with ".." or absolute components are rejected outright, and
	// symlinks are resolved before the containment check, so a link
	// pointing outside the root cannot smuggle a file in. Empty disables
	// the endpoint (404).
	TensorRoot string
	// CPIters is the sweep budget applied to CP requests that leave Iters
	// zero; 0 selects 10.
	CPIters int
	// DrainTimeout bounds the graceful drain on shutdown; 0 selects 60 s.
	DrainTimeout time.Duration
	// MaxQueueDelay sheds load instead of queueing: when positive, a
	// request whose projected admission wait (scheduler backlog ÷ recent
	// service rate, priced by the request's cost) exceeds it is refused
	// with 429 and a Retry-After hint rather than queued. 0 queues
	// everything — the pre-shedding behavior.
	MaxQueueDelay time.Duration
}

// Stats is a snapshot of transport counters plus the scheduler's.
type Stats struct {
	// Requests counts everything that reached a compute endpoint;
	// QuotaRejected of those refused by a token bucket, DrainRejected by a
	// drain in progress, BadRequests by wire-format validation, Failed by
	// kernel errors.
	Requests      int64 `json:"requests"`
	QuotaRejected int64 `json:"quota_rejected"`
	DrainRejected int64 `json:"drain_rejected"`
	BadRequests   int64 `json:"bad_requests"`
	Failed        int64 `json:"failed"`
	// ShedRejected counts requests refused because their projected
	// admission wait exceeded Config.MaxQueueDelay (429 with Retry-After).
	ShedRejected int64 `json:"shed_rejected"`
	// ByRefRequests counts by-reference MTTKRP requests; RefRejected the
	// subset refused because the referenced file was unreadable or outside
	// the tensor root (404) or its identity no longer matched (409).
	// RefCacheHits counts by-ref requests served from the resident mapping
	// cache instead of re-opening and re-mapping the file.
	ByRefRequests int64 `json:"byref_requests"`
	RefRejected   int64 `json:"ref_rejected"`
	RefCacheHits  int64 `json:"refcache_hits"`
	// BytesIn / BytesOut count payload (not HTTP framing) bytes.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// DecodeNs and ComputeNs split served time between wire decode and
	// kernel execution (the split mttkrp-bench -serve-http reports).
	DecodeNs  int64 `json:"decode_ns"`
	ComputeNs int64 `json:"compute_ns"`
	// Serve is the scheduler's own counter snapshot.
	Serve serve.Stats `json:"serve"`
}

// Server is the HTTP front end: quota checks, streaming wire decode into
// pooled buffers, submission to the scheduler, and graceful drain. Create
// with NewServer, attach with Serve/ListenAndServe, stop with Shutdown
// (graceful) or Close (hard).
type Server struct {
	cfg    Config
	sched  *serve.Server
	quotas *quotaTable
	httpd  *http.Server
	refs   *mapCache // resident by-ref tensor mappings (nil: no tensor root)

	bufs     floatPool // request payload slabs
	idxs     int32Pool // sparse coordinate slabs
	dsts     floatPool // MTTKRP result buffers
	scratch  bytePool  // streaming-codec chunk buffers
	draining atomic.Bool

	requests, quotaRejected, drainRejected atomic.Int64
	badRequests, failed, shedRejected      atomic.Int64
	byRefRequests, refRejected             atomic.Int64
	refCacheHits                           atomic.Int64
	bytesIn, bytesOut                      atomic.Int64
	decodeNs, computeNs                    atomic.Int64
}

// NewServer builds the transport server and its scheduler. The caller owns
// the listener lifecycle (Serve / ListenAndServe / Shutdown).
func NewServer(cfg Config) *Server {
	if cfg.MaxPayloadBytes <= 0 {
		cfg.MaxPayloadBytes = 1 << 30
	}
	if cfg.CPIters <= 0 {
		cfg.CPIters = 10
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		sched:  serve.New(cfg.Serve),
		quotas: newQuotaTable(cfg.Quota),
	}
	if cfg.TensorRoot != "" {
		s.refs = newMapCache(refCacheCap)
	}
	s.httpd = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Workers returns the scheduler pool's team width.
func (s *Server) Workers() int { return s.sched.Workers() }

// Stats returns a snapshot of transport and scheduler counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:      s.requests.Load(),
		QuotaRejected: s.quotaRejected.Load(),
		DrainRejected: s.drainRejected.Load(),
		BadRequests:   s.badRequests.Load(),
		Failed:        s.failed.Load(),
		ShedRejected:  s.shedRejected.Load(),
		ByRefRequests: s.byRefRequests.Load(),
		RefRejected:   s.refRejected.Load(),
		RefCacheHits:  s.refCacheHits.Load(),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		DecodeNs:      s.decodeNs.Load(),
		ComputeNs:     s.computeNs.Load(),
		Serve:         s.sched.Stats(),
	}
}

// Handler returns the route table. It is exposed so tests (and embedders
// that already own an http.Server) can mount the transport under their own
// mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mttkrp", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, OpMTTKRP)
	})
	mux.HandleFunc("POST /v1/sparse-mttkrp", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, OpSparseMTTKRP)
	})
	mux.HandleFunc("POST /v1/cp", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, OpCP)
	})
	mux.HandleFunc("POST /v1/mttkrp-ref", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, OpMTTKRPByRef)
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// Serve accepts connections on l until Shutdown or Close. It returns nil
// after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpd.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr (":8080", "127.0.0.1:0", …) and serves
// until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: new submissions are refused with 503,
// in-flight requests (and their admitted tickets) run to completion, then
// the scheduler and worker pool are released. Safe to call while Serve is
// blocked; Serve then returns nil. ctx bounds the whole drain: if it
// expires first, Shutdown returns ctx's error while scheduler teardown
// continues in the background (running kernels are not preemptible — a
// supervisor acting on the timeout is abandoning them by design).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpd.Shutdown(ctx) // waits for in-flight handlers (ticket waits included)
	done := make(chan struct{})
	go func() {
		s.sched.Drain()
		s.sched.Close()
		if s.refs != nil {
			s.refs.drain() // handlers are done: unmap cached tensors
		}
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close stops serving immediately: open connections are dropped and
// queued scheduler work fails with serve.ErrClosed.
func (s *Server) Close() error {
	s.draining.Store(true)
	err := s.httpd.Close()
	s.sched.Close()
	if s.refs != nil {
		// In-flight handlers still hold references; their mappings close
		// on release, the idle ones right here.
		s.refs.drain()
	}
	return err
}

// ListenAndServe runs a transport server on addr until the process
// receives SIGINT or SIGTERM, then drains gracefully (admitted tickets
// finish; new submissions see 503) and returns. It is the
// repro.ListenAndServe entry point.
func ListenAndServe(addr string, cfg Config) error {
	s := NewServer(cfg)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeUntilSignal(s, l, nil)
}

// ServeUntilSignal serves on l until SIGINT/SIGTERM, then drains. When
// notify is non-nil it receives the listener's resolved address before
// serving starts (the way cmd/mttkrp-serve reports a :0 port).
func ServeUntilSignal(s *Server, l net.Listener, notify func(net.Addr)) error {
	if notify != nil {
		notify(l.Addr())
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("transport: drain: %w", err)
		}
		return <-errc
	}
}

// clientKey identifies the quota principal of a request: explicit API
// token first, transport identity as the fallback.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if a := r.Header.Get("Authorization"); a != "" {
		return a
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Timing response headers: the server-measured decode/compute split, which
// the load generator aggregates without a second stats round trip.
const (
	headerDecodeNs  = "X-Decode-Ns"
	headerComputeNs = "X-Compute-Ns"
)

// Admission request headers: clients may price and prioritize their own
// requests. X-Cost-Hint refines the scheduler's cost-model estimate (a
// positive float in model cost units, clamped to within costHintBound×
// of the server's own estimate so it cannot be used as a queue-jumping
// lever); X-Priority scales queue aging ("low", "normal" or "high").
const (
	headerCostHint = "X-Cost-Hint"
	headerPriority = "X-Priority"
)

// priorityWeight maps the X-Priority header onto an aging weight.
func priorityWeight(p string) (float64, error) {
	switch strings.ToLower(p) {
	case "", "normal":
		return 1, nil
	case "low":
		return 0.5, nil
	case "high":
		return 2, nil
	}
	return 0, fmt.Errorf("transport: unknown %s %q (want low, normal or high)", headerPriority, p)
}

// costHintBound caps how far the client-supplied X-Cost-Hint may deviate
// from the server's own model estimate, in either direction. A hint is a
// refinement channel for clients that know their workload, not a priority
// lever: an unbounded tiny hint would dominate the aging queue (score ~
// age/cost) and dodge MaxQueueDelay shedding for free.
const costHintBound = 16

// admission prices a request from its decoded wire header plus the
// optional client hints, and decides queue-versus-shed: when the
// projected admission wait exceeds MaxQueueDelay the request is refused
// up front (429 + Retry-After), before its payload is decoded.
func (s *Server) admission(w http.ResponseWriter, r *http.Request, h *Header) (cost, weight float64, ok bool) {
	weight, err := priorityWeight(r.Header.Get(headerPriority))
	if err != nil {
		s.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, 0, false
	}
	if hint := r.Header.Get(headerCostHint); hint != "" {
		cost, err = strconv.ParseFloat(hint, 64)
		if err != nil || cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
			s.badRequests.Add(1)
			http.Error(w, fmt.Sprintf("transport: bad %s %q (want a positive float)", headerCostHint, hint), http.StatusBadRequest)
			return 0, 0, false
		}
	}
	model := s.sched.Model()
	var estimate float64
	switch h.Op {
	case OpCP:
		iters := h.Iters
		if iters <= 0 {
			iters = s.cfg.CPIters
		}
		estimate = model.CP(h.Dims, h.Rank, iters)
	case OpSparseMTTKRP:
		// Priced from the header's nnz — before any payload is read —
		// so a sparse request's admission cost scales with its stored
		// entries, not its dense shape.
		estimate = model.SparseMTTKRP(h.NNZ, h.Dims, h.Rank)
	case OpMTTKRPByRef:
		// A mapped tensor streams through bounded tiles: the byte term
		// prices the resident working set, not the full file extent.
		estimate = model.MTTKRPMapped(h.Dims, h.Rank, core.DefaultTileBytes)
	default:
		estimate = model.MTTKRP(h.Dims, h.Rank)
	}
	switch {
	case cost == 0:
		cost = estimate
	case cost < estimate/costHintBound:
		cost = estimate / costHintBound
	case cost > estimate*costHintBound:
		cost = estimate * costHintBound
	}
	if s.cfg.MaxQueueDelay > 0 {
		if wait := s.sched.ProjectedWait(cost); wait > s.cfg.MaxQueueDelay {
			s.shedRejected.Add(1)
			w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(wait), 10))
			http.Error(w, fmt.Sprintf("projected queue delay %v exceeds %v", wait.Round(time.Millisecond), s.cfg.MaxQueueDelay), http.StatusTooManyRequests)
			return 0, 0, false
		}
	}
	return cost, weight, true
}

// retryAfterSeconds converts a projected wait into the Retry-After header
// value: ceiled to whole seconds, never below 1. Retry-After carries
// integer seconds, so a sub-second wait must round up — truncation would
// report 0 and tell a well-behaved client to hammer the server again
// immediately — and an exact multiple must not gain a spurious extra
// second (the historical floor+1).
func retryAfterSeconds(wait time.Duration) int64 {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleCompute is the shared data path of /v1/mttkrp and /v1/cp.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request, wantOp Op) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.drainRejected.Add(1)
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	key := clientKey(r)
	now := time.Now()
	if !s.quotas.allowRequest(key, now) {
		s.quotaRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "request rate quota exceeded", http.StatusTooManyRequests)
		return
	}

	t0 := time.Now()
	h, err := ReadHeader(r.Body)
	if err != nil {
		s.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.Op != wantOp {
		s.badRequests.Add(1)
		http.Error(w, fmt.Sprintf("transport: op %d on the op-%d endpoint", h.Op, wantOp), http.StatusBadRequest)
		return
	}
	if err := h.Validate(s.cfg.MaxPayloadBytes); err != nil {
		s.badRequests.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, ErrPayloadTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	cost, weight, ok := s.admission(w, r, h)
	if !ok {
		return
	}
	payload := h.PayloadBytes()
	if !s.quotas.acquireBytes(key, payload, now) {
		s.quotaRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "in-flight byte quota exceeded", http.StatusTooManyRequests)
		return
	}
	defer s.quotas.releaseBytes(key, payload, now)

	// Stream-decode the payload into pooled slabs: the request's floats
	// (and, for sparse requests, its int32 coordinates) materialize
	// exactly once, and the slabs go back to their pools when the
	// response has been written.
	buf := s.bufs.get(h.PayloadFloats())
	defer s.bufs.put(buf)
	scratch := s.scratch.get()
	defer s.scratch.put(scratch)
	var (
		x       tensor.Interface
		factors []mat.View
	)
	if h.sparse() {
		idx := s.idxs.get(h.IndexInts())
		defer s.idxs.put(idx)
		x, factors, err = DecodeSparseRequest(r.Body, h, idx, buf, scratch)
	} else {
		x, factors, err = DecodeRequest(r.Body, h, buf, scratch)
	}
	if err != nil {
		s.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.byRef() {
		// Resolve the reference against the tensor root: the mapped file
		// replaces the wire tensor. Open + identity check count as decode
		// time — they are this path's whole ingestion cost.
		s.byRefRequests.Add(1)
		ent, status, rerr := s.resolveRef(&h.Ref, h.Dims)
		if rerr != nil {
			s.refRejected.Add(1)
			http.Error(w, rerr.Error(), status)
			return
		}
		defer ent.Release()
		x = ent.Map().Dense
	}
	decode := time.Since(t0)
	s.bytesIn.Add(payload)
	s.decodeNs.Add(decode.Nanoseconds())

	switch h.Op {
	case OpMTTKRP, OpSparseMTTKRP, OpMTTKRPByRef:
		rows := h.Dims[h.Mode]
		dstBuf := s.dsts.get(rows * h.Rank)
		defer s.dsts.put(dstBuf)
		dst := mat.FromRowMajor(dstBuf, rows, h.Rank)
		c0 := time.Now()
		m, err := s.sched.SubmitMTTKRP(serve.MTTKRPRequest{
			X: x, Factors: factors, Mode: h.Mode, Method: h.Method, Dst: dst,
			CostHint: cost, Weight: weight,
		}).MTTKRP()
		compute := time.Since(c0)
		s.computeNs.Add(compute.Nanoseconds())
		if err != nil {
			s.failComputeError(w, err)
			return
		}
		hdr := w.Header()
		hdr.Set("Content-Type", "application/x-tensor-wire")
		hdr.Set("Content-Length", strconv.FormatInt(MatrixWireSize(m.R, m.C), 10))
		hdr.Set(headerDecodeNs, strconv.FormatInt(decode.Nanoseconds(), 10))
		hdr.Set(headerComputeNs, strconv.FormatInt(compute.Nanoseconds(), 10))
		if err := WriteMatrix(w, m, scratch); err != nil {
			return // client went away mid-response; nothing to report
		}
		s.bytesOut.Add(MatrixWireSize(m.R, m.C))
	case OpCP:
		iters := h.Iters
		if iters <= 0 {
			iters = s.cfg.CPIters
		}
		c0 := time.Now()
		res, err := s.sched.SubmitCP(serve.CPRequest{X: x, Config: cpd.Config{
			Rank: h.Rank, MaxIters: iters, Method: h.Method, Seed: h.Seed,
		}, CostHint: cost, Weight: weight}).CP()
		compute := time.Since(c0)
		s.computeNs.Add(compute.Nanoseconds())
		if err != nil {
			s.failComputeError(w, err)
			return
		}
		hdr := w.Header()
		hdr.Set("Content-Type", "application/x-ktensor-wire")
		hdr.Set(headerDecodeNs, strconv.FormatInt(decode.Nanoseconds(), 10))
		hdr.Set(headerComputeNs, strconv.FormatInt(compute.Nanoseconds(), 10))
		hdr.Set("X-CP-Fit", strconv.FormatFloat(res.Fit, 'g', -1, 64))
		hdr.Set("X-CP-Iters", strconv.Itoa(res.Iters))
		if err := WriteKTensor(w, res.K, scratch); err != nil {
			return
		}
	}
}

// resolveRef resolves the tensor file a by-reference request names to a
// referenced mapping-cache entry, enforcing the tensor-root sandbox and
// the identity the client declared. The mapping comes from the resident
// cache when a previous request already mapped this file (a hit costs one
// revalidating stat instead of an open+map+checksum); either way the
// request holds a reference until Release. The returned status is the
// HTTP code to fail with when err is non-nil: 404 for anything unreadable
// or outside the root (indistinguishable by design — probing the
// filesystem through error codes stays blind), 400 for structurally
// illegal paths, 409 when the file exists but is no longer the version
// the client observed.
//
// The per-request identity checks run against the cached mapping too: a
// client holding a stale ref gets its 409 even on a cache hit, and a
// rewritten file fails the acquire-time Stale revalidation, evicting the
// dead mapping so the reopen sees the new bytes.
func (s *Server) resolveRef(ref *TensorRef, dims []int) (*mapEntry, int, error) {
	if s.cfg.TensorRoot == "" || s.refs == nil {
		return nil, http.StatusNotFound, errors.New("transport: by-reference requests disabled (no tensor root configured)")
	}
	p := filepath.FromSlash(ref.Path)
	if !filepath.IsLocal(p) {
		return nil, http.StatusBadRequest, fmt.Errorf("transport: ref path %q escapes the tensor root", ref.Path)
	}
	root, err := filepath.EvalSymlinks(s.cfg.TensorRoot)
	if err != nil {
		return nil, http.StatusNotFound, errors.New("transport: tensor root unavailable")
	}
	// Resolve symlinks before the containment check: a link inside the
	// root pointing outside it must be caught by where it lands, not by
	// where it lives.
	resolved, err := filepath.EvalSymlinks(filepath.Join(root, p))
	if err != nil {
		return nil, http.StatusNotFound, fmt.Errorf("transport: tensor file %q unreadable", ref.Path)
	}
	if rel, err := filepath.Rel(root, resolved); err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, http.StatusBadRequest, fmt.Errorf("transport: ref path %q resolves outside the tensor root", ref.Path)
	}
	ent, hit := s.refs.acquire(resolved)
	if hit {
		s.refCacheHits.Add(1)
	} else {
		if fi, err := os.Stat(resolved); err != nil || !fi.Mode().IsRegular() {
			return nil, http.StatusNotFound, fmt.Errorf("transport: tensor file %q unreadable", ref.Path)
		}
		m, err := tensor.OpenDense(resolved)
		if err != nil {
			return nil, http.StatusNotFound, fmt.Errorf("transport: tensor file %q unreadable", ref.Path)
		}
		ent = s.refs.insert(resolved, m)
	}
	m := ent.Map()
	if m.ModTime().UnixNano() != ref.MTime || m.FileSize() != ref.Size || m.Checksum() != ref.Checksum {
		ent.Release()
		return nil, http.StatusConflict, fmt.Errorf("transport: tensor file %q changed since the client observed it", ref.Path)
	}
	if !slices.Equal(m.Dims(), dims) {
		ent.Release()
		return nil, http.StatusConflict, fmt.Errorf("transport: tensor file %q is shaped %v, request declares %v", ref.Path, m.Dims(), dims)
	}
	if m.Stale() {
		// The file changed between open and map: drop the dead mapping
		// from the cache so the client's retry re-opens the new version.
		s.refs.evict(ent)
		ent.Release()
		return nil, http.StatusConflict, fmt.Errorf("transport: tensor file %q changed after map", ref.Path)
	}
	return ent, 0, nil
}

// failComputeError maps a scheduler/kernel error onto an HTTP status: a
// drain is retryable (503, counted as DrainRejected), everything else is
// a kernel failure (500, counted as Failed).
func (s *Server) failComputeError(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrClosed) {
		s.drainRejected.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.failed.Add(1)
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
