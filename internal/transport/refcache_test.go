package transport

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// writeMapped writes a small tensor file and returns its mapping.
func writeMapped(t *testing.T, dir, name string, seed int64) (string, *tensor.Map) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := tensor.WriteDenseFile(path, tensor.Random(rand.New(rand.NewSource(seed)), 4, 3, 2)); err != nil {
		t.Fatal(err)
	}
	m, err := tensor.OpenDense(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, m
}

// TestRefCacheLRUAndRefcount drives the mapping cache's lifecycle rules
// directly: hits touch the LRU order, inserts beyond the cap evict the
// least-recently-used idle entry, an entry evicted (or drained) while a
// request holds it stays readable until the last Release, and a racing
// duplicate insert is dead from birth.
func TestRefCacheLRUAndRefcount(t *testing.T) {
	dir := t.TempDir()
	cache := newMapCache(2)

	pa, ma := writeMapped(t, dir, "a.dsnt", 1)
	pb, mb := writeMapped(t, dir, "b.dsnt", 2)
	pc, mc := writeMapped(t, dir, "c.dsnt", 3)

	cache.insert(pa, ma).Release()
	cache.insert(pb, mb).Release()
	if cache.len() != 2 {
		t.Fatalf("resident = %d, want 2", cache.len())
	}

	// A hit refreshes a's recency, so the over-cap insert evicts b.
	if e, ok := cache.acquire(pa); !ok {
		t.Fatal("acquire(a): miss, want hit")
	} else {
		e.Release()
	}
	cache.insert(pc, mc).Release()
	if cache.len() != 2 {
		t.Fatalf("resident = %d after over-cap insert, want 2", cache.len())
	}
	if _, ok := cache.acquire(pb); ok {
		t.Fatal("acquire(b): hit, want evicted (b was least recently used)")
	}

	// Evict-while-in-use: a request holding an entry keeps the mapping
	// alive through a drain; the bytes stay readable until its Release.
	held, ok := cache.acquire(pa)
	if !ok {
		t.Fatal("acquire(a): miss, want hit")
	}
	cache.drain()
	if cache.len() != 0 {
		t.Fatalf("resident = %d after drain, want 0", cache.len())
	}
	want := tensor.Random(rand.New(rand.NewSource(1)), 4, 3, 2)
	if got := held.Map().Dense.At(3, 2, 1); got != want.At(3, 2, 1) {
		t.Fatalf("held mapping read %g after drain, want %g", got, want.At(3, 2, 1))
	}
	held.Release()

	// Racing duplicate insert: the loser serves its one request and dies;
	// the resident winner keeps serving.
	_, m1 := writeMapped(t, dir, "d.dsnt", 4)
	p1 := filepath.Join(dir, "d.dsnt")
	m2, err := tensor.OpenDense(p1)
	if err != nil {
		t.Fatal(err)
	}
	e1 := cache.insert(p1, m1)
	e2 := cache.insert(p1, m2)
	if !e2.dead {
		t.Fatal("duplicate insert must be dead from birth")
	}
	e2.Release()
	e1.Release()
	if e, ok := cache.acquire(p1); !ok {
		t.Fatal("acquire after duplicate insert: miss, want the winner resident")
	} else {
		e.Release()
	}

	// Stale revalidation: rewriting the file behind a resident mapping
	// turns the next acquire into an evicting miss.
	if err := os.Chtimes(p1, time.Now(), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.acquire(p1); ok {
		t.Fatal("acquire of a stale mapping: hit, want miss")
	}
	if cache.len() != 0 {
		t.Fatalf("resident = %d after stale eviction, want 0", cache.len())
	}
}

// TestHTTPByRefCacheHits pins the by-ref serving path's cache behavior
// end to end: repeat requests for one file are served from the resident
// mapping (counted by RefCacheHits), and a rewritten file is revalidated
// — the stale mapping is dropped and the response carries the new bytes.
func TestHTTPByRefCacheHits(t *testing.T) {
	root := t.TempDir()
	x, ref := writeTensorFile(t, root, "x.dsnt", 51, 10, 9, 8)
	s, c := startServer(t, Config{Serve: serve.Config{Workers: 2}, TensorRoot: root})

	rng := rand.New(rand.NewSource(52))
	u := make([]mat.View, x.Order())
	for k := range u {
		u[k] = mat.RandomDense(x.Dim(k), 4, rng)
	}
	want := core.Compute(core.MethodAuto, x, u, 1, core.Options{})
	for i := 0; i < 3; i++ {
		got, _, err := c.MTTKRPByRef(mat.View{}, ref, x.Dims(), u, 1, core.MethodAuto)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !mat.ApproxEqual(got, want, 1e-13) {
			t.Fatalf("request %d diverges from the local kernel", i)
		}
	}
	if st := s.Stats(); st.ByRefRequests != 3 || st.RefCacheHits != 2 {
		t.Fatalf("stats %+v: want 3 by-ref requests, 2 cache hits (first maps, rest hit)", st)
	}

	// Rewrite the file in place (same dims, new values) and re-stat: the
	// server's resident mapping is now stale, so the request re-opens and
	// must serve the new tensor's bytes, not the cached ones.
	x2, ref2 := writeTensorFile(t, root, "x.dsnt", 53, 10, 9, 8)
	if err := os.Chtimes(filepath.Join(root, "x.dsnt"), time.Now(), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	info, err := tensor.StatDense(filepath.Join(root, "x.dsnt"))
	if err != nil {
		t.Fatal(err)
	}
	ref2 = RefFor(info, "x.dsnt")
	want2 := core.Compute(core.MethodAuto, x2, u, 1, core.Options{})
	got, _, err := c.MTTKRPByRef(mat.View{}, ref2, x.Dims(), u, 1, core.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.ApproxEqual(got, want2, 1e-13) {
		t.Fatal("post-rewrite request served stale tensor bytes")
	}
	st := s.Stats()
	if st.RefCacheHits != 2 {
		t.Fatalf("RefCacheHits = %d after stale revalidation, want 2 (a stale acquire is a miss)", st.RefCacheHits)
	}

	// The replacement mapping is resident: the next request hits again.
	if _, _, err := c.MTTKRPByRef(mat.View{}, ref2, x.Dims(), u, 1, core.MethodAuto); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RefCacheHits != 3 {
		t.Fatalf("RefCacheHits = %d, want 3", st.RefCacheHits)
	}
}

// BenchmarkRefCacheAcquire prices the by-ref cache's win: a cache hit
// (Stale stat + refcount) versus the full open-map-close cycle every
// request paid before the cache.
func BenchmarkRefCacheAcquire(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "x.dsnt")
	if err := tensor.WriteDenseFile(path, tensor.Random(rand.New(rand.NewSource(9)), 24, 20, 16)); err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		cache := newMapCache(2)
		m, err := tensor.OpenDense(path)
		if err != nil {
			b.Fatal(err)
		}
		cache.insert(path, m).Release()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, ok := cache.acquire(path)
			if !ok {
				b.Fatal("cache miss")
			}
			e.Release()
		}
		b.StopTimer()
		cache.drain()
	})
	b.Run("miss-remap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := tensor.OpenDense(path)
			if err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
}
