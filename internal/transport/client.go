package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Client speaks the binary wire protocol to a transport listener. The zero
// value is unusable; construct with NewClient. One Client is safe for
// concurrent use — the underlying http.Client pools connections.
type Client struct {
	// BaseURL is the listener root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when non-empty, is sent as X-API-Key — the quota principal.
	APIKey string
	// Priority, when non-empty, is sent as X-Priority ("low", "normal" or
	// "high") on every compute request: the client's QoS class for the
	// server's aging admission queue.
	Priority string
	// CostHint, when positive, is sent as X-Cost-Hint on every compute
	// request, refining the server's cost-model estimate (for clients
	// that know their workload better than the shape-based model does).
	// The server clamps it to within a bounded factor of its own
	// estimate, so it cannot serve as a queue-jumping lever.
	CostHint float64
	// HTTPClient overrides the transport; nil uses http.DefaultClient
	// (which negotiates HTTP/2 automatically against TLS listeners).
	HTTPClient *http.Client
}

// NewClient returns a client for the listener at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// HTTPError is a non-2xx response surfaced to the caller; quota rejections
// arrive as StatusCode 429 and drains as 503, so load generators can
// classify without string matching.
type HTTPError struct {
	StatusCode int
	Message    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("transport: server returned %d: %s", e.StatusCode, strings.TrimSpace(e.Message))
}

// Timing reports one round trip's cost split: the server-measured wire
// decode and kernel time (from response headers), and the client-observed
// total including network and response decode.
type Timing struct {
	Decode  time.Duration // server: payload decode into pooled buffers
	Compute time.Duration // server: scheduler wait + kernel execution
	Total   time.Duration // client: full round trip
}

// MTTKRP ships x and its factors to the server and returns the I_n × C
// result. A non-zero dst receives the result without allocating (the
// steady-state path); factor k must be I_k × C.
func (c *Client) MTTKRP(dst mat.View, x *tensor.Dense, factors []mat.View, mode int, method core.Method) (mat.View, Timing, error) {
	if x.Order() == 0 || len(factors) != x.Order() {
		return mat.View{}, Timing{}, fmt.Errorf("transport: %d factors for an order-%d tensor", len(factors), x.Order())
	}
	h := &Header{Op: OpMTTKRP, Method: method, Mode: mode, Rank: factors[0].C, Dims: x.Dims()}
	start := time.Now()
	resp, err := c.post("/v1/mttkrp", h, x, factors)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	defer resp.Body.Close()
	tm := serverTiming(resp)
	m, err := ReadMatrixInto(resp.Body, dst, MaxDim*MaxRank)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	tm.Total = time.Since(start)
	return m, tm, nil
}

// MTTKRPByRef ships only the factor matrices plus a reference to a dense
// tensor file the server can map from its own filesystem (wire version 3):
// the tensor payload — by far the largest share of a dense request — never
// crosses the wire, and the server's decode window shrinks to the factor
// copy plus one mmap. The reference carries the file's identity (mtime,
// size, header checksum from StatDense via RefFor), which the server
// verifies before computing; a mismatch is a 409, an unreadable or
// out-of-root path a 404. dims must match the file's header exactly.
func (c *Client) MTTKRPByRef(dst mat.View, ref TensorRef, dims []int, factors []mat.View, mode int, method core.Method) (mat.View, Timing, error) {
	if len(dims) == 0 || len(factors) != len(dims) {
		return mat.View{}, Timing{}, fmt.Errorf("transport: %d factors for an order-%d tensor", len(factors), len(dims))
	}
	h := &Header{Op: OpMTTKRPByRef, Method: method, Mode: mode, Rank: factors[0].C, Dims: dims, Ref: ref}
	start := time.Now()
	resp, err := c.post("/v1/mttkrp-ref", h, nil, factors)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	defer resp.Body.Close()
	tm := serverTiming(resp)
	m, err := ReadMatrixInto(resp.Body, dst, MaxDim*MaxRank)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	tm.Total = time.Since(start)
	return m, tm, nil
}

// SparseMTTKRP ships a sparse tensor (COO coordinates and values at wire
// version 2) and its factors to the server and returns the I_n × C
// result. A non-zero dst receives the result without allocating; factor k
// must be I_k × C.
func (c *Client) SparseMTTKRP(dst mat.View, x *tensor.Sparse, factors []mat.View, mode int, method core.Method) (mat.View, Timing, error) {
	if x.Order() == 0 || len(factors) != x.Order() {
		return mat.View{}, Timing{}, fmt.Errorf("transport: %d factors for an order-%d tensor", len(factors), x.Order())
	}
	if len(factors) == 0 {
		return mat.View{}, Timing{}, fmt.Errorf("transport: no factors")
	}
	h := SparseHeader(x, method, mode, factors[0].C)
	if err := h.Validate(0); err != nil {
		return mat.View{}, Timing{}, err
	}
	start := time.Now()
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(WriteSparseRequest(pw, h, x, factors))
	}()
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/sparse-mttkrp", pr)
	if err != nil {
		pr.Close()
		return mat.View{}, Timing{}, err
	}
	req.ContentLength = h.WireSize()
	req.Header.Set("Content-Type", "application/x-tensor-wire")
	if c.Priority != "" {
		req.Header.Set("X-Priority", c.Priority)
	}
	if c.CostHint > 0 {
		req.Header.Set("X-Cost-Hint", strconv.FormatFloat(c.CostHint, 'g', -1, 64))
	}
	resp, err := c.do(req)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	defer resp.Body.Close()
	tm := serverTiming(resp)
	m, err := ReadMatrixInto(resp.Body, dst, MaxDim*MaxRank)
	if err != nil {
		return mat.View{}, Timing{}, err
	}
	tm.Total = time.Since(start)
	return m, tm, nil
}

// CPResult is a served CP decomposition: the fitted Kruskal tensor plus
// the fit diagnostics the server computed.
type CPResult struct {
	K     *cpd.KTensor
	Fit   float64
	Iters int
}

// CP ships x and runs a rank-`rank` CP-ALS decomposition on the server
// (iters sweeps; 0 uses the server default) initialized from seed.
func (c *Client) CP(x *tensor.Dense, rank, iters int, seed int64) (*CPResult, Timing, error) {
	h := &Header{Op: OpCP, Rank: rank, Iters: iters, Seed: seed, Dims: x.Dims()}
	start := time.Now()
	resp, err := c.post("/v1/cp", h, x, nil)
	if err != nil {
		return nil, Timing{}, err
	}
	defer resp.Body.Close()
	tm := serverTiming(resp)
	k, err := ReadKTensor(resp.Body)
	if err != nil {
		return nil, Timing{}, err
	}
	res := &CPResult{K: k}
	res.Fit, _ = strconv.ParseFloat(resp.Header.Get("X-CP-Fit"), 64)
	res.Iters, _ = strconv.Atoi(resp.Header.Get("X-CP-Iters"))
	tm.Total = time.Since(start)
	return res, tm, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (*Stats, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("transport: stats decode: %w", err)
	}
	return &st, nil
}

// Healthy reports nil when the server is accepting work (a draining or
// unreachable server returns an error).
func (c *Client) Healthy() error {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// post streams one wire request (header + tensor + factors) through an
// io.Pipe, so a large tensor is never materialized as a second byte
// buffer client-side, and returns the successful response.
func (c *Client) post(path string, h *Header, x *tensor.Dense, factors []mat.View) (*http.Response, error) {
	if err := h.Validate(0); err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(WriteRequest(pw, h, x, factors))
	}()
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, pr)
	if err != nil {
		pr.Close()
		return nil, err
	}
	req.ContentLength = h.WireSize()
	req.Header.Set("Content-Type", "application/x-tensor-wire")
	if c.Priority != "" {
		req.Header.Set("X-Priority", c.Priority)
	}
	if c.CostHint > 0 {
		req.Header.Set("X-Cost-Hint", strconv.FormatFloat(c.CostHint, 'g', -1, 64))
	}
	return c.do(req)
}

// do sends req with the client's identity and converts non-2xx responses
// into *HTTPError.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		resp.Body.Close()
		return nil, &HTTPError{StatusCode: resp.StatusCode, Message: string(msg)}
	}
	return resp, nil
}

// serverTiming extracts the decode/compute split headers.
func serverTiming(resp *http.Response) Timing {
	d, _ := strconv.ParseInt(resp.Header.Get(headerDecodeNs), 10, 64)
	cp, _ := strconv.ParseInt(resp.Header.Get(headerComputeNs), 10, 64)
	return Timing{Decode: time.Duration(d), Compute: time.Duration(cp)}
}
