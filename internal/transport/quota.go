package transport

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// QuotaConfig bounds each client's use of the listener. Clients are keyed
// by API token (the X-API-Key header, falling back to the Authorization
// header, falling back to the remote address), so one misbehaving tenant
// throttles only itself.
type QuotaConfig struct {
	// RequestsPerSec is the sustained per-client admission rate; 0 means
	// unlimited.
	RequestsPerSec float64
	// Burst is the token-bucket depth — how many requests a client may
	// fire back-to-back after an idle period. 0 selects
	// ceil(RequestsPerSec), minimum 1.
	Burst int
	// MaxInflightBytes caps the payload bytes a client may have admitted
	// but not yet completed (decoding or computing); 0 means unlimited. A
	// single request larger than the cap is always rejected.
	MaxInflightBytes int64
}

// maxTrackedClients bounds the quota table; beyond it, idle clients are
// evicted (their buckets refill to Burst on return, which only ever
// forgives, never over-penalizes).
const maxTrackedClients = 1024

// quotaTable maps client keys to their token buckets.
type quotaTable struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's quota state: a refilling request-rate token
// bucket plus an in-flight payload byte count.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time

	inflight atomic.Int64
}

func newQuotaTable(cfg QuotaConfig) *quotaTable {
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.RequestsPerSec))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &quotaTable{cfg: cfg, buckets: make(map[string]*bucket)}
}

// bucket returns (creating if needed) the bucket for key.
func (q *quotaTable) bucket(key string, now time.Time) *bucket {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[key]
	if !ok {
		if len(q.buckets) >= maxTrackedClients {
			q.evictIdleLocked()
		}
		b = &bucket{tokens: float64(q.cfg.Burst), last: now}
		q.buckets[key] = b
	}
	return b
}

// evictIdleLocked drops one client with no in-flight bytes (map iteration
// order — effectively random). Requests holding the evicted *bucket keep
// working; the pointer just leaves the table.
func (q *quotaTable) evictIdleLocked() {
	for k, b := range q.buckets {
		if b.inflight.Load() == 0 {
			delete(q.buckets, k)
			return
		}
	}
}

// allowRequest takes one rate token from key's bucket, reporting whether
// the request is admitted. Unlimited (RequestsPerSec ≤ 0) always admits.
func (q *quotaTable) allowRequest(key string, now time.Time) bool {
	if q.cfg.RequestsPerSec <= 0 {
		return true
	}
	b := q.bucket(key, now)
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.cfg.RequestsPerSec
		if burst := float64(q.cfg.Burst); b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// acquireBytes reserves n payload bytes against key's in-flight budget,
// reporting whether the request fits. The caller must releaseBytes the
// same amount when the request completes (success or failure).
func (q *quotaTable) acquireBytes(key string, n int64, now time.Time) bool {
	if q.cfg.MaxInflightBytes <= 0 {
		return true
	}
	b := q.bucket(key, now)
	for {
		cur := b.inflight.Load()
		if cur+n > q.cfg.MaxInflightBytes {
			return false
		}
		if b.inflight.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// releaseBytes returns n bytes reserved by acquireBytes.
func (q *quotaTable) releaseBytes(key string, n int64, now time.Time) {
	if q.cfg.MaxInflightBytes <= 0 {
		return
	}
	q.bucket(key, now).inflight.Add(-n)
}
