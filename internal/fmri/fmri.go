// Package fmri generates synthetic neuroimaging tensors with the structure
// of the paper's application data (Section 3 and 5.3.3): a 4-way
// time × subject × region × region tensor of instantaneous correlations
// between brain regions, built from planted spatio-temporal "network"
// components plus noise, symmetric in the two region modes; and its
// symmetry-reduced 3-way linearization time × subject × region-pairs.
//
// The paper's data is 225 × 59 × 200 × 200 (and 225 × 59 × 19900 after
// linearizing pairs i < j). The generator reproduces those shapes at any
// scale; the planted low-rank-plus-noise structure makes CP-ALS recovery
// meaningful, not just timeable.
package fmri

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Params configures the generator.
type Params struct {
	// Times, Subjects, Regions are the T, S, R dimensions; the paper's
	// data has 225, 59, 200.
	Times, Subjects, Regions int
	// Components is the number of planted brain networks (CP rank of the
	// noiseless tensor).
	Components int
	// Noise is the relative noise level σ: noise entries are drawn
	// N(0, σ·rms(signal)). Zero gives an exactly rank-Components tensor.
	Noise float64
	// Seed drives all randomness.
	Seed int64
}

// PaperParams returns the paper's data dimensions with a plausible number
// of components.
func PaperParams() Params {
	return Params{Times: 225, Subjects: 59, Regions: 200, Components: 10, Noise: 0.1}
}

// Scaled shrinks every dimension by the given factor (≥ some floor so the
// structure survives), keeping Components and Noise.
func (p Params) Scaled(scale float64) Params {
	shrink := func(n int, floor int) int {
		v := int(math.Round(float64(n) * scale))
		if v < floor {
			v = floor
		}
		return v
	}
	p.Times = shrink(p.Times, 8)
	p.Subjects = shrink(p.Subjects, 4)
	p.Regions = shrink(p.Regions, 8)
	if p.Components > p.Regions {
		p.Components = p.Regions
	}
	return p
}

// Dataset is a generated fMRI-like tensor with its planted ground truth.
type Dataset struct {
	Params Params
	// Tensor4 is the T × S × R × R correlation tensor.
	Tensor4 *tensor.Dense
	// Truth holds the planted components as a 4-way Kruskal tensor with
	// factors [T-factor, S-factor, R-factor, R-factor] (the two region
	// factors are identical — the tensor is symmetric in those modes).
	Truth *cpd.KTensor
}

// Generate builds the dataset. The planted structure is:
//
//   - temporal factors: smooth Gaussian bumps at random task onsets,
//     modulated by a slow sinusoid (task-locked network activity);
//   - subject factors: k-means-style cluster centers plus jitter
//     (subpopulations expressing each network differently);
//   - region factors: sparse non-negative memberships — each network is a
//     random subset of regions (a functional brain network).
//
// The noiseless tensor is Y(t,s,i,j) = Σ_c T(t,c)·S(s,c)·R(i,c)·R(j,c),
// exactly rank-Components and symmetric in (i, j); Gaussian noise
// (symmetrized) is added on top.
func Generate(p Params) *Dataset {
	return GenerateOn(parallel.Default(), p)
}

// GenerateOn is Generate on an explicit executor (pool or lease): the dense
// symmetric evaluation — the dominant cost at paper scale — is parallelized
// over region pairs on ex, while every random draw stays on the calling
// goroutine so the dataset is bit-identical at any width.
func GenerateOn(ex parallel.Executor, p Params) *Dataset {
	if p.Times <= 0 || p.Subjects <= 0 || p.Regions <= 0 || p.Components <= 0 {
		panic(fmt.Sprintf("fmri: non-positive dimension in %+v", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tf := temporalFactor(rng, p.Times, p.Components)
	sf := subjectFactor(rng, p.Subjects, p.Components)
	rf := regionFactor(rng, p.Regions, p.Components)

	lambda := make([]float64, p.Components)
	for c := range lambda {
		lambda[c] = 1 + rng.Float64() // distinct component strengths
	}
	truth := cpd.NewKTensor(lambda, []mat.View{tf, sf, rf, rf})

	x := tensor.New(p.Times, p.Subjects, p.Regions, p.Regions)
	evaluateSymmetric(ex, x, lambda, tf, sf, rf)
	if p.Noise > 0 {
		addSymmetricNoise(rng, x, p.Noise)
	}
	return &Dataset{Params: p, Tensor4: x, Truth: truth}
}

// evaluateSymmetric fills x(t,s,i,j) = Σ_c λ_c T(t,c)S(s,c)R(i,c)R(j,c),
// evaluating only j ≥ i and mirroring. The outer region-pair loop is
// parallelized on ex: every (i, j) pair owns two disjoint tDim·sDim blocks
// of the tensor, so workers never write the same element and the result is
// independent of the dispatch width.
func evaluateSymmetric(ex parallel.Executor, x *tensor.Dense, lambda []float64, tf, sf, rf mat.View) {
	tDim, sDim, rDim := tf.R, sf.R, rf.R
	nc := len(lambda)
	data := x.Data()
	npairs := rDim * (rDim + 1) / 2 // i <= j, diagonal included
	w := parallel.Clamp(ex.Effective(0), npairs)
	// Pair cost is uniform, so the static block schedule balances; each
	// chunk re-derives (i, j) from the flat upper-triangular index.
	ex.For(w, npairs, func(_, lo, hi int) {
		ts := make([]float64, nc) // λ_c·S(s,c) for the current s
		for pi := lo; pi < hi; pi++ {
			// Invert pi = j(j+1)/2 + i with 0 <= i <= j.
			j := int((math.Sqrt(8*float64(pi)+1) - 1) / 2)
			for j*(j+1)/2 > pi {
				j--
			}
			for (j+1)*(j+2)/2 <= pi {
				j++
			}
			i := pi - j*(j+1)/2
			// Natural layout strides: t fastest, then s, then i, then j.
			base := (j*rDim + i) * tDim * sDim
			baseT := (i*rDim + j) * tDim * sDim
			for s := 0; s < sDim; s++ {
				for c := 0; c < nc; c++ {
					ts[c] = lambda[c] * sf.At(s, c)
				}
				row := data[base+s*tDim : base+(s+1)*tDim]
				for t := 0; t < tDim; t++ {
					v := 0.0
					for c := 0; c < nc; c++ {
						v += ts[c] * tf.At(t, c) * rf.At(i, c) * rf.At(j, c)
					}
					row[t] = v
				}
				if i != j {
					copy(data[baseT+s*tDim:baseT+(s+1)*tDim], row)
				}
			}
		}
	})
}

// addSymmetricNoise perturbs x with N(0, σ·rms) noise, mirrored across the
// region-pair modes so symmetry is preserved.
func addSymmetricNoise(rng *rand.Rand, x *tensor.Dense, sigma float64) {
	rms := math.Sqrt(x.NormSquared(1) / float64(x.Size()))
	sd := sigma * rms
	tDim, sDim, rDim := x.Dim(0), x.Dim(1), x.Dim(2)
	data := x.Data()
	for j := 0; j < rDim; j++ {
		for i := 0; i <= j; i++ {
			base := (j*rDim + i) * tDim * sDim
			baseT := (i*rDim + j) * tDim * sDim
			for k := 0; k < tDim*sDim; k++ {
				n := rng.NormFloat64() * sd
				data[base+k] += n
				if i != j {
					data[baseT+k] += n
				}
			}
		}
	}
}

// temporalFactor builds smooth task-locked time courses: Gaussian bumps at
// random onsets over a slow sinusoidal baseline.
func temporalFactor(rng *rand.Rand, tDim, nc int) mat.View {
	f := mat.NewDense(tDim, nc)
	for c := 0; c < nc; c++ {
		onset := rng.Float64() * float64(tDim)
		width := (0.05 + 0.15*rng.Float64()) * float64(tDim)
		phase := rng.Float64() * 2 * math.Pi
		freq := 1 + rng.Float64()*3
		for t := 0; t < tDim; t++ {
			d := (float64(t) - onset) / width
			bump := math.Exp(-0.5 * d * d)
			slow := 0.5 + 0.5*math.Sin(2*math.Pi*freq*float64(t)/float64(tDim)+phase)
			f.Set(t, c, bump*0.8+slow*0.4)
		}
	}
	return f
}

// subjectFactor builds clustered subject loadings: a few subpopulations,
// each expressing components with a shared profile plus jitter.
func subjectFactor(rng *rand.Rand, sDim, nc int) mat.View {
	f := mat.NewDense(sDim, nc)
	nClusters := 3
	if sDim < nClusters {
		nClusters = sDim
	}
	centers := mat.NewDense(nClusters, nc)
	for k := 0; k < nClusters; k++ {
		for c := 0; c < nc; c++ {
			centers.Set(k, c, 0.2+rng.Float64())
		}
	}
	for s := 0; s < sDim; s++ {
		k := s % nClusters
		for c := 0; c < nc; c++ {
			f.Set(s, c, math.Max(0.05, centers.At(k, c)+0.15*rng.NormFloat64()))
		}
	}
	return f
}

// regionFactor builds sparse non-negative network memberships: each
// component activates a contiguous-ish random subset of regions.
func regionFactor(rng *rand.Rand, rDim, nc int) mat.View {
	f := mat.NewDense(rDim, nc)
	for c := 0; c < nc; c++ {
		size := rDim/4 + rng.Intn(rDim/4+1) // network spans ~25-50% of regions
		if size < 1 {
			size = 1
		}
		start := rng.Intn(rDim)
		for k := 0; k < size; k++ {
			r := (start + k) % rDim
			f.Set(r, c, 0.5+rng.Float64())
		}
		// Light background membership keeps Grams well conditioned.
		for r := 0; r < rDim; r++ {
			f.Add(r, c, 0.02)
		}
	}
	return f
}
