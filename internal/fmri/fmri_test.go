package fmri

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cpd"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func smallParams() Params {
	return Params{Times: 12, Subjects: 6, Regions: 10, Components: 3, Seed: 1}
}

func TestGenerateDimensions(t *testing.T) {
	d := Generate(smallParams())
	dims := d.Tensor4.Dims()
	want := []int{12, 6, 10, 10}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
	if d.Truth.Rank() != 3 || d.Truth.Order() != 4 {
		t.Error("truth shape wrong")
	}
}

func TestTensorIsSymmetricInRegionModes(t *testing.T) {
	p := smallParams()
	p.Noise = 0.2 // noise must preserve symmetry too
	d := Generate(p)
	x := d.Tensor4
	for tt := 0; tt < p.Times; tt += 3 {
		for s := 0; s < p.Subjects; s += 2 {
			for i := 0; i < p.Regions; i++ {
				for j := 0; j < p.Regions; j++ {
					if x.At(tt, s, i, j) != x.At(tt, s, j, i) {
						t.Fatalf("asymmetry at (%d,%d,%d,%d)", tt, s, i, j)
					}
				}
			}
		}
	}
}

func TestNoiselessTensorMatchesTruth(t *testing.T) {
	d := Generate(smallParams())
	y := d.Truth.Full()
	if !tensor.ApproxEqual(d.Tensor4, y, 1e-10) {
		t.Errorf("noiseless tensor != planted model, maxdiff %g", tensor.MaxAbsDiff(d.Tensor4, y))
	}
}

func TestNoiseLevelIsCalibrated(t *testing.T) {
	p := smallParams()
	clean := Generate(p)
	p.Noise = 0.5
	noisy := Generate(p)
	diff := noisy.Tensor4.Clone()
	diff.AddScaled(-1, clean.Tensor4)
	rmsSignal := math.Sqrt(clean.Tensor4.NormSquared(1) / float64(clean.Tensor4.Size()))
	rmsNoise := math.Sqrt(diff.NormSquared(1) / float64(diff.Size()))
	ratio := rmsNoise / rmsSignal
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("noise ratio %v, want ≈ 0.5", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams())
	b := Generate(smallParams())
	if tensor.MaxAbsDiff(a.Tensor4, b.Tensor4) != 0 {
		t.Error("same seed should give identical tensors")
	}
	p := smallParams()
	p.Seed = 2
	c := Generate(p)
	if tensor.MaxAbsDiff(a.Tensor4, c.Tensor4) == 0 {
		t.Error("different seeds gave identical tensors")
	}
}

func TestPairIndexBijection(t *testing.T) {
	r := 20
	seen := make(map[int]bool)
	for j := 1; j < r; j++ {
		for i := 0; i < j; i++ {
			p := PairIndex(i, j)
			if p < 0 || p >= PairCount(r) {
				t.Fatalf("pair (%d,%d) index %d out of range", i, j, p)
			}
			if seen[p] {
				t.Fatalf("pair index %d duplicated", p)
			}
			seen[p] = true
			gi, gj := PairFromIndex(p)
			if gi != i || gj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, p, gi, gj)
			}
		}
	}
	if len(seen) != PairCount(r) {
		t.Errorf("covered %d pairs, want %d", len(seen), PairCount(r))
	}
}

func TestPairCountMatchesPaper(t *testing.T) {
	if PairCount(200) != 19900 {
		t.Errorf("PairCount(200) = %d, want 19900 (paper Section 5.3.3)", PairCount(200))
	}
}

func TestPairIndexPanics(t *testing.T) {
	for _, c := range [][2]int{{1, 1}, {2, 1}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PairIndex(%d,%d) should panic", c[0], c[1])
				}
			}()
			PairIndex(c[0], c[1])
		}()
	}
}

func TestPairFromIndexQuick(t *testing.T) {
	f := func(p16 uint16) bool {
		p := int(p16)
		i, j := PairFromIndex(p)
		return i >= 0 && i < j && PairIndex(i, j) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearize3MatchesTensor4(t *testing.T) {
	p := smallParams()
	p.Noise = 0.1
	d := Generate(p)
	x3 := d.Linearize3()
	if x3.Dim(0) != p.Times || x3.Dim(1) != p.Subjects || x3.Dim(2) != PairCount(p.Regions) {
		t.Fatalf("3-way dims %v", x3.Dims())
	}
	for tt := 0; tt < p.Times; tt += 2 {
		for s := 0; s < p.Subjects; s++ {
			for j := 1; j < p.Regions; j++ {
				for i := 0; i < j; i++ {
					if x3.At(tt, s, PairIndex(i, j)) != d.Tensor4.At(tt, s, i, j) {
						t.Fatalf("3-way mismatch at (%d,%d,%d,%d)", tt, s, i, j)
					}
				}
			}
		}
	}
}

func TestTruth3ReconstructsNoiseless3Way(t *testing.T) {
	d := Generate(smallParams())
	x3 := d.Linearize3()
	y3 := d.Truth3().Full()
	if !tensor.ApproxEqual(x3, y3, 1e-10) {
		t.Errorf("3-way truth mismatch, maxdiff %g", tensor.MaxAbsDiff(x3, y3))
	}
}

func TestScaledParams(t *testing.T) {
	p := PaperParams().Scaled(0.25)
	if p.Times != 56 || p.Subjects != 15 || p.Regions != 50 {
		t.Errorf("scaled dims %d %d %d", p.Times, p.Subjects, p.Regions)
	}
	tiny := PaperParams().Scaled(0.001)
	if tiny.Times < 8 || tiny.Subjects < 4 || tiny.Regions < 8 {
		t.Errorf("floors not applied: %+v", tiny)
	}
	if tiny.Components > tiny.Regions {
		t.Error("components exceed regions")
	}
}

func TestGeneratePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Params{Times: 0, Subjects: 1, Regions: 1, Components: 1})
}

// Integration: CP-ALS on the noiseless 3-way tensor recovers a near-exact
// fit at the planted rank.
func TestALSRecoversPlantedNetworks(t *testing.T) {
	d := Generate(Params{Times: 10, Subjects: 5, Regions: 8, Components: 2, Seed: 3})
	x3 := d.Linearize3()
	res, err := cpd.ALS(x3, cpd.Config{Rank: 2, MaxIters: 150, Tol: 1e-12, Seed: 9, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Errorf("3-way fit = %v after %d iters", res.Fit, res.Iters)
	}
	res4, err := cpd.ALS(d.Tensor4, cpd.Config{Rank: 2, MaxIters: 150, Tol: 1e-12, Seed: 9, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Fit < 0.999 {
		t.Errorf("4-way fit = %v after %d iters", res4.Fit, res4.Iters)
	}
}

// TestGenerateOnMatchesSequential pins the determinism contract of the
// executor-threaded generator: the dataset is bit-identical at any dispatch
// width, because every random draw happens on the calling goroutine and
// region-pair workers write disjoint tensor blocks.
func TestGenerateOnMatchesSequential(t *testing.T) {
	p := smallParams()
	p.Noise = 0.05
	want := GenerateOn(seqExec{}, p)
	pool := parallel.NewPool(4)
	defer pool.Close()
	got := GenerateOn(pool, p)
	wd, gd := want.Tensor4.Data(), got.Tensor4.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, wd[i], gd[i])
		}
	}
}

// seqExec is a width-1 executor that runs everything inline.
type seqExec struct{}

func (seqExec) Effective(int) int { return 1 }
func (seqExec) Workers() int      { return 1 }
func (seqExec) Run(t int, body func(int)) {
	for w := 0; w < t; w++ {
		body(w)
	}
}
func (seqExec) For(t, n int, body func(w, lo, hi int)) { body(0, 0, n) }
func (seqExec) ForDynamic(t, n, chunk int, body func(w, lo, hi int)) {
	body(0, 0, n)
}
func (seqExec) ReduceSum(t int, parts [][]float64) []float64 { return parts[0] }
func (seqExec) Acquire() *parallel.Workspace                 { panic("seqExec: no workspace") }
