package fmri

import (
	"fmt"

	"repro/internal/cpd"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// PairCount returns the number of unordered region pairs i < j, the third
// dimension of the linearized tensor: R(R-1)/2 (19900 for R = 200, as in
// the paper).
func PairCount(r int) int { return r * (r - 1) / 2 }

// PairIndex maps a region pair (i, j) with i < j to its linear index,
// ordering pairs by increasing j then i: p = j(j-1)/2 + i.
func PairIndex(i, j int) int {
	if i >= j || i < 0 {
		panic(fmt.Sprintf("fmri: pair (%d, %d) requires 0 ≤ i < j", i, j))
	}
	return j*(j-1)/2 + i
}

// PairFromIndex inverts PairIndex.
func PairFromIndex(p int) (i, j int) {
	if p < 0 {
		panic("fmri: negative pair index")
	}
	// j is the largest integer with j(j-1)/2 ≤ p.
	j = 1
	for (j+1)*j/2 <= p {
		j++
	}
	i = p - j*(j-1)/2
	return i, j
}

// Linearize3 produces the symmetry-reduced 3-way tensor
// X3(t, s, p) = X4(t, s, i, j) for pairs i < j — the paper's
// 225 × 59 × 19900 form. The diagonal (self-correlation) entries are
// dropped, and each off-diagonal value appears once, halving storage.
func (d *Dataset) Linearize3() *tensor.Dense {
	x4 := d.Tensor4
	tDim, sDim, rDim := x4.Dim(0), x4.Dim(1), x4.Dim(2)
	np := PairCount(rDim)
	x3 := tensor.New(tDim, sDim, np)
	src := x4.Data()
	dst := x3.Data()
	slab := tDim * sDim // contiguous (t, s) block for one (i, j)
	for j := 1; j < rDim; j++ {
		for i := 0; i < j; i++ {
			p := PairIndex(i, j)
			copy(dst[p*slab:(p+1)*slab], src[(j*rDim+i)*slab:(j*rDim+i+1)*slab])
		}
	}
	return x3
}

// Truth3 returns the planted components in 3-way form: the pairs-mode
// factor is V(p, c) = R(i, c)·R(j, c), so the noiseless 3-way tensor is
// exactly rank-Components too.
func (d *Dataset) Truth3() *cpd.KTensor {
	rf := d.Truth.Factors[2]
	rDim := rf.R
	nc := d.Truth.Rank()
	v := mat.NewDense(PairCount(rDim), nc)
	for j := 1; j < rDim; j++ {
		for i := 0; i < j; i++ {
			p := PairIndex(i, j)
			for c := 0; c < nc; c++ {
				v.Set(p, c, rf.At(i, c)*rf.At(j, c))
			}
		}
	}
	return cpd.NewKTensor(
		append([]float64(nil), d.Truth.Lambda...),
		[]mat.View{d.Truth.Factors[0].Clone(), d.Truth.Factors[1].Clone(), v},
	)
}
