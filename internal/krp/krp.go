// Package krp implements the paper's first contribution: row-wise
// computation of the Khatri-Rao product (KRP) of Z matrices with reuse of
// partial Hadamard products (Algorithm 1), its naive counterpart, and the
// parallel variant that assigns contiguous row blocks to workers.
//
// Ordering convention (matching the paper's K = A ⊙ B ⊙ C): row j of the
// output is the Hadamard product of one row from each input, where the
// LAST operand's row index varies fastest: j = (…(l₀·J₁ + l₁)·J₂ + …) +
// l_{Z-1}. For the mode-n MTTKRP the operand list is therefore
// [U_{N-1}, …, U_{n+1}, U_{n-1}, …, U₀], so that U₀'s index varies fastest,
// matching the column order of the matricization X_(n).
package krp

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/simd"
)

// NumRows returns the row count of the KRP of mats, ∏ J_z.
func NumRows(mats []mat.View) int {
	rows := 1
	for _, m := range mats {
		rows *= m.R
	}
	return rows
}

func checkOperands(mats []mat.View, out mat.View) (rows, cols int) {
	if len(mats) == 0 {
		panic("krp: no operands")
	}
	cols = mats[0].C
	for z, m := range mats {
		if m.C != cols {
			panic(fmt.Sprintf("krp: operand %d has %d columns, want %d", z, m.C, cols))
		}
		if m.CS != 1 {
			panic("krp: operands must have unit column stride (row-major rows)")
		}
	}
	rows = NumRows(mats)
	if out.R != rows || out.C != cols {
		panic(fmt.Sprintf("krp: output is %dx%d, want %dx%d", out.R, out.C, rows, cols))
	}
	if out.CS != 1 || out.RS != out.C {
		panic("krp: output must be contiguous row-major")
	}
	return rows, cols
}

// Full computes the complete KRP of mats into out (∏J_z × C row-major)
// sequentially using Algorithm 1 (reuse of partial Hadamard products).
func Full(mats []mat.View, out mat.View) {
	rows, _ := checkOperands(mats, out)
	var it Iter
	it.Reset(mats, 0)
	for j := 0; j < rows; j++ {
		it.Next(out.ContiguousRow(j))
	}
}

// Rows computes rows [lo, hi) of the KRP of mats into out
// ((hi-lo) × C row-major). This is the streaming building block of the
// parallel variant and of the 1-step algorithm's external-mode threads,
// which each need only their own row block of K.
func Rows(mats []mat.View, lo, hi int, out mat.View) {
	var it Iter
	RowsIter(&it, mats, lo, hi, out)
}

// RowsIter is Rows with caller-owned iterator state: resetting a retained
// Iter reuses its multi-index and partial-product storage, so streaming a
// row block allocates nothing after the first use. The 1-step algorithm's
// workers keep one Iter per worker in their workspace arena.
func RowsIter(it *Iter, mats []mat.View, lo, hi int, out mat.View) {
	if lo < 0 || hi < lo || hi > NumRows(mats) {
		panic(fmt.Sprintf("krp: row range [%d,%d) out of bounds", lo, hi))
	}
	if out.R != hi-lo {
		panic(fmt.Sprintf("krp: output has %d rows, want %d", out.R, hi-lo))
	}
	if hi == lo {
		return
	}
	if out.CS != 1 || out.RS != out.C {
		panic("krp: output must be contiguous row-major")
	}
	it.Reset(mats, lo)
	for j := 0; j < hi-lo; j++ {
		it.Next(out.ContiguousRow(j))
	}
}

// Parallel computes the complete KRP with t workers, each producing a
// contiguous block of output rows. Each worker initializes its multi-index
// and partial-product table from its starting row (Section 4.1.2) and then
// streams rows exactly like the sequential algorithm.
func Parallel(t int, mats []mat.View, out mat.View) {
	rows, _ := checkOperands(mats, out)
	parallel.For(t, rows, func(_, lo, hi int) {
		var it Iter
		it.Reset(mats, lo)
		for j := lo; j < hi; j++ {
			it.Next(out.ContiguousRow(j))
		}
	})
}

// parallelFrame is the reusable dispatch state of ParallelOn; it lives in a
// Workspace so repeated calls reuse one closure and per-worker iterators.
type parallelFrame struct {
	mats []mat.View
	out  mat.View
	its  []Iter
	body func(w, lo, hi int)
}

func newParallelFrame() any {
	f := &parallelFrame{}
	f.body = func(w, lo, hi int) {
		it := &f.its[w]
		it.Reset(f.mats, lo)
		for j := lo; j < hi; j++ {
			it.Next(f.out.ContiguousRow(j))
		}
	}
	return f
}

// ParallelOn is Parallel executed on an explicit executor (pool or lease)
// with workspace-cached per-worker iterator state: in steady state it
// allocates nothing. ws must be a workspace of p that the caller currently
// owns; p must be non-nil.
func ParallelOn(p parallel.Executor, ws *parallel.Workspace, t int, mats []mat.View, out mat.View) {
	rows, _ := checkOperands(mats, out)
	t = parallel.Clamp(p.Effective(t), rows)
	f := ws.Frame("krp.parallel", newParallelFrame).(*parallelFrame)
	for len(f.its) < t {
		f.its = append(f.its, Iter{})
	}
	f.mats, f.out = mats, out
	p.For(t, rows, f.body)
	f.mats, f.out = nil, mat.View{}
}

// Naive computes the KRP row-wise without reuse: every row performs Z-1
// Hadamard products. It exists as the paper's baseline for Figure 4.
func Naive(mats []mat.View, out mat.View) {
	rows, _ := checkOperands(mats, out)
	l := make([]int, len(mats))
	for j := 0; j < rows; j++ {
		Row(mats, l, out.ContiguousRow(j))
		incrementMultiIndex(mats, l)
	}
}

// NaiveParallel is Naive with contiguous row blocks across t workers.
func NaiveParallel(t int, mats []mat.View, out mat.View) {
	rows, _ := checkOperands(mats, out)
	parallel.For(t, rows, func(_, lo, hi int) {
		l := decompose(mats, lo, make([]int, len(mats)))
		for j := lo; j < hi; j++ {
			Row(mats, l, out.ContiguousRow(j))
			incrementMultiIndex(mats, l)
		}
	})
}

// Row computes a single KRP row, the Hadamard product of mats[z] row l[z],
// into out.
//
//mttkrp:noalloc
func Row(mats []mat.View, l []int, out []float64) {
	copy(out, mats[0].ContiguousRow(l[0]))
	for z := 1; z < len(mats); z++ {
		blas.Had(out, mats[z].ContiguousRow(l[z]), out)
	}
}

// RowAt computes KRP row j directly from the flat row index.
func RowAt(mats []mat.View, j int, out []float64) {
	RowAtInto(mats, j, out, make([]int, len(mats)))
}

// RowAtInto is RowAt with a caller-owned multi-index buffer l (length ≥
// len(mats)), so hot block loops can compute KRP rows without allocating.
//
//mttkrp:noalloc
func RowAtInto(mats []mat.View, j int, out []float64, l []int) {
	Row(mats, decompose(mats, j, l[:len(mats)]), out)
}

// HadamardExpand computes out = row ⊙ kl in the Khatri-Rao sense of a
// 1-row matrix with kl: out(l, :) = row ∗ kl(l, :). The 1-step algorithm
// uses it to form the KRP row block matching one tensor block from a right
// KRP row and the left KRP (Algorithm 3, line 15).
//
//mttkrp:noalloc
func HadamardExpand(row []float64, kl mat.View, out mat.View) {
	if kl.R != out.R || kl.C != out.C || len(row) != kl.C {
		panic("krp: hadamard expand dimension mismatch")
	}
	if kl.IsRowMajor() && out.IsRowMajor() {
		// Contiguous operands (the kernel-worker case: arena-backed K
		// blocks and plan row blocks): one flat call, so the row loop
		// and its per-row dispatch overhead live inside the kernel.
		simd.HadExpand(row, kl.Data[:kl.R*kl.C], out.Data[:out.R*out.C])
		return
	}
	for l := 0; l < kl.R; l++ {
		blas.Had(row, kl.ContiguousRow(l), out.ContiguousRow(l))
	}
}

// decompose writes the multi-index of flat row j into l (last index
// fastest) and returns l.
//
//mttkrp:noalloc
func decompose(mats []mat.View, j int, l []int) []int {
	for z := len(mats) - 1; z >= 0; z-- {
		l[z] = j % mats[z].R
		j /= mats[z].R
	}
	return l
}

// incrementMultiIndex advances l by one row (last index fastest) and
// returns the smallest z whose coordinate changed (len(mats)-1 for the
// common case; 0 means the slowest coordinate rolled).
//
//mttkrp:noalloc
func incrementMultiIndex(mats []mat.View, l []int) int {
	for z := len(mats) - 1; z >= 0; z-- {
		l[z]++
		if l[z] < mats[z].R {
			return z
		}
		l[z] = 0
	}
	return 0
}

// Iter streams KRP rows from an arbitrary starting row, maintaining the
// Z-2 partial Hadamard products P of Algorithm 1. P[w] is the product of
// rows 0..w+1 of the operand list (the slow indices); each output row is
// one Hadamard product of P[Z-3] with the fastest operand's row.
//
// The zero Iter is ready for Reset. Its multi-index and partial-product
// storage grows monotonically and is reused across Resets, so a retained
// Iter streams row blocks without allocating.
type Iter struct {
	mats []mat.View
	l    []int
	pbuf []float64
	p    mat.View // (Z-2) × C partial products
	cols int
}

// Reset positions the iterator at startRow of the KRP of mats, reusing any
// scratch storage from previous use.
//
//mttkrp:noalloc
func (it *Iter) Reset(mats []mat.View, startRow int) {
	z := len(mats)
	it.mats = mats
	it.cols = mats[0].C
	if cap(it.l) < z {
		//lint:ignore mttkrp/noalloc cold-path growth; a reused iterator keeps its buffer
		it.l = make([]int, z)
	}
	it.l = decompose(mats, startRow, it.l[:z])
	it.p = mat.View{}
	if z >= 3 {
		if need := (z - 2) * it.cols; cap(it.pbuf) < need {
			//lint:ignore mttkrp/noalloc cold-path growth; a reused iterator keeps its buffer
			it.pbuf = make([]float64, need)
		}
		it.p = mat.FromRowMajor(it.pbuf[:(z-2)*it.cols], z-2, it.cols)
		it.rebuildFrom(0)
	}
}

// rebuildFrom recomputes partial products P[w] for w ≥ max(z-1, 0), where
// z is the smallest operand index whose row changed.
//
//mttkrp:noalloc
func (it *Iter) rebuildFrom(z int) {
	w := z - 1
	if w < 0 {
		w = 0
	}
	for ; w < it.p.R; w++ {
		dst := it.p.ContiguousRow(w)
		if w == 0 {
			blas.Had(it.mats[0].ContiguousRow(it.l[0]), it.mats[1].ContiguousRow(it.l[1]), dst)
			continue
		}
		blas.Had(it.p.ContiguousRow(w-1), it.mats[w+1].ContiguousRow(it.l[w+1]), dst)
	}
}

// Next writes the current row into out and advances the iterator.
//
//mttkrp:noalloc
func (it *Iter) Next(out []float64) {
	z := len(it.mats)
	last := it.mats[z-1].ContiguousRow(it.l[z-1])
	switch z {
	case 1:
		copy(out, last)
	case 2:
		blas.Had(it.mats[0].ContiguousRow(it.l[0]), last, out)
	default:
		blas.Had(it.p.ContiguousRow(z-3), last, out)
	}
	changed := incrementMultiIndex(it.mats, it.l)
	// Only indices z-2 and below affect P (the last operand is never part
	// of a partial product), and this happens once every J_{Z-1} rows.
	if z >= 3 && changed <= z-2 {
		it.rebuildFrom(changed)
	}
}
