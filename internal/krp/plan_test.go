package krp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
)

func randMats(rng *rand.Rand, rows []int, c int) []mat.View {
	ms := make([]mat.View, len(rows))
	for i, r := range rows {
		ms[i] = mat.RandomDense(r, c, rng)
	}
	return ms
}

// TestFusedPlanFillAndLookup pins the plan's core contract: Fill computes
// the same rows Full does, Lookup serves exact matches by pointer identity
// and by value, and mismatches (values, geometry, operand count) miss.
func TestFusedPlanFillAndLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := parallel.NewPool(2)
	defer pool.Close()
	ws := pool.Acquire()
	defer ws.Release()
	const c = 4
	left := randMats(rng, []int{3, 4}, c)
	right := randMats(rng, []int{2, 5}, c)

	var p Plan
	p.Fill(pool, ws, 2, left, right)
	if p.Fills() != 1 {
		t.Fatalf("fills = %d, want 1", p.Fills())
	}
	if p.FilledRows() != 12+10 {
		t.Fatalf("FilledRows = %d, want 22", p.FilledRows())
	}

	// The filled sides match a reference Full computation bitwise.
	for _, side := range []struct {
		ops  []mat.View
		rows int
	}{{left, 12}, {right, 10}} {
		want := mat.NewDense(side.rows, c)
		Full(side.ops, want)
		got, ok := p.Lookup(side.ops)
		if !ok {
			t.Fatal("pointer-identical operands missed the plan")
		}
		for i := 0; i < want.R; i++ {
			for j := 0; j < want.C; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("plan row (%d,%d) = %v, want %v", i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}

	// Value equality in fresh buffers (the decoded-payload path) hits.
	clones := make([]mat.View, len(left))
	for i := range left {
		clones[i] = left[i].Clone()
	}
	if _, ok := p.Lookup(clones); !ok {
		t.Fatal("value-equal clones missed the plan")
	}

	// A single changed element misses.
	clones[1].Set(0, 0, clones[1].At(0, 0)+1)
	if _, ok := p.Lookup(clones); ok {
		t.Fatal("value-mutated clone hit the plan")
	}
	// Wrong operand count misses.
	if _, ok := p.Lookup(left[:1]); ok {
		t.Fatal("truncated operand list hit the plan")
	}
	if p.Hits() != 3 || p.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 3 and 2", p.Hits(), p.Misses())
	}
}

// TestFusedPlanOneSided pins external-mode plans: an empty left side
// leaves only the right KRP filled, and lookups against the empty side
// miss rather than matching vacuously.
func TestFusedPlanOneSided(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := parallel.NewPool(2)
	defer pool.Close()
	ws := pool.Acquire()
	defer ws.Release()
	ops := randMats(rng, []int{3, 2, 2}, 3)

	var p Plan
	p.Fill(pool, ws, 2, nil, ops)
	if p.FilledRows() != 12 {
		t.Fatalf("FilledRows = %d, want 12", p.FilledRows())
	}
	if _, ok := p.Lookup(ops); !ok {
		t.Fatal("right-side operands missed a one-sided plan")
	}
	if _, ok := p.Lookup(randMats(rng, []int{3, 2, 2}, 3)); ok {
		t.Fatal("different random operands hit the plan")
	}
}

// TestFusedPlanReset pins the retention contract: Reset empties the plan
// (every lookup misses) while counters survive, and a refill serves the
// new factor set from the same arena storage.
func TestFusedPlanReset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := parallel.NewPool(2)
	defer pool.Close()
	ws := pool.Acquire()
	defer ws.Release()
	a := randMats(rng, []int{3, 2}, 3)
	b := randMats(rng, []int{3, 2}, 3)

	var p Plan
	p.Fill(pool, ws, 2, a, nil)
	if _, ok := p.Lookup(a); !ok {
		t.Fatal("fill missed")
	}
	p.Reset()
	if _, ok := p.Lookup(a); ok {
		t.Fatal("reset plan still hit")
	}
	p.Fill(pool, ws, 2, b, nil)
	if _, ok := p.Lookup(a); ok {
		t.Fatal("refilled plan served the previous factor set")
	}
	if _, ok := p.Lookup(b); !ok {
		t.Fatal("refilled plan missed its own factor set")
	}
	if p.Fills() != 2 {
		t.Fatalf("fills = %d, want 2 (counters survive Reset)", p.Fills())
	}
}
