package krp

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Plan is a shared Khatri-Rao intermediate for batch-level kernel fusion:
// the left and right partial KRPs of one factor set, computed once with
// ParallelOn and then consumed read-only by every MTTKRP in a coalesced
// batch whose operand set matches. The serving scheduler fills one plan
// per fused batch (under the batch's lease, before the member loop) and
// the core kernels consume it through Lookup, falling back to computing
// their own KRP on a mismatch — a plan can make a computation faster,
// never wrong.
//
// Storage comes from the workspace's PlanArena, so a plan cached in a
// shape-keyed workspace refills without allocating. A plan is not
// concurrency-safe across Fill/Reset; within one fill, the returned views
// are immutable and may be read by any number of kernel workers.
type Plan struct {
	left, right       mat.View // filled partial KRPs (zero views when that side is empty)
	leftSrc, rightSrc []planSrc
	filled            bool
	fills, hits, miss int64
	servedRows        int64 // KRP rows delivered to consumers across all hits
}

// planSrc records one source operand: the caller's original view (used
// only for a pointer-identity fast path — never dereferenced after Fill,
// because the caller may legally reuse the buffer once its own request
// completes) and a plan-owned value snapshot that Lookup compares against
// when the pointers differ (the network path, where every request decodes
// an identical factor set into a different pooled buffer).
type planSrc struct {
	orig mat.View
	snap mat.View
}

// Fill computes the partial KRPs of the left and right operand lists into
// plan-owned storage leased from ws.PlanArena(), snapshotting the operand
// values for Lookup. Either list may be empty (external modes have a
// one-sided operand set). Fill implies Reset: a plan holds exactly one
// factor set at a time.
func (p *Plan) Fill(ex parallel.Executor, ws *parallel.Workspace, t int, left, right []mat.View) {
	p.Reset()
	c := 0
	snapLen := 0
	for _, ops := range [2][]mat.View{left, right} {
		for _, m := range ops {
			if m.CS != 1 {
				panic("krp: plan operands must have unit column stride")
			}
			if c == 0 {
				c = m.C
			}
			if m.C != c {
				panic("krp: plan operands disagree on column count")
			}
			snapLen += m.R * m.C
		}
	}
	if c == 0 {
		panic("krp: plan with no operands")
	}
	lrows, rrows := 0, 0
	if len(left) > 0 {
		lrows = NumRows(left)
	}
	if len(right) > 0 {
		rrows = NumRows(right)
	}
	ar := ws.PlanArena()
	buf := ar.Float64("krp.plan.k", (lrows+rrows)*c)
	snap := ar.Float64("krp.plan.snap", snapLen)
	off := 0
	p.leftSrc, off = appendSrc(p.leftSrc, left, snap, off)
	p.rightSrc, _ = appendSrc(p.rightSrc, right, snap, off)
	if lrows > 0 {
		p.left = mat.FromRowMajor(buf[:lrows*c], lrows, c)
		ParallelOn(ex, ws, t, left, p.left)
	}
	if rrows > 0 {
		p.right = mat.FromRowMajor(buf[lrows*c:(lrows+rrows)*c], rrows, c)
		ParallelOn(ex, ws, t, right, p.right)
	}
	p.filled = true
	p.fills++
}

// appendSrc records the operand list into dst, copying each operand's
// values into the shared snapshot slab starting at off.
func appendSrc(dst []planSrc, ops []mat.View, snap []float64, off int) ([]planSrc, int) {
	for _, m := range ops {
		sv := mat.FromRowMajor(snap[off:off+m.R*m.C], m.R, m.C)
		off += m.R * m.C
		sv.CopyFrom(m)
		dst = append(dst, planSrc{orig: m, snap: sv})
	}
	return dst, off
}

// Lookup returns the filled KRP whose source operand list matches ops, if
// any. A match is per-operand: the same backing buffer and geometry as at
// Fill time (the in-process path; sound because each request's factors
// are contractually unchanged from submit to completion, a window that
// covers the fill), or bitwise-equal values against the plan's snapshot
// (the network path). Hits and misses are counted for the scheduler's
// fusion stats.
func (p *Plan) Lookup(ops []mat.View) (mat.View, bool) {
	if p.filled {
		if matchSrc(ops, p.leftSrc) {
			p.hits++
			p.servedRows += int64(p.left.R)
			return p.left, true
		}
		if matchSrc(ops, p.rightSrc) {
			p.hits++
			p.servedRows += int64(p.right.R)
			return p.right, true
		}
	}
	p.miss++
	return mat.View{}, false
}

func matchSrc(ops []mat.View, src []planSrc) bool {
	if len(ops) != len(src) || len(ops) == 0 {
		return false
	}
	for i, m := range ops {
		s := &src[i]
		if m.R != s.snap.R || m.C != s.snap.C || m.CS != 1 {
			return false
		}
		if sameBacking(m, s.orig) {
			continue
		}
		for r := 0; r < m.R; r++ {
			a, b := m.ContiguousRow(r), s.snap.ContiguousRow(r)
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					return false
				}
			}
		}
	}
	return true
}

// sameBacking reports whether two views describe the identical window: the
// same first element address and the same geometry. It compares slice
// headers only — it never reads elements, so it is safe against buffers
// whose owner has since released them.
func sameBacking(a, b mat.View) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0] &&
		a.R == b.R && a.C == b.C && a.RS == b.RS && a.CS == b.CS
}

// Detach clears the plan's original caller views while keeping the filled
// KRPs and value snapshots, so a plan retained in a shape-keyed workspace
// across batch boundaries holds no caller factor memory but can still
// serve the next batch through value-matched Lookups (sameBacking never
// fires against a zero orig; matching falls through to the snapshot
// comparison). Storage is plan-arena-owned, which is exactly the memory
// the workspace contract lets a frame keep across Release.
func (p *Plan) Detach() {
	for i := range p.leftSrc {
		p.leftSrc[i].orig = mat.View{}
	}
	for i := range p.rightSrc {
		p.rightSrc[i].orig = mat.View{}
	}
}

// Covers reports whether the filled plan's source operand lists match the
// given left and right lists (by backing identity or snapshot value,
// exactly as Lookup matches) — without counting a hit or serving a view.
// The batch executor uses it to decide whether a retained plan makes the
// next batch's Fill redundant.
func (p *Plan) Covers(left, right []mat.View) bool {
	return p.filled && sideCovers(left, p.leftSrc) && sideCovers(right, p.rightSrc)
}

func sideCovers(ops []mat.View, src []planSrc) bool {
	if len(ops) == 0 {
		return len(src) == 0
	}
	return matchSrc(ops, src)
}

// Reset drops the plan's sources and views so a cached plan does not
// retain caller factor memory between batches. Counters and arena-backed
// storage survive for reuse; the plan is empty (every Lookup misses) until
// the next Fill.
func (p *Plan) Reset() {
	for i := range p.leftSrc {
		p.leftSrc[i] = planSrc{}
	}
	for i := range p.rightSrc {
		p.rightSrc[i] = planSrc{}
	}
	p.leftSrc, p.rightSrc = p.leftSrc[:0], p.rightSrc[:0]
	p.left, p.right = mat.View{}, mat.View{}
	p.filled = false
}

// FilledRows returns the total KRP rows the current fill materialized —
// the size of the work a consumer skips on a plan hit.
func (p *Plan) FilledRows() int { return p.left.R + p.right.R }

// Fills, Hits and Misses are cumulative across the plan's lifetime (they
// survive Reset): the number of Fill calls, of Lookups served from the
// plan, and of Lookups that fell back.
func (p *Plan) Fills() int64  { return p.fills }
func (p *Plan) Hits() int64   { return p.hits }
func (p *Plan) Misses() int64 { return p.miss }

// ServedRows is the cumulative count of KRP rows delivered on hits — the
// exact amount of formation work consumers skipped. A batch executor
// prices its saving as the ServedRows delta minus one FilledRows (the
// fill itself paid for one formation), so partially-matching batches are
// priced by what the plan actually served, not by member count.
func (p *Plan) ServedRows() int64 { return p.servedRows }
