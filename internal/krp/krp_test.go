package krp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// columnwiseRef computes the KRP by its column-wise Kronecker definition:
// K(:, c) = mats[0](:, c) ⊗ … ⊗ mats[Z-1](:, c).
func columnwiseRef(mats []mat.View) mat.View {
	rows := NumRows(mats)
	cols := mats[0].C
	out := mat.NewDense(rows, cols)
	for c := 0; c < cols; c++ {
		col := []float64{1}
		for _, m := range mats {
			next := make([]float64, 0, len(col)*m.R)
			for _, v := range col {
				for i := 0; i < m.R; i++ {
					next = append(next, v*m.At(i, c))
				}
			}
			col = next
		}
		for j, v := range col {
			out.Set(j, c, v)
		}
	}
	return out
}

func randomMats(rng *rand.Rand, rowsList []int, cols int) []mat.View {
	mats := make([]mat.View, len(rowsList))
	for z, r := range rowsList {
		mats[z] = mat.RandomDense(r, cols, rng)
	}
	return mats
}

func TestFullMatchesColumnwiseDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]int{{3}, {3, 4}, {2, 3, 4}, {3, 2, 4, 2}, {2, 2, 2, 2, 2}, {1, 5, 1}, {7, 1}}
	for _, rowsList := range cases {
		for _, cols := range []int{1, 3, 25} {
			mats := randomMats(rng, rowsList, cols)
			out := mat.NewDense(NumRows(mats), cols)
			Full(mats, out)
			want := columnwiseRef(mats)
			if !mat.ApproxEqual(out, want, 1e-14) {
				t.Errorf("rows=%v cols=%d: Full != columnwise definition", rowsList, cols)
			}
		}
	}
}

func TestRowwiseIndexingMatchesPaperExample(t *testing.T) {
	// Paper: K(rB + rA·IB, :) = A(rA,:) ∗ B(rB,:) for K = A ⊙ B.
	rng := rand.New(rand.NewSource(2))
	a := mat.RandomDense(3, 4, rng)
	b := mat.RandomDense(5, 4, rng)
	out := mat.NewDense(15, 4)
	Full([]mat.View{a, b}, out)
	for ra := 0; ra < 3; ra++ {
		for rb := 0; rb < 5; rb++ {
			for c := 0; c < 4; c++ {
				want := a.At(ra, c) * b.At(rb, c)
				if got := out.At(rb+ra*5, c); got != want {
					t.Fatalf("K(%d,%d) = %v, want %v", rb+ra*5, c, got, want)
				}
			}
		}
	}
}

func TestNaiveMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, rowsList := range [][]int{{4}, {2, 5}, {3, 3, 3}, {2, 3, 2, 3}} {
		mats := randomMats(rng, rowsList, 6)
		a := mat.NewDense(NumRows(mats), 6)
		b := mat.NewDense(NumRows(mats), 6)
		Full(mats, a)
		Naive(mats, b)
		if !mat.ApproxEqual(a, b, 0) {
			t.Errorf("rows=%v: Naive != Full", rowsList)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, rowsList := range [][]int{{6}, {4, 5}, {3, 4, 5}, {2, 3, 4, 2}} {
		mats := randomMats(rng, rowsList, 5)
		want := mat.NewDense(NumRows(mats), 5)
		Full(mats, want)
		for _, threads := range []int{1, 2, 3, 7, 100} {
			got := mat.NewDense(NumRows(mats), 5)
			Parallel(threads, mats, got)
			if !mat.ApproxEqual(got, want, 0) {
				t.Errorf("rows=%v threads=%d: parallel != sequential", rowsList, threads)
			}
			got2 := mat.NewDense(NumRows(mats), 5)
			NaiveParallel(threads, mats, got2)
			if !mat.ApproxEqual(got2, want, 0) {
				t.Errorf("rows=%v threads=%d: naive parallel != sequential", rowsList, threads)
			}
		}
	}
}

func TestRowsArbitraryRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mats := randomMats(rng, []int{3, 4, 2}, 4)
	full := mat.NewDense(24, 4)
	Full(mats, full)
	for lo := 0; lo <= 24; lo++ {
		for hi := lo; hi <= 24; hi++ {
			out := mat.NewDense(hi-lo, 4)
			Rows(mats, lo, hi, out)
			if hi > lo && !mat.ApproxEqual(out, full.Slice(lo, hi, 0, 4), 0) {
				t.Fatalf("Rows(%d,%d) mismatch", lo, hi)
			}
		}
	}
}

func TestRowAndRowAt(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mats := randomMats(rng, []int{2, 3, 4}, 5)
	full := mat.NewDense(24, 5)
	Full(mats, full)
	out := make([]float64, 5)
	for j := 0; j < 24; j++ {
		RowAt(mats, j, out)
		for c := 0; c < 5; c++ {
			if out[c] != full.At(j, c) {
				t.Fatalf("RowAt(%d) mismatch at col %d", j, c)
			}
		}
	}
}

func TestHadamardExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kl := mat.RandomDense(6, 4, rng)
	row := []float64{2, 3, 4, 5}
	out := mat.NewDense(6, 4)
	HadamardExpand(row, kl, out)
	for l := 0; l < 6; l++ {
		for c := 0; c < 4; c++ {
			if out.At(l, c) != row[c]*kl.At(l, c) {
				t.Fatalf("expand (%d,%d) wrong", l, c)
			}
		}
	}
	// It must equal the KRP of a 1-row matrix with kl.
	oneRow := mat.FromRowMajor(row, 1, 4)
	want := mat.NewDense(6, 4)
	Full([]mat.View{oneRow, kl}, want)
	if !mat.ApproxEqual(out, want, 0) {
		t.Error("HadamardExpand != KRP with 1-row matrix")
	}
}

func TestSingleOperandIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := mat.RandomDense(5, 3, rng)
	out := mat.NewDense(5, 3)
	Full([]mat.View{a}, out)
	if !mat.ApproxEqual(a, out, 0) {
		t.Error("KRP of one matrix should be the matrix")
	}
}

func TestValidationPanics(t *testing.T) {
	a := mat.NewDense(2, 3)
	b := mat.NewDense(2, 4) // mismatched columns
	cases := []func(){
		func() { Full(nil, mat.NewDense(1, 1)) },
		func() { Full([]mat.View{a, b}, mat.NewDense(4, 3)) },
		func() { Full([]mat.View{a}, mat.NewDense(3, 3)) },                   // wrong rows
		func() { Full([]mat.View{a}, mat.NewColMajor(2, 3)) },                // wrong layout
		func() { Full([]mat.View{a.T()}, mat.NewDense(3, 2)) },               // strided operand
		func() { Rows([]mat.View{a}, 1, 3, mat.NewDense(2, 3)) },             // hi out of range
		func() { Rows([]mat.View{a}, 0, 2, mat.NewDense(1, 3)) },             // wrong output rows
		func() { HadamardExpand([]float64{1}, a, mat.NewDense(2, 3)) },       // bad row len
		func() { HadamardExpand([]float64{1, 2, 3}, a, mat.NewDense(3, 3)) }, // bad out rows
		func() { Row([]mat.View{a, b}, []int{0, 0}, make([]float64, 3)) },    // cols mismatch tolerated? Had panics
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: KRP is associative with respect to operand grouping —
// KRP(A, B, C) = KRP(KRP(A, B), C).
func TestAssociativityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ja, jb, jc := rng.Intn(4)+1, rng.Intn(4)+1, rng.Intn(4)+1
		cols := rng.Intn(6) + 1
		a := mat.RandomDense(ja, cols, rng)
		b := mat.RandomDense(jb, cols, rng)
		c := mat.RandomDense(jc, cols, rng)
		full := mat.NewDense(ja*jb*jc, cols)
		Full([]mat.View{a, b, c}, full)
		ab := mat.NewDense(ja*jb, cols)
		Full([]mat.View{a, b}, ab)
		grouped := mat.NewDense(ja*jb*jc, cols)
		Full([]mat.View{ab, c}, grouped)
		return mat.ApproxEqual(full, grouped, 1e-14)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every row of the KRP is the Hadamard product of the decomposed
// operand rows (the paper's row-wise definition), for random shapes.
func TestRowDefinitionQuick(t *testing.T) {
	f := func(seed int64, j16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		z := rng.Intn(4) + 1
		rowsList := make([]int, z)
		for i := range rowsList {
			rowsList[i] = rng.Intn(5) + 1
		}
		cols := rng.Intn(5) + 1
		mats := randomMats(rng, rowsList, cols)
		rows := NumRows(mats)
		j := int(j16) % rows
		out := mat.NewDense(rows, cols)
		Full(mats, out)
		// Decompose j with last index fastest.
		l := make([]int, z)
		jj := j
		for zz := z - 1; zz >= 0; zz-- {
			l[zz] = jj % rowsList[zz]
			jj /= rowsList[zz]
		}
		for c := 0; c < cols; c++ {
			want := 1.0
			for zz := 0; zz < z; zz++ {
				want *= mats[zz].At(l[zz], c)
			}
			d := out.At(j, c) - want
			if d > 1e-12 || d < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
