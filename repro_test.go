package repro_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/mat"
)

func TestFacadeMTTKRPAgreesAcrossMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := repro.RandomTensor(rng, 6, 5, 4)
	factors := []repro.Matrix{
		repro.RandomMatrix(6, 3, rng),
		repro.RandomMatrix(5, 3, rng),
		repro.RandomMatrix(4, 3, rng),
	}
	for n := 0; n < 3; n++ {
		auto := repro.MTTKRP(x, factors, n, repro.MTTKRPOptions{Threads: 2})
		for _, m := range []repro.Method{repro.MethodOneStep, repro.MethodTwoStep, repro.MethodReorder} {
			got := repro.MTTKRPWith(m, x, factors, n, repro.MTTKRPOptions{Threads: 2})
			if !mat.ApproxEqual(got, auto, 1e-11) {
				t.Errorf("mode %d method %v disagrees with auto", n, m)
			}
		}
	}
}

func TestFacadeKhatriRao(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := repro.RandomMatrix(3, 4, rng)
	b := repro.RandomMatrix(5, 4, rng)
	k := repro.KhatriRao(2, a, b)
	if k.R != 15 || k.C != 4 {
		t.Fatalf("KRP dims %dx%d", k.R, k.C)
	}
	for ra := 0; ra < 3; ra++ {
		for rb := 0; rb < 5; rb++ {
			for c := 0; c < 4; c++ {
				if k.At(rb+ra*5, c) != a.At(ra, c)*b.At(rb, c) {
					t.Fatal("KRP content wrong")
				}
			}
		}
	}
}

func TestFacadeCP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := repro.RandomTensor(rng, 8, 7, 6)
	res, err := repro.CP(x, repro.CPConfig{Rank: 3, MaxIters: 10, Seed: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit <= 0 || res.Iters == 0 {
		t.Errorf("fit %v after %d iters", res.Fit, res.Iters)
	}
	if res.K.Rank() != 3 || res.K.Order() != 3 {
		t.Error("result shape wrong")
	}
}

func TestFacadeTensorConstruction(t *testing.T) {
	x := repro.NewTensor(2, 3)
	if x.Size() != 6 {
		t.Error("NewTensor size")
	}
	buf := make([]float64, 6)
	y := repro.TensorFromData(buf, 2, 3)
	y.Set(5, 1, 2)
	if buf[5] != 5 {
		t.Error("TensorFromData must alias")
	}
	m := repro.NewMatrix(2, 2)
	if m.R != 2 || m.C != 2 {
		t.Error("NewMatrix dims")
	}
}

func TestFacadeExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := repro.RandomTensor(rng, 8, 7, 6)

	// TTM shrinks the contracted mode.
	m := repro.RandomMatrix(7, 3, rng)
	y := repro.TTM(2, x, 1, m)
	if y.Dim(1) != 3 || y.Dim(0) != 8 || y.Dim(2) != 6 {
		t.Fatalf("TTM dims %v", y.Dims())
	}

	// Multi-sweep CP matches regular CP.
	a, err := repro.CP(x, repro.CPConfig{Rank: 2, MaxIters: 4, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.CP(x, repro.CPConfig{Rank: 2, MaxIters: 4, Tol: -1, Seed: 1, MultiSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Fit - b.Fit; d > 1e-6 || d < -1e-6 {
		t.Errorf("multisweep fit %v vs %v", b.Fit, a.Fit)
	}

	// Diagnostics and init run.
	if cc := repro.Corcondia(2, x, a.K); cc > 100.000001 {
		t.Errorf("corcondia %v > 100", cc)
	}
	init := repro.NVecsInit(2, x, 2, 1)
	if init.Rank() != 2 || init.Order() != 3 {
		t.Error("nvecs init shape wrong")
	}

	// Nonnegative CP keeps factors nonnegative.
	nn, err := repro.NonnegativeCP(x, repro.CPConfig{Rank: 2, MaxIters: 5, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range nn.K.Factors {
		for i := 0; i < u.R; i++ {
			for j := 0; j < u.C; j++ {
				if u.At(i, j) < 0 {
					t.Fatal("negative factor entry from NonnegativeCP")
				}
			}
		}
	}

	// Tucker decomposition and reconstruction.
	tk, err := repro.Tucker(x, repro.TuckerConfig{Ranks: []int{4, 4, 4}, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Fit <= 0 || tk.Model.Core.Dim(0) != 4 {
		t.Errorf("tucker fit %v core %v", tk.Fit, tk.Model.Core.Dims())
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := repro.RandomTensor(rng, 4, 3, 2)
	path := filepath.Join(t.TempDir(), "t.tns")
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := back.(*repro.Dense)
	if !ok {
		t.Fatalf("loaded %v tensor, want dense", back.Layout())
	}
	if d.Size() != x.Size() || d.At(1, 2, 1) != x.At(1, 2, 1) {
		t.Error("load round trip wrong")
	}
}

func TestFacadeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := repro.RandomSparseTensor(rng, 0.05, 30, 20, 10)
	if s.Layout() != repro.LayoutCOO || s.NNZ() < 1 {
		t.Fatalf("layout %v nnz %d", s.Layout(), s.NNZ())
	}
	u := make([]repro.Matrix, 3)
	for k := 0; k < 3; k++ {
		u[k] = repro.RandomMatrix(s.Dim(k), 4, rng)
	}
	// The shape-generic entry point must agree with the densified
	// reference computed through the same entry point.
	got := repro.MTTKRP(s, u, 1, repro.MTTKRPOptions{Threads: 2})
	want := repro.MTTKRP(s.Densify(), u, 1, repro.MTTKRPOptions{Threads: 2})
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			if diff := got.At(i, j) - want.At(i, j); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("sparse MTTKRP mismatch at (%d,%d): %g vs %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
	// Sparse round trip through the sniffing loader.
	path := filepath.Join(t.TempDir(), "s.tns")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	sb, ok := back.(*repro.Sparse)
	if !ok {
		t.Fatalf("loaded %v tensor, want sparse", back.Layout())
	}
	if sb.NNZ() != s.NNZ() {
		t.Fatalf("round trip nnz %d, want %d", sb.NNZ(), s.NNZ())
	}
	// CP over the sparse layout converges on the same machinery.
	res, err := repro.CP(s, repro.CPConfig{Rank: 2, MaxIters: 3, Tol: -1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 || len(res.K.Factors) != 3 {
		t.Fatalf("sparse CP ran %d iters, %d factors", res.Iters, len(res.K.Factors))
	}
}
